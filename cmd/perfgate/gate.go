package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the aggregated measurement for one benchmark: minimum ns/op
// and minimum allocs/op across however many repetitions the file holds.
// AllocsKnown distinguishes "measured 0 allocs/op" from "the run was
// not -benchmem"; a gate on allocations is meaningless without it.
type Result struct {
	NsPerOp     float64
	AllocsPerOp int64
	AllocsKnown bool
	Samples     int
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkNodeStep-8   1680298   723.3 ns/op   5 B/op   0 allocs/op
//
// The -8 suffix is GOMAXPROCS, not part of the benchmark's identity —
// two runs on differently-sized machines still name the same benchmark.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

var allocsField = regexp.MustCompile(`(\d+) allocs/op`)

// parseFile reads a `go test -bench -benchmem` transcript and
// aggregates repeated samples per benchmark name.
func parseFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]Result{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := out[name]
		if !seen {
			out[name] = r
			continue
		}
		prev.Samples++
		prev.NsPerOp = math.Min(prev.NsPerOp, r.NsPerOp)
		if r.AllocsKnown {
			if !prev.AllocsKnown || r.AllocsPerOp < prev.AllocsPerOp {
				prev.AllocsPerOp = r.AllocsPerOp
			}
			prev.AllocsKnown = true
		}
		out[name] = prev
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// parseLine extracts one benchmark sample; ok is false for non-result
// lines (headers, PASS/ok, subtest logs).
func parseLine(line string) (name string, r Result, ok bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return "", Result{}, false
	}
	ns, err := strconv.ParseFloat(m[2], 64)
	if err != nil || math.IsNaN(ns) || ns < 0 {
		return "", Result{}, false
	}
	r = Result{NsPerOp: ns, Samples: 1}
	if a := allocsField.FindStringSubmatch(m[3]); a != nil {
		n, err := strconv.ParseInt(a[1], 10, 64)
		if err != nil {
			return "", Result{}, false
		}
		r.AllocsPerOp = n
		r.AllocsKnown = true
	}
	return m[1], r, true
}

// Report is the verdict of one old-vs-new comparison.
type Report struct {
	Rows     []Row
	Failures []string
	Warnings []string
}

// Row is one benchmark's comparison, pre-formatted verdict included.
type Row struct {
	Name    string
	OldNs   float64
	NewNs   float64
	Verdict string
}

// compare gates newSet against oldSet: ns/op may grow by at most
// maxTimeRegress (fractional), allocs/op may not grow at all.
func compare(oldSet, newSet map[string]Result, maxTimeRegress float64) Report {
	var rep Report
	names := make([]string, 0, len(newSet))
	for name := range newSet {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		nw := newSet[name]
		od, inOld := oldSet[name]
		if !inOld {
			rep.Rows = append(rep.Rows, Row{Name: name, NewNs: nw.NsPerOp, Verdict: "new (no baseline)"})
			continue
		}
		row := Row{Name: name, OldNs: od.NsPerOp, NewNs: nw.NsPerOp, Verdict: "ok"}
		ratio := nw.NsPerOp / od.NsPerOp
		if nw.NsPerOp > od.NsPerOp*(1+maxTimeRegress) {
			msg := fmt.Sprintf("%s: time/op %.1f -> %.1f ns (%+.1f%%, limit +%.0f%%)",
				name, od.NsPerOp, nw.NsPerOp, (ratio-1)*100, maxTimeRegress*100)
			rep.Failures = append(rep.Failures, msg)
			row.Verdict = "FAIL time"
		}
		if od.AllocsKnown && nw.AllocsKnown && nw.AllocsPerOp > od.AllocsPerOp {
			msg := fmt.Sprintf("%s: allocs/op %d -> %d (any increase fails)",
				name, od.AllocsPerOp, nw.AllocsPerOp)
			rep.Failures = append(rep.Failures, msg)
			if row.Verdict == "ok" {
				row.Verdict = "FAIL allocs"
			} else {
				row.Verdict = "FAIL time+allocs"
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	for name := range oldSet {
		if _, ok := newSet[name]; !ok {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("%s: present in baseline, missing from new run", name))
		}
	}
	sort.Strings(rep.Warnings)
	return rep
}

func (r Report) String() string {
	var b strings.Builder
	for _, row := range r.Rows {
		if row.OldNs > 0 {
			fmt.Fprintf(&b, "%-48s %12.1f %12.1f ns/op %+7.1f%%  %s\n",
				row.Name, row.OldNs, row.NewNs, (row.NewNs/row.OldNs-1)*100, row.Verdict)
		} else {
			fmt.Fprintf(&b, "%-48s %12s %12.1f ns/op %8s  %s\n",
				row.Name, "-", row.NewNs, "", row.Verdict)
		}
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	if len(r.Failures) == 0 {
		fmt.Fprintf(&b, "perfgate: %d benchmarks within budget\n", len(r.Rows))
	}
	return b.String()
}
