// Command perfgate compares two `go test -bench -benchmem` outputs and
// fails when the new run regresses: more than -max-time-regress on any
// benchmark's ns/op, or ANY increase in allocs/op. It is the decision
// half of the CI perf-regression job — benchstat renders the
// human-readable table, perfgate renders the verdict, with no
// dependency outside the standard library so the gate runs on a bare
// toolchain.
//
// Multiple samples of the same benchmark (from -count=N) are aggregated
// by taking the minimum ns/op and minimum allocs/op: the fastest
// repetition is the least-noisy estimate of what the code can do, and a
// regression that survives the min across six repetitions is real, not
// scheduler jitter.
//
// Usage:
//
//	perfgate -old old.txt -new new.txt [-max-time-regress 0.10]
//
// Benchmarks present only in the new run pass (new code may add
// benchmarks); benchmarks present only in the old run warn (a deleted
// benchmark cannot hide a regression silently, but deleting the hot
// path's benchmark is a review question, not a CI failure).
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench -benchmem` output")
	newPath := flag.String("new", "", "candidate `go test -bench -benchmem` output")
	maxTime := flag.Float64("max-time-regress", 0.10,
		"maximum tolerated fractional ns/op increase (0.10 = +10%)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -old and -new are both required")
		os.Exit(2)
	}

	oldSet, err := parseFile(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSet, err := parseFile(*newPath)
	if err != nil {
		fatal(err)
	}
	report := compare(oldSet, newSet, *maxTime)
	fmt.Print(report.String())
	if len(report.Failures) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfgate:", err)
	os.Exit(2)
}
