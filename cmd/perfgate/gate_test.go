package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line      string
		wantName  string
		wantNs    float64
		wantAlloc int64
		wantKnown bool
		wantOK    bool
	}{
		{"BenchmarkNodeStep-8   1680298   723.3 ns/op   5 B/op   0 allocs/op",
			"BenchmarkNodeStep", 723.3, 0, true, true},
		// No GOMAXPROCS suffix (GOMAXPROCS=1 runs omit it).
		{"BenchmarkNodeStep 	 1680298	       723.3 ns/op	       5 B/op	       0 allocs/op",
			"BenchmarkNodeStep", 723.3, 0, true, true},
		{"BenchmarkMLPFit-4   50   22077360 ns/op   2481284 B/op   36807 allocs/op",
			"BenchmarkMLPFit", 22077360, 36807, true, true},
		// Without -benchmem there is no allocs field; time still parses.
		{"BenchmarkLSPeakPower-2   4221649   271.7 ns/op",
			"BenchmarkLSPeakPower", 271.7, 0, false, true},
		{"pkg: sturgeon/internal/sim", "", 0, 0, false, false},
		{"PASS", "", 0, 0, false, false},
		{"ok  	sturgeon/internal/sim	5.063s", "", 0, 0, false, false},
	}
	for _, tc := range cases {
		name, r, ok := parseLine(tc.line)
		if ok != tc.wantOK {
			t.Errorf("parseLine(%q) ok = %v, want %v", tc.line, ok, tc.wantOK)
			continue
		}
		if !ok {
			continue
		}
		if name != tc.wantName || r.NsPerOp != tc.wantNs ||
			r.AllocsPerOp != tc.wantAlloc || r.AllocsKnown != tc.wantKnown {
			t.Errorf("parseLine(%q) = %q %+v", tc.line, name, r)
		}
	}
}

func writeBench(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParseFileAggregatesMin pins the -count=N discipline: repeated
// samples collapse to the minimum ns/op and minimum allocs/op, the
// least-noisy estimate of each.
func TestParseFileAggregatesMin(t *testing.T) {
	path := writeBench(t, strings.Join([]string{
		"BenchmarkX-8  100  900.0 ns/op  0 B/op  3 allocs/op",
		"BenchmarkX-8  100  850.0 ns/op  0 B/op  2 allocs/op",
		"BenchmarkX-8  100  910.0 ns/op  0 B/op  3 allocs/op",
	}, "\n"))
	set, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := set["BenchmarkX"]
	if r.NsPerOp != 850.0 || r.AllocsPerOp != 2 || r.Samples != 3 {
		t.Fatalf("aggregate = %+v, want min(850 ns, 2 allocs) over 3 samples", r)
	}
}

func TestParseFileRejectsEmpty(t *testing.T) {
	if _, err := parseFile(writeBench(t, "PASS\nok pkg 1.2s\n")); err == nil {
		t.Fatal("transcript with no benchmark lines parsed without error")
	}
}

func result(ns float64, allocs int64) Result {
	return Result{NsPerOp: ns, AllocsPerOp: allocs, AllocsKnown: true, Samples: 1}
}

// TestGateRedOnTimeRegression is the acceptance demonstration: an
// injected 15% slowdown must turn the gate red at the 10% limit.
func TestGateRedOnTimeRegression(t *testing.T) {
	oldSet := map[string]Result{"BenchmarkNodeStep": result(1000, 0)}
	newSet := map[string]Result{"BenchmarkNodeStep": result(1150, 0)}
	rep := compare(oldSet, newSet, 0.10)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "+15.0%") {
		t.Fatalf("15%% slowdown not caught: %+v", rep.Failures)
	}
}

func TestGateGreenWithinBudget(t *testing.T) {
	oldSet := map[string]Result{"BenchmarkNodeStep": result(1000, 2)}
	newSet := map[string]Result{"BenchmarkNodeStep": result(1090, 2)}
	if rep := compare(oldSet, newSet, 0.10); len(rep.Failures) != 0 {
		t.Fatalf("9%% drift failed the 10%% gate: %+v", rep.Failures)
	}
}

// TestGateRedOnAnyAllocIncrease: allocations have no noise band — a
// single new alloc/op on a zero-alloc hot path is a correctness bug in
// this PR's contract, so the tolerance is exactly zero.
func TestGateRedOnAnyAllocIncrease(t *testing.T) {
	oldSet := map[string]Result{"BenchmarkNodeStep": result(1000, 0)}
	newSet := map[string]Result{"BenchmarkNodeStep": result(1000, 1)}
	rep := compare(oldSet, newSet, 0.10)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "allocs/op 0 -> 1") {
		t.Fatalf("0 -> 1 allocs/op not caught: %+v", rep.Failures)
	}
}

func TestGateAllocDecreaseAndFasterPass(t *testing.T) {
	oldSet := map[string]Result{"BenchmarkNodeStep": result(1000, 5)}
	newSet := map[string]Result{"BenchmarkNodeStep": result(700, 0)}
	if rep := compare(oldSet, newSet, 0.10); len(rep.Failures) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", rep.Failures)
	}
}

// TestGateSkipsAllocGateWithoutBenchmem: a baseline captured without
// -benchmem cannot anchor an allocation verdict.
func TestGateSkipsAllocGateWithoutBenchmem(t *testing.T) {
	oldSet := map[string]Result{"BenchmarkX": {NsPerOp: 1000, Samples: 1}}
	newSet := map[string]Result{"BenchmarkX": result(1000, 7)}
	if rep := compare(oldSet, newSet, 0.10); len(rep.Failures) != 0 {
		t.Fatalf("alloc gate fired without a -benchmem baseline: %+v", rep.Failures)
	}
}

func TestGateNewOnlyPassesOldOnlyWarns(t *testing.T) {
	oldSet := map[string]Result{"BenchmarkGone": result(1000, 0)}
	newSet := map[string]Result{"BenchmarkFresh": result(1000, 0)}
	rep := compare(oldSet, newSet, 0.10)
	if len(rep.Failures) != 0 {
		t.Fatalf("benchmark without baseline failed the gate: %+v", rep.Failures)
	}
	if len(rep.Warnings) != 1 || !strings.Contains(rep.Warnings[0], "BenchmarkGone") {
		t.Fatalf("deleted benchmark did not warn: %+v", rep.Warnings)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Verdict != "new (no baseline)" {
		t.Fatalf("rows = %+v", rep.Rows)
	}
}

// TestEndToEndTranscripts drives the real parser with full transcripts
// (headers, PASS lines, GOMAXPROCS suffixes) through the comparison.
func TestEndToEndTranscripts(t *testing.T) {
	oldPath := writeBench(t, `goos: linux
goarch: amd64
pkg: sturgeon/internal/sim
BenchmarkNodeStep-8  1500000  760.0 ns/op  6 B/op  0 allocs/op
BenchmarkNodeStep-8  1500000  755.0 ns/op  6 B/op  0 allocs/op
PASS
ok  	sturgeon/internal/sim	5.063s
`)
	newPath := writeBench(t, `goos: linux
pkg: sturgeon/internal/sim
BenchmarkNodeStep  1200000  890.0 ns/op  6 B/op  1 allocs/op
PASS
`)
	oldSet, err := parseFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newSet, err := parseFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	rep := compare(oldSet, newSet, 0.10)
	// 890 vs min(760,755)=755 is +17.9% and 0 -> 1 allocs: both gates.
	if len(rep.Failures) != 2 {
		t.Fatalf("want time + alloc failures, got %+v", rep.Failures)
	}
	if rep.Rows[0].Verdict != "FAIL time+allocs" {
		t.Fatalf("verdict = %q", rep.Rows[0].Verdict)
	}
	if !strings.Contains(rep.String(), "FAIL:") {
		t.Fatalf("report does not surface failures:\n%s", rep.String())
	}
}
