// Command bench runs the reproducible fleet benchmark harness
// (internal/bench): a pinned scenario matrix of fleet sizes × fault
// plans × dispatch policies, each stepped serially and on the worker
// pool, measuring wall-time, node-steps per second and allocations while
// byte-checking that seeded replay is identical at every parallelism
// level. It writes the machine-readable report (BENCH_fleet.json) and
// exits non-zero when determinism breaks or a measurement violates the
// schema's invariants — the CI bench job runs exactly this binary.
//
// Usage:
//
//	go run ./cmd/bench -nodes 4,16 -parallelism 1,2,8 -duration 40 \
//	    -policies round-robin,least-loaded -faults clean,default \
//	    -seed 20260806 -out BENCH_fleet.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sturgeon/internal/bench"
	"sturgeon/internal/cmdutil"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/trace"
)

func parseInts(s, flagName string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-%s: %q is not a positive integer", flagName, f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", flagName)
	}
	return out, nil
}

func parseNames(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func main() {
	def := bench.DefaultOptions()
	nodes := flag.String("nodes", "4,16", "comma-separated fleet sizes")
	parallelism := flag.String("parallelism", "1,2,8",
		"comma-separated node-stepping parallelism levels (1 is always added as the serial baseline)")
	duration := flag.Int("duration", def.DurationS, "simulated seconds per scenario")
	policies := flag.String("policies", strings.Join(def.Policies, ","),
		"comma-separated dispatch policies (round-robin, least-loaded)")
	faultSpecs := flag.String("faults", strings.Join(def.FaultSpecs, ","),
		"comma-separated fault plans (clean, default)")
	repeat := flag.Int("repeat", def.Repeats, "best-of count per matrix cell")
	coordination := flag.Bool("coordination", def.Coordination,
		"run the pinned even-split vs coordinated-caps pair and enforce the win gate")
	placementPair := flag.Bool("placement", def.Placement,
		"run the pinned random-pairing vs placement-engine pair and enforce the win gate")
	partitionPair := flag.Bool("partition", def.Partition,
		"run the pinned coordpartition8 stale-cap vs leased pair and enforce the leased-beats-cliff win gate")
	fleet10k := flag.Bool("fleet10k", def.Fleet10k,
		"run the pinned 10k-node diurnal scenario on the event engine")
	fleet10kBudget := flag.Float64("fleet10k-budget", def.Fleet10kWallBudgetS,
		"wall-clock seconds the fleet10k scenario may take before the run fails (0 disables the gate)")
	out := flag.String("out", "BENCH_fleet.json", "report path ('' skips writing)")
	events := flag.String("events", "",
		"replay the granted coordination scenario with journaling and write the sturgeon/events/v1 dump to PATH")
	traceOut := flag.String("trace", "",
		"with the same replay, write the causal decision trace (sturgeon/trace/v1) to PATH")
	common := cmdutil.Register(def.Seed)
	common.Parse()

	fleetSizes, err := parseInts(*nodes, "nodes")
	if err != nil {
		fatal(err)
	}
	pars, err := parseInts(*parallelism, "parallelism")
	if err != nil {
		fatal(err)
	}
	opt := bench.Options{
		FleetSizes:   fleetSizes,
		Parallelisms: pars,
		DurationS:    *duration,
		Policies:     parseNames(*policies),
		FaultSpecs:   parseNames(*faultSpecs),
		Seed:         common.Seed,
		Repeats:      *repeat,
		Coordination: *coordination,
		Placement:    *placementPair,
		Partition:    *partitionPair,
		Fleet10k:     *fleet10k,

		Fleet10kWallBudgetS: *fleet10kBudget,
	}

	rep, err := bench.Execute(opt)
	if rep != nil {
		if common.JSON {
			if jerr := jsonio.Encode(os.Stdout, rep); jerr != nil {
				fatal(jerr)
			}
		} else {
			printReport(rep)
		}
		if *out != "" {
			if werr := bench.WriteFile(*out, rep); werr != nil {
				fatal(werr)
			}
			if !common.JSON {
				fmt.Printf("wrote %s\n", *out)
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	if *events != "" || *traceOut != "" {
		eventsDoc, traceDoc, _, err := bench.ObsRun(common.Seed)
		if err != nil {
			fatal(err)
		}
		write := func(path string, doc any) {
			if path == "" {
				return
			}
			if err := jsonio.WriteFile(path, doc); err != nil {
				fatal(err)
			}
			if !common.JSON {
				fmt.Printf("wrote %s\n", path)
			}
		}
		write(*events, eventsDoc)
		write(*traceOut, traceDoc)
	}
}

func printReport(rep *bench.Report) {
	fmt.Printf("host: %s, GOMAXPROCS %d, %d CPUs\n", rep.GoVersion, rep.GOMAXPROCS, rep.NumCPU)
	tbl := trace.NewTable("fleet benchmark",
		"scenario", "par", "wall_s", "steps/s", "speedup", "allocs/step", "qos", "deterministic")
	for _, r := range rep.Runs {
		tbl.Addf(r.Scenario, r.Parallelism, r.WallSeconds, r.NodeStepsPerSec,
			fmt.Sprintf("%.2fx", r.SpeedupVsSerial), r.AllocsPerStep, r.QoSRate, rep.Deterministic)
	}
	fmt.Print(tbl.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", strings.TrimPrefix(err.Error(), "bench: "))
	os.Exit(1)
}
