package main

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"sturgeon/internal/coordinator"
)

// TestSturgeondIntegration builds the real daemon binary, starts it on a
// loopback port, and drives a 4-node fleet through the HTTP client: one
// node pinned against its cap, one stranding watts, two in band. The
// coordinator must move watts from the donor to the starved node within
// a few epochs while conserving the 400 W budget — the CI convergence
// gate for the service as actually shipped, flags and all.
func TestSturgeondIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "sturgeond")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building sturgeond: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	daemon := exec.CommandContext(ctx, bin,
		"-addr", "127.0.0.1:0",
		"-budget", "400", "-nodes", "4",
		"-min-cap", "60", "-max-cap", "140",
		"-json")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("starting sturgeond: %v", err)
	}
	defer func() {
		_ = daemon.Process.Kill()
		_ = daemon.Wait()
	}()

	// The -json banner names the bound address (we asked for port 0).
	// Plain json.Decoder, not jsonio.Decode: the latter reads to EOF to
	// reject trailing data, which blocks forever on a live pipe.
	var b struct {
		Addr    string  `json:"addr"`
		BudgetW float64 `json:"budget_w"`
	}
	if err := json.NewDecoder(stdout).Decode(&b); err != nil {
		t.Fatalf("reading startup banner: %v", err)
	}
	if b.BudgetW != 400 {
		t.Fatalf("banner budget %.0f, want 400", b.BudgetW)
	}

	cl := coordinator.NewClient("http://"+b.Addr, 1)
	cl.BackoffBase = 10 * time.Millisecond
	cl.Retries = 5 // ride out the listener warming up

	ids := []string{"n0", "n1", "n2", "n3"}
	caps := map[string]float64{}
	for epoch := 0; epoch <= 12; epoch++ {
		for _, id := range ids {
			slack, pw := 0.15, 90.0
			if epoch > 0 {
				switch id {
				case "n0": // starved: pinned against its cap
					slack, pw = 0.05, caps[id]-0.5
				case "n1": // donor: saturated well below its cap
					slack, pw = 0.6, 70
				}
			}
			capW := 100.0
			if epoch > 0 {
				capW = caps[id]
			}
			g, err := cl.Report(ctx, coordinator.NodeReport{
				Schema: coordinator.Schema, NodeID: id, Epoch: epoch,
				Slack: slack, P95S: 0.004, PowerW: pw, CapW: capW,
				BEThroughputUPS: 1000, Healthy: true,
			})
			if err != nil {
				t.Fatalf("epoch %d node %s: %v", epoch, id, err)
			}
			caps[id] = g.CapW
		}
	}

	if !(caps["n0"] > 100) {
		t.Errorf("starved node never grew past the even split: %.1f W", caps["n0"])
	}
	if !(caps["n1"] < 100) {
		t.Errorf("donor never shrank below the even split: %.1f W", caps["n1"])
	}

	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatalf("/fleet/status: %v", err)
	}
	sum := st.PoolW
	for _, n := range st.Nodes {
		sum += n.CapW
	}
	if math.Abs(sum-400) > 1e-6 {
		t.Errorf("budget not conserved: caps+pool %.3f W", sum)
	}
	if len(st.Nodes) != 4 {
		t.Errorf("status lists %d nodes, want 4", len(st.Nodes))
	}
}
