package main

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"sturgeon/internal/coordinator"
	"sturgeon/internal/durable"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

// buildSturgeond compiles the daemon binary into a test temp dir.
func buildSturgeond(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sturgeond")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building sturgeond: %v", err)
	}
	return bin
}

// promValue extracts the value of one un-labelled metric family from a
// Prometheus text scrape.
func promValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s has unparseable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s absent from scrape:\n%s", name, text)
	return 0
}

// TestSturgeondIntegration builds the real daemon binary, starts it on a
// loopback port, and drives a 4-node fleet through the HTTP client: one
// node pinned against its cap, one stranding watts, two in band. The
// coordinator must move watts from the donor to the starved node within
// a few epochs while conserving the 400 W budget — the CI convergence
// gate for the service as actually shipped, flags and all.
func TestSturgeondIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := buildSturgeond(t)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	daemon := exec.CommandContext(ctx, bin,
		"-addr", "127.0.0.1:0",
		"-budget", "400", "-nodes", "4",
		"-min-cap", "60", "-max-cap", "140",
		"-json")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("starting sturgeond: %v", err)
	}
	defer func() {
		_ = daemon.Process.Kill()
		_ = daemon.Wait()
	}()

	// The -json banner names the bound address (we asked for port 0).
	// Plain json.Decoder, not jsonio.Decode: the latter reads to EOF to
	// reject trailing data, which blocks forever on a live pipe.
	var b struct {
		Addr    string  `json:"addr"`
		BudgetW float64 `json:"budget_w"`
	}
	if err := json.NewDecoder(stdout).Decode(&b); err != nil {
		t.Fatalf("reading startup banner: %v", err)
	}
	if b.BudgetW != 400 {
		t.Fatalf("banner budget %.0f, want 400", b.BudgetW)
	}

	cl := coordinator.NewClient("http://"+b.Addr, 1)
	cl.BackoffBase = 10 * time.Millisecond
	cl.Retries = 5 // ride out the listener warming up

	ids := []string{"n0", "n1", "n2", "n3"}
	caps := map[string]float64{}
	for epoch := 0; epoch <= 12; epoch++ {
		for _, id := range ids {
			slack, pw := 0.15, 90.0
			if epoch > 0 {
				switch id {
				case "n0": // starved: pinned against its cap
					slack, pw = 0.05, caps[id]-0.5
				case "n1": // donor: saturated well below its cap
					slack, pw = 0.6, 70
				}
			}
			capW := 100.0
			if epoch > 0 {
				capW = caps[id]
			}
			g, err := cl.Report(ctx, coordinator.NodeReport{
				Schema: coordinator.Schema, NodeID: id, Epoch: epoch,
				Slack: slack, P95S: 0.004, PowerW: pw, CapW: capW,
				BEThroughputUPS: 1000, Healthy: true,
			})
			if err != nil {
				t.Fatalf("epoch %d node %s: %v", epoch, id, err)
			}
			caps[id] = g.CapW
		}
	}

	if !(caps["n0"] > 100) {
		t.Errorf("starved node never grew past the even split: %.1f W", caps["n0"])
	}
	if !(caps["n1"] < 100) {
		t.Errorf("donor never shrank below the even split: %.1f W", caps["n1"])
	}

	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatalf("/fleet/status: %v", err)
	}
	sum := st.PoolW
	for _, n := range st.Nodes {
		sum += n.CapW
	}
	if math.Abs(sum-400) > 1e-6 {
		t.Errorf("budget not conserved: caps+pool %.3f W", sum)
	}
	if len(st.Nodes) != 4 {
		t.Errorf("status lists %d nodes, want 4", len(st.Nodes))
	}

	// The decision trail must agree with the run we just drove: the
	// /metrics counters mirror the status stats, and the /v1/events
	// journal carries the cap movements behind the convergence.
	resp, err := http.Get("http://" + b.Addr + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	text := string(scrape)
	if got := promValue(t, text, "coordinator_reports_total"); got != float64(st.Stats.Reports) {
		t.Errorf("coordinator_reports_total %v, status says %d", got, st.Stats.Reports)
	}
	if got := promValue(t, text, "coordinator_donations_total"); got != float64(st.Stats.Donations) {
		t.Errorf("coordinator_donations_total %v, status says %d", got, st.Stats.Donations)
	}
	if got := promValue(t, text, "coordinator_epoch"); got != float64(st.Epoch) {
		t.Errorf("coordinator_epoch %v, status says %d", got, st.Epoch)
	}

	resp, err = http.Get("http://" + b.Addr + "/v1/events")
	if err != nil {
		t.Fatalf("/v1/events: %v", err)
	}
	var events obs.EventsDoc
	decodeErr := jsonio.Decode(resp.Body, &events)
	resp.Body.Close()
	if decodeErr != nil {
		t.Fatalf("/v1/events: %v", decodeErr)
	}
	var grantEvents int
	for _, ev := range events.Events {
		if ev.Type == obs.EventCapGranted {
			grantEvents++
		}
	}
	if grantEvents < st.Stats.Donations+st.Stats.GrantsUp {
		t.Errorf("journal has %d cap_granted events, below the %d moves the stats report",
			grantEvents, st.Stats.Donations+st.Stats.GrantsUp)
	}
	if st.Stats.Donations == 0 {
		t.Error("convergence loop recorded no donations; event assertions are vacuous")
	}

	// Pagination: the cursor one short of the end yields exactly the last
	// event; the end cursor yields none.
	last := events.Events[len(events.Events)-1].Seq
	resp, err = http.Get("http://" + b.Addr + "/v1/events?since=" + strconv.FormatInt(last-1, 10))
	if err != nil {
		t.Fatal(err)
	}
	var tail obs.EventsDoc
	decodeErr = jsonio.Decode(resp.Body, &tail)
	resp.Body.Close()
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if len(tail.Events) != 1 || tail.Events[0].Seq != last {
		t.Errorf("since=%d returned %d events, want exactly seq %d", last-1, len(tail.Events), last)
	}

	// Graceful shutdown: SIGTERM must drain and exit zero well inside the
	// daemon's 5 s deadline. (The deferred Kill then hits a dead process
	// and is ignored; ctx still bounds a hung Wait.)
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := daemon.Wait(); err != nil {
		t.Errorf("daemon exited uncleanly on SIGTERM after %v: %v", time.Since(start), err)
	}
}

// startSturgeond launches the built binary on a loopback port with the
// shared 4-node/400 W arbitration flags plus extras, and decodes the
// -json banner for the bound address and the recovery path taken.
func startSturgeond(t *testing.T, ctx context.Context, bin string, extra ...string) (*exec.Cmd, string, string) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-budget", "400", "-nodes", "4",
		"-min-cap", "60", "-max-cap", "140",
		"-json"}, extra...)
	daemon := exec.CommandContext(ctx, bin, args...)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("starting sturgeond: %v", err)
	}
	var b struct {
		Addr     string `json:"addr"`
		Recovery string `json:"recovery"`
	}
	if err := json.NewDecoder(stdout).Decode(&b); err != nil {
		_ = daemon.Process.Kill()
		_ = daemon.Wait()
		t.Fatalf("reading startup banner: %v", err)
	}
	return daemon, b.Addr, b.Recovery
}

// driveConvergence pushes the canonical starved/donor fleet through the
// daemon for the given epoch count and returns the final caps.
func driveConvergence(t *testing.T, ctx context.Context, addr string, epochs int) map[string]float64 {
	t.Helper()
	cl := coordinator.NewClient("http://"+addr, 1)
	cl.BackoffBase = 10 * time.Millisecond
	cl.Retries = 5
	caps := map[string]float64{}
	for epoch := 0; epoch <= epochs; epoch++ {
		for _, id := range []string{"n0", "n1", "n2", "n3"} {
			slack, pw := 0.15, 90.0
			if epoch > 0 {
				switch id {
				case "n0":
					slack, pw = 0.05, caps[id]-0.5
				case "n1":
					slack, pw = 0.6, 70
				}
			}
			capW := 100.0
			if epoch > 0 {
				capW = caps[id]
			}
			g, err := cl.Report(ctx, coordinator.NodeReport{
				Schema: coordinator.Schema, NodeID: id, Epoch: epoch,
				Slack: slack, P95S: 0.004, PowerW: pw, CapW: capW,
				BEThroughputUPS: 1000, Healthy: true,
			})
			if err != nil {
				t.Fatalf("epoch %d node %s: %v", epoch, id, err)
			}
			caps[id] = g.CapW
		}
	}
	return caps
}

func httpGetBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestSturgeondRecovery is the end-to-end crash-recovery gate for the
// daemon as shipped: run with -state, drive arbitration, SIGKILL
// mid-flight, restart against the same state dir, and require the
// recovered /fleet/status to be byte-identical to the pre-kill capture.
// Then SIGTERM the survivor and verify the drain cut a final snapshot
// that a cold Recover loads with zero log replay.
func TestSturgeondRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := buildSturgeond(t)
	stateDir := t.TempDir()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	d1, addr1, rec1 := startSturgeond(t, ctx, bin,
		"-state", stateDir, "-snapshot-every", "100ms")
	defer func() {
		_ = d1.Process.Kill()
		_ = d1.Wait()
	}()
	if rec1 != "no_snapshot" {
		t.Errorf("first boot on an empty state dir recovered via %q, want no_snapshot", rec1)
	}

	caps := driveConvergence(t, ctx, addr1, 10)
	if !(caps["n0"] > 100 && caps["n1"] < 100) {
		t.Fatalf("fleet did not converge before the kill: n0 %.1f W, n1 %.1f W", caps["n0"], caps["n1"])
	}
	preKill := httpGetBody(t, "http://"+addr1+"/fleet/status")

	// SIGKILL: no drain, no final snapshot — recovery must come from the
	// write-ahead log (plus whatever the background ticker snapshotted).
	if err := d1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d1.Wait()

	d2, addr2, rec2 := startSturgeond(t, ctx, bin, "-state", stateDir)
	defer func() {
		_ = d2.Process.Kill()
		_ = d2.Wait()
	}()
	switch rec2 {
	case "clean", "no_snapshot", "torn_log":
		// Healthy-store recovery paths; which one depends on whether the
		// ticker cut a snapshot before the kill.
	default:
		t.Errorf("restart degraded on a healthy state dir: recovery %q", rec2)
	}

	postRecovery := httpGetBody(t, "http://"+addr2+"/fleet/status")
	if string(postRecovery) != string(preKill) {
		t.Errorf("recovered /fleet/status differs from pre-kill capture.\n--- pre-kill ---\n%s\n--- recovered ---\n%s",
			preKill, postRecovery)
	}

	scrape := string(httpGetBody(t, "http://"+addr2+"/metrics"))
	if got := promValue(t, scrape, "coordinator_recoveries_total"); got != 1 {
		t.Errorf("coordinator_recoveries_total = %v, want 1", got)
	}

	// A couple more epochs must arbitrate from where the fleet left off:
	// the recovered coordinator serves fresher epochs, never rewinds.
	cl := coordinator.NewClient("http://"+addr2, 1)
	cl.BackoffBase = 10 * time.Millisecond
	g, err := cl.Report(ctx, coordinator.NodeReport{
		Schema: coordinator.Schema, NodeID: "n0", Epoch: 11,
		Slack: 0.05, P95S: 0.004, PowerW: caps["n0"] - 0.5, CapW: caps["n0"],
		BEThroughputUPS: 1000, Healthy: true,
	})
	if err != nil {
		t.Fatalf("post-recovery report: %v", err)
	}
	if g.CapW < caps["n0"]-1e-9 {
		t.Errorf("post-recovery grant %.1f W rewound below the pre-kill cap %.1f W", g.CapW, caps["n0"])
	}

	// SIGTERM drains and cuts a final snapshot: a cold Recover on the
	// state dir must load it cleanly with nothing left to replay.
	if err := d2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly on SIGTERM: %v", err)
	}
	store, err := durable.Open(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	_, info, err := coordinator.Recover(store, coordinator.Options{
		BudgetW: 400, MinCapW: 60, MaxCapW: 140, FleetSize: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SnapshotLoaded || info.Reason != "clean" {
		t.Errorf("SIGTERM did not leave a loadable snapshot: %+v", info)
	}
	if info.ReplayedReports != 0 {
		t.Errorf("final snapshot left %d reports to replay, want 0", info.ReplayedReports)
	}
}
