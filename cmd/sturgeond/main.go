// Command sturgeond runs the fleet power-budget coordinator as an HTTP
// control-plane service. Nodes POST slack telemetry to /v1/report each
// epoch and apply the cap granted back; operators read /fleet/status,
// scrape /metrics (Prometheus text exposition) and tail the decision
// journal at /v1/events?since=SEQ.
//
// Usage:
//
//	sturgeond [-addr HOST:PORT] [-budget W] [-nodes N]
//	          [-min-cap W] [-max-cap W] [-alpha F] [-beta F]
//	          [-journal N] [-pprof] [-seed N] [-json] [-version]
//
// The daemon is stateless across restarts by design: nodes keep running
// on their last-granted caps while it is down and re-adopt on the first
// report after it returns. SIGINT/SIGTERM drain in-flight requests
// through http.Server.Shutdown with a 5 s deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sturgeon/internal/cmdutil"
	"sturgeon/internal/coordinator"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

type config struct {
	addr       string
	journalCap int
	pprof      bool
	opt        coordinator.Options
}

// banner is the startup document: the effective arbitration parameters,
// printed as text or (with -json) as a schema-less JSON object.
type banner struct {
	Addr    string  `json:"addr"`
	BudgetW float64 `json:"budget_w"`
	Nodes   int     `json:"nodes"`
	MinCapW float64 `json:"min_cap_w"`
	MaxCapW float64 `json:"max_cap_w"`
	Alpha   float64 `json:"alpha"`
	Beta    float64 `json:"beta"`
}

// shutdownTimeout bounds the graceful drain after SIGINT/SIGTERM.
const shutdownTimeout = 5 * time.Second

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7015", "listen address")
	flag.Float64Var(&cfg.opt.BudgetW, "budget", 800, "total fleet power budget in watts")
	flag.IntVar(&cfg.opt.FleetSize, "nodes", 8, "expected fleet size (epochs close when all have reported)")
	flag.Float64Var(&cfg.opt.MinCapW, "min-cap", 0, "per-node cap floor in watts (0 = default)")
	flag.Float64Var(&cfg.opt.MaxCapW, "max-cap", 0, "per-node cap ceiling in watts (0 = default)")
	flag.Float64Var(&cfg.opt.Alpha, "alpha", 0, "lower slack band bound (0 = default 0.10)")
	flag.Float64Var(&cfg.opt.Beta, "beta", 0, "upper slack band bound (0 = default 0.20)")
	flag.IntVar(&cfg.journalCap, "journal", 0, "decision-journal ring capacity (0 = default)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	common := cmdutil.Register(42)
	common.Parse()

	c, err := coordinator.New(cfg.opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(2)
	}
	srv := coordinator.NewServer(c)
	srv.SetObs(obs.New(cfg.journalCap))

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(2)
	}
	eff := c.Options()
	b := banner{
		Addr: ln.Addr().String(), BudgetW: eff.BudgetW, Nodes: eff.FleetSize,
		MinCapW: eff.MinCapW, MaxCapW: eff.MaxCapW, Alpha: eff.Alpha, Beta: eff.Beta,
	}
	if common.JSON {
		_ = jsonio.Encode(os.Stdout, b)
	} else {
		fmt.Printf("sturgeond listening on %s: budget %.0f W over %d nodes, caps [%.0f, %.0f] W, band [%.2f, %.2f]\n",
			b.Addr, b.BudgetW, b.Nodes, b.MinCapW, b.MaxCapW, b.Alpha, b.Beta)
	}

	httpSrv := &http.Server{Handler: mux}
	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "sturgeond: %s: draining (max %s)\n", sig, shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sturgeond: shutdown:", err)
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(1)
	}
	<-done
}
