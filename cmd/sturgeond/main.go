// Command sturgeond runs the fleet power-budget coordinator as an HTTP
// control-plane service. Nodes POST slack telemetry to /v1/report each
// epoch and apply the cap granted back; operators read /fleet/status,
// scrape /metrics (Prometheus text exposition), tail the decision
// journal at /v1/events?since=SEQ and the causal trace at
// /v1/trace?since=SEQ, and read the fleet timeline at /v1/timeline.
//
// Usage:
//
//	sturgeond [-addr HOST:PORT] [-budget W] [-nodes N]
//	          [-min-cap W] [-max-cap W] [-alpha F] [-beta F]
//	          [-lease-ttl EPOCHS] [-state DIR] [-snapshot-every D]
//	          [-timeline PATH] [-journal N] [-pprof] [-seed N]
//	          [-json] [-version]
//
// With -lease-ttl every grant is a fenced lease: a node that misses that
// many epochs of renewals has its watts reclaimed into the pool for
// re-arbitration (the node, seeing its renewals fail, independently
// ratchets itself toward its even-split floor), and stale grants are
// fenced off by monotone per-node tokens. Without it a silent node
// keeps its last cap frozen indefinitely.
//
// Without -state the daemon is stateless across restarts: nodes keep
// running on their last-granted caps while it is down and re-adopt on
// the first report after it returns. With -state DIR every applied
// report is write-ahead logged and the arbitration state is snapshotted
// periodically (and on SIGTERM), so a restarted daemon recovers the
// exact pre-crash grant schedule — a corrupt snapshot or torn log
// degrades to the stateless behaviour, never to over-subscription
// (see internal/coordinator.Recover). SIGINT/SIGTERM drain in-flight
// requests through http.Server.Shutdown with a 5 s deadline, then cut a
// final snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sturgeon/internal/cmdutil"
	"sturgeon/internal/coordinator"
	"sturgeon/internal/durable"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

type config struct {
	addr       string
	journalCap int
	pprof      bool
	stateDir   string
	snapEvery  time.Duration
	opt        coordinator.Options
}

// banner is the startup document: the effective arbitration parameters,
// printed as text or (with -json) as a schema-less JSON object.
type banner struct {
	Addr    string  `json:"addr"`
	BudgetW float64 `json:"budget_w"`
	Nodes   int     `json:"nodes"`
	MinCapW float64 `json:"min_cap_w"`
	MaxCapW float64 `json:"max_cap_w"`
	Alpha   float64 `json:"alpha"`
	Beta    float64 `json:"beta"`
	// LeaseTTL is the grant lease TTL in epochs (0 = stale-freeze).
	LeaseTTL int `json:"lease_ttl_epochs,omitempty"`
	// StateDir is the durable state directory ("" = stateless);
	// Recovery the recovery path taken when state was loaded.
	StateDir string `json:"state_dir,omitempty"`
	Recovery string `json:"recovery,omitempty"`
}

// shutdownTimeout bounds the graceful drain after SIGINT/SIGTERM.
const shutdownTimeout = 5 * time.Second

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7015", "listen address")
	flag.Float64Var(&cfg.opt.BudgetW, "budget", 800, "total fleet power budget in watts")
	flag.IntVar(&cfg.opt.FleetSize, "nodes", 8, "expected fleet size (epochs close when all have reported)")
	flag.Float64Var(&cfg.opt.MinCapW, "min-cap", 0, "per-node cap floor in watts (0 = default)")
	flag.Float64Var(&cfg.opt.MaxCapW, "max-cap", 0, "per-node cap ceiling in watts (0 = default)")
	flag.Float64Var(&cfg.opt.Alpha, "alpha", 0, "lower slack band bound (0 = default 0.10)")
	flag.Float64Var(&cfg.opt.Beta, "beta", 0, "upper slack band bound (0 = default 0.20)")
	flag.IntVar(&cfg.opt.LeaseEpochs, "lease-ttl", 0,
		"grant lease TTL in epochs: a node silent this long has its watts reclaimed into the pool (0 = legacy stale-freeze)")
	flag.StringVar(&cfg.stateDir, "state", "", "durable state directory (empty = stateless across restarts)")
	flag.DurationVar(&cfg.snapEvery, "snapshot-every", 30*time.Second,
		"background snapshot period with -state (0 disables the ticker; SIGTERM still snapshots)")
	flag.IntVar(&cfg.journalCap, "journal", 0, "decision-journal ring capacity (0 = default)")
	timelinePath := flag.String("timeline", "",
		"write the fleet timeline (sturgeon/timeline/v1 JSON) to PATH at shutdown")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	common := cmdutil.Register(42)
	common.Parse()

	snk := obs.New(cfg.journalCap)

	// With a state dir the coordinator boots through the recovery ladder;
	// without one it starts fresh, exactly as before.
	var (
		c     *coordinator.Coordinator
		store *durable.FileStore
		info  coordinator.RecoveryInfo
		err   error
	)
	if cfg.stateDir != "" {
		store, err = durable.Open(cfg.stateDir)
		if err == nil {
			c, info, err = coordinator.Recover(store, cfg.opt, snk)
		}
		if err == nil {
			fmt.Fprintf(os.Stderr,
				"sturgeond: state %s: recovery %s (snapshot %v, %d reports replayed, epoch %d)\n",
				cfg.stateDir, info.Reason, info.SnapshotLoaded, info.ReplayedReports, info.Epoch)
		}
	} else {
		c, err = coordinator.New(cfg.opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(2)
	}
	srv := coordinator.NewServer(c)
	srv.SetObs(snk)
	if store != nil {
		srv.SetPersist(&coordinator.Persist{Store: store})
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(2)
	}
	eff := c.Options()
	b := banner{
		Addr: ln.Addr().String(), BudgetW: eff.BudgetW, Nodes: eff.FleetSize,
		MinCapW: eff.MinCapW, MaxCapW: eff.MaxCapW, Alpha: eff.Alpha, Beta: eff.Beta,
		LeaseTTL: eff.LeaseEpochs,
		StateDir: cfg.stateDir,
	}
	if cfg.stateDir != "" {
		b.Recovery = info.Reason
	}
	if common.JSON {
		_ = jsonio.Encode(os.Stdout, b)
	} else {
		lease := "stale-freeze"
		if b.LeaseTTL > 0 {
			lease = fmt.Sprintf("lease %d epochs", b.LeaseTTL)
		}
		fmt.Printf("sturgeond listening on %s: budget %.0f W over %d nodes, caps [%.0f, %.0f] W, band [%.2f, %.2f], %s\n",
			b.Addr, b.BudgetW, b.Nodes, b.MinCapW, b.MaxCapW, b.Alpha, b.Beta, lease)
	}

	// Background snapshot ticker: bounds the log replay a crash recovery
	// has to do. The SIGTERM path below cuts a final snapshot regardless.
	snapStop := make(chan struct{})
	if store != nil && cfg.snapEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.snapEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := srv.Snapshot(); err != nil {
						fmt.Fprintln(os.Stderr, "sturgeond: snapshot:", err)
					}
				case <-snapStop:
					return
				}
			}
		}()
	}

	httpSrv := coordinator.NewHTTPServer(cfg.addr, mux)
	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "sturgeond: %s: draining (max %s)\n", sig, shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sturgeond: shutdown:", err)
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(1)
	}
	<-done
	close(snapStop)
	if *timelinePath != "" {
		// The live endpoint (/v1/timeline) serves the same document while
		// the daemon runs; the flag preserves the final state for offline
		// analysis (cmd/obsreport) after the process exits.
		if err := jsonio.WriteFile(*timelinePath, snk.Timeline.Doc()); err != nil {
			fmt.Fprintln(os.Stderr, "sturgeond: writing timeline:", err)
		}
	}
	if store != nil {
		if err := srv.Snapshot(); err != nil {
			fmt.Fprintln(os.Stderr, "sturgeond: final snapshot:", err)
		}
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sturgeond: state close:", err)
		}
	}
}
