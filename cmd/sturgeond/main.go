// Command sturgeond runs the fleet power-budget coordinator as an HTTP
// control-plane service. Nodes POST slack telemetry to /v1/report each
// epoch and apply the cap granted back; operators read /fleet/status.
//
// Usage:
//
//	sturgeond [-addr HOST:PORT] [-budget W] [-nodes N]
//	          [-min-cap W] [-max-cap W] [-alpha F] [-beta F]
//	          [-seed N] [-json] [-version]
//
// The daemon is stateless across restarts by design: nodes keep running
// on their last-granted caps while it is down and re-adopt on the first
// report after it returns.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"sturgeon/internal/cmdutil"
	"sturgeon/internal/coordinator"
	"sturgeon/internal/jsonio"
)

type config struct {
	addr string
	opt  coordinator.Options
}

// banner is the startup document: the effective arbitration parameters,
// printed as text or (with -json) as a schema-less JSON object.
type banner struct {
	Addr    string  `json:"addr"`
	BudgetW float64 `json:"budget_w"`
	Nodes   int     `json:"nodes"`
	MinCapW float64 `json:"min_cap_w"`
	MaxCapW float64 `json:"max_cap_w"`
	Alpha   float64 `json:"alpha"`
	Beta    float64 `json:"beta"`
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7015", "listen address")
	flag.Float64Var(&cfg.opt.BudgetW, "budget", 800, "total fleet power budget in watts")
	flag.IntVar(&cfg.opt.FleetSize, "nodes", 8, "expected fleet size (epochs close when all have reported)")
	flag.Float64Var(&cfg.opt.MinCapW, "min-cap", 0, "per-node cap floor in watts (0 = default)")
	flag.Float64Var(&cfg.opt.MaxCapW, "max-cap", 0, "per-node cap ceiling in watts (0 = default)")
	flag.Float64Var(&cfg.opt.Alpha, "alpha", 0, "lower slack band bound (0 = default 0.10)")
	flag.Float64Var(&cfg.opt.Beta, "beta", 0, "upper slack band bound (0 = default 0.20)")
	common := cmdutil.Register(42)
	common.Parse()

	c, err := coordinator.New(cfg.opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(2)
	}
	eff := c.Options()
	b := banner{
		Addr: ln.Addr().String(), BudgetW: eff.BudgetW, Nodes: eff.FleetSize,
		MinCapW: eff.MinCapW, MaxCapW: eff.MaxCapW, Alpha: eff.Alpha, Beta: eff.Beta,
	}
	if common.JSON {
		_ = jsonio.Encode(os.Stdout, b)
	} else {
		fmt.Printf("sturgeond listening on %s: budget %.0f W over %d nodes, caps [%.0f, %.0f] W, band [%.2f, %.2f]\n",
			b.Addr, b.BudgetW, b.Nodes, b.MinCapW, b.MaxCapW, b.Alpha, b.Beta)
	}
	if err := http.Serve(ln, coordinator.NewServer(c).Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "sturgeond:", err)
		os.Exit(1)
	}
}
