// Command sturgeon runs the Sturgeon runtime (or a baseline controller)
// on a simulated power-constrained node and prints a per-interval trace
// plus a summary — the quickest way to watch the system manage a
// co-location.
//
// Usage:
//
//	sturgeon [-ls memcached|xapian|img-dnn] [-be bs|fa|fe|rt|sp|fd]
//	         [-controller sturgeon|sturgeon-nob|parties|heracles]
//	         [-trace triangle|ramp|diurnal|constant] [-load 0.4]
//	         [-duration 400] [-seed 1] [-samples 1200] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"sturgeon/internal/control"
	"sturgeon/internal/core"
	"sturgeon/internal/experiments"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func main() {
	var (
		lsName   = flag.String("ls", "memcached", "latency-sensitive service (memcached, xapian, img-dnn)")
		beName   = flag.String("be", "rt", "best-effort application (bs, fa, fe, rt, sp, fd)")
		ctrlName = flag.String("controller", "sturgeon", "controller (sturgeon, sturgeon-nob, parties, heracles)")
		traceKnd = flag.String("trace", "triangle", "load trace (triangle, ramp, diurnal, constant)")
		load     = flag.Float64("load", 0.4, "load fraction for -trace constant")
		duration = flag.Int("duration", 400, "run length in seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		samples  = flag.Int("samples", 1200, "profiling sweep size for the predictor")
		verbose  = flag.Bool("v", false, "print every interval (default: every 10th)")
		traceCSV = flag.String("trace-csv", "", "replay a load trace from a CSV file (seconds,fraction)")
		modelDir = flag.String("models", "", "load a saved predictor from this directory instead of training")
		saveDir  = flag.String("save-models", "", "save the trained predictor to this directory")
	)
	flag.Parse()

	ls, ok := workload.ByName(*lsName)
	if !ok || ls.Class != workload.LS {
		fmt.Fprintf(os.Stderr, "unknown LS service %q\n", *lsName)
		os.Exit(2)
	}
	be, ok := workload.ByName(*beName)
	if !ok || be.Class != workload.BE {
		fmt.Fprintf(os.Stderr, "unknown BE application %q\n", *beName)
		os.Exit(2)
	}

	var tr workload.Trace
	if *traceCSV != "" {
		f, err := os.Open(*traceCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err = workload.ReplayCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*traceKnd = "csv-replay"
	}
	switch *traceKnd {
	case "triangle":
		tr = workload.Triangle(0.2, 0.8, float64(*duration))
	case "ramp":
		tr = workload.Ramp(0.2, 0.5, float64(*duration))
	case "diurnal":
		tr = workload.Diurnal(0.2, 1.0, float64(*duration))
	case "constant":
		tr = workload.Constant(*load)
	case "csv-replay":
		// already built above
	default:
		fmt.Fprintf(os.Stderr, "unknown trace %q\n", *traceKnd)
		os.Exit(2)
	}

	env := experiments.NewEnv(experiments.Config{Seed: *seed, Samples: *samples, DurationS: *duration})
	budget := env.Budget(ls)
	var ctrl control.Controller
	if *modelDir != "" && (*ctrlName == "sturgeon" || *ctrlName == "sturgeon-nob") {
		pred, err := models.LoadPredictor(*modelDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded predictor for %s+%s from %s\n", pred.LS.Name, pred.BE.Name, *modelDir)
		ctrl = core.New(env.Spec, pred, budget,
			core.Options{DisableBalancer: *ctrlName == "sturgeon-nob"})
	} else {
		fmt.Printf("training predictor for %s+%s (%d samples per app)...\n", ls.Name, be.Name, *samples)
		ctrl = env.NewController(*ctrlName, ls, be)
		if *saveDir != "" {
			if err := env.Predictor(ls, be).Save(*saveDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("saved predictor to %s\n", *saveDir)
		}
	}
	node := sim.NewNode(ls, be, *seed)
	if err := node.Apply(hw.SoloLS(env.Spec)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("node: %d cores, %.1f–%.1f GHz, %d LLC ways | budget %.1f W | QoS target %.0f ms at p95\n",
		env.Spec.Cores, float64(env.Spec.FreqMin), float64(env.Spec.FreqMax), env.Spec.LLCWays,
		float64(budget), ls.QoSTargetS*1e3)

	r := sim.Runner{Node: node, Ctrl: ctrl, Budget: budget, Trace: tr, DurationS: *duration}
	res := r.Run()

	fmt.Printf("%6s  %7s  %8s  %7s  %7s  %-32s\n", "t", "qps", "p95_ms", "power_w", "be_ups", "config")
	for i, st := range res.Intervals {
		if !*verbose && i%10 != 0 {
			continue
		}
		fmt.Printf("%6.0f  %7.0f  %8.2f  %7.1f  %7.0f  %-32s\n",
			st.Time, st.QPS, st.P95*1e3, float64(st.Power), st.BEThroughputUPS, st.Config)
	}

	fmt.Printf("\ncontroller=%s  qos_rate=%.4f  norm_be_thpt=%.4f  overload_frac=%.4f  breaker_trips=%d\n",
		res.Controller, res.QoSRate, res.NormBEThroughput, res.OverloadFrac, res.BreakerTrips)
}
