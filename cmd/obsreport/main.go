// Command obsreport joins the three observability dumps of one run —
// the causal trace (sturgeon/trace/v1), the fleet timeline
// (sturgeon/timeline/v1) and the decision journal (sturgeon/events/v1)
// — into an offline attribution report: what each decision mechanism
// (coordinator epochs, placement solves, governor harvests, ...) did to
// fleet BE throughput and QoS around its decisions, plus the top-k
// slowest causal chains. Text by default, -json emits the validated
// sturgeon/obsreport/v1 document.
//
// Usage:
//
//	repro -exp placement -trace t.json -timeline tl.json -events ev.json
//	obsreport -trace t.json -timeline tl.json -events ev.json [-window 120]
//	          [-topk 5] [-json]
//
// Inputs are each optional but at least one is required: mechanisms
// need -events and -timeline, chains need -trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

func main() {
	var (
		tracePath    = flag.String("trace", "", "sturgeon/trace/v1 dump (decision chains)")
		timelinePath = flag.String("timeline", "", "sturgeon/timeline/v1 dump (effect series)")
		eventsPath   = flag.String("events", "", "sturgeon/events/v1 dump (decision points)")
		window       = flag.Float64("window", 120, "attribution window in simulated seconds on each side of a decision")
		topK         = flag.Int("topk", 5, "decision chains to keep")
		asJSON       = flag.Bool("json", false, "emit the sturgeon/obsreport/v1 JSON document instead of text")
	)
	flag.Parse()
	if *tracePath == "" && *timelinePath == "" && *eventsPath == "" {
		fmt.Fprintln(os.Stderr, "obsreport: need at least one of -trace, -timeline, -events")
		flag.Usage()
		os.Exit(2)
	}

	var (
		traceDoc    *obs.TraceDoc
		timelineDoc *obs.TimelineDoc
		eventsDoc   *obs.EventsDoc
	)
	if *tracePath != "" {
		traceDoc = new(obs.TraceDoc)
		mustRead(*tracePath, traceDoc)
	}
	if *timelinePath != "" {
		timelineDoc = new(obs.TimelineDoc)
		mustRead(*timelinePath, timelineDoc)
	}
	if *eventsPath != "" {
		eventsDoc = new(obs.EventsDoc)
		mustRead(*eventsPath, eventsDoc)
	}

	rep := BuildReport(traceDoc, timelineDoc, eventsDoc, *window, *topK)
	if *asJSON {
		if err := jsonio.Encode(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "obsreport:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(rep.Text())
}

// mustRead decodes (and validates) one dump or exits with the path in
// the error.
func mustRead(path string, v interface{}) {
	if err := jsonio.ReadFile(path, v); err != nil {
		fmt.Fprintf(os.Stderr, "obsreport: %s: %v\n", path, err)
		os.Exit(1)
	}
}
