package main

import (
	"testing"

	"sturgeon/internal/cluster"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

func TestDecisionTimes(t *testing.T) {
	events := []obs.Event{
		{T: 30, Type: obs.EventCapGranted, Epoch: 1, Node: "n0"},
		{T: 31, Type: obs.EventCapGranted, Epoch: 1, Node: "n1"},
		{T: 60, Type: obs.EventCapGranted, Epoch: 2, Node: "n0"},
		{T: 45, Type: obs.EventPlacementSolve, Epoch: 1},
		{T: 50, Type: obs.EventGovernorAdjust, Reason: "ls_harvest"},
		{T: 51, Type: obs.EventGovernorAdjust, Reason: "shed"},
		{T: 52, Type: obs.EventHarvest, Resource: "cores"},
		{T: 53, Type: obs.EventRevert, Resource: "cores"},
		{T: 54, Type: obs.EventSearch, Reason: "initial"},
		{T: 55, Type: obs.EventNodeEvicted, Node: "n3"},
		{T: 56, Type: obs.EventGuardHold}, // not a mechanism
	}
	got := decisionTimes(events)
	want := map[string][]float64{
		"coordinator_epoch": {31, 60}, // grouped per epoch, last grant wins
		"placement_solve":   {45},
		"governor_harvest":  {50}, // shed adjust excluded
		"harvest":           {52},
		"revert":            {53},
		"search":            {54},
		"eviction":          {55},
	}
	if len(got) != len(want) {
		t.Fatalf("mechanisms %v, want %v", got, want)
	}
	for name, ts := range want {
		g := got[name]
		if len(g) != len(ts) {
			t.Fatalf("%s: decisions %v, want %v", name, g, ts)
		}
		for i := range ts {
			if g[i] != ts[i] {
				t.Errorf("%s: decision %d at %v, want %v", name, i, g[i], ts[i])
			}
		}
	}
}

func TestMeanOverFallsBackToBins(t *testing.T) {
	s := &obs.SeriesDoc{
		Raw: []obs.Point{{T: 101, V: 4}, {T: 102, V: 6}},
		Rollups: []obs.BinsDoc{{ResS: 10, Bins: []obs.Bin{
			{T0: 0, Min: 1, Max: 3, Sum: 20, Count: 10},
			{T0: 10, Min: 1, Max: 3, Sum: 40, Count: 10},
		}}},
	}
	if m, ok := meanOver(s, 100, 110); !ok || m != 5 {
		t.Errorf("raw window mean %v ok=%v, want 5 true", m, ok)
	}
	// No raw samples in (0, 20]: the 10 s bins fully inside stand in,
	// count-weighted.
	if m, ok := meanOver(s, 0, 20); !ok || m != 3 {
		t.Errorf("bin fallback mean %v ok=%v, want 3 true", m, ok)
	}
	if _, ok := meanOver(s, 300, 400); ok {
		t.Error("uncovered window reported a mean")
	}
	if _, ok := meanOver(nil, 0, 10); ok {
		t.Error("nil series reported a mean")
	}
}

func TestTopChainsRanking(t *testing.T) {
	spans := []obs.Span{
		// Chain A: root + child, open 5..20 (duration 15).
		{Seq: 1, Trace: "000000000000000a", ID: "00000000000000a1", Kind: "coord_epoch", Start: 5, End: 5},
		{Seq: 2, Trace: "000000000000000a", ID: "00000000000000a2", Parent: "00000000000000a1", Kind: "cap_grant", Start: 20, End: 20},
		// Chain B: single span, duration 0.
		{Seq: 3, Trace: "000000000000000b", ID: "00000000000000b1", Kind: "search", Start: 7, End: 7},
		// Chain C: dropped root — oldest retained span stands in.
		{Seq: 4, Trace: "000000000000000c", ID: "00000000000000c2", Parent: "00000000000000c1", Kind: "migration", Start: 9, End: 11},
	}
	chains := topChains(spans, 2)
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2", len(chains))
	}
	if chains[0].Trace != "000000000000000a" || chains[0].DurationS != 15 || chains[0].Spans != 2 {
		t.Errorf("top chain %+v, want trace a duration 15 over 2 spans", chains[0])
	}
	if chains[1].Trace != "000000000000000c" || chains[1].RootKind != "migration" || chains[1].DurationS != 2 {
		t.Errorf("second chain %+v, want rootless trace c via its oldest span", chains[1])
	}
}

func TestReportValidate(t *testing.T) {
	good := &Report{Schema: ReportSchema, WindowS: 120,
		Mechanisms: []Mechanism{{Name: "harvest", Decisions: 3, Attributed: 2}},
		Chains:     []Chain{{Trace: "000000000000000a", RootKind: "search", Spans: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	bad := map[string]*Report{
		"schema":      {Schema: "nope", WindowS: 120},
		"window":      {Schema: ReportSchema, WindowS: 0},
		"mech-name":   {Schema: ReportSchema, WindowS: 120, Mechanisms: []Mechanism{{}}},
		"mech-counts": {Schema: ReportSchema, WindowS: 120, Mechanisms: []Mechanism{{Name: "x", Decisions: 1, Attributed: 2}}},
		"chain-spans": {Schema: ReportSchema, WindowS: 120, Chains: []Chain{{Trace: "000000000000000a", RootKind: "search"}}},
	}
	for name, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: invalid report accepted", name)
		}
	}
}

// TestPlacementAttribution is the acceptance criterion asserted in CI:
// on the pinned placement-flashcrowd12 scenario (the placed-physics arm
// whose fleet BE win the bench gate pins), the report built from the
// run's own trace + timeline + journal attributes the win to placement
// epochs — placement_solve must appear with every solve attributed and
// the largest positive ΔBE of any mechanism.
func TestPlacementAttribution(t *testing.T) {
	o := cluster.DefaultPlacementFleet(20260806)
	o.Placed = true
	c, err := cluster.BuildPlacementFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = 1
	sink := obs.NewSeeded(o.Seed, 0)
	c.SetObs(sink)
	res := c.Run(o.Trace(), o.DurationS)
	if res.Place.Moves == 0 {
		t.Fatal("pinned placement run applied no moves")
	}

	rep := BuildReport(sink.Trace.Doc(), sink.Timeline.Doc(), sink.Journal.Doc(), 120, 5)
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	// The assertion is over the JSON output the CLI emits.
	data, err := jsonio.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := jsonio.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	var placement *Mechanism
	for i := range decoded.Mechanisms {
		if decoded.Mechanisms[i].Name == "placement_solve" {
			placement = &decoded.Mechanisms[i]
		}
	}
	if placement == nil {
		t.Fatalf("report carries no placement_solve mechanism: %+v", decoded.Mechanisms)
	}
	if placement.Decisions == 0 || placement.Attributed == 0 {
		t.Fatalf("placement_solve decisions %d attributed %d, want both > 0",
			placement.Decisions, placement.Attributed)
	}
	if placement.DeltaBEUPS <= 0 {
		t.Errorf("placement_solve ΔBE %+.2f units/s, want positive", placement.DeltaBEUPS)
	}
	for _, m := range decoded.Mechanisms {
		if m.Name != "placement_solve" && m.Attributed > 0 && m.DeltaBEUPS >= placement.DeltaBEUPS {
			t.Errorf("mechanism %s ΔBE %+.2f outranks placement_solve %+.2f",
				m.Name, m.DeltaBEUPS, placement.DeltaBEUPS)
		}
	}
	if len(decoded.Chains) == 0 {
		t.Error("report carries no decision chains")
	}
	t.Logf("mechanisms: %+v", decoded.Mechanisms)
}
