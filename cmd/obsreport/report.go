package main

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"sturgeon/internal/obs"
)

// ReportSchema tags the JSON report document; bump on breaking change.
const ReportSchema = "sturgeon/obsreport/v1"

// Mechanism is the attributed effect of one decision mechanism: the
// before/after change of the fleet series around each of its decisions,
// averaged over the decisions both windows could be measured for.
type Mechanism struct {
	// Name groups decisions by mechanism: coordinator_epoch (cap_granted
	// events grouped by arbitration epoch), placement_solve,
	// governor_harvest (ls_harvest adjusts), harvest, revert, search,
	// eviction.
	Name string `json:"name"`
	// Decisions counts the mechanism's decision points in the journal;
	// Attributed how many had recorded timeline samples on both sides of
	// the window (deltas average over these).
	Decisions  int `json:"decisions"`
	Attributed int `json:"attributed"`
	// DeltaBEUPS and DeltaQoS are mean(series over (t, t+W]) -
	// mean(series over (t-W, t]) averaged across attributed decisions,
	// for fleet_be_ups and fleet_qos respectively.
	DeltaBEUPS float64 `json:"delta_be_ups"`
	DeltaQoS   float64 `json:"delta_qos"`
}

// Chain is one causal decision chain (all spans sharing a trace id),
// ranked by how long the chain stayed open in simulated time.
type Chain struct {
	Trace     string  `json:"trace"`
	RootKind  string  `json:"root_kind"`
	Node      string  `json:"node,omitempty"`
	Start     float64 `json:"start"`
	DurationS float64 `json:"duration_s"`
	Spans     int     `json:"spans"`
}

// Report is the offline run report ("sturgeon/obsreport/v1"): the
// per-mechanism attribution table (sorted by ΔBE descending) and the
// top-k slowest decision chains, joined from a run's trace, timeline
// and journal dumps.
type Report struct {
	Schema  string  `json:"schema"`
	WindowS float64 `json:"window_s"`
	// Events/Spans/Series record how much input the join saw — an
	// all-zero report is distinguishable from an uninstrumented run.
	Events     int         `json:"events"`
	Spans      int         `json:"spans"`
	Series     int         `json:"series"`
	Mechanisms []Mechanism `json:"mechanisms"`
	Chains     []Chain     `json:"chains"`
}

// Validate implements jsonio.Validator.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("obsreport: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.WindowS <= 0 || math.IsNaN(r.WindowS) || math.IsInf(r.WindowS, 0) {
		return fmt.Errorf("obsreport: invalid window %v", r.WindowS)
	}
	for _, m := range r.Mechanisms {
		if m.Name == "" {
			return fmt.Errorf("obsreport: mechanism with empty name")
		}
		if m.Attributed > m.Decisions || m.Decisions < 0 || m.Attributed < 0 {
			return fmt.Errorf("obsreport: mechanism %q attributed %d of %d decisions",
				m.Name, m.Attributed, m.Decisions)
		}
		if math.IsNaN(m.DeltaBEUPS) || math.IsInf(m.DeltaBEUPS, 0) ||
			math.IsNaN(m.DeltaQoS) || math.IsInf(m.DeltaQoS, 0) {
			return fmt.Errorf("obsreport: mechanism %q carries non-finite delta", m.Name)
		}
	}
	for _, c := range r.Chains {
		if c.Trace == "" || c.RootKind == "" {
			return fmt.Errorf("obsreport: chain with empty trace/root kind")
		}
		if c.DurationS < 0 || c.Spans <= 0 {
			return fmt.Errorf("obsreport: chain %s has duration %v over %d spans",
				c.Trace, c.DurationS, c.Spans)
		}
	}
	return nil
}

// decisionTimes extracts each mechanism's decision points from the
// journal. Cap grants are grouped per arbitration epoch (the epoch's
// decision point is its last grant landing); every other mechanism is
// one decision per event.
func decisionTimes(events []obs.Event) map[string][]float64 {
	out := make(map[string][]float64)
	add := func(mech string, t float64) { out[mech] = append(out[mech], t) }
	epochLast := make(map[int]float64)
	for _, ev := range events {
		switch ev.Type {
		case obs.EventCapGranted:
			if ev.T > epochLast[ev.Epoch] {
				epochLast[ev.Epoch] = ev.T
			}
		case obs.EventPlacementSolve:
			add("placement_solve", ev.T)
		case obs.EventGovernorAdjust:
			if ev.Reason == "ls_harvest" {
				add("governor_harvest", ev.T)
			}
		case obs.EventHarvest:
			add("harvest", ev.T)
		case obs.EventRevert:
			add("revert", ev.T)
		case obs.EventSearch:
			add("search", ev.T)
		case obs.EventNodeEvicted:
			add("eviction", ev.T)
		}
	}
	for _, t := range epochLast {
		add("coordinator_epoch", t)
	}
	for _, ts := range out {
		sort.Float64s(ts)
	}
	return out
}

// seriesOf resolves a named series from the timeline dump (nil when the
// run did not record it).
func seriesOf(tl *obs.TimelineDoc, name string) *obs.SeriesDoc {
	if tl == nil {
		return nil
	}
	for i := range tl.Series {
		if tl.Series[i].Name == name {
			return &tl.Series[i]
		}
	}
	return nil
}

// meanOver averages a series over the half-open window (lo, hi]. Raw
// samples win; when the raw ring has wrapped past the window the 10 s
// rollup bins fully inside it stand in (count-weighted). The second
// return is false when neither tier covers the window.
func meanOver(s *obs.SeriesDoc, lo, hi float64) (float64, bool) {
	if s == nil {
		return 0, false
	}
	var sum float64
	var n int64
	for _, p := range s.Raw {
		if p.T > lo && p.T <= hi {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		for _, r := range s.Rollups {
			if r.ResS != 10 {
				continue
			}
			for _, b := range r.Bins {
				if b.T0 >= lo && b.T0+float64(r.ResS) <= hi {
					sum += b.Sum
					n += b.Count
				}
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// BuildReport joins a run's trace, timeline and journal dumps into the
// attribution report. Any input may be nil — mechanisms need the
// journal and timeline, chains need the trace — and windowS (seconds of
// series on each side of a decision) and topK (chains kept) fall back
// to 120/5 when non-positive.
func BuildReport(tr *obs.TraceDoc, tl *obs.TimelineDoc, ev *obs.EventsDoc, windowS float64, topK int) *Report {
	if windowS <= 0 {
		windowS = 120
	}
	if topK <= 0 {
		topK = 5
	}
	rep := &Report{Schema: ReportSchema, WindowS: windowS}
	if tl != nil {
		rep.Series = len(tl.Series)
	}

	if ev != nil {
		rep.Events = len(ev.Events)
		be := seriesOf(tl, "fleet_be_ups")
		qos := seriesOf(tl, "fleet_qos")
		for name, times := range decisionTimes(ev.Events) {
			m := Mechanism{Name: name, Decisions: len(times)}
			var dBE, dQoS float64
			for _, t := range times {
				beforeBE, okB := meanOver(be, t-windowS, t)
				afterBE, okA := meanOver(be, t, t+windowS)
				beforeQ, okQB := meanOver(qos, t-windowS, t)
				afterQ, okQA := meanOver(qos, t, t+windowS)
				if !okB || !okA || !okQB || !okQA {
					continue
				}
				m.Attributed++
				dBE += afterBE - beforeBE
				dQoS += afterQ - beforeQ
			}
			if m.Attributed > 0 {
				m.DeltaBEUPS = dBE / float64(m.Attributed)
				m.DeltaQoS = dQoS / float64(m.Attributed)
			}
			rep.Mechanisms = append(rep.Mechanisms, m)
		}
		sort.Slice(rep.Mechanisms, func(i, j int) bool {
			a, b := rep.Mechanisms[i], rep.Mechanisms[j]
			if a.DeltaBEUPS != b.DeltaBEUPS {
				return a.DeltaBEUPS > b.DeltaBEUPS
			}
			return a.Name < b.Name
		})
	}

	if tr != nil {
		rep.Spans = len(tr.Spans)
		rep.Chains = topChains(tr.Spans, topK)
	}
	return rep
}

// topChains groups spans by trace id and ranks the chains by open
// duration (latest descendant end minus root start), span count, then
// start and trace id, so the ranking is deterministic under ties. A
// chain whose root span the ring already dropped falls back to its
// oldest retained span.
func topChains(spans []obs.Span, topK int) []Chain {
	type agg struct {
		root   *obs.Span
		oldest *obs.Span
		maxEnd float64
		spans  int
	}
	byTrace := make(map[string]*agg)
	var order []string
	for i := range spans {
		sp := &spans[i]
		a := byTrace[sp.Trace]
		if a == nil {
			a = &agg{oldest: sp, maxEnd: sp.End}
			byTrace[sp.Trace] = a
			order = append(order, sp.Trace)
		}
		a.spans++
		if sp.End > a.maxEnd {
			a.maxEnd = sp.End
		}
		if sp.Parent == "" && (a.root == nil || sp.Seq < a.root.Seq) {
			a.root = sp
		}
	}
	chains := make([]Chain, 0, len(order))
	for _, id := range order {
		a := byTrace[id]
		root := a.root
		if root == nil {
			root = a.oldest
		}
		dur := a.maxEnd - root.Start
		if dur < 0 {
			dur = 0
		}
		chains = append(chains, Chain{
			Trace: id, RootKind: root.Kind, Node: root.Node,
			Start: root.Start, DurationS: dur, Spans: a.spans,
		})
	}
	sort.Slice(chains, func(i, j int) bool {
		a, b := chains[i], chains[j]
		if a.DurationS != b.DurationS {
			return a.DurationS > b.DurationS
		}
		if a.Spans != b.Spans {
			return a.Spans > b.Spans
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Trace < b.Trace
	})
	if len(chains) > topK {
		chains = chains[:topK]
	}
	return chains
}

// Text renders the report as aligned tables for the terminal.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "obsreport: %d events, %d spans, %d series; attribution window %.0f s each side\n\n",
		r.Events, r.Spans, r.Series, r.WindowS)
	w := tabwriter.NewWriter(&sb, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mechanism\tdecisions\tattributed\tdelta_be_ups\tdelta_qos")
	for _, m := range r.Mechanisms {
		fmt.Fprintf(w, "%s\t%d\t%d\t%+.2f\t%+.4f\n",
			m.Name, m.Decisions, m.Attributed, m.DeltaBEUPS, m.DeltaQoS)
	}
	w.Flush()
	if len(r.Chains) > 0 {
		sb.WriteString("\nslowest decision chains\n")
		w = tabwriter.NewWriter(&sb, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "trace\troot\tnode\tstart_s\tduration_s\tspans")
		for _, c := range r.Chains {
			fmt.Fprintf(w, "%s\t%s\t%s\t%.0f\t%.0f\t%d\n",
				c.Trace, c.RootKind, c.Node, c.Start, c.DurationS, c.Spans)
		}
		w.Flush()
	}
	return sb.String()
}
