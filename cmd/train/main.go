// Command train runs the offline profiling sweeps and model-technique
// comparison of §V: it collects per-application datasets, fits every
// technique of Figs. 6–7, prints the quality tables, and reports which
// technique each model family should deploy.
//
// Usage:
//
//	train [-app NAME] [-samples N] [-seed N]
//
// Without -app, all nine applications are swept.
package main

import (
	"flag"
	"fmt"
	"os"

	"sturgeon/internal/experiments"
	"sturgeon/internal/models"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

func main() {
	var (
		app     = flag.String("app", "", "single application to profile (default: all)")
		samples = flag.Int("samples", 1500, "sweep size")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	env := experiments.NewEnv(experiments.Config{Seed: *seed, Samples: *samples})

	apps := append(workload.LSServices(), workload.BEApps()...)
	if *app != "" {
		p, ok := workload.ByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown application %q\n", *app)
			os.Exit(2)
		}
		apps = []workload.Profile{p}
	}

	for _, p := range apps {
		if p.Class == workload.LS {
			d := env.LSData(p)
			clf, err := models.CompareClassification(d.Perf, *seed)
			must(err)
			lat, err := models.CompareRegression(d.Latency, *seed)
			must(err)
			pow, err := models.CompareRegression(d.Power, *seed)
			must(err)
			tbl := trace.NewTable(fmt.Sprintf("%s (LS) — %d samples", p.Name, d.Perf.Len()),
				"model", "DT", "KNN", "SV", "MLP", "LR", "deploy")
			addScores(tbl, "feasibility (accuracy)", clf)
			addScores(tbl, "latency log10 (R²)", lat)
			addScores(tbl, "power (R²)", pow)
			fmt.Println(tbl)
		} else {
			d := env.BEData(p)
			thpt, err := models.CompareRegression(d.Thpt, *seed)
			must(err)
			pow, err := models.CompareRegression(d.Power, *seed)
			must(err)
			tbl := trace.NewTable(fmt.Sprintf("%s (BE) — %d samples", p.Name, d.Thpt.Len()),
				"model", "DT", "KNN", "SV", "MLP", "LR", "deploy")
			addScores(tbl, "throughput (R²)", thpt)
			addScores(tbl, "power (R²)", pow)
			fmt.Println(tbl)
		}
	}
}

func addScores(tbl *trace.Table, name string, scores []models.Score) {
	cells := []interface{}{name}
	for _, s := range scores {
		cells = append(cells, s.Value)
	}
	cells = append(cells, string(models.Best(scores).Technique))
	tbl.Addf(cells...)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
