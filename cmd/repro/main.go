// Command repro regenerates every table and figure of the paper's
// evaluation on the simulated substrate.
//
// Usage:
//
//	repro [-exp all|fig2|fig3|fig6|fig7|fig9|fig10|fig11|table1|overhead|ablations|coord|placement|fleet10k]
//	      [-quick] [-seed N] [-samples N] [-duration N] [-heracles] [-out DIR]
//	      [-events PATH] [-trace PATH] [-timeline PATH] [-json] [-version]
//
// Text tables go to stdout (-json switches them to JSON documents);
// -out additionally writes CSV/TSV files for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sturgeon/internal/cmdutil"
	"sturgeon/internal/experiments"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
	"sturgeon/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (all, fig2, fig3, fig6, fig7, fig9, fig10, fig11, table1, overhead, ablations, multi, energy, rapl, coord, placement, fleet10k)")
		quick    = flag.Bool("quick", false, "shrink sweeps and run lengths for a fast smoke run")
		samples  = flag.Int("samples", 0, "profiling sweep size (0 = default)")
		duration = flag.Int("duration", 0, "evaluation run length in seconds (0 = default 800)")
		heracles = flag.Bool("heracles", false, "include the Heracles-style baseline in fig9/fig10")
		outDir   = flag.String("out", "", "directory for CSV/TSV output (optional)")
		events   = flag.String("events", "", "write the decision-event journal (sturgeon/events/v1 JSON) to PATH")
		traceOut = flag.String("trace", "", "write the causal decision trace (sturgeon/trace/v1 JSON) to PATH")
		timeline = flag.String("timeline", "", "write the fleet time series (sturgeon/timeline/v1 JSON) to PATH")
	)
	common := cmdutil.Register(42)
	common.Parse()

	var sink *obs.Sink
	if *events != "" || *traceOut != "" || *timeline != "" {
		// Span ids fold in the run seed, so two repro invocations with the
		// same seed dump byte-identical traces.
		sink = obs.NewSeeded(common.Seed, 0)
	}
	env := experiments.NewEnv(experiments.Config{
		Seed: common.Seed, Samples: *samples, DurationS: *duration, Quick: *quick,
		Obs: sink,
	})

	emit := func(name string, tbl *trace.Table) {
		if common.JSON {
			if err := tbl.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			fmt.Println(tbl)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*outDir, name+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := tbl.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
	emitSeries := func(name string, ss *trace.SeriesSet) {
		if *outDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*outDir, name+".tsv"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := ss.WriteTSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		f.Close()
	}

	want := func(names ...string) bool {
		if *exp == "all" {
			return true
		}
		for _, n := range names {
			if *exp == n {
				return true
			}
		}
		return false
	}

	if want("table1") && !common.JSON {
		fmt.Println(experiments.Table1())
	}
	if want("fig2") {
		_, tbl := experiments.Fig2PowerOverload(env)
		emit("fig2", tbl)
	}
	if want("fig3") {
		_, paper := experiments.Fig3PaperPairs(env)
		emit("fig3_paper_pairs", paper)
		_, frontier := experiments.Fig3FeasibleConfigs(env)
		emit("fig3_frontier", frontier)
	}
	if want("fig6") {
		_, tbl := experiments.Fig6PerformanceModels(env)
		emit("fig6", tbl)
	}
	if want("fig7") {
		_, tbl := experiments.Fig7PowerModels(env)
		emit("fig7", tbl)
	}
	if want("fig9", "fig10") {
		_, qos, thpt, sum := experiments.Fig9And10(env, *heracles)
		emit("fig9_qos", qos)
		emit("fig10_throughput", thpt)
		emit("fig9_10_summary", sum)
	}
	if want("fig11") {
		res := experiments.Fig11Trace(env)
		if !common.JSON {
			fmt.Println(res.Summary)
			spark := func(ss *trace.SeriesSet) {
				fmt.Println(ss.Title)
				for _, s := range ss.Series {
					fmt.Printf("  %-14s %s\n", s.Name, s.Spark(72))
				}
			}
			spark(res.Sturgeon)
			spark(res.Parties)
		}
		emitSeries("fig11_sturgeon", res.Sturgeon)
		emitSeries("fig11_parties", res.Parties)
		if *outDir == "" && !common.JSON {
			fmt.Println("(use -out DIR to write the Fig. 11 time series as TSV)")
		}
	}
	if want("overhead") {
		_, tbl := experiments.Overhead(env)
		emit("overhead", tbl)
	}
	if want("ablations") {
		emit("ablation_queue_engines", experiments.AblationQueueEngines(env))
		emit("ablation_e2e_engines", experiments.AblationEndToEndEngines(env))
		emit("ablation_harvest_policy", experiments.AblationHarvestPolicy(env))
		emit("ablation_peak_vs_mean_power", experiments.AblationPeakVsMeanPower(env))
		emit("ablation_slack_bounds", experiments.AblationSlackBounds(env))
		emit("ablation_search_headroom", experiments.AblationSearchHeadroom(env))
	}
	if want("multi") {
		emit("extension_multi_app", experiments.MultiAppShowdown(env))
	}
	if want("energy") {
		emit("extension_energy", experiments.EnergyEfficiency(env, *heracles))
	}
	if want("rapl") {
		emit("extension_rapl", experiments.RAPLBaseline(env))
	}
	if want("coord") {
		emit("extension_coordinator", experiments.CoordinatedFleet(env))
	}
	if want("placement") {
		emit("extension_placement", experiments.PlacementShowdown(env))
	}
	if want("fleet10k") {
		_, tbl := experiments.Fleet10kScale(env)
		emit("extension_fleet10k", tbl)
	}
	if *events != "" {
		if err := jsonio.WriteFile(*events, sink.Journal.Doc()); err != nil {
			fmt.Fprintln(os.Stderr, "repro: writing events:", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := jsonio.WriteFile(*traceOut, sink.Trace.Doc()); err != nil {
			fmt.Fprintln(os.Stderr, "repro: writing trace:", err)
			os.Exit(1)
		}
	}
	if *timeline != "" {
		if err := jsonio.WriteFile(*timeline, sink.Timeline.Doc()); err != nil {
			fmt.Fprintln(os.Stderr, "repro: writing timeline:", err)
			os.Exit(1)
		}
	}
}
