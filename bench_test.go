// Package sturgeon's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation, plus the §VII-E overhead
// micro-benchmarks and the DESIGN.md ablations. Each figure benchmark
// regenerates its rows in quick mode (smaller sweeps, shorter runs, a
// pair subset where noted) and reports domain metrics through b.ReportMetric.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale reproduction (all 18 pairs, 800 s runs) lives in cmd/repro.
package sturgeon

import (
	"sync"
	"testing"

	"sturgeon/internal/core"
	"sturgeon/internal/experiments"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/workload"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns a shared quick-mode experiment environment so the expensive
// profiling sweeps are paid once across all benchmarks.
func env() *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Config{Quick: true, PairLimit: 4})
	})
	return benchEnv
}

// BenchmarkFig2PowerOverload regenerates Fig. 2 (co-location power
// overload across the 18 pairs) and reports the overload corridor.
func BenchmarkFig2PowerOverload(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig2PowerOverload(e)
		lo, hi := 10.0, 0.0
		for _, r := range rows {
			if r.Ratio < lo {
				lo = r.Ratio
			}
			if r.Ratio > hi {
				hi = r.Ratio
			}
		}
		b.ReportMetric((lo-1)*100, "min_overload_%")
		b.ReportMetric((hi-1)*100, "max_overload_%")
	}
}

// BenchmarkFig3FeasibleConfigs regenerates Fig. 3's paper-pair comparison
// and reports how many of the 12 rows the expected winner takes.
func BenchmarkFig3FeasibleConfigs(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig3PaperPairs(e)
		coresAt20, freqAt35 := 0, 0
		for _, r := range rows {
			if r.LoadFrac == 0.20 && r.Winner == "cores" {
				coresAt20++
			}
			if r.LoadFrac == 0.35 && r.Winner == "freq" {
				freqAt35++
			}
		}
		b.ReportMetric(float64(coresAt20), "cores_win_at_20%")
		b.ReportMetric(float64(freqAt35), "freq_win_at_35%")
	}
}

// BenchmarkFig6PerfModels regenerates Fig. 6 and reports the mean score
// of the best technique per model.
func BenchmarkFig6PerfModels(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig6PerformanceModels(e)
		sum := 0.0
		for _, r := range rows {
			sum += models.Best(r.Scores).Value
		}
		b.ReportMetric(sum/float64(len(rows)), "mean_best_score")
	}
}

// BenchmarkFig7PowerModels regenerates Fig. 7 similarly.
func BenchmarkFig7PowerModels(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig7PowerModels(e)
		sum := 0.0
		for _, r := range rows {
			sum += models.Best(r.Scores).Value
		}
		b.ReportMetric(sum/float64(len(rows)), "mean_best_R2")
	}
}

// BenchmarkFig9QoS regenerates Fig. 9 on the benchmark pair subset and
// reports the mean QoS guarantee rate per controller.
func BenchmarkFig9QoS(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		rows, _, _, _ := experiments.Fig9And10(e, false)
		agg := map[string][2]float64{}
		for _, r := range rows {
			a := agg[r.Controller]
			agg[r.Controller] = [2]float64{a[0] + r.QoSRate, a[1] + 1}
		}
		b.ReportMetric(agg["sturgeon"][0]/agg["sturgeon"][1], "sturgeon_qos")
		b.ReportMetric(agg["parties"][0]/agg["parties"][1], "parties_qos")
		b.ReportMetric(agg["sturgeon-nob"][0]/agg["sturgeon-nob"][1], "nob_qos")
	}
}

// BenchmarkFig10Throughput regenerates Fig. 10 on the benchmark pair
// subset and reports normalized BE throughput per controller.
func BenchmarkFig10Throughput(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		rows, _, _, _ := experiments.Fig9And10(e, false)
		agg := map[string][2]float64{}
		for _, r := range rows {
			a := agg[r.Controller]
			agg[r.Controller] = [2]float64{a[0] + r.NormBE, a[1] + 1}
		}
		st := agg["sturgeon"][0] / agg["sturgeon"][1]
		pa := agg["parties"][0] / agg["parties"][1]
		b.ReportMetric(st, "sturgeon_thpt")
		b.ReportMetric(pa, "parties_thpt")
		b.ReportMetric((st/pa-1)*100, "sturgeon_vs_parties_%")
	}
}

// BenchmarkFig11Trace regenerates the Fig. 11 ramp trace.
func BenchmarkFig11Trace(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11Trace(e)
		_ = res.Sturgeon
	}
}

// BenchmarkTable1 renders the qualitative comparison table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1().String()
	}
}

// BenchmarkPredict measures single-model inference latency — the paper's
// ≈0.04 ms budget (§VII-E).
func BenchmarkPredict(b *testing.B) {
	e := env()
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := e.Predictor(ls, be)
	alloc := hw.Alloc{Cores: 8, Freq: 1.8, LLCWays: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.QoSOK(alloc, 20000)
	}
}

// BenchmarkSearchGuided measures the §V-B binary-search configuration
// finder (paper: ≤120 ms per invocation).
func BenchmarkSearchGuided(b *testing.B) {
	e := env()
	ls, be := workload.Memcached(), workload.Raytrace()
	s := &core.Searcher{Spec: e.Spec, Pred: e.Predictor(ls, be), Budget: e.Budget(ls)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BestConfig(0.3 * ls.PeakQPS)
	}
}

// BenchmarkSearchExhaustive measures the O(N⁴) scan the paper rejects
// (≈6.4 s on their models; the gap to the guided search is the point).
func BenchmarkSearchExhaustive(b *testing.B) {
	e := env()
	ls, be := workload.Memcached(), workload.Raytrace()
	s := &core.Searcher{Spec: e.Spec, Pred: e.Predictor(ls, be), Budget: e.Budget(ls)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ExhaustiveBest(0.3 * ls.PeakQPS)
	}
}

// BenchmarkBalancerDecision measures one Algorithm 2 harvest decision
// (paper: ≈0.48 ms).
func BenchmarkBalancerDecision(b *testing.B) {
	e := env()
	ls, be := workload.Memcached(), workload.Raytrace()
	bal := &core.Balancer{Spec: e.Spec, Pred: e.Predictor(ls, be), Budget: e.Budget(ls)}
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bal.Reset()
		bal.Harvest(cfg, 0.3*ls.PeakQPS, false, false)
	}
}

// BenchmarkAblationQueueEngines cross-validates the analytic queue model
// against the discrete-event simulator (DESIGN.md §5.1).
func BenchmarkAblationQueueEngines(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationQueueEngines(e)
	}
}

// BenchmarkAblationHarvestPolicy compares preference-aware and
// fixed-order harvesting (DESIGN.md §5.4).
func BenchmarkAblationHarvestPolicy(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationHarvestPolicy(e)
	}
}

// BenchmarkAblationPeakVsMeanPower compares power-label conservatism
// (DESIGN.md §5.2).
func BenchmarkAblationPeakVsMeanPower(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationPeakVsMeanPower(e)
	}
}

// BenchmarkAblationSlackBounds sweeps Algorithm 1's α/β (DESIGN.md §5.5).
func BenchmarkAblationSlackBounds(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationSlackBounds(e)
	}
}

// BenchmarkAblationSearchHeadroom toggles the search grid headroom
// (DESIGN.md §5.3).
func BenchmarkAblationSearchHeadroom(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationSearchHeadroom(e)
	}
}

// BenchmarkOverheadSuite runs the §VII-E overhead measurement end to end.
func BenchmarkOverheadSuite(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Overhead(e)
		b.ReportMetric(res.GuidedSearchMS, "guided_ms")
		b.ReportMetric(res.SpeedupX, "speedup_x")
	}
}
