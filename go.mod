module sturgeon

go 1.22
