// Chaos: a fault-injected fleet run. A dispatcher spreads load across
// Sturgeon-managed nodes while a deterministic, seed-driven fault plan
// sabotages them — stuck/noisy/dropped power meters, stale or missing
// latency telemetry, actuator writes that silently fail, and whole-node
// crashes the failure detector must catch, evict and re-admit. The same
// seed and fault spec always reproduce the same run byte-for-byte.
//
//	go run ./examples/chaos
//	go run ./examples/chaos -nodes 8 -seed 42 -dur 600 \
//	    -faults "power.stuck=0.01,latency.drop=0.005,crash=0.002,crash.dur=30"
package main

import (
	"flag"
	"fmt"
	"log"

	"sturgeon/internal/cluster"
	"sturgeon/internal/control"
	"sturgeon/internal/core"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 6, "fleet size")
	seed := flag.Int64("seed", 42, "cluster seed (fault plans derive from it)")
	dur := flag.Int("dur", 600, "run length in seconds")
	spec := flag.String("faults", "default", `fault spec ("default", "" for none, or key=value list)`)
	static := flag.Bool("static", false, "skip model training and run static controllers")
	flag.Parse()

	fspec, err := faults.ParseSpec(*spec)
	if err != nil {
		log.Fatal(err)
	}

	ls, be := workload.Memcached(), workload.Raytrace()
	n := sim.QuietNode(ls, be, 1)
	budget := sim.LSPeakPower(n.Spec, n.PowerParams, n.Bus, ls)

	mkCtrl := func(int) control.Controller {
		return control.Static{Cfg: hw.SoloLS(hw.DefaultSpec())}
	}
	if !*static {
		fmt.Println("training the shared predictor...")
		pred, err := models.Train(ls, be, models.TrainOptions{
			Collect: models.CollectOptions{Samples: 900, Seed: 17},
		})
		if err != nil {
			log.Fatal(err)
		}
		mkCtrl = func(int) control.Controller {
			// Guard hardens the controller against exactly the dirt the
			// fault plan injects: implausible power readings, missing
			// latency samples and actuation that never lands.
			return core.Guard(core.New(hw.DefaultSpec(), pred, budget, core.Options{}), hw.DefaultSpec())
		}
	}

	fleet, err := cluster.New(*nodes, ls, be, budget, &cluster.LeastLoaded{}, *seed, mkCtrl)
	if err != nil {
		log.Fatal(err)
	}
	fleet.InjectFaults(fspec, *dur)

	res := fleet.Run(workload.Diurnal(0.2, 0.8, float64(*dur)), *dur)

	fmt.Printf("\n== chaos fleet: %d nodes, seed %d, %d s ==\n", *nodes, *seed, *dur)
	fmt.Printf("qos_rate      %.4f\n", res.QoSRate)
	fmt.Printf("be_units/s    %.0f\n", res.MeanBEThroughputUPS)
	fmt.Printf("fleet_power   %.1f W (%.2f kJ, %.1f units/kJ)\n",
		res.MeanPowerW, res.EnergyKJ, res.WorkPerKJ)
	fmt.Printf("lost_queries  %.0f (dispatched to crashed nodes before eviction)\n", res.LostQueries)
	fmt.Printf("health        %d evictions, %d readmissions, %d unhealthy node·intervals\n",
		res.Health.Evictions, res.Health.Readmissions, res.Health.UnhealthyNodeIntervals)
	fmt.Printf("faults        %s\n", res.Faults)
	fmt.Println("\nRe-running with the same -seed and -faults reproduces this output exactly.")
}
