// Placement: the fleet placement and migration engine head-to-head. The
// same 12-node fleet — heterogeneous static power caps, rotating skewed
// dispatch, a seeded flash-crowd day, every node under a Sturgeon
// governor — runs its eight best-effort jobs twice: once paired to
// nodes by a seeded shuffle, once by the preference-aware placement
// solver with the migration planner active (internal/placement,
// DESIGN.md §15). Starved nodes shed best-effort frequency first, so
// random pairing strands frequency-hungry applications where the watts
// are not; the solver puts them where the power is and the planner
// keeps it that way as surges move the fleet's hot spot, paying a
// warm-up penalty for every migration. Both runs are seeded and
// byte-for-byte reproducible.
//
//	go run ./examples/placement
//	go run ./examples/placement -seed 7
package main

import (
	"flag"
	"fmt"
	"log"

	"sturgeon/internal/cluster"
	"sturgeon/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "scenario seed")
	flag.Parse()

	run := func(placed bool) cluster.Result {
		o := cluster.DefaultPlacementFleet(*seed)
		o.Placed = placed
		c, err := cluster.BuildPlacementFleet(o)
		if err != nil {
			log.Fatal(err)
		}
		return c.Run(o.Trace(), o.DurationS)
	}

	random := run(false)
	placed := run(true)

	o := cluster.DefaultPlacementFleet(*seed)
	jobs := o.Jobs()
	fmt.Printf("fleet: %d nodes (caps %.0f/%.0f/%.0f W rotation), %d BE jobs, %d s flash-crowd day\n\n",
		o.Nodes, o.RichCapW, o.MidCapW, o.StarvedCapW, len(jobs), o.DurationS)

	tbl := trace.NewTable("random pairing vs placement engine",
		"pairing", "qos_rate", "be_ups", "mean_power_w", "work_per_kj")
	tbl.Addf("random", random.QoSRate, random.MeanBEThroughputUPS,
		random.MeanPowerW, random.WorkPerKJ)
	tbl.Addf("placed", placed.QoSRate, placed.MeanBEThroughputUPS,
		placed.MeanPowerW, placed.WorkPerKJ)
	fmt.Println(tbl)

	fmt.Printf("placement: %d planner epochs, %d migrations (%d starved, %d consolidate), %.0f UPS lost to warm-up\n",
		placed.Place.Plans, placed.Place.Moves,
		placed.Place.StarvedMoves, placed.Place.ConsolidateMoves, placed.Place.WarmupLostUPS)

	be := make([]float64, len(placed.Intervals))
	for i, iv := range placed.Intervals {
		be[i] = iv.BEThroughputUPS - random.Intervals[i].BEThroughputUPS
	}
	fmt.Printf("BE gain vs random (ups)  %s\n", trace.Sparkline(be, 72))

	load := make([]float64, len(placed.Intervals))
	for i, iv := range placed.Intervals {
		load[i] = iv.TotalQPS
	}
	fmt.Printf("offered load (qps)       %s\n", trace.Sparkline(load, 72))
}
