// Fleet: the paper's Fig. 4 context — a cluster-level dispatcher spreads
// a diurnal search load across eight Sturgeon-managed nodes, each
// co-locating xapian with ferret. The run reports fleet-wide QoS,
// best-effort work and energy efficiency (work per kilojoule), the
// datacenter-scale payoff §II motivates.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"sturgeon/internal/cluster"
	"sturgeon/internal/control"
	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func main() {
	ls, be := workload.Xapian(), workload.Ferret()
	const nodes = 8

	fmt.Println("training the shared predictor...")
	pred, err := models.Train(ls, be, models.TrainOptions{
		Collect: models.CollectOptions{Samples: 1000, Seed: 17},
	})
	if err != nil {
		log.Fatal(err)
	}
	n := sim.QuietNode(ls, be, 1)
	budget := sim.LSPeakPower(n.Spec, n.PowerParams, n.Bus, ls)

	run := func(policy cluster.DispatchPolicy) (cluster.Result, cluster.JobStats) {
		fleet, err := cluster.New(nodes, ls, be, budget, policy, 17,
			func(int) control.Controller {
				return core.New(hw.DefaultSpec(), pred, budget, core.Options{})
			})
		if err != nil {
			log.Fatal(err)
		}
		// A compressed day: 1 s per simulated 4 minutes.
		res := fleet.Run(workload.Diurnal(0.2, 0.9, 360), 360)
		// Feed the fleet's freed capacity into a batch-job queue: one
		// 20k-unit analysis job submitted every 30 s.
		var q cluster.JobQueue
		for _, iv := range res.Intervals {
			if int(iv.Time)%30 == 1 {
				q.Submit(iv.Time, 20000)
			}
			q.Advance(iv.Time, iv.BEThroughputUPS)
		}
		return res, q.Stats()
	}

	fmt.Printf("\n%-14s %9s %12s %11s %11s  %s\n",
		"dispatcher", "qos_rate", "be_units/s", "fleet_w", "units/kJ", "batch jobs")
	for _, p := range []cluster.DispatchPolicy{cluster.RoundRobin{}, &cluster.LeastLoaded{}} {
		res, jobs := run(p)
		fmt.Printf("%-14s %9.4f %12.0f %11.1f %11.2f  %s\n",
			p.Name(), res.QoSRate, res.MeanBEThroughputUPS, res.MeanPowerW, res.WorkPerKJ, jobs)
	}
	fmt.Printf("\n%d nodes, budget %.1f W each; best-effort work is what the\n", nodes, float64(budget))
	fmt.Println("fleet mines out of the diurnal valley without breaking either")
	fmt.Println("the tail-latency target or any node's power cap.")
}
