// Quickstart: co-locate memcached with the PARSEC raytrace application on
// a simulated power-constrained node under Sturgeon, and print what the
// runtime decides each second.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func main() {
	// 1. Pick a latency-sensitive service and a best-effort application.
	ls := workload.Memcached() // 10 ms p95 target, 60 K QPS peak
	be := workload.Raytrace()  // cache-hungry PARSEC workload

	// 2. Build the simulated node (the paper's Table II platform: 20
	//    logical cores, 1.2–2.2 GHz DVFS, 20 LLC ways) and size the power
	//    budget the paper's way: the LS service's peak-load draw.
	node := sim.NewNode(ls, be, 1)
	budget := sim.LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls)
	fmt.Printf("power budget: %.1f W (LS peak draw)\n", float64(budget))

	// 3. Train the online performance/power predictor from profiling
	//    sweeps (offline in production; a couple of seconds here).
	fmt.Println("training predictor...")
	pred, err := models.Train(ls, be, models.TrainOptions{
		Collect: models.CollectOptions{Samples: 1000, Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run the Sturgeon controller against a fluctuating load.
	ctrl := core.New(node.Spec, pred, budget, core.Options{})
	if err := node.Apply(hw.SoloLS(node.Spec)); err != nil {
		log.Fatal(err)
	}
	runner := sim.Runner{
		Node: node, Ctrl: ctrl, Budget: budget,
		Trace:     workload.Triangle(0.2, 0.8, 120),
		DurationS: 120,
	}
	res := runner.Run()

	for i, st := range res.Intervals {
		if i%10 != 0 {
			continue
		}
		fmt.Printf("t=%3.0fs load=%5.0f qps  p95=%5.2f ms  power=%5.1f W  BE=%6.0f units/s  %v\n",
			st.Time, st.QPS, st.P95*1e3, float64(st.Power), st.BEThroughputUPS, st.Config)
	}
	fmt.Printf("\nQoS guarantee rate: %.2f%%  |  BE throughput: %.1f%% of solo  |  breaker trips: %d\n",
		res.QoSRate*100, res.NormBEThroughput*100, res.BreakerTrips)
}
