// Powersweep: how much best-effort throughput does each watt of budget
// buy, and which controller converts power headroom into work best? The
// example sweeps the node power cap from 90 % to 130 % of the paper's
// default (the LS service's peak draw) and compares Sturgeon with the
// enhanced PARTIES baseline at a fixed mid load.
//
//	go run ./examples/powersweep
package main

import (
	"fmt"
	"log"

	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/parties"
	"sturgeon/internal/power"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func main() {
	ls := workload.Memcached()
	be := workload.Swaptions() // the most power-hungry BE application

	base := sim.LSPeakPower(hw.DefaultSpec(), power.DefaultParams(),
		sim.QuietNode(ls, be, 1).Bus, ls)

	fmt.Println("training predictor...")
	pred, err := models.Train(ls, be, models.TrainOptions{
		Collect: models.CollectOptions{Samples: 1000, Seed: 21},
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(budget power.Watts, name string) sim.Result {
		node := sim.NewNode(ls, be, 21)
		r := sim.Runner{
			Node: node, Budget: budget,
			Trace:     workload.Constant(0.4),
			DurationS: 180,
		}
		switch name {
		case "sturgeon":
			r.Ctrl = core.New(node.Spec, pred, budget, core.Options{})
		default:
			r.Ctrl = parties.New(node.Spec, budget)
		}
		if err := node.Apply(hw.SoloLS(node.Spec)); err != nil {
			log.Fatal(err)
		}
		return r.Run()
	}

	fmt.Printf("\n%8s  %9s  %21s  %21s\n", "", "", "sturgeon", "parties")
	fmt.Printf("%8s  %9s  %9s  %10s  %9s  %10s\n",
		"cap", "cap_w", "BE_thpt%", "QoS%", "BE_thpt%", "QoS%")
	for _, frac := range []float64{0.90, 1.00, 1.10, 1.20, 1.30} {
		budget := base * power.Watts(frac)
		st := run(budget, "sturgeon")
		pa := run(budget, "parties")
		fmt.Printf("%7.0f%%  %9.1f  %9.1f  %10.2f  %9.1f  %10.2f\n",
			frac*100, float64(budget),
			st.NormBEThroughput*100, st.QoSRate*100,
			pa.NormBEThroughput*100, pa.QoSRate*100)
	}
	fmt.Println("\nEach extra watt of cap goes to the BE side's frequency; Sturgeon's")
	fmt.Println("predictor finds the headroom immediately, the feedback baseline")
	fmt.Println("creeps toward it one DVFS step per interval.")
}
