// Customapp: bring your own workload. This example defines a new
// latency-sensitive service (a gRPC-style inference frontend) and a new
// best-effort application (a log compactor), plugs them into the same
// pipeline — profile, train, control — and runs the co-location.
//
// It is the template for adopting the library on workloads the paper did
// not study: all Sturgeon needs is a behavioural Profile.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"sturgeon/internal/cache"
	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func main() {
	// A latency-sensitive inference frontend: medium-sized uniform
	// queries (dense math ⇒ low CPI, compact working set), 5 ms p95
	// target at up to 8 K QPS, moderately bursty arrivals.
	inference := workload.Profile{
		Name: "inference", FullName: "example inference frontend",
		Class:         workload.LS,
		CPI:           cache.CPIModel{CPIBase: 0.6, MissPenaltyNs: 75},
		MRC:           cache.MRC{MPKI1: 5, MPKIInf: 0.8, HalfWays: 2},
		Activity:      0.6,
		QoSTargetS:    0.005,
		PeakQPS:       8000,
		InstrPerQuery: 2.5e6,
		SvcCV:         0.35,
		ArrivalCV:     1.8,
	}
	// A best-effort log compactor: streaming scans (memory-heavy, high
	// compulsory miss floor), scales well across cores.
	compactor := workload.Profile{
		Name: "compactor", FullName: "example log compactor",
		Class:        workload.BE,
		CPI:          cache.CPIModel{CPIBase: 0.5, MissPenaltyNs: 75},
		MRC:          cache.MRC{MPKI1: 12, MPKIInf: 4, HalfWays: 3},
		Activity:     0.4,
		InstrPerUnit: 50e6,
		SerialFrac:   0.01,
		SyncLoss:     0.001,
		InputLevel:   3,
	}
	for _, p := range []workload.Profile{inference, compactor} {
		if err := p.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	node := sim.NewNode(inference, compactor, 31)
	budget := sim.LSPeakPower(node.Spec, node.PowerParams, node.Bus, inference)
	fmt.Printf("custom pair: %s + %s | budget %.1f W | target %.1f ms\n",
		inference.Name, compactor.Name, float64(budget), inference.QoSTargetS*1e3)

	fmt.Println("profiling and training...")
	pred, err := models.Train(inference, compactor, models.TrainOptions{
		Collect: models.CollectOptions{Samples: 1000, Seed: 31},
		// Let validation pick each model's technique for the new
		// workloads instead of assuming the paper's winners.
		AutoSelect: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctrl := core.New(node.Spec, pred, budget, core.Options{})
	if err := node.Apply(hw.SoloLS(node.Spec)); err != nil {
		log.Fatal(err)
	}
	runner := sim.Runner{
		Node: node, Ctrl: ctrl, Budget: budget,
		Trace:     workload.Steps([]float64{0.2, 0.5, 0.8, 0.35}, 40),
		DurationS: 160,
	}
	res := runner.Run()

	for i, st := range res.Intervals {
		if i%8 != 0 {
			continue
		}
		fmt.Printf("t=%3.0fs qps=%5.0f p95=%5.2fms power=%5.1fW compactor=%5.0f units/s %v\n",
			st.Time, st.QPS, st.P95*1e3, float64(st.Power), st.BEThroughputUPS, st.Config)
	}
	fmt.Printf("\nQoS %.2f%% | compactor ran at %.1f%% of a dedicated machine | trips %d\n",
		res.QoSRate*100, res.NormBEThroughput*100, res.BreakerTrips)
}
