// Diurnal: a day in the life of one power-capped server. The LS service
// follows a day/night load curve (§II-B: Google web-search servers idle
// ~30 % over 24 h); Sturgeon harvests the valley for best-effort work and
// returns the resources as the load climbs toward midday.
//
// The 24 h day is compressed to 24 simulated minutes (1 s = 1 min).
//
//	go run ./examples/diurnal
package main

import (
	"fmt"
	"log"
	"strings"

	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func main() {
	ls := workload.Xapian() // web search: the classic diurnal service
	be := workload.Ferret() // long-running content-similarity batch job

	node := sim.NewNode(ls, be, 11)
	budget := sim.LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls)

	fmt.Println("training predictor...")
	pred, err := models.Train(ls, be, models.TrainOptions{
		Collect: models.CollectOptions{Samples: 1000, Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}

	const day = 1440 // one compressed day: 1 s per simulated minute
	ctrl := core.New(node.Spec, pred, budget, core.Options{})
	if err := node.Apply(hw.SoloLS(node.Spec)); err != nil {
		log.Fatal(err)
	}
	runner := sim.Runner{
		Node: node, Ctrl: ctrl, Budget: budget,
		Trace:     workload.Diurnal(0.15, 0.95, day),
		DurationS: day,
	}
	res := runner.Run()

	// Aggregate per "hour" (60 intervals) and draw a load/BE-work chart.
	fmt.Println("\nhour  load%  BE units  BE cores  power_w   ")
	var totalBE, totalQ, okQ float64
	for h := 0; h < 24; h++ {
		var qps, beUnits, beCores, pw float64
		for i := h * 60; i < (h+1)*60; i++ {
			st := res.Intervals[i]
			qps += st.QPS
			beUnits += st.BEThroughputUPS
			beCores += float64(st.Config.BE.Cores)
			pw += float64(st.Power)
			totalBE += st.BEThroughputUPS
			totalQ += st.QPS
			okQ += st.QPS * st.QoSFrac
		}
		loadPct := qps / 60 / ls.PeakQPS * 100
		bar := strings.Repeat("#", int(beUnits/60/6))
		fmt.Printf("%4d  %5.1f  %8.0f  %8.1f  %7.1f  %s\n",
			h, loadPct, beUnits/60, beCores/60, pw/60, bar)
	}

	fmt.Printf("\nover the day: QoS guarantee %.2f%%, best-effort work %.0f units (%.1f%% of a dedicated machine)\n",
		okQ/totalQ*100, totalBE,
		res.NormBEThroughput*100)
}
