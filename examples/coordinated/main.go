// Coordinated: the fleet power-budget coordinator head-to-head. The same
// 8-node diurnal fleet — rotating skewed dispatch, every node under a
// Sturgeon governor — runs twice on the same total watt budget: once with
// a static even per-node split, once with the caps arbitrated each epoch
// by an in-process coordinator (internal/coordinator, DESIGN.md §10).
// The skew strands watts on cold nodes while hot nodes throttle their
// best-effort tier; arbitration moves the stranded watts, buying more
// best-effort work at better QoS. Both runs are seeded and byte-for-byte
// reproducible.
//
//	go run ./examples/coordinated
//	go run ./examples/coordinated -seed 7 -chaos
package main

import (
	"flag"
	"fmt"
	"log"

	"sturgeon/internal/cluster"
	"sturgeon/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "scenario seed")
	chaos := flag.Bool("chaos", false, "drop reports and schedule coordinator outages")
	flag.Parse()

	run := func(coordinated bool) cluster.Result {
		o := cluster.DefaultCoordFleet(*seed)
		o.Coordinated = coordinated
		o.Chaos = coordinated && *chaos
		c, err := cluster.BuildCoordFleet(o)
		if err != nil {
			log.Fatal(err)
		}
		return c.Run(o.Trace(), o.DurationS)
	}

	even := run(false)
	coord := run(true)

	o := cluster.DefaultCoordFleet(*seed)
	fmt.Printf("fleet: %d nodes, %.0f W budget (%.0f W even split), %d s diurnal+skew\n\n",
		o.Nodes, o.EvenCapW*float64(o.Nodes), o.EvenCapW, o.DurationS)

	tbl := trace.NewTable("even split vs coordinated caps",
		"caps", "qos_rate", "be_ups", "mean_power_w", "work_per_kj")
	tbl.Addf("even-split", even.QoSRate, even.MeanBEThroughputUPS,
		even.MeanPowerW, even.WorkPerKJ)
	tbl.Addf("coordinated", coord.QoSRate, coord.MeanBEThroughputUPS,
		coord.MeanPowerW, coord.WorkPerKJ)
	fmt.Println(tbl)

	fmt.Printf("coordination: %d epochs, %.0f W moved, %d report drops, %d outage epochs, %d fallbacks\n",
		coord.Coord.Epochs, coord.Coord.MovedW,
		coord.Coord.DroppedReports, coord.Coord.OutageEpochs, coord.Coord.Fallbacks)

	spread := make([]float64, len(coord.Intervals))
	for i, iv := range coord.Intervals {
		spread[i] = iv.CapSpreadW
	}
	fmt.Printf("cap spread (max-min W)   %s\n", trace.Sparkline(spread, 72))

	be := make([]float64, len(coord.Intervals))
	for i, iv := range coord.Intervals {
		be[i] = iv.BEThroughputUPS - even.Intervals[i].BEThroughputUPS
	}
	fmt.Printf("BE gain vs even (ups)    %s\n", trace.Sparkline(be, 72))
}
