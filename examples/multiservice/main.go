// Multiservice: the §V-B extension in action — two latency-sensitive
// services (memcached and xapian) share one power-capped node with two
// best-effort applications (raytrace and swaptions). The multi-way
// controller keeps both tails inside their targets while the leftover
// cores, ways and watts are split across the BE side by marginal utility.
//
//	go run ./examples/multiservice
package main

import (
	"fmt"
	"log"

	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/multi"
	"sturgeon/internal/power"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func main() {
	apps := multi.Apps{
		workload.Memcached(), // LS 0: 10 ms target
		workload.Xapian(),    // LS 1: 15 ms target
		workload.Raytrace(),  // BE 2
		workload.Swaptions(), // BE 3
	}

	fmt.Println("profiling the four applications...")
	opts := models.CollectOptions{Samples: 1000, IntervalsPerSample: 2, Seed: 9}
	lsm := map[int]*models.LSModels{}
	bem := map[int]*models.BEModels{}
	for _, i := range apps.LSIndices() {
		m, err := models.FitLS(apps[i], models.SweepLS(apps[i], opts), 9)
		if err != nil {
			log.Fatal(err)
		}
		lsm[i] = m
	}
	for _, j := range apps.BEIndices() {
		m, err := models.FitBE(apps[j], models.SweepBE(apps[j], opts), 9)
		if err != nil {
			log.Fatal(err)
		}
		bem[j] = m
	}

	params := power.DefaultParams()
	spec := hw.DefaultSpec()
	// Budget: the larger primary's peak draw plus a 10 % right-sizing
	// margin for the second service.
	budget := sim.LSPeakPower(spec, params, sim.QuietNode(apps[0], apps[2], 1).Bus, apps[0]) * 1.1
	s := &multi.Searcher{
		Spec: spec, Apps: apps, LS: lsm, BE: bem,
		Budget: budget, IdleW: params.IdleW,
	}
	ctrl := multi.NewController(spec, apps, s, budget)

	node := multi.NewNode(apps, 9)
	init := make(multi.Partition, len(apps))
	for i := range init {
		init[i].Freq = spec.FreqMin
	}
	init[0] = hw.Alloc{Cores: spec.Cores, Freq: spec.FreqMax, LLCWays: spec.LLCWays}
	if err := node.Apply(init); err != nil {
		log.Fatal(err)
	}

	const dur = 180
	tr0 := workload.Triangle(0.2, 0.6, dur)
	tr1 := workload.Diurnal(0.2, 0.5, dur)
	var okQ, totQ, beWork float64
	fmt.Printf("%5s  %18s  %18s  %8s  %s\n", "t", "memcached", "xapian", "power_w", "partition")
	for i := 0; i < dur; i++ {
		t := float64(i + 1)
		qps := []float64{tr0(t) * apps[0].PeakQPS, tr1(t) * apps[1].PeakQPS}
		st := node.Step(t, qps)
		for _, li := range apps.LSIndices() {
			okQ += st.Apps[li].QPS * st.Apps[li].QoSFrac
			totQ += st.Apps[li].QPS
		}
		for _, j := range apps.BEIndices() {
			beWork += st.Apps[j].ThroughputUPS
		}
		if i%15 == 0 {
			fmt.Printf("%5.0f  %7.0fq %6.2fms  %7.0fq %6.2fms  %8.1f  %v\n",
				t, st.Apps[0].QPS, st.Apps[0].P95*1e3,
				st.Apps[1].QPS, st.Apps[1].P95*1e3,
				float64(st.Power), st.Partition)
		}
		if err := node.Apply(ctrl.Decide(st, qps)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\njoint QoS guarantee rate: %.2f%% | best-effort work: %.0f units | searches: %d, harvests: %d\n",
		okQ/totQ*100, beWork, ctrl.Searches, ctrl.Harvests)
}
