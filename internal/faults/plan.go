package faults

import (
	"math/rand"
	"sort"
)

// Episode is one scheduled fault: kind k is active over the half-open
// interval index range [Start, End).
type Episode struct {
	Kind       Kind
	Start, End int
}

// Plan is a concrete, fully materialized fault schedule for one node
// over a run of DurationS one-second intervals. Plans are immutable
// after construction and safe to share between a runner and a recorder —
// all mutable injection state lives in Injector.
type Plan struct {
	Spec      Spec
	DurationS int
	Episodes  []Episode

	flags []Flags // per-interval active mask, len == DurationS
}

// New materializes the schedule implied by spec over durationS intervals.
// The schedule is a pure function of (spec, seed, durationS): each fault
// kind draws from its own sub-stream derived from the seed, so adding a
// knob to the spec never reshuffles the other kinds' episodes.
func New(spec Spec, seed int64, durationS int) *Plan {
	if durationS < 0 {
		durationS = 0
	}
	p := &Plan{Spec: spec, DurationS: durationS}
	for k := Kind(0); k < numKinds; k++ {
		rate := spec.rate(k)
		if rate <= 0 {
			continue
		}
		dur := spec.meanDur(k)
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(k)*7919 + 12345))
		for t := 0; t < durationS; {
			if rng.Float64() >= rate {
				t++
				continue
			}
			// Geometric length with mean ≈ dur, bounded by the run end so
			// every episode lies within [0, durationS).
			end := t + 1
			for end < durationS && dur > 1 && rng.Float64() > 1/dur {
				end++
			}
			p.Episodes = append(p.Episodes, Episode{Kind: k, Start: t, End: end})
			t = end
		}
	}
	p.index()
	return p
}

// Manual builds a plan from explicit episodes, clamping each to
// [0, durationS) and dropping the empty ones — the scripted-scenario
// entry point of the test battery.
func Manual(durationS int, eps ...Episode) *Plan {
	if durationS < 0 {
		durationS = 0
	}
	p := &Plan{DurationS: durationS}
	for _, e := range eps {
		if e.Kind < 0 || e.Kind >= numKinds {
			continue
		}
		if e.Start < 0 {
			e.Start = 0
		}
		if e.End > durationS {
			e.End = durationS
		}
		if e.Start >= e.End {
			continue
		}
		p.Episodes = append(p.Episodes, e)
	}
	sort.SliceStable(p.Episodes, func(i, j int) bool {
		if p.Episodes[i].Start != p.Episodes[j].Start {
			return p.Episodes[i].Start < p.Episodes[j].Start
		}
		return p.Episodes[i].Kind < p.Episodes[j].Kind
	})
	p.index()
	return p
}

// index precomputes the per-interval active mask.
func (p *Plan) index() {
	p.flags = make([]Flags, p.DurationS)
	for _, e := range p.Episodes {
		for i := e.Start; i < e.End; i++ {
			p.flags[i] |= 1 << uint(e.Kind)
		}
	}
}

// Active returns the fault mask of interval t (0 outside the run).
func (p *Plan) Active(t int) Flags {
	if p == nil || t < 0 || t >= len(p.flags) {
		return 0
	}
	return p.flags[t]
}

// NextActive returns the first interval >= t with a non-zero fault
// mask, or -1 when no fault is active at or after t. The event engine
// uses it to schedule a node's next fault wake-up when skipping ahead.
func (p *Plan) NextActive(t int) int {
	if p == nil {
		return -1
	}
	if t < 0 {
		t = 0
	}
	for ; t < len(p.flags); t++ {
		if p.flags[t] != 0 {
			return t
		}
	}
	return -1
}

// CrashedAt reports whether the node is offline in interval t.
func (p *Plan) CrashedAt(t int) bool { return p.Active(t).Has(NodeCrash) }

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool { return p == nil || len(p.Episodes) == 0 }
