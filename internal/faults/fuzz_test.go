package faults

import "testing"

// FuzzParseSpec exercises the fault-plan decoder and plan constructor
// with arbitrary input: the decoder must never panic, and every plan
// materialized from an accepted spec must keep all of its episodes
// within the run duration no matter how hostile the knob values are
// (NaN rates, negative durations, infinities).
func FuzzParseSpec(f *testing.F) {
	f.Add("power.stuck=0.01,latency.drop=0.005,crash=0.001,crash.dur=30", int64(1), 100)
	f.Add("default", int64(42), 500)
	f.Add("", int64(0), 0)
	f.Add("crash=1,crash.dur=NaN", int64(-9), 50)
	f.Add("power.noise=Inf,power.noise.sd=-5,meter.dur=-1", int64(7), 20)
	f.Add("act.drop=1e308,act.partial=-1e308", int64(3), -4)
	f.Fuzz(func(t *testing.T, src string, seed int64, durationS int) {
		spec, err := ParseSpec(src)
		if err != nil {
			return
		}
		if durationS > 4096 {
			durationS %= 4096 // keep fuzz iterations fast
		}
		p := New(spec, seed, durationS)
		if p.DurationS < 0 {
			t.Fatalf("negative duration survived: %d", p.DurationS)
		}
		for _, e := range p.Episodes {
			if e.Start < 0 || e.End > p.DurationS || e.Start >= e.End {
				t.Fatalf("episode %+v outside run [0, %d)", e, p.DurationS)
			}
			if e.Kind < 0 || e.Kind >= numKinds {
				t.Fatalf("episode with invalid kind: %+v", e)
			}
		}
		// The per-interval index must agree with the episode list.
		for i := 0; i < p.DurationS; i++ {
			var want Flags
			for _, e := range p.Episodes {
				if i >= e.Start && i < e.End {
					want |= 1 << uint(e.Kind)
				}
			}
			if got := p.Active(i); got != want {
				t.Fatalf("Active(%d) = %v, episodes say %v", i, got, want)
			}
		}
		// Out-of-range queries are always quiet.
		if p.Active(-1) != 0 || p.Active(p.DurationS) != 0 {
			t.Fatal("out-of-range interval reported faults")
		}
	})
}
