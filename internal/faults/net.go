package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Network chaos between nodes and the coordinator. The node-level plans
// (faults.go) corrupt one node's telemetry; a CoordKillPlan (coord.go)
// takes the arbitration service down wholesale. What neither can model
// is the network in between: a partition that silently eats a node's
// reports, a grant response that never comes back, a delayed report
// that shows up one epoch late — possibly reordered or duplicated. The
// NetPlan here materializes exactly that, with the package's usual
// determinism contract: a plan is a pure function of (spec, seed,
// epochs, nodes), so the Local and HTTP transports replay the identical
// schedule and both cluster engines observe the same message fates.

// NetDir names one direction of the node↔coordinator link.
type NetDir int

const (
	// DirReport is node → coordinator: a severed report never reaches
	// the coordinator, and the node sees its renewal fail.
	DirReport NetDir = iota
	// DirGrant is coordinator → node: the report IS delivered (the
	// coordinator renews the lease) but the grant response is lost, so
	// the node still sees its renewal fail. This is the asymmetric case
	// the lease invariants exist for.
	DirGrant
)

// String names the direction for logs and test failures.
func (d NetDir) String() string {
	if d == DirGrant {
		return "grant"
	}
	return "report"
}

// NetWindow is one directed partition: traffic from/to node Node in
// direction Dir is severed over the half-open epoch range [Start, End).
type NetWindow struct {
	Node       int
	Dir        NetDir
	Start, End int
}

// NetSpec holds the seeded network-chaos knobs. The zero value plans no
// chaos. Rates are probabilities; the schedule they imply is
// materialized up front by NewNet.
type NetSpec struct {
	// PartitionRate is the per-(node, epoch) probability that a
	// partition window opens while the link is healthy. Each opened
	// window severs the report direction, the grant direction, or both
	// (chosen seeded, uniformly).
	PartitionRate float64
	// MeanPartitionEpochs is the mean window length in epochs
	// (geometric, default 2).
	MeanPartitionEpochs float64
	// DropRate is the per-message probability a report is silently
	// dropped outside partition windows.
	DropRate float64
	// DelayRate is the per-message probability a report is held one
	// epoch and delivered just before the next exchange's fresh
	// reports. Its grant response arrives too late to matter and is
	// discarded, so the sender still observes a failed renewal.
	DelayRate float64
	// DupRate is the per-message probability a delivered report is
	// delivered twice back to back (the retry-after-lost-ack shape the
	// server-side dedupe exists for).
	DupRate float64
	// ReorderRate is the per-epoch probability that the epoch's flush
	// of delayed reports runs in reversed order.
	ReorderRate float64
}

// DefaultNetSpec is the battery's standard chaos mix: sparse partitions
// a couple of epochs long over a steady drizzle of per-message drop,
// delay and duplication.
func DefaultNetSpec() NetSpec {
	return NetSpec{
		PartitionRate:       0.02,
		MeanPartitionEpochs: 2,
		DropRate:            0.05,
		DelayRate:           0.05,
		DupRate:             0.05,
		ReorderRate:         0.25,
	}
}

// NetPlan is a materialized network-chaos schedule over epochs
// 1..Epochs and nodes 0..Nodes-1. The zero/nil plan is empty and all
// query methods are nil-safe.
type NetPlan struct {
	Epochs int
	Nodes  int

	outWindows []NetWindow // DirReport partitions, canonicalized
	inWindows  []NetWindow // DirGrant partitions, canonicalized
	drops      map[netKey]struct{}
	delays     map[netKey]struct{}
	dups       map[netKey]struct{}
	reorder    map[int]struct{}
}

type netKey struct{ epoch, node int }

// NewNet materializes the schedule implied by spec — a pure function of
// (spec, seed, epochs, nodes). Extra explicit windows may be appended
// for scripted scenarios; they are canonicalized exactly like ManualNet.
func NewNet(spec NetSpec, seed int64, epochs, nodes int, manual ...NetWindow) *NetPlan {
	clampRate := func(r float64) float64 {
		if !(r > 0) {
			return 0
		}
		if r > 1 {
			return 1
		}
		return r
	}
	prate := clampRate(spec.PartitionRate)
	dur := spec.MeanPartitionEpochs
	if !(dur >= 1) {
		dur = 2
	}
	drop := clampRate(spec.DropRate)
	delay := clampRate(spec.DelayRate)
	dup := clampRate(spec.DupRate)
	reorder := clampRate(spec.ReorderRate)

	windows := append([]NetWindow(nil), manual...)
	p := &NetPlan{
		drops:   map[netKey]struct{}{},
		delays:  map[netKey]struct{}{},
		dups:    map[netKey]struct{}{},
		reorder: map[int]struct{}{},
	}
	rng := rand.New(rand.NewSource(seed*1_000_003 + 991))
	// One deterministic pass per (node, epoch) in fixed order keeps the
	// plan independent of any caller behavior.
	for n := 0; n < nodes; n++ {
		for e := 1; e <= epochs; {
			if prate <= 0 || rng.Float64() >= prate {
				e++
				continue
			}
			end := e + 1
			for end <= epochs && dur > 1 && rng.Float64() > 1/dur {
				end++
			}
			switch rng.Intn(3) {
			case 0:
				windows = append(windows, NetWindow{Node: n, Dir: DirReport, Start: e, End: end})
			case 1:
				windows = append(windows, NetWindow{Node: n, Dir: DirGrant, Start: e, End: end})
			default:
				windows = append(windows,
					NetWindow{Node: n, Dir: DirReport, Start: e, End: end},
					NetWindow{Node: n, Dir: DirGrant, Start: e, End: end})
			}
			e = end + 1
		}
	}
	for n := 0; n < nodes; n++ {
		for e := 1; e <= epochs; e++ {
			k := netKey{epoch: e, node: n}
			if drop > 0 && rng.Float64() < drop {
				p.drops[k] = struct{}{}
			}
			if delay > 0 && rng.Float64() < delay {
				p.delays[k] = struct{}{}
			}
			if dup > 0 && rng.Float64() < dup {
				p.dups[k] = struct{}{}
			}
		}
	}
	for e := 1; e <= epochs; e++ {
		if reorder > 0 && rng.Float64() < reorder {
			p.reorder[e] = struct{}{}
		}
	}
	canonicalizeNet(p, epochs, nodes, windows)
	return p
}

// ManualNet builds a partitions-only plan from explicit windows — the
// scripted-scenario entry point. Windows are clamped to [1, epochs+1)
// and nodes 0..nodes-1, empty ones dropped, and per-(node, direction)
// overlapping or touching ones merged.
func ManualNet(epochs, nodes int, windows ...NetWindow) *NetPlan {
	p := &NetPlan{
		drops:   map[netKey]struct{}{},
		delays:  map[netKey]struct{}{},
		dups:    map[netKey]struct{}{},
		reorder: map[int]struct{}{},
	}
	canonicalizeNet(p, epochs, nodes, windows)
	return p
}

func canonicalizeNet(p *NetPlan, epochs, nodes int, windows []NetWindow) {
	if epochs < 0 {
		epochs = 0
	}
	if nodes < 0 {
		nodes = 0
	}
	p.Epochs, p.Nodes = epochs, nodes
	var out, in []NetWindow
	for _, w := range windows {
		if w.Node < 0 || w.Node >= nodes {
			continue
		}
		if w.Start < 1 {
			w.Start = 1
		}
		if w.End > epochs+1 {
			w.End = epochs + 1
		}
		if w.Start >= w.End {
			continue
		}
		if w.Dir == DirGrant {
			in = append(in, w)
		} else {
			out = append(out, w)
		}
	}
	p.outWindows = mergeNetWindows(out)
	p.inWindows = mergeNetWindows(in)
}

func mergeNetWindows(ws []NetWindow) []NetWindow {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Node != ws[j].Node {
			return ws[i].Node < ws[j].Node
		}
		return ws[i].Start < ws[j].Start
	})
	var merged []NetWindow
	for _, w := range ws {
		if n := len(merged); n > 0 && merged[n-1].Node == w.Node && w.Start <= merged[n-1].End {
			if w.End > merged[n-1].End {
				merged[n-1].End = w.End
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

func inNetWindows(ws []NetWindow, epoch, node int) bool {
	for _, w := range ws {
		if w.Node == node && epoch >= w.Start && epoch < w.End {
			return true
		}
	}
	return false
}

// PartitionedOut reports whether node's report direction is severed at
// epoch: the report never reaches the coordinator.
func (p *NetPlan) PartitionedOut(epoch, node int) bool {
	if p == nil {
		return false
	}
	return inNetWindows(p.outWindows, epoch, node)
}

// PartitionedIn reports whether node's grant direction is severed at
// epoch: the report is delivered but the response is lost.
func (p *NetPlan) PartitionedIn(epoch, node int) bool {
	if p == nil {
		return false
	}
	return inNetWindows(p.inWindows, epoch, node)
}

// Dropped reports whether node's epoch report is dropped in flight.
func (p *NetPlan) Dropped(epoch, node int) bool {
	if p == nil {
		return false
	}
	_, ok := p.drops[netKey{epoch: epoch, node: node}]
	return ok
}

// Delayed reports whether node's epoch report is held one epoch.
func (p *NetPlan) Delayed(epoch, node int) bool {
	if p == nil {
		return false
	}
	_, ok := p.delays[netKey{epoch: epoch, node: node}]
	return ok
}

// Duplicated reports whether node's delivered epoch report arrives
// twice.
func (p *NetPlan) Duplicated(epoch, node int) bool {
	if p == nil {
		return false
	}
	_, ok := p.dups[netKey{epoch: epoch, node: node}]
	return ok
}

// ReorderedFlush reports whether the delayed reports released at epoch
// are delivered in reversed order.
func (p *NetPlan) ReorderedFlush(epoch int) bool {
	if p == nil {
		return false
	}
	_, ok := p.reorder[epoch]
	return ok
}

// Empty reports whether the plan schedules no chaos at all.
func (p *NetPlan) Empty() bool {
	return p == nil || (len(p.outWindows) == 0 && len(p.inWindows) == 0 &&
		len(p.drops) == 0 && len(p.delays) == 0 && len(p.dups) == 0)
}

// ParseNetSpec decodes a compact "key=value,key=value" network-chaos
// string, mirroring ParseSpec's format, e.g.
//
//	partition=0.02,partition.dur=2,drop=0.05,delay=0.05,dup=0.05,reorder=0.25
//
// The empty string decodes to the zero NetSpec (no chaos); "default"
// decodes to DefaultNetSpec.
func ParseNetSpec(s string) (NetSpec, error) {
	var spec NetSpec
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ';' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if len(fields) == 1 && fields[0] == "default" {
		return DefaultNetSpec(), nil
	}
	for _, kv := range fields {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return NetSpec{}, fmt.Errorf("faults: %q is not key=value", kv)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return NetSpec{}, fmt.Errorf("faults: %s: %v", key, err)
		}
		switch strings.TrimSpace(key) {
		case "partition":
			spec.PartitionRate = x
		case "partition.dur":
			spec.MeanPartitionEpochs = x
		case "drop":
			spec.DropRate = x
		case "delay":
			spec.DelayRate = x
		case "dup":
			spec.DupRate = x
		case "reorder":
			spec.ReorderRate = x
		default:
			return NetSpec{}, fmt.Errorf("faults: unknown net knob %q", key)
		}
	}
	return spec, nil
}
