package faults

import "testing"

func TestNetPlanDeterministic(t *testing.T) {
	spec := DefaultNetSpec()
	a := NewNet(spec, 42, 50, 4)
	b := NewNet(spec, 42, 50, 4)
	if !netPlansEqual(a, b, 50, 4) {
		t.Fatal("same (spec, seed, epochs, nodes) produced different schedules")
	}
	c := NewNet(spec, 43, 50, 4)
	if netPlansEqual(a, c, 50, 4) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func netPlansEqual(a, b *NetPlan, epochs, nodes int) bool {
	for e := 0; e <= epochs+1; e++ {
		if a.ReorderedFlush(e) != b.ReorderedFlush(e) {
			return false
		}
		for n := -1; n <= nodes; n++ {
			if a.PartitionedOut(e, n) != b.PartitionedOut(e, n) ||
				a.PartitionedIn(e, n) != b.PartitionedIn(e, n) ||
				a.Dropped(e, n) != b.Dropped(e, n) ||
				a.Delayed(e, n) != b.Delayed(e, n) ||
				a.Duplicated(e, n) != b.Duplicated(e, n) {
				return false
			}
		}
	}
	return true
}

func TestManualNetCanonicalizes(t *testing.T) {
	p := ManualNet(10, 2,
		NetWindow{Node: 0, Dir: DirReport, Start: -5, End: 3}, // clamped to [1, 3)
		NetWindow{Node: 0, Dir: DirReport, Start: 3, End: 99}, // touching: merged, clamped to 11
		NetWindow{Node: 1, Dir: DirGrant, Start: 4, End: 6},   //
		NetWindow{Node: 1, Dir: DirGrant, Start: 5, End: 8},   // overlapping: merged
		NetWindow{Node: 7, Dir: DirReport, Start: 1, End: 9},  // node out of range: dropped
		NetWindow{Node: 1, Dir: DirReport, Start: 6, End: 6},  // empty: dropped
		NetWindow{Node: -1, Dir: DirReport, Start: 1, End: 9}, // negative node: dropped
	)
	for e := 1; e <= 10; e++ {
		if !p.PartitionedOut(e, 0) {
			t.Fatalf("node 0 report dir not severed at epoch %d after merge", e)
		}
	}
	if p.PartitionedOut(11, 0) || p.PartitionedOut(0, 0) {
		t.Fatal("severed outside [1, epochs]")
	}
	for e := 4; e < 8; e++ {
		if !p.PartitionedIn(e, 1) {
			t.Fatalf("node 1 grant dir not severed at epoch %d", e)
		}
	}
	if p.PartitionedIn(8, 1) || p.PartitionedOut(6, 1) || p.PartitionedOut(2, 7) {
		t.Fatal("dropped windows left traces")
	}
	if p.Empty() {
		t.Fatal("plan with windows claims to be empty")
	}
}

func TestNetPlanNilAndEmpty(t *testing.T) {
	var p *NetPlan
	if p.PartitionedOut(1, 0) || p.PartitionedIn(1, 0) || p.Dropped(1, 0) ||
		p.Delayed(1, 0) || p.Duplicated(1, 0) || p.ReorderedFlush(1) {
		t.Fatal("nil plan imposed a fate")
	}
	if !p.Empty() {
		t.Fatal("nil plan not empty")
	}
	if !NewNet(NetSpec{}, 1, 100, 8).Empty() {
		t.Fatal("zero spec materialized chaos")
	}
}

func TestNewNetHostileRatesClamp(t *testing.T) {
	hostile := NetSpec{
		PartitionRate:       2,
		MeanPartitionEpochs: -3,
		DropRate:            nan(),
		DelayRate:           -1,
		DupRate:             1e308,
		ReorderRate:         nan(),
	}
	p := NewNet(hostile, 9, 20, 3)
	// PartitionRate 2 clamps to 1: a window always opens at epoch 1 on
	// every node (in at least one direction); NaN/negative rates clamp
	// to 0 so the per-message fates stay empty.
	for n := 0; n < 3; n++ {
		if !p.PartitionedOut(1, n) && !p.PartitionedIn(1, n) {
			t.Fatalf("node %d epoch 1 escaped a rate-1 partition", n)
		}
		for e := 1; e <= 20; e++ {
			if p.Delayed(e, n) {
				t.Fatal("negative delay rate materialized")
			}
			if p.Dropped(e, n) {
				t.Fatal("NaN drop rate materialized")
			}
			if !p.Duplicated(e, n) {
				t.Fatal("over-range dup rate should clamp to 1, duplicating every message")
			}
		}
	}
}

func TestParseNetSpec(t *testing.T) {
	got, err := ParseNetSpec("partition=0.02,partition.dur=3, drop=0.05,delay=0.1,dup=0.2,reorder=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := NetSpec{PartitionRate: 0.02, MeanPartitionEpochs: 3,
		DropRate: 0.05, DelayRate: 0.1, DupRate: 0.2, ReorderRate: 0.25}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got, err := ParseNetSpec("default"); err != nil || got != DefaultNetSpec() {
		t.Fatalf("default: %+v, %v", got, err)
	}
	if got, err := ParseNetSpec(""); err != nil || got != (NetSpec{}) {
		t.Fatalf("empty: %+v, %v", got, err)
	}
	for _, bad := range []string{"bogus=1", "drop", "drop=x", "drop=0.1,=2"} {
		if _, err := ParseNetSpec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// FuzzNetPlanDecode hammers the net-chaos decoder + constructor: any
// accepted spec string must materialize (without panicking) into a
// plan that is deterministic and keeps every fate inside the run's
// (epoch, node) box no matter how hostile the knobs.
func FuzzNetPlanDecode(f *testing.F) {
	f.Add("partition=0.02,partition.dur=2,drop=0.05,delay=0.05,dup=0.05,reorder=0.25", int64(1), 50, 8)
	f.Add("default", int64(42), 96, 8)
	f.Add("", int64(0), 0, 0)
	f.Add("partition=1,partition.dur=NaN", int64(-9), 30, 2)
	f.Add("drop=Inf,delay=-5,dup=1e308,reorder=2", int64(7), 10, -3)
	f.Fuzz(func(t *testing.T, src string, seed int64, epochs, nodes int) {
		spec, err := ParseNetSpec(src)
		if err != nil {
			return
		}
		if epochs > 512 {
			epochs %= 512 // keep fuzz iterations fast
		}
		if nodes > 64 {
			nodes %= 64
		}
		p := NewNet(spec, seed, epochs, nodes)
		if p.Epochs < 0 || p.Nodes < 0 {
			t.Fatalf("negative bounds survived: %+v", p)
		}
		if !netPlansEqual(p, NewNet(spec, seed, epochs, nodes), p.Epochs, p.Nodes) {
			t.Fatal("plan is not a pure function of its inputs")
		}
		// No fate outside the run's box: epoch 0, epoch Epochs+1, and
		// out-of-range nodes are always quiet.
		for n := -1; n <= p.Nodes; n++ {
			edge := n < 0 || n >= p.Nodes
			for _, e := range []int{0, p.Epochs + 1} {
				if p.PartitionedOut(e, n) || p.PartitionedIn(e, n) || p.Dropped(e, n) ||
					p.Delayed(e, n) || p.Duplicated(e, n) {
					t.Fatalf("fate outside epoch range at (%d, %d)", e, n)
				}
			}
			if edge {
				for e := 1; e <= p.Epochs; e++ {
					if p.PartitionedOut(e, n) || p.PartitionedIn(e, n) || p.Dropped(e, n) ||
						p.Delayed(e, n) || p.Duplicated(e, n) {
						t.Fatalf("fate for out-of-range node at (%d, %d)", e, n)
					}
				}
			}
		}
	})
}

func nan() float64 {
	z := 0.0
	return z / z
}
