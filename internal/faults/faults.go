// Package faults implements a deterministic, seed-driven fault-injection
// layer for the simulated node and fleet: stuck/noisy/dropped power
// readings, stale or missing latency telemetry, actuator writes that
// silently fail or only partially apply, and whole-node crash/recovery
// windows at the cluster level.
//
// Every fault schedule is a pure function of (Spec, seed, duration):
// building the same plan twice yields byte-identical episodes, and an
// Injector replaying the same plan perturbs a telemetry stream
// identically. That reproducibility is the property the chaos test
// battery depends on — a failing chaos run can always be replayed
// exactly from its seed.
//
// The paper's controller (Alg. 1) assumes clean RAPL readings and
// actuators that always take effect; §IV hedges that RAPL-class meters
// carry ~1 W of read noise. This package is the adversarial version of
// that hedge: it lets the test battery prove the control loops degrade
// gracefully when their inputs are wrong, in the spirit of CuttleSys and
// the hyperscale co-location literature where sensor staleness and node
// churn are first-class events.
package faults

import (
	"fmt"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// PowerStuck freezes the power meter at its last reading.
	PowerStuck Kind = iota
	// PowerNoise adds heavy Gaussian noise (Spec.PowerNoiseSD) to reads.
	PowerNoise
	// PowerDrop makes the meter return 0 W (a failed RAPL MSR read).
	PowerDrop
	// LatencyStale repeats the previous p95 sample (frozen exporter).
	LatencyStale
	// LatencyDrop reports NaN p95 (missing telemetry scrape).
	LatencyDrop
	// ActuatorDrop silently discards configuration writes.
	ActuatorDrop
	// ActuatorPartial applies only the DVFS half of a write: the
	// frequency files land but the cpuset/resctrl updates are lost.
	ActuatorPartial
	// NodeCrash takes the whole node offline: no service, no best-effort
	// progress, no telemetry, until the episode ends and the node
	// reboots.
	NodeCrash

	numKinds
)

var kindNames = [numKinds]string{
	"power.stuck", "power.noise", "power.drop",
	"latency.stale", "latency.drop",
	"act.drop", "act.partial",
	"crash",
}

// String returns the knob name of the kind (also used by ParseSpec).
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Flags is the set of fault kinds active in one interval, as a bitmask.
type Flags uint16

// Has reports whether kind k is active.
func (f Flags) Has(k Kind) bool { return f&(1<<uint(k)) != 0 }

// String lists the active kinds, or "-" when none are.
func (f Flags) String() string {
	if f == 0 {
		return "-"
	}
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if f.Has(k) {
			parts = append(parts, k.String())
		}
	}
	return strings.Join(parts, "+")
}

// Counters tallies injected faults over a run. The zero value is ready
// to use.
type Counters struct {
	// PowerStuck/PowerNoise/PowerDrop count perturbed power readings.
	PowerStuck, PowerNoise, PowerDrop int
	// LatencyStale/LatencyDrop count perturbed latency samples.
	LatencyStale, LatencyDrop int
	// ActuatorDrop/ActuatorPartial count sabotaged configuration writes.
	ActuatorDrop, ActuatorPartial int
	// CrashIntervals counts intervals the node spent offline.
	CrashIntervals int
}

// Add accumulates another tally (fleet aggregation).
func (c *Counters) Add(o Counters) {
	c.PowerStuck += o.PowerStuck
	c.PowerNoise += o.PowerNoise
	c.PowerDrop += o.PowerDrop
	c.LatencyStale += o.LatencyStale
	c.LatencyDrop += o.LatencyDrop
	c.ActuatorDrop += o.ActuatorDrop
	c.ActuatorPartial += o.ActuatorPartial
	c.CrashIntervals += o.CrashIntervals
}

// Total returns the sum over all fault classes.
func (c Counters) Total() int {
	return c.PowerStuck + c.PowerNoise + c.PowerDrop +
		c.LatencyStale + c.LatencyDrop +
		c.ActuatorDrop + c.ActuatorPartial + c.CrashIntervals
}

// String renders a compact stable summary (used by golden fixtures).
func (c Counters) String() string {
	return fmt.Sprintf(
		"pwr stuck/noise/drop %d/%d/%d, lat stale/drop %d/%d, act drop/partial %d/%d, crash %d",
		c.PowerStuck, c.PowerNoise, c.PowerDrop,
		c.LatencyStale, c.LatencyDrop,
		c.ActuatorDrop, c.ActuatorPartial, c.CrashIntervals)
}

// Spec holds the fault-model knobs: per-interval episode start
// probabilities, mean episode durations and noise magnitude. The zero
// value injects nothing.
type Spec struct {
	// Rates are per-interval probabilities that a new episode of the
	// kind begins (while no episode of that kind is running).
	PowerStuckRate, PowerNoiseRate, PowerDropRate float64
	LatencyStaleRate, LatencyDropRate             float64
	ActuatorDropRate, ActuatorPartialRate         float64
	CrashRate                                     float64

	// MeterDurS is the mean duration (intervals, geometric) of telemetry
	// episodes — stuck/noisy/dropped meters and stale/missing latency.
	// Default 5. Actuator faults are always single-write events.
	MeterDurS float64
	// CrashDurS is the mean crash length in intervals (default 20).
	CrashDurS float64
	// PowerNoiseSD is the added read noise in watts during PowerNoise
	// episodes (default 8 — an order of magnitude above the meter's
	// intrinsic ~1 W, enough to hide a marginal overload).
	PowerNoiseSD float64
}

// DefaultSpec returns a moderate chaos profile: telemetry episodes a few
// times per thousand intervals, rarer actuator losses, and an occasional
// node crash.
func DefaultSpec() Spec {
	return Spec{
		PowerStuckRate:      0.004,
		PowerNoiseRate:      0.004,
		PowerDropRate:       0.002,
		LatencyStaleRate:    0.004,
		LatencyDropRate:     0.002,
		ActuatorDropRate:    0.01,
		ActuatorPartialRate: 0.01,
		CrashRate:           0.0008,
		MeterDurS:           5,
		CrashDurS:           20,
		PowerNoiseSD:        8,
	}
}

// rate returns the sanitized start probability for kind k in [0, 1].
func (s Spec) rate(k Kind) float64 {
	var r float64
	switch k {
	case PowerStuck:
		r = s.PowerStuckRate
	case PowerNoise:
		r = s.PowerNoiseRate
	case PowerDrop:
		r = s.PowerDropRate
	case LatencyStale:
		r = s.LatencyStaleRate
	case LatencyDrop:
		r = s.LatencyDropRate
	case ActuatorDrop:
		r = s.ActuatorDropRate
	case ActuatorPartial:
		r = s.ActuatorPartialRate
	case NodeCrash:
		r = s.CrashRate
	}
	// NaN and negatives inject nothing; probabilities cap at 1.
	if !(r > 0) {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// meanDur returns the sanitized mean episode duration for kind k (≥ 1).
func (s Spec) meanDur(k Kind) float64 {
	var d float64
	switch k {
	case PowerStuck, PowerNoise, PowerDrop, LatencyStale, LatencyDrop:
		d = s.MeterDurS
		if !(d >= 1) {
			d = 5
		}
	case NodeCrash:
		d = s.CrashDurS
		if !(d >= 1) {
			d = 20
		}
	default: // actuator faults sabotage exactly one write
		d = 1
	}
	return d
}

// noiseSD returns the sanitized power read-noise magnitude in watts.
func (s Spec) noiseSD() float64 {
	sd := s.PowerNoiseSD
	if !(sd >= 0) {
		return 0
	}
	if sd == 0 {
		return 8
	}
	return sd
}
