package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec decodes a compact "key=value,key=value" fault-model string,
// the format the chaos CLI examples accept, e.g.
//
//	power.stuck=0.01,latency.drop=0.005,crash=0.001,crash.dur=30
//
// Keys are the Kind knob names (power.stuck, power.noise, power.drop,
// latency.stale, latency.drop, act.drop, act.partial, crash) taking
// per-interval episode start probabilities, plus meter.dur and crash.dur
// (mean episode intervals) and power.noise.sd (watts). Separators may be
// commas, semicolons or whitespace. The empty string decodes to the
// zero Spec (no faults); "default" decodes to DefaultSpec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ';' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if len(fields) == 1 && fields[0] == "default" {
		return DefaultSpec(), nil
	}
	for _, kv := range fields {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: %q is not key=value", kv)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("faults: %s: %v", key, err)
		}
		switch strings.TrimSpace(key) {
		case "power.stuck":
			spec.PowerStuckRate = x
		case "power.noise":
			spec.PowerNoiseRate = x
		case "power.drop":
			spec.PowerDropRate = x
		case "latency.stale":
			spec.LatencyStaleRate = x
		case "latency.drop":
			spec.LatencyDropRate = x
		case "act.drop":
			spec.ActuatorDropRate = x
		case "act.partial":
			spec.ActuatorPartialRate = x
		case "crash":
			spec.CrashRate = x
		case "meter.dur":
			spec.MeterDurS = x
		case "crash.dur":
			spec.CrashDurS = x
		case "power.noise.sd":
			spec.PowerNoiseSD = x
		default:
			return Spec{}, fmt.Errorf("faults: unknown knob %q", key)
		}
	}
	return spec, nil
}
