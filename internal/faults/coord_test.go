package faults

import (
	"reflect"
	"testing"
)

func TestManualCoordKillCanonicalizes(t *testing.T) {
	p := ManualCoordKill(20,
		CoordKillWindow{Start: 12, End: 15},
		CoordKillWindow{Start: -3, End: 2},  // clamps to [1, 2)
		CoordKillWindow{Start: 14, End: 17}, // overlaps the first: merges
		CoordKillWindow{Start: 17, End: 17}, // empty: dropped
		CoordKillWindow{Start: 19, End: 99}, // clamps to [19, 21)
	)
	want := []CoordKillWindow{{1, 2}, {12, 17}, {19, 21}}
	if !reflect.DeepEqual(p.Windows, want) {
		t.Fatalf("canonical windows %v, want %v", p.Windows, want)
	}
}

func TestCoordKillDownAndRestart(t *testing.T) {
	p := ManualCoordKill(20, CoordKillWindow{Start: 5, End: 8})
	for e, wantDown := range map[int]bool{4: false, 5: true, 6: true, 7: true, 8: false} {
		if p.DownAt(e) != wantDown {
			t.Errorf("DownAt(%d) = %v, want %v", e, p.DownAt(e), wantDown)
		}
	}
	for e, wantRestart := range map[int]bool{7: false, 8: true, 9: false} {
		if p.RestartAt(e) != wantRestart {
			t.Errorf("RestartAt(%d) = %v, want %v", e, p.RestartAt(e), wantRestart)
		}
	}
	// Back-to-back merged windows restart exactly once, after the merge.
	m := ManualCoordKill(20, CoordKillWindow{Start: 3, End: 5}, CoordKillWindow{Start: 5, End: 7})
	if len(m.Windows) != 1 {
		t.Fatalf("touching windows not merged: %v", m.Windows)
	}
	if m.RestartAt(5) || !m.RestartAt(7) {
		t.Fatalf("merged window restarts wrong: RestartAt(5)=%v RestartAt(7)=%v",
			m.RestartAt(5), m.RestartAt(7))
	}
	// A window truncated by the end of the run never restarts in-run.
	tail := ManualCoordKill(10, CoordKillWindow{Start: 9, End: 50})
	for e := 1; e <= 10; e++ {
		if tail.RestartAt(e) {
			t.Fatalf("run-truncated window restarts at epoch %d", e)
		}
	}
	if !tail.DownAt(10) {
		t.Fatal("run-truncated window not down through the last epoch")
	}
	var nilPlan *CoordKillPlan
	if nilPlan.DownAt(3) || nilPlan.RestartAt(3) || !nilPlan.Empty() {
		t.Fatal("nil plan must be inert")
	}
}

func TestNewCoordKillDeterministicAndBounded(t *testing.T) {
	spec := CoordKillSpec{KillRate: 0.05, MeanDownEpochs: 4}
	a := NewCoordKill(spec, 42, 500)
	b := NewCoordKill(spec, 42, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, seed, epochs) produced different plans")
	}
	if a.Empty() {
		t.Fatal("5% kill rate over 500 epochs scheduled nothing")
	}
	for i, w := range a.Windows {
		if w.Start < 1 || w.End > 501 || w.Start >= w.End {
			t.Fatalf("window %d out of bounds: %+v", i, w)
		}
		if i > 0 && w.Start <= a.Windows[i-1].End {
			t.Fatalf("windows %d and %d overlap or touch: %+v %+v",
				i-1, i, a.Windows[i-1], w)
		}
	}
	if c := NewCoordKill(spec, 43, 500); reflect.DeepEqual(a.Windows, c.Windows) {
		t.Fatal("different seeds produced identical schedules")
	}
	if !NewCoordKill(CoordKillSpec{}, 42, 500).Empty() {
		t.Fatal("zero spec scheduled crashes")
	}
}
