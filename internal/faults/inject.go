package faults

import (
	"math"
	"math/rand"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// Injector applies one node's Plan to its telemetry stream and actuation
// path, counting every injected fault. It carries the mutable state a
// schedule alone cannot (last-seen readings, the noise RNG), so the Plan
// stays shareable while each run gets its own Injector.
//
// An Injector is not safe for concurrent use; each simulated node owns
// exactly one.
type Injector struct {
	Plan *Plan
	// C tallies the faults injected so far.
	C Counters

	rng       *rand.Rand
	lastPower power.Watts
	havePower bool
	lastP95   float64
	haveP95   bool
}

// NewInjector pairs a plan with a deterministic noise stream. A nil plan
// yields an injector that never perturbs anything.
func NewInjector(p *Plan, seed int64) *Injector {
	return &Injector{Plan: p, rng: rand.New(rand.NewSource(seed))}
}

// Flags returns the fault mask for interval t.
func (in *Injector) Flags(t int) Flags {
	if in == nil {
		return 0
	}
	return in.Plan.Active(t)
}

// Crashed reports whether the node is offline during interval t and
// accounts the downtime.
func (in *Injector) Crashed(t int) bool {
	if in == nil || !in.Plan.CrashedAt(t) {
		return false
	}
	in.C.CrashIntervals++
	return true
}

// CrashedAt is the non-counting schedule query (for recovery-transition
// checks that must not double-count downtime).
func (in *Injector) CrashedAt(t int) bool { return in != nil && in.Plan.CrashedAt(t) }

// PerturbPower filters one power reading through the active meter
// faults: dropped reads return 0 W, stuck meters repeat their last
// reading, noisy meters add Gaussian error of Spec.PowerNoiseSD watts.
func (in *Injector) PerturbPower(t int, w power.Watts) power.Watts {
	if in == nil {
		return w
	}
	f := in.Plan.Active(t)
	switch {
	case f.Has(PowerDrop):
		in.C.PowerDrop++
		return 0
	case f.Has(PowerStuck):
		in.C.PowerStuck++
		if !in.havePower {
			in.lastPower, in.havePower = w, true
		}
		return in.lastPower
	case f.Has(PowerNoise):
		in.C.PowerNoise++
		w += power.Watts(in.rng.NormFloat64() * in.Plan.Spec.noiseSD())
		if w < 0 {
			w = 0
		}
	}
	in.lastPower, in.havePower = w, true
	return w
}

// PerturbP95 filters one latency sample: dropped scrapes return NaN,
// stale exporters repeat the previous sample.
func (in *Injector) PerturbP95(t int, p float64) float64 {
	if in == nil {
		return p
	}
	f := in.Plan.Active(t)
	switch {
	case f.Has(LatencyDrop):
		in.C.LatencyDrop++
		return math.NaN()
	case f.Has(LatencyStale):
		in.C.LatencyStale++
		if !in.haveP95 {
			in.lastP95, in.haveP95 = p, true
		}
		return in.lastP95
	}
	in.lastP95, in.haveP95 = p, true
	return p
}

// Actuate attempts to install next through apply (which validates and
// may reject), honouring the interval's actuator faults: dropped writes
// leave cur in force; partial writes land only the DVFS half, keeping
// cur's core and LLC partitioning. It returns the configuration actually
// in force afterwards.
func (in *Injector) Actuate(t int, cur, next hw.Config, apply func(hw.Config) error) hw.Config {
	if in == nil {
		if apply(next) == nil {
			return next
		}
		return cur
	}
	f := in.Plan.Active(t)
	switch {
	case f.Has(ActuatorDrop):
		in.C.ActuatorDrop++
		return cur
	case f.Has(ActuatorPartial):
		in.C.ActuatorPartial++
		part := cur
		part.LS.Freq, part.BE.Freq = next.LS.Freq, next.BE.Freq
		if apply(part) == nil {
			return part
		}
		return cur
	}
	if apply(next) == nil {
		return next
	}
	return cur
}
