package faults

import (
	"math"
	"reflect"
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

func TestPlanDeterministic(t *testing.T) {
	spec := DefaultSpec()
	a := New(spec, 42, 5000)
	b := New(spec, 42, 5000)
	if !reflect.DeepEqual(a.Episodes, b.Episodes) {
		t.Fatal("same (spec, seed, duration) produced different schedules")
	}
	c := New(spec, 43, 5000)
	if reflect.DeepEqual(a.Episodes, c.Episodes) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	if len(a.Episodes) == 0 {
		t.Fatal("default spec over 5000 intervals scheduled nothing")
	}
}

func TestPlanEpisodesWithinDuration(t *testing.T) {
	spec := DefaultSpec()
	for _, d := range []int{0, 1, 7, 300} {
		p := New(spec, 9, d)
		for _, e := range p.Episodes {
			if e.Start < 0 || e.End > d || e.Start >= e.End {
				t.Fatalf("duration %d: episode %+v out of bounds", d, e)
			}
		}
	}
}

func TestPlanSubStreamsIndependent(t *testing.T) {
	// Disabling one kind must not reshuffle the others' episodes.
	spec := DefaultSpec()
	full := New(spec, 11, 4000)
	spec.CrashRate = 0
	noCrash := New(spec, 11, 4000)
	filter := func(eps []Episode, k Kind) []Episode {
		var out []Episode
		for _, e := range eps {
			if e.Kind == k {
				out = append(out, e)
			}
		}
		return out
	}
	for k := Kind(0); k < numKinds; k++ {
		if k == NodeCrash {
			continue
		}
		if !reflect.DeepEqual(filter(full.Episodes, k), filter(noCrash.Episodes, k)) {
			t.Fatalf("disabling crash reshuffled %v episodes", k)
		}
	}
	if len(filter(noCrash.Episodes, NodeCrash)) != 0 {
		t.Fatal("crash episodes survived a zero crash rate")
	}
}

func TestManualClampsAndSorts(t *testing.T) {
	p := Manual(50,
		Episode{Kind: NodeCrash, Start: 40, End: 99},
		Episode{Kind: PowerStuck, Start: -5, End: 3},
		Episode{Kind: LatencyDrop, Start: 10, End: 10}, // empty → dropped
		Episode{Kind: Kind(99), Start: 0, End: 5},      // unknown → dropped
	)
	want := []Episode{
		{Kind: PowerStuck, Start: 0, End: 3},
		{Kind: NodeCrash, Start: 40, End: 50},
	}
	if !reflect.DeepEqual(p.Episodes, want) {
		t.Fatalf("episodes = %+v, want %+v", p.Episodes, want)
	}
	if !p.CrashedAt(45) || p.CrashedAt(39) || p.CrashedAt(50) {
		t.Fatal("crash window membership wrong")
	}
	if !p.Active(1).Has(PowerStuck) || p.Active(1).Has(NodeCrash) {
		t.Fatal("flags wrong")
	}
}

func TestPlanNextActive(t *testing.T) {
	p := Manual(60,
		Episode{Kind: PowerStuck, Start: 10, End: 13},
		Episode{Kind: NodeCrash, Start: 40, End: 45},
	)
	cases := []struct{ t, want int }{
		{-5, 10}, {0, 10}, {10, 10}, {12, 12}, {13, 40},
		{39, 40}, {44, 44}, {45, -1}, {60, -1}, {999, -1},
	}
	for _, c := range cases {
		if got := p.NextActive(c.t); got != c.want {
			t.Fatalf("NextActive(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	// Cross-check against the ground truth Active exposes.
	for from := 0; from < 60; from++ {
		want := -1
		for u := from; u < 60; u++ {
			if p.Active(u) != 0 {
				want = u
				break
			}
		}
		if got := p.NextActive(from); got != want {
			t.Fatalf("NextActive(%d) = %d, Active scan says %d", from, got, want)
		}
	}
	var nilPlan *Plan
	if nilPlan.NextActive(0) != -1 {
		t.Fatal("nil plan must report no activity")
	}
	if Manual(10).NextActive(0) != -1 {
		t.Fatal("empty plan must report no activity")
	}
}

func TestInjectorPowerFaults(t *testing.T) {
	p := Manual(10,
		Episode{Kind: PowerStuck, Start: 2, End: 4},
		Episode{Kind: PowerDrop, Start: 6, End: 7},
	)
	in := NewInjector(p, 1)
	if got := in.PerturbPower(0, 100); got != 100 {
		t.Fatalf("clean read perturbed: %v", got)
	}
	in.PerturbPower(1, 110)
	if got := in.PerturbPower(2, 150); got != 110 {
		t.Fatalf("stuck meter returned %v, want frozen 110", got)
	}
	if got := in.PerturbPower(3, 160); got != 110 {
		t.Fatalf("stuck meter moved: %v", got)
	}
	if got := in.PerturbPower(4, 120); got != 120 {
		t.Fatalf("meter did not unstick: %v", got)
	}
	if got := in.PerturbPower(6, 130); got != 0 {
		t.Fatalf("dropped read returned %v, want 0", got)
	}
	if in.C.PowerStuck != 2 || in.C.PowerDrop != 1 {
		t.Fatalf("counters %+v", in.C)
	}
}

func TestInjectorLatencyFaults(t *testing.T) {
	p := Manual(10,
		Episode{Kind: LatencyStale, Start: 1, End: 3},
		Episode{Kind: LatencyDrop, Start: 5, End: 6},
	)
	in := NewInjector(p, 1)
	in.PerturbP95(0, 0.010)
	if got := in.PerturbP95(1, 0.050); got != 0.010 {
		t.Fatalf("stale sample = %v, want 0.010", got)
	}
	if got := in.PerturbP95(2, 0.060); got != 0.010 {
		t.Fatalf("stale sample moved: %v", got)
	}
	if got := in.PerturbP95(5, 0.020); !math.IsNaN(got) {
		t.Fatalf("dropped sample = %v, want NaN", got)
	}
	if in.C.LatencyStale != 2 || in.C.LatencyDrop != 1 {
		t.Fatalf("counters %+v", in.C)
	}
}

func TestInjectorActuatorFaults(t *testing.T) {
	spec := hw.DefaultSpec()
	cur := hw.Config{
		LS: hw.Alloc{Cores: 10, Freq: 2.0, LLCWays: 10},
		BE: hw.Alloc{Cores: 10, Freq: 1.6, LLCWays: 10},
	}
	next := hw.Config{
		LS: hw.Alloc{Cores: 12, Freq: 1.8, LLCWays: 12},
		BE: hw.Alloc{Cores: 8, Freq: 2.2, LLCWays: 8},
	}
	apply := func(c hw.Config) error { return c.Validate(spec) }

	p := Manual(10,
		Episode{Kind: ActuatorDrop, Start: 0, End: 1},
		Episode{Kind: ActuatorPartial, Start: 1, End: 2},
	)
	in := NewInjector(p, 1)
	if got := in.Actuate(0, cur, next, apply); got != cur {
		t.Fatalf("dropped write changed config: %v", got)
	}
	got := in.Actuate(1, cur, next, apply)
	if got.LS.Cores != cur.LS.Cores || got.LS.LLCWays != cur.LS.LLCWays {
		t.Fatalf("partial write moved cores/ways: %v", got)
	}
	if got.LS.Freq != next.LS.Freq || got.BE.Freq != next.BE.Freq {
		t.Fatalf("partial write lost the DVFS half: %v", got)
	}
	if err := got.Validate(spec); err != nil {
		t.Fatalf("partial result invalid: %v", err)
	}
	if got2 := in.Actuate(5, cur, next, apply); got2 != next {
		t.Fatalf("clean write did not land: %v", got2)
	}
	if in.C.ActuatorDrop != 1 || in.C.ActuatorPartial != 1 {
		t.Fatalf("counters %+v", in.C)
	}
}

func TestInjectorReplayIsIdentical(t *testing.T) {
	p := New(DefaultSpec(), 7, 500)
	run := func() []float64 {
		in := NewInjector(p, 99)
		var out []float64
		for i := 0; i < 500; i++ {
			out = append(out, float64(in.PerturbPower(i, power.Watts(100+i%7))))
			out = append(out, in.PerturbP95(i, 0.01+float64(i%5)*0.001))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		same := a[i] == b[i] || (math.IsNaN(a[i]) && math.IsNaN(b[i]))
		if !same {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNilInjectorIsTransparent(t *testing.T) {
	var in *Injector
	if in.Crashed(3) || in.CrashedAt(3) || in.Flags(3) != 0 {
		t.Fatal("nil injector reported faults")
	}
	if got := in.PerturbPower(0, 55); got != 55 {
		t.Fatalf("nil injector perturbed power: %v", got)
	}
	if got := in.PerturbP95(0, 0.01); got != 0.01 {
		t.Fatalf("nil injector perturbed latency: %v", got)
	}
	spec := hw.DefaultSpec()
	next := hw.SoloLS(spec)
	got := in.Actuate(0, hw.Config{}, next, func(c hw.Config) error { return nil })
	if got != next {
		t.Fatalf("nil injector blocked actuation: %v", got)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("power.stuck=0.01, latency.drop=0.005;crash=0.001 crash.dur=30")
	if err != nil {
		t.Fatal(err)
	}
	if spec.PowerStuckRate != 0.01 || spec.LatencyDropRate != 0.005 ||
		spec.CrashRate != 0.001 || spec.CrashDurS != 30 {
		t.Fatalf("parsed %+v", spec)
	}
	if s, err := ParseSpec(""); err != nil || s != (Spec{}) {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	if s, err := ParseSpec("default"); err != nil || s != DefaultSpec() {
		t.Fatalf("default spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"nope=1", "power.stuck", "power.stuck=abc"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestCountersAddAndString(t *testing.T) {
	a := Counters{PowerStuck: 1, CrashIntervals: 2}
	a.Add(Counters{PowerStuck: 3, LatencyDrop: 4})
	if a.PowerStuck != 4 || a.LatencyDrop != 4 || a.CrashIntervals != 2 {
		t.Fatalf("add: %+v", a)
	}
	if a.Total() != 10 {
		t.Fatalf("total %d", a.Total())
	}
	if a.String() == "" || (Flags(0)).String() != "-" {
		t.Fatal("string rendering broken")
	}
	f := Flags(1<<uint(PowerStuck) | 1<<uint(NodeCrash))
	if f.String() != "power.stuck+crash" {
		t.Fatalf("flags string %q", f.String())
	}
}
