package faults

import (
	"math/rand"
	"sort"
)

// Coordinator crash scheduling. Node-level faults (faults.go) perturb
// one node's telemetry and actuators per simulated second; a
// coordinator kill is a different beast — it takes the fleet's
// arbitration control plane down for a window of *epochs* and then
// hands it back, restarted from whatever durable state it managed to
// keep. The plan lives here, next to the other fault schedules, so the
// same determinism contract applies: a CoordKillPlan is a pure function
// of (spec, seed, epochs) and replaying it reproduces the same crash
// windows exactly.

// CoordKillWindow is one coordinator outage-by-crash: the coordinator
// is down over the half-open epoch range [Start, End) and restarts —
// recovering from its durable state — at epoch End.
type CoordKillWindow struct {
	Start, End int
}

// CoordKillSpec holds the seeded crash-model knobs. The zero value
// kills nothing.
type CoordKillSpec struct {
	// KillRate is the per-epoch probability a crash window opens while
	// the coordinator is up.
	KillRate float64
	// MeanDownEpochs is the mean window length in epochs (geometric,
	// default 3).
	MeanDownEpochs float64
}

// CoordKillPlan is a materialized coordinator crash schedule over
// epochs 1..Epochs. Windows are sorted, non-overlapping and non-empty.
type CoordKillPlan struct {
	Epochs  int
	Windows []CoordKillWindow
}

// NewCoordKill materializes the schedule implied by spec over epochs
// 1..epochs — a pure function of (spec, seed, epochs).
func NewCoordKill(spec CoordKillSpec, seed int64, epochs int) *CoordKillPlan {
	rate := spec.KillRate
	if !(rate > 0) {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	dur := spec.MeanDownEpochs
	if !(dur >= 1) {
		dur = 3
	}
	var ws []CoordKillWindow
	if rate > 0 {
		rng := rand.New(rand.NewSource(seed*1_000_003 + 777))
		for e := 1; e <= epochs; {
			if rng.Float64() >= rate {
				e++
				continue
			}
			end := e + 1
			for end <= epochs && dur > 1 && rng.Float64() > 1/dur {
				end++
			}
			ws = append(ws, CoordKillWindow{Start: e, End: end})
			// The restart epoch itself stays up; the next window can open
			// no earlier than the epoch after it.
			e = end + 1
		}
	}
	return ManualCoordKill(epochs, ws...)
}

// ManualCoordKill builds a plan from explicit windows — the
// scripted-scenario entry point. Windows are clamped to [1, epochs+1)
// (epoch numbering starts at 1 in the fleet's grant loop), empty ones
// dropped, and overlapping or touching ones merged, so DownAt/RestartAt
// see a canonical schedule whatever the caller passed.
func ManualCoordKill(epochs int, windows ...CoordKillWindow) *CoordKillPlan {
	if epochs < 0 {
		epochs = 0
	}
	p := &CoordKillPlan{Epochs: epochs}
	var ws []CoordKillWindow
	for _, w := range windows {
		if w.Start < 1 {
			w.Start = 1
		}
		if w.End > epochs+1 {
			w.End = epochs + 1
		}
		if w.Start >= w.End {
			continue
		}
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	for _, w := range ws {
		if n := len(p.Windows); n > 0 && w.Start <= p.Windows[n-1].End {
			if w.End > p.Windows[n-1].End {
				p.Windows[n-1].End = w.End
			}
			continue
		}
		p.Windows = append(p.Windows, w)
	}
	return p
}

// DownAt reports whether the coordinator is crashed in epoch e.
func (p *CoordKillPlan) DownAt(e int) bool {
	if p == nil {
		return false
	}
	for _, w := range p.Windows {
		if e >= w.Start && e < w.End {
			return true
		}
	}
	return false
}

// RestartAt reports whether epoch e is the first epoch after a crash
// window — the epoch the coordinator stands back up from durable state
// before serving grants again. A window truncated by the end of the run
// never restarts inside it.
func (p *CoordKillPlan) RestartAt(e int) bool {
	if p == nil || p.DownAt(e) {
		return false
	}
	for _, w := range p.Windows {
		if w.End == e {
			return true
		}
	}
	return false
}

// Empty reports whether the plan schedules no crashes at all.
func (p *CoordKillPlan) Empty() bool { return p == nil || len(p.Windows) == 0 }
