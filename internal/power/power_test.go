package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sturgeon/internal/hw"
)

func TestCoreDynamicSuperLinear(t *testing.T) {
	p := DefaultParams()
	// Doubling frequency must more than double dynamic power (cube term).
	p1 := p.CoreDynamic(1.1)
	p2 := p.CoreDynamic(2.2)
	if p2 <= 2*p1 {
		t.Errorf("CoreDynamic(2.2)=%v not super-linear vs CoreDynamic(1.1)=%v", p2, p1)
	}
}

func TestCoreDynamicMonotone(t *testing.T) {
	p := DefaultParams()
	s := hw.DefaultSpec()
	prev := Watts(-1)
	for _, f := range s.FreqLevels() {
		cur := p.CoreDynamic(f)
		if cur <= prev {
			t.Fatalf("CoreDynamic not increasing at %v GHz: %v <= %v", f, cur, prev)
		}
		prev = cur
	}
}

func TestTotalComposition(t *testing.T) {
	p := DefaultParams()
	idle := p.Total(nil, 0, 20, 0)
	if idle != p.IdleW {
		t.Errorf("idle total = %v, want %v", idle, p.IdleW)
	}
	one := p.Total([]CoreLoad{{Cores: 1, Freq: 2.2, Util: 1, Activity: 1}}, 0, 20, 0)
	want := p.IdleW + p.CoreDynamic(2.2) + p.CoreIdleW
	if math.Abs(float64(one-want)) > 1e-9 {
		t.Errorf("one core total = %v, want %v", one, want)
	}
	// Zero-core loads contribute nothing.
	same := p.Total([]CoreLoad{{Cores: 0, Freq: 2.2, Util: 1, Activity: 1}}, 0, 20, 0)
	if same != idle {
		t.Errorf("zero-core load changed power: %v != %v", same, idle)
	}
}

func TestTotalClampsUtilAndActivity(t *testing.T) {
	p := DefaultParams()
	over := p.Total([]CoreLoad{{Cores: 2, Freq: 2.0, Util: 7, Activity: 3}}, 0, 20, 0)
	ref := p.Total([]CoreLoad{{Cores: 2, Freq: 2.0, Util: 1, Activity: 1}}, 0, 20, 0)
	if over != ref {
		t.Errorf("out-of-range util/activity not clamped: %v != %v", over, ref)
	}
}

func TestTotalMonotoneInEverything(t *testing.T) {
	p := DefaultParams()
	base := p.Total([]CoreLoad{{Cores: 4, Freq: 1.6, Util: 0.5, Activity: 0.5}}, 5, 20, 2)
	more := []struct {
		name string
		w    Watts
	}{
		{"cores", p.Total([]CoreLoad{{Cores: 8, Freq: 1.6, Util: 0.5, Activity: 0.5}}, 5, 20, 2)},
		{"freq", p.Total([]CoreLoad{{Cores: 4, Freq: 2.2, Util: 0.5, Activity: 0.5}}, 5, 20, 2)},
		{"util", p.Total([]CoreLoad{{Cores: 4, Freq: 1.6, Util: 0.9, Activity: 0.5}}, 5, 20, 2)},
		{"activity", p.Total([]CoreLoad{{Cores: 4, Freq: 1.6, Util: 0.5, Activity: 0.9}}, 5, 20, 2)},
		{"ways", p.Total([]CoreLoad{{Cores: 4, Freq: 1.6, Util: 0.5, Activity: 0.5}}, 15, 20, 2)},
		{"dram", p.Total([]CoreLoad{{Cores: 4, Freq: 1.6, Util: 0.5, Activity: 0.5}}, 5, 20, 9)},
	}
	for _, m := range more {
		if m.w <= base {
			t.Errorf("increasing %s did not increase power: %v <= %v", m.name, m.w, base)
		}
	}
}

func TestTotalPropertyNonNegativeAndAboveIdle(t *testing.T) {
	p := DefaultParams()
	f := func(cores uint8, flvl uint8, util, act float64, ways uint8, bw float64) bool {
		s := hw.DefaultSpec()
		load := CoreLoad{
			Cores:    int(cores) % (s.Cores + 1),
			Freq:     s.FreqAtLevel(int(flvl)),
			Util:     math.Abs(math.Mod(util, 1)),
			Activity: math.Abs(math.Mod(act, 1)),
		}
		w := p.Total([]CoreLoad{load}, int(ways)%21, 20, math.Abs(math.Mod(bw, 30)))
		return w >= p.IdleW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(100)
	if over := b.Observe(90); over {
		t.Error("90W flagged as overload of 100W budget")
	}
	if over := b.Observe(110); !over {
		t.Error("110W not flagged as overload")
	}
	b.Observe(105)
	if got := b.OverloadFraction(); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("OverloadFraction = %v, want 2/3", got)
	}
	if got := b.PeakRatio(); math.Abs(got-1.1) > 1e-9 {
		t.Errorf("PeakRatio = %v, want 1.1", got)
	}
	if got := b.MeanRatio(); math.Abs(got-(0.9+1.1+1.05)/3) > 1e-9 {
		t.Errorf("MeanRatio = %v", got)
	}
	b.Reset()
	if b.Samples() != 0 || b.OverloadFraction() != 0 {
		t.Error("Reset did not clear statistics")
	}
}

func TestBudgetRejectsNonPositiveCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBudget(0) did not panic")
		}
	}()
	NewBudget(0)
}

func TestBreakerTripsOnSustainedOverload(t *testing.T) {
	br := &Breaker{Limit: 100, Tolerance: 2}
	for i := 0; i < 2; i++ {
		if br.Observe(120) {
			t.Fatalf("breaker tripped after %d samples, tolerance 2", i+1)
		}
	}
	if !br.Observe(120) {
		t.Error("breaker did not trip after tolerance exceeded")
	}
	if !br.Observe(50) {
		t.Error("tripped breaker reset itself")
	}
	br.Reset()
	if br.Tripped() {
		t.Error("Reset did not re-arm breaker")
	}
}

func TestBreakerToleratesTransients(t *testing.T) {
	br := &Breaker{Limit: 100, Tolerance: 2}
	for i := 0; i < 50; i++ {
		br.Observe(120)
		br.Observe(120)
		if br.Observe(80) {
			t.Fatal("breaker tripped on transient spikes within tolerance")
		}
	}
}

func TestMeterNoiselessReadsTruth(t *testing.T) {
	m := NewMeter(0, nil)
	got := m.Read(101.23, 1)
	if math.Abs(float64(got)-101.2) > 1e-9 { // quantized to 0.1 W
		t.Errorf("Read = %v, want 101.2", got)
	}
	if math.Abs(m.EnergyJoules()-101.2) > 1e-9 {
		t.Errorf("EnergyJoules = %v, want 101.2", m.EnergyJoules())
	}
}

func TestMeterPeakTracking(t *testing.T) {
	m := NewMeter(0, nil)
	m.Read(90, 1)
	m.Read(130, 1)
	m.Read(100, 1)
	if m.Peak() != 130 {
		t.Errorf("Peak = %v, want 130", m.Peak())
	}
	if m.Last() != 100 {
		t.Errorf("Last = %v, want 100", m.Last())
	}
	m.ResetPeak()
	m.Read(95, 1)
	if m.Peak() != 95 {
		t.Errorf("Peak after reset = %v, want 95", m.Peak())
	}
}

func TestMeterNoiseIsBoundedAndUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMeter(1.0, rng.NormFloat64)
	const truth = 100.0
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		sum += float64(m.Read(truth, 1))
	}
	mean := sum / n
	if math.Abs(mean-truth) > 0.1 {
		t.Errorf("noisy meter biased: mean %v vs truth %v", mean, truth)
	}
	if m.Peak() > truth+6 || m.Peak() < truth {
		t.Errorf("peak %v implausible for sd=1 noise", m.Peak())
	}
}

func TestMeterNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMeter(50, rng.NormFloat64)
	for i := 0; i < 1000; i++ {
		if got := m.Read(1, 1); got < 0 {
			t.Fatalf("negative meter reading %v", got)
		}
	}
}
