// Package power models the power behaviour of a power-constrained server
// and provides a RAPL-style sampled power meter, the power-budget
// accounting that Sturgeon's predictor checks configurations against, and
// a circuit-breaker abstraction (§II-A of the paper: sustained overload
// risks tripping the breaker).
//
// The physics follow the classic CMOS decomposition: a large static
// platform floor plus per-core dynamic power that grows super-linearly
// with frequency (≈ a·f³ + b·f, since voltage scales with frequency),
// scaled by the application's activity factor and core utilization, plus
// uncore and DRAM terms. The super-linear frequency term is what makes
// "more slow cores vs. fewer fast cores" a genuine trade-off under a
// budget, which is the paper's central observation.
package power

import (
	"fmt"
	"math"

	"sturgeon/internal/hw"
)

// Watts is electrical power in watts.
type Watts float64

// Params holds the coefficients of the server power model.
type Params struct {
	// IdleW is the static platform power with all cores idle.
	IdleW Watts
	// CoreC3 and CoreC1 set per-core dynamic power at activity factor 1
	// and utilization 1: P = CoreC3·f³ + CoreC1·f (f in GHz).
	CoreC3 Watts
	CoreC1 Watts
	// CoreIdleW is the per-core cost of keeping a core out of deep sleep
	// (allocated but idle fraction still pays a residency cost).
	CoreIdleW Watts
	// UncoreDynW is the maximum dynamic uncore (LLC + ring) power, scaled
	// by the fraction of active ways.
	UncoreDynW Watts
	// DRAMPerGBs is DRAM power per GB/s of memory traffic.
	DRAMPerGBs Watts
}

// DefaultParams returns coefficients calibrated so that the default
// hw.Spec reproduces the paper's Fig. 2 corridor: the power budget equals
// the LS service's peak-load draw, and naive co-location overshoots it by
// roughly 2–13 % depending on the BE application.
func DefaultParams() Params {
	return Params{
		IdleW:      62,
		CoreC3:     0.30,
		CoreC1:     0.25,
		CoreIdleW:  0.35,
		UncoreDynW: 6,
		DRAMPerGBs: 0.55,
	}
}

// CoreLoad describes one allocation's contribution to dynamic core power.
type CoreLoad struct {
	Cores int
	Freq  hw.GHz
	// Util is the average busy fraction of the allocated cores in [0,1].
	Util float64
	// Activity is the application's activity factor in [0,1]: how much
	// switching capacitance its instruction mix toggles per busy cycle.
	// Compute-dense BE applications sit higher than event-driven LS
	// services, which is the root cause of co-location power overload.
	Activity float64
}

// CoreDynamic returns the dynamic power of a single fully-active core at
// frequency f and activity factor 1.
func (p Params) CoreDynamic(f hw.GHz) Watts {
	g := float64(f)
	return p.CoreC3*Watts(g*g*g) + p.CoreC1*Watts(g)
}

// Total evaluates the model: platform idle + per-allocation core power +
// uncore scaled by active LLC ways + DRAM traffic power.
func (p Params) Total(loads []CoreLoad, activeWays, totalWays int, dramGBs float64) Watts {
	total := p.IdleW
	for _, l := range loads {
		if l.Cores <= 0 {
			continue
		}
		util := clamp01(l.Util)
		act := clamp01(l.Activity)
		perCore := Watts(util*act)*p.CoreDynamic(l.Freq) + p.CoreIdleW
		total += Watts(l.Cores) * perCore
	}
	if totalWays > 0 {
		total += p.UncoreDynW * Watts(float64(activeWays)/float64(totalWays))
	}
	total += p.DRAMPerGBs * Watts(dramGBs)
	return total
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Budget tracks a node power cap and overload statistics, mirroring how
// the paper sets the cap to the LS service's peak-load power (§III-B).
type Budget struct {
	Cap Watts

	samples  int
	overload int
	maxRatio float64
	sumRatio float64
}

// NewBudget returns a budget with the given cap.
func NewBudget(cap Watts) *Budget {
	if cap <= 0 {
		panic(fmt.Sprintf("power: budget cap %v must be positive", cap))
	}
	return &Budget{Cap: cap}
}

// Observe records one interval's power draw and reports whether it
// overloads the budget.
func (b *Budget) Observe(w Watts) bool {
	b.samples++
	ratio := float64(w / b.Cap)
	b.sumRatio += ratio
	if ratio > b.maxRatio {
		b.maxRatio = ratio
	}
	over := w > b.Cap
	if over {
		b.overload++
	}
	return over
}

// OverloadFraction returns the fraction of observed intervals above cap.
func (b *Budget) OverloadFraction() float64 {
	if b.samples == 0 {
		return 0
	}
	return float64(b.overload) / float64(b.samples)
}

// PeakRatio returns the maximum observed power/cap ratio.
func (b *Budget) PeakRatio() float64 { return b.maxRatio }

// MeanRatio returns the average observed power/cap ratio.
func (b *Budget) MeanRatio() float64 {
	if b.samples == 0 {
		return 0
	}
	return b.sumRatio / float64(b.samples)
}

// Samples returns how many intervals have been observed.
func (b *Budget) Samples() int { return b.samples }

// Reset clears accumulated statistics, keeping the cap.
func (b *Budget) Reset() {
	b.samples, b.overload, b.maxRatio, b.sumRatio = 0, 0, 0, 0
}

// Breaker models the facility circuit breaker: it trips after power
// exceeds the limit for more than Tolerance consecutive observations
// (breakers tolerate brief transients but not sustained overload).
type Breaker struct {
	Limit     Watts
	Tolerance int

	consecutive int
	tripped     bool
}

// Observe feeds one power sample; it returns true if the breaker is (now)
// tripped. A tripped breaker stays tripped until Reset.
func (br *Breaker) Observe(w Watts) bool {
	if br.tripped {
		return true
	}
	if w > br.Limit {
		br.consecutive++
		if br.consecutive > br.Tolerance {
			br.tripped = true
		}
	} else {
		br.consecutive = 0
	}
	return br.tripped
}

// Tripped reports whether the breaker has tripped.
func (br *Breaker) Tripped() bool { return br.tripped }

// Reset re-arms the breaker.
func (br *Breaker) Reset() { br.consecutive, br.tripped = 0, false }

// Meter is a RAPL-style sampled power meter: reads of the true draw are
// quantized and perturbed by measurement noise, and an energy counter
// accumulates like the RAPL MSR does.
type Meter struct {
	// NoiseSD is the standard deviation of additive Gaussian read noise.
	NoiseSD Watts
	// Quantum is the measurement resolution (RAPL counts in ~15.3 µJ
	// units; at 1 s sampling that is sub-watt, we default to 0.1 W).
	Quantum Watts

	rng     func() float64 // standard normal source
	energyJ float64
	peak    Watts
	last    Watts
}

// NewMeter builds a meter with the given noise level and a deterministic
// normal source (pass nil for a noiseless meter).
func NewMeter(noiseSD Watts, normal func() float64) *Meter {
	return &Meter{NoiseSD: noiseSD, Quantum: 0.1, rng: normal}
}

// Read samples the true power (with noise and quantization), accumulates
// energy over dt seconds, and tracks the peak reading.
func (m *Meter) Read(truth Watts, dtSeconds float64) Watts {
	v := truth
	if m.rng != nil && m.NoiseSD > 0 {
		v += Watts(m.rng()) * m.NoiseSD
	}
	if m.Quantum > 0 {
		v = Watts(math.Round(float64(v/m.Quantum))) * m.Quantum
	}
	if v < 0 {
		v = 0
	}
	m.energyJ += float64(v) * dtSeconds
	if v > m.peak {
		m.peak = v
	}
	m.last = v
	return v
}

// Noiseless reports whether reads are a pure function of the true draw
// (no Gaussian perturbation), i.e. Read consumes no randomness. The
// event-driven cluster engine uses this to prove a node's interval is
// replayable without advancing any rng stream.
func (m *Meter) Noiseless() bool {
	return m == nil || m.rng == nil || m.NoiseSD <= 0
}

// EnergyJoules returns accumulated energy.
func (m *Meter) EnergyJoules() float64 { return m.energyJ }

// Peak returns the highest reading seen.
func (m *Meter) Peak() Watts { return m.peak }

// Last returns the most recent reading.
func (m *Meter) Last() Watts { return m.last }

// ResetPeak clears the peak tracker (per-window peak power is what the
// paper trains its conservative power models on, §V-A).
func (m *Meter) ResetPeak() { m.peak = 0 }
