package obs

import "testing"

// TestJournalSinceEdgeCases pins the cursor arithmetic at the
// boundaries pollers actually hit: cursors before the ring's memory,
// past its head, and negative.
func TestJournalSinceEdgeCases(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Append(Event{T: float64(i), Type: EventHarvest})
	}

	// Negative cursors behave like 0: the full retained tail, with the
	// wrapped-away prefix documented — never a panic or a phantom gap.
	for _, seq := range []int64{-1, -100} {
		got := j.Since(seq)
		if len(got) != 4 || got[0].Seq != 3 {
			t.Fatalf("Since(%d) = %+v, want the 4-event tail", seq, got)
		}
		d := j.DocSince(seq)
		if err := d.Validate(); err != nil {
			t.Fatalf("DocSince(%d) invalid: %v", seq, err)
		}
		if d.Missing != 2 || len(d.Events) != 4 {
			t.Fatalf("DocSince(%d): missing %d events %d, want 2/4", seq, d.Missing, len(d.Events))
		}
	}

	// Cursors at or beyond the head are a quiet tail, not an error: no
	// events, no invented gap.
	for _, seq := range []int64{6, 7, 1 << 40} {
		if got := j.Since(seq); len(got) != 0 {
			t.Fatalf("Since(%d) = %+v, want empty", seq, got)
		}
		d := j.DocSince(seq)
		if len(d.Events) != 0 || d.Missing != 0 {
			t.Fatalf("DocSince(%d): missing %d events %d, want 0/0", seq, d.Missing, len(d.Events))
		}
	}

	// A wrapped ring answering a stale in-gap cursor documents exactly
	// the overwritten span of sequence numbers.
	d := j.DocSince(1)
	if d.Missing != 1 || len(d.Events) != 4 {
		t.Fatalf("DocSince(1): missing %d events %d, want 1/4", d.Missing, len(d.Events))
	}
	if d.Dropped != 2 {
		t.Fatalf("DocSince(1): dropped %d, want 2", d.Dropped)
	}
	// An in-window cursor reports no loss even though the ring dropped
	// earlier events: Missing is relative to the cursor, Dropped to the
	// run.
	if d := j.DocSince(4); d.Missing != 0 || len(d.Events) != 2 || d.Dropped != 2 {
		t.Fatalf("DocSince(4): missing %d events %d dropped %d, want 0/2/2", d.Missing, len(d.Events), d.Dropped)
	}

	// Nil journals serve every cursor as a valid empty document.
	var nj *Journal
	for _, seq := range []int64{-1, 0, 9} {
		d := nj.DocSince(seq)
		if d == nil || d.Validate() != nil || d.Missing != 0 || len(d.Events) != 0 {
			t.Fatalf("nil DocSince(%d) must be a valid empty doc", seq)
		}
	}
}

func TestMissingSince(t *testing.T) {
	cases := []struct{ since, last, got, want int64 }{
		{0, 0, 0, 0},     // empty journal
		{0, 6, 4, 2},     // wrapped: asked for 6, ring held 4
		{4, 6, 2, 0},     // in-window cursor
		{6, 6, 0, 0},     // cursor at head
		{9, 6, 0, 0},     // cursor beyond head
		{-5, 6, 4, 2},    // negative clamps to 0
		{2, 6, 4, 0},     // exactly the retained window
		{0, 100, 0, 100}, // everything gone
	}
	for _, c := range cases {
		if got := missingSince(c.since, c.last, c.got); got != c.want {
			t.Errorf("missingSince(%d, %d, %d) = %d, want %d", c.since, c.last, c.got, got, c.want)
		}
	}
}

// TestJournalDrainTo pins the serial merge's drain primitive: events
// move in order, get re-stamped by the destination, the returned
// cursor resumes cleanly, wrapped-away events are skipped, and a quiet
// drain allocates nothing.
func TestJournalDrainTo(t *testing.T) {
	src := NewJournal(4)
	dst := NewJournal(16)
	for i := 0; i < 3; i++ {
		src.Append(Event{T: float64(i), Type: EventHarvest})
	}
	cur := src.DrainTo(dst, 0)
	if cur != 3 || dst.LastSeq() != 3 {
		t.Fatalf("first drain: cursor %d dst seq %d, want 3/3", cur, dst.LastSeq())
	}

	// Incremental drains move only the new tail.
	src.Append(Event{T: 3, Type: EventRevert})
	cur = src.DrainTo(dst, cur)
	if cur != 4 || dst.LastSeq() != 4 {
		t.Fatalf("incremental drain: cursor %d dst seq %d, want 4/4", cur, dst.LastSeq())
	}
	got := dst.Since(0)
	for i, ev := range got {
		if ev.Seq != int64(i+1) || ev.T != float64(i) {
			t.Fatalf("drained event %d = %+v, want seq %d t %d", i, ev, i+1, i)
		}
	}

	// A stale cursor against a wrapped ring drains only what the ring
	// still retains — same clamping as Since.
	for i := 4; i < 8; i++ {
		src.Append(Event{T: float64(i), Type: EventHarvest})
	}
	dst2 := NewJournal(16)
	if cur := src.DrainTo(dst2, 0); cur != 8 {
		t.Fatalf("wrapped drain cursor = %d, want 8", cur)
	}
	if tail := dst2.Since(0); len(tail) != 4 || tail[0].T != 4 {
		t.Fatalf("wrapped drain moved %+v, want the 4-event tail from t=4", tail)
	}

	// Cursor at (or past) the head: nothing moves, nothing allocates —
	// this is every quiet interval of an instrumented run.
	if n := testing.AllocsPerRun(100, func() { src.DrainTo(dst, 8) }); n != 0 {
		t.Fatalf("quiet DrainTo allocates %.0f objects per call, want 0", n)
	}

	// Nil source passes the cursor through.
	var nj *Journal
	if cur := nj.DrainTo(dst, 7); cur != 7 {
		t.Fatalf("nil DrainTo cursor = %d, want 7", cur)
	}
}
