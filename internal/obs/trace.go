package obs

import (
	"fmt"
	"math"
	"sync"
)

// TraceSchema tags the JSON trace document; bump on breaking change.
const TraceSchema = "sturgeon/trace/v1"

// Span kinds of the causal decision trail. One span per decision site;
// parent links thread a cap change end to end (coordinator epoch →
// cap grant → governor adjust / search → actuation). DESIGN.md §16
// documents each kind's fields.
const (
	// SpanCoordEpoch is a coordinator arbitration epoch closing
	// (Epoch: the arbitration epoch; Value: pool watts after).
	SpanCoordEpoch = "coord_epoch"
	// SpanCapGrant is one cap change landing on a node (child of the
	// epoch span; Value: the new cap in watts).
	SpanCapGrant = "cap_grant"
	// SpanGovernorAdjust is a model-free governor frequency move
	// (Reason mirrors EventGovernorAdjust).
	SpanGovernorAdjust = "governor_adjust"
	// SpanSearch is an Algorithm 1 predictor re-search (Reason mirrors
	// EventSearch; Value: candidates scored).
	SpanSearch = "search"
	// SpanHarvest is an Algorithm 2 harvest/shed/revert actuation
	// (Reason: the resource moved; Value: the amount).
	SpanHarvest = "harvest"
	// SpanPlacementSolve is one migration-planner epoch (Epoch: the
	// placement epoch; Value: moves applied).
	SpanPlacementSolve = "placement_solve"
	// SpanMigration is one applied BE migration (child of the solve
	// span; Node: the source; Value: predicted gain in units/s).
	SpanMigration = "migration"
	// SpanEviction and SpanReadmission are failure-detector rotation
	// changes.
	SpanEviction    = "eviction"
	SpanReadmission = "readmission"
	// SpanDegraded covers a node's autonomous degraded-mode episode:
	// Start is the missed renewal that began the cap ratchet, End the
	// rejoin grant that restored coordinated operation (Value: the floor
	// the ratchet descended toward).
	SpanDegraded = "degraded"
)

// Span is one entry of the causal trace. Trace groups a causal chain,
// ID identifies the span, Parent links to the causing span (empty for
// roots). All ids are 16-hex-digit strings derived deterministically
// from (run seed, kind, node, start time, per-site ordinal) — never
// random — so traces are byte-identical across engines and stepping
// parallelism. Start/End are simulated seconds.
type Span struct {
	Seq    int64   `json:"seq"`
	Trace  string  `json:"trace"`
	ID     string  `json:"id"`
	Parent string  `json:"parent,omitempty"`
	Kind   string  `json:"kind"`
	Node   string  `json:"node,omitempty"`
	Reason string  `json:"reason,omitempty"`
	Epoch  int     `json:"epoch,omitempty"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Value  float64 `json:"value,omitempty"`
}

// SpanRef names an appended span for parent linking. The zero value
// means "no span" (roots, or emission through a nil tracer).
type SpanRef struct {
	Trace uint64
	ID    uint64
}

// Valid reports whether the ref names a real span.
func (r SpanRef) Valid() bool { return r.ID != 0 }

// DefaultTraceCap is the ring capacity NewTracer uses for cap <= 0.
const DefaultTraceCap = 16384

// Tracer is a bounded ring of spans with monotonically increasing
// sequence numbers, mirroring Journal's drop-oldest discipline. It also
// owns the deterministic id derivation: a per-(kind,node) ordinal
// counter disambiguates repeated spans at the same simulated second.
// All methods are nil-safe.
type Tracer struct {
	mu      sync.Mutex
	seed    int64
	buf     []Span
	start   int // ring index of the oldest retained span
	n       int // retained count
	seq     int64
	dropped int64
	sites   map[siteKey]uint64
}

type siteKey struct{ kind, node string }

// NewTracer builds a tracer retaining up to cap spans, deriving span
// ids salted with the run seed.
func NewTracer(seed int64, cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Tracer{seed: seed, buf: make([]Span, cap), sites: make(map[siteKey]uint64)}
}

// Seed returns the id-derivation seed (0 through nil).
func (t *Tracer) Seed() int64 {
	if t == nil {
		return 0
	}
	return t.seed
}

// FNV-1a parameters (hash/fnv), inlined so id derivation runs on the
// stepping hot path without the two heap allocations fnv.New64a costs.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// deriveID hashes (seed, kind, node, start bits, ordinal, salt) with
// FNV-1a; the salt separates span-id and trace-id streams. Zero results
// are remapped so SpanRef{ID: 0} stays the "no span" sentinel. The byte
// stream matches the original hash/fnv formulation (little-endian
// integers, NUL+salt between kind and node), so derived ids are stable
// across the inlining.
func deriveID(seed int64, kind, node string, start float64, ordinal uint64, salt byte) uint64 {
	h := fnvU64(fnvOffset64, uint64(seed))
	h = fnvString(h, kind)
	h = (h ^ 0) * fnvPrime64
	h = (h ^ uint64(salt)) * fnvPrime64
	h = fnvString(h, node)
	h = fnvU64(h, math.Float64bits(start))
	h = fnvU64(h, ordinal)
	if h == 0 {
		h = 1
	}
	return h
}

const hexDigits = "0123456789abcdef"

// hexID formats v as 16 lowercase hex digits (fmt.Sprintf("%016x", v)
// without fmt's per-call allocations).
func hexID(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Append derives ids for sp, stamps the next sequence number and stores
// the span, returning its ref. A valid parent chains sp into the
// parent's trace; otherwise sp roots a fresh trace. Nil tracers return
// the zero ref.
func (t *Tracer) Append(sp Span, parent SpanRef) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := siteKey{kind: sp.Kind, node: sp.Node}
	ord := t.sites[k]
	t.sites[k] = ord + 1
	id := deriveID(t.seed, sp.Kind, sp.Node, sp.Start, ord, 0x5)
	var trace uint64
	if parent.Valid() {
		trace = parent.Trace
		sp.Parent = hexID(parent.ID)
	} else {
		trace = deriveID(t.seed, sp.Kind, sp.Node, sp.Start, ord, 0xA)
		sp.Parent = ""
	}
	sp.Trace = hexID(trace)
	sp.ID = hexID(id)
	t.append(sp)
	return SpanRef{Trace: trace, ID: id}
}

// Adopt re-stamps an already-derived span (from a per-node staging
// tracer) with this tracer's next sequence number and stores it. The
// cluster's serial merge drains staging tracers in node-index order
// through Adopt, which is what keeps fleet span sequence numbers
// independent of the stepping worker count.
func (t *Tracer) Adopt(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.append(sp)
}

// append stores sp under t.mu, assigning the next seq.
func (t *Tracer) append(sp Span) {
	t.seq++
	sp.Seq = t.seq
	if t.n == len(t.buf) {
		t.buf[t.start] = sp
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
	} else {
		t.buf[(t.start+t.n)%len(t.buf)] = sp
		t.n++
	}
}

// DrainTo adopts every retained span with Seq > seq into dst (which
// re-stamps sequence numbers, keeping the derived ids) and returns
// this tracer's newest sequence — the caller's next drain cursor.
// Journal.DrainTo's allocation-free contract applies: the contiguous
// sequence numbers index straight into the ring, so a drain costs
// exactly the spans moved.
func (t *Tracer) DrainTo(dst *Tracer, seq int64) int64 {
	if t == nil {
		return seq
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	first := t.seq - int64(t.n) // seq before the oldest retained span
	if seq < first {
		seq = first
	}
	for s := seq + 1; s <= t.seq; s++ {
		dst.Adopt(t.buf[(t.start+int(s-first-1))%len(t.buf)])
	}
	return t.seq
}

// Since returns the retained spans with Seq > seq, oldest first.
func (t *Tracer) Since(seq int64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for i := 0; i < t.n; i++ {
		sp := t.buf[(t.start+i)%len(t.buf)]
		if sp.Seq > seq {
			out = append(out, sp)
		}
	}
	return out
}

// LastSeq returns the newest assigned sequence number.
func (t *Tracer) LastSeq() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many spans the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TraceDoc is the persisted trace ("sturgeon/trace/v1"): the retained
// span tail, the count the ring dropped before it, and — for
// since-cursor reads — how many requested spans had already been
// overwritten (see Tracer.DocSince).
type TraceDoc struct {
	Schema  string `json:"schema"`
	Dropped int64  `json:"dropped"`
	Missing int64  `json:"missing,omitempty"`
	Spans   []Span `json:"spans"`
}

func validHexID(s string) bool {
	if len(s) != 16 {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// Validate implements jsonio.Validator.
func (d *TraceDoc) Validate() error {
	if d.Schema != TraceSchema {
		return fmt.Errorf("obs: trace schema %q, want %q", d.Schema, TraceSchema)
	}
	if d.Dropped < 0 || d.Missing < 0 {
		return fmt.Errorf("obs: negative dropped/missing count (%d/%d)", d.Dropped, d.Missing)
	}
	var last int64
	for i, sp := range d.Spans {
		switch {
		case sp.Kind == "":
			return fmt.Errorf("obs: span %d has empty kind", i)
		case sp.Seq <= last:
			return fmt.Errorf("obs: span %d seq %d not increasing (after %d)", i, sp.Seq, last)
		case !validHexID(sp.ID):
			return fmt.Errorf("obs: span %d id %q not 16 hex digits", i, sp.ID)
		case !validHexID(sp.Trace):
			return fmt.Errorf("obs: span %d trace %q not 16 hex digits", i, sp.Trace)
		case sp.Parent != "" && !validHexID(sp.Parent):
			return fmt.Errorf("obs: span %d parent %q not 16 hex digits", i, sp.Parent)
		case sp.Parent == sp.ID:
			return fmt.Errorf("obs: span %d is its own parent", i)
		case math.IsNaN(sp.Start) || math.IsInf(sp.Start, 0) || sp.Start < 0:
			return fmt.Errorf("obs: span %d carries invalid start %v", i, sp.Start)
		case math.IsNaN(sp.End) || math.IsInf(sp.End, 0) || sp.End < sp.Start:
			return fmt.Errorf("obs: span %d carries invalid end %v (start %v)", i, sp.End, sp.Start)
		case math.IsNaN(sp.Value) || math.IsInf(sp.Value, 0):
			return fmt.Errorf("obs: span %d carries non-finite value", i)
		}
		last = sp.Seq
	}
	return nil
}

// Doc snapshots the tracer as the persistable trace document. A nil
// tracer yields an empty (but valid) document.
func (t *Tracer) Doc() *TraceDoc {
	return &TraceDoc{
		Schema:  TraceSchema,
		Dropped: t.Dropped(),
		Spans:   t.Since(0),
	}
}

// DocSince snapshots the spans after seq. Missing counts spans the
// caller asked for that the ring had already overwritten (the gap
// between seq and the oldest retained span), so clients can tell a
// quiet tracer from a wrapped one.
func (t *Tracer) DocSince(seq int64) *TraceDoc {
	d := &TraceDoc{Schema: TraceSchema, Dropped: t.Dropped()}
	if t == nil {
		return d
	}
	d.Spans = t.Since(seq)
	d.Missing = missingSince(seq, t.LastSeq(), int64(len(d.Spans)))
	return d
}

// missingSince computes how many sequence numbers in (since, last] fell
// outside the returned window of got entries. Sequence numbers are
// contiguous, so the gap is arithmetic.
func missingSince(since, last, got int64) int64 {
	if since < 0 {
		since = 0
	}
	want := last - since
	if want < 0 {
		want = 0
	}
	if m := want - got; m > 0 {
		return m
	}
	return 0
}
