package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// TimelineSchema tags the JSON timeline document; bump on breaking
// change.
const TimelineSchema = "sturgeon/timeline/v1"

// Rollup resolutions (seconds) every series carries beyond the raw
// per-interval ring.
var timelineRollups = [...]int{10, 60}

// DefaultRawCap bounds the raw per-interval ring per series;
// DefaultBinCap bounds each rollup ring. At 60 s resolution the default
// retains a full simulated day.
const (
	DefaultRawCap = 4096
	DefaultBinCap = 1536
)

// Point is one raw sample (simulated seconds, value).
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Bin is one rollup bucket covering (T0, T0+res]: min/max/sum/count of
// the raw samples that fell in it.
type Bin struct {
	T0    float64 `json:"t0"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
}

// rollup accumulates one resolution tier: sealed bins in a bounded
// ring plus the currently-open bin.
type rollup struct {
	resS    int
	bins    []Bin
	start   int
	n       int
	dropped int64
	cur     Bin
	curSet  bool
}

func (r *rollup) observe(t, v float64) {
	// Bucket index for half-open coverage (t0, t0+res]: integral t on a
	// res boundary seals into the bin ending there.
	b := math.Ceil(t/float64(r.resS)) - 1
	if b < 0 {
		b = 0
	}
	t0 := b * float64(r.resS)
	if r.curSet && t0 != r.cur.T0 {
		r.seal()
	}
	if !r.curSet {
		r.cur = Bin{T0: t0, Min: v, Max: v}
		r.curSet = true
	}
	if v < r.cur.Min {
		r.cur.Min = v
	}
	if v > r.cur.Max {
		r.cur.Max = v
	}
	r.cur.Sum += v
	r.cur.Count++
}

func (r *rollup) seal() {
	if !r.curSet {
		return
	}
	if r.n == len(r.bins) {
		r.bins[r.start] = r.cur
		r.start = (r.start + 1) % len(r.bins)
		r.dropped++
	} else {
		r.bins[(r.start+r.n)%len(r.bins)] = r.cur
		r.n++
	}
	r.curSet = false
}

// snapshot returns sealed bins oldest-first plus the open bin.
func (r *rollup) snapshot() []Bin {
	out := make([]Bin, 0, r.n+1)
	for i := 0; i < r.n; i++ {
		out = append(out, r.bins[(r.start+i)%len(r.bins)])
	}
	if r.curSet {
		out = append(out, r.cur)
	}
	return out
}

func (r *rollup) reset() {
	r.start, r.n, r.dropped, r.curSet = 0, 0, 0, false
}

// TSeries is one recorded time series: a bounded raw ring plus 10s/60s
// min/max/sum/count rollups. Observations must arrive in simulated-time
// order; a sample at t <= the previous one resets the series, which is
// how a sink shared across several runs (cmd/repro -exp all) keeps the
// exported timeline describing the last run. All methods are nil-safe.
type TSeries struct {
	mu      sync.Mutex
	name    string
	raw     []Point
	start   int
	n       int
	dropped int64
	lastT   float64
	seen    bool
	tiers   []rollup
}

func newTSeries(name string, rawCap int) *TSeries {
	if rawCap <= 0 {
		rawCap = DefaultRawCap
	}
	s := &TSeries{name: name, raw: make([]Point, rawCap)}
	s.tiers = make([]rollup, len(timelineRollups))
	for i, res := range timelineRollups {
		s.tiers[i] = rollup{resS: res, bins: make([]Bin, DefaultBinCap)}
	}
	return s
}

// Observe records one sample. Non-finite values are dropped; a
// non-advancing timestamp restarts the series (new run).
func (s *TSeries) Observe(t, v float64) {
	if s == nil || math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen && t <= s.lastT {
		s.start, s.n, s.dropped = 0, 0, 0
		for i := range s.tiers {
			s.tiers[i].reset()
		}
	}
	s.lastT, s.seen = t, true
	if s.n == len(s.raw) {
		s.raw[s.start] = Point{T: t, V: v}
		s.start = (s.start + 1) % len(s.raw)
		s.dropped++
	} else {
		s.raw[(s.start+s.n)%len(s.raw)] = Point{T: t, V: v}
		s.n++
	}
	for i := range s.tiers {
		s.tiers[i].observe(t, v)
	}
}

// Recorder registers and feeds named time series. Series handles are
// resolved once (like metric handles) and fed from the cluster's serial
// merge, so recording needs no per-sample locking beyond the series
// mutex. All methods are nil-safe.
type Recorder struct {
	mu     sync.Mutex
	rawCap int
	series map[string]*TSeries
}

// NewRecorder builds a recorder whose series retain rawCap raw samples
// (<= 0 selects DefaultRawCap).
func NewRecorder(rawCap int) *Recorder {
	return &Recorder{rawCap: rawCap, series: make(map[string]*TSeries)}
}

// Series resolves (registering on first use) the named series. A nil
// recorder returns nil, and a nil *TSeries no-ops on Observe, so
// callers resolve and feed unconditionally.
func (r *Recorder) Series(name string) *TSeries {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = newTSeries(name, r.rawCap)
		r.series[name] = s
	}
	return s
}

// SeriesDoc is one exported series: raw tail plus every rollup tier.
type SeriesDoc struct {
	Name    string    `json:"name"`
	Dropped int64     `json:"dropped"`
	Raw     []Point   `json:"raw"`
	Rollups []BinsDoc `json:"rollups"`
}

// BinsDoc is one rollup tier of a series.
type BinsDoc struct {
	ResS    int   `json:"res_s"`
	Dropped int64 `json:"dropped"`
	Bins    []Bin `json:"bins"`
}

// TimelineDoc is the persisted timeline ("sturgeon/timeline/v1"):
// every recorded series, sorted by name.
type TimelineDoc struct {
	Schema string      `json:"schema"`
	Series []SeriesDoc `json:"series"`
}

// Validate implements jsonio.Validator.
func (d *TimelineDoc) Validate() error {
	if d.Schema != TimelineSchema {
		return fmt.Errorf("obs: timeline schema %q, want %q", d.Schema, TimelineSchema)
	}
	prevName := ""
	for i, s := range d.Series {
		if s.Name == "" {
			return fmt.Errorf("obs: series %d has empty name", i)
		}
		if s.Name <= prevName {
			return fmt.Errorf("obs: series %q out of order (after %q)", s.Name, prevName)
		}
		prevName = s.Name
		if s.Dropped < 0 {
			return fmt.Errorf("obs: series %q has negative dropped count", s.Name)
		}
		lastT := math.Inf(-1)
		for j, p := range s.Raw {
			if math.IsNaN(p.T) || math.IsInf(p.T, 0) || math.IsNaN(p.V) || math.IsInf(p.V, 0) {
				return fmt.Errorf("obs: series %q raw point %d not finite", s.Name, j)
			}
			if p.T <= lastT {
				return fmt.Errorf("obs: series %q raw point %d time %v not increasing", s.Name, j, p.T)
			}
			lastT = p.T
		}
		prevRes := 0
		for _, r := range s.Rollups {
			if r.ResS <= prevRes {
				return fmt.Errorf("obs: series %q rollup resolution %ds not increasing", s.Name, r.ResS)
			}
			prevRes = r.ResS
			if r.Dropped < 0 {
				return fmt.Errorf("obs: series %q rollup %ds has negative dropped count", s.Name, r.ResS)
			}
			lastT0 := math.Inf(-1)
			for j, b := range r.Bins {
				switch {
				case math.IsNaN(b.T0) || math.IsInf(b.T0, 0) || b.T0 < 0:
					return fmt.Errorf("obs: series %q rollup %ds bin %d has invalid t0 %v", s.Name, r.ResS, j, b.T0)
				case b.T0 <= lastT0:
					return fmt.Errorf("obs: series %q rollup %ds bin %d t0 %v not increasing", s.Name, r.ResS, j, b.T0)
				case b.T0 != math.Trunc(b.T0/float64(r.ResS))*float64(r.ResS):
					return fmt.Errorf("obs: series %q rollup %ds bin %d t0 %v misaligned", s.Name, r.ResS, j, b.T0)
				case b.Count <= 0:
					return fmt.Errorf("obs: series %q rollup %ds bin %d has count %d", s.Name, r.ResS, j, b.Count)
				case math.IsNaN(b.Min) || math.IsInf(b.Min, 0) || math.IsNaN(b.Max) || math.IsInf(b.Max, 0) || math.IsNaN(b.Sum) || math.IsInf(b.Sum, 0):
					return fmt.Errorf("obs: series %q rollup %ds bin %d not finite", s.Name, r.ResS, j)
				case b.Min > b.Max:
					return fmt.Errorf("obs: series %q rollup %ds bin %d min %v > max %v", s.Name, r.ResS, j, b.Min, b.Max)
				}
				// Mean must sit inside [min, max] modulo float slop.
				mean := b.Sum / float64(b.Count)
				slop := 1e-9 * (1 + math.Abs(b.Sum))
				if mean < b.Min-slop || mean > b.Max+slop {
					return fmt.Errorf("obs: series %q rollup %ds bin %d mean %v outside [%v, %v]", s.Name, r.ResS, j, mean, b.Min, b.Max)
				}
				lastT0 = b.T0
			}
		}
	}
	return nil
}

// Doc snapshots the recorder as the persistable timeline document,
// series sorted by name. A nil recorder yields an empty (but valid)
// document.
func (r *Recorder) Doc() *TimelineDoc {
	d := &TimelineDoc{Schema: TimelineSchema}
	if r == nil {
		return d
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.series))
	for name := range r.series {
		names = append(names, name)
	}
	sort.Strings(names)
	series := make([]*TSeries, len(names))
	for i, name := range names {
		series[i] = r.series[name]
	}
	r.mu.Unlock()
	for i, s := range series {
		s.mu.Lock()
		sd := SeriesDoc{Name: names[i], Dropped: s.dropped}
		sd.Raw = make([]Point, 0, s.n)
		for j := 0; j < s.n; j++ {
			sd.Raw = append(sd.Raw, s.raw[(s.start+j)%len(s.raw)])
		}
		for t := range s.tiers {
			tier := &s.tiers[t]
			sd.Rollups = append(sd.Rollups, BinsDoc{
				ResS:    tier.resS,
				Dropped: tier.dropped,
				Bins:    tier.snapshot(),
			})
		}
		s.mu.Unlock()
		d.Series = append(d.Series, sd)
	}
	return d
}
