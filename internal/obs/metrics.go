// Package obs is the decision-trail observability layer: a low-overhead
// metrics registry (counters, gauges, fixed-bucket histograms) plus a
// structured decision-event journal, both designed around two hard
// constraints of this codebase:
//
//   - Nil safety. Every type is a no-op through a nil receiver, so hot
//     paths (node stepping, controller decisions) instrument
//     unconditionally — an uninstrumented run pays one nil check, not a
//     branch forest. BenchmarkInstrumentedStep pins the cost of the live
//     path below 5 % of an uninstrumented step.
//   - Determinism. Nothing here consults a clock or a random source.
//     Events carry simulated time and a per-run sequence number assigned
//     at append; in the parallel fleet stepping each node journals into
//     its own staging ring and the cluster drains them serially in
//     node-index order, so two same-seed runs dump byte-identical
//     journals (see DESIGN.md §11).
//
// Exposition is dual: Prometheus text format (WritePrometheus, served by
// cmd/sturgeond at GET /metrics) and a schema-validated JSON document
// (Doc, schema "sturgeon/metrics/v1") for fixtures and tooling.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricsSchema tags the JSON metrics document; bump on breaking change.
const MetricsSchema = "sturgeon/metrics/v1"

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 through nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value float metric, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 through nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: cumulative counts over sorted
// upper bounds plus an implicit +Inf bucket, with an atomically
// accumulated sum. Buckets are fixed at registration so concurrent
// Observe never allocates or locks.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	n       atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed (0 through nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the accumulated sample sum (0 through nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram)
// takes a mutex; the returned handles update lock-free, so hot paths
// resolve their metrics once at wiring time and never look them up
// again. A nil *Registry hands back nil handles, which no-op.
//
// Names follow Prometheus exposition syntax and may carry a label block:
// "fleet_node_cap_watts{node=\"node-003\"}". The registry treats the
// full string as the identity; WritePrometheus groups names sharing a
// family (the part before '{') under one # TYPE header.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	nameErr  error // first malformed-name rejection, sticky
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (registering on first use) the named counter, or nil
// through a nil registry, a malformed name (recorded in NameError) or a
// name already claimed by another kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil || name == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if !r.admit(name) || r.gauges[name] != nil || r.hists[name] != nil {
		return nil
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil
// through a nil registry, a malformed name or a cross-kind collision.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil || name == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if !r.admit(name) || r.counters[name] != nil || r.hists[name] != nil {
		return nil
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given bucket upper bounds (sorted, +Inf implicit). Re-registration
// returns the existing histogram regardless of the bounds passed; a nil
// registry, an empty bound list, a malformed name or a cross-kind
// collision yields nil.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil || name == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if !r.admit(name) || r.counters[name] != nil || r.gauges[name] != nil || len(bounds) == 0 {
		return nil
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
	r.hists[name] = h
	return h
}

// admit validates name under r.mu, recording the first rejection.
func (r *Registry) admit(name string) bool {
	if err := ValidateMetricName(name); err != nil {
		if r.nameErr == nil {
			r.nameErr = err
		}
		return false
	}
	return true
}

// NameError returns the first malformed-name registration the registry
// rejected (nil when every name so far was well-formed). Rejected
// registrations hand back nil handles, which no-op — this is how a
// misbehaving caller is surfaced without panicking a hot path.
func (r *Registry) NameError() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nameErr
}

// ValidateMetricName checks a registry name against the Prometheus
// exposition syntax the renderer assumes: a metric family
// ([a-zA-Z_:][a-zA-Z0-9_:]*) optionally followed by one {k="v",...}
// label block whose keys match [a-zA-Z_][a-zA-Z0-9_]* and whose values
// escape `\`, `"` and newline as \\, \" and \n.
func ValidateMetricName(name string) error {
	family, labels := splitName(name)
	if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
		return fmt.Errorf("obs: metric name %q: label block not terminated by '}'", name)
	}
	if !validFamily(family) {
		return fmt.Errorf("obs: metric name %q: family %q not [a-zA-Z_:][a-zA-Z0-9_:]*", name, family)
	}
	if labels == "" {
		if strings.ContainsAny(name, "{}") && name != family {
			return fmt.Errorf("obs: metric name %q: empty label block", name)
		}
		return nil
	}
	rest := labels
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("obs: metric name %q: label %q missing '='", name, rest)
		}
		key := rest[:eq]
		if !validLabelKey(key) {
			return fmt.Errorf("obs: metric name %q: label key %q not [a-zA-Z_][a-zA-Z0-9_]*", name, key)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("obs: metric name %q: label %q value not quoted", name, key)
		}
		end, err := scanLabelValue(rest[1:])
		if err != nil {
			return fmt.Errorf("obs: metric name %q: label %q: %v", name, key, err)
		}
		rest = rest[1+end+1:]
		if rest == "" {
			return nil
		}
		if rest[0] != ',' || len(rest) == 1 {
			return fmt.Errorf("obs: metric name %q: labels must be comma-separated pairs", name)
		}
		rest = rest[1:]
	}
}

// scanLabelValue scans an opened label value up to its closing quote,
// returning the index of that quote. Only \\, \" and \n escapes are
// admitted; raw newlines and unterminated values are rejected.
func scanLabelValue(s string) (int, error) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return i, nil
		case '\n':
			return 0, fmt.Errorf("raw newline in value (escape as \\n)")
		case '\\':
			if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != '"' && s[i+1] != 'n') {
				return 0, fmt.Errorf("invalid escape in value (only \\\\, \\\" and \\n)")
			}
			i++
		}
	}
	return 0, fmt.Errorf("unterminated value")
}

func validFamily(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// CounterPoint is one counter in the JSON metrics document.
type CounterPoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugePoint is one gauge in the JSON metrics document.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramPoint is one histogram in the JSON metrics document. Buckets
// are cumulative counts aligned with Bounds; an implicit +Inf bucket
// brings the last cumulative count to Count.
type HistogramPoint struct {
	Name    string    `json:"name"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Sum     float64   `json:"sum"`
	Count   int64     `json:"count"`
}

// MetricsDoc is the JSON exposition ("sturgeon/metrics/v1"): every
// metric in stable (sorted-name) order.
type MetricsDoc struct {
	Schema     string           `json:"schema"`
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Validate implements jsonio.Validator.
func (d *MetricsDoc) Validate() error {
	if d.Schema != MetricsSchema {
		return fmt.Errorf("obs: metrics schema %q, want %q", d.Schema, MetricsSchema)
	}
	for i, c := range d.Counters {
		if c.Name == "" {
			return fmt.Errorf("obs: counter %d has empty name", i)
		}
		if c.Value < 0 {
			return fmt.Errorf("obs: counter %s negative (%d)", c.Name, c.Value)
		}
		if i > 0 && d.Counters[i-1].Name >= c.Name {
			return fmt.Errorf("obs: counters not in strict name order at %s", c.Name)
		}
	}
	for i, g := range d.Gauges {
		if g.Name == "" {
			return fmt.Errorf("obs: gauge %d has empty name", i)
		}
		if math.IsNaN(g.Value) || math.IsInf(g.Value, 0) {
			return fmt.Errorf("obs: gauge %s carries non-finite value", g.Name)
		}
		if i > 0 && d.Gauges[i-1].Name >= g.Name {
			return fmt.Errorf("obs: gauges not in strict name order at %s", g.Name)
		}
	}
	for i, h := range d.Histograms {
		if h.Name == "" {
			return fmt.Errorf("obs: histogram %d has empty name", i)
		}
		if len(h.Buckets) != len(h.Bounds) {
			return fmt.Errorf("obs: histogram %s has %d buckets for %d bounds", h.Name, len(h.Buckets), len(h.Bounds))
		}
		var last int64
		for j, c := range h.Buckets {
			if c < last {
				return fmt.Errorf("obs: histogram %s bucket %d not cumulative", h.Name, j)
			}
			last = c
		}
		if last > h.Count {
			return fmt.Errorf("obs: histogram %s buckets exceed count", h.Name)
		}
		if math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
			return fmt.Errorf("obs: histogram %s carries non-finite sum", h.Name)
		}
		if i > 0 && d.Histograms[i-1].Name >= h.Name {
			return fmt.Errorf("obs: histograms not in strict name order at %s", h.Name)
		}
	}
	return nil
}

// Doc snapshots the registry as the JSON metrics document, iterating in
// sorted name order so two snapshots of identical state are identical
// bytes. Nil registries yield an empty (but valid) document.
func (r *Registry) Doc() *MetricsDoc {
	d := &MetricsDoc{Schema: MetricsSchema}
	if r == nil {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		d.Counters = append(d.Counters, CounterPoint{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		d.Gauges = append(d.Gauges, GaugePoint{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		hp := HistogramPoint{Name: name, Bounds: append([]float64(nil), h.bounds...)}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			hp.Buckets = append(hp.Buckets, cum)
		}
		hp.Count = h.Count()
		hp.Sum = h.Sum()
		d.Histograms = append(d.Histograms, hp)
	}
	return d
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// splitName separates a full metric name into its family and label
// block: "x{a=\"b\"}" -> ("x", "a=\"b\""); "x" -> ("x", "").
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): a # TYPE header per metric family, then one
// sample line per metric, in sorted name order. Histograms expand to the
// conventional _bucket{le=...}/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	doc := r.Doc()
	var b strings.Builder
	lastFamily := ""
	header := func(name, kind string) string {
		fam, _ := splitName(name)
		if fam == lastFamily {
			return fam
		}
		lastFamily = fam
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, kind)
		return fam
	}
	for _, c := range doc.Counters {
		header(c.Name, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range doc.Gauges {
		header(g.Name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range doc.Histograms {
		fam := header(h.Name, "histogram")
		_, labels := splitName(h.Name)
		sep := ""
		if labels != "" {
			sep = ","
		}
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, "%s_bucket{%s%sle=%q} %d\n", fam, labels, sep, formatFloat(bound), h.Buckets[i])
		}
		fmt.Fprintf(&b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", fam, labels, sep, h.Count)
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", fam, suffix, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", fam, suffix, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
