package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestLabeledEscapesValues(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `m{node="plain"}`},
		{`back\slash`, `m{node="back\\slash"}`},
		{`quo"te`, `m{node="quo\"te"}`},
		{"new\nline", `m{node="new\nline"}`},
		{"all\\three\"\n", `m{node="all\\three\"\n"}`},
	}
	for _, c := range cases {
		if got := Labeled("m", "node", c.in); got != c.want {
			t.Errorf("Labeled(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabeledNamesRegisterAndRender(t *testing.T) {
	// The full loop: a hostile label value goes through Labeled, registers
	// cleanly, and renders as a parseable Prometheus sample line.
	r := NewRegistry()
	name := Labeled("node_cap_watts", "node", "host\"0\\a\nb")
	g := r.Gauge(name)
	if g == nil {
		t.Fatalf("escaped name %q rejected: %v", name, r.NameError())
	}
	g.Set(98)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `node_cap_watts{node="host\"0\\a\nb"} 98`) {
		t.Errorf("escaped sample not rendered:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("raw newline leaked into exposition output:\n%q", out)
	}
	if err := r.NameError(); err != nil {
		t.Errorf("well-formed names recorded an error: %v", err)
	}
}

func TestRegistryRejectsMalformedNames(t *testing.T) {
	bad := []string{
		"1starts_with_digit",
		"has-dash",
		"has space",
		`unterminated{node="x"`,
		`empty_block{}`,
		`missing_eq{node}`,
		`unquoted{node=x}`,
		`unterminated_value{node="x}`,
		`bad_escape{node="\t"}`,
		"raw_newline{node=\"a\nb\"}",
		`bad_key{no-de="x"}`,
		`colon_key{no:de="x"}`,
		`trailing_comma{node="x",}`,
		`digit_key{0de="x"}`,
	}
	for _, name := range bad {
		r := NewRegistry()
		if r.Counter(name) != nil {
			t.Errorf("malformed counter name %q accepted", name)
			continue
		}
		err := r.NameError()
		if err == nil {
			t.Errorf("rejection of %q not recorded in NameError", name)
		} else if !strings.Contains(err.Error(), strconv.Quote(name)) {
			t.Errorf("NameError %q does not identify the offending name %q", err, name)
		}
		// All three kinds share the validator.
		if NewRegistry().Gauge(name) != nil || NewRegistry().Histogram(name, 1) != nil {
			t.Errorf("malformed name %q accepted by gauge/histogram", name)
		}
	}
}

func TestRegistryAcceptsWellFormedNames(t *testing.T) {
	good := []string{
		"simple_total",
		"ns:subsystem:metric",
		"_leading_underscore",
		`one_label{node="node-003"}`,
		`two_labels{a="x",b="y"}`,
		`escaped{node="a\\b\"c\nd"}`,
		`empty_value{node=""}`,
	}
	r := NewRegistry()
	for _, name := range good {
		if r.Counter(name) == nil {
			t.Errorf("well-formed name %q rejected: %v", name, r.NameError())
		}
	}
	if err := r.NameError(); err != nil {
		t.Errorf("well-formed names recorded an error: %v", err)
	}
}

func TestNameErrorSticky(t *testing.T) {
	r := NewRegistry()
	r.Counter("bad-first")
	r.Counter(`also{bad`)
	err := r.NameError()
	if err == nil || !strings.Contains(err.Error(), "bad-first") {
		t.Fatalf("NameError must keep the first rejection, got %v", err)
	}
	// Malformed registrations must not claim the name: the handles no-op.
	r.Counter("bad-first").Inc()
	if len(r.Doc().Counters) != 0 {
		t.Fatal("rejected name leaked into the registry")
	}
	var nilReg *Registry
	if nilReg.NameError() != nil {
		t.Fatal("nil registry must report no name error")
	}
}
