package obs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"sturgeon/internal/jsonio"
)

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if ref := tr.Append(Span{Kind: SpanSearch}, SpanRef{}); ref.Valid() {
		t.Fatal("nil tracer must return the zero ref")
	}
	tr.Adopt(Span{Kind: SpanSearch})
	if tr.Since(0) != nil || tr.LastSeq() != 0 || tr.Dropped() != 0 || tr.Seed() != 0 {
		t.Fatal("nil tracer must read as empty")
	}
	if d := tr.Doc(); d == nil || d.Validate() != nil {
		t.Fatal("nil tracer must yield a valid empty doc")
	}
	if d := tr.DocSince(5); d == nil || d.Validate() != nil || d.Missing != 0 {
		t.Fatal("nil tracer DocSince must yield a valid empty doc")
	}
}

func TestTracerRingAndDocSince(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 6; i++ {
		tr.Append(Span{Kind: SpanSearch, Start: float64(i), End: float64(i)}, SpanRef{})
	}
	if tr.LastSeq() != 6 || tr.Dropped() != 2 {
		t.Fatalf("LastSeq/Dropped = %d/%d, want 6/2", tr.LastSeq(), tr.Dropped())
	}
	all := tr.Since(0)
	if len(all) != 4 || all[0].Seq != 3 || all[3].Seq != 6 {
		t.Fatalf("ring tail wrong: %+v", all)
	}

	// A stale cursor (seq 0) asks for 6 spans; the ring retains 4, so the
	// response must document the 2-span gap.
	d := tr.DocSince(0)
	if err := d.Validate(); err != nil {
		t.Fatalf("doc invalid: %v", err)
	}
	if d.Missing != 2 || len(d.Spans) != 4 {
		t.Fatalf("DocSince(0): missing %d spans %d, want 2/4", d.Missing, len(d.Spans))
	}
	// A cursor inside the retained window sees no gap.
	if d := tr.DocSince(4); d.Missing != 0 || len(d.Spans) != 2 {
		t.Fatalf("DocSince(4): missing %d spans %d, want 0/2", d.Missing, len(d.Spans))
	}
	// Cursors at or beyond the head return empty with no phantom gap —
	// same contract as the journal's since endpoint.
	for _, seq := range []int64{6, 7, 100} {
		if d := tr.DocSince(seq); d.Missing != 0 || len(d.Spans) != 0 {
			t.Fatalf("DocSince(%d): missing %d spans %d, want 0/0", seq, d.Missing, len(d.Spans))
		}
	}
	// Negative cursors clamp to 0 rather than inventing extra gap.
	if d := tr.DocSince(-3); d.Missing != 2 || len(d.Spans) != 4 {
		t.Fatalf("DocSince(-3): missing %d spans %d, want 2/4", d.Missing, len(d.Spans))
	}
}

func TestTracerAdoptKeepsDerivedIDs(t *testing.T) {
	staging := NewTracer(42, 8)
	ref := staging.Append(Span{Kind: SpanGovernorAdjust, Node: "node-002", Start: 3, End: 3}, SpanRef{})
	global := NewTracer(42, 8)
	global.Append(Span{Kind: SpanCoordEpoch, Start: 0, End: 0}, SpanRef{})
	for _, sp := range staging.Since(0) {
		global.Adopt(sp)
	}
	got := global.Since(0)
	if len(got) != 2 {
		t.Fatalf("expected 2 spans, got %d", len(got))
	}
	if got[1].ID != hexID(ref.ID) || got[1].Trace != hexID(ref.Trace) {
		t.Fatal("Adopt must keep the staging-derived ids")
	}
	if got[1].Seq != 2 {
		t.Fatalf("Adopt must re-stamp seq, got %d", got[1].Seq)
	}
}

func TestTraceDocValidateRejects(t *testing.T) {
	ok := Span{Seq: 1, Trace: hexID(7), ID: hexID(8), Kind: SpanSearch, Start: 1, End: 2}
	cases := map[string]TraceDoc{
		"bad schema":     {Schema: "nope"},
		"neg dropped":    {Schema: TraceSchema, Dropped: -1},
		"neg missing":    {Schema: TraceSchema, Missing: -1},
		"empty kind":     {Schema: TraceSchema, Spans: []Span{{Seq: 1, Trace: hexID(7), ID: hexID(8), Start: 1, End: 1}}},
		"seq repeat":     {Schema: TraceSchema, Spans: []Span{ok, ok}},
		"short id":       {Schema: TraceSchema, Spans: []Span{{Seq: 1, Trace: hexID(7), ID: "abc", Kind: SpanSearch, Start: 1, End: 1}}},
		"zero id":        {Schema: TraceSchema, Spans: []Span{{Seq: 1, Trace: hexID(7), ID: strings.Repeat("0", 16), Kind: SpanSearch, Start: 1, End: 1}}},
		"upper hex":      {Schema: TraceSchema, Spans: []Span{{Seq: 1, Trace: hexID(7), ID: "00000000000000AB", Kind: SpanSearch, Start: 1, End: 1}}},
		"bad parent":     {Schema: TraceSchema, Spans: []Span{{Seq: 1, Trace: hexID(7), ID: hexID(8), Parent: "zz", Kind: SpanSearch, Start: 1, End: 1}}},
		"self parent":    {Schema: TraceSchema, Spans: []Span{{Seq: 1, Trace: hexID(7), ID: hexID(8), Parent: hexID(8), Kind: SpanSearch, Start: 1, End: 1}}},
		"negative start": {Schema: TraceSchema, Spans: []Span{{Seq: 1, Trace: hexID(7), ID: hexID(8), Kind: SpanSearch, Start: -1, End: 1}}},
		"end < start":    {Schema: TraceSchema, Spans: []Span{{Seq: 1, Trace: hexID(7), ID: hexID(8), Kind: SpanSearch, Start: 2, End: 1}}},
	}
	for name, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: invalid doc accepted", name)
		}
	}
	good := TraceDoc{Schema: TraceSchema, Spans: []Span{ok,
		{Seq: 2, Trace: hexID(7), ID: hexID(9), Parent: hexID(8), Kind: SpanCapGrant, Node: "node-001", Start: 2, End: 2, Value: 90}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
}

func TestTraceDocRoundTrip(t *testing.T) {
	tr := NewTracer(9, 16)
	root := tr.Append(Span{Kind: SpanCoordEpoch, Start: 5, End: 5, Epoch: 1}, SpanRef{})
	tr.Append(Span{Kind: SpanCapGrant, Node: "node-000", Start: 5, End: 5, Epoch: 1, Value: 104}, root)
	data, err := jsonio.Marshal(tr.Doc())
	if err != nil {
		t.Fatal(err)
	}
	var back TraceDoc
	if err := jsonio.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 2 || back.Spans[1].Parent != back.Spans[0].ID {
		t.Fatalf("round trip lost the parent link: %+v", back.Spans)
	}
}

// TestDeriveIDMatchesStdlibFNV pins the inlined allocation-free FNV-1a
// in deriveID (and the manual hex in hexID) to the hash/fnv +
// fmt.Sprintf formulation it replaced: derived span ids are part of
// the byte-identity contract, so the inlining must be bit-exact.
func TestDeriveIDMatchesStdlibFNV(t *testing.T) {
	ref := func(seed int64, kind, node string, start float64, ordinal uint64, salt byte) uint64 {
		h := fnv.New64a()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(seed))
		h.Write(b[:])
		h.Write([]byte(kind))
		h.Write([]byte{0, salt})
		h.Write([]byte(node))
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(start))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], ordinal)
		h.Write(b[:])
		v := h.Sum64()
		if v == 0 {
			v = 1
		}
		return v
	}
	cases := []struct {
		seed    int64
		kind    string
		node    string
		start   float64
		ordinal uint64
		salt    byte
	}{
		{0, "", "", 0, 0, 0},
		{7, SpanSearch, "node-003", 42.5, 3, 0x5},
		{7, SpanSearch, "node-003", 42.5, 3, 0xA},
		{-1, SpanCoordEpoch, "", 1e9, 1 << 63, 0x5},
		{20260806, SpanPlacementSolve, "node-011", 300, 17, 0xA},
	}
	for _, c := range cases {
		got := deriveID(c.seed, c.kind, c.node, c.start, c.ordinal, c.salt)
		want := ref(c.seed, c.kind, c.node, c.start, c.ordinal, c.salt)
		if got != want {
			t.Errorf("deriveID(%+v) = %x, want %x", c, got, want)
		}
		if h, w := hexID(got), fmt.Sprintf("%016x", got); h != w {
			t.Errorf("hexID(%x) = %q, want %q", got, h, w)
		}
	}
}

// TestTracerDrainTo pins span draining: derived ids survive the move,
// the destination re-stamps sequence numbers, and quiet drains are
// allocation-free (the serial merge calls this every interval).
func TestTracerDrainTo(t *testing.T) {
	src := NewTracer(7, 8)
	dst := NewTracer(7, 16)
	ref := src.Append(Span{Kind: SpanCoordEpoch, Start: 10, End: 10, Epoch: 1}, SpanRef{})
	src.Append(Span{Kind: SpanCapGrant, Node: "node-000", Start: 10, End: 10}, ref)
	cur := src.DrainTo(dst, 0)
	if cur != 2 || dst.LastSeq() != 2 {
		t.Fatalf("drain: cursor %d dst seq %d, want 2/2", cur, dst.LastSeq())
	}
	got := dst.Since(0)
	if len(got) != 2 || got[1].Parent != got[0].ID || got[0].ID != hexID(ref.ID) {
		t.Fatalf("drained spans lost ids or parent links: %+v", got)
	}
	if n := testing.AllocsPerRun(100, func() { src.DrainTo(dst, cur) }); n != 0 {
		t.Fatalf("quiet DrainTo allocates %.0f objects per call, want 0", n)
	}
	var nt *Tracer
	if c := nt.DrainTo(dst, 5); c != 5 {
		t.Fatalf("nil DrainTo cursor = %d, want 5", c)
	}
}
