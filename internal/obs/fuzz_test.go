package obs

import (
	"testing"

	"sturgeon/internal/jsonio"
)

// FuzzTraceDecode hammers the trace document decoder: arbitrary bytes
// must either fail cleanly or yield a document that re-validates and
// round-trips — never panic, never accept a doc its own Validate
// rejects.
func FuzzTraceDecode(f *testing.F) {
	tr := NewTracer(3, 8)
	root := tr.Append(Span{Kind: SpanCoordEpoch, Start: 5, End: 5, Epoch: 1}, SpanRef{})
	tr.Append(Span{Kind: SpanCapGrant, Node: "node-001", Start: 5, End: 6, Epoch: 1, Value: 96}, root)
	if seed, err := jsonio.Marshal(tr.Doc()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"schema":"sturgeon/trace/v1","dropped":0,"spans":[]}`))
	f.Add([]byte(`{"schema":"sturgeon/trace/v1","spans":[{"seq":1,"trace":"00","id":"00","kind":"x","start":-1,"end":0}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var doc TraceDoc
		if err := jsonio.Unmarshal(data, &doc); err != nil {
			return
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("decoder admitted a doc Validate rejects: %v", err)
		}
		out, err := jsonio.Marshal(&doc)
		if err != nil {
			t.Fatalf("accepted doc failed to re-encode: %v", err)
		}
		var back TraceDoc
		if err := jsonio.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoded doc failed to decode: %v", err)
		}
	})
}

// FuzzTimelineDecode is the same contract for timeline documents, whose
// validator carries the most arithmetic (bin alignment, mean-in-range)
// and so the most edges to probe.
func FuzzTimelineDecode(f *testing.F) {
	rec := NewRecorder(8)
	s := rec.Series("fleet_be_ups")
	for i := 1; i <= 15; i++ {
		s.Observe(float64(i), float64(i%4))
	}
	if seed, err := jsonio.Marshal(rec.Doc()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"schema":"sturgeon/timeline/v1","series":[]}`))
	f.Add([]byte(`{"schema":"sturgeon/timeline/v1","series":[{"name":"x","raw":[{"t":1,"v":1}],"rollups":[{"res_s":10,"bins":[{"t0":3,"min":0,"max":0,"sum":9,"count":1}]}]}]}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var doc TimelineDoc
		if err := jsonio.Unmarshal(data, &doc); err != nil {
			return
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("decoder admitted a doc Validate rejects: %v", err)
		}
		out, err := jsonio.Marshal(&doc)
		if err != nil {
			t.Fatalf("accepted doc failed to re-encode: %v", err)
		}
		var back TimelineDoc
		if err := jsonio.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoded doc failed to decode: %v", err)
		}
	})
}
