package obs

import (
	"fmt"
	"math"
	"sync"
)

// EventsSchema tags the JSON events document; bump on breaking change.
const EventsSchema = "sturgeon/events/v1"

// Event types of the decision trail. The set is open — packages may
// journal additional types — but these are the taxonomy the runtime
// emits (DESIGN.md §11 documents each one's fields and meaning).
const (
	// EventSearch marks an Algorithm 1 predictor re-search
	// (Reason: "initial", "load_moved").
	EventSearch = "search_triggered"
	// EventHarvest marks an Algorithm 2 harvest or power shed
	// (Resource: cores/cache/power/parked; Amount: the granularity moved,
	// negative for pure BE throttles).
	EventHarvest = "harvest"
	// EventRevert marks an over-harvest give-back (Resource, Amount as
	// for EventHarvest).
	EventRevert = "revert"
	// EventGuardHold marks an interval the telemetry guard held the
	// configuration because both control signals were unusable.
	EventGuardHold = "guard_hold"
	// EventGovernorAdjust marks a model-free governor frequency move
	// (Reason: shed/ls_up/be_down/be_up/ls_harvest).
	EventGovernorAdjust = "governor_adjust"
	// EventCapGranted marks a coordinator cap change landing on a node
	// (Epoch: arbitration epoch; Value: the new cap in watts).
	EventCapGranted = "cap_granted"
	// EventStaleFreeze marks a node frozen by the coordinator's
	// staleness fallback (Epoch: the arbitration epoch).
	EventStaleFreeze = "stale_freeze"
	// EventLeaseExpired marks the coordinator reclaiming an expired cap
	// lease back into the pool (Epoch: the arbitration epoch; Value: the
	// watts reclaimed above the lease floor).
	EventLeaseExpired = "lease_expired"
	// EventDegradedEnter and EventDegradedExit bracket a node's
	// autonomous degraded mode: a missed lease renewal starts the local
	// cap ratchet toward the lease floor (Value: the cap the ratchet
	// starts from / the cap restored by the rejoin grant; Epoch: the
	// coordination epoch of the miss or rejoin).
	EventDegradedEnter = "degraded_enter"
	EventDegradedExit  = "degraded_exit"
	// EventNodeEvicted and EventNodeReadmitted mark failure-detector
	// rotation changes.
	EventNodeEvicted    = "node_evicted"
	EventNodeReadmitted = "node_readmitted"
	// EventRecoveryCompleted marks a coordinator standing back up from
	// durable state (Reason: the recovery path taken — "clean",
	// "no_snapshot", "torn_log", "corrupt_snapshot", "restore_rejected";
	// Epoch: the recovered arbitration epoch; Value: replayed reports).
	EventRecoveryCompleted = "recovery_completed"
	// EventResidual samples predictor drift: Value is observed minus
	// predicted for the Resource ("power" in watts; "latency" carries the
	// observed slack of a configuration the predictor deemed feasible).
	EventResidual = "residual"
	// EventMigration marks the placement engine moving a BE job off a
	// node (Node: the source; Reason: "starved"/"consolidate"; Amount:
	// the destination node index; Epoch: the placement epoch; Value:
	// the predicted steady-state throughput gain in units/s).
	EventMigration = "migration"
	// EventPlacementSolve marks one migration-planner epoch (Epoch: the
	// placement epoch; Amount: moves applied; Value: summed predicted
	// gain).
	EventPlacementSolve = "placement_solve"
)

// Event is one entry of the decision journal. T is simulated seconds
// (never wall clock — replays must be byte-identical), Seq the per-run
// sequence number assigned at append.
type Event struct {
	Seq  int64   `json:"seq"`
	T    float64 `json:"t"`
	Node string  `json:"node,omitempty"`
	Type string  `json:"type"`
	// Reason qualifies the type (search trigger, governor direction);
	// Resource names the harvested/measured resource.
	Reason   string `json:"reason,omitempty"`
	Resource string `json:"resource,omitempty"`
	// Amount is a discrete move size (cores, ways, frequency levels);
	// Epoch a coordination epoch; Value a continuous payload (watts,
	// residuals).
	Amount int     `json:"amount,omitempty"`
	Epoch  int     `json:"epoch,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// Journal is a bounded ring of events with monotonically increasing
// sequence numbers. Appends past capacity overwrite the oldest entries
// (counted in Dropped), so a long run keeps a recent decision tail at a
// fixed memory cost. All methods are nil-safe.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	start   int // ring index of the oldest retained event
	n       int // retained count
	seq     int64
	dropped int64
}

// DefaultJournalCap is the ring capacity NewJournal uses for cap <= 0.
const DefaultJournalCap = 16384

// NewJournal builds a journal retaining up to cap events.
func NewJournal(cap int) *Journal {
	if cap <= 0 {
		cap = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, cap)}
}

// Append stamps ev with the next sequence number and stores it,
// returning the assigned sequence (0 through a nil journal).
func (j *Journal) Append(ev Event) int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	ev.Seq = j.seq
	if j.n == len(j.buf) {
		j.buf[j.start] = ev
		j.start = (j.start + 1) % len(j.buf)
		j.dropped++
	} else {
		j.buf[(j.start+j.n)%len(j.buf)] = ev
		j.n++
	}
	return ev.Seq
}

// Since returns the retained events with Seq > seq, oldest first. A nil
// journal returns nil; Since(0) returns the full retained tail.
func (j *Journal) Since(seq int64) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for i := 0; i < j.n; i++ {
		ev := j.buf[(j.start+i)%len(j.buf)]
		if ev.Seq > seq {
			out = append(out, ev)
		}
	}
	return out
}

// DrainTo re-appends every retained event with Seq > seq onto dst
// (which stamps its own sequence numbers) and returns this journal's
// newest sequence — the caller's next drain cursor. It serves the
// cluster's per-interval serial merge: sequence numbers are contiguous,
// so the cursor indexes straight into the ring and a drain costs
// exactly the events moved, with no slice allocation (Since would
// allocate one per interval on the stepping hot path).
func (j *Journal) DrainTo(dst *Journal, seq int64) int64 {
	if j == nil {
		return seq
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	first := j.seq - int64(j.n) // seq before the oldest retained event
	if seq < first {
		seq = first
	}
	for s := seq + 1; s <= j.seq; s++ {
		dst.Append(j.buf[(j.start+int(s-first-1))%len(j.buf)])
	}
	return j.seq
}

// LastSeq returns the newest assigned sequence number (0 before the
// first append or through nil).
func (j *Journal) LastSeq() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Dropped returns how many events the ring has overwritten.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// EventsDoc is the persisted journal ("sturgeon/events/v1"): the
// retained tail, the count of events the ring dropped before it, and —
// for since-cursor reads — how many requested events had already been
// overwritten (see Journal.DocSince; absent for full snapshots).
type EventsDoc struct {
	Schema  string  `json:"schema"`
	Dropped int64   `json:"dropped"`
	Missing int64   `json:"missing,omitempty"`
	Events  []Event `json:"events"`
}

// Validate implements jsonio.Validator.
func (d *EventsDoc) Validate() error {
	if d.Schema != EventsSchema {
		return fmt.Errorf("obs: events schema %q, want %q", d.Schema, EventsSchema)
	}
	if d.Dropped < 0 || d.Missing < 0 {
		return fmt.Errorf("obs: negative dropped/missing count (%d/%d)", d.Dropped, d.Missing)
	}
	var last int64
	for i, ev := range d.Events {
		switch {
		case ev.Type == "":
			return fmt.Errorf("obs: event %d has empty type", i)
		case ev.Seq <= last:
			return fmt.Errorf("obs: event %d seq %d not increasing (after %d)", i, ev.Seq, last)
		case math.IsNaN(ev.T) || math.IsInf(ev.T, 0) || ev.T < 0:
			return fmt.Errorf("obs: event %d carries invalid time %v", i, ev.T)
		case math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0):
			return fmt.Errorf("obs: event %d carries non-finite value", i)
		}
		last = ev.Seq
	}
	return nil
}

// Doc snapshots the journal as the persistable events document. A nil
// journal yields an empty (but valid) document.
func (j *Journal) Doc() *EventsDoc {
	return &EventsDoc{
		Schema:  EventsSchema,
		Dropped: j.Dropped(),
		Events:  j.Since(0),
	}
}

// DocSince snapshots the events after seq. Missing counts events the
// caller asked for that the ring had already overwritten — a wrapped
// ring answers a stale cursor with a gap, and this field is how the
// response documents the drop (a quiet journal reports 0).
func (j *Journal) DocSince(seq int64) *EventsDoc {
	d := &EventsDoc{Schema: EventsSchema, Dropped: j.Dropped()}
	if j == nil {
		return d
	}
	d.Events = j.Since(seq)
	d.Missing = missingSince(seq, j.LastSeq(), int64(len(d.Events)))
	return d
}
