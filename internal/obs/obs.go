package obs

import (
	"fmt"
	"strings"
)

// Sink bundles the halves of the observability layer plus the node
// identity to stamp on everything emitted through it. Components accept
// a *Sink and instrument unconditionally: a nil sink — or a sink with a
// nil half — compiles to no-ops on every path.
type Sink struct {
	Metrics  *Registry
	Journal  *Journal
	Trace    *Tracer
	Timeline *Recorder
	// Node labels every event (Event.Node), span (Span.Node) and
	// node-scoped metric (NodeGauge/NodeCounter) emitted through this
	// sink.
	Node string
	// spanCtx is the causal parent for spans emitted through this sink
	// (set by the cluster's serial merge when a coordinator grant or
	// migration lands on the node, cleared when the node settles). The
	// merge and the fan-out worker phases alternate under the pool's
	// fork-join barrier, so plain accesses never race.
	spanCtx SpanRef
}

// New builds a sink with a fresh registry, a journal of the given
// capacity (<= 0 selects DefaultJournalCap), a tracer and a timeline
// recorder. Span ids are derived with seed 0; runs that want the run
// seed folded in use NewSeeded.
func New(journalCap int) *Sink {
	return NewSeeded(0, journalCap)
}

// NewSeeded builds a sink whose tracer salts deterministic span ids
// with the run seed.
func NewSeeded(seed int64, journalCap int) *Sink {
	return &Sink{
		Metrics:  NewRegistry(),
		Journal:  NewJournal(journalCap),
		Trace:    NewTracer(seed, 0),
		Timeline: NewRecorder(0),
	}
}

// ForNode derives a per-node child sink: same metrics registry, own
// staging journal and tracer (of the given capacity) and the node
// label. The parallel fleet stepping gives each node such a child so
// journal/trace appends never contend or race across nodes; the cluster
// drains the staging rings serially in node-index order (cluster.Run's
// merge), which is what keeps the fleet journal and trace deterministic
// at any stepping parallelism. The timeline recorder is not inherited:
// fleet series are fed only from the serial merge.
func (s *Sink) ForNode(node string, journalCap int) *Sink {
	if s == nil {
		return nil
	}
	child := &Sink{Metrics: s.Metrics, Journal: NewJournal(journalCap), Node: node}
	if s.Trace != nil {
		child.Trace = NewTracer(s.Trace.Seed(), journalCap)
	}
	return child
}

// Counter resolves a counter from the sink's registry (nil-safe).
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge resolves a gauge from the sink's registry (nil-safe).
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// Histogram resolves a histogram from the sink's registry (nil-safe).
func (s *Sink) Histogram(name string, bounds ...float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.Metrics.Histogram(name, bounds...)
}

// labelEscaper applies the Prometheus exposition escapes for label
// values: backslash, double quote and newline.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Labeled renders a metric name with one label: Labeled("x", "node",
// "n3") -> `x{node="n3"}`. The value is escaped per the Prometheus
// text format (`\` -> `\\`, `"` -> `\"`, newline -> `\n`) so hostile
// node names cannot break the exposition out of the label block.
func Labeled(name, key, value string) string {
	return fmt.Sprintf("%s{%s=\"%s\"}", name, key, labelEscaper.Replace(value))
}

// NodeGauge resolves a gauge labeled with the sink's node identity
// (plain name when the sink carries none).
func (s *Sink) NodeGauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	if s.Node != "" {
		name = Labeled(name, "node", s.Node)
	}
	return s.Metrics.Gauge(name)
}

// NodeCounter resolves a counter labeled with the sink's node identity.
func (s *Sink) NodeCounter(name string) *Counter {
	if s == nil {
		return nil
	}
	if s.Node != "" {
		name = Labeled(name, "node", s.Node)
	}
	return s.Metrics.Counter(name)
}

// Emit journals one event, stamping the sink's node label when the
// event carries none. No-op through a nil sink or nil journal.
func (s *Sink) Emit(ev Event) {
	if s == nil || s.Journal == nil {
		return
	}
	if ev.Node == "" {
		ev.Node = s.Node
	}
	s.Journal.Append(ev)
}

// Active reports whether the sink journals events — components use it to
// skip building events that would be discarded anyway.
func (s *Sink) Active() bool { return s != nil && s.Journal != nil }

// Span traces one decision, stamping the sink's node label when the
// span carries none and chaining under the sink's span context (root
// when none is set). Returns the zero ref through a nil sink or tracer.
func (s *Sink) Span(sp Span) SpanRef {
	if s == nil || s.Trace == nil {
		return SpanRef{}
	}
	if sp.Node == "" {
		sp.Node = s.Node
	}
	return s.Trace.Append(sp, s.spanCtx)
}

// ChildSpan traces one decision under an explicit parent, ignoring the
// sink's span context.
func (s *Sink) ChildSpan(sp Span, parent SpanRef) SpanRef {
	if s == nil || s.Trace == nil {
		return SpanRef{}
	}
	if sp.Node == "" {
		sp.Node = s.Node
	}
	return s.Trace.Append(sp, parent)
}

// SetSpanContext makes ref the causal parent of subsequent Span calls
// through this sink; the zero ref clears the context.
func (s *Sink) SetSpanContext(ref SpanRef) {
	if s == nil {
		return
	}
	s.spanCtx = ref
}

// Tracing reports whether the sink records spans.
func (s *Sink) Tracing() bool { return s != nil && s.Trace != nil }

// Series resolves a timeline series from the sink's recorder
// (nil-safe; the returned handle no-ops when nil).
func (s *Sink) Series(name string) *TSeries {
	if s == nil {
		return nil
	}
	return s.Timeline.Series(name)
}

// Instrumentable is implemented by components that accept an
// observability sink after construction (controllers, guards,
// coordinators). The cluster runtime uses it to wire per-node sinks
// without knowing concrete controller types.
type Instrumentable interface {
	SetObs(*Sink)
}
