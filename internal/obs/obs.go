package obs

import "fmt"

// Sink bundles the two halves of the observability layer plus the node
// identity to stamp on everything emitted through it. Components accept
// a *Sink and instrument unconditionally: a nil sink — or a sink with a
// nil half — compiles to no-ops on every path.
type Sink struct {
	Metrics *Registry
	Journal *Journal
	// Node labels every event (Event.Node) and every node-scoped metric
	// (NodeGauge/NodeCounter) emitted through this sink.
	Node string
}

// New builds a sink with a fresh registry and a journal of the given
// capacity (<= 0 selects DefaultJournalCap).
func New(journalCap int) *Sink {
	return &Sink{Metrics: NewRegistry(), Journal: NewJournal(journalCap)}
}

// ForNode derives a per-node child sink: same metrics registry, own
// staging journal (of the given capacity) and the node label. The
// parallel fleet stepping gives each node such a child so journal
// appends never contend or race across nodes; the cluster drains the
// staging journals serially in node-index order (cluster.Run's merge),
// which is what keeps the fleet journal deterministic at any stepping
// parallelism.
func (s *Sink) ForNode(node string, journalCap int) *Sink {
	if s == nil {
		return nil
	}
	return &Sink{Metrics: s.Metrics, Journal: NewJournal(journalCap), Node: node}
}

// Counter resolves a counter from the sink's registry (nil-safe).
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge resolves a gauge from the sink's registry (nil-safe).
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// Histogram resolves a histogram from the sink's registry (nil-safe).
func (s *Sink) Histogram(name string, bounds ...float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.Metrics.Histogram(name, bounds...)
}

// Labeled renders a metric name with one label: Labeled("x", "node",
// "n3") -> `x{node="n3"}`.
func Labeled(name, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// NodeGauge resolves a gauge labeled with the sink's node identity
// (plain name when the sink carries none).
func (s *Sink) NodeGauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	if s.Node != "" {
		name = Labeled(name, "node", s.Node)
	}
	return s.Metrics.Gauge(name)
}

// NodeCounter resolves a counter labeled with the sink's node identity.
func (s *Sink) NodeCounter(name string) *Counter {
	if s == nil {
		return nil
	}
	if s.Node != "" {
		name = Labeled(name, "node", s.Node)
	}
	return s.Metrics.Counter(name)
}

// Emit journals one event, stamping the sink's node label when the
// event carries none. No-op through a nil sink or nil journal.
func (s *Sink) Emit(ev Event) {
	if s == nil || s.Journal == nil {
		return
	}
	if ev.Node == "" {
		ev.Node = s.Node
	}
	s.Journal.Append(ev)
}

// Active reports whether the sink journals events — components use it to
// skip building events that would be discarded anyway.
func (s *Sink) Active() bool { return s != nil && s.Journal != nil }

// Instrumentable is implemented by components that accept an
// observability sink after construction (controllers, guards,
// coordinators). The cluster runtime uses it to wire per-node sinks
// without knowing concrete controller types.
type Instrumentable interface {
	SetObs(*Sink)
}
