package obs

import (
	"math"
	"testing"

	"sturgeon/internal/jsonio"
)

func TestTSeriesNilSafety(t *testing.T) {
	var s *TSeries
	s.Observe(1, 2) // must not panic
	var r *Recorder
	if r.Series("x") != nil {
		t.Fatal("nil recorder must hand back a nil series")
	}
	if d := r.Doc(); d == nil || d.Validate() != nil {
		t.Fatal("nil recorder must yield a valid empty doc")
	}
}

func TestTSeriesRollups(t *testing.T) {
	rec := NewRecorder(0)
	s := rec.Series("fleet_power_w")
	// Per-second samples over 25 simulated seconds: the 10 s tier must
	// seal (0,10] and (10,20] and leave (20,30] open; the 60 s tier keeps
	// everything in one open bin.
	for i := 1; i <= 25; i++ {
		s.Observe(float64(i), float64(i))
	}
	d := rec.Doc()
	if err := d.Validate(); err != nil {
		t.Fatalf("doc invalid: %v", err)
	}
	sd := d.Series[0]
	if sd.Name != "fleet_power_w" || len(sd.Raw) != 25 {
		t.Fatalf("raw tail wrong: %s/%d", sd.Name, len(sd.Raw))
	}
	if len(sd.Rollups) != 2 || sd.Rollups[0].ResS != 10 || sd.Rollups[1].ResS != 60 {
		t.Fatalf("rollup tiers wrong: %+v", sd.Rollups)
	}
	tier10 := sd.Rollups[0]
	if len(tier10.Bins) != 3 {
		t.Fatalf("10s tier has %d bins, want 3", len(tier10.Bins))
	}
	// (0,10]: samples 1..10 — the boundary sample t=10 belongs to the bin
	// ending at 10, not the one starting there.
	b := tier10.Bins[0]
	if b.T0 != 0 || b.Count != 10 || b.Min != 1 || b.Max != 10 || b.Sum != 55 {
		t.Fatalf("(0,10] bin wrong: %+v", b)
	}
	b = tier10.Bins[1]
	if b.T0 != 10 || b.Count != 10 || b.Min != 11 || b.Max != 20 {
		t.Fatalf("(10,20] bin wrong: %+v", b)
	}
	b = tier10.Bins[2]
	if b.T0 != 20 || b.Count != 5 || b.Max != 25 {
		t.Fatalf("open (20,30] bin wrong: %+v", b)
	}
	tier60 := sd.Rollups[1]
	if len(tier60.Bins) != 1 || tier60.Bins[0].Count != 25 {
		t.Fatalf("60s tier wrong: %+v", tier60.Bins)
	}
}

func TestTSeriesResetOnRewind(t *testing.T) {
	rec := NewRecorder(0)
	s := rec.Series("fleet_qos")
	for i := 1; i <= 40; i++ {
		s.Observe(float64(i), 0.9)
	}
	// A second run re-feeds the same sink from t=1: the series must
	// restart so the exported timeline describes the last run only.
	for i := 1; i <= 12; i++ {
		s.Observe(float64(i), 0.5)
	}
	d := rec.Doc()
	if err := d.Validate(); err != nil {
		t.Fatalf("doc invalid after rewind: %v", err)
	}
	sd := d.Series[0]
	if len(sd.Raw) != 12 || sd.Raw[0].T != 1 || sd.Raw[0].V != 0.5 {
		t.Fatalf("rewind did not reset raw ring: %d samples, first %+v", len(sd.Raw), sd.Raw[0])
	}
	for _, tier := range sd.Rollups {
		for _, b := range tier.Bins {
			if b.Min != 0.5 || b.Max != 0.5 {
				t.Fatalf("rollup %ds kept pre-rewind samples: %+v", tier.ResS, b)
			}
		}
	}
}

func TestTSeriesRawRingWraps(t *testing.T) {
	rec := NewRecorder(4)
	s := rec.Series("x")
	for i := 1; i <= 7; i++ {
		s.Observe(float64(i), float64(i))
	}
	d := rec.Doc()
	if err := d.Validate(); err != nil {
		t.Fatalf("doc invalid: %v", err)
	}
	sd := d.Series[0]
	if sd.Dropped != 3 || len(sd.Raw) != 4 || sd.Raw[0].T != 4 {
		t.Fatalf("raw ring wrap wrong: dropped %d raw %+v", sd.Dropped, sd.Raw)
	}
	// Rollups are unaffected by the raw ring: all 7 samples counted.
	if n := sd.Rollups[0].Bins[0].Count; n != 7 {
		t.Fatalf("rollup lost samples to the raw ring: %d", n)
	}
}

func TestTSeriesDropsNonFinite(t *testing.T) {
	rec := NewRecorder(0)
	s := rec.Series("x")
	s.Observe(1, 1)
	s.Observe(math.NaN(), 2)
	s.Observe(2, math.Inf(1))
	s.Observe(math.Inf(-1), 3)
	s.Observe(2, 2)
	d := rec.Doc()
	if err := d.Validate(); err != nil {
		t.Fatalf("doc invalid: %v", err)
	}
	if len(d.Series[0].Raw) != 2 {
		t.Fatalf("non-finite samples not dropped: %+v", d.Series[0].Raw)
	}
}

func TestTimelineDocValidateRejects(t *testing.T) {
	series := func(mut func(*SeriesDoc)) TimelineDoc {
		sd := SeriesDoc{Name: "x", Raw: []Point{{T: 1, V: 1}},
			Rollups: []BinsDoc{{ResS: 10, Bins: []Bin{{T0: 0, Min: 1, Max: 1, Sum: 1, Count: 1}}}}}
		mut(&sd)
		return TimelineDoc{Schema: TimelineSchema, Series: []SeriesDoc{sd}}
	}
	cases := map[string]TimelineDoc{
		"bad schema":      {Schema: "nope"},
		"empty name":      series(func(s *SeriesDoc) { s.Name = "" }),
		"neg dropped":     series(func(s *SeriesDoc) { s.Dropped = -1 }),
		"nan point":       series(func(s *SeriesDoc) { s.Raw[0].V = math.NaN() }),
		"time repeat":     series(func(s *SeriesDoc) { s.Raw = []Point{{T: 1, V: 1}, {T: 1, V: 2}} }),
		"misaligned t0":   series(func(s *SeriesDoc) { s.Rollups[0].Bins[0].T0 = 3 }),
		"zero count":      series(func(s *SeriesDoc) { s.Rollups[0].Bins[0].Count = 0 }),
		"min > max":       series(func(s *SeriesDoc) { s.Rollups[0].Bins[0].Min = 2 }),
		"mean off range":  series(func(s *SeriesDoc) { s.Rollups[0].Bins[0].Sum = 99 }),
		"res not rising":  series(func(s *SeriesDoc) { s.Rollups = append(s.Rollups, BinsDoc{ResS: 10}) }),
		"unsorted series": {Schema: TimelineSchema, Series: []SeriesDoc{{Name: "b"}, {Name: "a"}}},
		"dup series":      {Schema: TimelineSchema, Series: []SeriesDoc{{Name: "a"}, {Name: "a"}}},
	}
	for name, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: invalid doc accepted", name)
		}
	}
	good := series(func(s *SeriesDoc) {})
	if err := good.Validate(); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
}

func TestTimelineDocRoundTrip(t *testing.T) {
	rec := NewRecorder(0)
	rec.Series("b").Observe(1, 2)
	rec.Series("a").Observe(1, 3)
	data, err := jsonio.Marshal(rec.Doc())
	if err != nil {
		t.Fatal(err)
	}
	var back TimelineDoc
	if err := jsonio.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != 2 || back.Series[0].Name != "a" || back.Series[1].Name != "b" {
		t.Fatalf("series not sorted by name: %+v", back.Series)
	}
}
