package obs

import (
	"bytes"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"

	"sturgeon/internal/jsonio"
)

func TestNilSafety(t *testing.T) {
	// Every path through nil receivers must be a no-op, not a panic —
	// this is the contract that lets hot paths instrument unconditionally.
	var r *Registry
	var s *Sink
	var j *Journal
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", 1, 2).Observe(1)
	if d := r.Doc(); d == nil || d.Validate() != nil {
		t.Fatal("nil registry must yield a valid empty doc")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	s.Counter("x").Add(2)
	s.NodeGauge("x").Set(3)
	s.NodeCounter("x").Inc()
	s.Histogram("x", 1).Observe(1)
	s.Emit(Event{Type: EventSearch})
	if s.Active() {
		t.Fatal("nil sink must not be active")
	}
	if s.ForNode("n", 8) != nil {
		t.Fatal("nil sink ForNode must stay nil")
	}
	j.Append(Event{Type: "x"})
	if j.Since(0) != nil || j.LastSeq() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal must read as empty")
	}
	if d := j.Doc(); d == nil || d.Validate() != nil {
		t.Fatal("nil journal must yield a valid empty doc")
	}
}

func TestRegistryStableOrderAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Counter("a_total").Inc()
	r.Gauge("z_gauge").Set(2.5)
	r.Gauge("m_gauge").Set(-1)
	h := r.Histogram("lat_seconds", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	d := r.Doc()
	if err := d.Validate(); err != nil {
		t.Fatalf("doc invalid: %v", err)
	}
	if d.Counters[0].Name != "a_total" || d.Counters[1].Name != "b_total" {
		t.Fatalf("counters not sorted: %+v", d.Counters)
	}
	if d.Counters[0].Value != 1 || d.Counters[1].Value != 3 {
		t.Fatalf("counter values wrong: %+v", d.Counters)
	}
	if d.Gauges[0].Name != "m_gauge" || d.Gauges[1].Name != "z_gauge" {
		t.Fatalf("gauges not sorted: %+v", d.Gauges)
	}
	hp := d.Histograms[0]
	if hp.Count != 3 || hp.Buckets[0] != 1 || hp.Buckets[1] != 2 {
		t.Fatalf("histogram cumulative buckets wrong: %+v", hp)
	}
	if math.Abs(hp.Sum-5.55) > 1e-9 {
		t.Fatalf("histogram sum %v, want 5.55", hp.Sum)
	}

	// The JSON doc must round-trip through the schema-validating layer.
	data, err := jsonio.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsDoc
	if err := jsonio.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryKindCollision(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") == nil {
		t.Fatal("first registration failed")
	}
	if r.Gauge("x") != nil || r.Histogram("x", 1) != nil {
		t.Fatal("cross-kind collision must yield nil (a no-op handle)")
	}
	if r.Counter("x") == nil {
		t.Fatal("same-kind re-registration must return the handle")
	}
}

// promLine matches the sample-line grammar of the Prometheus text
// exposition format (metric name with optional label block, then a
// float/int value).
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)$`)

// checkPromText asserts text parses as Prometheus exposition format and
// returns the sample lines. Shared with the daemon integration test via
// duplication — it is deliberately strict about TYPE headers.
func checkPromText(t *testing.T, text string) []string {
	t.Helper()
	typed := map[string]bool{}
	var samples []string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			if typed[f[2]] {
				t.Fatalf("duplicate TYPE for family %s", f[2])
			}
			typed[f[2]] = true
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as a Prometheus sample: %q", line)
		}
		samples = append(samples, line)
	}
	return samples
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sturgeon_searches_total").Add(7)
	r.Gauge(Labeled("fleet_node_cap_watts", "node", "node-003")).Set(98)
	h := r.Histogram("sturgeon_power_residual_watts", -2, 0, 2)
	h.Observe(-5)
	h.Observe(1)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples := checkPromText(t, out)
	if len(samples) == 0 {
		t.Fatal("no samples rendered")
	}
	for _, want := range []string{
		"# TYPE sturgeon_searches_total counter",
		"sturgeon_searches_total 7",
		`fleet_node_cap_watts{node="node-003"} 98`,
		`sturgeon_power_residual_watts_bucket{le="-2"} 1`,
		`sturgeon_power_residual_watts_bucket{le="+Inf"} 2`,
		"sturgeon_power_residual_watts_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
}

func TestJournalRingAndSince(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Append(Event{T: float64(i), Type: EventHarvest})
	}
	if j.LastSeq() != 6 {
		t.Fatalf("LastSeq %d, want 6", j.LastSeq())
	}
	if j.Dropped() != 2 {
		t.Fatalf("Dropped %d, want 2", j.Dropped())
	}
	all := j.Since(0)
	if len(all) != 4 || all[0].Seq != 3 || all[3].Seq != 6 {
		t.Fatalf("ring tail wrong: %+v", all)
	}
	tail := j.Since(4)
	if len(tail) != 2 || tail[0].Seq != 5 {
		t.Fatalf("Since(4) wrong: %+v", tail)
	}
	if got := j.Since(6); len(got) != 0 {
		t.Fatalf("Since(last) must be empty, got %+v", got)
	}
	doc := j.Doc()
	if err := doc.Validate(); err != nil {
		t.Fatalf("doc invalid: %v", err)
	}
	if doc.Dropped != 2 || len(doc.Events) != 4 {
		t.Fatalf("doc wrong: %+v", doc)
	}
}

func TestEventsDocValidate(t *testing.T) {
	bad := []EventsDoc{
		{Schema: "nope"},
		{Schema: EventsSchema, Events: []Event{{Seq: 1}}},                                     // empty type
		{Schema: EventsSchema, Events: []Event{{Seq: 2, Type: "a"}, {Seq: 2, Type: "b"}}},     // seq not increasing
		{Schema: EventsSchema, Events: []Event{{Seq: 1, Type: "a", T: math.NaN()}}},           // bad time
		{Schema: EventsSchema, Events: []Event{{Seq: 1, Type: "a", Value: math.Inf(1)}}},      // bad value
		{Schema: EventsSchema, Dropped: -1, Events: []Event{{Seq: 1, Type: "a", Value: 0.5}}}, // bad dropped
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid doc accepted", i)
		}
	}
	good := EventsDoc{Schema: EventsSchema, Events: []Event{
		{Seq: 1, T: 1, Type: EventSearch, Reason: "initial"},
		{Seq: 5, T: 2, Type: EventResidual, Resource: "power", Value: -3.25},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
}

func TestSinkEmitStampsNode(t *testing.T) {
	s := New(16)
	child := s.ForNode("node-001", 8)
	child.Emit(Event{T: 1, Type: EventGuardHold})
	evs := child.Journal.Since(0)
	if len(evs) != 1 || evs[0].Node != "node-001" {
		t.Fatalf("node label not stamped: %+v", evs)
	}
	// The parent journal is untouched: children stage independently.
	if s.Journal.LastSeq() != 0 {
		t.Fatal("child emit leaked into parent journal")
	}
	if child.Metrics != s.Metrics {
		t.Fatal("child must share the parent registry")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h", 1, 2, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count %d, want 8000", h.Count())
	}
}
