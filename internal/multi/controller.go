package multi

import (
	"math"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// Controller is the Algorithm-1-style loop for N co-located applications:
// every interval it checks each LS service's slack; a load move triggers
// a fresh multi-way search, residual violations are absorbed by harvesting
// one resource unit from whichever best-effort application the models say
// loses least, and measured power overloads throttle the BE side.
type Controller struct {
	Spec     hw.Spec
	Apps     Apps
	Searcher *Searcher
	Budget   power.Watts
	// Alpha, Beta and LoadDelta follow core.Options (defaults 0.10, 0.20,
	// 0.01).
	Alpha, Beta, LoadDelta float64

	searched  bool
	harvested bool
	lastQPS   []float64
	// Searches and Harvests count the controller's actions.
	Searches, Harvests int
}

// NewController builds the multi-app controller.
func NewController(spec hw.Spec, apps Apps, s *Searcher, budget power.Watts) *Controller {
	return &Controller{
		Spec: spec, Apps: apps, Searcher: s, Budget: budget,
		Alpha: 0.10, Beta: 0.20, LoadDelta: 0.01,
	}
}

// Decide returns the partition to apply for the next interval.
func (c *Controller) Decide(st IntervalStats, qps []float64) Partition {
	p := st.Partition

	overload := float64(st.Power) > 0.99*float64(c.Budget)
	worst := math.Inf(1) // worst (smallest) slack across LS services
	worstIdx := -1
	for _, i := range c.Apps.LSIndices() {
		app := c.Apps[i]
		slack := (app.QoSTargetS - st.Apps[i].P95) / app.QoSTargetS
		if slack < worst {
			worst = slack
			worstIdx = i
		}
	}

	// Hold only inside the slack band (Alg. 1): below Alpha the QoS is
	// threatened, above Beta resources are sitting idle and should be
	// re-searched back to the best-effort side as the load recedes.
	if !overload && worst >= c.Alpha && worst <= c.Beta {
		c.harvested = false
		return p
	}
	// Episode over (ample slack after harvesting): drop the search memo
	// so the predictor's configuration is restored even at constant load.
	if !overload && worst > c.Beta && c.harvested {
		c.harvested = false
		c.searched = false
	}

	// Re-search when any LS load moved.
	moved := !c.searched
	for _, i := range c.Apps.LSIndices() {
		peak := c.Apps[i].PeakQPS
		var last float64
		if i < len(c.lastQPS) {
			last = c.lastQPS[i]
		}
		if math.Abs(qpsAt(qps, i)-last) > c.LoadDelta*peak {
			moved = true
		}
	}
	if moved {
		next, _ := c.Searcher.Best(qps)
		c.searched = true
		c.lastQPS = append([]float64(nil), qps...)
		c.Searches++
		return next
	}

	if overload {
		// Throttle every running BE application one DVFS level; park a
		// core when already at the floor.
		next := p.Clone()
		changed := false
		for _, j := range c.Apps.BEIndices() {
			a := next[j]
			if a.Cores == 0 {
				continue
			}
			if lvl := c.Spec.LevelOfFreq(a.Freq); lvl > 0 {
				a.Freq = c.Spec.FreqAtLevel(lvl - 1)
				changed = true
			} else if a.Cores > 1 {
				a.Cores--
				changed = true
			}
			next[j] = a
		}
		if changed {
			c.Harvests++
			return next
		}
		return p
	}

	// Violation at steady load: interference. Harvest from the cheapest
	// best-effort source for the worst-off service, with the number of
	// units proportional to how deep the violation is.
	if worstIdx >= 0 && worst < c.Alpha {
		units := 1
		if worst < 0 {
			units += min(4, int(-worst*2))
		}
		next := p
		did := false
		for u := 0; u < units; u++ {
			n, ok := c.harvestFor(next, worstIdx)
			if !ok {
				break
			}
			next = n
			did = true
		}
		if did {
			c.Harvests++
			c.harvested = true
			return next
		}
	}
	return p
}

// harvestFor moves one resource unit to the violated LS service from the
// BE application whose predicted throughput loss is smallest.
func (c *Controller) harvestFor(p Partition, lsIdx int) (Partition, bool) {
	type option struct {
		part Partition
		loss float64
	}
	var best *option
	consider := func(next Partition, loss float64) {
		if err := next.Validate(c.Spec); err != nil {
			return
		}
		if best == nil || loss < best.loss {
			best = &option{part: next, loss: loss}
		}
	}
	for _, j := range c.Apps.BEIndices() {
		m := c.Searcher.BE[j]
		cur := p[j]
		if cur.Cores == 0 {
			continue
		}
		base := m.Throughput(cur)
		if cur.Cores > 1 {
			next := p.Clone()
			next[j].Cores--
			next[lsIdx].Cores++
			consider(next, base-m.Throughput(next[j]))
		}
		if cur.LLCWays > 1 {
			next := p.Clone()
			next[j].LLCWays--
			next[lsIdx].LLCWays++
			consider(next, base-m.Throughput(next[j]))
		}
		if lvl := c.Spec.LevelOfFreq(cur.Freq); lvl > 0 {
			if lsLvl := c.Spec.LevelOfFreq(p[lsIdx].Freq); lsLvl < c.Spec.NumFreqLevels()-1 {
				next := p.Clone()
				next[j].Freq = c.Spec.FreqAtLevel(lvl - 1)
				next[lsIdx].Freq = c.Spec.FreqAtLevel(lsLvl + 1)
				consider(next, base-m.Throughput(next[j]))
			}
		}
	}
	if best == nil {
		return p, false
	}
	return best.part, true
}
