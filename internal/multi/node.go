package multi

import (
	"fmt"
	"math"
	"math/rand"

	"sturgeon/internal/cache"
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/queueing"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// AppStats is one application's share of an interval.
type AppStats struct {
	// LS fields (zero for BE apps).
	QPS     float64
	TrueP95 float64
	P95     float64 // measured
	QoSFrac float64
	Rho     float64
	// BE fields (zero for LS apps).
	ThroughputUPS float64
}

// IntervalStats is one simulated interval of the multi-app node.
type IntervalStats struct {
	Time      float64
	Apps      []AppStats
	TruePower power.Watts
	Power     power.Watts
	Partition Partition
}

// Node simulates a power-constrained server hosting N co-located
// applications. The physics mirror sim.Node generalized over the
// application list: a shared memory bus couples everyone, interference
// episodes inflate every LS service's work, and per-service backlogs
// carry across intervals.
type Node struct {
	Spec        hw.Spec
	PowerParams power.Params
	Bus         cache.MemBus
	Apps        Apps
	Meter       *power.Meter
	Interf      *sim.Interference
	P95NoiseSD  float64

	rng      *rand.Rand
	cur      Partition
	backlogs []float64
}

// NewNode builds a multi-app node with default physics. The initial
// partition parks everything; call Apply before stepping.
func NewNode(apps Apps, seed int64) *Node {
	rng := rand.New(rand.NewSource(seed))
	n := &Node{
		Spec:        hw.DefaultSpec(),
		PowerParams: power.DefaultParams(),
		Bus:         cache.DefaultBus(),
		Apps:        apps,
		Meter:       power.NewMeter(0.8, rng.NormFloat64),
		Interf:      sim.DefaultInterference(rng),
		P95NoiseSD:  0.04,
		rng:         rng,
		cur:         make(Partition, len(apps)),
		backlogs:    make([]float64, len(apps)),
	}
	for i := range n.cur {
		n.cur[i].Freq = n.Spec.FreqMin
	}
	return n
}

// QuietNode disables noise and interference (profiling/analysis).
func QuietNode(apps Apps, seed int64) *Node {
	n := NewNode(apps, seed)
	n.Meter = power.NewMeter(0, nil)
	n.Interf = sim.None()
	n.P95NoiseSD = 0
	return n
}

// Apply installs a partition.
func (n *Node) Apply(p Partition) error {
	if len(p) != len(n.Apps) {
		return fmt.Errorf("multi: partition has %d allocations for %d apps", len(p), len(n.Apps))
	}
	q := p.Clone()
	for i := range q {
		q[i].Freq = n.Spec.ClampFreq(q[i].Freq)
	}
	if err := q.Validate(n.Spec); err != nil {
		return err
	}
	n.cur = q
	return nil
}

// Partition returns the partition in force.
func (n *Node) Partition() Partition { return n.cur.Clone() }

// Step advances one 1 s interval. qps carries the offered load per
// application (entries for BE applications are ignored).
func (n *Node) Step(t float64, qps []float64) IntervalStats {
	svcFactor, extraBW, _ := 1.0, 0.0, false
	if n.Interf != nil {
		svcFactor, extraBW, _ = n.Interf.Step()
	}

	// Fixed point over the shared memory bus.
	contention := 1.0
	lsStates := make([]workload.LSState, len(n.Apps))
	beStates := make([]workload.BEState, len(n.Apps))
	for iter := 0; iter < 3; iter++ {
		demand := extraBW
		for i, app := range n.Apps {
			if app.Class == workload.LS {
				lsStates[i] = app.LSRate(n.cur[i], qpsAt(qps, i), contention)
				demand += lsStates[i].BandwidthGBs
			} else {
				beStates[i] = app.BERate(n.cur[i], contention)
				demand += beStates[i].BandwidthGBs
			}
		}
		contention = n.Bus.Contention(demand)
	}

	stats := IntervalStats{Time: t, Apps: make([]AppStats, len(n.Apps)), Partition: n.cur.Clone()}
	loads := make([]power.CoreLoad, 0, len(n.Apps))
	dram := extraBW
	activeWays := 0

	for i, app := range n.Apps {
		a := n.cur[i]
		activeWays += a.LLCWays
		if app.Class == workload.BE {
			st := beStates[i]
			stats.Apps[i] = AppStats{ThroughputUPS: st.ThroughputUPS}
			util := 0.0
			if a.Cores > 0 {
				util = 1
			}
			loads = append(loads, power.CoreLoad{Cores: a.Cores, Freq: a.Freq, Util: util, Activity: app.Activity})
			dram += st.BandwidthGBs
			continue
		}

		ls := lsStates[i]
		powerUtil := math.Min(ls.Rho, 1)
		svc := ls.SvcMean * svcFactor
		rho := ls.Rho * svcFactor
		q := qpsAt(qps, i)
		backlogWait := n.stepBacklog(i, q, svc, a.Cores)
		aq := queueing.Analytic{
			Lambda: q, Servers: a.Cores,
			SvcMean: svc, SvcCV: app.SvcCV, ArrivalCV: app.ArrivalCV,
			IntervalS: 1,
		}
		trueP95 := aq.SojournQuantile(0.95) + backlogWait
		qosFrac := 0.0
		if budget := app.QoSTargetS - backlogWait; budget > 0 {
			qosFrac = aq.FractionWithin(budget)
		}
		if q <= 0 && n.backlogs[i] <= 0 {
			trueP95, qosFrac = 0, 1
		}
		meas := trueP95
		if n.P95NoiseSD > 0 && trueP95 > 0 && !math.IsInf(trueP95, 1) {
			sd := n.P95NoiseSD
			if rho > 0.75 {
				sd += 0.10 * math.Min((rho-0.75)/0.25, 2)
			}
			meas = trueP95 * math.Exp(n.rng.NormFloat64()*sd)
		}
		stats.Apps[i] = AppStats{
			QPS: q, TrueP95: trueP95, P95: meas, QoSFrac: qosFrac, Rho: rho,
		}
		loads = append(loads, power.CoreLoad{Cores: a.Cores, Freq: a.Freq, Util: powerUtil, Activity: app.Activity})
		dram += ls.BandwidthGBs
	}

	stats.TruePower = n.PowerParams.Total(loads, activeWays, n.Spec.LLCWays, n.Bus.Achieved(dram))
	stats.Power = stats.TruePower
	if n.Meter != nil {
		stats.Power = n.Meter.Read(stats.TruePower, 1)
	}
	return stats
}

func (n *Node) stepBacklog(i int, qps, svc float64, cores int) float64 {
	if cores <= 0 || svc <= 0 {
		n.backlogs[i] += qps
		return math.Inf(1)
	}
	capacity := float64(cores) / svc
	start := n.backlogs[i]
	net := qps - capacity
	var avg float64
	end := start + net
	switch {
	case end >= 0 && start >= 0:
		avg = start + net/2
	case start > 0 && end < 0:
		t0 := start / (capacity - qps)
		avg = (start / 2) * t0
		end = 0
	default:
		avg, end = 0, 0
	}
	if end < 0 {
		end = 0
	}
	if limit := 0.5 * capacity; end > limit {
		end = limit
	}
	n.backlogs[i] = end
	if avg < 0 {
		avg = 0
	}
	return avg / capacity
}

func qpsAt(qps []float64, i int) float64 {
	if i < len(qps) {
		return qps[i]
	}
	return 0
}
