// Package multi extends Sturgeon to nodes hosting several co-located
// applications at once — any mix of latency-sensitive services and
// best-effort applications. §V-B of the paper sketches the extension
// ("the algorithm can be extended to support multiple LS/BE applications
// by independently searching the configuration for each application");
// this package implements it: per-service just-enough searches in
// priority order, followed by a marginal-utility allocation of the
// remainder across the best-effort applications under the power budget,
// and an Algorithm-1-style controller with a multi-way balancer.
package multi

import (
	"fmt"

	"sturgeon/internal/hw"
	"sturgeon/internal/workload"
)

// Partition assigns one allocation per application (index-aligned with
// the node's application list). Allocations are exclusive; cores and ways
// not assigned to anyone are parked.
type Partition []hw.Alloc

// Validate checks per-allocation sanity and joint capacity.
func (p Partition) Validate(spec hw.Spec) error {
	cores, ways := 0, 0
	for i, a := range p {
		if err := a.Validate(spec); err != nil {
			return fmt.Errorf("multi: app %d: %w", i, err)
		}
		cores += a.Cores
		ways += a.LLCWays
	}
	if cores > spec.Cores {
		return fmt.Errorf("multi: %d cores allocated, spec has %d", cores, spec.Cores)
	}
	if ways > spec.LLCWays {
		return fmt.Errorf("multi: %d ways allocated, spec has %d", ways, spec.LLCWays)
	}
	return nil
}

// Clone returns a deep copy.
func (p Partition) Clone() Partition {
	return append(Partition(nil), p...)
}

// FreeCores returns the unallocated core count.
func (p Partition) FreeCores(spec hw.Spec) int {
	n := spec.Cores
	for _, a := range p {
		n -= a.Cores
	}
	return n
}

// FreeWays returns the unallocated LLC way count.
func (p Partition) FreeWays(spec hw.Spec) int {
	n := spec.LLCWays
	for _, a := range p {
		n -= a.LLCWays
	}
	return n
}

// Apps is the node's application mix.
type Apps []workload.Profile

// LSIndices returns the indices of the latency-sensitive services.
func (as Apps) LSIndices() []int {
	var out []int
	for i, a := range as {
		if a.Class == workload.LS {
			out = append(out, i)
		}
	}
	return out
}

// BEIndices returns the indices of the best-effort applications.
func (as Apps) BEIndices() []int {
	var out []int
	for i, a := range as {
		if a.Class == workload.BE {
			out = append(out, i)
		}
	}
	return out
}
