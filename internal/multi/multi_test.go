package multi

import (
	"sync"
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/power"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// Fixture: memcached + xapian sharing a node with raytrace + swaptions.
var (
	fixOnce sync.Once
	fixApps Apps
	fixS    *Searcher
)

func fixture(t *testing.T) (Apps, *Searcher) {
	t.Helper()
	fixOnce.Do(func() {
		fixApps = Apps{workload.Memcached(), workload.Xapian(),
			workload.Raytrace(), workload.Swaptions()}
		opts := models.CollectOptions{Samples: 1300, IntervalsPerSample: 2, Seed: 5}
		lsm := map[int]*models.LSModels{}
		bem := map[int]*models.BEModels{}
		for _, i := range fixApps.LSIndices() {
			m, err := models.FitLS(fixApps[i], models.SweepLS(fixApps[i], opts), 5)
			if err != nil {
				panic(err)
			}
			lsm[i] = m
		}
		for _, j := range fixApps.BEIndices() {
			m, err := models.FitBE(fixApps[j], models.SweepBE(fixApps[j], opts), 5)
			if err != nil {
				panic(err)
			}
			bem[j] = m
		}
		params := power.DefaultParams()
		// Budget: enough for both services at peak simultaneously would be
		// oversized; use the larger single-service peak plus a margin that
		// reflects right-sizing for the co-located primaries.
		b1 := sim.LSPeakPower(hw.DefaultSpec(), params, sim.QuietNode(fixApps[0], fixApps[2], 1).Bus, fixApps[0])
		fixS = &Searcher{
			Spec: hw.DefaultSpec(), Apps: fixApps,
			LS: lsm, BE: bem,
			Budget: b1 * 1.1,
			IdleW:  params.IdleW,
		}
	})
	return fixApps, fixS
}

func TestPartitionValidate(t *testing.T) {
	spec := hw.DefaultSpec()
	good := Partition{
		{Cores: 4, Freq: 1.6, LLCWays: 5},
		{Cores: 6, Freq: 1.8, LLCWays: 5},
		{Cores: 5, Freq: 1.2, LLCWays: 5},
	}
	if err := good.Validate(spec); err != nil {
		t.Fatal(err)
	}
	over := Partition{
		{Cores: 12, Freq: 1.6, LLCWays: 5},
		{Cores: 12, Freq: 1.8, LLCWays: 5},
	}
	if over.Validate(spec) == nil {
		t.Error("core oversubscription accepted")
	}
	ways := Partition{
		{Cores: 4, Freq: 1.6, LLCWays: 12},
		{Cores: 4, Freq: 1.8, LLCWays: 12},
	}
	if ways.Validate(spec) == nil {
		t.Error("way oversubscription accepted")
	}
}

func TestAppsIndexing(t *testing.T) {
	apps := Apps{workload.Memcached(), workload.Raytrace(), workload.Xapian()}
	if got := apps.LSIndices(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("LSIndices = %v", got)
	}
	if got := apps.BEIndices(); len(got) != 1 || got[0] != 1 {
		t.Errorf("BEIndices = %v", got)
	}
}

func TestNodeStepTwoServices(t *testing.T) {
	apps := Apps{workload.Memcached(), workload.Xapian(), workload.Raytrace()}
	n := QuietNode(apps, 3)
	p := Partition{
		{Cores: 6, Freq: 1.8, LLCWays: 6},
		{Cores: 6, Freq: 1.8, LLCWays: 6},
		{Cores: 8, Freq: 1.6, LLCWays: 8},
	}
	if err := n.Apply(p); err != nil {
		t.Fatal(err)
	}
	st := n.Step(1, []float64{0.2 * apps[0].PeakQPS, 0.3 * apps[1].PeakQPS})
	if st.Apps[0].QoSFrac < 0.95 || st.Apps[1].QoSFrac < 0.95 {
		t.Errorf("healthy partition violates QoS: %+v", st.Apps[:2])
	}
	if st.Apps[2].ThroughputUPS <= 0 {
		t.Error("BE made no progress")
	}
	if st.TruePower <= n.PowerParams.IdleW {
		t.Error("implausible power")
	}
}

func TestNodeRejectsBadPartitions(t *testing.T) {
	apps := Apps{workload.Memcached(), workload.Raytrace()}
	n := QuietNode(apps, 1)
	if err := n.Apply(Partition{{Cores: 4, Freq: 1.6, LLCWays: 4}}); err == nil {
		t.Error("wrong-length partition accepted")
	}
	if err := n.Apply(Partition{
		{Cores: 15, Freq: 1.6, LLCWays: 10},
		{Cores: 15, Freq: 1.6, LLCWays: 10},
	}); err == nil {
		t.Error("oversubscribed partition accepted")
	}
}

func TestSearcherSatisfiesBothServices(t *testing.T) {
	apps, s := fixture(t)
	qps := []float64{0.3 * apps[0].PeakQPS, 0.3 * apps[1].PeakQPS}
	p, ok := s.Best(qps)
	if !ok {
		t.Fatal("search declared the mix unsatisfiable")
	}
	if err := p.Validate(s.Spec); err != nil {
		t.Fatal(err)
	}
	// Both services staffed, both BE applications running.
	for _, i := range apps.LSIndices() {
		if p[i].Cores < 1 {
			t.Errorf("service %d unstaffed: %v", i, p)
		}
	}
	beCores := 0
	for _, j := range apps.BEIndices() {
		beCores += p[j].Cores
	}
	if beCores < 2 {
		t.Errorf("best-effort side starved: %v", p)
	}
	// The physics must confirm the partition: QoS for both, power under
	// the unguarded budget.
	n := QuietNode(apps, 9)
	if err := n.Apply(p); err != nil {
		t.Fatal(err)
	}
	st := n.Step(1, qps)
	for _, i := range apps.LSIndices() {
		if st.Apps[i].TrueP95 > apps[i].QoSTargetS {
			t.Errorf("service %d violates QoS under %v: p95 %v", i, p[i], st.Apps[i].TrueP95)
		}
	}
	if float64(st.TruePower) > float64(s.Budget)*1.02 {
		t.Errorf("partition %v overloads: %v vs %v", p, st.TruePower, s.Budget)
	}
}

func TestSearcherScalesWithLoad(t *testing.T) {
	apps, s := fixture(t)
	lo, _ := s.Best([]float64{0.2 * apps[0].PeakQPS, 0.2 * apps[1].PeakQPS})
	hi, _ := s.Best([]float64{0.7 * apps[0].PeakQPS, 0.7 * apps[1].PeakQPS})
	loLS := float64(lo[0].Cores)*float64(lo[0].Freq) + float64(lo[1].Cores)*float64(lo[1].Freq)
	hiLS := float64(hi[0].Cores)*float64(hi[0].Freq) + float64(hi[1].Cores)*float64(hi[1].Freq)
	if hiLS <= loLS {
		t.Errorf("LS capacity did not grow with load: %v -> %v", loLS, hiLS)
	}
}

func TestControllerEndToEnd(t *testing.T) {
	apps, s := fixture(t)
	node := NewNode(apps, 13)
	ctrl := NewController(s.Spec, apps, s, s.Budget)

	// Start with everything granted to the first service (the multi-app
	// analogue of Alg. 1 line 1), queried at a safe parked state.
	init := make(Partition, len(apps))
	for i := range init {
		init[i].Freq = s.Spec.FreqMin
	}
	init[0] = hw.Alloc{Cores: s.Spec.Cores, Freq: s.Spec.FreqMax, LLCWays: s.Spec.LLCWays}
	if err := node.Apply(init); err != nil {
		t.Fatal(err)
	}

	const dur = 200
	tr0 := workload.Triangle(0.2, 0.6, dur)
	tr1 := workload.Triangle(0.3, 0.5, dur)
	budget := power.NewBudget(s.Budget)
	var okQ, totQ, beWork float64
	for i := 0; i < dur; i++ {
		tt := float64(i + 1)
		qps := []float64{tr0(tt) * apps[0].PeakQPS, tr1(tt) * apps[1].PeakQPS}
		st := node.Step(tt, qps)
		budget.Observe(st.TruePower)
		for _, li := range apps.LSIndices() {
			okQ += st.Apps[li].QPS * st.Apps[li].QoSFrac
			totQ += st.Apps[li].QPS
		}
		for _, j := range apps.BEIndices() {
			beWork += st.Apps[j].ThroughputUPS
		}
		next := ctrl.Decide(st, qps)
		if err := node.Apply(next); err != nil {
			t.Fatalf("controller emitted invalid partition at t=%v: %v", tt, err)
		}
	}
	qos := okQ / totQ
	if qos < 0.9 {
		t.Errorf("multi-service QoS rate %.4f collapsed", qos)
	}
	if beWork <= 0 {
		t.Error("no best-effort work at all")
	}
	if budget.OverloadFraction() > 0.1 {
		t.Errorf("overload fraction %.3f", budget.OverloadFraction())
	}
	if ctrl.Searches == 0 {
		t.Error("controller never searched")
	}
}

func TestTotalPowerComposition(t *testing.T) {
	apps, s := fixture(t)
	p := Partition{
		{Cores: 5, Freq: 1.8, LLCWays: 5},
		{Cores: 5, Freq: 1.8, LLCWays: 5},
		{Cores: 5, Freq: 1.6, LLCWays: 5},
		{Cores: 5, Freq: 1.6, LLCWays: 5},
	}
	qps := []float64{0.3 * apps[0].PeakQPS, 0.3 * apps[1].PeakQPS}
	pred := float64(s.TotalPowerW(p, qps))
	n := QuietNode(apps, 17)
	if err := n.Apply(p); err != nil {
		t.Fatal(err)
	}
	truth := float64(n.Step(1, qps).TruePower)
	if rel := abs(pred-truth) / truth; rel > 0.12 {
		t.Errorf("power composition off: pred %.1f vs truth %.1f (rel %.3f)", pred, truth, rel)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
