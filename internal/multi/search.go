package multi

import (
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/power"
)

// Searcher generalizes §V-B to N applications. Latency-sensitive services
// are satisfied first, in list order, each with a just-enough binary
// search against its own models; the remaining cores, ways and power
// headroom are then distributed across the best-effort applications by
// marginal utility — each step grants one resource unit to whichever
// application's predicted throughput gains most, power-checked against
// the guarded budget.
type Searcher struct {
	Spec hw.Spec
	Apps Apps
	// LS and BE hold the per-application model bundles, indexed like Apps.
	LS map[int]*models.LSModels
	BE map[int]*models.BEModels
	// Budget is the node power cap; IdleW the platform idle floor used to
	// compose total power from per-application predictions.
	Budget power.Watts
	IdleW  power.Watts
	// Headroom grants each LS service extra grid steps past just-enough
	// (default 1); PowerGuardFrac shrinks the budget (default 0.03).
	Headroom       int
	PowerGuardFrac float64
}

func (s *Searcher) headroom() int {
	if s.Headroom == 0 {
		return 1
	}
	if s.Headroom < 0 {
		return 0
	}
	return s.Headroom
}

func (s *Searcher) guardedBudget() power.Watts {
	g := s.PowerGuardFrac
	if g <= 0 {
		g = 0.03
	}
	return s.Budget * power.Watts(1-g)
}

// TotalPowerW composes the node power prediction: the idle floor plus
// each LS service's incremental draw plus each BE allocation's increment.
func (s *Searcher) TotalPowerW(p Partition, qps []float64) power.Watts {
	total := s.IdleW
	for i := range s.Apps {
		if m, ok := s.LS[i]; ok {
			if p[i].Cores > 0 {
				inc := m.NodePowerW(p[i], qpsAt(qps, i)) - s.IdleW
				if inc > 0 {
					total += inc
				}
			}
			continue
		}
		if m, ok := s.BE[i]; ok {
			total += m.PowerIncW(p[i])
		}
	}
	return total
}

// Best returns the partition the search settles on and whether every LS
// service was satisfiable. Unsatisfiable services receive everything that
// is left (the multi-app analogue of falling back to SoloLS).
func (s *Searcher) Best(qps []float64) (Partition, bool) {
	spec := s.Spec
	p := make(Partition, len(s.Apps))
	for i := range p {
		p[i].Freq = spec.FreqMin
	}
	freeCores, freeWays := spec.Cores, spec.LLCWays
	maxLvl := spec.NumFreqLevels() - 1
	ok := true

	// Phase 1: just-enough per LS service, in list order.
	for _, i := range s.Apps.LSIndices() {
		m := s.LS[i]
		q := qpsAt(qps, i)
		c := s.minCores(m, q, freeCores, freeWays)
		if c < 0 {
			// Not satisfiable even with everything left: grant it all.
			p[i] = hw.Alloc{Cores: freeCores, Freq: spec.FreqMax, LLCWays: freeWays}
			freeCores, freeWays = 0, 0
			ok = false
			continue
		}
		// At the minimum core count the service may compensate with a
		// large slice of the cache; sweep a few core counts and keep the
		// allocation with the smallest normalized footprint, so the
		// best-effort side inherits a balanced remainder.
		bestC, bestL := -1, -1
		bestCost := 1e18
		for cc := c; cc <= min(c+6, freeCores); cc++ {
			l := s.minWays(m, q, cc, maxLvl, freeWays)
			if l < 0 {
				continue
			}
			cost := float64(cc)/float64(spec.Cores) + float64(l)/float64(spec.LLCWays)
			if cost < bestCost {
				bestCost, bestC, bestL = cost, cc, l
			}
		}
		if bestC < 0 {
			bestC, bestL = freeCores, freeWays
		}
		c = bestC
		l := min(bestL+s.headroom(), freeWays)
		f := s.minFreq(m, q, c, l)
		if f < 0 {
			f = maxLvl
		}
		f = min(f+s.headroom(), maxLvl)
		p[i] = hw.Alloc{Cores: c, Freq: spec.FreqAtLevel(f), LLCWays: l}
		freeCores -= c
		freeWays -= l
	}

	// Phase 2: marginal-utility allocation across the BE applications.
	bes := s.Apps.BEIndices()
	budget := s.guardedBudget()
	for _, j := range bes {
		if freeCores > 0 && freeWays > 0 {
			seed := hw.Alloc{Cores: 1, Freq: spec.FreqMin, LLCWays: 1}
			try := p.Clone()
			try[j] = seed
			if s.TotalPowerW(try, qps) <= budget {
				p[j] = seed
				freeCores--
				freeWays--
			}
		}
	}
	for {
		type move struct {
			app   int
			alloc hw.Alloc
			cores int
			ways  int
			gain  float64
		}
		var best *move
		for _, j := range bes {
			cur := p[j]
			if cur.Cores == 0 {
				continue
			}
			base := s.BE[j].Throughput(cur)
			candidates := []struct {
				alloc hw.Alloc
				cores int
				ways  int
			}{}
			if freeCores > 0 {
				a := cur
				a.Cores++
				candidates = append(candidates, struct {
					alloc hw.Alloc
					cores int
					ways  int
				}{a, 1, 0})
			}
			if freeWays > 0 {
				a := cur
				a.LLCWays++
				candidates = append(candidates, struct {
					alloc hw.Alloc
					cores int
					ways  int
				}{a, 0, 1})
			}
			if lvl := spec.LevelOfFreq(cur.Freq); lvl < maxLvl {
				a := cur
				a.Freq = spec.FreqAtLevel(lvl + 1)
				candidates = append(candidates, struct {
					alloc hw.Alloc
					cores int
					ways  int
				}{a, 0, 0})
			}
			for _, cand := range candidates {
				try := p.Clone()
				try[j] = cand.alloc
				if s.TotalPowerW(try, qps) > budget {
					continue
				}
				gain := s.BE[j].Throughput(cand.alloc) - base
				if gain <= 0 {
					continue
				}
				if best == nil || gain > best.gain {
					best = &move{app: j, alloc: cand.alloc, cores: cand.cores, ways: cand.ways, gain: gain}
				}
			}
		}
		if best == nil {
			break
		}
		p[best.app] = best.alloc
		freeCores -= best.cores
		freeWays -= best.ways
	}
	return p, ok
}

func (s *Searcher) minCores(m *models.LSModels, qps float64, maxCores, ways int) int {
	if maxCores < 1 {
		return -1
	}
	ok := func(c int) bool {
		return m.QoSOK(hw.Alloc{Cores: c, Freq: s.Spec.FreqMax, LLCWays: ways}, qps)
	}
	if !ok(maxCores) {
		return -1
	}
	lo, hi := 1, maxCores
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

func (s *Searcher) minWays(m *models.LSModels, qps float64, c, flvl, maxWays int) int {
	if maxWays < 1 {
		return -1
	}
	f := s.Spec.FreqAtLevel(flvl)
	ok := func(l int) bool {
		return m.QoSOK(hw.Alloc{Cores: c, Freq: f, LLCWays: l}, qps)
	}
	if !ok(maxWays) {
		return -1
	}
	lo, hi := 1, maxWays
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

func (s *Searcher) minFreq(m *models.LSModels, qps float64, c, l int) int {
	maxLvl := s.Spec.NumFreqLevels() - 1
	ok := func(lvl int) bool {
		return m.QoSOK(hw.Alloc{Cores: c, Freq: s.Spec.FreqAtLevel(lvl), LLCWays: l}, qps)
	}
	if !ok(maxLvl) {
		return -1
	}
	lo, hi := 0, maxLvl
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}
