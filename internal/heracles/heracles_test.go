package heracles

import (
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func TestGrowthOnHighSlackGuardedByPower(t *testing.T) {
	spec := hw.DefaultSpec()
	c := New(spec, 100)
	c.GrowEvery = 1 // test the growth step itself, not the pacing
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 10, Freq: 2.2, LLCWays: 10},
		BE: hw.Alloc{Cores: 10, Freq: 1.4, LLCWays: 10},
	}
	// Lots of slack, power well below guard: BE grows and speeds up.
	obs := control.Observation{
		P95: 0.001, Target: 0.010, Power: 80, Budget: 100, Config: cfg,
	}
	next := c.Decide(obs)
	if next.BE.Cores <= cfg.BE.Cores {
		t.Error("BE did not gain a core")
	}
	if next.BE.Freq <= cfg.BE.Freq {
		t.Error("BE frequency did not rise despite power headroom")
	}
	// Same slack but power just under the cap: frequency must not rise.
	obs.Power = 97
	obs.Config = cfg
	next = c.Decide(obs)
	if next.BE.Freq > cfg.BE.Freq {
		t.Error("BE frequency rose inside the power guard band")
	}
}

func TestLatencyDangerClawsBack(t *testing.T) {
	spec := hw.DefaultSpec()
	c := New(spec, 100)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 2.2, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.8, LLCWays: 12},
	}
	obs := control.Observation{
		P95: 0.0099, Target: 0.010, Power: 90, Budget: 100, Config: cfg,
	}
	next := c.Decide(obs)
	if next.BE.Cores >= cfg.BE.Cores || next.BE.LLCWays >= cfg.BE.LLCWays {
		t.Errorf("Heracles did not claw back: %v -> %v", cfg, next)
	}
	if next.BE.Freq >= cfg.BE.Freq {
		t.Error("Heracles did not throttle the BE side")
	}
}

func TestOverloadThrottlesHard(t *testing.T) {
	spec := hw.DefaultSpec()
	c := New(spec, 100)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 2.2, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
	}
	obs := control.Observation{
		P95: 0.005, Target: 0.010, Power: 110, Budget: 100, Config: cfg,
	}
	next := c.Decide(obs)
	lvlBefore := spec.LevelOfFreq(cfg.BE.Freq)
	lvlAfter := spec.LevelOfFreq(next.BE.Freq)
	if lvlBefore-lvlAfter != 2 {
		t.Errorf("expected a two-level throttle, got %d", lvlBefore-lvlAfter)
	}
}

func TestHeraclesEndToEnd(t *testing.T) {
	ls, be := workload.Memcached(), workload.Swaptions()
	node := sim.NewNode(ls, be, 33)
	budget := sim.LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls)
	ctrl := New(node.Spec, budget)
	if err := node.Apply(hw.SoloLS(node.Spec)); err != nil {
		t.Fatal(err)
	}
	r := sim.Runner{
		Node: node, Ctrl: ctrl, Budget: budget,
		Trace: workload.Triangle(0.2, 0.8, 300), DurationS: 300,
	}
	res := r.Run()
	if res.QoSRate < 0.90 {
		t.Errorf("Heracles QoS rate %v collapsed", res.QoSRate)
	}
	if res.NormBEThroughput <= 0.02 {
		t.Errorf("Heracles starved the BE application: %v", res.NormBEThroughput)
	}
	if res.Controller != "heracles" {
		t.Errorf("controller name %q", res.Controller)
	}
}
