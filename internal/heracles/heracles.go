// Package heracles implements a Heracles-style baseline controller (Lo et
// al., ISCA'15), the other feedback system Table I situates Sturgeon
// against. Heracles grows the best-effort allocation only while the LS
// service has ample latency slack, disables growth and claws resources
// back on low slack, and uses BE DVFS as its fast power actuator so the
// node keeps "sufficient power slack" for the LS service — the strategy
// §I notes can leave BE throughput on the table.
package heracles

import (
	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// Controller is the Heracles-style policy.
type Controller struct {
	Spec   hw.Spec
	Budget power.Watts
	// Alpha and Beta are the slack bounds (defaults 0.10/0.20).
	Alpha, Beta float64
	// PowerGuard is the budget fraction above which BE frequency stops
	// rising (default 0.92) — the "power slack" Heracles preserves.
	PowerGuard float64
	// GrowEvery is the interval count between BE growth steps (default
	// 4): Heracles grows the best-effort side conservatively, far slower
	// than it claws back.
	GrowEvery int

	cooldown int
	tick     int
}

// New builds the baseline controller.
func New(spec hw.Spec, budget power.Watts) *Controller {
	return &Controller{Spec: spec, Budget: budget, Alpha: 0.10, Beta: 0.20, PowerGuard: 0.92}
}

// Name identifies the policy.
func (c *Controller) Name() string { return "heracles" }

// Decide performs one interval's decision.
func (c *Controller) Decide(obs control.Observation) hw.Config {
	cfg := obs.Config
	maxLvl := c.Spec.NumFreqLevels() - 1
	beLvl := c.Spec.LevelOfFreq(cfg.BE.Freq)

	// Fast power controller: overload throttles BE hard (two levels).
	if obs.Overloaded() {
		cfg.BE.Freq = c.Spec.FreqAtLevel(max(0, beLvl-2))
		return cfg
	}

	c.tick++
	grow := c.GrowEvery
	if grow <= 0 {
		grow = 4
	}
	slack := obs.Slack()
	switch {
	case slack < c.Alpha:
		c.cooldown = 8
		// Latency danger: claw back cores and cache from the BE side and
		// throttle it. Heracles is deliberately aggressive here — BE
		// growth is strictly subordinate to LS latency.
		next := cfg
		if next.BE.Cores > 1 {
			take := min(2, next.BE.Cores-1)
			next.BE.Cores -= take
			next.LS.Cores += take
		}
		if next.BE.LLCWays > 1 {
			take := min(2, next.BE.LLCWays-1)
			next.BE.LLCWays -= take
			next.LS.LLCWays += take
		}
		next.BE.Freq = c.Spec.FreqAtLevel(max(0, beLvl-1))
		if next.Validate(c.Spec) != nil {
			return cfg
		}
		return next

	case slack > c.Beta:
		// Ample slack: grow the BE allocation one unit at a time — but
		// only once the post-violation cooldown has expired and on the
		// conservative growth period — raising its frequency only while
		// power stays under the guard band.
		if c.cooldown > 0 {
			c.cooldown--
			return cfg
		}
		if c.tick%grow != 0 {
			return cfg
		}
		next := cfg
		if next.LS.Cores > 1 {
			next.LS.Cores--
			next.BE.Cores++
		}
		if next.LS.LLCWays > 1 {
			next.LS.LLCWays--
			next.BE.LLCWays++
		}
		if float64(obs.Power) < c.PowerGuard*float64(c.Budget) && beLvl < maxLvl {
			next.BE.Freq = c.Spec.FreqAtLevel(beLvl + 1)
		}
		if next.Validate(c.Spec) != nil {
			return cfg
		}
		return next

	default:
		return cfg
	}
}
