// Package jsonio is the shared schema-validating JSON persistence layer.
// Three subsystems grew their own copy of the same pattern — the bench
// report (internal/bench), the predictor manifest (internal/models) and
// the model envelope (internal/mlkit) — and the fleet coordinator's wire
// encoding would have been a fourth. The pattern is always: a value is
// validated before it is encoded (an invalid document is never written)
// and immediately after it is decoded (an invalid document is never
// accepted), with indented, newline-terminated JSON on disk so fixtures
// diff cleanly.
package jsonio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Validator is implemented by documents that carry schema invariants.
// Both Encode and Decode call it, so a malformed document can neither
// enter nor leave the JSON form.
type Validator interface {
	Validate() error
}

// validate runs v's own Validate when it has one.
func validate(v interface{}) error {
	if val, ok := v.(Validator); ok {
		return val.Validate()
	}
	return nil
}

// Marshal validates v (when it is a Validator) and renders it as
// indented JSON with a trailing newline.
func Marshal(v interface{}) ([]byte, error) {
	if err := validate(v); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Unmarshal parses data into v and then validates it.
func Unmarshal(data []byte, v interface{}) error {
	if err := json.Unmarshal(data, v); err != nil {
		return err
	}
	return validate(v)
}

// Encode writes Marshal's output to w — the streaming form used by the
// coordinator's HTTP transport.
func Encode(w io.Writer, v interface{}) error {
	data, err := Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Decode reads all of r into v and validates it. The reader is consumed
// fully; trailing garbage after the document is an error.
func Decode(r io.Reader, v interface{}) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("jsonio: trailing data after document")
	}
	return validate(v)
}

// WriteFile validates v and writes it to path as indented JSON.
func WriteFile(path string, v interface{}) error {
	data, err := Marshal(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile parses and validates a document written by WriteFile.
func ReadFile(path string, v interface{}) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := Unmarshal(data, v); err != nil {
		return fmt.Errorf("jsonio: parsing %s: %w", path, err)
	}
	return nil
}
