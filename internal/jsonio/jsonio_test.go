package jsonio

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// doc is a minimal validating document for the round-trip tests.
type doc struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func (d *doc) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("doc without name")
	}
	if d.Count < 0 {
		return fmt.Errorf("doc count %d < 0", d.Count)
	}
	return nil
}

func TestMarshalValidatesAndTerminates(t *testing.T) {
	data, err := Marshal(&doc{Name: "a", Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("output not newline-terminated")
	}
	if !bytes.Contains(data, []byte("  \"name\"")) {
		t.Error("output not indented")
	}
	if _, err := Marshal(&doc{Count: 2}); err == nil {
		t.Error("invalid document marshalled")
	}
}

func TestUnmarshalValidates(t *testing.T) {
	var d doc
	if err := Unmarshal([]byte(`{"name":"x","count":-1}`), &d); err == nil {
		t.Error("invalid document accepted")
	}
	if err := Unmarshal([]byte(`{"name":"x","count":1}`), &d); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	var d doc
	err := Decode(strings.NewReader(`{"name":"x","count":1}{"again":true}`), &d)
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing garbage not rejected: %v", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.json")
	if err := WriteFile(path, &doc{Name: "fleet", Count: 8}); err != nil {
		t.Fatal(err)
	}
	var back doc
	if err := ReadFile(path, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "fleet" || back.Count != 8 {
		t.Errorf("round trip mutated document: %+v", back)
	}
	var wrongType struct {
		Name []int `json:"name"`
	}
	if err := ReadFile(path, &wrongType); err == nil || !strings.Contains(err.Error(), path) {
		t.Errorf("parse error does not name the file: %v", err)
	}
}

// TestNonValidatorPassesThrough pins that plain structs still encode —
// validation is opt-in via the Validator interface.
func TestNonValidatorPassesThrough(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, struct{ A int }{1}); err != nil {
		t.Fatal(err)
	}
	var out struct{ A int }
	if err := Decode(&buf, &out); err != nil || out.A != 1 {
		t.Fatalf("plain struct round trip: %v %+v", err, out)
	}
}
