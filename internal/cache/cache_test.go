package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMRCValidate(t *testing.T) {
	good := MRC{MPKI1: 20, MPKIInf: 2, HalfWays: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid MRC rejected: %v", err)
	}
	bad := []MRC{
		{MPKI1: 1, MPKIInf: 2, HalfWays: 4},
		{MPKI1: 5, MPKIInf: -1, HalfWays: 4},
		{MPKI1: 5, MPKIInf: 1, HalfWays: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad MRC %d accepted: %+v", i, m)
		}
	}
}

func TestMPKIEndpointsAndMonotonicity(t *testing.T) {
	m := MRC{MPKI1: 20, MPKIInf: 2, HalfWays: 4}
	if got := m.MPKI(1); math.Abs(got-20) > 1e-9 {
		t.Errorf("MPKI(1) = %v, want 20", got)
	}
	if got := m.MPKI(1000); math.Abs(got-2) > 1e-3 {
		t.Errorf("MPKI(inf) = %v, want ~2", got)
	}
	prev := math.Inf(1)
	for w := 1; w <= 20; w++ {
		cur := m.MPKI(w)
		if cur > prev {
			t.Fatalf("MPKI increased at %d ways: %v > %v", w, cur, prev)
		}
		if cur < m.MPKIInf {
			t.Fatalf("MPKI(%d)=%v below floor %v", w, cur, m.MPKIInf)
		}
		prev = cur
	}
	// Half-life property: excess misses halve every HalfWays ways.
	excess1 := m.MPKI(1) - m.MPKIInf
	excess5 := m.MPKI(5) - m.MPKIInf
	if math.Abs(excess5-excess1/2) > 1e-9 {
		t.Errorf("excess misses at 5 ways = %v, want %v", excess5, excess1/2)
	}
}

func TestMPKIZeroWaysBehavesLikeOne(t *testing.T) {
	m := MRC{MPKI1: 20, MPKIInf: 2, HalfWays: 4}
	if m.MPKI(0) != m.MPKI(1) || m.MPKI(-3) != m.MPKI(1) {
		t.Error("MPKI(<1) should clamp to one way")
	}
}

func TestMarginalMPKIDiminishing(t *testing.T) {
	m := MRC{MPKI1: 30, MPKIInf: 1, HalfWays: 3}
	prev := math.Inf(1)
	for w := 1; w < 19; w++ {
		gain := m.MarginalMPKI(w)
		if gain < 0 {
			t.Fatalf("negative marginal gain at %d ways", w)
		}
		if gain > prev {
			t.Fatalf("marginal gain not diminishing at %d ways: %v > %v", w, gain, prev)
		}
		prev = gain
	}
}

func TestCPIGrowsWithFrequencyWhenMemoryBound(t *testing.T) {
	c := CPIModel{CPIBase: 0.7, MissPenaltyNs: 70}
	lo := c.CPI(1.2, 10, 1)
	hi := c.CPI(2.2, 10, 1)
	if hi <= lo {
		t.Errorf("memory-bound CPI should rise with frequency: %v <= %v", hi, lo)
	}
	// With zero misses, CPI is frequency-independent.
	if c.CPI(1.2, 0, 1) != c.CPI(2.2, 0, 1) {
		t.Error("compute-bound CPI depends on frequency")
	}
}

func TestCPIContentionFloorsAtOne(t *testing.T) {
	c := CPIModel{CPIBase: 0.7, MissPenaltyNs: 70}
	if c.CPI(2.0, 5, 0.2) != c.CPI(2.0, 5, 1) {
		t.Error("contention below 1 not clamped")
	}
	if c.CPI(2.0, 5, 2) <= c.CPI(2.0, 5, 1) {
		t.Error("contention multiplier has no effect")
	}
}

func TestPerCoreRateSaturatesWithFrequency(t *testing.T) {
	// The key DVFS economics: instructions/sec per core = f/CPI(f). For a
	// memory-bound app the 1.2→2.2 GHz gain must be well below the 83 %
	// frequency gain; for a compute-bound app it must be the full 83 %.
	mem := CPIModel{CPIBase: 0.6, MissPenaltyNs: 70}
	cmp := CPIModel{CPIBase: 0.6, MissPenaltyNs: 70}
	memGain := (2.2 / mem.CPI(2.2, 12, 1)) / (1.2 / mem.CPI(1.2, 12, 1))
	cmpGain := (2.2 / cmp.CPI(2.2, 0.2, 1)) / (1.2 / cmp.CPI(1.2, 0.2, 1))
	if memGain >= cmpGain {
		t.Errorf("memory-bound frequency gain %v not below compute-bound %v", memGain, cmpGain)
	}
	if cmpGain < 1.7 {
		t.Errorf("compute-bound gain %v, want ≈1.83", cmpGain)
	}
	if memGain > 1.5 {
		t.Errorf("memory-bound gain %v, want clearly saturated", memGain)
	}
}

func TestBandwidthGBs(t *testing.T) {
	// 1e9 instr/s at 10 MPKI = 1e7 misses/s × 64 B = 0.64 GB/s.
	got := BandwidthGBs(1e9, 10)
	if math.Abs(got-0.64) > 1e-9 {
		t.Errorf("BandwidthGBs = %v, want 0.64", got)
	}
}

func TestBusContention(t *testing.T) {
	b := DefaultBus()
	if got := b.Contention(0); got != 1 {
		t.Errorf("idle bus contention = %v, want 1", got)
	}
	mid := b.Contention(b.PeakGBs * 0.5)
	high := b.Contention(b.PeakGBs * 0.9)
	if !(1 < mid && mid < high) {
		t.Errorf("contention not increasing: 1 < %v < %v expected", mid, high)
	}
	if got := b.Contention(b.PeakGBs * 2); got != 6 {
		t.Errorf("saturated contention = %v, want capped 6", got)
	}
	if got := b.Contention(-5); got != 1 {
		t.Errorf("negative demand contention = %v, want 1", got)
	}
}

func TestBusAchieved(t *testing.T) {
	b := MemBus{PeakGBs: 50}
	if got := b.Achieved(20); got != 20 {
		t.Errorf("Achieved(20) = %v", got)
	}
	if got := b.Achieved(80); got != 50 {
		t.Errorf("Achieved(80) = %v, want clipped 50", got)
	}
}

func TestContentionPropertyMonotone(t *testing.T) {
	b := DefaultBus()
	f := func(a, bb float64) bool {
		x := math.Abs(math.Mod(a, 120))
		y := math.Abs(math.Mod(bb, 120))
		if x > y {
			x, y = y, x
		}
		return b.Contention(x) <= b.Contention(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
