package control

import (
	"testing"

	"sturgeon/internal/power"
)

func lease(capW, floorW power.Watts, token int64, expiresAtS float64) Lease {
	return Lease{CapW: capW, FloorW: floorW, Token: token, ExpiresAtS: expiresAtS}
}

func TestLeaseTrackerZeroValue(t *testing.T) {
	var lt LeaseTracker
	if lt.Active() || lt.Degraded() || lt.Ratcheting(0) {
		t.Fatal("zero tracker claims state it cannot have")
	}
	if _, ok := lt.CapAt(10); ok {
		t.Fatal("zero tracker governs a cap before any lease")
	}
	if lt.Miss(5) {
		t.Fatal("a miss with no lease to degrade from began an episode")
	}
	if lt.DegradedSince() != 0 {
		t.Fatal("zero tracker reports a degraded start")
	}
}

func TestLeaseTrackerRenewAndStaleTokenRejection(t *testing.T) {
	var lt LeaseTracker
	if !lt.Renew(lease(110, 98, 5, 200)) {
		t.Fatal("first renewal rejected")
	}
	if w, ok := lt.CapAt(50); !ok || w != 110 {
		t.Fatalf("healthy cap = %v, %v; want 110, true", w, ok)
	}
	// An older token is a delayed duplicate from before a partition:
	// rejected, counted, and the held lease does not move.
	if lt.Renew(lease(200, 98, 4, 300)) {
		t.Fatal("stale token accepted")
	}
	if lt.StaleRejects() != 1 {
		t.Fatalf("stale rejects = %d, want 1", lt.StaleRejects())
	}
	if w, _ := lt.CapAt(50); w != 110 {
		t.Fatalf("rejected grant moved the cap to %v", w)
	}
	// An equal token is a benign re-delivery of the current grant.
	if !lt.Renew(lease(104, 98, 5, 250)) {
		t.Fatal("equal token rejected")
	}
	if w, _ := lt.CapAt(50); w != 104 {
		t.Fatalf("re-renewal did not apply: cap %v", w)
	}
}

func TestLeaseTrackerRatchetDescent(t *testing.T) {
	var lt LeaseTracker
	lt.Renew(lease(110, 98, 1, 200))
	if !lt.Miss(190) {
		t.Fatal("first miss did not begin the episode")
	}
	if lt.Miss(191) {
		t.Fatal("second miss began a second episode")
	}
	if got := lt.DegradedSince(); got != 190 {
		t.Fatalf("degraded since %v, want 190", got)
	}
	// Window = min(RatchetSteps=5, expiry−miss=10) = 5 s: a linear
	// 12 W descent lands exactly on the floor five seconds in.
	steps := []struct {
		t    float64
		want power.Watts
	}{
		{190, 110}, {191, 107.6}, {192, 105.2}, {193, 102.8}, {194, 100.4},
		{195, 98}, {197, 98}, {200, 98}, {1000, 98},
	}
	for _, s := range steps {
		if w, ok := lt.CapAt(s.t); !ok || !approxW(w, s.want) {
			t.Fatalf("CapAt(%v) = %v, want %v", s.t, w, s.want)
		}
	}
	if !lt.Ratcheting(194) || lt.Ratcheting(195) {
		t.Fatal("Ratcheting does not track the descent landing")
	}
	// Rejoin: a fresh renewal ends the episode and restores the cap.
	if !lt.Renew(lease(108, 98, 2, 260)) {
		t.Fatal("rejoin renewal rejected")
	}
	if lt.Degraded() || lt.DegradedSince() != 0 {
		t.Fatal("renewal did not clear degraded mode")
	}
	if w, _ := lt.CapAt(196); w != 108 {
		t.Fatalf("post-rejoin cap %v, want 108", w)
	}
}

func TestLeaseTrackerDescentClampedByExpiry(t *testing.T) {
	var lt LeaseTracker
	lt.Renew(lease(110, 98, 1, 200))
	lt.Miss(198) // only 2 s to the deadline: window shrinks below RatchetSteps
	if w, _ := lt.CapAt(199); !approxW(w, 104) {
		t.Fatalf("mid-descent cap %v, want 104 (half the 12 W drop in half the 2 s window)", w)
	}
	if w, _ := lt.CapAt(200); w != 98 {
		t.Fatalf("cap %v at expiry, want the floor", w)
	}

	// A miss after the deadline still lands instantly (window floor 1 s,
	// and t ≥ expiry returns the floor outright).
	var late LeaseTracker
	late.Renew(lease(110, 98, 1, 200))
	late.Miss(205)
	if w, _ := late.CapAt(205); w != 98 {
		t.Fatalf("past-expiry miss held %v, want the floor", w)
	}
}

func TestLeaseTrackerSubFloorLeaseHolds(t *testing.T) {
	// A lease already under the floor does not ascend: degraded mode
	// only ever ratchets down.
	var lt LeaseTracker
	lt.Renew(lease(90, 98, 1, 200))
	lt.Miss(150)
	for _, tt := range []float64{150, 151, 199, 200, 300} {
		if w, _ := lt.CapAt(tt); w != 90 {
			t.Fatalf("CapAt(%v) = %v, want the held 90 W", tt, w)
		}
	}
	if lt.Ratcheting(151) {
		t.Fatal("a sub-floor lease claims to be ratcheting")
	}
}

func TestLeaseTrackerCustomRatchetSteps(t *testing.T) {
	lt := LeaseTracker{RatchetSteps: 2}
	lt.Renew(lease(110, 98, 1, 300))
	lt.Miss(100)
	if w, _ := lt.CapAt(101); !approxW(w, 104) {
		t.Fatalf("custom 2-step descent at +1 s = %v, want 104", w)
	}
	if w, _ := lt.CapAt(102); w != 98 {
		t.Fatalf("custom 2-step descent at +2 s = %v, want the floor", w)
	}
}

func approxW(a, b power.Watts) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
