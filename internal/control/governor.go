package control

import (
	"math"

	"sturgeon/internal/hw"
	"sturgeon/internal/obs"
	"sturgeon/internal/power"
)

// CapSetter is implemented by controllers whose power budget can be
// re-granted at runtime — the node-side half of the fleet coordinator's
// contract (internal/coordinator). The cluster runtime calls SetBudget
// when a new grant lands; controllers that do not implement it simply
// keep their construction-time budget.
type CapSetter interface {
	SetBudget(w power.Watts)
}

// Governor is a model-free cap-tracking controller: a DVFS hill-climber
// that spends whatever watt headroom its cap leaves on best-effort
// frequency and converts QoS pressure into LS frequency, one step per
// interval. It exists for the fleet-coordination scenarios — unlike
// Static it responds to a re-granted cap within a few intervals, and
// unlike the full Sturgeon controller it needs no trained predictor, so
// seeded fleet tests stay cheap. Alpha/Beta reuse the Algorithm 1 slack
// band semantics.
type Governor struct {
	Spec hw.Spec
	// Cap is the node power cap currently granted.
	Cap power.Watts
	// Alpha and Beta bound the slack hysteresis band (defaults 0.10 and
	// 0.20). Headroom is the target draw as a fraction of Cap (default
	// 0.97): the governor stops raising frequency above it so meter noise
	// cannot tip the node over its cap. It is deliberately tighter than
	// the coordinator's ReserveFrac (0.05): a node pinned against its cap
	// settles inside the coordinator's reserve band and reads as a
	// requester, while a node whose workload saturates below the cap
	// leaves more than the reserve free and reads as a donor.
	Alpha, Beta, Headroom float64

	// Observability (nil = uninstrumented; see SetObs).
	obs       *obs.Sink
	adjustCtr *obs.Counter
	capGauge  *obs.Gauge
	slackGage *obs.Gauge
	powerGage *obs.Gauge
}

// NewGovernor builds a governor for the given spec and initial cap.
func NewGovernor(spec hw.Spec, cap power.Watts) *Governor {
	return &Governor{Spec: spec, Cap: cap}
}

// SetBudget implements CapSetter.
func (g *Governor) SetBudget(w power.Watts) {
	g.Cap = w
	g.capGauge.Set(float64(w))
}

// SetObs implements obs.Instrumentable. The per-node gauges resolve here
// once, so Decide pays only nil checks and atomic stores.
func (g *Governor) SetObs(sink *obs.Sink) {
	g.obs = sink
	g.adjustCtr = sink.NodeCounter("governor_adjustments_total")
	g.capGauge = sink.NodeGauge("node_cap_watts")
	g.slackGage = sink.NodeGauge("node_latency_slack")
	g.powerGage = sink.NodeGauge("node_power_watts")
	g.capGauge.Set(float64(g.Cap))
}

// Name implements Controller.
func (g *Governor) Name() string { return "governor" }

// Decide implements Controller: one frequency step per interval.
//
//	over cap            -> shed BE frequency hard (two levels)
//	slack < Alpha       -> raise LS frequency if headroom allows,
//	                       otherwise take the watts from BE
//	slack > Beta        -> spend headroom on BE frequency; with BE
//	                       already flat out, give LS's surplus back
//	in band             -> hold
func (g *Governor) Decide(ob Observation) hw.Config {
	alpha, beta := g.Alpha, g.Beta
	if alpha == 0 {
		alpha = 0.10
	}
	if beta == 0 {
		beta = 0.20
	}
	headroom := g.Headroom
	if headroom == 0 {
		headroom = 0.97
	}
	cfg := ob.Config
	draw := float64(ob.Power)
	cap := float64(g.Cap)
	slack := ob.Slack()
	if math.IsNaN(slack) || math.IsInf(slack, 0) {
		// Blind latency telemetry: only the power guard may act.
		slack = (alpha + beta) / 2
	}
	g.slackGage.Set(slack)
	g.powerGage.Set(draw)

	reason := ""
	switch {
	case draw > cap:
		// Overload: BE frequency is the one actuator guaranteed to cut
		// power without touching the LS service.
		cfg.BE.Freq = g.step(cfg.BE.Freq, -2)
		reason = "shed"
	case slack < alpha:
		if draw < headroom*cap {
			cfg.LS.Freq = g.step(cfg.LS.Freq, +1)
			reason = "ls_up"
		} else {
			// No watt headroom: shift it from the BE side.
			cfg.BE.Freq = g.step(cfg.BE.Freq, -1)
			reason = "be_down"
		}
	case slack > beta:
		if draw < headroom*cap && cfg.BE.Freq < g.Spec.FreqMax {
			cfg.BE.Freq = g.step(cfg.BE.Freq, +1)
			reason = "be_up"
		} else if draw >= headroom*cap && cfg.LS.Freq > g.Spec.FreqMin {
			// Cap-constrained with surplus LS speed: harvest a level so the
			// watts can go to BE instead. With headroom to spare and BE
			// already flat out, hold — the unused watts are the coordinator's
			// to re-grant, not worth a QoS gamble here.
			cfg.LS.Freq = g.step(cfg.LS.Freq, -1)
			reason = "ls_harvest"
		}
	}
	if cfg != ob.Config {
		g.adjustCtr.Inc()
		if g.obs.Active() {
			g.obs.Emit(obs.Event{T: ob.Time, Type: obs.EventGovernorAdjust, Reason: reason})
		}
		// The span chains under the sink's context (a cap grant or
		// migration the cluster parked there); it fires only on the
		// non-hold branch, so the event engine's steady replay — which
		// skips held Decide calls entirely — never loses one.
		g.obs.Span(obs.Span{Kind: obs.SpanGovernorAdjust, Reason: reason,
			Start: ob.Time, End: ob.Time, Value: float64(ob.Budget)})
	}
	return cfg
}

// governorKey is the comparable identity of a governor's decision
// function: Decide reads nothing else. Observability handles are
// deliberately absent — the gauge Sets in Decide are idempotent for
// bit-equal observations and the adjust counter/event only fire on the
// non-hold branches, so replaying or sharing a *held* decision is
// invisible to the journal and metrics.
type governorKey struct {
	Spec                  hw.Spec
	Cap                   power.Watts
	Alpha, Beta, Headroom float64
}

// SteadyKey implements Steady. The key embeds the current Cap, so a
// coordinator re-grant (SetBudget) changes the key and breaks any
// sharing that assumed the old cap.
func (g *Governor) SteadyKey() (any, bool) {
	return governorKey{Spec: g.Spec, Cap: g.Cap, Alpha: g.Alpha, Beta: g.Beta, Headroom: g.Headroom}, true
}

// step moves a frequency n grid levels, clamped to the spec's range.
func (g *Governor) step(f hw.GHz, n int) hw.GHz {
	lvl := g.Spec.LevelOfFreq(f) + n
	if lvl < 0 {
		lvl = 0
	}
	if maxLvl := g.Spec.NumFreqLevels() - 1; lvl > maxLvl {
		lvl = maxLvl
	}
	return g.Spec.FreqAtLevel(lvl)
}
