package control

import (
	"math"
	"testing"

	"sturgeon/internal/hw"
)

func TestSlack(t *testing.T) {
	obs := Observation{P95: 0.008, Target: 0.010}
	if got := obs.Slack(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Slack = %v, want 0.2", got)
	}
	violated := Observation{P95: 0.012, Target: 0.010}
	if got := violated.Slack(); got >= 0 {
		t.Errorf("violated slack = %v, want negative", got)
	}
	if got := (Observation{}).Slack(); got != 0 {
		t.Errorf("zero-target slack = %v, want 0", got)
	}
}

func TestOverloaded(t *testing.T) {
	if (Observation{Power: 90, Budget: 100}).Overloaded() {
		t.Error("under-budget flagged as overloaded")
	}
	if !(Observation{Power: 110, Budget: 100}).Overloaded() {
		t.Error("over-budget not flagged")
	}
}

func TestStatic(t *testing.T) {
	cfg := hw.Config{LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6}}
	s := Static{Cfg: cfg}
	if s.Name() != "static" {
		t.Errorf("Name = %q", s.Name())
	}
	if got := s.Decide(Observation{}); got != cfg {
		t.Errorf("Decide = %v, want %v", got, cfg)
	}
	labeled := Static{Cfg: cfg, Label: "solo-ls"}
	if labeled.Name() != "solo-ls" {
		t.Errorf("Name = %q, want solo-ls", labeled.Name())
	}
}

func TestSteadyKeys(t *testing.T) {
	spec := hw.DefaultSpec()
	ga := NewGovernor(spec, 100)
	gb := NewGovernor(spec, 100)
	ka, ok := ga.SteadyKey()
	if !ok {
		t.Fatal("governor must opt into Steady")
	}
	kb, _ := gb.SteadyKey()
	if ka != kb {
		t.Fatal("identically configured governors must share a steady key")
	}
	gb.SetBudget(110)
	if kb, _ = gb.SteadyKey(); ka == kb {
		t.Fatal("a re-granted cap must change the steady key")
	}

	cfg := hw.SoloLS(spec)
	ks, ok := Static{Cfg: cfg}.SteadyKey()
	if !ok || ks != any(cfg) {
		t.Fatalf("Static steady key = %v, want its config", ks)
	}

	// The cluster engine type-asserts through the Controller interface.
	var c Controller = ga
	if _, isSteady := c.(Steady); !isSteady {
		t.Fatal("Governor must satisfy Steady through Controller")
	}
}
