// Package control defines the contract between resource-management
// controllers (Sturgeon, PARTIES, Heracles-style baselines) and the node
// they manage. Controllers see per-interval observations — measured tail
// latency, load, power, best-effort throughput — and answer with the
// resource configuration to apply next, exactly the 1 s feedback loop of
// the paper's Algorithm 1.
//
// Keeping this contract in its own package lets controllers stay
// independent of the node implementation: the same controller drives the
// simulator substrate here and could drive a real cgroups/CAT/RAPL
// actuator.
package control

import (
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// Observation is one interval's telemetry, as visible to a controller.
// Ground-truth fields of the simulator are deliberately absent: a
// controller sees only what real telemetry would expose.
type Observation struct {
	// Time is the interval end time in seconds since the run began.
	Time float64
	// QPS is the measured load of the LS service.
	QPS float64
	// P95 is the measured 95 %-ile latency (seconds) of the LS service
	// over the interval.
	P95 float64
	// Target is the QoS target (seconds).
	Target float64
	// Power is the RAPL-measured node power over the interval.
	Power power.Watts
	// Budget is the node power cap.
	Budget power.Watts
	// BEThroughput is the measured best-effort progress (units/s).
	BEThroughput float64
	// Config is the configuration that was in force during the interval.
	Config hw.Config
}

// Slack returns the paper's control signal (target − latency)/target.
// Negative slack means the QoS target is violated.
func (o Observation) Slack() float64 {
	if o.Target <= 0 {
		return 0
	}
	return (o.Target - o.P95) / o.Target
}

// Overloaded reports whether measured power exceeds the budget.
func (o Observation) Overloaded() bool {
	return o.Power > o.Budget
}

// Controller decides the next resource configuration from an observation.
type Controller interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Decide returns the configuration to apply for the next interval.
	// Returning the observation's config unchanged means "hold".
	Decide(obs Observation) hw.Config
}

// Steady is implemented by controllers whose Decide is a pure function
// of the observation and of a comparable key: two controllers with
// equal keys given bit-equal observations return bit-equal decisions
// and leave no other trace (internal state, rng draws) behind. The
// event-driven cluster engine relies on this in two ways — a held
// decision (Decide returned the observation's config) may be replayed
// across skipped intervals, and nodes whose controllers share a key may
// share one representative Decide call. Controllers with internal
// integrators or learned state must not implement Steady (ok=false is
// also a valid opt-out for individual instances).
type Steady interface {
	SteadyKey() (key any, ok bool)
}

// Static is a trivial controller that always applies a fixed
// configuration — useful as an experimental control and for solo runs.
type Static struct {
	Cfg   hw.Config
	Label string
}

// Name returns the label, or "static" when unset.
func (s Static) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "static"
}

// Decide always returns the fixed configuration.
func (s Static) Decide(Observation) hw.Config { return s.Cfg }

// SteadyKey implements Steady: Decide depends only on the fixed config.
func (s Static) SteadyKey() (any, bool) { return s.Cfg, true }
