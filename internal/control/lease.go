package control

import "sturgeon/internal/power"

// Node-side half of the coordinator's fenced cap leases. A grant is no
// longer a cap the node may ride forever: it is a lease with a fencing
// token and an expiry in simulated seconds. While renewals keep
// arriving the tracker is pass-through; when a renewal is missed the
// node enters autonomous degraded mode and ratchets its effective cap
// down toward the lease floor over a configurable number of governor
// intervals — reaching the floor no later than the lease expiry, which
// is exactly when the coordinator reclaims the same watts into its
// pool. Rejoin is a normal renewal: a grant carrying a token at least
// as new as the last accepted one re-syncs the node; anything older is
// a delayed duplicate from before the partition and is rejected.

// Lease is one fenced cap grant as seen by a node.
type Lease struct {
	// CapW is the granted cap; FloorW the safe floor degraded mode
	// descends toward (never above CapW in effect: a sub-floor grant
	// simply holds).
	CapW   power.Watts
	FloorW power.Watts
	// Token is the per-node fencing token — strictly increasing across
	// the coordinator's applied reports, so a stale grant is detectable.
	Token int64
	// ExpiresAtS is the lease deadline in simulated seconds: the moment
	// the coordinator may reclaim the lease, and the latest moment the
	// ratchet lands on the floor.
	ExpiresAtS float64
}

// DefaultRatchetSteps is the degraded-mode descent length (in governor
// intervals) used when LeaseTracker.RatchetSteps is unset.
const DefaultRatchetSteps = 5

// LeaseTracker tracks one node's current lease and degraded-mode
// state. The zero value is ready: no lease yet, not degraded.
type LeaseTracker struct {
	// RatchetSteps is how many governor intervals (simulated seconds)
	// the degraded ratchet spreads the descent over. The effective
	// window is never longer than the time left to expiry, so the floor
	// is always reached by the deadline. Default DefaultRatchetSteps.
	RatchetSteps int

	lease        Lease
	haveLease    bool
	degraded     bool
	missT        float64
	staleRejects int
}

// Active reports whether the node holds a lease at all (i.e., has ever
// accepted a grant).
func (lt *LeaseTracker) Active() bool { return lt.haveLease }

// Degraded reports whether the node is in autonomous degraded mode.
func (lt *LeaseTracker) Degraded() bool { return lt.degraded }

// Lease returns the last accepted lease (zero before the first Renew).
func (lt *LeaseTracker) Lease() Lease { return lt.lease }

// StaleRejects returns how many grants were rejected for carrying an
// out-of-date fencing token.
func (lt *LeaseTracker) StaleRejects() int { return lt.staleRejects }

// DegradedSince returns the simulated second the current degraded
// episode began (0 while healthy) — the start edge of the degraded
// span a rejoin closes.
func (lt *LeaseTracker) DegradedSince() float64 {
	if !lt.degraded {
		return 0
	}
	return lt.missT
}

// Renew offers a fresh lease. A token older than the last accepted one
// is a delayed duplicate from before a partition: it is rejected and
// counted, and the tracker's state does not change. An accepted lease
// ends any degraded episode.
func (lt *LeaseTracker) Renew(l Lease) bool {
	if lt.haveLease && l.Token < lt.lease.Token {
		lt.staleRejects++
		return false
	}
	lt.lease = l
	lt.haveLease = true
	lt.degraded = false
	return true
}

// Miss records a failed renewal at simulated second t and reports
// whether this miss begins a degraded episode (false while already
// degraded, or before any lease exists to degrade from).
func (lt *LeaseTracker) Miss(t float64) bool {
	if !lt.haveLease || lt.degraded {
		return false
	}
	lt.degraded = true
	lt.missT = t
	return true
}

// floorW is the descent target: the floor, except a lease already at
// or under it simply holds.
func (lt *LeaseTracker) floorW() power.Watts {
	if lt.lease.CapW < lt.lease.FloorW {
		return lt.lease.CapW
	}
	return lt.lease.FloorW
}

// CapAt returns the effective cap at simulated second t and whether a
// lease governs the node at all (false before the first grant, when
// the caller's static cap stands). While healthy the effective cap is
// the leased cap; while degraded it descends linearly from the leased
// cap to the floor over min(RatchetSteps, time-to-expiry) seconds and
// is exactly the floor at and after the lease expiry.
func (lt *LeaseTracker) CapAt(t float64) (power.Watts, bool) {
	if !lt.haveLease {
		return 0, false
	}
	if !lt.degraded {
		return lt.lease.CapW, true
	}
	target := lt.floorW()
	if t >= lt.lease.ExpiresAtS {
		return target, true
	}
	steps := lt.RatchetSteps
	if steps <= 0 {
		steps = DefaultRatchetSteps
	}
	window := lt.lease.ExpiresAtS - lt.missT
	if w := float64(steps); w < window {
		window = w
	}
	if window < 1 {
		window = 1
	}
	frac := (t - lt.missT) / window
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return lt.lease.CapW - power.Watts(frac)*(lt.lease.CapW-target), true
}

// Ratcheting reports whether the effective cap is still moving at
// second t — true while a degraded node's descent has not yet landed
// on its target. The event engine schedules per-second lease wake-ups
// exactly while this holds, so a quiescent node still degrades on
// time.
func (lt *LeaseTracker) Ratcheting(t float64) bool {
	if !lt.haveLease || !lt.degraded {
		return false
	}
	cap, _ := lt.CapAt(t)
	return cap > lt.floorW()
}
