package bench

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// tinyOptions keeps the matrix small enough for unit tests while still
// covering serial vs pooled, chaos on/off and both policies.
func tinyOptions() Options {
	return Options{
		FleetSizes:   []int{3},
		Parallelisms: []int{1, 4},
		DurationS:    12,
		Policies:     []string{"round-robin", "least-loaded"},
		FaultSpecs:   []string{"clean", "default"},
		Seed:         7,
	}
}

func TestExecuteDeterministicAndValid(t *testing.T) {
	rep, err := Execute(tinyOptions())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !rep.Deterministic {
		t.Fatal("seeded replay diverged across parallelism levels")
	}
	// 1 fleet size × 2 fault specs × 2 policies × 2 parallelism levels.
	if len(rep.Runs) != 8 {
		t.Fatalf("got %d runs, want 8", len(rep.Runs))
	}
	if err := Validate(rep); err != nil {
		t.Fatalf("fresh report fails validation: %v", err)
	}
	for _, r := range rep.Runs {
		if r.Parallelism == 1 && r.SpeedupVsSerial != 1 {
			t.Errorf("%s: serial speedup %v, want 1", r.Scenario, r.SpeedupVsSerial)
		}
	}
}

func TestReportRoundTripsThroughJSON(t *testing.T) {
	rep, err := Execute(Options{
		FleetSizes:   []int{2},
		Parallelisms: []int{2},
		DurationS:    8,
		Policies:     []string{"round-robin"},
		FaultSpecs:   []string{"clean"},
		Seed:         3,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("report did not round-trip:\nwrote %+v\nread  %+v", rep, got)
	}
}

// validReport builds a minimal report that passes Validate, for the
// rejection table to corrupt one field at a time.
func validReport() *Report {
	return &Report{
		Schema:     Schema,
		GoVersion:  "go1.22",
		GOMAXPROCS: 2,
		NumCPU:     2,
		Repeats:    1,
		Runs: []Run{{
			Scenario:        "fleet3-round-robin-clean",
			Nodes:           3,
			Parallelism:     1,
			WallSeconds:     0.5,
			NodeStepsPerSec: 72,
			AllocMiB:        1.5,
			AllocObjects:    1000,
			QoSRate:         0.99,
			BEThroughputUPS: 40,
			SummarySHA256:   strings.Repeat("ab", 32),
			SpeedupVsSerial: 1,
		}},
		Deterministic: true,
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Report)
		wantErr string
	}{
		{"nan steps per sec", func(r *Report) { r.Runs[0].NodeStepsPerSec = math.NaN() }, "steps/sec"},
		{"negative steps per sec", func(r *Report) { r.Runs[0].NodeStepsPerSec = -12 }, "steps/sec"},
		{"zero steps per sec", func(r *Report) { r.Runs[0].NodeStepsPerSec = 0 }, "steps/sec"},
		{"inf steps per sec", func(r *Report) { r.Runs[0].NodeStepsPerSec = math.Inf(1) }, "steps/sec"},
		{"negative wall", func(r *Report) { r.Runs[0].WallSeconds = -1 }, "wall time"},
		{"qos above one", func(r *Report) { r.Runs[0].QoSRate = 1.2 }, "QoS"},
		{"nan qos", func(r *Report) { r.Runs[0].QoSRate = math.NaN() }, "QoS"},
		{"negative throughput", func(r *Report) { r.Runs[0].BEThroughputUPS = -4 }, "throughput"},
		{"negative speedup", func(r *Report) { r.Runs[0].SpeedupVsSerial = -1 }, "speedup"},
		{"wrong schema", func(r *Report) { r.Schema = "bogus/v0" }, "schema"},
		{"no runs", func(r *Report) { r.Runs = nil }, "no runs"},
		{"zero nodes", func(r *Report) { r.Runs[0].Nodes = 0 }, "out of range"},
		{"zero parallelism", func(r *Report) { r.Runs[0].Parallelism = 0 }, "out of range"},
		{"bad hash", func(r *Report) { r.Runs[0].SummarySHA256 = "abc" }, "hash"},
		{"empty scenario", func(r *Report) { r.Runs[0].Scenario = "" }, "scenario"},
		{"implausible host", func(r *Report) { r.GOMAXPROCS = 0 }, "host"},
		{"zero repeats", func(r *Report) { r.Repeats = 0 }, "repeats"},
	}
	if err := Validate(validReport()); err != nil {
		t.Fatalf("baseline report must validate: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := validReport()
			tc.corrupt(rep)
			err := Validate(rep)
			if err == nil {
				t.Fatalf("corruption %q passed validation", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadBothSchemaVersions pins the v1→v2 migration contract: a v2
// reader must accept checked-in v1 reports (no allocs_per_step field)
// and v2 reports alike, and reject anything else.
func TestReadBothSchemaVersions(t *testing.T) {
	v2 := validReport()
	v2.Runs[0].AllocsPerStep = 2.5
	path := filepath.Join(t.TempDir(), "v2.json")
	if err := WriteFile(path, v2); err != nil {
		t.Fatalf("WriteFile v2: %v", err)
	}
	if got, err := ReadFile(path); err != nil || got.Runs[0].AllocsPerStep != 2.5 {
		t.Fatalf("v2 round-trip: err %v, allocs_per_step %v", err, got.Runs[0].AllocsPerStep)
	}

	v1 := validReport()
	v1.Schema = SchemaV1
	if err := Validate(v1); err != nil {
		t.Fatalf("legacy v1 schema rejected: %v", err)
	}
	// A checked-in v1 document has no allocs_per_step key at all; the
	// decoded zero value must validate.
	raw := []byte(`{
	  "schema": "sturgeon/bench-fleet/v1",
	  "go_version": "go1.22", "gomaxprocs": 2, "num_cpu": 2, "repeats": 1,
	  "runs": [{
	    "scenario": "fleet3-round-robin-clean", "nodes": 3, "parallelism": 1,
	    "wall_seconds": 0.5, "node_steps_per_sec": 72,
	    "alloc_mib": 1.5, "alloc_objects": 1000,
	    "qos_rate": 0.99, "be_throughput_ups": 40,
	    "summary_sha256": "` + strings.Repeat("ab", 32) + `",
	    "speedup_vs_serial": 1
	  }],
	  "deterministic": true
	}`)
	v1path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(v1path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(v1path)
	if err != nil {
		t.Fatalf("v1 document rejected: %v", err)
	}
	if got.Schema != SchemaV1 || got.Runs[0].AllocsPerStep != 0 {
		t.Fatalf("v1 decode: schema %q allocs_per_step %v", got.Schema, got.Runs[0].AllocsPerStep)
	}
}

// TestFasterRunKeepsWholeRepetition pins the best-of-N contract: the
// selected repetition's wall time and allocation figures travel
// together.
func TestFasterRunKeepsWholeRepetition(t *testing.T) {
	slow := Run{WallSeconds: 2, AllocObjects: 10, AllocsPerStep: 0.1}
	fast := Run{WallSeconds: 1, AllocObjects: 999, AllocsPerStep: 9.9}
	got := fasterRun(slow, fast)
	if got.WallSeconds != 1 || got.AllocObjects != 999 || got.AllocsPerStep != 9.9 {
		t.Fatalf("fasterRun mixed repetitions: %+v", got)
	}
	if got := fasterRun(fast, slow); got.WallSeconds != 1 {
		t.Fatalf("fasterRun not symmetric: %+v", got)
	}
}

// TestWriteFileRefusesInvalid ensures a poisoned report can never reach
// disk — the writer runs the same gate as the reader.
func TestWriteFileRefusesInvalid(t *testing.T) {
	rep := validReport()
	rep.Runs[0].NodeStepsPerSec = math.NaN()
	if err := WriteFile(filepath.Join(t.TempDir(), "x.json"), rep); err == nil {
		t.Fatal("WriteFile accepted NaN steps/sec")
	}
}

func TestMatrixSeedsAreDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, sc := range Matrix(DefaultOptions()) {
		if sc.Coord != "" || sc.Placement != "" {
			// The coordination and placement pairs deliberately share one
			// seed each: identical fleet physics, differing only in who sets
			// the caps (respectively who pairs the jobs).
			continue
		}
		if prev, dup := seen[sc.Seed]; dup {
			t.Fatalf("scenarios %s and %s share seed %d", prev, sc.Name, sc.Seed)
		}
		seen[sc.Seed] = sc.Name
	}
}

// TestPartitionWinGate runs the pinned coordpartition8 stale-cap vs
// leased pair end to end (serial plus one pooled level) and requires
// Execute to enforce the acceptance gate: fenced leases with the
// degraded-mode ratchet must end the partitioned run with at least the
// best-effort throughput of freezing the last grant, with the attached
// budget invariant checker clean on both arms (a violated run never
// reaches the report — measureOnce fails it).
func TestPartitionWinGate(t *testing.T) {
	if testing.Short() {
		t.Skip("480 s partition pair is not a -short test")
	}
	rep, err := Execute(Options{
		Parallelisms: []int{1, 4},
		Seed:         DefaultOptions().Seed,
		Repeats:      1,
		Partition:    true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !rep.Deterministic {
		t.Fatal("partitioned replay diverged across parallelism levels")
	}
	stale, leased := PartitionPair()
	var s, l *Run
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Parallelism != 1 {
			continue
		}
		switch r.Scenario {
		case stale.Name:
			s = r
		case leased.Name:
			l = r
		}
	}
	if s == nil || l == nil {
		t.Fatalf("pair missing from report: %+v", rep.Runs)
	}
	t.Logf("stale: qos %.6f be %.2f | leased: qos %.6f be %.2f",
		s.QoSRate, s.BEThroughputUPS, l.QoSRate, l.BEThroughputUPS)
	if l.BEThroughputUPS < s.BEThroughputUPS {
		t.Fatal("partition win gate should have failed Execute, but Execute returned nil error")
	}
}

// TestCoordinationWinGate runs the pinned even-split vs coordinated pair
// end to end (serial plus one pooled level) and requires Execute to
// enforce the acceptance gate: the coordinated fleet — chaos plan and
// all — must beat the even split on best-effort throughput without
// giving up QoS.
func TestCoordinationWinGate(t *testing.T) {
	if testing.Short() {
		t.Skip("480 s coordination pair is not a -short test")
	}
	rep, err := Execute(Options{
		Parallelisms: []int{1, 4},
		Seed:         DefaultOptions().Seed,
		Repeats:      1,
		Coordination: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !rep.Deterministic {
		t.Fatal("coordinated replay diverged across parallelism levels")
	}
	even, granted := CoordPair(0)
	var e, g *Run
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Parallelism != 1 {
			continue
		}
		switch r.Scenario {
		case even.Name:
			e = r
		case granted.Name:
			g = r
		}
	}
	if e == nil || g == nil {
		t.Fatalf("pair missing from report: %+v", rep.Runs)
	}
	t.Logf("even: qos %.6f be %.2f | granted: qos %.6f be %.2f",
		e.QoSRate, e.BEThroughputUPS, g.QoSRate, g.BEThroughputUPS)
	if g.BEThroughputUPS <= e.BEThroughputUPS || g.QoSRate < e.QoSRate {
		t.Fatal("coordination win gate should have failed Execute, but Execute returned nil error")
	}
}

// TestPlacementWinGate runs the pinned random-pairing vs placement pair
// end to end (serial plus one pooled level) and requires Execute to
// enforce the acceptance gate: preference-aware placement — migration
// warm-up penalties and all — must beat random pairing on best-effort
// throughput without giving up QoS.
func TestPlacementWinGate(t *testing.T) {
	rep, err := Execute(Options{
		Parallelisms: []int{1, 4},
		Seed:         DefaultOptions().Seed,
		Repeats:      1,
		Placement:    true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !rep.Deterministic {
		t.Fatal("placement replay diverged across parallelism levels")
	}
	random, placed := PlacementPair(0)
	var r, p *Run
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if run.Parallelism != 1 {
			continue
		}
		switch run.Scenario {
		case random.Name:
			r = run
		case placed.Name:
			p = run
		}
	}
	if r == nil || p == nil {
		t.Fatalf("pair missing from report: %+v", rep.Runs)
	}
	t.Logf("random: qos %.6f be %.2f | placed: qos %.6f be %.2f",
		r.QoSRate, r.BEThroughputUPS, p.QoSRate, p.BEThroughputUPS)
	if p.BEThroughputUPS <= r.BEThroughputUPS || p.QoSRate < r.QoSRate {
		t.Fatal("placement win gate should have failed Execute, but Execute returned nil error")
	}
}
