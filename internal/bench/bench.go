// Package bench is the reproducible fleet benchmark harness behind
// cmd/bench and the CI bench job. It runs a pinned scenario matrix —
// fleet sizes × fault plans × dispatch policies, each at several
// node-stepping parallelism levels — against the cluster simulator,
// records wall-time, node-steps per second and allocation counts, checks
// the QoS/throughput invariants every run must satisfy, and verifies
// that seeded replay stays byte-identical across parallelism levels (the
// determinism contract of internal/pool). Results serialize to the
// machine-readable BENCH_fleet.json tracked at the repo root, so
// speedups are measured and diffable rather than asserted.
package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"time"

	"sturgeon/internal/cluster"
	"sturgeon/internal/control"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/invariant"
	"sturgeon/internal/obs"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// Schema identifies the BENCH_fleet.json layout; bump on breaking change.
// v2 added allocs_per_step. Readers accept SchemaV1 documents — every v1
// field kept its name and meaning, v1 reports simply carry no per-step
// allocation figure.
const (
	Schema   = "sturgeon/bench-fleet/v2"
	SchemaV1 = "sturgeon/bench-fleet/v1"
)

// Scenario pins one benchmark workload: a fleet of a given size under a
// triangle load, a named dispatch policy and a named fault plan, fully
// determined by Seed.
type Scenario struct {
	Name      string `json:"name"`
	Nodes     int    `json:"nodes"`
	DurationS int    `json:"duration_s"`
	// Policy is "round-robin" or "least-loaded".
	Policy string `json:"policy"`
	// Faults is "clean" (no injector) or "default" (the chaos battery's
	// faults.DefaultSpec applied to every node).
	Faults string `json:"faults"`
	Seed   int64  `json:"seed"`
	// Coord selects the pinned coordinated diurnal fleet scenario
	// (cluster.DefaultCoordFleet) instead of the triangle-load matrix
	// cell: "even" runs its static even-split baseline, "granted" the
	// coordinator-arbitrated fleet under the coordinator chaos plan,
	// "stale" the arbitrated fleet under the pinned coordpartition8
	// schedule with frozen (unleased) grants, and "leased" the same
	// partitioned fleet with fenced leases and the degraded-mode ratchet.
	// Empty for ordinary matrix cells. Policy and Faults are implied
	// ("skewed" dispatch; coordinator-path chaos on "granted").
	Coord string `json:"coord,omitempty"`
	// Placement selects the pinned placement-pair scenario
	// (cluster.DefaultPlacementFleet) instead of a matrix cell: "random"
	// runs the seeded random-pairing baseline, "placed" the solver-seeded
	// fleet with the migration planner active. Empty for ordinary cells.
	// Policy and Faults are implied ("skewed" dispatch; clean).
	Placement string `json:"placement,omitempty"`
	// Fleet10k selects the pinned datacenter-scale diurnal scenario
	// (cluster.DefaultFleet10k) on the discrete-event engine — the one
	// cell whose per-second simulation would take over an hour and which
	// therefore measures the event engine's skip machinery rather than
	// the stepping fan-out.
	Fleet10k bool `json:"fleet10k,omitempty"`
	// Engine names the cluster stepping engine ("event"; empty =
	// per-second), recorded so report rows are self-describing.
	Engine string `json:"engine,omitempty"`
}

// Run is one measured execution of a scenario at a parallelism level.
type Run struct {
	Scenario    string `json:"scenario"`
	Nodes       int    `json:"nodes"`
	Parallelism int    `json:"parallelism"`
	// WallSeconds is the end-to-end simulation time; NodeStepsPerSec is
	// Nodes × DurationS simulated node-seconds per wall-clock second —
	// the harness's throughput metric.
	WallSeconds     float64 `json:"wall_seconds"`
	NodeStepsPerSec float64 `json:"node_steps_per_sec"`
	// AllocMiB / AllocObjects are the heap traffic of the run (deltas of
	// runtime.MemStats TotalAlloc / Mallocs).
	AllocMiB     float64 `json:"alloc_mib"`
	AllocObjects uint64  `json:"alloc_objects"`
	// AllocsPerStep is AllocObjects over simulated node-steps — the
	// steady-state allocation discipline of the stepping hot path (v2).
	// It is not exactly zero even for an allocation-free step: the run
	// also pays one-time costs (latency-cache fill, report assembly)
	// amortized over the cell's steps.
	AllocsPerStep float64 `json:"allocs_per_step"`
	// QoSRate and BEThroughputUPS carry the domain invariants: the
	// fleet's query-weighted guarantee rate and mean best-effort rate.
	QoSRate         float64 `json:"qos_rate"`
	BEThroughputUPS float64 `json:"be_throughput_ups"`
	// SummarySHA256 hashes Result.Summary(); equal hashes across
	// parallelism levels of one scenario prove seeded-replay determinism.
	SummarySHA256 string `json:"summary_sha256"`
	// SpeedupVsSerial is NodeStepsPerSec over the same scenario's
	// parallelism=1 run (1.0 for the serial run itself).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// ActiveSeconds is how many simulated seconds the event engine
	// evaluated node-by-node (zero for per-second rows); the gap to
	// DurationS is the skip machinery's contribution.
	ActiveSeconds int `json:"active_seconds,omitempty"`
}

// Report is the root of BENCH_fleet.json.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	// GOMAXPROCS and NumCPU record the measurement host's parallel
	// capacity — the hard ceiling on any speedup the runs can show.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Repeats is the best-of count behind every Run (wall-clock noise on
	// shared runners dwarfs the simulator's own variance, so each cell
	// keeps its fastest repetition; the domain metrics and summary hash
	// are required to be identical across repetitions).
	Repeats int   `json:"repeats"`
	Runs    []Run `json:"runs"`
	// Deterministic is true iff every scenario's summary hash is
	// identical across all measured parallelism levels.
	Deterministic bool `json:"deterministic"`
}

// Options select the benchmark matrix.
type Options struct {
	FleetSizes   []int
	Parallelisms []int
	DurationS    int
	Policies     []string
	FaultSpecs   []string
	Seed         int64
	// Repeats is the best-of count per matrix cell (default 3).
	Repeats int
	// Coordination appends the pinned even-split vs coordinated-caps
	// scenario pair and makes Execute enforce the coordination win gate:
	// the coordinated fleet must deliver strictly more best-effort
	// throughput at an equal-or-better QoS rate than the even split.
	Coordination bool
	// Placement appends the pinned random-pairing vs placement-engine
	// scenario pair and makes Execute enforce the placement win gate: the
	// placed fleet must deliver strictly more best-effort throughput at
	// an equal-or-better QoS rate than random pairing of the same jobs.
	Placement bool
	// Partition appends the pinned coordpartition8 pair — the same
	// partitioned diurnal fleet with stale-cap (frozen grant) semantics
	// and with fenced leases — and makes Execute enforce the partition
	// win gate: leased degraded-mode BE throughput must be no worse than
	// the stale-cap cliff, with the budget invariant checker clean on
	// both arms.
	Partition bool
	// Fleet10k appends the pinned 10 000-node diurnal scenario on the
	// event engine; Fleet10kWallBudgetS (0 = no gate) makes Execute fail
	// when its serial run exceeds the wall-clock budget — the CI fence
	// for "a simulated datacenter-day completes in seconds".
	Fleet10k            bool
	Fleet10kWallBudgetS float64
}

// DefaultOptions is the CI matrix: small enough to finish in seconds,
// wide enough to cover both policies, chaos on/off and the serial vs
// pooled comparison on a 16-node fleet.
func DefaultOptions() Options {
	return Options{
		FleetSizes:   []int{4, 16},
		Parallelisms: []int{1, 2, 8},
		DurationS:    40,
		Policies:     []string{"round-robin", "least-loaded"},
		FaultSpecs:   []string{"clean", "default"},
		Seed:         20260806,
		Repeats:      3,
		Coordination: true,
		Placement:    true,
		Partition:    true,
		Fleet10k:     true,
		// Generous against runner noise; the scenario completes in ~1 s on
		// a development machine and ~75 s would mean skipping broke.
		Fleet10kWallBudgetS: 75,
	}
}

// Fleet10kScenario returns the pinned datacenter-scale cell: the
// cluster.DefaultFleet10k fleet (10 000 governor-managed quiet nodes,
// 24-hour staircase diurnal) on the discrete-event engine. The scenario
// is fully pinned by DefaultFleet10k — the matrix seed does not vary it.
func Fleet10kScenario() Scenario {
	o := cluster.DefaultFleet10k()
	return Scenario{
		Name:      "fleet10k-diurnal24-event",
		Nodes:     o.Nodes,
		DurationS: o.DurationS,
		Policy:    "round-robin",
		Faults:    "clean",
		Seed:      o.Seed,
		Fleet10k:  true,
		Engine:    "event",
	}
}

// CoordPair returns the pinned coordination comparison scenarios: the
// same fleet, seed and diurnal workload, once with static even-split
// caps and once arbitrated by the coordinator (with the coordinator
// chaos plan active, so the win must survive dropped reports and
// outages). Both run at the duration the scenario pins, not the matrix
// DurationS — the arbitration loop needs the full rotation to play out.
func CoordPair(seed int64) (even, granted Scenario) {
	o := cluster.DefaultCoordFleet(seed)
	base := Scenario{
		Nodes:     o.Nodes,
		DurationS: o.DurationS,
		Policy:    "skewed",
		Seed:      seed,
	}
	even, granted = base, base
	even.Name, even.Coord, even.Faults = "coord-diurnal8-even", "even", "clean"
	granted.Name, granted.Coord, granted.Faults = "coord-diurnal8-granted", "granted", "coord-chaos"
	return even, granted
}

// PartitionSeed pins the coordpartition8 scenario's fleet physics. The
// partition schedule (cluster.PartitionWindows) was tuned against this
// seed's skew rotation — node 7 darkened right after its load peak so
// its high-water cap strands exactly when nodes 5 and 4 are starved —
// so unlike the other pairs the comparison does not float on the matrix
// seed: a different seed would move the peaks out from under the
// windows and measure nothing.
const PartitionSeed int64 = 20260808

// PartitionPair returns the pinned coordpartition8 comparison
// scenarios: the same partitioned diurnal fleet, once with legacy
// stale-cap semantics (a dark node keeps its last grant frozen — the
// cliff) and once with fenced leases (the coordinator reclaims expired
// watts while the dark node ratchets to its even-split floor). Both
// arms run the identical cluster.PartitionWindows schedule, so the
// delta is purely the lease machinery's.
func PartitionPair() (stale, leased Scenario) {
	o := cluster.DefaultCoordFleet(PartitionSeed)
	base := Scenario{
		Nodes:     o.Nodes,
		DurationS: o.DurationS,
		Policy:    "skewed",
		Faults:    "partition",
		Seed:      PartitionSeed,
	}
	stale, leased = base, base
	stale.Name, stale.Coord = "coordpartition8-stale", "stale"
	leased.Name, leased.Coord = "coordpartition8-leased", "leased"
	return stale, leased
}

// PlacementPair returns the pinned placement comparison scenarios: the
// same heterogeneously capped fleet, seed and flash-crowd day, once
// with the BE jobs paired by a seeded shuffle and once by the placement
// solver with the migration planner active (so the win must survive
// warm-up penalties on every move). Both run at the duration the
// scenario pins — the rotating hot spot needs the full day to force
// migrations.
func PlacementPair(seed int64) (random, placed Scenario) {
	o := cluster.DefaultPlacementFleet(seed)
	base := Scenario{
		Nodes:     o.Nodes,
		DurationS: o.DurationS,
		Policy:    "skewed",
		Faults:    "clean",
		Seed:      seed,
	}
	random, placed = base, base
	random.Name, random.Placement = "placement-flashcrowd12-random", "random"
	placed.Name, placed.Placement = "placement-flashcrowd12-placed", "placed"
	return random, placed
}

// Matrix expands opt into the scenario list (fleet sizes × fault specs ×
// policies), deriving a distinct deterministic seed per scenario.
func Matrix(opt Options) []Scenario {
	var out []Scenario
	for _, n := range opt.FleetSizes {
		for _, fs := range opt.FaultSpecs {
			for _, p := range opt.Policies {
				out = append(out, Scenario{
					Name:      fmt.Sprintf("fleet%d-%s-%s", n, p, fs),
					Nodes:     n,
					DurationS: opt.DurationS,
					Policy:    p,
					Faults:    fs,
					Seed:      opt.Seed + int64(101*n) + int64(13*len(out)),
				})
			}
		}
	}
	if opt.Coordination {
		even, granted := CoordPair(opt.Seed)
		out = append(out, even, granted)
	}
	if opt.Placement {
		random, placed := PlacementPair(opt.Seed)
		out = append(out, random, placed)
	}
	if opt.Partition {
		stale, leased := PartitionPair()
		out = append(out, stale, leased)
	}
	if opt.Fleet10k {
		out = append(out, Fleet10kScenario())
	}
	return out
}

// buildCluster materializes a scenario's fleet: statically partitioned
// nodes (the controller cost is constant across parallelism levels, so
// the measurement isolates the stepping fan-out) with the scenario's
// dispatch policy and fault plan.
func buildCluster(sc Scenario, parallelism int) (*cluster.Cluster, error) {
	if sc.Fleet10k {
		c, err := cluster.BuildFleet10k(cluster.DefaultFleet10k())
		if err != nil {
			return nil, err
		}
		c.Parallelism = parallelism
		return c, nil
	}
	if sc.Coord != "" {
		o := cluster.DefaultCoordFleet(sc.Seed)
		switch sc.Coord {
		case "even":
		case "granted":
			o.Coordinated, o.Chaos = true, true
		case "stale":
			o.Coordinated, o.Partition = true, true
		case "leased":
			o.Coordinated, o.Partition, o.Leased = true, true, true
		default:
			return nil, fmt.Errorf("bench: unknown coord mode %q", sc.Coord)
		}
		c, err := cluster.BuildCoordFleet(o)
		if err != nil {
			return nil, err
		}
		if o.Partition {
			// The partition pair rides with the budget invariant checker
			// attached: the win gate is conditional on Σcaps ≤ budget
			// holding every simulated second on both arms, so a "win"
			// bought by momentary over-subscription fails the run instead
			// of landing in the report.
			c.Invariants = invariant.New(o.EvenCapW*float64(o.Nodes), 0)
		}
		c.Parallelism = parallelism
		return c, nil
	}
	if sc.Placement != "" {
		o := cluster.DefaultPlacementFleet(sc.Seed)
		o.Placed = sc.Placement == "placed"
		c, err := cluster.BuildPlacementFleet(o)
		if err != nil {
			return nil, err
		}
		c.Parallelism = parallelism
		return c, nil
	}
	ls, be := workload.Memcached(), workload.Raytrace()
	probe := sim.QuietNode(ls, be, 1)
	budget := sim.LSPeakPower(probe.Spec, probe.PowerParams, probe.Bus, ls)
	split := hw.Config{
		LS: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
		BE: hw.Alloc{Cores: 8, Freq: 1.6, LLCWays: 8},
	}
	var policy cluster.DispatchPolicy
	switch sc.Policy {
	case "round-robin":
		policy = cluster.RoundRobin{}
	case "least-loaded":
		policy = &cluster.LeastLoaded{}
	default:
		return nil, fmt.Errorf("bench: unknown policy %q", sc.Policy)
	}
	c, err := cluster.New(sc.Nodes, ls, be, budget, policy, sc.Seed,
		func(int) control.Controller { return control.Static{Cfg: split} })
	if err != nil {
		return nil, err
	}
	c.Parallelism = parallelism
	for _, n := range c.Nodes {
		if err := n.Apply(split); err != nil {
			return nil, err
		}
	}
	switch sc.Faults {
	case "clean":
	case "default":
		c.InjectFaults(faults.DefaultSpec(), sc.DurationS)
	default:
		return nil, fmt.Errorf("bench: unknown fault spec %q", sc.Faults)
	}
	return c, nil
}

// measureOnce executes one scenario at one parallelism level on a fresh
// fleet.
func measureOnce(sc Scenario, parallelism int) (Run, error) {
	c, err := buildCluster(sc, parallelism)
	if err != nil {
		return Run{}, err
	}
	tr := workload.Triangle(0.2, 0.8, float64(sc.DurationS))
	switch {
	case sc.Fleet10k:
		tr = cluster.DefaultFleet10k().Trace()
	case sc.Coord != "":
		tr = cluster.DefaultCoordFleet(sc.Seed).Trace()
	case sc.Placement != "":
		tr = cluster.DefaultPlacementFleet(sc.Seed).Trace()
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := c.Run(tr, sc.DurationS)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	if c.Invariants != nil {
		if v := c.Invariants.Violations(); len(v) > 0 {
			return Run{}, fmt.Errorf("bench: %s parallelism=%d: budget invariant violated: %s (%d total)",
				sc.Name, parallelism, v[0], len(v)+c.Invariants.DroppedViolations())
		}
	}
	sum := sha256.Sum256([]byte(res.Summary()))
	steps := float64(sc.Nodes * sc.DurationS)
	r := Run{
		Scenario:        sc.Name,
		Nodes:           sc.Nodes,
		Parallelism:     parallelism,
		WallSeconds:     wall,
		NodeStepsPerSec: steps / wall,
		AllocMiB:        float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		AllocObjects:    after.Mallocs - before.Mallocs,
		AllocsPerStep:   float64(after.Mallocs-before.Mallocs) / steps,
		QoSRate:         res.QoSRate,
		BEThroughputUPS: res.MeanBEThroughputUPS,
		SummarySHA256:   hex.EncodeToString(sum[:]),
		ActiveSeconds:   c.EventActiveSeconds(),
	}
	if err := checkInvariants(r); err != nil {
		return Run{}, err
	}
	return r, nil
}

// measure repeats a cell and keeps the fastest repetition. Simulation
// output must be identical across repetitions — the same seeded program
// ran — so any hash drift is reported as a determinism failure.
func measure(sc Scenario, parallelism, repeats int) (Run, error) {
	best, err := measureOnce(sc, parallelism)
	if err != nil {
		return Run{}, err
	}
	for rep := 1; rep < repeats; rep++ {
		r, err := measureOnce(sc, parallelism)
		if err != nil {
			return Run{}, err
		}
		if r.SummarySHA256 != best.SummarySHA256 {
			return Run{}, fmt.Errorf("bench: %s parallelism=%d: repetition %d diverged from repetition 0 (seeded replay broken)",
				sc.Name, parallelism, rep)
		}
		best = fasterRun(best, r)
	}
	return best, nil
}

// fasterRun selects the best-of repetition by wall time — the whole Run,
// so the allocation figures always come from the same repetition as the
// reported wall time (mixing fields across repetitions would make
// allocs_per_step noisy under GC timing).
func fasterRun(a, b Run) Run {
	if b.WallSeconds < a.WallSeconds {
		return b
	}
	return a
}

// checkInvariants rejects physically impossible measurements at the
// source, so a broken run can never be serialized as a plausible one.
func checkInvariants(r Run) error {
	switch {
	case math.IsNaN(r.NodeStepsPerSec) || math.IsInf(r.NodeStepsPerSec, 0) || r.NodeStepsPerSec <= 0:
		return fmt.Errorf("bench: %s parallelism=%d: invalid steps/sec %v", r.Scenario, r.Parallelism, r.NodeStepsPerSec)
	case r.WallSeconds <= 0:
		return fmt.Errorf("bench: %s parallelism=%d: invalid wall time %v", r.Scenario, r.Parallelism, r.WallSeconds)
	case math.IsNaN(r.QoSRate) || r.QoSRate < 0 || r.QoSRate > 1:
		return fmt.Errorf("bench: %s parallelism=%d: QoS rate %v outside [0,1]", r.Scenario, r.Parallelism, r.QoSRate)
	case math.IsNaN(r.BEThroughputUPS) || r.BEThroughputUPS < 0:
		return fmt.Errorf("bench: %s parallelism=%d: negative BE throughput %v", r.Scenario, r.Parallelism, r.BEThroughputUPS)
	}
	return nil
}

// Execute runs the full matrix and assembles the report. Each scenario
// runs once per parallelism level (serial level 1 must be present to
// anchor speedups; Execute prepends it if missing). A determinism break —
// differing summary hashes within one scenario — is recorded in the
// report and returned as an error alongside it, so callers can both fail
// CI and upload the evidence.
func Execute(opt Options) (*Report, error) {
	// The serial run anchors speedups and the determinism check, so it
	// always runs first; duplicates are dropped.
	pars := []int{1}
	seen := map[int]bool{1: true}
	for _, p := range opt.Parallelisms {
		if p >= 1 && !seen[p] {
			seen[p] = true
			pars = append(pars, p)
		}
	}
	repeats := opt.Repeats
	if repeats < 1 {
		repeats = 3
	}
	rep := &Report{
		Schema:        Schema,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Repeats:       repeats,
		Deterministic: true,
	}
	var detErr error
	for _, sc := range Matrix(opt) {
		serialSteps := 0.0
		baseHash := ""
		for _, p := range pars {
			r, err := measure(sc, p, repeats)
			if err != nil {
				return nil, err
			}
			if p == 1 {
				serialSteps = r.NodeStepsPerSec
				baseHash = r.SummarySHA256
			}
			if sc.Fleet10k && opt.Fleet10kWallBudgetS > 0 && r.WallSeconds > opt.Fleet10kWallBudgetS {
				return nil, fmt.Errorf("bench: %s parallelism=%d took %.1f s, over the %.0f s budget — the event engine's skipping has regressed",
					sc.Name, p, r.WallSeconds, opt.Fleet10kWallBudgetS)
			}
			if serialSteps > 0 {
				r.SpeedupVsSerial = r.NodeStepsPerSec / serialSteps
			}
			if baseHash != "" && r.SummarySHA256 != baseHash {
				rep.Deterministic = false
				detErr = fmt.Errorf("bench: %s: parallelism=%d summary diverged from serial run (seeded replay broken)",
					sc.Name, p)
			}
			rep.Runs = append(rep.Runs, r)
		}
	}
	if detErr != nil {
		return rep, detErr
	}
	if opt.Coordination {
		if err := checkCoordinationWin(rep); err != nil {
			return rep, err
		}
	}
	if opt.Placement {
		if err := checkPlacementWin(rep); err != nil {
			return rep, err
		}
	}
	if opt.Partition {
		if err := checkPartitionWin(rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// ObsRun replays the pinned coordinated (granted) scenario once,
// serially, with a decision-trail sink attached, and returns the
// resulting journal, trace and timeline documents. Measured benchmark
// runs stay uninstrumented — the report's wall-clock numbers never
// include journaling cost — so cmd/bench's -events/-trace flags pay for
// their dumps with one extra run. The replay is seeded and serial (and
// span ids fold in the seed), so two calls with the same seed return
// byte-identical documents.
func ObsRun(seed int64) (*obs.EventsDoc, *obs.TraceDoc, *obs.TimelineDoc, error) {
	_, granted := CoordPair(seed)
	c, err := buildCluster(granted, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	sink := obs.NewSeeded(seed, 0)
	c.SetObs(sink)
	c.Run(cluster.DefaultCoordFleet(seed).Trace(), granted.DurationS)
	return sink.Journal.Doc(), sink.Trace.Doc(), sink.Timeline.Doc(), nil
}

// EventsRun is ObsRun reduced to the journal document, kept for callers
// that only want the events dump.
func EventsRun(seed int64) (*obs.EventsDoc, error) {
	doc, _, _, err := ObsRun(seed)
	return doc, err
}

// checkCoordinationWin enforces the coordination acceptance gate on the
// pinned scenario pair: arbitrated caps must buy strictly more
// best-effort throughput at an equal-or-better QoS rate than the static
// even split of the same budget — even though the coordinated run also
// suffers the coordinator chaos plan. The serial (parallelism 1) runs
// anchor the comparison; determinism ties every other level to them.
func checkCoordinationWin(rep *Report) error {
	even, granted := CoordPair(0) // names only; seed irrelevant
	var e, g *Run
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Parallelism != 1 {
			continue
		}
		switch r.Scenario {
		case even.Name:
			e = r
		case granted.Name:
			g = r
		}
	}
	if e == nil || g == nil {
		return fmt.Errorf("bench: coordination pair missing from report (have even=%v granted=%v)", e != nil, g != nil)
	}
	if g.BEThroughputUPS <= e.BEThroughputUPS {
		return fmt.Errorf("bench: coordination win gate failed: granted BE %.2f ups <= even %.2f ups",
			g.BEThroughputUPS, e.BEThroughputUPS)
	}
	if g.QoSRate < e.QoSRate {
		return fmt.Errorf("bench: coordination win gate failed: granted QoS rate %.6f < even %.6f",
			g.QoSRate, e.QoSRate)
	}
	return nil
}

// checkPartitionWin enforces the partition-tolerance acceptance gate on
// the pinned coordpartition8 pair: a fleet that leases its caps and
// degrades toward the even-split floor when cut off must end the run
// with at least the best-effort throughput of the same fleet freezing
// its last grant (the stale-cap cliff). Both arms already proved
// Σcaps ≤ budget at every simulated second — measureOnce fails any run
// whose attached invariant checker recorded a violation — so the gate
// compares only the throughput the two recovery disciplines buy. The
// serial (parallelism 1) runs anchor the comparison; determinism ties
// every other level to them.
func checkPartitionWin(rep *Report) error {
	stale, leased := PartitionPair()
	var s, l *Run
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Parallelism != 1 {
			continue
		}
		switch r.Scenario {
		case stale.Name:
			s = r
		case leased.Name:
			l = r
		}
	}
	if s == nil || l == nil {
		return fmt.Errorf("bench: partition pair missing from report (have stale=%v leased=%v)", s != nil, l != nil)
	}
	if l.BEThroughputUPS < s.BEThroughputUPS {
		return fmt.Errorf("bench: partition win gate failed: leased BE %.2f ups < stale-cap %.2f ups",
			l.BEThroughputUPS, s.BEThroughputUPS)
	}
	return nil
}

// checkPlacementWin enforces the placement acceptance gate on the
// pinned scenario pair: preference-aware pairing plus the migration
// planner must buy strictly more best-effort throughput at an
// equal-or-better QoS rate than the seeded random pairing of the same
// jobs on the same fleet — warm-up penalties on every move included.
// The serial (parallelism 1) runs anchor the comparison; determinism
// ties every other level to them.
func checkPlacementWin(rep *Report) error {
	random, placed := PlacementPair(0) // names only; seed irrelevant
	var r, p *Run
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if run.Parallelism != 1 {
			continue
		}
		switch run.Scenario {
		case random.Name:
			r = run
		case placed.Name:
			p = run
		}
	}
	if r == nil || p == nil {
		return fmt.Errorf("bench: placement pair missing from report (have random=%v placed=%v)", r != nil, p != nil)
	}
	if p.BEThroughputUPS <= r.BEThroughputUPS {
		return fmt.Errorf("bench: placement win gate failed: placed BE %.2f ups <= random %.2f ups",
			p.BEThroughputUPS, r.BEThroughputUPS)
	}
	if p.QoSRate < r.QoSRate {
		return fmt.Errorf("bench: placement win gate failed: placed QoS rate %.6f < random %.6f",
			p.QoSRate, r.QoSRate)
	}
	return nil
}
