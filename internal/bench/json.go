package bench

import (
	"fmt"
	"math"

	"sturgeon/internal/jsonio"
)

// WriteFile serializes the report to path through the shared
// schema-validating JSON layer (indented, newline-terminated) — an
// invalid report is never written.
func WriteFile(path string, rep *Report) error {
	return jsonio.WriteFile(path, rep)
}

// ReadFile parses and validates a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	var rep Report
	if err := jsonio.ReadFile(path, &rep); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return &rep, nil
}

// Validate checks a report against the schema's invariants; kept as the
// package-level spelling callers already use.
func Validate(rep *Report) error { return rep.Validate() }

// Validate implements jsonio.Validator: the schema tag, host metadata,
// and for every run finite positive throughput and wall time, in-range
// QoS, non-negative allocation and best-effort figures, and a
// well-formed summary hash. The same gate guards freshly measured
// reports (WriteFile) and consumers of checked-in ones (ReadFile), so
// NaN or negative steps-per-second can neither enter nor leave the JSON.
func (rep *Report) Validate() error {
	if rep == nil {
		return fmt.Errorf("nil report")
	}
	if rep.Schema != Schema && rep.Schema != SchemaV1 {
		return fmt.Errorf("schema %q, want %q (or legacy %q)", rep.Schema, Schema, SchemaV1)
	}
	if rep.GOMAXPROCS < 1 || rep.NumCPU < 1 {
		return fmt.Errorf("implausible host: GOMAXPROCS %d, NumCPU %d", rep.GOMAXPROCS, rep.NumCPU)
	}
	if rep.Repeats < 1 {
		return fmt.Errorf("repeats %d, want >= 1", rep.Repeats)
	}
	if len(rep.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	for i, r := range rep.Runs {
		if r.Scenario == "" {
			return fmt.Errorf("run %d: empty scenario name", i)
		}
		if r.Nodes < 1 || r.Parallelism < 1 {
			return fmt.Errorf("run %d (%s): nodes %d / parallelism %d out of range",
				i, r.Scenario, r.Nodes, r.Parallelism)
		}
		if err := checkInvariants(r); err != nil {
			return fmt.Errorf("run %d: %w", i, err)
		}
		if math.IsNaN(r.SpeedupVsSerial) || r.SpeedupVsSerial < 0 {
			return fmt.Errorf("run %d (%s): invalid speedup %v", i, r.Scenario, r.SpeedupVsSerial)
		}
		if len(r.SummarySHA256) != 64 {
			return fmt.Errorf("run %d (%s): malformed summary hash %q", i, r.Scenario, r.SummarySHA256)
		}
		if r.AllocMiB < 0 {
			return fmt.Errorf("run %d (%s): negative allocation %v MiB", i, r.Scenario, r.AllocMiB)
		}
		if math.IsNaN(r.AllocsPerStep) || r.AllocsPerStep < 0 {
			return fmt.Errorf("run %d (%s): invalid allocs_per_step %v", i, r.Scenario, r.AllocsPerStep)
		}
	}
	return nil
}
