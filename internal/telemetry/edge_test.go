package telemetry

import (
	"math"
	"testing"
)

// TestP2NearestRankBeforeBootstrap pins the documented fallback: with
// fewer than five observations Value() is the nearest-rank quantile of
// exactly what has been seen.
func TestP2NearestRankBeforeBootstrap(t *testing.T) {
	est := NewP2(0.5)
	for _, x := range []float64{40, 10, 30, 20} {
		est.Observe(x)
	}
	if v := est.Value(); v != 30 {
		t.Errorf("median of {10,20,30,40} before bootstrap = %v, want nearest-rank 30", v)
	}
	tail := NewP2(0.95)
	for _, x := range []float64{4, 2, 3, 1} {
		tail.Observe(x)
	}
	if v := tail.Value(); v != 4 {
		t.Errorf("p95 of {1,2,3,4} before bootstrap = %v, want nearest-rank 4", v)
	}
}

// TestP2AllDuplicates feeds a constant stream: every marker height and
// position collapses, which is exactly where the parabolic update's
// divided differences can blow up. The estimate must stay the constant.
func TestP2AllDuplicates(t *testing.T) {
	est := NewP2(0.95)
	for i := 0; i < 1000; i++ {
		est.Observe(7.5)
	}
	if v := est.Value(); v != 7.5 {
		t.Errorf("p95 of a constant stream = %v, want 7.5", v)
	}
	// A few outliers after the degenerate phase must not produce NaN/Inf.
	est.Observe(8)
	est.Observe(7)
	for i := 0; i < 100; i++ {
		est.Observe(7.5)
	}
	if v := est.Value(); math.IsNaN(v) || math.IsInf(v, 0) ||
		v < 7 || v > 8 {
		t.Errorf("post-degenerate estimate %v outside [7, 8]", v)
	}
}

// TestP2DuplicateBootstrap starts with five identical samples — the
// bootstrap sort leaves all markers equal from the very first step.
func TestP2DuplicateBootstrap(t *testing.T) {
	est := NewP2(0.9)
	for i := 0; i < 5; i++ {
		est.Observe(2)
	}
	for i := 0; i < 50; i++ {
		est.Observe(2 + float64(i%3))
	}
	if v := est.Value(); math.IsNaN(v) || math.IsInf(v, 0) || v < 2 || v > 4 {
		t.Errorf("estimate %v escaped the observed range [2, 4]", v)
	}
}

// TestWindowWrapAround pushes several full eviction cycles through a
// small window and checks quantiles, mean and extrema see only the
// retained suffix — the ring indices must line up across wraps.
func TestWindowWrapAround(t *testing.T) {
	w := NewWindow(8)
	for i := 1; i <= 20; i++ { // retains 13..20 after 2.5 laps
		w.Observe(float64(i))
	}
	if w.Len() != 8 {
		t.Fatalf("Len = %d after wrap, want 8", w.Len())
	}
	if lo := w.Quantile(0); lo != 13 {
		t.Errorf("min after wrap = %v, want 13", lo)
	}
	if hi := w.Quantile(1); hi != 20 {
		t.Errorf("max after wrap = %v, want 20", hi)
	}
	if m := w.Mean(); m != 16.5 {
		t.Errorf("mean after wrap = %v, want 16.5", m)
	}
	if med := w.Quantile(0.5); med != 16.5 {
		t.Errorf("median after wrap = %v, want 16.5", med)
	}
	// A third full lap with a constant: the whole retained window must be
	// that constant regardless of where next points.
	for i := 0; i < 8; i++ {
		w.Observe(42)
	}
	if w.Quantile(0) != 42 || w.Quantile(1) != 42 || w.Mean() != 42 {
		t.Errorf("constant lap leaked stale samples: min %v max %v mean %v",
			w.Quantile(0), w.Quantile(1), w.Mean())
	}
	// Reset then partial refill: quantiles see only the fresh samples.
	w.Reset()
	w.Observe(5)
	w.Observe(9)
	if w.Len() != 2 || w.Quantile(1) != 9 {
		t.Errorf("post-reset window wrong: len %d max %v", w.Len(), w.Quantile(1))
	}
}
