// Package telemetry provides the measurement substrate the paper assumes
// datacenters already deploy (§V-A): streaming quantile estimation for
// tail latencies, sliding measurement windows, exponentially weighted
// averages, and a recorder that accumulates offline training samples for
// the performance/power models.
package telemetry

import (
	"fmt"
	"math"
	"sort"
)

// P2 is the Jain–Chlamtac P² streaming quantile estimator: it tracks a
// single quantile of an unbounded observation stream in O(1) space by
// maintaining five markers whose heights follow a piecewise-parabolic
// interpolation. It is the classic datacenter telemetry primitive for
// tail-latency tracking without storing samples.
type P2 struct {
	p     float64
	n     int
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	inc   [5]float64 // desired position increments
	boot  []float64  // first five observations
	ready bool
}

// NewP2 returns an estimator for the p-quantile, 0 < p < 1.
func NewP2(p float64) *P2 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("telemetry: quantile %v outside (0,1)", p))
	}
	e := &P2{p: p}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Observe feeds one observation.
func (e *P2) Observe(x float64) {
	e.n++
	if !e.ready {
		e.boot = append(e.boot, x)
		if len(e.boot) == 5 {
			sort.Float64s(e.boot)
			for i := 0; i < 5; i++ {
				e.q[i] = e.boot[i]
				e.pos[i] = float64(i + 1)
			}
			e.boot = nil
			e.ready = true
		}
		return
	}

	// Find the cell containing x and update extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2) parabolic(i int, s float64) float64 {
	n := e.pos
	q := e.q
	return q[i] + s/(n[i+1]-n[i-1])*
		((n[i]-n[i-1]+s)*(q[i+1]-q[i])/(n[i+1]-n[i])+
			(n[i+1]-n[i]-s)*(q[i]-q[i-1])/(n[i]-n[i-1]))
}

func (e *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the nearest-rank quantile of what it has;
// with none it returns NaN.
func (e *P2) Value() float64 {
	if e.ready {
		return e.q[2]
	}
	if len(e.boot) == 0 {
		return math.NaN()
	}
	tmp := append([]float64(nil), e.boot...)
	sort.Float64s(tmp)
	idx := int(e.p * float64(len(tmp)))
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// Count returns the number of observations so far.
func (e *P2) Count() int { return e.n }
