package telemetry

import (
	"fmt"
	"math/rand"
)

// Dataset is a design matrix plus labels, the exchange format between the
// telemetry recorder and the model-training layer.
type Dataset struct {
	X [][]float64
	Y []float64
	// FeatureNames documents the columns (e.g. "qps", "cores", "freq",
	// "ways" — the four Lasso-selected features of §V-A).
	FeatureNames []string
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.X) }

// Validate checks rectangular shape.
func (d Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("telemetry: %d feature rows vs %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return nil
	}
	w := len(d.X[0])
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("telemetry: row %d has %d features, want %d", i, len(row), w)
		}
	}
	return nil
}

// Split partitions the dataset into train and test subsets with the given
// test fraction, shuffled by rng (deterministic for a seeded source).
func (d Dataset) Split(testFrac float64, rng *rand.Rand) (train, test Dataset) {
	n := d.Len()
	idx := rng.Perm(n)
	nTest := int(testFrac * float64(n))
	if nTest < 0 {
		nTest = 0
	}
	if nTest > n {
		nTest = n
	}
	mk := func(ids []int) Dataset {
		out := Dataset{FeatureNames: d.FeatureNames}
		for _, i := range ids {
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
		return out
	}
	return mk(idx[nTest:]), mk(idx[:nTest])
}

// Recorder accumulates (features, label) samples — the offline training
// collection path the paper runs on dedicated-cluster telemetry.
type Recorder struct {
	names []string
	x     [][]float64
	y     []float64
}

// NewRecorder creates a recorder with named feature columns.
func NewRecorder(featureNames ...string) *Recorder {
	return &Recorder{names: featureNames}
}

// Add records one sample; the feature count must match the schema.
func (r *Recorder) Add(features []float64, label float64) error {
	if len(features) != len(r.names) {
		return fmt.Errorf("telemetry: %d features for %d-column schema %v",
			len(features), len(r.names), r.names)
	}
	r.x = append(r.x, append([]float64(nil), features...))
	r.y = append(r.y, label)
	return nil
}

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.x) }

// Dataset returns the accumulated samples.
func (r *Recorder) Dataset() Dataset {
	return Dataset{X: r.x, Y: r.y, FeatureNames: r.names}
}
