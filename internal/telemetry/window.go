package telemetry

import (
	"math"
	"sort"
)

// Window is a fixed-capacity sliding window of observations supporting
// exact quantiles, mean and extrema over the most recent Cap samples —
// the per-interval measurement primitive of the paper's 1 s control loop.
//
// Quantiles are served from an incrementally maintained sorted shadow of
// the ring buffer, so steady-state Observe+Quantile performs zero
// allocations. The shadow holds the same multiset as the buffer, and a
// sorted multiset of ordinary floats has exactly one arrangement, so
// results are bit-identical to sorting a fresh copy. Samples without
// that uniqueness property (NaN, negative zero) divert Quantile to the
// original copy-and-sort path until they age out of the window.
type Window struct {
	cap  int
	buf  []float64
	next int
	full bool

	sorted   []float64
	sortedOK bool
	exotic   int // resident samples the incremental shadow can't order
}

// NewWindow returns a window keeping the latest cap observations.
func NewWindow(cap int) *Window {
	if cap <= 0 {
		cap = 1
	}
	return &Window{
		cap:      cap,
		buf:      make([]float64, 0, cap),
		sorted:   make([]float64, 0, cap),
		sortedOK: true,
	}
}

// exoticSample reports values whose sorted position is not determined by
// the < relation alone: NaN (unordered) and -0.0 (ties +0.0 bitwise
// unequal). Both break the unique-arrangement argument the incremental
// shadow relies on.
func exoticSample(x float64) bool {
	return x != x || (x == 0 && math.Signbit(x))
}

// Observe appends one observation, evicting the oldest when full.
func (w *Window) Observe(x float64) {
	var old float64
	evict := false
	if len(w.buf) < w.cap {
		w.buf = append(w.buf, x)
	} else {
		old = w.buf[w.next]
		w.buf[w.next] = x
		w.next = (w.next + 1) % w.cap
		w.full = true
		evict = true
	}
	if exoticSample(x) || (evict && exoticSample(old)) {
		if exoticSample(x) {
			w.exotic++
		}
		if evict && exoticSample(old) {
			w.exotic--
		}
		w.sortedOK = false
		return
	}
	if w.exotic > 0 || !w.sortedOK {
		w.sortedOK = false // rebuilt lazily once the window is clean
		return
	}
	if evict {
		i := sort.SearchFloat64s(w.sorted, old)
		copy(w.sorted[i:], w.sorted[i+1:])
		w.sorted = w.sorted[:len(w.sorted)-1]
	}
	i := sort.SearchFloat64s(w.sorted, x)
	w.sorted = append(w.sorted, 0)
	copy(w.sorted[i+1:], w.sorted[i:])
	w.sorted[i] = x
}

// Len returns the number of retained observations.
func (w *Window) Len() int { return len(w.buf) }

// snapshot returns a sorted copy of the window contents.
func (w *Window) snapshot() []float64 {
	s := append([]float64(nil), w.buf...)
	sort.Float64s(s)
	return s
}

// Quantile returns the exact p-quantile over the window (NaN when empty).
func (w *Window) Quantile(p float64) float64 {
	var s []float64
	if w.exotic > 0 {
		s = w.snapshot()
	} else {
		if !w.sortedOK {
			w.sorted = append(w.sorted[:0], w.buf...)
			sort.Float64s(w.sorted)
			w.sortedOK = true
		}
		s = w.sorted
	}
	if len(s) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	idx := p * float64(len(s)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the window average (NaN when empty).
func (w *Window) Mean() float64 {
	if len(w.buf) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range w.buf {
		sum += v
	}
	return sum / float64(len(w.buf))
}

// Max returns the window maximum (NaN when empty).
func (w *Window) Max() float64 {
	if len(w.buf) == 0 {
		return math.NaN()
	}
	m := w.buf[0]
	for _, v := range w.buf[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Reset clears the window.
func (w *Window) Reset() {
	w.buf = w.buf[:0]
	w.next = 0
	w.full = false
	w.sorted = w.sorted[:0]
	w.sortedOK = true
	w.exotic = 0
}

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	// Alpha is the smoothing factor in (0, 1]; higher reacts faster.
	Alpha float64

	value float64
	init  bool
}

// Observe folds one observation into the average.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.3
	}
	e.value = a*x + (1-a)*e.value
}

// Value returns the current average (NaN before any observation).
func (e *EWMA) Value() float64 {
	if !e.init {
		return math.NaN()
	}
	return e.value
}
