package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// referenceQuantile is the original copy-and-sort implementation, kept
// as the oracle for the incremental shadow.
func referenceQuantile(buf []float64, p float64) float64 {
	s := append([]float64(nil), buf...)
	sort.Float64s(s)
	if len(s) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	idx := p * float64(len(s)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

func TestWindowIncrementalBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := NewWindow(64)
	ps := []float64{-0.5, 0, 0.25, 0.5, 0.95, 0.99, 1, 2}
	for i := 0; i < 5000; i++ {
		x := rng.NormFloat64() * 10
		switch {
		case i%271 == 0:
			x = math.NaN()
		case i%143 == 0:
			x = math.Copysign(0, -1)
		case i%97 == 0:
			x = 0
		case i%53 == 0:
			x = 3.25 // force duplicates
		}
		w.Observe(x)
		p := ps[i%len(ps)]
		got := w.Quantile(p)
		want := referenceQuantile(w.buf, p)
		if math.Float64bits(got) != math.Float64bits(want) && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("step %d p=%v: got %x want %x", i, p, math.Float64bits(got), math.Float64bits(want))
		}
	}
	w.Reset()
	if !math.IsNaN(w.Quantile(0.5)) {
		t.Fatal("quantile after reset should be NaN")
	}
}

func TestWindowSteadyStateAllocFree(t *testing.T) {
	w := NewWindow(128)
	for i := 0; i < 256; i++ {
		w.Observe(float64(i*7%101) + 0.5)
	}
	allocs := testing.AllocsPerRun(200, func() {
		w.Observe(3.75)
		w.Quantile(0.95)
		w.Mean()
		w.Max()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe+Quantile allocates %v per run", allocs)
	}
}
