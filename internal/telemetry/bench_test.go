package telemetry

import "testing"

func BenchmarkP2Observe(b *testing.B) {
	e := NewP2(0.95)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Observe(float64(i%997) * 0.001)
	}
}

func BenchmarkWindowQuantile(b *testing.B) {
	w := NewWindow(128)
	for i := 0; i < 128; i++ {
		w.Observe(float64(i * 7 % 101))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i % 113))
		w.Quantile(0.95)
	}
}
