package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestP2AgainstExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		est := NewP2(p)
		var all []float64
		const n = 50000
		for i := 0; i < n; i++ {
			// Lognormal-ish latency stream.
			v := math.Exp(rng.NormFloat64() * 0.7)
			est.Observe(v)
			all = append(all, v)
		}
		sort.Float64s(all)
		exact := all[int(p*float64(n))]
		got := est.Value()
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("P2(%v) = %v vs exact %v (rel err %.3f)", p, got, exact, rel)
		}
		if est.Count() != n {
			t.Errorf("Count = %d, want %d", est.Count(), n)
		}
	}
}

func TestP2SmallStreams(t *testing.T) {
	est := NewP2(0.95)
	if !math.IsNaN(est.Value()) {
		t.Error("empty estimator should report NaN")
	}
	est.Observe(3)
	if est.Value() != 3 {
		t.Errorf("single-sample value = %v, want 3", est.Value())
	}
	est.Observe(1)
	est.Observe(2)
	v := est.Value()
	if v < 1 || v > 3 {
		t.Errorf("three-sample value %v outside data range", v)
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", p)
				}
			}()
			NewP2(p)
		}()
	}
}

func TestP2MonotoneUnderSortedInput(t *testing.T) {
	est := NewP2(0.5)
	for i := 1; i <= 1001; i++ {
		est.Observe(float64(i))
	}
	got := est.Value()
	if math.Abs(got-501) > 10 {
		t.Errorf("median of 1..1001 estimated %v, want ≈501", got)
	}
}

func TestWindowQuantileAndEviction(t *testing.T) {
	w := NewWindow(5)
	for i := 1; i <= 5; i++ {
		w.Observe(float64(i))
	}
	if got := w.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	// Push two more: window should hold {3,4,5,6,7}.
	w.Observe(6)
	w.Observe(7)
	if got := w.Quantile(0); got != 3 {
		t.Errorf("min after eviction = %v, want 3", got)
	}
	if got := w.Quantile(1); got != 7 {
		t.Errorf("max after eviction = %v, want 7", got)
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := w.Max(); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if w.Len() != 5 {
		t.Errorf("Len = %d, want 5", w.Len())
	}
}

func TestWindowEmptyAndReset(t *testing.T) {
	w := NewWindow(3)
	if !math.IsNaN(w.Quantile(0.5)) || !math.IsNaN(w.Mean()) || !math.IsNaN(w.Max()) {
		t.Error("empty window should report NaN")
	}
	w.Observe(1)
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset did not clear")
	}
	// Zero/negative capacity behaves as capacity 1.
	w1 := NewWindow(0)
	w1.Observe(4)
	w1.Observe(9)
	if got := w1.Quantile(0.5); got != 9 {
		t.Errorf("cap-0 window kept %v, want latest 9", got)
	}
}

func TestWindowInterpolatedQuantile(t *testing.T) {
	w := NewWindow(4)
	for _, v := range []float64{1, 2, 3, 4} {
		w.Observe(v)
	}
	if got := w.Quantile(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("interpolated median = %v, want 2.5", got)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if !math.IsNaN(e.Value()) {
		t.Error("unobserved EWMA should be NaN")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Errorf("first value = %v, want 10", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Errorf("after 20: %v, want 15", e.Value())
	}
	bad := EWMA{Alpha: 7}
	bad.Observe(1)
	bad.Observe(2)
	if v := bad.Value(); v <= 1 || v >= 2 {
		t.Errorf("invalid alpha fallback produced %v", v)
	}
}

func TestRecorderAndDataset(t *testing.T) {
	r := NewRecorder("qps", "cores", "freq", "ways")
	if err := r.Add([]float64{1000, 4, 1.6, 6}, 0.002); err != nil {
		t.Fatal(err)
	}
	if err := r.Add([]float64{1, 2, 3}, 0); err == nil {
		t.Error("schema mismatch accepted")
	}
	for i := 0; i < 99; i++ {
		_ = r.Add([]float64{float64(i), 1, 2, 3}, float64(i))
	}
	d := r.Dataset()
	if d.Len() != 100 || r.Len() != 100 {
		t.Fatalf("dataset len = %d, want 100", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	train, test := d.Split(0.2, rand.New(rand.NewSource(1)))
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split = %d/%d, want 80/20", train.Len(), test.Len())
	}
	// No overlap and full coverage.
	seen := map[float64]bool{}
	for _, y := range append(train.Y, test.Y...) {
		if seen[y] {
			t.Fatalf("duplicate sample %v after split", y)
		}
		seen[y] = true
	}
	if len(seen) != 100 {
		t.Errorf("split lost samples: %d", len(seen))
	}
}

func TestDatasetValidateCatchesRagged(t *testing.T) {
	d := Dataset{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}}
	if d.Validate() == nil {
		t.Error("ragged dataset accepted")
	}
	d2 := Dataset{X: [][]float64{{1}}, Y: []float64{}}
	if d2.Validate() == nil {
		t.Error("mismatched lengths accepted")
	}
}
