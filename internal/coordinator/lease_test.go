package coordinator

import (
	"context"
	"strings"
	"testing"

	"sturgeon/internal/faults"
	"sturgeon/internal/jsonio"
)

// leasedOpt is the fenced-lease battery's arbitration config: three
// nodes on a 300 W budget with a two-epoch TTL. The default lease
// floor is the even split (100 W).
func leasedOpt() Options {
	return Options{BudgetW: 300, MinCapW: 50, MaxCapW: 150, FleetSize: 3, LeaseEpochs: 2}
}

func TestLeasedGrantCarriesFence(t *testing.T) {
	c := newTest(t, leasedOpt())
	var lastTok int64 = -1
	for e := 0; e < 4; e++ {
		g, err := c.Submit(report("a", e, 0.15, 80, 100))
		if err != nil {
			t.Fatal(err)
		}
		if g.LeaseEpochs != 2 {
			t.Fatalf("epoch %d: grant TTL %d, want 2", e, g.LeaseEpochs)
		}
		if g.FloorW != 100 {
			t.Fatalf("epoch %d: grant floor %.1f W, want the even split 100", e, g.FloorW)
		}
		// The fencing token increments once per APPLIED report — strictly
		// monotone, so any delayed duplicate carries an older token.
		if g.Token <= lastTok {
			t.Fatalf("epoch %d: token %d did not advance past %d", e, g.Token, lastTok)
		}
		lastTok = g.Token
	}
	if err := c.Status().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnleasedGrantCarriesNoFence(t *testing.T) {
	opt := leasedOpt()
	opt.LeaseEpochs = 0
	c := newTest(t, opt)
	g, err := c.Submit(report("a", 0, 0.15, 80, 100))
	if err != nil {
		t.Fatal(err)
	}
	if g.Token != 0 || g.LeaseEpochs != 0 || g.FloorW != 0 {
		t.Fatalf("legacy grant grew lease fields: %+v", g)
	}
}

// TestLeaseExpiryReclaimsAndRejoins drives the full lease lifecycle:
// a node goes dark, its lease expires at the TTL and the watts above
// the floor return to the pool (where the staleness fallback would
// have frozen them), and the node's eventual rejoin re-admits it
// through normal arbitration with its fencing token intact.
func TestLeaseExpiryReclaimsAndRejoins(t *testing.T) {
	c := newTest(t, leasedOpt())
	ids := []string{"a", "b", "c"}

	// Warm-up: c is pinned against its cap and wins watts from b, so
	// its book value sits above the lease floor when it goes dark.
	caps := map[string]float64{"a": 100, "b": 100, "c": 100}
	for e := 0; e < 4; e++ {
		for _, id := range ids {
			slack, pw := 0.15, 80.0
			switch id {
			case "b":
				slack, pw = 0.55, 62
			case "c":
				slack, pw = 0.04, caps[id]-0.5
			}
			g, err := c.Submit(report(id, e, slack, pw, caps[id]))
			if err != nil {
				t.Fatal(err)
			}
			caps[id] = g.CapW
		}
	}
	if caps["c"] <= 100 {
		t.Fatalf("node c never won watts (cap %.1f W); the reclaim would be vacuous", caps["c"])
	}
	lastTok := c.nodes["c"].leaseTok

	// c goes dark. After LeaseEpochs closed epochs its lease expires:
	// the cap above the floor is reclaimed, NOT frozen.
	for e := 4; e < 8; e++ {
		for _, id := range []string{"a", "b"} {
			if _, err := c.Submit(report(id, e, 0.15, 80, caps[id])); err != nil {
				t.Fatal(err)
			}
		}
		budgetConserved(t, c)
	}
	if c.stats.LeaseExpirations == 0 {
		t.Fatal("lease never expired")
	}
	if c.stats.StaleFreezes != 0 {
		t.Fatalf("leased coordinator took the freeze path %d times", c.stats.StaleFreezes)
	}
	if got := c.nodes["c"].capW; got != 100 {
		t.Fatalf("expired lease holds %.1f W, want the 100 W floor", got)
	}
	if !c.nodes["c"].expired {
		t.Fatal("node state not marked expired")
	}
	var row *NodeStatus
	for i := range c.Status().Nodes {
		if c.Status().Nodes[i].NodeID == "c" {
			row = &c.Status().Nodes[i]
		}
	}
	if row == nil || !row.LeaseExpired || row.LeaseToken != lastTok {
		t.Fatalf("status row does not render the expired lease: %+v", row)
	}

	// Rejoin: c reports again. The expiry clears, the token advances,
	// and the budget stays conserved.
	g, err := c.Submit(report("c", 8, 0.10, 99, 100))
	if err != nil {
		t.Fatal(err)
	}
	if g.Token <= lastTok {
		t.Fatalf("rejoin token %d did not advance past %d", g.Token, lastTok)
	}
	if c.nodes["c"].expired {
		t.Fatal("rejoin left the lease marked expired")
	}
	budgetConserved(t, c)
}

// TestSubmitDedupIgnoresReplays pins the server-side (node, epoch)
// dedupe: a re-delivered report mutates nothing — not the stats, not
// the fencing token, not the arbitration book — and returns the same
// grant the original got.
func TestSubmitDedupIgnoresReplays(t *testing.T) {
	c := newTest(t, leasedOpt())
	first, applied, err := c.SubmitDedup(report("a", 0, 0.15, 80, 100))
	if err != nil || !applied {
		t.Fatalf("first delivery: applied=%v err=%v", applied, err)
	}
	reports, tok := c.stats.Reports, c.nodes["a"].leaseTok
	for i := 0; i < 3; i++ {
		again, applied, err := c.SubmitDedup(report("a", 0, 0.15, 80, 100))
		if err != nil {
			t.Fatal(err)
		}
		if applied {
			t.Fatalf("replay %d counted as applied", i)
		}
		if again != first {
			t.Fatalf("replay %d got a different grant: %+v vs %+v", i, again, first)
		}
	}
	if c.stats.Reports != reports || c.nodes["a"].leaseTok != tok {
		t.Fatal("replays mutated durable stats or the fencing token")
	}
	// A genuinely newer epoch still applies.
	if _, applied, err := c.SubmitDedup(report("a", 1, 0.15, 80, 100)); err != nil || !applied {
		t.Fatalf("fresh epoch after replays: applied=%v err=%v", applied, err)
	}
	if c.nodes["a"].leaseTok != tok+1 {
		t.Fatalf("token %d after fresh epoch, want %d", c.nodes["a"].leaseTok, tok+1)
	}
}

// TestRestoreRejectsResurrectedLease is the recovery-ladder fence for
// satellite 1: a snapshot claiming a lease is expired while its cap
// still holds watts above the floor would double-allocate those watts
// on restart (the reclaim already returned them to the pool once).
// Restore must fail closed.
func TestRestoreRejectsResurrectedLease(t *testing.T) {
	c := newTest(t, leasedOpt())
	for e := 0; e < 2; e++ {
		for _, id := range []string{"a", "b", "c"} {
			if _, err := c.Submit(report(id, e, 0.15, 80, 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Snapshot()
	if err := newTest(t, leasedOpt()).Restore(st); err != nil {
		t.Fatalf("clean snapshot must restore: %v", err)
	}

	// Tamper: mark node a's lease expired while its cap stays above the
	// floor (keeping the document budget-conserved so only the lease
	// check can object).
	bad := *st
	bad.Nodes = append([]SavedNode(nil), st.Nodes...)
	bad.Nodes[0].LeaseExpired = true
	bad.Nodes[0].CapW += 10
	bad.Nodes[1].CapW -= 10
	err := newTest(t, leasedOpt()).Restore(&bad)
	if err == nil || !strings.Contains(err.Error(), "resurrects expired lease") {
		t.Fatalf("over-subscribed expired lease restored: %v", err)
	}

	// The same document is fine on a coordinator without leases (the
	// fields are inert v2 extras there) and when the cap is at floor.
	opt := leasedOpt()
	opt.LeaseEpochs = 0
	if err := newTest(t, opt).Restore(&bad); err != nil {
		t.Fatalf("lease fields must be inert without LeaseEpochs: %v", err)
	}
	ok := *st
	ok.Nodes = append([]SavedNode(nil), st.Nodes...)
	ok.Nodes[0].LeaseExpired = true // cap already at the 100 W floor
	if err := newTest(t, leasedOpt()).Restore(&ok); err != nil {
		t.Fatalf("at-floor expired lease must restore: %v", err)
	}
}

// FuzzLeaseStateDecode hammers the v2 (lease-bearing) snapshot decoder:
// any document that decodes and restores into a lease-enabled
// coordinator must leave it with a valid status, no expired lease
// above the floor, and lease state that survives a snapshot round
// trip — or be rejected whole.
func FuzzLeaseStateDecode(f *testing.F) {
	c, err := New(leasedOpt())
	if err != nil {
		f.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		for _, id := range []string{"a", "b", "c"} {
			_, _ = c.Submit(report(id, e, 0.15, 80, 100))
		}
	}
	if seed, err := jsonio.Marshal(c.Snapshot()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"schema":"sturgeon/coordstate/v2","budget_w":300,"pool_w":0,"nodes":[` +
		`{"node_id":"a","cap_w":300,"lease_token":7,"lease_expired":true,` +
		`"report":{"schema":"sturgeon/coordinator/v1","node_id":"a","healthy":true,"p95_s":0.001,"power_w":1,"cap_w":1}}]}`))
	f.Add([]byte(`{"schema":"sturgeon/coordstate/v1","budget_w":300,"pool_w":300,"nodes":[]}`))
	f.Add([]byte(`{"schema":"sturgeon/coordstate/v2","budget_w":300,"pool_w":300,"nodes":[],"stats":{"lease_expirations":-1}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var st State
		if err := jsonio.Unmarshal(data, &st); err != nil {
			return
		}
		rc, err := New(Options{BudgetW: st.BudgetW, FleetSize: 3, LeaseEpochs: 2})
		if err != nil {
			return
		}
		if err := rc.Restore(&st); err != nil {
			return // rejected whole: fine
		}
		if err := rc.Status().Validate(); err != nil {
			t.Fatalf("restored coordinator has invalid status: %v", err)
		}
		for id, ns := range rc.nodes {
			if ns.expired && ns.capW > rc.opt.LeaseFloorW+1e-6 {
				t.Fatalf("restore admitted expired lease above floor for %s: %.3f W", id, ns.capW)
			}
			if ns.leaseTok < 0 {
				t.Fatalf("restore admitted negative token for %s", id)
			}
		}
		// Lease state must survive the snapshot round trip exactly.
		rt, err := New(Options{BudgetW: st.BudgetW, FleetSize: 3, LeaseEpochs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Restore(rc.Snapshot()); err != nil {
			t.Fatalf("round-trip snapshot rejected: %v", err)
		}
		for id, ns := range rc.nodes {
			if rt.nodes[id].leaseTok != ns.leaseTok || rt.nodes[id].expired != ns.expired {
				t.Fatalf("lease state for %s diverged across round trip", id)
			}
		}
	})
}

// netPlanFor builds the scripted single-fate plans the fate-order
// battery drives: partitions via ManualNet, and the per-message fates
// via NewNet with the relevant rate pinned to 1 (every message suffers
// the fate, so the schedule is deterministic without seeding games).
func netPlanFor(t *testing.T, epochs, nodes int, kind string, seed int64) *faults.NetPlan {
	t.Helper()
	switch kind {
	case "partition-out":
		return faults.ManualNet(epochs, nodes,
			faults.NetWindow{Node: 0, Dir: faults.DirReport, Start: 1, End: epochs + 1})
	case "partition-in":
		return faults.ManualNet(epochs, nodes,
			faults.NetWindow{Node: 0, Dir: faults.DirGrant, Start: 1, End: epochs + 1})
	case "delay-all":
		return faults.NewNet(faults.NetSpec{DelayRate: 1, ReorderRate: 1}, seed, epochs, nodes)
	case "dup-all":
		return faults.NewNet(faults.NetSpec{DupRate: 1}, seed, epochs, nodes)
	}
	t.Fatalf("unknown plan kind %q", kind)
	return nil
}

// TestNetChaosFateOrder scripts each message fate through a NetChaos-
// wrapped Local transport and checks both the caller-visible outcome
// and the coordinator-side ground truth.
func TestNetChaosFateOrder(t *testing.T) {
	t.Run("partition-out", func(t *testing.T) {
		c := newTest(t, leasedOpt())
		nc := &NetChaos{Inner: &Local{C: c},
			Plan: netPlanFor(t, 4, 2, "partition-out", 0)}
		if _, err := nc.Report(context.Background(), report("node-0", 1, 0.2, 80, 100)); err == nil {
			t.Fatal("severed report delivered")
		}
		if c.stats.Reports != 0 {
			t.Fatal("partitioned-out report reached the coordinator")
		}
		if nc.Stats().PartitionedOut != 1 {
			t.Fatalf("stats %+v", nc.Stats())
		}
	})
	t.Run("partition-in", func(t *testing.T) {
		c := newTest(t, leasedOpt())
		nc := &NetChaos{Inner: &Local{C: c},
			Plan: netPlanFor(t, 4, 2, "partition-in", 0)}
		_, err := nc.Report(context.Background(), report("node-0", 1, 0.2, 80, 100))
		if err == nil {
			t.Fatal("lost grant still returned")
		}
		// The asymmetric fate: the caller saw a failure, but the
		// coordinator DID apply the report (the server-side lease renewed).
		if c.stats.Reports != 1 || c.nodes["node-0"].leaseTok != 1 {
			t.Fatalf("partitioned-in report not applied server-side: reports %d", c.stats.Reports)
		}
		if nc.Stats().PartitionedIn != 1 {
			t.Fatalf("stats %+v", nc.Stats())
		}
	})
	t.Run("delay-flush-reorder", func(t *testing.T) {
		c := newTest(t, leasedOpt())
		nc := &NetChaos{Inner: &Local{C: c},
			Plan: netPlanFor(t, 4, 2, "delay-all", 0)}
		// Both nodes' epoch-1 reports are held. Nothing reaches the
		// coordinator this epoch.
		for _, id := range []string{"node-0", "node-1"} {
			if _, err := nc.Report(context.Background(), report(id, 1, 0.2, 80, 100)); err == nil {
				t.Fatal("delayed report acked in its own epoch")
			}
		}
		if c.stats.Reports != 0 {
			t.Fatal("delayed reports arrived early")
		}
		// The first epoch-2 report flushes the held batch (reversed: the
		// plan schedules a reorder every epoch), then is itself delayed.
		if _, err := nc.Report(context.Background(), report("node-0", 2, 0.2, 80, 100)); err == nil {
			t.Fatal("epoch-2 report should also be delayed")
		}
		if c.stats.Reports != 2 {
			t.Fatalf("flush delivered %d late reports, want 2", c.stats.Reports)
		}
		st := nc.Stats()
		if st.Delayed != 3 || st.DeliveredLate != 2 || st.Reordered != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
	t.Run("duplicate-is-pure", func(t *testing.T) {
		c := newTest(t, leasedOpt())
		nc := &NetChaos{Inner: &Local{C: c},
			Plan: netPlanFor(t, 4, 2, "dup-all", 0)}
		g, err := nc.Report(context.Background(), report("node-0", 1, 0.2, 80, 100))
		if err != nil {
			t.Fatal(err)
		}
		// The duplicate was re-delivered behind the caller's back; the
		// server-side dedupe must have made it a no-op (replay purity:
		// one applied report, one token bump).
		if nc.Stats().Duplicated != 1 {
			t.Fatalf("stats %+v", nc.Stats())
		}
		if c.stats.Reports != 1 || c.nodes["node-0"].leaseTok != g.Token {
			t.Fatalf("duplicate mutated the coordinator: reports %d token %d vs grant %d",
				c.stats.Reports, c.nodes["node-0"].leaseTok, g.Token)
		}
	})
	t.Run("unmapped-node-passes-through", func(t *testing.T) {
		c := newTest(t, leasedOpt())
		nc := &NetChaos{Inner: &Local{C: c},
			Plan: netPlanFor(t, 4, 2, "partition-out", 0)}
		if _, err := nc.Report(context.Background(), report("weird", 1, 0.2, 80, 100)); err != nil {
			t.Fatalf("unmapped node harmed: %v", err)
		}
		if nc.Stats() != (NetStats{}) {
			t.Fatalf("unmapped node tallied fates: %+v", nc.Stats())
		}
	})
}
