package coordinator

import "context"

// Transport is how a node talks to the coordinator. Two implementations
// ship: Local, a deterministic in-process transport the cluster
// simulator steps synchronously, and Client (http.go), the networked
// HTTP/JSON transport behind cmd/sturgeond. A node that gets an error
// from either must keep running on its last-granted cap — the
// degradation contract every caller shares.
type Transport interface {
	// Report submits one epoch report and returns the node's current
	// grant (computed from the newest closed epoch, so grants propagate
	// with at most one epoch of lag).
	Report(ctx context.Context, r NodeReport) (Grant, error)
	// Status fetches the coordinator's fleet-wide view.
	Status(ctx context.Context) (*FleetStatus, error)
}

// Local is the in-process transport: direct synchronous calls into a
// Coordinator, no goroutines, no clock, no locks. Submitting reports in
// a fixed node order therefore yields a byte-identical grant sequence on
// every run — the property the cluster simulator's seeded-replay
// battery pins (internal/cluster, DESIGN.md §10).
type Local struct {
	C *Coordinator
}

// Report implements Transport. Submissions are deduplicated by (node,
// epoch) exactly like the HTTP server's /v1/report, so a chaos layer
// that duplicates messages sees identical outcomes on both paths.
func (l *Local) Report(_ context.Context, r NodeReport) (Grant, error) {
	g, _, err := l.C.SubmitDedup(r)
	return g, err
}

// Status implements Transport.
func (l *Local) Status(context.Context) (*FleetStatus, error) {
	return l.C.Status(), nil
}
