package coordinator

import "testing"

func TestChaosPlanIsDeterministic(t *testing.T) {
	spec := DefaultChaosSpec()
	a := NewChaos(spec, 42, 96, 8)
	b := NewChaos(spec, 42, 96, 8)
	for e := 1; e <= 96; e++ {
		if a.Outage(e) != b.Outage(e) {
			t.Fatalf("outage schedules diverge at epoch %d", e)
		}
		for n := 0; n < 8; n++ {
			if a.Dropped(e, n) != b.Dropped(e, n) {
				t.Fatalf("drop plans diverge at epoch %d node %d", e, n)
			}
		}
	}
	// A different seed must yield a different plan (overwhelmingly likely
	// at 10% drops over 96x8 slots).
	c := NewChaos(spec, 43, 96, 8)
	same := true
	for e := 1; e <= 96 && same; e++ {
		for n := 0; n < 8; n++ {
			if a.Dropped(e, n) != c.Dropped(e, n) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical drop plans")
	}
}

func TestChaosPlanShape(t *testing.T) {
	spec := DefaultChaosSpec()
	ch := NewChaos(spec, 7, 96, 8)
	outages, drops := 0, 0
	for e := 1; e <= 96; e++ {
		if ch.Outage(e) {
			outages++
		}
		for n := 0; n < 8; n++ {
			if ch.Dropped(e, n) {
				drops++
			}
		}
	}
	// Windows can truncate at the horizon or overlap, so the epoch count
	// is bounded, not exact.
	if outages < 1 || outages > spec.Outages*spec.OutageEpochs {
		t.Errorf("outage epochs %d outside [1, %d]", outages, spec.Outages*spec.OutageEpochs)
	}
	// 10% of 96*8 = ~77 expected drops; allow a wide deterministic band.
	if drops < 30 || drops > 150 {
		t.Errorf("drop count %d outside plausible band for rate %.2f", drops, spec.DropRate)
	}
}

func TestChaosNilIsQuiet(t *testing.T) {
	var ch *ChaosPlan
	if ch.Outage(3) || ch.Dropped(3, 0) {
		t.Error("nil chaos injected faults")
	}
}
