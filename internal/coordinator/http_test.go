package coordinator

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sturgeon/internal/durable"
	"sturgeon/internal/faults"
)

func newHTTPFixture(t *testing.T, opt Options) (*httptest.Server, *Client) {
	t.Helper()
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(c).Handler())
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL, 1)
	cl.BackoffBase = time.Millisecond
	return srv, cl
}

func TestHTTPReportGrantRoundTrip(t *testing.T) {
	_, cl := newHTTPFixture(t, Options{BudgetW: 200, MinCapW: 50, MaxCapW: 150, FleetSize: 2})
	ctx := context.Background()
	g, err := cl.Report(ctx, report("a", 0, 0.15, 95, 100))
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if g.Schema != Schema || g.NodeID != "a" || g.CapW != 100 {
		t.Fatalf("unexpected grant: %+v", g)
	}
	if _, err := cl.Report(ctx, report("b", 0, 0.15, 95, 100)); err != nil {
		t.Fatal(err)
	}
	g2, err := cl.Grant(ctx, "a")
	if err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if g2.CapW != g.CapW {
		t.Fatalf("re-sync grant %.1f differs from reported grant %.1f", g2.CapW, g.CapW)
	}
}

func TestHTTPStatusDocument(t *testing.T) {
	_, cl := newHTTPFixture(t, Options{BudgetW: 200, FleetSize: 2})
	ctx := context.Background()
	for _, id := range []string{"a", "b"} {
		if _, err := cl.Report(ctx, report(id, 0, 0.15, 90, 100)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.BudgetW != 200 || len(st.Nodes) != 2 || st.Stats.Reports != 2 {
		t.Fatalf("unexpected status: %+v", st)
	}
}

func TestHTTPRejectsMalformedReport(t *testing.T) {
	srv, cl := newHTTPFixture(t, Options{BudgetW: 200})
	// Client-side: validation fires before anything hits the wire.
	r := report("a", 0, 0.15, 90, 100)
	r.Slack = math.NaN()
	_, err := cl.Report(context.Background(), r)
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN slack not rejected at the client: %v", err)
	}
	// Server-side: raw garbage that bypasses the client gets a 400.
	resp, err := http.Post(srv.URL+"/v1/report", "application/json",
		strings.NewReader(`{"schema":"bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed report got %s, want 400", resp.Status)
	}
}

func TestHTTPClientRetriesTransientFailures(t *testing.T) {
	c, err := New(Options{BudgetW: 200, FleetSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(c).Handler()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "backend hiccup", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, req)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, 7)
	cl.BackoffBase = time.Millisecond
	g, err := cl.Report(context.Background(), report("a", 0, 0.15, 90, 100))
	if err != nil {
		t.Fatalf("retries exhausted: %v (calls %d)", err, calls.Load())
	}
	if g.CapW != 100 || calls.Load() != 3 {
		t.Fatalf("grant %+v after %d calls, want success on the 3rd", g, calls.Load())
	}
}

func TestHTTPClientGivesUpOnPermanentErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "no such fleet", http.StatusNotFound)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, 7)
	cl.BackoffBase = time.Millisecond
	if _, err := cl.Grant(context.Background(), "ghost"); err == nil {
		t.Fatal("404 reported as success")
	}
	if calls.Load() != 1 {
		t.Fatalf("client retried a permanent 4xx %d times", calls.Load())
	}
}

func TestHTTPClientHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "always down", http.StatusBadGateway)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, 7)
	cl.Retries = 50
	cl.BackoffBase = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Status(ctx)
	if err == nil {
		t.Fatal("expected an error from a downed coordinator")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("client ignored context deadline, took %v", time.Since(start))
	}
}

// TestHTTPOversizedReportRejected413: a body past maxReportBytes must
// be refused with 413, not mis-reported as malformed JSON — and must
// not disturb arbitration state.
func TestHTTPOversizedReportRejected413(t *testing.T) {
	srv, cl := newHTTPFixture(t, Options{BudgetW: 200, FleetSize: 1})
	ctx := context.Background()
	if _, err := cl.Report(ctx, report("a", 0, 0.15, 90, 100)); err != nil {
		t.Fatal(err)
	}
	huge := strings.NewReader(`{"schema":"` + strings.Repeat("x", maxReportBytes) + `"}`)
	resp, err := http.Post(srv.URL+"/v1/report", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized report got %s, want 413", resp.Status)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.Reports != 1 {
		t.Fatalf("oversized body reached Submit: %d reports", st.Stats.Reports)
	}
	// A body at the limit must still be readable: the limit protects the
	// decoder, it does not shrink the accepted document space.
	if _, err := cl.Report(ctx, report("a", 1, 0.15, 90, 100)); err != nil {
		t.Fatalf("normal report after the oversized one: %v", err)
	}
}

// TestNewHTTPServerTimeouts pins the protection timeouts every listener
// binding must carry (satellite of the crash-recovery PR: a coordinator
// that survives SIGKILL should not be hung by a slowloris peer).
func TestNewHTTPServerTimeouts(t *testing.T) {
	hs := NewHTTPServer("127.0.0.1:0", http.NewServeMux())
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 ||
		hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("NewHTTPServer leaves a protection timeout unset: %+v", hs)
	}
	if hs.WriteTimeout < 35*time.Second {
		t.Fatalf("WriteTimeout %v would cut off the default 30 s pprof profile", hs.WriteTimeout)
	}
}

// TestHTTPClientAbortsCancelledContext: a context cancelled before (or
// during) backoff must stop the retry loop without firing another
// request at the coordinator.
func TestHTTPClientAbortsCancelledContext(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "always down", http.StatusBadGateway)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, 7)
	cl.Retries = 50
	cl.BackoffBase = time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first attempt
	if _, err := cl.Status(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context returned %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("client fired %d requests on a dead context, want 0", calls.Load())
	}

	// Cancelled mid-backoff: the in-flight schedule must abort without
	// one more attempt sneaking out after the cancellation.
	cl.BackoffBase = 50 * time.Millisecond
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond) // inside the first backoff sleep
		cancel2()
	}()
	if _, err := cl.Status(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-backoff cancel returned %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("mid-backoff cancel let %d requests out, want exactly 1", got)
	}
}

// TestHTTPServerPersistsReports wires the write-ahead persistence into
// the HTTP server and checks a recovered coordinator answers
// /fleet/status with the exact pre-crash document.
func TestHTTPServerPersistsReports(t *testing.T) {
	opt := Options{BudgetW: 200, MinCapW: 50, MaxCapW: 150, FleetSize: 2}
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	store := durable.NewMemStore()
	s := NewServer(c)
	s.SetPersist(&Persist{Store: store, SnapshotEvery: 3})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cl := NewClient(srv.URL, 1)
	ctx := context.Background()
	caps := map[string]float64{"a": 100, "b": 100}
	for e := 0; e < 4; e++ {
		for _, id := range []string{"a", "b"} {
			slack, pw := 0.05, caps[id]-0.5
			if id == "b" {
				slack, pw = 0.6, 60
			}
			g, err := cl.Report(ctx, report(id, e, slack, pw, caps[id]))
			if err != nil {
				t.Fatal(err)
			}
			caps[id] = g.CapW
		}
	}
	want, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}

	rec, info, err := Recover(store, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Degraded {
		t.Fatalf("clean server store recovered degraded (%s)", info.Reason)
	}
	if !reflect.DeepEqual(want, rec.Status()) {
		t.Fatal("recovered coordinator renders a different /fleet/status document")
	}
	// An explicit snapshot (the daemon's SIGTERM path) must leave the
	// store recoverable to the same state.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	rec2, _, err := Recover(store, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, rec2.Status()) {
		t.Fatal("post-snapshot recovery diverges")
	}
}

// TestHTTPMultiNodeConvergence drives a 4-node fleet over the real
// HTTP transport: one node pinned against its cap, one with stranded
// headroom, two in band. Watts must flow from the donor to the starved
// node within a few epochs, conserving the budget throughout.
func TestHTTPMultiNodeConvergence(t *testing.T) {
	_, cl := newHTTPFixture(t, Options{BudgetW: 400, MinCapW: 60, MaxCapW: 140, FleetSize: 4})
	ctx := context.Background()
	ids := []string{"n0", "n1", "n2", "n3"}
	caps := map[string]float64{}
	for _, id := range ids {
		g, err := cl.Report(ctx, report(id, 0, 0.15, 95, 100))
		if err != nil {
			t.Fatal(err)
		}
		caps[id] = g.CapW
	}
	for e := 1; e <= 10; e++ {
		for _, id := range ids {
			var slack, pw float64
			switch id {
			case "n0": // starved: pinned against its cap
				slack, pw = 0.05, caps[id]-0.5
			case "n1": // donor: saturated well below its cap
				slack, pw = 0.6, 70
			default: // in band
				slack, pw = 0.15, 90
			}
			g, err := cl.Report(ctx, report(id, e, slack, pw, caps[id]))
			if err != nil {
				t.Fatalf("epoch %d node %s: %v", e, id, err)
			}
			caps[id] = g.CapW
		}
	}
	if !(caps["n0"] > 100) {
		t.Fatalf("starved node never grew: %.1f W", caps["n0"])
	}
	if !(caps["n1"] < 100) {
		t.Fatalf("donor never shrank: %.1f W", caps["n1"])
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sum := st.PoolW
	for _, n := range st.Nodes {
		sum += n.CapW
	}
	if math.Abs(sum-400) > 1e-6 {
		t.Fatalf("budget not conserved over HTTP: caps+pool %.3f W", sum)
	}
}

// TestHTTPReportDedupeByNodeEpoch is the regression fence for the
// server-side (node, epoch) dedupe on /v1/report: a client that
// retransmits after a lost ack must get the identical grant back with
// nothing applied twice — no double-counted report, no advanced lease
// token.
func TestHTTPReportDedupeByNodeEpoch(t *testing.T) {
	_, cl := newHTTPFixture(t, Options{
		BudgetW: 300, MinCapW: 50, MaxCapW: 150, FleetSize: 3, LeaseEpochs: 2,
	})
	ctx := context.Background()
	first, err := cl.Report(ctx, report("a", 0, 0.15, 95, 100))
	if err != nil {
		t.Fatal(err)
	}
	for retry := 0; retry < 3; retry++ {
		again, err := cl.Report(ctx, report("a", 0, 0.15, 95, 100))
		if err != nil {
			t.Fatalf("retry %d: %v", retry, err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("retry %d changed the grant: %+v vs %+v", retry, again, first)
		}
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.Reports != 1 {
		t.Fatalf("replays were applied: %d reports counted, want 1", st.Stats.Reports)
	}
	// A genuinely fresh epoch still applies and advances the fence.
	g, err := cl.Report(ctx, report("a", 1, 0.15, 95, 100))
	if err != nil {
		t.Fatal(err)
	}
	if g.Token != first.Token+1 {
		t.Fatalf("fresh epoch token %d, want %d", g.Token, first.Token+1)
	}
}

// TestHTTPPartitionSoak drives the identical seeded net-chaos schedule
// through the networked HTTP transport and the in-process Local
// transport and requires identical message fates, identical grants and
// identical final fleet state. This is the purity contract NetChaos
// advertises — the plan is a function of (spec, seed, epochs, nodes),
// never of transport timing — and it is what lets the CI partition-soak
// job exercise the real daemon path with the simulator's exact chaos.
func TestHTTPPartitionSoak(t *testing.T) {
	const (
		nodes  = 3
		epochs = 40
		seed   = 20260808
	)
	opt := Options{BudgetW: 300, MinCapW: 50, MaxCapW: 150, FleetSize: nodes, LeaseEpochs: 2}
	spec := faults.NetSpec{
		PartitionRate:       0.05,
		MeanPartitionEpochs: 2,
		DropRate:            0.08,
		DelayRate:           0.08,
		DupRate:             0.08,
		ReorderRate:         0.5,
	}

	// One soak pass: the scripted fleet rotates through donor, starved
	// and in-band roles so arbitration genuinely moves watts while the
	// chaos schedule severs, delays and duplicates the traffic.
	run := func(t *testing.T, inner Transport) ([]string, *FleetStatus, NetStats) {
		t.Helper()
		nc := &NetChaos{Inner: inner, Plan: faults.NewNet(spec, seed, epochs, nodes)}
		ctx := context.Background()
		var fates []string
		for e := 0; e < epochs; e++ {
			for i := 0; i < nodes; i++ {
				slack := 0.04 + 0.13*float64((e+2*i)%4)
				pw := 70 + 8*float64(i)
				g, err := nc.Report(ctx, report(fmt.Sprintf("node-%d", i), e, slack, pw, 100))
				if err != nil {
					fates = append(fates, fmt.Sprintf("e%d n%d err", e, i))
					continue
				}
				fates = append(fates, fmt.Sprintf("e%d n%d cap %.6f tok %d ttl %d floor %.6f",
					e, i, g.CapW, g.Token, g.LeaseEpochs, g.FloorW))
			}
		}
		st, err := nc.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return fates, st, nc.Stats()
	}

	local := newTest(t, opt)
	localFates, localStatus, localNet := run(t, &Local{C: local})

	_, cl := newHTTPFixture(t, opt)
	httpFates, httpStatus, httpNet := run(t, cl)

	if len(localFates) != len(httpFates) {
		t.Fatalf("fate counts differ: local %d, http %d", len(localFates), len(httpFates))
	}
	for i := range localFates {
		if localFates[i] != httpFates[i] {
			t.Fatalf("fate %d diverged:\n  local: %s\n  http:  %s", i, localFates[i], httpFates[i])
		}
	}
	if localNet != httpNet {
		t.Fatalf("chaos tallies diverged:\n  local: %+v\n  http:  %+v", localNet, httpNet)
	}
	if localNet.PartitionedOut+localNet.Dropped == 0 || localNet.Delayed == 0 || localNet.Duplicated == 0 {
		t.Fatalf("soak was vacuous: %+v", localNet)
	}
	if !reflect.DeepEqual(localStatus, httpStatus) {
		t.Fatalf("final fleet state diverged:\n  local: %+v\n  http:  %+v", localStatus, httpStatus)
	}
	if localStatus.Stats.LeaseExpirations == 0 {
		t.Fatal("soak never expired a lease — the schedule is too gentle to prove anything")
	}
	if err := httpStatus.Validate(); err != nil {
		t.Fatalf("final status over HTTP: %v", err)
	}
}
