package coordinator

import (
	"math"
	"strings"
	"testing"
)

func newTest(t *testing.T, opt Options) *Coordinator {
	t.Helper()
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func report(id string, epoch int, slack, powerW, capW float64) NodeReport {
	return NodeReport{
		Schema: Schema, NodeID: id, Epoch: epoch,
		Slack: slack, P95S: 0.005, PowerW: powerW, CapW: capW,
		BEThroughputUPS: 100, Healthy: true,
	}
}

// submit pushes one full epoch of reports (all nodes, same telemetry
// shape via fn) and returns the grants by node.
func submitEpoch(t *testing.T, c *Coordinator, epoch int, ids []string,
	fn func(id string) (slack, powerW float64)) map[string]Grant {
	t.Helper()
	out := map[string]Grant{}
	for _, id := range ids {
		slack, pw := fn(id)
		g, err := c.Submit(report(id, epoch, slack, pw, 0))
		if err != nil {
			t.Fatalf("submit %s/%d: %v", id, epoch, err)
		}
		out[id] = g
	}
	return out
}

func budgetConserved(t *testing.T, c *Coordinator) {
	t.Helper()
	st := c.Status()
	sum := st.PoolW
	for _, n := range st.Nodes {
		sum += n.CapW
	}
	if math.Abs(sum-st.BudgetW) > 1e-6 {
		t.Fatalf("budget leaked: caps+pool %.6f, budget %.6f", sum, st.BudgetW)
	}
}

func TestArbitrationMovesWattsFromDonorToRequester(t *testing.T) {
	c := newTest(t, Options{BudgetW: 200, MinCapW: 50, MaxCapW: 150, FleetSize: 2})
	ids := []string{"a", "b"}
	// Adopt both at an even 100 W split.
	for _, id := range ids {
		if _, err := c.Submit(report(id, 0, 0.15, 95, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// a: slack-rich, drawing 60 of its 100 W (stranded headroom — donor).
	// b: pinned at its cap (headroom below the reserve — requester).
	for e := 1; e <= 6; e++ {
		submitEpoch(t, c, e, ids, func(id string) (float64, float64) {
			if id == "a" {
				return 0.5, 60
			}
			return 0.15, c.nodes["b"].capW - 1
		})
	}
	ga, _ := c.GrantFor("a")
	gb, _ := c.GrantFor("b")
	if !(ga.CapW < 100) || !(gb.CapW > 100) {
		t.Fatalf("watts did not move: a=%.1f b=%.1f", ga.CapW, gb.CapW)
	}
	budgetConserved(t, c)
	if st := c.Status(); st.Stats.Donations == 0 || st.Stats.GrantsUp == 0 || st.Stats.MovedW == 0 {
		t.Fatalf("stats do not reflect the moves: %+v", st.Stats)
	}
}

func TestHysteresisBandHolds(t *testing.T) {
	c := newTest(t, Options{BudgetW: 200, FleetSize: 2})
	ids := []string{"a", "b"}
	for _, id := range ids {
		if _, err := c.Submit(report(id, 0, 0.15, 90, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Both nodes inside [alpha, beta] with comfortable headroom in
	// reserve terms but slack in band: no watts may move.
	for e := 1; e <= 5; e++ {
		submitEpoch(t, c, e, ids, func(string) (float64, float64) { return 0.15, 90 })
	}
	for _, id := range ids {
		if g, _ := c.GrantFor(id); g.CapW != 100 {
			t.Fatalf("in-band node %s moved to %.1f W", id, g.CapW)
		}
	}
	if st := c.Status(); st.Stats.MovedW != 0 {
		t.Fatalf("in-band fleet moved %.1f W", st.Stats.MovedW)
	}
}

func TestBinaryHalvingOnFlip(t *testing.T) {
	c := newTest(t, Options{BudgetW: 200, MinCapW: 40, MaxCapW: 160, FleetSize: 2})
	ids := []string{"a", "b"}
	for _, id := range ids {
		if _, err := c.Submit(report(id, 0, 0.15, 95, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1: a donates (first move = half its cap margin, quantized);
	// b holds in-band so the donation stays pooled for the flip return.
	submitEpoch(t, c, 1, ids, func(id string) (float64, float64) {
		if id == "a" {
			return 0.5, 50
		}
		return 0.15, 90
	})
	capAfterDonate := c.nodes["a"].capW
	firstGive := 100 - capAfterDonate
	if firstGive <= 0 {
		t.Fatalf("no initial donation")
	}
	wantFirst := math.Floor((100 - 40) / 2)
	if firstGive != wantFirst {
		t.Fatalf("first donation %.1f W, want half the margin %.1f W", firstGive, wantFirst)
	}
	// Epoch 2: a flips to requester — half the donation must come back
	// and its step granularity must halve.
	stepBefore := c.nodes["a"].stepW
	submitEpoch(t, c, 2, ids, func(id string) (float64, float64) {
		if id == "a" {
			return 0.02, capAfterDonate - 0.5
		}
		return 0.15, 90
	})
	back := c.nodes["a"].capW - capAfterDonate
	if want := math.Floor(firstGive / 2); back != want {
		t.Fatalf("flip returned %.1f W, want %.1f W (half of %.1f)", back, want, firstGive)
	}
	if got := c.nodes["a"].stepW; got != math.Max(1, stepBefore/2) {
		t.Fatalf("step did not halve on flip: %.2f -> %.2f", stepBefore, got)
	}
	budgetConserved(t, c)
}

func TestStaleNodeFrozenNotReallocated(t *testing.T) {
	c := newTest(t, Options{BudgetW: 300, MinCapW: 50, MaxCapW: 200, FleetSize: 3, StaleEpochs: 2})
	ids := []string{"a", "b", "c"}
	for _, id := range ids {
		if _, err := c.Submit(report(id, 0, 0.15, 95, 100)); err != nil {
			t.Fatal(err)
		}
	}
	capBefore := c.nodes["c"].capW
	// c goes silent; a and b keep reporting with b hungry. Epochs close
	// via FleetSize being unreachable -> newer-epoch reports.
	for e := 1; e <= 6; e++ {
		submitEpoch(t, c, e, []string{"a", "b"}, func(id string) (float64, float64) {
			if id == "a" {
				return 0.5, 50
			}
			return 0.02, c.nodes["b"].capW - 0.5
		})
	}
	if got := c.nodes["c"].capW; got != capBefore {
		t.Fatalf("stale node's grant moved: %.1f -> %.1f W", capBefore, got)
	}
	st := c.Status()
	if st.Stats.StaleFreezes == 0 {
		t.Fatal("staleness fallback never engaged")
	}
	var rowC *NodeStatus
	for i := range st.Nodes {
		if st.Nodes[i].NodeID == "c" {
			rowC = &st.Nodes[i]
		}
	}
	if rowC == nil || !rowC.Stale {
		t.Fatalf("status does not mark c stale: %+v", rowC)
	}
	budgetConserved(t, c)
}

func TestUnhealthyNodeShrinksToFloor(t *testing.T) {
	c := newTest(t, Options{BudgetW: 200, MinCapW: 40, MaxCapW: 160, FleetSize: 2})
	ids := []string{"a", "b"}
	for _, id := range ids {
		if _, err := c.Submit(report(id, 0, 0.15, 95, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for e := 1; e <= 2; e++ {
		for _, id := range ids {
			r := report(id, e, 0.15, 90, 0)
			if id == "b" {
				r.Healthy = false
			}
			if _, err := c.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if g, _ := c.GrantFor("b"); g.CapW != 40 {
		t.Fatalf("unhealthy node kept %.1f W, want the 40 W floor", g.CapW)
	}
	budgetConserved(t, c)
}

func TestCapsRespectClampsAndConservation(t *testing.T) {
	c := newTest(t, Options{BudgetW: 200, MinCapW: 80, MaxCapW: 110, FleetSize: 2})
	ids := []string{"a", "b"}
	for _, id := range ids {
		if _, err := c.Submit(report(id, 0, 0.15, 95, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Drive hard in one direction for many epochs; clamps must hold.
	for e := 1; e <= 20; e++ {
		submitEpoch(t, c, e, ids, func(id string) (float64, float64) {
			if id == "a" {
				return 0.9, 40
			}
			return -0.5, c.nodes["b"].capW
		})
		for _, id := range ids {
			g, _ := c.GrantFor(id)
			if g.CapW < 80-1e-9 || g.CapW > 110+1e-9 {
				t.Fatalf("epoch %d: %s cap %.2f outside [80, 110]", e, id, g.CapW)
			}
		}
		budgetConserved(t, c)
	}
	if got := c.nodes["a"].capW; got != 80 {
		t.Fatalf("persistent donor should sit at the floor, has %.1f W", got)
	}
	if got := c.nodes["b"].capW; got != 110 {
		t.Fatalf("persistent requester should sit at the ceiling, has %.1f W", got)
	}
}

func TestEpochClosesOnNewerReportDespiteDrops(t *testing.T) {
	c := newTest(t, Options{BudgetW: 200, MinCapW: 50, MaxCapW: 150, FleetSize: 2})
	for _, id := range []string{"a", "b"} {
		if _, err := c.Submit(report(id, 0, 0.15, 95, 100)); err != nil {
			t.Fatal(err)
		}
	}
	base := c.stats.Arbitrations // adoption already closed epoch 0
	// Epoch 1: only a reports (b's report dropped). Nothing arbitrates
	// yet — the fleet count is short.
	if _, err := c.Submit(report("a", 1, 0.5, 50, 0)); err != nil {
		t.Fatal(err)
	}
	if c.stats.Arbitrations != base {
		t.Fatal("arbitrated a short epoch")
	}
	// Epoch 2 arrives: epoch 1 must close with what it has.
	if _, err := c.Submit(report("a", 2, 0.5, 50, 0)); err != nil {
		t.Fatal(err)
	}
	if c.stats.Arbitrations != base+1 {
		t.Fatalf("stalled fleet: %d arbitrations after newer-epoch report (base %d)", c.stats.Arbitrations, base)
	}
}

func TestSubmitRejectsMalformedReports(t *testing.T) {
	c := newTest(t, Options{BudgetW: 100})
	cases := []struct {
		name string
		mut  func(*NodeReport)
		want string
	}{
		{"wrong schema", func(r *NodeReport) { r.Schema = "bogus" }, "schema"},
		{"empty id", func(r *NodeReport) { r.NodeID = "" }, "node id"},
		{"negative epoch", func(r *NodeReport) { r.Epoch = -1 }, "epoch"},
		{"nan slack", func(r *NodeReport) { r.Slack = math.NaN() }, "non-finite"},
		{"inf power", func(r *NodeReport) { r.PowerW = math.Inf(1) }, "non-finite"},
		{"negative power", func(r *NodeReport) { r.PowerW = -1 }, "negative"},
	}
	for _, tc := range cases {
		r := report("a", 1, 0.1, 50, 60)
		tc.mut(&r)
		_, err := c.Submit(r)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if c.stats.Arbitrations != 0 || len(c.nodes) != 0 {
		t.Fatal("malformed reports mutated coordinator state")
	}
}

func TestStatusValidatesAndAdoptClamps(t *testing.T) {
	c := newTest(t, Options{BudgetW: 100, MinCapW: 10, MaxCapW: 90, FleetSize: 3})
	// Join over-subscribed: three nodes each asking 60 of a 100 W budget.
	for i, id := range []string{"a", "b", "c"} {
		if _, err := c.Submit(report(id, 0, 0.15, 50, 60)); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	st := c.Status()
	if err := st.Validate(); err != nil {
		t.Fatalf("status of over-subscribed join invalid: %v", err)
	}
	sum := st.PoolW
	for _, n := range st.Nodes {
		sum += n.CapW
	}
	if sum > 100+1e-6 {
		t.Fatalf("over-subscribed join allocated %.1f W of a 100 W budget", sum)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(Options{BudgetW: 100, MinCapW: 50, MaxCapW: 20}); err == nil {
		t.Error("inverted clamp accepted")
	}
	if _, err := New(Options{BudgetW: 100, Alpha: 0.3, Beta: 0.2}); err == nil {
		t.Error("inverted hysteresis band accepted")
	}
}

// TestDeterministicGrantSequence pins that the same report sequence
// yields byte-identical grants — the property the cluster simulator's
// replay battery builds on.
func TestDeterministicGrantSequence(t *testing.T) {
	run := func() []float64 {
		c := newTest(t, Options{BudgetW: 400, MinCapW: 60, MaxCapW: 140, FleetSize: 4})
		ids := []string{"n0", "n1", "n2", "n3"}
		var caps []float64
		for e := 0; e <= 10; e++ {
			for i, id := range ids {
				slack := 0.5 - float64((e+i)%4)*0.2
				pw := 70 + float64((e*7+i*13)%30)
				g, err := c.Submit(report(id, e, slack, pw, 100))
				if err != nil {
					t.Fatal(err)
				}
				caps = append(caps, g.CapW)
			}
		}
		return caps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}
