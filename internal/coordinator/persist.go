package coordinator

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"sturgeon/internal/durable"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

// Crash-safe persistence for the arbitration state machine. The
// coordinator is a pure function of its submitted reports, which makes
// its durability model unusually simple: a State snapshot pins the
// machine at a point in time, and replaying the NodeReports applied
// after that snapshot — logged durably before each grant is considered
// acknowledged — reconstructs the pre-crash state *exactly*, stats and
// all. internal/durable supplies the two primitives (atomic snapshots,
// CRC-framed record log with torn-tail truncation); this file supplies
// the coordinator-shaped glue: the coordstate/v1 document,
// Snapshot/Restore, the report record codec, the Persist binder used by
// both the HTTP server and the simulator's DurableLocal transport, and
// Recover, the boot path with its corruption-degradation ladder.

// StateSchema tags the durable coordinator snapshot; bump on breaking
// change. v2 added the per-node lease fields; v1 documents (no lease
// state: zero tokens, nothing expired) are still accepted on load.
const StateSchema = "sturgeon/coordstate/v2"

// stateSchemaV1 is the pre-lease snapshot schema, accepted read-only.
const stateSchemaV1 = "sturgeon/coordstate/v1"

// SavedNode is one node's row in the snapshot: the full per-node
// book-keeping arbitration needs, including the binary-halving episode
// state and the last report (arbitration of a not-yet-closed epoch
// reads it).
type SavedNode struct {
	NodeID       string     `json:"node_id"`
	LastEpoch    int        `json:"last_epoch"`
	CapW         float64    `json:"cap_w"`
	StepW        float64    `json:"step_w"`
	LastDonatedW float64    `json:"last_donated_w"`
	Granted      bool       `json:"granted"`
	Report       NodeReport `json:"report"`
	// LeaseToken and LeaseExpired persist the fenced-lease state (v2):
	// a SIGKILL between a lease expiry and the next snapshot must not
	// resurrect the reclaimed grant on restart.
	LeaseToken   int64 `json:"lease_token,omitempty"`
	LeaseExpired bool  `json:"lease_expired,omitempty"`
}

// State is the coordstate/v1 snapshot document: everything Restore
// needs to stand a coordinator back up mid-arbitration.
type State struct {
	Schema  string  `json:"schema"`
	BudgetW float64 `json:"budget_w"`
	// Epoch is the newest epoch any report has mentioned; ArbEpoch the
	// last epoch arbitrated; Arbitrated whether Epoch is already closed.
	Epoch      int         `json:"epoch"`
	ArbEpoch   int         `json:"arb_epoch"`
	Arbitrated bool        `json:"arbitrated"`
	PoolW      float64     `json:"pool_w"`
	Stats      Stats       `json:"stats"`
	Nodes      []SavedNode `json:"nodes"`
}

// Validate implements jsonio.Validator. Beyond field sanity it enforces
// the two invariants a restore must never weaken: epoch bookkeeping is
// monotone (arb_epoch ≤ epoch, every node's last_epoch ≤ epoch) and the
// budget is conserved *exactly* — Σcaps + pool ≡ budget within float
// tolerance, rejecting under- as well as over-subscribed documents.
func (s *State) Validate() error {
	switch {
	case s.Schema != StateSchema && s.Schema != stateSchemaV1:
		return fmt.Errorf("coordinator: state schema %q, want %q", s.Schema, StateSchema)
	case !finite(s.BudgetW) || s.BudgetW <= 0:
		return fmt.Errorf("coordinator: state budget %v not positive", s.BudgetW)
	case !finite(s.PoolW) || s.PoolW < -1e-6:
		return fmt.Errorf("coordinator: state pool %v negative", s.PoolW)
	case s.Epoch < 0 || s.ArbEpoch < 0 || s.ArbEpoch > s.Epoch:
		return fmt.Errorf("coordinator: state epochs inverted (epoch %d, arb %d)", s.Epoch, s.ArbEpoch)
	case s.Stats.Reports < 0 || s.Stats.Arbitrations < 0 || s.Stats.Donations < 0 ||
		s.Stats.GrantsUp < 0 || s.Stats.StaleFreezes < 0 || s.Stats.LeaseExpirations < 0 ||
		!finite(s.Stats.MovedW) || s.Stats.MovedW < 0:
		return fmt.Errorf("coordinator: state stats carry negative tallies")
	}
	sum := s.PoolW
	prev := ""
	for i, n := range s.Nodes {
		switch {
		case n.NodeID == "":
			return fmt.Errorf("coordinator: state node %d has empty id", i)
		case n.NodeID <= prev:
			return fmt.Errorf("coordinator: state nodes not strictly sorted at %q", n.NodeID)
		case !finite(n.CapW) || n.CapW < 0:
			return fmt.Errorf("coordinator: state node %s carries invalid cap %v", n.NodeID, n.CapW)
		case !finite(n.StepW) || n.StepW < 0 || !finite(n.LastDonatedW) || n.LastDonatedW < 0:
			return fmt.Errorf("coordinator: state node %s carries invalid episode state", n.NodeID)
		case n.LastEpoch < 0 || n.LastEpoch > s.Epoch:
			return fmt.Errorf("coordinator: state node %s last epoch %d outside [0, %d]", n.NodeID, n.LastEpoch, s.Epoch)
		case n.LeaseToken < 0:
			return fmt.Errorf("coordinator: state node %s carries negative lease token %d", n.NodeID, n.LeaseToken)
		case n.Report.NodeID != n.NodeID:
			return fmt.Errorf("coordinator: state node %s carries report for %q", n.NodeID, n.Report.NodeID)
		}
		if err := n.Report.Validate(); err != nil {
			return err
		}
		prev = n.NodeID
		sum += n.CapW
	}
	if tol := 1e-6 * math.Max(1, s.BudgetW); math.Abs(sum-s.BudgetW) > tol {
		return fmt.Errorf("coordinator: state does not conserve the budget: caps+pool %.6f W vs %.6f W", sum, s.BudgetW)
	}
	return nil
}

// Snapshot renders the coordinator's full arbitration state as a
// coordstate/v1 document. Like every Coordinator method it must be
// serialized by the owner (Server mutex or the simulation's serial
// merge).
func (c *Coordinator) Snapshot() *State {
	st := &State{
		Schema:     StateSchema,
		BudgetW:    c.opt.BudgetW,
		Epoch:      c.epoch,
		ArbEpoch:   c.arbEpoch,
		Arbitrated: c.arbitrated,
		PoolW:      c.poolW,
		Stats:      c.stats,
	}
	for _, id := range c.order {
		ns := c.nodes[id]
		st.Nodes = append(st.Nodes, SavedNode{
			NodeID:       ns.id,
			LastEpoch:    ns.lastEpoch,
			CapW:         ns.capW,
			StepW:        ns.stepW,
			LastDonatedW: ns.lastDonatedW,
			Granted:      ns.granted,
			Report:       ns.report,
			LeaseToken:   ns.leaseTok,
			LeaseExpired: ns.expired,
		})
	}
	return st
}

// Restore replaces the coordinator's state with a validated snapshot.
// The document is fully validated — including exact budget conservation
// — before a single field is touched, and the snapshot's budget must
// match the coordinator's own: on any error the coordinator is left
// exactly as it was, which is what lets Recover fall back to fresh
// adoption without rebuilding anything.
func (c *Coordinator) Restore(st *State) error {
	if err := st.Validate(); err != nil {
		return err
	}
	if math.Abs(st.BudgetW-c.opt.BudgetW) > 1e-9*math.Max(1, c.opt.BudgetW) {
		return fmt.Errorf("coordinator: state budget %.3f W does not match configured %.3f W",
			st.BudgetW, c.opt.BudgetW)
	}
	if c.opt.LeaseEpochs > 0 {
		// Fail closed on over-subscribed restored leases: a snapshot in
		// which an already-expired lease still holds watts above its
		// floor would resurrect a reclaimed grant — double-allocating
		// against whatever the pool re-granted before the crash.
		for _, n := range st.Nodes {
			if n.LeaseExpired && n.CapW > c.opt.LeaseFloorW+1e-6 {
				return fmt.Errorf("coordinator: state resurrects expired lease for %s: cap %.3f W above floor %.3f W",
					n.NodeID, n.CapW, c.opt.LeaseFloorW)
			}
		}
	}
	c.nodes = make(map[string]*nodeState, len(st.Nodes))
	c.order = c.order[:0]
	for _, n := range st.Nodes {
		c.nodes[n.NodeID] = &nodeState{
			id:           n.NodeID,
			report:       n.Report,
			lastEpoch:    n.LastEpoch,
			capW:         n.CapW,
			stepW:        n.StepW,
			lastDonatedW: n.LastDonatedW,
			granted:      n.Granted,
			leaseTok:     n.LeaseToken,
			expired:      n.LeaseExpired,
		}
		c.order = append(c.order, n.NodeID)
	}
	sort.Strings(c.order)
	c.epoch = st.Epoch
	c.arbEpoch = st.ArbEpoch
	c.arbitrated = st.Arbitrated
	c.poolW = st.PoolW
	c.stats = st.Stats
	c.poolGauge.Set(c.poolW)
	c.epochGauge.Set(float64(c.epoch))
	return nil
}

// EncodeReportRecord frames one applied NodeReport as a record-log
// payload (compact JSON; the CRC framing is durable's).
func EncodeReportRecord(r NodeReport) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(&r)
}

// DecodeReportRecord parses and validates one record-log payload.
func DecodeReportRecord(payload []byte) (NodeReport, error) {
	var r NodeReport
	if err := jsonio.Unmarshal(payload, &r); err != nil {
		return NodeReport{}, err
	}
	return r, nil
}

// Persist binds a coordinator to a durable store: every applied report
// is logged before the grant is considered acknowledged, and a snapshot
// is cut every SnapshotEvery logged reports (0 = only explicit
// Snapshot calls — the daemon's ticker and SIGTERM path). Calls must be
// serialized by the coordinator's owner, like the coordinator itself.
type Persist struct {
	Store durable.Store
	// SnapshotEvery cuts an automatic snapshot after this many logged
	// reports (0 disables count-based snapshots).
	SnapshotEvery int

	sinceSnapshot int
	writeCtr      *obs.Counter
	recordCtr     *obs.Counter
	errCtr        *obs.Counter
}

// SetObs attaches persistence counters to a sink (nil detaches; like
// the other Persist methods it is nil-receiver-safe).
func (p *Persist) SetObs(sink *obs.Sink) {
	if p == nil {
		return
	}
	p.writeCtr = sink.Counter("coordinator_snapshot_writes_total")
	p.recordCtr = sink.Counter("coordinator_report_records_total")
	p.errCtr = sink.Counter("coordinator_persist_errors_total")
}

// LogReport durably appends one applied report and cuts a count-based
// snapshot when due. Persistence failures are returned (and counted)
// but must not fail the grant: the in-memory arbitration already
// happened and the node-side degradation contract — run on the
// last-granted cap — covers a coordinator that later proves forgetful.
func (p *Persist) LogReport(c *Coordinator, r NodeReport) error {
	if p == nil || p.Store == nil {
		return nil
	}
	payload, err := EncodeReportRecord(r)
	if err != nil {
		p.errCtr.Inc()
		return err
	}
	if err := p.Store.Append(payload); err != nil {
		p.errCtr.Inc()
		return err
	}
	p.recordCtr.Inc()
	p.sinceSnapshot++
	if p.SnapshotEvery > 0 && p.sinceSnapshot >= p.SnapshotEvery {
		return p.Snapshot(c)
	}
	return nil
}

// Snapshot cuts a snapshot of c now, resetting the record log.
func (p *Persist) Snapshot(c *Coordinator) error {
	if p == nil || p.Store == nil {
		return nil
	}
	if err := p.Store.SaveSnapshot(c.Snapshot()); err != nil {
		p.errCtr.Inc()
		return err
	}
	p.sinceSnapshot = 0
	p.writeCtr.Inc()
	return nil
}

// RecoveryInfo describes what Recover managed to reconstruct.
type RecoveryInfo struct {
	// SnapshotLoaded is true when a snapshot anchored the recovery;
	// ReplayedReports counts log records re-applied on top of it.
	SnapshotLoaded  bool
	ReplayedReports int
	// Degraded is true when corruption forced the fresh-adoption rung of
	// the ladder; Reason names the path taken ("clean", "no_snapshot",
	// "torn_log", "corrupt_snapshot", "restore_rejected").
	Degraded bool
	Reason   string
	// Epoch is the recovered arbitration epoch.
	Epoch int
}

// Recover stands a coordinator back up from a durable store, walking
// the corruption-degradation ladder:
//
//  1. Snapshot loads and validates, log replays → the exact pre-crash
//     state (the coordinator is a pure state machine, so snapshot +
//     reports ≡ the original run, stats included).
//  2. Log tail torn or a record undecodable → the intact prefix
//     replays; the coordinator resumes from the last durably applied
//     report (Reason "torn_log").
//  3. No snapshot yet → fresh coordinator plus full log replay
//     (Reason "no_snapshot") — the pre-first-snapshot crash.
//  4. Snapshot corrupt or inconsistent (conservation violated, budget
//     mismatch) → fresh coordinator, log ignored: nodes re-adopt from
//     their first reports, under-granting a latecomer at worst, never
//     over-subscribing the budget (Reason "corrupt_snapshot" /
//     "restore_rejected", Degraded).
//
// Recovery is instrumented through sink (nil = uninstrumented):
// coordinator_recoveries_total / _snapshot_loads_total /
// _replayed_reports_total counters and a recovery_completed event.
func Recover(store durable.Store, opt Options, sink *obs.Sink) (*Coordinator, RecoveryInfo, error) {
	c, err := New(opt)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	info := RecoveryInfo{Reason: "clean"}

	st := new(State)
	switch lerr := store.LoadSnapshot(st); {
	case lerr == durable.ErrNoSnapshot:
		info.Reason = "no_snapshot"
	case lerr != nil:
		info.Degraded = true
		info.Reason = "corrupt_snapshot"
	default:
		if rerr := c.Restore(st); rerr != nil {
			info.Degraded = true
			info.Reason = "restore_rejected"
		} else {
			info.SnapshotLoaded = true
			sink.Counter("coordinator_snapshot_loads_total").Inc()
		}
	}

	if !info.Degraded {
		recs, rerr := store.Records()
		if rerr != nil {
			info.Reason = "torn_log"
			recs = nil
		}
		for _, payload := range recs {
			r, derr := DecodeReportRecord(payload)
			if derr != nil {
				// An undecodable record means everything after it is the
				// torn tail; stop exactly where the durable prefix ends.
				info.Reason = "torn_log"
				break
			}
			if _, serr := c.Submit(r); serr != nil {
				info.Reason = "torn_log"
				break
			}
			info.ReplayedReports++
		}
	}

	info.Epoch = c.Epoch()
	sink.Counter("coordinator_recoveries_total").Inc()
	sink.Counter("coordinator_recovery_replayed_reports_total").Add(int64(info.ReplayedReports))
	if sink.Active() {
		sink.Emit(obs.Event{
			T: float64(info.Epoch), Type: obs.EventRecoveryCompleted,
			Reason: info.Reason, Epoch: info.Epoch, Value: float64(info.ReplayedReports),
		})
	}
	return c, info, nil
}

// DurableLocal is the in-process transport of a crash-survivable
// coordinator: Local's synchronous Submit plus write-ahead persistence
// of every applied report. The fleet simulator pairs it with a
// durable.MemStore to rehearse coordinator SIGKILL/restart inside a
// seeded run; Recover against the same store is the restart.
type DurableLocal struct {
	C *Coordinator
	P *Persist
}

// Report implements Transport. The grant stands even when persistence
// fails — a write error degrades recovery fidelity, not arbitration
// safety (see Persist.LogReport). Duplicated reports mutate nothing and
// are not logged, so WAL replay — which applies each record through
// Submit exactly once — reconstructs the pre-crash state verbatim.
func (d *DurableLocal) Report(_ context.Context, r NodeReport) (Grant, error) {
	g, applied, err := d.C.SubmitDedup(r)
	if err == nil && applied {
		_ = d.P.LogReport(d.C, r)
	}
	return g, err
}

// Status implements Transport.
func (d *DurableLocal) Status(context.Context) (*FleetStatus, error) {
	return d.C.Status(), nil
}
