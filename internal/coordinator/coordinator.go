// Package coordinator is the fleet power-budget arbitration subsystem:
// the datacenter-level control plane the paper's single-node runtime
// (§IV) leaves open. Each node's controller treats its power cap as a
// fixed input; this package makes that cap a *grant*. Nodes periodically
// report the slack signal Sturgeon already computes — (target − p95)/
// target — together with their measured draw, and a coordinator
// redistributes a fixed cluster-wide watt budget across them each epoch:
// watts move from slack-rich nodes with stranded headroom to nodes that
// are throttled or QoS-threatened.
//
// The arbitration loop deliberately mirrors the node-level algorithms:
//   - the slack hysteresis band reuses Algorithm 1's [α, β] semantics —
//     a node whose slack sits inside the band keeps its cap untouched;
//   - borrow/return moves use per-node binary-halving granularity
//     mirroring Algorithm 2 — a node's first donation is half its margin,
//     and a donor that flips straight back to requester gets half its
//     last donation returned while its granularity halves;
//   - every cap is clamped to [MinCapW, MaxCapW] and the sum of caps
//     plus the undistributed pool is conserved at exactly BudgetW.
//
// Degradation is first-class: a node whose reports go stale keeps its
// last grant reserved (the coordinator never re-allocates watts it can
// no longer verify are free), and nodes that cannot reach the
// coordinator run on their last-granted cap — a partitioned fleet
// degrades to the paper's static-cap behaviour, never to an unsafe one.
package coordinator

import (
	"fmt"
	"math"
	"sort"

	"sturgeon/internal/obs"
)

// Schema tags the coordinator's wire documents (reports, grants, fleet
// status); bump on breaking change.
const Schema = "sturgeon/coordinator/v1"

// NodeReport is one node's per-epoch telemetry submission.
type NodeReport struct {
	Schema string `json:"schema"`
	NodeID string `json:"node_id"`
	Epoch  int    `json:"epoch"`
	// Slack is the paper's control signal (target − p95)/target over the
	// node's last interval; negative means the QoS target is violated.
	Slack float64 `json:"slack"`
	// P95S is the measured tail latency in seconds.
	P95S float64 `json:"p95_s"`
	// PowerW is the node's measured draw; CapW the cap currently in
	// force on the node (its last applied grant).
	PowerW float64 `json:"power_w"`
	CapW   float64 `json:"cap_w"`
	// BEThroughputUPS is the node's best-effort progress.
	BEThroughputUPS float64 `json:"be_throughput_ups"`
	// Healthy is false while the node considers itself out of rotation
	// (rebooting, draining); the coordinator reclaims its watts.
	Healthy bool `json:"healthy"`
}

// Validate implements jsonio.Validator.
func (r *NodeReport) Validate() error {
	switch {
	case r.Schema != Schema:
		return fmt.Errorf("coordinator: report schema %q, want %q", r.Schema, Schema)
	case r.NodeID == "":
		return fmt.Errorf("coordinator: report with empty node id")
	case r.Epoch < 0:
		return fmt.Errorf("coordinator: report epoch %d < 0", r.Epoch)
	case !finite(r.Slack) || !finite(r.P95S) || !finite(r.PowerW) ||
		!finite(r.CapW) || !finite(r.BEThroughputUPS):
		return fmt.Errorf("coordinator: report %s/%d carries non-finite telemetry", r.NodeID, r.Epoch)
	case r.PowerW < 0 || r.CapW < 0 || r.P95S < 0 || r.BEThroughputUPS < 0:
		return fmt.Errorf("coordinator: report %s/%d carries negative telemetry", r.NodeID, r.Epoch)
	}
	return nil
}

// Grant is the coordinator's answer: the watt cap a node must apply.
// With leases enabled (Options.LeaseEpochs > 0) the grant is a fenced
// lease: Token fences stale re-deliveries, LeaseEpochs is the TTL, and
// FloorW is the safe cap the node ratchets toward if renewals stop.
type Grant struct {
	Schema string `json:"schema"`
	NodeID string `json:"node_id"`
	// Epoch is the arbitration epoch the grant was computed in (0 before
	// the first arbitration has run).
	Epoch int `json:"epoch"`
	// CapW is the granted node power cap in watts.
	CapW float64 `json:"cap_w"`
	// Token is the per-node fencing token: it increments on every report
	// the coordinator applies, so a grant computed before a partition is
	// distinguishable from the rejoin grant. Zero when leases are off.
	Token int64 `json:"token,omitempty"`
	// LeaseEpochs is the lease TTL in coordination epochs; FloorW the
	// even-split-derived safe floor the lease degrades toward. Both zero
	// when leases are off.
	LeaseEpochs int     `json:"lease_epochs,omitempty"`
	FloorW      float64 `json:"floor_w,omitempty"`
}

// Validate implements jsonio.Validator.
func (g *Grant) Validate() error {
	switch {
	case g.Schema != Schema:
		return fmt.Errorf("coordinator: grant schema %q, want %q", g.Schema, Schema)
	case g.NodeID == "":
		return fmt.Errorf("coordinator: grant with empty node id")
	case !finite(g.CapW) || g.CapW < 0:
		return fmt.Errorf("coordinator: grant for %s carries invalid cap %v", g.NodeID, g.CapW)
	case g.Token < 0 || g.LeaseEpochs < 0:
		return fmt.Errorf("coordinator: grant for %s carries invalid lease token/ttl (%d/%d)", g.NodeID, g.Token, g.LeaseEpochs)
	case !finite(g.FloorW) || g.FloorW < 0:
		return fmt.Errorf("coordinator: grant for %s carries invalid floor %v", g.NodeID, g.FloorW)
	}
	return nil
}

// NodeStatus is one node's row in the fleet status document.
type NodeStatus struct {
	NodeID string  `json:"node_id"`
	CapW   float64 `json:"cap_w"`
	Slack  float64 `json:"slack"`
	PowerW float64 `json:"power_w"`
	// LastEpoch is the newest epoch the node has reported; Stale marks
	// nodes the staleness fallback has frozen.
	LastEpoch int  `json:"last_epoch"`
	Stale     bool `json:"stale"`
	Healthy   bool `json:"healthy"`
	// LeaseToken and LeaseExpired render the node's lease state; both
	// omitted (zero) while leases are off.
	LeaseToken   int64 `json:"lease_token,omitempty"`
	LeaseExpired bool  `json:"lease_expired,omitempty"`
}

// Stats counts coordinator activity since start.
type Stats struct {
	Reports      int `json:"reports"`
	Arbitrations int `json:"arbitrations"`
	// Donations and GrantsUp count caps moved down and up; StaleFreezes
	// counts node-epochs spent under the staleness fallback.
	Donations    int `json:"donations"`
	GrantsUp     int `json:"grants_up"`
	StaleFreezes int `json:"stale_freezes"`
	// LeaseExpirations counts leases reclaimed into the pool at their
	// TTL (omitted while leases are off). Like every other stat it is a
	// pure function of the submitted reports, so WAL replay reconstructs
	// it exactly.
	LeaseExpirations int `json:"lease_expirations,omitempty"`
	// MovedW is the cumulative watt volume re-arbitrated.
	MovedW float64 `json:"moved_w"`
}

// FleetStatus is the /fleet/status document: the coordinator's full
// visible state.
type FleetStatus struct {
	Schema  string       `json:"schema"`
	Epoch   int          `json:"epoch"`
	BudgetW float64      `json:"budget_w"`
	PoolW   float64      `json:"pool_w"`
	Nodes   []NodeStatus `json:"nodes"`
	Stats   Stats        `json:"stats"`
}

// Validate implements jsonio.Validator.
func (s *FleetStatus) Validate() error {
	switch {
	case s.Schema != Schema:
		return fmt.Errorf("coordinator: status schema %q, want %q", s.Schema, Schema)
	case !finite(s.BudgetW) || s.BudgetW <= 0:
		return fmt.Errorf("coordinator: status budget %v not positive", s.BudgetW)
	case !finite(s.PoolW) || s.PoolW < -1e-6:
		return fmt.Errorf("coordinator: status pool %v negative", s.PoolW)
	}
	sum := s.PoolW
	for _, n := range s.Nodes {
		if n.NodeID == "" {
			return fmt.Errorf("coordinator: status row with empty node id")
		}
		if !finite(n.CapW) || n.CapW < 0 {
			return fmt.Errorf("coordinator: status row %s carries invalid cap %v", n.NodeID, n.CapW)
		}
		sum += n.CapW
	}
	if len(s.Nodes) > 0 && sum > s.BudgetW*(1+1e-9)+1e-6 {
		return fmt.Errorf("coordinator: status over-allocates budget: caps+pool %.3f W > %.3f W", sum, s.BudgetW)
	}
	return nil
}

// Options configure the arbiter.
type Options struct {
	// BudgetW is the fixed cluster-wide watt budget the caps are carved
	// from (required, > 0).
	BudgetW float64
	// MinCapW and MaxCapW clamp every per-node cap. MinCapW defaults to
	// 10 % of BudgetW/FleetSize (or 1 W without a fleet size); MaxCapW
	// defaults to BudgetW.
	MinCapW, MaxCapW float64
	// Alpha and Beta bound the slack hysteresis band, reusing the
	// Algorithm 1 semantics (defaults 0.10 and 0.20): a node below Alpha
	// requests watts, a node above Beta with stranded headroom donates,
	// and a node inside the band holds.
	Alpha, Beta float64
	// ReserveFrac is the fraction of its cap a donor must keep as
	// headroom above its measured draw (default 0.03), so a donation can
	// never push a node straight into overload. It is calibrated against
	// the node governor's fill target (control.Governor stops upgrading
	// at 97 % of cap): a node pinned against its cap settles inside the
	// reserve band and reads as a requester, while one whose workload
	// saturates below the cap strands more than the reserve and reads as
	// a donor.
	ReserveFrac float64
	// QuantumW is the smallest watt move (default 1); moves below it are
	// suppressed, which is what makes the hysteresis band sticky.
	QuantumW float64
	// StaleEpochs is how many epochs a node may go unreported before the
	// staleness fallback freezes it (default 3).
	StaleEpochs int
	// FleetSize, when set, lets the coordinator close an epoch as soon
	// as every expected node has reported instead of waiting for the
	// first report of the next epoch.
	FleetSize int
	// LeaseEpochs, when positive, turns every grant into a fenced lease
	// with this TTL in epochs: instead of the staleness freeze, a node
	// that misses LeaseEpochs renewals has its lease reclaimed — the cap
	// above LeaseFloorW returns to the pool for re-arbitration, matching
	// the node-side degraded ratchet that lands on the same floor by the
	// same deadline. Zero keeps the legacy stale-freeze behaviour.
	LeaseEpochs int
	// LeaseFloorW is the lease floor. Defaults to the even split
	// BudgetW/FleetSize and is clamped into [MinCapW, MaxCapW], so Σ
	// floors never exceeds the budget.
	LeaseFloorW float64
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.10
	}
	if o.Beta == 0 {
		o.Beta = 0.20
	}
	if o.ReserveFrac == 0 {
		o.ReserveFrac = 0.03
	}
	if o.QuantumW == 0 {
		o.QuantumW = 1
	}
	if o.StaleEpochs <= 0 {
		o.StaleEpochs = 3
	}
	if o.MaxCapW == 0 {
		o.MaxCapW = o.BudgetW
	}
	if o.MinCapW == 0 {
		if o.FleetSize > 0 {
			o.MinCapW = 0.1 * o.BudgetW / float64(o.FleetSize)
		} else {
			o.MinCapW = 1
		}
	}
	if o.LeaseEpochs > 0 {
		if o.LeaseFloorW == 0 {
			if o.FleetSize > 0 {
				o.LeaseFloorW = o.BudgetW / float64(o.FleetSize)
			} else {
				o.LeaseFloorW = o.MinCapW
			}
		}
		o.LeaseFloorW = clamp(o.LeaseFloorW, o.MinCapW, o.MaxCapW)
	}
	return o
}

// nodeState is the coordinator's per-node book-keeping.
type nodeState struct {
	id     string
	report NodeReport
	// lastEpoch is the newest epoch reported; capW the node's current
	// grant.
	lastEpoch int
	capW      float64
	// stepW is the node's binary-halving move granularity (0 between
	// episodes: re-initialized to half the relevant margin when the node
	// next leaves the hysteresis band, mirroring Alg. 2 lines 1–2).
	stepW float64
	// lastDonatedW remembers the previous epoch's donation so a
	// donor→requester flip can revert half of it (Alg. 2 lines 11–14).
	lastDonatedW float64
	granted      bool // node has received its initial grant
	// leaseTok is the node's fencing token: it increments once per
	// applied report (never on duplicates), so it is reconstructed
	// exactly by WAL replay. expired marks a lease reclaimed at its TTL;
	// the next applied report clears it.
	leaseTok int64
	expired  bool
}

// Coordinator arbitrates per-node power caps from slack telemetry. It is
// a pure state machine with no locking and no clock: epochs advance only
// through Submit, so seeded simulations drive it deterministically. Wrap
// it in a Server (http.go) for concurrent network use.
type Coordinator struct {
	opt   Options
	nodes map[string]*nodeState
	order []string // sorted ids: deterministic arbitration order
	// epoch is the newest epoch any report has mentioned; arbEpoch the
	// last epoch arbitrated.
	epoch      int
	arbEpoch   int
	arbitrated bool // the current epoch has already been closed
	poolW      float64
	stats      Stats

	// Observability (nil = uninstrumented; see SetObs). The coordinator
	// has no clock, so journal events carry the arbitration epoch as
	// their time axis.
	obs         *obs.Sink
	reportCtr   *obs.Counter
	arbCtr      *obs.Counter
	donateCtr   *obs.Counter
	grantUpCtr  *obs.Counter
	staleCtr    *obs.Counter
	leaseExpCtr *obs.Counter
	poolGauge   *obs.Gauge
	epochGauge  *obs.Gauge
	// epochSpan is the root span of the arbitration currently closing;
	// moveCap parents its grant spans under it. Valid only while
	// arbitrate runs (daemon path — the simulation's in-process
	// coordinator is uninstrumented and traces grants cluster-side).
	epochSpan  obs.SpanRef
	poolSeries *obs.TSeries
	movedSer   *obs.TSeries
}

// SetObs implements obs.Instrumentable: attach a decision-trail sink
// (nil detaches). Like every other method, calls are serialized by the
// owner (Server's mutex or the simulation's serial merge).
func (c *Coordinator) SetObs(sink *obs.Sink) {
	c.obs = sink
	c.reportCtr = sink.Counter("coordinator_reports_total")
	c.arbCtr = sink.Counter("coordinator_arbitrations_total")
	c.donateCtr = sink.Counter("coordinator_donations_total")
	c.grantUpCtr = sink.Counter("coordinator_grants_up_total")
	c.staleCtr = sink.Counter("coordinator_stale_freezes_total")
	c.leaseExpCtr = sink.Counter("coordinator_lease_expirations_total")
	c.poolGauge = sink.Gauge("coordinator_pool_watts")
	c.epochGauge = sink.Gauge("coordinator_epoch")
	c.poolGauge.Set(c.poolW)
	c.epochGauge.Set(float64(c.epoch))
	c.epochSpan = obs.SpanRef{}
	c.poolSeries = sink.Series("coordinator_pool_w")
	c.movedSer = sink.Series("coordinator_moved_w")
}

// New builds a coordinator. BudgetW must be positive.
func New(opt Options) (*Coordinator, error) {
	if !(opt.BudgetW > 0) {
		return nil, fmt.Errorf("coordinator: budget %v W must be positive", opt.BudgetW)
	}
	opt = opt.withDefaults()
	if opt.MinCapW < 0 || opt.MaxCapW < opt.MinCapW {
		return nil, fmt.Errorf("coordinator: cap clamp [%v, %v] is inverted", opt.MinCapW, opt.MaxCapW)
	}
	if opt.Alpha >= opt.Beta {
		return nil, fmt.Errorf("coordinator: hysteresis band [%v, %v] is inverted", opt.Alpha, opt.Beta)
	}
	return &Coordinator{
		opt:   opt,
		nodes: map[string]*nodeState{},
		poolW: opt.BudgetW,
	}, nil
}

// Submit records one node report and returns the node's current grant.
// Arbitration runs when the epoch closes: either every expected node has
// reported it (Options.FleetSize) or a report for a newer epoch arrives.
func (c *Coordinator) Submit(r NodeReport) (Grant, error) {
	if err := r.Validate(); err != nil {
		return Grant{}, err
	}
	c.stats.Reports++
	c.reportCtr.Inc()

	if r.Epoch > c.epoch {
		// First report of a newer epoch closes the previous one with
		// whatever arrived — dropped reports must not stall the fleet.
		if !c.arbitrated {
			c.arbitrate(c.epoch)
		}
		c.epoch = r.Epoch
		c.arbitrated = false
		c.epochGauge.Set(float64(c.epoch))
	}

	ns := c.adopt(r)
	if r.Epoch >= ns.lastEpoch {
		ns.lastEpoch = r.Epoch
		ns.report = r
		ns.leaseTok++
		ns.expired = false
	}

	if c.opt.FleetSize > 0 && !c.arbitrated && c.freshCount(c.epoch) >= c.opt.FleetSize {
		c.arbitrate(c.epoch)
		c.arbitrated = true
	}
	return c.grant(ns), nil
}

// SubmitDedup is Submit with server-side idempotency: a report for an
// epoch the node has already reported (a delayed-then-duplicated retry)
// mutates nothing — no state, no stats, and critically nothing the
// caller should WAL-log — and just re-answers the current grant.
// applied reports whether the report was actually consumed.
func (c *Coordinator) SubmitDedup(r NodeReport) (g Grant, applied bool, err error) {
	if err := r.Validate(); err != nil {
		return Grant{}, false, err
	}
	if ns, ok := c.nodes[r.NodeID]; ok && r.Epoch <= ns.lastEpoch {
		return c.grant(ns), false, nil
	}
	g, err = c.Submit(r)
	return g, err == nil, err
}

// GrantFor returns the current grant for a node without submitting a
// report (a node re-syncing after an outage), or an error for an unknown
// node.
func (c *Coordinator) GrantFor(nodeID string) (Grant, error) {
	ns, ok := c.nodes[nodeID]
	if !ok {
		return Grant{}, fmt.Errorf("coordinator: unknown node %q", nodeID)
	}
	return c.grant(ns), nil
}

func (c *Coordinator) grant(ns *nodeState) Grant {
	g := Grant{Schema: Schema, NodeID: ns.id, Epoch: c.arbEpoch, CapW: ns.capW}
	if c.opt.LeaseEpochs > 0 {
		g.Token = ns.leaseTok
		g.LeaseEpochs = c.opt.LeaseEpochs
		g.FloorW = c.opt.LeaseFloorW
	}
	return g
}

// adopt registers a node on first contact. The node's self-reported cap
// seeds its grant so joining a running fleet never yanks its budget; the
// cap is clamped, and a newcomer to an exhausted budget takes only what
// the pool still holds (possibly below MinCapW, even zero) — Σcaps +
// pool ≤ BudgetW is never violated, and the requester path pulls the
// latecomer up as incumbents donate.
func (c *Coordinator) adopt(r NodeReport) *nodeState {
	if ns, ok := c.nodes[r.NodeID]; ok {
		return ns
	}
	cap := clamp(r.CapW, c.opt.MinCapW, c.opt.MaxCapW)
	if cap > c.poolW {
		cap = c.poolW
	}
	c.poolW -= cap
	ns := &nodeState{id: r.NodeID, capW: cap, lastEpoch: r.Epoch, report: r}
	c.nodes[r.NodeID] = ns
	c.order = append(c.order, r.NodeID)
	sort.Strings(c.order)
	return ns
}

// staleAfter is the epoch age at which a node stops being arbitrated:
// the lease TTL when leases are on, the staleness threshold otherwise.
func (c *Coordinator) staleAfter() int {
	if c.opt.LeaseEpochs > 0 {
		return c.opt.LeaseEpochs
	}
	return c.opt.StaleEpochs
}

// freshCount counts nodes that have reported the given epoch.
func (c *Coordinator) freshCount(epoch int) int {
	n := 0
	for _, id := range c.order {
		if c.nodes[id].lastEpoch >= epoch {
			n++
		}
	}
	return n
}

// arbitrate redistributes the budget over the known fleet using the
// reports of the given epoch. All iteration is in sorted node-id order
// and all moves are quantized, so the outcome is a pure function of the
// submitted reports.
func (c *Coordinator) arbitrate(epoch int) {
	if len(c.order) == 0 {
		return
	}
	c.stats.Arbitrations++
	c.arbCtr.Inc()
	c.arbEpoch = epoch
	// Root span of this epoch's causal chain; moveCap hangs one grant
	// span per cap change under it. Cleared on exit so out-of-band
	// moveCap calls (none today) would root their own traces.
	c.epochSpan = c.obs.ChildSpan(obs.Span{Kind: obs.SpanCoordEpoch,
		Start: float64(epoch), End: float64(epoch), Epoch: epoch}, obs.SpanRef{})
	movedBefore := c.stats.MovedW
	defer func() {
		c.epochSpan = obs.SpanRef{}
		c.poolSeries.Observe(float64(epoch), c.poolW)
		c.movedSer.Observe(float64(epoch), c.stats.MovedW-movedBefore)
	}()

	type request struct {
		ns     *nodeState
		weight float64
		askW   float64
	}
	var requests []request
	var totalWeight float64

	for _, id := range c.order {
		ns := c.nodes[id]
		r := ns.report
		if stale := epoch-ns.lastEpoch >= c.staleAfter(); stale {
			if c.opt.LeaseEpochs > 0 {
				// Lease expiry: the grant's TTL has lapsed, so the watts
				// above the floor are verifiably unused by a correct node
				// (the degraded ratchet landed on the same floor by this
				// deadline) — reclaim them into the pool.
				if !ns.expired {
					ns.expired = true
					c.stats.LeaseExpirations++
					c.leaseExpCtr.Inc()
					if c.obs.Active() {
						c.obs.Emit(obs.Event{T: float64(epoch), Node: ns.id,
							Type: obs.EventLeaseExpired, Epoch: epoch,
							Value: math.Max(0, ns.capW-c.opt.LeaseFloorW)})
					}
				}
				if ns.capW > c.opt.LeaseFloorW {
					c.moveCap(ns, c.opt.LeaseFloorW-ns.capW)
				}
				ns.stepW, ns.lastDonatedW = 0, 0
				continue
			}
			// Staleness fallback: freeze the grant. Its watts stay
			// reserved — the coordinator cannot verify they are free.
			c.stats.StaleFreezes++
			c.staleCtr.Inc()
			if c.obs.Active() {
				c.obs.Emit(obs.Event{T: float64(epoch), Node: ns.id,
					Type: obs.EventStaleFreeze, Epoch: epoch})
			}
			ns.stepW, ns.lastDonatedW = 0, 0
			continue
		}
		if !r.Healthy {
			// A node that declared itself out of rotation draws nothing
			// worth protecting: shrink to the floor, reclaim the rest.
			if ns.capW > c.opt.MinCapW {
				c.moveCap(ns, c.opt.MinCapW-ns.capW)
			}
			ns.stepW, ns.lastDonatedW = 0, 0
			continue
		}

		headroom := ns.capW - r.PowerW
		reserve := c.opt.ReserveFrac * ns.capW
		switch {
		case r.Slack > c.opt.Beta && headroom > reserve+c.opt.QuantumW:
			// Slack-rich with stranded headroom: donate. First move of an
			// episode is half the margin (Alg. 2 lines 1–2).
			if ns.stepW < c.opt.QuantumW {
				ns.stepW = (ns.capW - c.opt.MinCapW) / 2
			}
			give := math.Min(ns.stepW, headroom-reserve)
			give = math.Min(give, ns.capW-c.opt.MinCapW)
			give = c.quantize(give)
			if give > 0 {
				c.moveCap(ns, -give)
				ns.lastDonatedW = give
				c.stats.Donations++
				c.donateCtr.Inc()
			} else {
				ns.lastDonatedW = 0
			}
		case r.Slack < c.opt.Alpha || headroom < reserve:
			// Throttled or power-capped: request watts.
			if ns.lastDonatedW > 0 {
				// Donor→requester flip: the last donation overshot. Return
				// half of it and halve the granularity (Alg. 2 lines 11–14).
				back := c.quantize(math.Min(ns.lastDonatedW/2, c.poolW))
				back = math.Min(back, c.opt.MaxCapW-ns.capW)
				if back > 0 {
					c.moveCap(ns, back)
					c.stats.GrantsUp++
					c.grantUpCtr.Inc()
				}
				ns.stepW = math.Max(c.opt.QuantumW, ns.stepW/2)
				ns.lastDonatedW = 0
				continue
			}
			if ns.stepW < c.opt.QuantumW {
				ns.stepW = (c.opt.MaxCapW - ns.capW) / 2
			}
			ask := c.quantize(math.Min(ns.stepW, c.opt.MaxCapW-ns.capW))
			if ask <= 0 {
				continue
			}
			// Preference-aware weight: deficit depth first (how far below
			// Alpha the slack sits), plus a term for nodes pinned against
			// their cap, so the neediest node wins a contended pool.
			w := math.Max(c.opt.Alpha-r.Slack, 0)
			if headroom < reserve {
				w += 0.5 * (reserve - headroom) / math.Max(reserve, 1e-9)
			}
			if w <= 0 {
				w = 0.01
			}
			requests = append(requests, request{ns: ns, weight: w, askW: ask})
			totalWeight += w
		default:
			// In the hysteresis band: hold, and end any episode.
			ns.stepW, ns.lastDonatedW = 0, 0
		}
	}

	// Distribute the pool proportionally to weight, clamped by each
	// node's ask. A single proportional pass (no waterfilling): leftover
	// watts stay pooled for the next epoch, which is the conservative
	// side of the hysteresis.
	if len(requests) > 0 && c.poolW >= c.opt.QuantumW && totalWeight > 0 {
		pool := c.poolW
		for _, req := range requests {
			share := c.quantize(math.Min(pool*req.weight/totalWeight, req.askW))
			share = math.Min(share, c.poolW)
			if share <= 0 {
				continue
			}
			c.moveCap(req.ns, share)
			c.stats.GrantsUp++
			c.grantUpCtr.Inc()
		}
	}
}

// moveCap applies a cap delta (clamped to the node's bounds and the
// pool), keeping Σcaps + pool = Budget exact. A node sitting below
// MinCapW (adopted against an exhausted budget) is never snapped to the
// floor — the lower clamp follows it until grants lift it back.
func (c *Coordinator) moveCap(ns *nodeState, deltaW float64) {
	next := clamp(ns.capW+deltaW, math.Min(ns.capW, c.opt.MinCapW), c.opt.MaxCapW)
	deltaW = next - ns.capW
	if deltaW > c.poolW {
		deltaW = c.poolW
		next = ns.capW + deltaW
	}
	if deltaW == 0 {
		return
	}
	c.poolW -= deltaW
	ns.capW = next
	c.stats.MovedW += math.Abs(deltaW)
	ns.granted = true
	c.poolGauge.Set(c.poolW)
	if c.obs.Active() {
		c.obs.Emit(obs.Event{T: float64(c.arbEpoch), Node: ns.id,
			Type: obs.EventCapGranted, Epoch: c.arbEpoch, Value: ns.capW})
	}
	c.obs.ChildSpan(obs.Span{Kind: obs.SpanCapGrant, Node: ns.id,
		Start: float64(c.arbEpoch), End: float64(c.arbEpoch),
		Epoch: c.arbEpoch, Value: ns.capW}, c.epochSpan)
}

// quantize rounds a watt amount down to the quantum grid (0 below it).
func (c *Coordinator) quantize(w float64) float64 {
	if w < c.opt.QuantumW {
		return 0
	}
	return math.Floor(w/c.opt.QuantumW) * c.opt.QuantumW
}

// Status renders the coordinator's visible state.
func (c *Coordinator) Status() *FleetStatus {
	st := &FleetStatus{
		Schema:  Schema,
		Epoch:   c.epoch,
		BudgetW: c.opt.BudgetW,
		PoolW:   c.poolW,
		Stats:   c.stats,
	}
	for _, id := range c.order {
		ns := c.nodes[id]
		row := NodeStatus{
			NodeID:    ns.id,
			CapW:      ns.capW,
			Slack:     ns.report.Slack,
			PowerW:    ns.report.PowerW,
			LastEpoch: ns.lastEpoch,
			Stale:     c.epoch-ns.lastEpoch >= c.staleAfter(),
			Healthy:   ns.report.Healthy,
		}
		if c.opt.LeaseEpochs > 0 {
			row.LeaseToken = ns.leaseTok
			row.LeaseExpired = ns.expired
		}
		st.Nodes = append(st.Nodes, row)
	}
	return st
}

// Epoch returns the newest epoch any report has mentioned.
func (c *Coordinator) Epoch() int { return c.epoch }

// Options returns the effective arbitration parameters (defaults
// applied) — what cmd/sturgeond prints in its startup banner.
func (c *Coordinator) Options() Options { return c.opt }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
