package coordinator

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

// HTTP/JSON transport: Server exposes a Coordinator as a small
// control-plane service (cmd/sturgeond) and Client is the node-side
// library. All documents on the wire are the schema-validated JSON forms
// of coordinator.go, encoded through the shared jsonio helpers, so a
// malformed report is rejected at the door with a 400 rather than
// corrupting arbitration state.

// maxReportBytes bounds the body of a POST /v1/report. A NodeReport is
// a few hundred bytes; 1 MiB leaves generous slack while keeping a
// misbehaving (or malicious) client from streaming an unbounded body
// into the decoder.
const maxReportBytes = 1 << 20

// NewHTTPServer wraps a handler in an http.Server with the service's
// standard protection timeouts, so every binding of the control plane
// to a real listener gets slowloris and stuck-peer protection for free.
// WriteTimeout is sized to keep the default 30 s pprof CPU profile
// servable when the debug mux shares the server.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Server wraps a Coordinator with an HTTP handler and the mutex the pure
// state machine deliberately lacks.
type Server struct {
	mu  sync.Mutex
	c   *Coordinator
	snk *obs.Sink
	p   *Persist
}

// NewServer builds the handler around an existing coordinator.
func NewServer(c *Coordinator) *Server { return &Server{c: c} }

// SetObs attaches a decision-trail sink to the server and its
// coordinator; /metrics and /v1/events serve from it. Without one (or
// with nil) those endpoints answer with empty documents.
func (s *Server) SetObs(sink *obs.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snk = sink
	s.c.SetObs(sink)
	s.p.SetObs(sink)
}

// SetPersist binds a write-ahead persistence layer: every report the
// server applies is durably logged before the grant is returned, and
// Snapshot cuts snapshots on demand (the daemon's ticker and SIGTERM
// path). Nil detaches.
func (s *Server) SetPersist(p *Persist) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p = p
	if s.snk != nil {
		s.p.SetObs(s.snk)
	}
}

// Snapshot cuts a durable snapshot of the coordinator now (a no-op
// without a persistence layer attached).
func (s *Server) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Snapshot(s.c)
}

// Handler returns the service mux:
//
//	POST /v1/report   NodeReport -> Grant
//	GET  /v1/grant    ?node=ID   -> Grant (re-sync after an outage)
//	GET  /fleet/status            -> FleetStatus
//	GET  /metrics                 -> Prometheus text exposition
//	GET  /v1/events   ?since=SEQ -> EventsDoc tail (events with seq > SEQ)
//	GET  /v1/trace    ?since=SEQ -> TraceDoc tail (spans with seq > SEQ)
//	GET  /v1/timeline             -> TimelineDoc (recorded fleet series)
//	GET  /healthz                 -> 200 "ok"
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/grant", s.handleGrant)
	mux.HandleFunc("/fleet/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/events", s.handleEvents)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/timeline", s.handleTimeline)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// MaxBytesReader (unlike a bare LimitReader) closes the connection
	// on overrun and lets us answer 413 instead of a misleading 400.
	req.Body = http.MaxBytesReader(w, req.Body, maxReportBytes)
	var r NodeReport
	if err := jsonio.Decode(req.Body, &r); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("report body exceeds %d bytes", maxReportBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	// Dedupe by (node, epoch): a delayed-then-duplicated retry of an
	// already-applied report mutates nothing and is not WAL-logged — it
	// just gets the current grant back, so client retries are idempotent.
	g, applied, err := s.c.SubmitDedup(r)
	if err == nil && applied {
		// Write-ahead log the applied report; a persistence failure
		// degrades recovery fidelity, never the grant (persist.go).
		_ = s.p.LogReport(s.c, r)
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeDoc(w, &g)
}

func (s *Server) handleGrant(w http.ResponseWriter, req *http.Request) {
	node := req.URL.Query().Get("node")
	if node == "" {
		http.Error(w, "missing node parameter", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	g, err := s.c.GrantFor(node)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeDoc(w, &g)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.c.Status()
	s.mu.Unlock()
	writeDoc(w, st)
}

// handleMetrics renders the registry in Prometheus text exposition
// format. Metric reads are atomic snapshots, so the server mutex is not
// taken — a scrape never stalls arbitration.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var reg *obs.Registry
	if s.snk != nil {
		reg = s.snk.Metrics
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}

// sinceParam parses the optional ?since=SEQ cursor shared by the
// journal and trace endpoints, answering 400 (and returning false) on
// anything but a non-negative integer.
func sinceParam(w http.ResponseWriter, req *http.Request) (int64, bool) {
	raw := req.URL.Query().Get("since")
	if raw == "" {
		return 0, true
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		http.Error(w, "since must be a non-negative integer", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// handleEvents serves the journal tail as a sturgeon/events/v1 document.
// ?since=SEQ returns only events with a newer sequence number, so a
// poller can page the journal without re-reading what it has seen. When
// the ring has wrapped past the cursor the response's "missing" field
// counts the overwritten events, so the poller can tell a quiet journal
// from a lossy gap.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	since, ok := sinceParam(w, req)
	if !ok {
		return
	}
	var j *obs.Journal
	if s.snk != nil {
		j = s.snk.Journal
	}
	writeDoc(w, j.DocSince(since))
}

// handleTrace serves the causal span tail as a sturgeon/trace/v1
// document; the ?since= cursor and the "missing" gap accounting work
// exactly as for /v1/events.
func (s *Server) handleTrace(w http.ResponseWriter, req *http.Request) {
	since, ok := sinceParam(w, req)
	if !ok {
		return
	}
	var t *obs.Tracer
	if s.snk != nil {
		t = s.snk.Trace
	}
	writeDoc(w, t.DocSince(since))
}

// handleTimeline serves the recorded fleet series as a
// sturgeon/timeline/v1 document (empty without a recorder attached).
func (s *Server) handleTimeline(w http.ResponseWriter, req *http.Request) {
	var r *obs.Recorder
	if s.snk != nil {
		r = s.snk.Timeline
	}
	writeDoc(w, r.Doc())
}

func writeDoc(w http.ResponseWriter, v interface{}) {
	data, err := jsonio.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// Client is the node-side HTTP transport: request timeouts, bounded
// retry with jittered exponential backoff, and schema validation on
// every response. On persistent failure it returns an error and the
// caller falls back to its last-granted cap.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://10.0.0.1:7015".
	BaseURL string
	// HTTP is the underlying client (default: 2 s timeout).
	HTTP *http.Client
	// Retries is how many times a failed request is retried (default 2,
	// i.e. at most 3 attempts).
	Retries int
	// BackoffBase is the first retry delay (default 50 ms); attempt k
	// sleeps BackoffBase·2^k plus up to 50 % seeded jitter.
	BackoffBase time.Duration

	rng *rand.Rand
	mu  sync.Mutex
}

// NewClient builds a client with defaults. The seed drives backoff
// jitter only — it exists so tests and seeded simulations stay
// deterministic even through their retry schedules.
func NewClient(baseURL string, seed int64) *Client {
	return &Client{
		BaseURL:     baseURL,
		HTTP:        &http.Client{Timeout: 2 * time.Second},
		Retries:     2,
		BackoffBase: 50 * time.Millisecond,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Report implements Transport.
func (c *Client) Report(ctx context.Context, r NodeReport) (Grant, error) {
	body, err := jsonio.Marshal(&r)
	if err != nil {
		return Grant{}, err
	}
	var g Grant
	err = c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/report", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		return c.do(req, &g)
	})
	return g, err
}

// Status implements Transport.
func (c *Client) Status(ctx context.Context) (*FleetStatus, error) {
	var st FleetStatus
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.BaseURL+"/fleet/status", nil)
		if err != nil {
			return err
		}
		return c.do(req, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Grant fetches the node's standing grant without submitting telemetry —
// the re-sync path after a coordinator outage.
func (c *Client) Grant(ctx context.Context, nodeID string) (Grant, error) {
	var g Grant
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.BaseURL+"/v1/grant?node="+nodeID, nil)
		if err != nil {
			return err
		}
		return c.do(req, &g)
	})
	return g, err
}

// permanentError marks HTTP failures retrying cannot fix (4xx).
type permanentError struct{ error }

func (c *Client) do(req *http.Request, out interface{}) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 2 * time.Second}
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		err := fmt.Errorf("coordinator: %s: %s (%s)",
			req.URL.Path, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return permanentError{err}
		}
		return err
	}
	return jsonio.Decode(io.LimitReader(resp.Body, 1<<20), out)
}

// retry runs fn with bounded retries and jittered exponential backoff,
// giving up early on permanent (4xx) errors or a done context.
func (c *Client) retry(ctx context.Context, fn func() error) error {
	retries := c.Retries
	if retries < 0 {
		retries = 0
	}
	base := c.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		// A cancelled context aborts before the next attempt: without this
		// check a caller that gave up mid-backoff would still fire one more
		// request at the coordinator.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(); err == nil {
			return nil
		}
		if _, permanent := err.(permanentError); permanent || attempt >= retries {
			return err
		}
		delay := base << uint(attempt)
		c.mu.Lock()
		if c.rng != nil {
			delay += time.Duration(c.rng.Int63n(int64(delay)/2 + 1))
		}
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}
