package coordinator

import "math/rand"

// ChaosSpec parameterizes the coordinator-path fault plan: lost report
// submissions and whole-coordinator outage windows. It deliberately
// attacks the control plane only — node-level telemetry and actuator
// faults live in internal/faults — so the degradation path under test is
// exactly the grant loop's: a node that cannot report (or a fleet whose
// coordinator is down) keeps running on its last-granted cap.
type ChaosSpec struct {
	// DropRate is the per-(node, epoch) probability that a report
	// submission is lost before it reaches the coordinator.
	DropRate float64
	// Outages is how many coordinator outage windows to schedule across
	// the horizon; OutageEpochs is the length of each in epochs.
	Outages      int
	OutageEpochs int
}

// DefaultChaosSpec is the degradation profile of the chaos battery: a
// 10 % report loss rate and two 3-epoch coordinator outages.
func DefaultChaosSpec() ChaosSpec {
	return ChaosSpec{DropRate: 0.1, Outages: 2, OutageEpochs: 3}
}

// ChaosPlan is a materialized, fully deterministic schedule: a pure
// function of (spec, seed, epochs, nodes), like faults.Plan. Building
// the same plan twice yields identical drop and outage schedules, so a
// failing chaos run replays exactly from its seed.
type ChaosPlan struct {
	drops   map[int]map[int]bool // epoch -> node -> dropped
	outage  map[int]bool
	dropped int
	outages int
}

// NewChaos materializes a plan over `epochs` arbitration epochs and
// `nodes` nodes.
func NewChaos(spec ChaosSpec, seed int64, epochs, nodes int) *ChaosPlan {
	rng := rand.New(rand.NewSource(seed))
	p := &ChaosPlan{drops: map[int]map[int]bool{}, outage: map[int]bool{}}
	for e := 1; e <= epochs; e++ {
		for n := 0; n < nodes; n++ {
			if spec.DropRate > 0 && rng.Float64() < spec.DropRate {
				if p.drops[e] == nil {
					p.drops[e] = map[int]bool{}
				}
				p.drops[e][n] = true
			}
		}
	}
	for i := 0; i < spec.Outages && epochs > 1; i++ {
		start := 1 + rng.Intn(epochs)
		for e := start; e < start+spec.OutageEpochs && e <= epochs; e++ {
			p.outage[e] = true
		}
	}
	return p
}

// Dropped reports whether node n's epoch-e report is lost. Nil plans run
// clean.
func (p *ChaosPlan) Dropped(epoch, node int) bool {
	if p == nil {
		return false
	}
	return p.drops[epoch][node]
}

// Outage reports whether the coordinator is unreachable for the whole
// epoch. Nil plans run clean.
func (p *ChaosPlan) Outage(epoch int) bool {
	if p == nil {
		return false
	}
	return p.outage[epoch]
}
