package coordinator

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

// newObsFixture is newHTTPFixture plus an attached decision-trail sink,
// for the /metrics and /v1/events endpoint tests.
func newObsFixture(t *testing.T, opt Options) (*httptest.Server, *Client, *obs.Sink) {
	t.Helper()
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(c)
	sink := obs.New(0)
	s.SetObs(sink)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL, 1)
	cl.BackoffBase = time.Millisecond
	return srv, cl, sink
}

// TestHTTPClientSurfacesErrorBody pins the client's 4xx error contract:
// the server's response body must appear verbatim in the returned error
// (alongside path and status) and the failure must be treated as
// permanent — one request, no retries. Operators debug rejected reports
// from this one string, so its shape is a regression surface.
func TestHTTPClientSurfacesErrorBody(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "report schema \"bogus\" rejected", http.StatusBadRequest)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, 7)
	cl.BackoffBase = time.Millisecond

	_, err := cl.Report(context.Background(), report("a", 0, 0.15, 90, 100))
	if err == nil {
		t.Fatal("400 reported as success")
	}
	const want = `coordinator: /v1/report: 400 Bad Request (report schema "bogus" rejected)`
	if err.Error() != want {
		t.Errorf("error message drifted:\n got %q\nwant %q", err.Error(), want)
	}
	if calls.Load() != 1 {
		t.Errorf("client retried a permanent 4xx %d times", calls.Load())
	}

	// The same contract against the real handler: an unknown-node grant
	// surfaces the coordinator's own message through the 404 body.
	_, cl2 := newHTTPFixture(t, Options{BudgetW: 200})
	_, err = cl2.Grant(context.Background(), "ghost")
	if err == nil {
		t.Fatal("unknown node reported as success")
	}
	for _, frag := range []string{"/v1/grant", "404", `unknown node "ghost"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("grant error %q missing %q", err.Error(), frag)
		}
	}
}

// TestHTTPStatusFieldCompleteness decodes /fleet/status as raw JSON and
// requires every documented field to be present on the wire — a rename
// or omitted tag breaks dashboards silently, so the keys are pinned.
func TestHTTPStatusFieldCompleteness(t *testing.T) {
	srv, cl, _ := newObsFixture(t, Options{BudgetW: 200, FleetSize: 2})
	ctx := context.Background()
	for _, id := range []string{"a", "b"} {
		if _, err := cl.Report(ctx, report(id, 1, 0.15, 90, 100)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(srv.URL + "/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "epoch", "budget_w", "pool_w", "nodes", "stats"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/fleet/status missing top-level field %q", key)
		}
	}
	var nodes []map[string]json.RawMessage
	if err := json.Unmarshal(doc["nodes"], &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("expected 2 node rows, got %d", len(nodes))
	}
	for _, key := range []string{"node_id", "cap_w", "slack", "power_w", "last_epoch", "stale", "healthy"} {
		if _, ok := nodes[0][key]; !ok {
			t.Errorf("/fleet/status node row missing field %q", key)
		}
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(doc["stats"], &stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"reports", "arbitrations", "donations", "grants_up", "stale_freezes", "moved_w"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/fleet/status stats missing field %q", key)
		}
	}
}

// TestHTTPMetricsEndpoint scrapes /metrics and cross-checks the
// coordinator counters against the stats the status document reports.
func TestHTTPMetricsEndpoint(t *testing.T) {
	srv, cl, _ := newObsFixture(t, Options{BudgetW: 200, FleetSize: 2})
	ctx := context.Background()
	for e := 0; e <= 2; e++ {
		for _, id := range []string{"a", "b"} {
			if _, err := cl.Report(ctx, report(id, e, 0.15, 90, 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE coordinator_reports_total counter",
		"coordinator_reports_total 6",
		"# TYPE coordinator_pool_watts gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
	if st.Stats.Reports != 6 {
		t.Fatalf("status reports %d, want 6 (fixture drifted)", st.Stats.Reports)
	}
}

// eventsAt fetches /v1/events?since=N and validates the document.
func eventsAt(t *testing.T, base string, since string) *obs.EventsDoc {
	t.Helper()
	url := base + "/v1/events"
	if since != "" {
		url += "?since=" + since
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var doc obs.EventsDoc
	if err := jsonio.Decode(resp.Body, &doc); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return &doc
}

// TestHTTPEventsPagination drives enough arbitration to journal events,
// then pages the journal with ?since=SEQ: the tail after a cursor must
// contain exactly the events newer than it, the end cursor must return
// an empty document, and a malformed cursor must be a 400.
func TestHTTPEventsPagination(t *testing.T) {
	srv, cl, sink := newObsFixture(t, Options{BudgetW: 400, MinCapW: 60, MaxCapW: 140, FleetSize: 4})
	ctx := context.Background()
	ids := []string{"n0", "n1", "n2", "n3"}
	caps := map[string]float64{"n0": 100, "n1": 100, "n2": 100, "n3": 100}
	for e := 0; e <= 6; e++ {
		for _, id := range ids {
			slack, pw := 0.15, 90.0
			switch id {
			case "n0":
				slack, pw = 0.05, caps[id]-0.5
			case "n1":
				slack, pw = 0.6, 70
			}
			g, err := cl.Report(ctx, report(id, e, slack, pw, caps[id]))
			if err != nil {
				t.Fatal(err)
			}
			caps[id] = g.CapW
		}
	}

	all := eventsAt(t, srv.URL, "")
	if len(all.Events) == 0 {
		t.Fatal("no events journaled by a converging fleet")
	}
	hasGrant := false
	for _, ev := range all.Events {
		if ev.Type == obs.EventCapGranted {
			hasGrant = true
			break
		}
	}
	if !hasGrant {
		t.Fatal("journal carries no cap_granted events")
	}

	mid := all.Events[len(all.Events)/2].Seq
	tail := eventsAt(t, srv.URL, strconv.FormatInt(mid, 10))
	wantTail := 0
	for _, ev := range all.Events {
		if ev.Seq > mid {
			wantTail++
		}
	}
	if len(tail.Events) != wantTail {
		t.Fatalf("since=%d returned %d events, want %d", mid, len(tail.Events), wantTail)
	}
	for _, ev := range tail.Events {
		if ev.Seq <= mid {
			t.Fatalf("since=%d leaked event seq %d", mid, ev.Seq)
		}
	}

	last := sink.Journal.LastSeq()
	empty := eventsAt(t, srv.URL, strconv.FormatInt(last, 10))
	if len(empty.Events) != 0 {
		t.Fatalf("since=last returned %d events, want 0", len(empty.Events))
	}

	resp, err := http.Get(srv.URL + "/v1/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage cursor got %s, want 400", resp.Status)
	}
}

// TestHTTPEventsSinceEdgeCases pins /v1/events cursor semantics at the
// edges: negative cursors are a 400 (never a panic or a silent clamp),
// cursors beyond the head return an empty tail, and a wrapped ring
// documents the overwritten events in the response's "missing" field.
func TestHTTPEventsSinceEdgeCases(t *testing.T) {
	c, err := New(Options{BudgetW: 200, FleetSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(c)
	sink := obs.New(4) // tiny journal so the ring wraps under test control
	s.SetObs(sink)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	for _, since := range []string{"-1", "-100"} {
		resp, err := http.Get(srv.URL + "/v1/events?since=" + since)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("since=%s got %s, want 400", since, resp.Status)
		}
	}

	for i := 0; i < 6; i++ {
		sink.Emit(obs.Event{T: float64(i), Type: obs.EventGovernorAdjust})
	}

	// Cursor far beyond the head: empty, and no phantom gap.
	d := eventsAt(t, srv.URL, "1000000")
	if len(d.Events) != 0 || d.Missing != 0 {
		t.Fatalf("since-beyond-head: events %d missing %d, want 0/0", len(d.Events), d.Missing)
	}

	// Stale cursor against the wrapped ring: the tail comes back with the
	// drop documented — seqs 1-2 were overwritten, so missing = 2.
	d = eventsAt(t, srv.URL, "0")
	if err := d.Validate(); err != nil {
		t.Fatalf("wrapped-ring doc invalid: %v", err)
	}
	if len(d.Events) != 4 || d.Missing != 2 || d.Dropped != 2 {
		t.Fatalf("wrapped ring: events %d missing %d dropped %d, want 4/2/2",
			len(d.Events), d.Missing, d.Dropped)
	}
	// A cursor inside the retained window sees no gap.
	if d = eventsAt(t, srv.URL, "4"); len(d.Events) != 2 || d.Missing != 0 {
		t.Fatalf("in-window cursor: events %d missing %d, want 2/0", len(d.Events), d.Missing)
	}
}

// traceAt fetches /v1/trace?since=N and validates the document.
func traceAt(t *testing.T, base string, since string) *obs.TraceDoc {
	t.Helper()
	url := base + "/v1/trace"
	if since != "" {
		url += "?since=" + since
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var doc obs.TraceDoc
	if err := jsonio.Decode(resp.Body, &doc); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return &doc
}

// TestHTTPTraceAndTimeline drives arbitration through the full server
// and reads the causal trace and fleet timeline back over the wire:
// grant spans must thread under their epoch span, the ?since= cursor
// must page like the journal's, and the timeline must carry the
// coordinator pool series.
func TestHTTPTraceAndTimeline(t *testing.T) {
	srv, cl, sink := newObsFixture(t, Options{BudgetW: 400, MinCapW: 60, MaxCapW: 140, FleetSize: 4})
	ctx := context.Background()
	ids := []string{"n0", "n1", "n2", "n3"}
	caps := map[string]float64{"n0": 100, "n1": 100, "n2": 100, "n3": 100}
	for e := 0; e <= 6; e++ {
		for _, id := range ids {
			slack, pw := 0.15, 90.0
			switch id {
			case "n0":
				slack, pw = 0.05, caps[id]-0.5
			case "n1":
				slack, pw = 0.6, 70
			}
			g, err := cl.Report(ctx, report(id, e, slack, pw, caps[id]))
			if err != nil {
				t.Fatal(err)
			}
			caps[id] = g.CapW
		}
	}

	all := traceAt(t, srv.URL, "")
	if err := all.Validate(); err != nil {
		t.Fatalf("trace doc invalid: %v", err)
	}
	byID := map[string]obs.Span{}
	for _, sp := range all.Spans {
		byID[sp.ID] = sp
	}
	grants := 0
	for _, sp := range all.Spans {
		if sp.Kind != obs.SpanCapGrant {
			continue
		}
		grants++
		parent, ok := byID[sp.Parent]
		if !ok || parent.Kind != obs.SpanCoordEpoch {
			t.Fatalf("grant span %s not threaded under a coord_epoch (parent %q)", sp.ID, sp.Parent)
		}
	}
	if grants == 0 {
		t.Fatal("converging fleet traced no cap_grant spans")
	}

	mid := all.Spans[len(all.Spans)/2].Seq
	tail := traceAt(t, srv.URL, strconv.FormatInt(mid, 10))
	for _, sp := range tail.Spans {
		if sp.Seq <= mid {
			t.Fatalf("since=%d leaked span seq %d", mid, sp.Seq)
		}
	}
	if last := sink.Trace.LastSeq(); len(traceAt(t, srv.URL, strconv.FormatInt(last, 10)).Spans) != 0 {
		t.Fatal("since=last must return an empty span tail")
	}
	resp, err := http.Get(srv.URL + "/v1/trace?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage trace cursor got %s, want 400", resp.Status)
	}

	resp, err = http.Get(srv.URL + "/v1/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tl obs.TimelineDoc
	if err := jsonio.Decode(resp.Body, &tl); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range tl.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"coordinator_pool_w", "coordinator_moved_w"} {
		if !names[want] {
			t.Errorf("/v1/timeline missing series %q (have %v)", want, names)
		}
	}
}
