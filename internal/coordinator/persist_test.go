package coordinator

import (
	"context"
	"math"
	"reflect"
	"testing"

	"sturgeon/internal/durable"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

// persistOpt is the arbitration config of the persistence battery: a
// 300 W budget over three nodes with room to move watts in both
// directions.
func persistOpt() Options {
	return Options{BudgetW: 300, MinCapW: 50, MaxCapW: 150, FleetSize: 3}
}

// scriptedReports drives a donor/requester/in-band fleet over epochs
// [from, to): node a is pinned against its cap, node b strands watts,
// node c holds. Caps in each report echo the previous grant, exactly as
// a live node would. When c is non-nil the run is required to actually
// move watts, so recovery assertions are never vacuous.
func scriptedReports(t *testing.T, c *Coordinator, tr Transport, from, to int) {
	t.Helper()
	caps := map[string]float64{"a": 100, "b": 100, "c": 100}
	for e := from; e < to; e++ {
		for _, id := range []string{"a", "b", "c"} {
			slack, pw := 0.15, 80.0
			switch id {
			case "a":
				slack, pw = 0.04, caps[id]-0.5
			case "b":
				slack, pw = 0.55, 62
			}
			g, err := tr.Report(context.Background(), NodeReport{
				Schema: Schema, NodeID: id, Epoch: e,
				Slack: slack, P95S: 0.004, PowerW: pw, CapW: caps[id],
				BEThroughputUPS: 900, Healthy: true,
			})
			if err != nil {
				t.Fatalf("epoch %d node %s: %v", e, id, err)
			}
			caps[id] = g.CapW
		}
	}
	if c != nil && c.stats.Donations == 0 {
		t.Fatal("scripted fleet moved no watts; recovery assertions would be vacuous")
	}
}

// assertConserved checks Σcaps + pool ≡ budget exactly (float
// tolerance) — the invariant no recovery path may weaken.
func assertConserved(t *testing.T, c *Coordinator) {
	t.Helper()
	st := c.Status()
	sum := st.PoolW
	for _, n := range st.Nodes {
		sum += n.CapW
	}
	if math.Abs(sum-st.BudgetW) > 1e-6 {
		t.Fatalf("budget not conserved: caps+pool %.6f W vs %.6f W", sum, st.BudgetW)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c, err := New(persistOpt())
	if err != nil {
		t.Fatal(err)
	}
	scriptedReports(t, c, &Local{C: c}, 0, 6)

	st := c.Snapshot()
	if err := st.Validate(); err != nil {
		t.Fatalf("live snapshot invalid: %v", err)
	}
	// The document must survive its own JSON form.
	data, err := jsonio.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := jsonio.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	c2, err := New(persistOpt())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Snapshot(), c2.Snapshot()) {
		t.Fatal("restore does not reproduce the snapshotted state")
	}
	if !reflect.DeepEqual(c.Status(), c2.Status()) {
		t.Fatal("restored coordinator renders a different fleet status")
	}
	// The two machines must stay in lockstep when driven onward.
	scriptedReports(t, nil, &Local{C: c}, 6, 10)
	scriptedReports(t, nil, &Local{C: c2}, 6, 10)
	if !reflect.DeepEqual(c.Status(), c2.Status()) {
		t.Fatal("restored coordinator diverges when driven past the snapshot")
	}
}

// TestRecoverExactAtEveryCut kills the coordinator after every prefix
// of the report stream — including mid-epoch, between two nodes'
// submissions — and requires Recover to reconstruct the exact live
// state from whatever mix of snapshot and log records the store holds.
func TestRecoverExactAtEveryCut(t *testing.T) {
	const epochs = 5
	reportCount := epochs * 3
	for cut := 1; cut <= reportCount; cut++ {
		store := durable.NewMemStore()
		live, err := New(persistOpt())
		if err != nil {
			t.Fatal(err)
		}
		tr := &DurableLocal{C: live, P: &Persist{Store: store, SnapshotEvery: 4}}
		caps := map[string]float64{"a": 100, "b": 100, "c": 100}
		submitted := 0
	drive:
		for e := 0; e < epochs; e++ {
			for _, id := range []string{"a", "b", "c"} {
				slack, pw := 0.15, 80.0
				switch id {
				case "a":
					slack, pw = 0.04, caps[id]-0.5
				case "b":
					slack, pw = 0.55, 62
				}
				g, err := tr.Report(context.Background(), NodeReport{
					Schema: Schema, NodeID: id, Epoch: e,
					Slack: slack, P95S: 0.004, PowerW: pw, CapW: caps[id],
					BEThroughputUPS: 900, Healthy: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				caps[id] = g.CapW
				submitted++
				if submitted == cut {
					break drive
				}
			}
		}

		rec, info, err := Recover(store, persistOpt(), nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if info.Degraded {
			t.Fatalf("cut %d: clean store recovered degraded (%s)", cut, info.Reason)
		}
		if !reflect.DeepEqual(live.Snapshot(), rec.Snapshot()) {
			t.Fatalf("cut %d: recovered state differs from the live coordinator", cut)
		}
		assertConserved(t, rec)
	}
}

// TestRecoverDegradesOnCorruptSnapshot pins the bottom rung of the
// ladder: a damaged snapshot yields a fresh coordinator — no panic, no
// partial state, full budget back in the pool — and the record log is
// ignored (its baseline is unknowable).
func TestRecoverDegradesOnCorruptSnapshot(t *testing.T) {
	store := durable.NewMemStore()
	live, err := New(persistOpt())
	if err != nil {
		t.Fatal(err)
	}
	tr := &DurableLocal{C: live, P: &Persist{Store: store, SnapshotEvery: 4}}
	scriptedReports(t, live, tr, 0, 4)

	for _, raw := range []string{"{truncated", `{"schema":"wrong/v1"}`} {
		store.CorruptSnapshot([]byte(raw))
		sink := obs.New(0)
		rec, info, err := Recover(store, persistOpt(), sink)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Degraded || info.Reason != "corrupt_snapshot" {
			t.Fatalf("corrupt snapshot %q recovered as %q (degraded=%v)", raw, info.Reason, info.Degraded)
		}
		if info.ReplayedReports != 0 {
			t.Errorf("replayed %d records on top of an unknown baseline", info.ReplayedReports)
		}
		st := rec.Status()
		if len(st.Nodes) != 0 || st.PoolW != 300 {
			t.Errorf("degraded recovery not fresh: %d nodes, pool %.1f W", len(st.Nodes), st.PoolW)
		}
		assertConserved(t, rec)
		if got := sink.Metrics.Counter("coordinator_recoveries_total").Value(); got != 1 {
			t.Errorf("coordinator_recoveries_total = %d, want 1", got)
		}
		evs := sink.Journal.Since(0)
		if len(evs) != 1 || evs[0].Type != obs.EventRecoveryCompleted || evs[0].Reason != info.Reason {
			t.Errorf("recovery event missing or wrong: %+v", evs)
		}
	}
}

// TestRecoverTruncatesTornLog pins the middle rung: a record
// half-written at SIGKILL time cuts the replay at the last intact
// record; the recovered state equals a coordinator that only ever saw
// the intact prefix.
func TestRecoverTruncatesTornLog(t *testing.T) {
	store := durable.NewMemStore()
	live, err := New(persistOpt())
	if err != nil {
		t.Fatal(err)
	}
	// SnapshotEvery 0: the whole run lives in the record log.
	tr := &DurableLocal{C: live, P: &Persist{Store: store}}
	scriptedReports(t, live, tr, 0, 4)

	store.TearLog(store.LogLen() - 3)
	rec, info, err := Recover(store, persistOpt(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Degraded {
		t.Fatalf("torn tail degraded to fresh (%s); it should replay the prefix", info.Reason)
	}
	if info.ReplayedReports != 11 {
		t.Errorf("replayed %d reports, want the 11 intact", info.ReplayedReports)
	}
	assertConserved(t, rec)

	// Cross-check against a coordinator driven with exactly the prefix.
	ref, err := New(persistOpt())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := store.Records()
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range recs {
		r, err := DecodeReportRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(ref.Snapshot(), rec.Snapshot()) {
		t.Fatal("torn-log recovery differs from an intact-prefix replay")
	}
}

// TestRecoverBudgetMismatchDegrades: restarting the daemon with a
// different -budget must not graft old caps onto the new budget.
func TestRecoverBudgetMismatchDegrades(t *testing.T) {
	store := durable.NewMemStore()
	live, err := New(persistOpt())
	if err != nil {
		t.Fatal(err)
	}
	tr := &DurableLocal{C: live, P: &Persist{Store: store, SnapshotEvery: 3}}
	scriptedReports(t, live, tr, 0, 3)

	opt := persistOpt()
	opt.BudgetW = 240
	rec, info, err := Recover(store, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Degraded || info.Reason != "restore_rejected" {
		t.Fatalf("budget mismatch recovered as %q (degraded=%v)", info.Reason, info.Degraded)
	}
	if st := rec.Status(); st.PoolW != 240 || len(st.Nodes) != 0 {
		t.Errorf("degraded recovery not fresh under the new budget: %+v", st)
	}
}

// TestStaleNodeSurvivesRestart is the satellite scenario: a node goes
// stale, the coordinator restarts from its snapshot with the stale node
// still in it, and the freeze must persist — the silent node's watts
// stay reserved across the crash, its cap thaws only when it reports
// again, and the budget is conserved at every step on the way back up.
func TestStaleNodeSurvivesRestart(t *testing.T) {
	store := durable.NewMemStore()
	live, err := New(persistOpt())
	if err != nil {
		t.Fatal(err)
	}
	tr := &DurableLocal{C: live, P: &Persist{Store: store, SnapshotEvery: 2}}

	report := func(tp Transport, id string, epoch int, slack, pw, cap float64) Grant {
		t.Helper()
		g, err := tp.Report(context.Background(), NodeReport{
			Schema: Schema, NodeID: id, Epoch: epoch,
			Slack: slack, P95S: 0.004, PowerW: pw, CapW: cap,
			BEThroughputUPS: 900, Healthy: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	// Three epochs with all three nodes, then node c goes silent for
	// enough epochs to trip the staleness fallback (StaleEpochs = 3).
	caps := map[string]float64{"a": 100, "b": 100, "c": 100}
	for e := 0; e < 3; e++ {
		caps["a"] = report(tr, "a", e, 0.04, caps["a"]-0.5, caps["a"]).CapW
		caps["b"] = report(tr, "b", e, 0.55, 62, caps["b"]).CapW
		caps["c"] = report(tr, "c", e, 0.15, 80, caps["c"]).CapW
	}
	for e := 3; e < 7; e++ {
		caps["a"] = report(tr, "a", e, 0.04, caps["a"]-0.5, caps["a"]).CapW
		caps["b"] = report(tr, "b", e, 0.55, 62, caps["b"]).CapW
		assertConserved(t, live)
	}
	if live.stats.StaleFreezes == 0 {
		t.Fatal("node c never went stale; the scenario is vacuous")
	}
	frozen := live.nodes["c"].capW

	// SIGKILL + restart: the stale node rides along in the snapshot.
	rec, info, err := Recover(store, persistOpt(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Degraded {
		t.Fatalf("clean restart degraded: %s", info.Reason)
	}
	if got := rec.nodes["c"].capW; got != frozen {
		t.Fatalf("stale node's cap moved across restart: %.1f -> %.1f W", frozen, got)
	}
	preFreezes := rec.stats.StaleFreezes

	// Still silent after restart: the freeze must keep holding.
	tr2 := &DurableLocal{C: rec, P: &Persist{Store: store, SnapshotEvery: 2}}
	for e := 7; e < 10; e++ {
		caps["a"] = report(tr2, "a", e, 0.04, caps["a"]-0.5, caps["a"]).CapW
		caps["b"] = report(tr2, "b", e, 0.55, 62, caps["b"]).CapW
		assertConserved(t, rec)
		if got := rec.nodes["c"].capW; got != frozen {
			t.Fatalf("epoch %d: frozen cap moved to %.1f W while the node stayed silent", e, got)
		}
	}
	if rec.stats.StaleFreezes <= preFreezes {
		t.Error("restart lost the staleness fallback: no freezes counted after recovery")
	}

	// The node returns, starved, while the donor frees watts again (its
	// draw drops to 52 W): re-admission must follow the binary-halving
	// grant backoff — each granted step no larger than half the margin to
	// MaxCapW — with conservation holding at every step on the way up.
	prev := frozen
	margin := persistOpt().MaxCapW - frozen
	for e := 10; e < 16; e++ {
		caps["a"] = report(tr2, "a", e, 0.04, caps["a"]-0.5, caps["a"]).CapW
		caps["b"] = report(tr2, "b", e, 0.55, 52, caps["b"]).CapW
		g := report(tr2, "c", e, 0.02, prev-0.2, prev)
		assertConserved(t, rec)
		stepUp := g.CapW - prev
		if stepUp < 0 {
			t.Fatalf("epoch %d: returning node shrank to %.1f W", e, g.CapW)
		}
		if stepUp > margin/2+1e-9 {
			t.Fatalf("epoch %d: re-admission step %.1f W exceeds the halving bound %.1f W",
				e, stepUp, margin/2)
		}
		prev = g.CapW
	}
	if prev <= frozen {
		t.Errorf("returning node never re-admitted: cap still %.1f W", prev)
	}
}

// FuzzStateDecode hammers the coordstate/v1 decoder: any bytes that
// decode as a valid State must round-trip losslessly and restore into a
// budget-matched coordinator whose status still validates (no panic, no
// conservation break) — or be rejected whole.
func FuzzStateDecode(f *testing.F) {
	c, err := New(persistOpt())
	if err != nil {
		f.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		_, _ = c.Submit(NodeReport{Schema: Schema, NodeID: id, Epoch: 0,
			Slack: 0.3, P95S: 0.004, PowerW: 80, CapW: 100, BEThroughputUPS: 1, Healthy: true})
	}
	if seed, err := jsonio.Marshal(c.Snapshot()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"schema":"sturgeon/coordstate/v1","budget_w":10,"pool_w":10,"nodes":[]}`))
	f.Add([]byte(`{"schema":"sturgeon/coordstate/v1","budget_w":-1}`))
	f.Add([]byte("]["))

	f.Fuzz(func(t *testing.T, data []byte) {
		var st State
		if err := jsonio.Unmarshal(data, &st); err != nil {
			return // rejected whole: fine
		}
		out, err := jsonio.Marshal(&st)
		if err != nil {
			t.Fatalf("accepted state fails to re-encode: %v", err)
		}
		var again State
		if err := jsonio.Unmarshal(out, &again); err != nil {
			t.Fatalf("re-encoded state fails to decode: %v", err)
		}
		if !reflect.DeepEqual(st, again) {
			t.Fatal("state round-trip diverges")
		}
		rc, err := New(Options{BudgetW: st.BudgetW})
		if err != nil {
			return
		}
		if err := rc.Restore(&st); err != nil {
			return // rejected whole: fine
		}
		if err := rc.Status().Validate(); err != nil {
			t.Fatalf("restored state renders an invalid status: %v", err)
		}
	})
}
