package coordinator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sturgeon/internal/faults"
)

// NetChaos wraps any Transport with a deterministic network-fault
// schedule (faults.NetPlan): directed partitions, message drop, one-
// epoch delay with optional reorder, and duplication. Because the plan
// is a pure function of (spec, seed, epochs, nodes) and the wrapper is
// driven purely by the report sequence, the in-process Local transport
// and the networked HTTP Client observe the identical schedule — the
// property the partition-soak battery pins across both paths.
//
// Message fates, in the order they are considered per report:
//
//   - partitioned out / dropped: the report never reaches the
//     coordinator; the caller sees an error (a missed renewal).
//   - delayed: the report is buffered and delivered at the next epoch's
//     first Report call, before that epoch's fresh reports — in node
//     order, or reversed when the plan schedules a reorder. Its grant
//     response arrives too late to matter and is discarded, so the
//     caller still sees an error this epoch.
//   - duplicated: the report is delivered twice back to back — the
//     retry-after-lost-ack shape the server-side (node, epoch) dedupe
//     neutralizes.
//   - partitioned in: the report IS delivered (the coordinator renews
//     the lease) but the grant response is lost — the asymmetric case
//     the lease invariants exist for.
//
// Status passes through untouched: the invariant harness reads it as
// out-of-band ground truth, not as node traffic.
type NetChaos struct {
	Inner Transport
	Plan  *faults.NetPlan
	// NodeIndex maps a report's NodeID to the plan's node index; nil
	// uses the fleet convention of a trailing decimal index ("node-003"
	// → 3). Reports mapping outside [0, Plan.Nodes) pass through
	// unharmed.
	NodeIndex func(nodeID string) int

	stats   NetStats
	delayed []delayedReport
	flushed int // newest epoch whose delayed flush has run
}

// NetStats counts the message fates the wrapper imposed.
type NetStats struct {
	PartitionedOut int `json:"partitioned_out"`
	PartitionedIn  int `json:"partitioned_in"`
	Dropped        int `json:"dropped"`
	Delayed        int `json:"delayed"`
	DeliveredLate  int `json:"delivered_late"`
	Duplicated     int `json:"duplicated"`
	Reordered      int `json:"reordered"`
}

type delayedReport struct {
	r    NodeReport
	node int
}

// ErrNetChaos is the error returned for every report the schedule
// severs; callers treat it like any other transport failure (run on
// the last grant, count a fallback).
var ErrNetChaos = errors.New("coordinator: netchaos severed link")

// Stats returns the tallies so far.
func (n *NetChaos) Stats() NetStats { return n.stats }

func (n *NetChaos) nodeIndex(nodeID string) int {
	if n.NodeIndex != nil {
		return n.NodeIndex(nodeID)
	}
	if i := strings.LastIndexByte(nodeID, '-'); i >= 0 {
		if v, err := strconv.Atoi(nodeID[i+1:]); err == nil {
			return v
		}
	}
	return -1
}

// flush delivers the buffered delayed reports once per epoch advance,
// before the epoch's fresh reports. Responses are discarded — they are
// answers to last epoch's question.
func (n *NetChaos) flush(ctx context.Context, epoch int) {
	if epoch <= n.flushed {
		return
	}
	n.flushed = epoch
	if len(n.delayed) == 0 {
		return
	}
	batch := n.delayed
	n.delayed = nil
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].r.Epoch != batch[j].r.Epoch {
			return batch[i].r.Epoch < batch[j].r.Epoch
		}
		return batch[i].node < batch[j].node
	})
	if n.Plan.ReorderedFlush(epoch) {
		n.stats.Reordered++
		for i, j := 0, len(batch)-1; i < j; i, j = i+1, j-1 {
			batch[i], batch[j] = batch[j], batch[i]
		}
	}
	for _, d := range batch {
		_, _ = n.Inner.Report(ctx, d.r)
		n.stats.DeliveredLate++
	}
}

// Report implements Transport.
func (n *NetChaos) Report(ctx context.Context, r NodeReport) (Grant, error) {
	node := n.nodeIndex(r.NodeID)
	n.flush(ctx, r.Epoch)
	if node < 0 || node >= n.Plan.Nodes {
		return n.Inner.Report(ctx, r)
	}
	switch {
	case n.Plan.PartitionedOut(r.Epoch, node):
		n.stats.PartitionedOut++
		return Grant{}, fmt.Errorf("%w: report %s/%d partitioned", ErrNetChaos, r.NodeID, r.Epoch)
	case n.Plan.Dropped(r.Epoch, node):
		n.stats.Dropped++
		return Grant{}, fmt.Errorf("%w: report %s/%d dropped", ErrNetChaos, r.NodeID, r.Epoch)
	case n.Plan.Delayed(r.Epoch, node):
		n.stats.Delayed++
		n.delayed = append(n.delayed, delayedReport{r: r, node: node})
		return Grant{}, fmt.Errorf("%w: report %s/%d delayed", ErrNetChaos, r.NodeID, r.Epoch)
	}
	g, err := n.Inner.Report(ctx, r)
	if n.Plan.Duplicated(r.Epoch, node) {
		// The duplicate's response goes nowhere; the server-side dedupe
		// makes the re-delivery a pure no-op.
		n.stats.Duplicated++
		_, _ = n.Inner.Report(ctx, r)
	}
	if err != nil {
		return Grant{}, err
	}
	if n.Plan.PartitionedIn(r.Epoch, node) {
		n.stats.PartitionedIn++
		return Grant{}, fmt.Errorf("%w: grant for %s/%d lost", ErrNetChaos, r.NodeID, r.Epoch)
	}
	return g, nil
}

// Status implements Transport, passing straight through.
func (n *NetChaos) Status(ctx context.Context) (*FleetStatus, error) {
	return n.Inner.Status(ctx)
}
