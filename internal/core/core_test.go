package core

import (
	"math"
	"sync"
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/power"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// Shared fixture: training predictors is the expensive part of these
// tests, so build them once per (ls, be) pair.
var (
	fixMu    sync.Mutex
	fixCache = map[string]*models.Predictor{}
)

func predictorFor(t *testing.T, ls, be workload.Profile) *models.Predictor {
	t.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	key := ls.Name + "+" + be.Name
	if p, ok := fixCache[key]; ok {
		return p
	}
	p, err := models.Train(ls, be, models.TrainOptions{
		Collect: models.CollectOptions{Samples: 1200, IntervalsPerSample: 2, Seed: 42},
	})
	if err != nil {
		t.Fatalf("training predictor for %s: %v", key, err)
	}
	fixCache[key] = p
	return p
}

func budgetFor(ls workload.Profile) power.Watts {
	n := sim.QuietNode(ls, workload.Blackscholes(), 1)
	return sim.LSPeakPower(n.Spec, n.PowerParams, n.Bus, ls)
}

func TestSearcherFindsFeasibleConfigs(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	s := &Searcher{Spec: hw.DefaultSpec(), Pred: pred, Budget: budgetFor(ls)}

	for _, frac := range []float64{0.2, 0.35, 0.5, 0.8} {
		qps := frac * ls.PeakQPS
		cfg, ok := s.BestConfig(qps)
		if !ok {
			t.Fatalf("no feasible config at %.0f%% load", frac*100)
		}
		if err := cfg.Validate(s.Spec); err != nil {
			t.Fatalf("invalid config at %.0f%%: %v", frac*100, err)
		}
		if cfg.BE.Cores <= 0 {
			t.Errorf("at %.0f%% load the BE application got no cores: %v", frac*100, cfg)
		}
		// The chosen config must be truly feasible on the physics.
		node := sim.QuietNode(ls, be, 9)
		if err := node.Apply(cfg); err != nil {
			t.Fatal(err)
		}
		st := node.Step(1, qps)
		if st.TrueP95 > ls.QoSTargetS {
			t.Errorf("at %.0f%%: config %v violates QoS (p95 %v)", frac*100, cfg, st.TrueP95)
		}
		if float64(st.TruePower) > float64(budgetFor(ls))*1.02 {
			t.Errorf("at %.0f%%: config %v overloads (%.1f vs %.1f)",
				frac*100, cfg, st.TruePower, budgetFor(ls))
		}
	}
}

func TestSearcherGivesLSMoreAtHigherLoad(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	s := &Searcher{Spec: hw.DefaultSpec(), Pred: pred, Budget: budgetFor(ls)}
	lo, _ := s.BestConfig(0.2 * ls.PeakQPS)
	hi, _ := s.BestConfig(0.7 * ls.PeakQPS)
	loCap := float64(lo.LS.Cores) * float64(lo.LS.Freq)
	hiCap := float64(hi.LS.Cores) * float64(hi.LS.Freq)
	if hiCap <= loCap {
		t.Errorf("LS core·GHz at 70%% (%v) not above 20%% (%v)", hiCap, loCap)
	}
}

func TestSearcherCandidatesJustEnough(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	s := &Searcher{Spec: hw.DefaultSpec(), Pred: pred, Budget: budgetFor(ls)}
	cands := s.Candidates(0.2 * ls.PeakQPS)
	if len(cands) < 2 {
		t.Fatalf("only %d candidates at 20%% load; want several feasible trade-offs", len(cands))
	}
	prevCores := 0
	for _, c := range cands {
		if c.Config.LS.Cores < prevCores {
			t.Errorf("candidates not in non-decreasing LS-core order: %v", c.Config)
		}
		prevCores = c.Config.LS.Cores
		if c.Throughput <= 0 {
			t.Errorf("candidate %v scored %v", c.Config, c.Throughput)
		}
	}
	// The last candidate should give the BE side its top frequency (the
	// sweep's stop condition) unless the core budget ran out first.
	last := cands[len(cands)-1]
	if last.Config.BE.Freq != s.Spec.FreqMax && last.Config.BE.Cores > 1 {
		t.Errorf("sweep stopped at %v before BE reached max frequency", last.Config)
	}
}

func TestGuidedSearchMatchesExhaustiveOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oracle is slow")
	}
	ls, be := workload.Memcached(), workload.Swaptions()
	pred := predictorFor(t, ls, be)
	s := &Searcher{Spec: hw.DefaultSpec(), Pred: pred, Budget: budgetFor(ls)}
	qps := 0.3 * ls.PeakQPS
	guided, ok1 := s.BestConfig(qps)
	exhaust, ok2 := s.ExhaustiveBest(qps)
	if !ok1 || !ok2 {
		t.Fatalf("feasibility disagreement: guided %v exhaustive %v", ok1, ok2)
	}
	gt := pred.Throughput(guided.BE)
	et := pred.Throughput(exhaust.BE)
	// The guided search restricts itself to just-enough candidates; it
	// must reach at least 90 % of the oracle's predicted throughput.
	if gt < 0.9*et {
		t.Errorf("guided %v (%.0f) far below exhaustive %v (%.0f)", guided, gt, exhaust, et)
	}
}

func TestBalancerHarvestReducesBEAndHelpsLS(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	b := &Balancer{Spec: hw.DefaultSpec(), Pred: pred, Budget: budgetFor(ls)}
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6},
		BE: hw.Alloc{Cores: 16, Freq: 1.6, LLCWays: 14},
	}
	qps := 0.2 * ls.PeakQPS
	next := b.Harvest(cfg, qps, false, false)
	if next == cfg {
		t.Fatal("harvest changed nothing")
	}
	if !b.Active() || !b.Harvested() {
		t.Error("balancer state not tracking the harvest")
	}
	// Something must have moved toward the LS side.
	gainedCores := next.LS.Cores > cfg.LS.Cores
	gainedWays := next.LS.LLCWays > cfg.LS.LLCWays
	gainedFreq := next.LS.Freq > cfg.LS.Freq
	beThrottled := next.BE.Freq < cfg.BE.Freq
	if !(gainedCores || gainedWays || gainedFreq || beThrottled) {
		t.Errorf("harvest moved nothing toward LS: %v -> %v", cfg, next)
	}
	if err := next.Validate(b.Spec); err != nil {
		t.Fatal(err)
	}

	// Revert must give part of it back and shrink granularity.
	gBefore := b.gCores + b.gWays + b.gFreq
	rev := b.Revert(next, qps)
	if rev == next {
		t.Error("revert changed nothing")
	}
	if got := b.gCores + b.gWays + b.gFreq; got >= gBefore {
		t.Errorf("granularity not reduced: %d -> %d", gBefore, got)
	}
	if b.Harvested() {
		t.Error("revert left harvested flag set")
	}
}

func TestBalancerPrefersCheapestResource(t *testing.T) {
	// raytrace is the most cache-sensitive BE application at low way
	// counts but nearly insensitive above ~10 ways, so harvesting half
	// the ways from a 14-way allocation should usually beat harvesting
	// half the cores.
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	b := &Balancer{Spec: hw.DefaultSpec(), Pred: pred, Budget: budgetFor(ls)}
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6},
		BE: hw.Alloc{Cores: 16, Freq: 1.6, LLCWays: 14},
	}
	next := b.Harvest(cfg, 0.2*ls.PeakQPS, false, false)
	if next.BE.Cores < cfg.BE.Cores-1 && next.BE.LLCWays == cfg.BE.LLCWays {
		// Core harvest of half the BE cores would cost raytrace far more
		// than the equivalent cache harvest; the preference-aware choice
		// should avoid it here.
		t.Errorf("balancer harvested %d cores over cheaper options: %v -> %v",
			cfg.BE.Cores-next.BE.Cores, cfg, next)
	}
}

func TestSturgeonControllerEndToEnd(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	budget := budgetFor(ls)
	spec := hw.DefaultSpec()

	node := sim.NewNode(ls, be, 77)
	ctrl := New(spec, pred, budget, Options{})
	if err := node.Apply(hw.SoloLS(spec)); err != nil {
		t.Fatal(err)
	}
	r := sim.Runner{
		Node: node, Ctrl: ctrl, Budget: budget,
		Trace:     workload.Triangle(0.2, 0.8, 400),
		DurationS: 400,
	}
	res := r.Run()
	if res.QoSRate < 0.95 {
		t.Errorf("QoS rate %v below the paper's 95%% bar", res.QoSRate)
	}
	if res.NormBEThroughput <= 0.1 {
		t.Errorf("normalized BE throughput %v implausibly low", res.NormBEThroughput)
	}
	// Interference can push single intervals over budget before the
	// balancer reacts, but Sturgeon must never sustain an overload long
	// enough to trip the breaker (the paper's §VII-B claim).
	if res.BreakerTrips != 0 {
		t.Errorf("breaker tripped %d times under Sturgeon", res.BreakerTrips)
	}
	if res.OverloadFrac > 0.10 {
		t.Errorf("overload fraction %v; Sturgeon should stay near budget", res.OverloadFrac)
	}
	if ctrl.Searches == 0 {
		t.Error("controller never searched")
	}
	if ctrl.BalancerSteps == 0 {
		t.Error("balancer never engaged despite interference")
	}
}

func TestSturgeonNoBalancerViolatesUnderInterference(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	budget := budgetFor(ls)
	spec := hw.DefaultSpec()

	run := func(disable bool, seed int64) sim.Result {
		node := sim.NewNode(ls, be, seed)
		// Stronger interference than default to make the contrast sharp.
		node.Interf.StartProb = 0.08
		node.Interf.SvcFactorHi = 1.9
		ctrl := New(spec, pred, budget, Options{DisableBalancer: disable})
		if err := node.Apply(hw.SoloLS(spec)); err != nil {
			t.Fatal(err)
		}
		r := sim.Runner{Node: node, Ctrl: ctrl, Budget: budget,
			Trace: workload.Triangle(0.2, 0.8, 300), DurationS: 300}
		return r.Run()
	}
	withB := run(false, 101)
	noB := run(true, 101)
	if noB.QoSRate >= withB.QoSRate {
		t.Errorf("balancer did not help: with %.4f vs without %.4f", withB.QoSRate, noB.QoSRate)
	}
	// Fig. 10's flip side: the balancer costs some BE throughput.
	if noB.NormBEThroughput < withB.NormBEThroughput {
		t.Errorf("NoB throughput %.4f below balanced %.4f; harvesting should cost throughput",
			noB.NormBEThroughput, withB.NormBEThroughput)
	}
}

func TestSturgeonHoldsWhenSlackInBand(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	ctrl := New(hw.DefaultSpec(), pred, budgetFor(ls), Options{})
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.4, LLCWays: 12},
	}
	obs := control.Observation{
		QPS: 12000, P95: 0.0085, Target: 0.010, // slack = 0.15 ∈ [α, β]
		Power: 90, Budget: 120, Config: cfg,
	}
	if got := ctrl.Decide(obs); got != cfg {
		t.Errorf("controller moved despite in-band slack: %v", got)
	}
	if ctrl.Searches != 0 {
		t.Error("controller searched despite in-band slack")
	}
}

func TestSturgeonNames(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := predictorFor(t, ls, be)
	if got := New(hw.DefaultSpec(), pred, 100, Options{}).Name(); got != "sturgeon" {
		t.Errorf("Name = %q", got)
	}
	if got := New(hw.DefaultSpec(), pred, 100, Options{DisableBalancer: true}).Name(); got != "sturgeon-nob" {
		t.Errorf("NoB Name = %q", got)
	}
}

func TestMoveHelpersRespectBounds(t *testing.T) {
	spec := hw.DefaultSpec()
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 1, Freq: 1.2, LLCWays: 1},
		BE: hw.Alloc{Cores: 19, Freq: 2.2, LLCWays: 19},
	}
	// Cannot take the last LS core/way.
	if _, n := moveCores(spec, cfg, -5); n != 0 {
		t.Errorf("moved %d cores out of a 1-core LS allocation", n)
	}
	if _, n := moveWays(spec, cfg, -5); n != 0 {
		t.Errorf("moved %d ways out of a 1-way LS allocation", n)
	}
	// Freq shift clamps at the grid.
	next, n := shiftFreqPair(spec, cfg, 100)
	if n != 10 {
		t.Errorf("freq shift amount = %d, want 10 (full span)", n)
	}
	if next.LS.Freq != spec.FreqMax || next.BE.Freq != spec.FreqMin {
		t.Errorf("full shift = %v", next)
	}
	if math.Abs(float64(next.LS.Freq-2.2)) > 1e-9 {
		t.Errorf("LS freq = %v", next.LS.Freq)
	}
	// Harvesting from a 1-core BE is refused.
	tiny := hw.Config{
		LS: hw.Alloc{Cores: 19, Freq: 2.2, LLCWays: 19},
		BE: hw.Alloc{Cores: 1, Freq: 1.2, LLCWays: 1},
	}
	if _, n := moveCores(spec, tiny, 3); n != 0 {
		t.Errorf("harvested %d cores from a 1-core BE", n)
	}
}
