package core

import (
	"reflect"
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/workload"
)

// gridOracle is a deterministic synthetic predictor: QoS feasibility and
// power are smooth monotone functions of the allocation, so the binary
// searches exercise their full range without the cost of model training.
type gridOracle struct {
	spec hw.Spec
}

func (o gridOracle) capacity(a hw.Alloc) float64 {
	return float64(a.Cores)*float64(a.Freq) + 0.35*float64(a.LLCWays)
}

func (o gridOracle) QoSOK(a hw.Alloc, qps float64) bool {
	// Peak load needs roughly the whole machine; scale linearly below.
	full := hw.Alloc{Cores: o.spec.Cores - 1, Freq: o.spec.FreqMax, LLCWays: o.spec.LLCWays - 1}
	return o.capacity(a) >= qps/20000*o.capacity(full)
}

func (o gridOracle) Throughput(a hw.Alloc) float64 {
	return o.capacity(a)
}

func (o gridOracle) PowerW(cfg hw.Config, qps float64) power.Watts {
	return power.Watts(40 + 2.2*o.capacity(cfg.LS) + 2.0*o.capacity(cfg.BE))
}

// TestCandidatesParallelMatchesSerial sweeps load levels and compares the
// serial §V-B sweep against the pooled one at several worker counts. The
// slices must be deeply equal — same candidates, same order, same early
// cutoff.
func TestCandidatesParallelMatchesSerial(t *testing.T) {
	spec := hw.DefaultSpec()
	ls := workload.Memcached()
	for _, budget := range []power.Watts{120, 160, 220} {
		serial := &Searcher{Spec: spec, Pred: gridOracle{spec}, Budget: budget}
		for _, frac := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 0.95} {
			qps := frac * ls.PeakQPS
			want := serial.Candidates(qps)
			for _, par := range []int{2, 4, 8} {
				pooled := &Searcher{Spec: spec, Pred: gridOracle{spec}, Budget: budget, Parallelism: par}
				got := pooled.Candidates(qps)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("budget %v load %.0f%% parallelism %d: pooled sweep diverged\nserial: %+v\npooled: %+v",
						budget, frac*100, par, want, got)
				}
			}
			wantCfg, wantOK := serial.BestConfig(qps)
			pooled := &Searcher{Spec: spec, Pred: gridOracle{spec}, Budget: budget, Parallelism: 4}
			if gotCfg, gotOK := pooled.BestConfig(qps); gotCfg != wantCfg || gotOK != wantOK {
				t.Fatalf("budget %v load %.0f%%: BestConfig diverged: serial (%v,%v) pooled (%v,%v)",
					budget, frac*100, wantCfg, wantOK, gotCfg, gotOK)
			}
		}
	}
}
