package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// chaosPredictor is an adversarial core.Predictor: its answers are
// deterministic pseudo-random nonsense. The search and balancer must
// never emit an invalid configuration no matter what the models say.
type chaosPredictor struct {
	seed int64
}

func (c *chaosPredictor) hash(vals ...float64) uint64 {
	h := uint64(c.seed)*0x9e3779b97f4a7c15 + 0x123456789
	for _, v := range vals {
		h ^= uint64(v*1000) + 0x9e3779b97f4a7c15 + h<<6 + h>>2
	}
	return h
}

func (c *chaosPredictor) QoSOK(a hw.Alloc, qps float64) bool {
	return c.hash(float64(a.Cores), float64(a.Freq), float64(a.LLCWays), qps)%3 != 0
}

func (c *chaosPredictor) Throughput(a hw.Alloc) float64 {
	return float64(c.hash(float64(a.Cores), float64(a.Freq), float64(a.LLCWays)) % 1000)
}

func (c *chaosPredictor) PowerW(cfg hw.Config, qps float64) power.Watts {
	return power.Watts(60 + c.hash(float64(cfg.LS.Cores), float64(cfg.BE.Cores), qps)%60)
}

func TestSearcherNeverEmitsInvalidConfigs(t *testing.T) {
	spec := hw.DefaultSpec()
	f := func(seed int64, loadFrac float64) bool {
		pred := &chaosPredictor{seed: seed}
		s := &Searcher{Spec: spec, Pred: pred, Budget: 100}
		qps := (0.05 + 0.9*absMod1(loadFrac)) * 60000
		for _, c := range s.Candidates(qps) {
			if c.Config.Validate(spec) != nil {
				return false
			}
			if c.Config.BE.Cores < 1 || c.Config.LS.Cores < 1 {
				return false
			}
		}
		cfg, _ := s.BestConfig(qps)
		return cfg.Validate(spec) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBalancerNeverEmitsInvalidConfigs(t *testing.T) {
	spec := hw.DefaultSpec()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		pred := &chaosPredictor{seed: int64(trial)}
		b := &Balancer{Spec: spec, Pred: pred, Budget: 100}
		c1 := 1 + rng.Intn(spec.Cores-1)
		l1 := 1 + rng.Intn(spec.LLCWays-1)
		cfg := hw.Config{
			LS: hw.Alloc{Cores: c1, Freq: spec.FreqAtLevel(rng.Intn(11)), LLCWays: l1},
			BE: hw.Alloc{Cores: spec.Cores - c1, Freq: spec.FreqAtLevel(rng.Intn(11)), LLCWays: spec.LLCWays - l1},
		}
		// A random walk of harvests, sheds and reverts.
		for step := 0; step < 20; step++ {
			var next hw.Config
			switch rng.Intn(3) {
			case 0:
				next = b.Harvest(cfg, 10000, rng.Intn(2) == 0, rng.Intn(2) == 0)
			case 1:
				next = b.ShedPower(cfg)
			default:
				next = b.Revert(cfg, 10000)
			}
			if err := next.Validate(spec); err != nil {
				t.Fatalf("trial %d step %d: invalid config %v (%v) from %v", trial, step, next, err, cfg)
			}
			if next.LS.Cores < 1 {
				t.Fatalf("trial %d: balancer starved the LS service: %v", trial, next)
			}
			cfg = next
		}
	}
}

func TestBalancerConservesOrParksResources(t *testing.T) {
	spec := hw.DefaultSpec()
	pred := &chaosPredictor{seed: 7}
	b := &Balancer{Spec: spec, Pred: pred, Budget: 100}
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}
	next := b.Harvest(cfg, 12000, false, false)
	// Harvests move resources, never create them.
	if next.LS.Cores+next.BE.Cores > spec.Cores {
		t.Errorf("cores created: %v", next)
	}
	if next.LS.LLCWays+next.BE.LLCWays > spec.LLCWays {
		t.Errorf("ways created: %v", next)
	}
}

func absMod1(x float64) float64 {
	if x < 0 {
		x = -x
	}
	x = x - float64(int(x))
	return x
}
