package core

import (
	"math"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/obs"
	"sturgeon/internal/power"
)

// Options configure a Sturgeon controller.
type Options struct {
	// Alpha and Beta are the slack bounds of Algorithm 1 (defaults 0.10
	// and 0.20): slack below Alpha threatens QoS, above Beta wastes
	// resources.
	Alpha, Beta float64
	// DisableBalancer produces the paper's Sturgeon-NoB ablation.
	DisableBalancer bool
	// FixedHarvestOrder disables the balancer's preference-awareness
	// (ablation: harvest cores first, always).
	FixedHarvestOrder bool
	// SearchHeadroom overrides the searcher's grid headroom: 0 keeps the
	// default (+1 step), negative disables it (ablation).
	SearchHeadroom int
	// LoadDelta is the relative load change (fraction of peak) that
	// triggers a fresh predictor search when slack is out of bounds
	// (default 0.01). Below it, a persisting violation is attributed to
	// unpredictable interference and handed to the balancer.
	LoadDelta float64
	// SearchParallelism fans the §V-B candidate sweep across a worker
	// pool (> 1 enables it; see Searcher.Parallelism). Leave at 0 when
	// the controller itself runs inside a parallel fleet step.
	SearchParallelism int
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.10
	}
	if o.Beta == 0 {
		o.Beta = 0.20
	}
	if o.LoadDelta == 0 {
		o.LoadDelta = 0.01
	}
	return o
}

// Sturgeon is the top-level runtime controller (Algorithm 1). Each 1 s
// interval it compares the measured latency slack against [Alpha, Beta];
// when out of bounds it either re-runs the predictor-guided configuration
// search (if the load moved) or, when the predictor's answer is already
// in force, lets the preference-aware balancer absorb the residual
// interference.
type Sturgeon struct {
	Spec   hw.Spec
	Pred   *models.Predictor
	Budget power.Watts
	Opt    Options

	searcher Searcher
	balancer Balancer

	searched      bool
	lastSearchQPS float64
	// Searches counts predictor-guided reconfigurations (for overhead
	// accounting, §VII-E).
	Searches int
	// BalancerSteps counts balancer interventions.
	BalancerSteps int

	// Observability (nil = uninstrumented; see SetObs). The residual
	// fields remember the prediction made for the last-installed search
	// answer so the next interval's measurement can be compared to it.
	obs          *obs.Sink
	searchCtr    *obs.Counter
	balanceCtr   *obs.Counter
	residualHist *obs.Histogram
	residCfg     hw.Config
	residPredW   float64
	residPending bool
}

// New builds a Sturgeon controller for one co-location pair.
func New(spec hw.Spec, pred *models.Predictor, budget power.Watts, opt Options) *Sturgeon {
	s := &Sturgeon{
		Spec:   spec,
		Pred:   pred,
		Budget: budget,
		Opt:    opt.withDefaults(),
	}
	s.searcher = Searcher{Spec: spec, Pred: pred, Budget: budget,
		HeadroomWays: s.Opt.SearchHeadroom, HeadroomFreq: s.Opt.SearchHeadroom,
		Parallelism: s.Opt.SearchParallelism}
	// The balancer checks harvests against the same guarded budget the
	// searcher uses, so a harvest never knowingly lands above the cap.
	s.balancer = Balancer{Spec: spec, Pred: pred, Budget: s.searcher.guardedBudget(),
		FixedOrder: s.Opt.FixedHarvestOrder}
	return s
}

// SetBudget implements control.CapSetter: re-grant the node's power
// budget at runtime. The searcher's memoized answers key on the guarded
// budget, so stale entries can never be served; the explicit drop just
// keeps the memo from carrying dead weight, and the search memo bit is
// cleared so the next interval re-searches under the new cap.
func (s *Sturgeon) SetBudget(w power.Watts) {
	if w == s.Budget {
		return
	}
	s.Budget = w
	s.searcher.Budget = w
	s.balancer.Budget = s.searcher.guardedBudget()
	s.searcher.InvalidateMemo()
	s.searched = false
}

// SetPredictor swaps in a (re)trained predictor and invalidates every
// cached search answer — required even when pred is the same pointer
// refit in place, because the memo cannot observe in-place model
// mutations.
func (s *Sturgeon) SetPredictor(pred *models.Predictor) {
	s.Pred = pred
	s.searcher.Pred = pred
	s.balancer.Pred = pred
	s.searcher.InvalidateMemo()
	s.searched = false
}

// Name identifies the controller variant.
func (s *Sturgeon) Name() string {
	if s.Opt.DisableBalancer {
		return "sturgeon-nob"
	}
	return "sturgeon"
}

// SetObs implements obs.Instrumentable: install a decision-trail sink
// (nil detaches). Counters and the residual histogram are resolved once
// here so Decide never touches the registry map on the hot path.
func (s *Sturgeon) SetObs(sink *obs.Sink) {
	s.obs = sink
	s.searchCtr = sink.Counter("sturgeon_searches_total")
	s.balanceCtr = sink.Counter("sturgeon_balancer_steps_total")
	s.residualHist = sink.Histogram("sturgeon_power_residual_watts",
		-8, -4, -2, -1, 0, 1, 2, 4, 8)
	s.residPending = false
}

// observeResidual compares the power the predictor promised for the
// last-installed search answer against the measurement that followed —
// the drift signal of DESIGN.md §11. It runs only while a sink is
// attached and only on the first interval the searched configuration is
// actually in force, so instrumentation never perturbs the decision
// sequence and costs nothing when disabled.
func (s *Sturgeon) observeResidual(ob control.Observation, slack float64) {
	if !s.residPending || ob.Config != s.residCfg {
		return
	}
	s.residPending = false
	resid := float64(ob.Power) - s.residPredW
	s.residualHist.Observe(resid)
	s.obs.Emit(obs.Event{T: ob.Time, Type: obs.EventResidual, Resource: "power", Value: resid})
	if slack < 0 {
		// The search installed this configuration believing it feasible;
		// the measured slack says otherwise. Journal the miss.
		s.obs.Emit(obs.Event{T: ob.Time, Type: obs.EventResidual, Resource: "latency", Value: slack})
	}
}

// Decide implements Algorithm 1 for one interval.
func (s *Sturgeon) Decide(ob control.Observation) hw.Config {
	slack := ob.Slack()
	// Shed slightly below the cap: RAPL-class meters carry ~1 W of read
	// noise, and a reading that hides a marginal overload for one
	// interval is enough to let a sustained excursion ride through.
	overload := float64(ob.Power) > 0.99*float64(s.Budget)

	if s.obs != nil {
		s.observeResidual(ob, slack)
	}

	inBand := slack >= s.Opt.Alpha && slack <= s.Opt.Beta
	if inBand && !overload {
		s.balancer.Reset()
		return ob.Config
	}

	// Out of band. A fresh load level warrants a predictor search; the
	// very first interval always does. While a balancing episode is
	// absorbing interference the bar is higher — the feedback loop owns
	// the configuration until the load has moved substantially, so a
	// re-search cannot keep re-installing an allocation the balancer
	// just proved insufficient.
	peak := s.Pred.LS.PeakQPS
	delta := s.Opt.LoadDelta
	if s.balancer.Active() {
		delta *= 5
	}
	loadMoved := !s.searched ||
		math.Abs(ob.QPS-s.lastSearchQPS) > delta*peak
	if loadMoved {
		first := !s.searched
		cfg, _ := s.searcher.BestConfig(ob.QPS)
		s.searched = true
		s.lastSearchQPS = ob.QPS
		s.Searches++
		s.searchCtr.Inc()
		// Never hand the LS service less capacity than the balancer
		// established at a comparable load: feedback evidence outranks
		// the offline model.
		if s.balancer.Active() && lsCapacity(cfg) < lsCapacity(ob.Config) {
			cfg = ob.Config
		} else {
			s.balancer.Reset()
		}
		if s.obs.Active() {
			reason := searchReason(first, slack, overload)
			s.obs.Emit(obs.Event{T: ob.Time, Type: obs.EventSearch, Reason: reason})
			s.obs.Span(obs.Span{Kind: obs.SpanSearch, Reason: reason,
				Start: ob.Time, End: ob.Time, Value: float64(s.Searches)})
			// Remember what the predictor promised for the installed
			// configuration so the next measured interval can score it.
			s.residCfg = cfg
			s.residPredW = float64(s.Pred.PowerW(cfg, ob.QPS))
			s.residPending = true
		}
		return cfg
	}

	// The predictor already answered for this load; the residual is
	// interference (or its aftermath).
	if s.Opt.DisableBalancer {
		return ob.Config
	}
	return s.balance(ob, slack, overload)
}

// searchReason names what pushed Algorithm 1 into a re-search: the very
// first interval, or the band violation that co-occurred with the load
// move.
func searchReason(first bool, slack float64, overload bool) string {
	switch {
	case first:
		return "initial"
	case overload:
		return "overload"
	case slack < 0:
		return "qos_violation"
	default:
		return "load_moved"
	}
}

// lsCapacity scores an LS allocation in core·GHz, the controller's
// measure of "how much service capacity does this configuration grant".
func lsCapacity(cfg hw.Config) float64 {
	return float64(cfg.LS.Cores) * float64(cfg.LS.Freq)
}

// balance routes one interval to the Algorithm 2 feedback loop.
func (s *Sturgeon) balance(ob control.Observation, slack float64, overload bool) hw.Config {
	switch {
	case overload:
		s.BalancerSteps++
		s.balanceCtr.Inc()
		next := s.balancer.ShedPower(ob.Config)
		s.emitMove(ob, next, obs.EventHarvest, "overload")
		return next
	case slack < s.Opt.Alpha:
		s.BalancerSteps++
		s.balanceCtr.Inc()
		nearCap := ob.Power > s.searcher.guardedBudget()
		deep := slack < -0.5
		next := s.balancer.Harvest(ob.Config, ob.QPS, nearCap, deep)
		s.emitMove(ob, next, obs.EventHarvest, "slack_low")
		return next
	case slack > s.Opt.Beta && s.balancer.Active() && s.balancer.Harvested():
		// Latency suddenly very low after a harvest: give half back.
		s.BalancerSteps++
		s.balanceCtr.Inc()
		next := s.balancer.Revert(ob.Config, ob.QPS)
		s.emitMove(ob, next, obs.EventRevert, "slack_high")
		return next
	default:
		// Ample slack with nothing left to revert: the interference
		// episode is over. Drop the search memo so the predictor's
		// configuration is restored on the next interval — without this,
		// a constant-load service would stay on the harvested (BE-starved)
		// configuration forever.
		if s.balancer.Active() {
			s.searched = false
		}
		s.balancer.Reset()
		return ob.Config
	}
}

// emitMove journals one balancer move (harvest, shed or revert) with the
// resource and granularity the balancer recorded for its revert path. A
// move that changed nothing journals nothing.
func (s *Sturgeon) emitMove(ob control.Observation, next hw.Config, typ, reason string) {
	if !s.obs.Active() || next == ob.Config {
		return
	}
	s.obs.Emit(obs.Event{
		T:        ob.Time,
		Type:     typ,
		Reason:   reason,
		Resource: s.balancer.lastTarget.String(),
		Amount:   s.balancer.lastAmount,
	})
	s.obs.Span(obs.Span{Kind: obs.SpanHarvest, Reason: reason,
		Start: ob.Time, End: ob.Time, Value: float64(s.balancer.lastAmount)})
}
