package core

import (
	"math"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/power"
)

// Options configure a Sturgeon controller.
type Options struct {
	// Alpha and Beta are the slack bounds of Algorithm 1 (defaults 0.10
	// and 0.20): slack below Alpha threatens QoS, above Beta wastes
	// resources.
	Alpha, Beta float64
	// DisableBalancer produces the paper's Sturgeon-NoB ablation.
	DisableBalancer bool
	// FixedHarvestOrder disables the balancer's preference-awareness
	// (ablation: harvest cores first, always).
	FixedHarvestOrder bool
	// SearchHeadroom overrides the searcher's grid headroom: 0 keeps the
	// default (+1 step), negative disables it (ablation).
	SearchHeadroom int
	// LoadDelta is the relative load change (fraction of peak) that
	// triggers a fresh predictor search when slack is out of bounds
	// (default 0.01). Below it, a persisting violation is attributed to
	// unpredictable interference and handed to the balancer.
	LoadDelta float64
	// SearchParallelism fans the §V-B candidate sweep across a worker
	// pool (> 1 enables it; see Searcher.Parallelism). Leave at 0 when
	// the controller itself runs inside a parallel fleet step.
	SearchParallelism int
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.10
	}
	if o.Beta == 0 {
		o.Beta = 0.20
	}
	if o.LoadDelta == 0 {
		o.LoadDelta = 0.01
	}
	return o
}

// Sturgeon is the top-level runtime controller (Algorithm 1). Each 1 s
// interval it compares the measured latency slack against [Alpha, Beta];
// when out of bounds it either re-runs the predictor-guided configuration
// search (if the load moved) or, when the predictor's answer is already
// in force, lets the preference-aware balancer absorb the residual
// interference.
type Sturgeon struct {
	Spec   hw.Spec
	Pred   *models.Predictor
	Budget power.Watts
	Opt    Options

	searcher Searcher
	balancer Balancer

	searched      bool
	lastSearchQPS float64
	// Searches counts predictor-guided reconfigurations (for overhead
	// accounting, §VII-E).
	Searches int
	// BalancerSteps counts balancer interventions.
	BalancerSteps int
}

// New builds a Sturgeon controller for one co-location pair.
func New(spec hw.Spec, pred *models.Predictor, budget power.Watts, opt Options) *Sturgeon {
	s := &Sturgeon{
		Spec:   spec,
		Pred:   pred,
		Budget: budget,
		Opt:    opt.withDefaults(),
	}
	s.searcher = Searcher{Spec: spec, Pred: pred, Budget: budget,
		HeadroomWays: s.Opt.SearchHeadroom, HeadroomFreq: s.Opt.SearchHeadroom,
		Parallelism: s.Opt.SearchParallelism}
	// The balancer checks harvests against the same guarded budget the
	// searcher uses, so a harvest never knowingly lands above the cap.
	s.balancer = Balancer{Spec: spec, Pred: pred, Budget: s.searcher.guardedBudget(),
		FixedOrder: s.Opt.FixedHarvestOrder}
	return s
}

// Name identifies the controller variant.
func (s *Sturgeon) Name() string {
	if s.Opt.DisableBalancer {
		return "sturgeon-nob"
	}
	return "sturgeon"
}

// Decide implements Algorithm 1 for one interval.
func (s *Sturgeon) Decide(obs control.Observation) hw.Config {
	slack := obs.Slack()
	// Shed slightly below the cap: RAPL-class meters carry ~1 W of read
	// noise, and a reading that hides a marginal overload for one
	// interval is enough to let a sustained excursion ride through.
	overload := float64(obs.Power) > 0.99*float64(s.Budget)

	inBand := slack >= s.Opt.Alpha && slack <= s.Opt.Beta
	if inBand && !overload {
		s.balancer.Reset()
		return obs.Config
	}

	// Out of band. A fresh load level warrants a predictor search; the
	// very first interval always does. While a balancing episode is
	// absorbing interference the bar is higher — the feedback loop owns
	// the configuration until the load has moved substantially, so a
	// re-search cannot keep re-installing an allocation the balancer
	// just proved insufficient.
	peak := s.Pred.LS.PeakQPS
	delta := s.Opt.LoadDelta
	if s.balancer.Active() {
		delta *= 5
	}
	loadMoved := !s.searched ||
		math.Abs(obs.QPS-s.lastSearchQPS) > delta*peak
	if loadMoved {
		cfg, _ := s.searcher.BestConfig(obs.QPS)
		s.searched = true
		s.lastSearchQPS = obs.QPS
		s.Searches++
		// Never hand the LS service less capacity than the balancer
		// established at a comparable load: feedback evidence outranks
		// the offline model.
		if s.balancer.Active() && lsCapacity(cfg) < lsCapacity(obs.Config) {
			cfg = obs.Config
		} else {
			s.balancer.Reset()
		}
		return cfg
	}

	// The predictor already answered for this load; the residual is
	// interference (or its aftermath).
	if s.Opt.DisableBalancer {
		return obs.Config
	}
	return s.balance(obs, slack, overload)
}

// lsCapacity scores an LS allocation in core·GHz, the controller's
// measure of "how much service capacity does this configuration grant".
func lsCapacity(cfg hw.Config) float64 {
	return float64(cfg.LS.Cores) * float64(cfg.LS.Freq)
}

// balance routes one interval to the Algorithm 2 feedback loop.
func (s *Sturgeon) balance(obs control.Observation, slack float64, overload bool) hw.Config {
	switch {
	case overload:
		s.BalancerSteps++
		return s.balancer.ShedPower(obs.Config)
	case slack < s.Opt.Alpha:
		s.BalancerSteps++
		nearCap := obs.Power > s.searcher.guardedBudget()
		deep := slack < -0.5
		return s.balancer.Harvest(obs.Config, obs.QPS, nearCap, deep)
	case slack > s.Opt.Beta && s.balancer.Active() && s.balancer.Harvested():
		// Latency suddenly very low after a harvest: give half back.
		s.BalancerSteps++
		return s.balancer.Revert(obs.Config, obs.QPS)
	default:
		// Ample slack with nothing left to revert: the interference
		// episode is over. Drop the search memo so the predictor's
		// configuration is restored on the next interval — without this,
		// a constant-load service would stay on the harvested (BE-starved)
		// configuration forever.
		if s.balancer.Active() {
			s.searched = false
		}
		s.balancer.Reset()
		return obs.Config
	}
}
