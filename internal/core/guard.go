package core

import (
	"math"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/obs"
	"sturgeon/internal/power"
)

// Guarded hardens any controller against dirty telemetry and flaky
// actuators — the defensive layer the fault-injection battery exercises.
// It enforces three invariants on top of the wrapped policy:
//
//   - Missing observations hold the last-known-good configuration: a NaN
//     or non-positive latency sample together with an implausible power
//     reading means the controller is flying blind, and a blind
//     reconfiguration is strictly worse than inertia.
//   - A power reading below the modeled floor (FloorW) is impossible —
//     no powered-on server draws less than its platform idle — so it is
//     replaced by the last trusted reading rather than believed. This
//     keeps a dropped/stuck meter from reading as "massive power slack"
//     and triggering a harvest-everything overreaction.
//   - Failed actuation is retried boundedly: when the in-force
//     configuration shows a previous decision never took effect, the
//     decision is re-issued up to MaxRetries times before the guard
//     accepts reality and re-plans from the configuration that actually
//     stuck.
//
// The guard also clamps every emitted configuration to the hardware
// spec and never lets the LS service drop to zero cores, no matter what
// the wrapped policy answers.
type Guarded struct {
	Inner control.Controller
	Spec  hw.Spec
	// FloorW is the lowest believable power reading (default: 80 % of
	// the default platform idle).
	FloorW power.Watts
	// MaxRetries bounds actuation re-issues (default 2).
	MaxRetries int

	// Holds counts intervals the guard held the configuration because
	// telemetry was unusable; Substitutions counts repaired readings;
	// Retries counts re-issued actuations.
	Holds, Substitutions, Retries int

	lastGood control.Observation
	haveGood bool

	pending    hw.Config
	hasPending bool
	retries    int

	// Observability (nil = uninstrumented; see SetObs).
	obs      *obs.Sink
	holdCtr  *obs.Counter
	substCtr *obs.Counter
	retryCtr *obs.Counter
}

// Guard wraps inner with default floor and retry settings.
func Guard(inner control.Controller, spec hw.Spec) *Guarded {
	return &Guarded{
		Inner:  inner,
		Spec:   spec,
		FloorW: power.DefaultParams().IdleW * 0.8,
	}
}

// Name identifies the guarded variant in reports.
func (g *Guarded) Name() string { return g.Inner.Name() + "+guard" }

// SetObs implements obs.Instrumentable, forwarding the sink to the
// wrapped controller when it is instrumentable too.
func (g *Guarded) SetObs(sink *obs.Sink) {
	g.obs = sink
	g.holdCtr = sink.Counter("guard_holds_total")
	g.substCtr = sink.Counter("guard_substitutions_total")
	g.retryCtr = sink.Counter("guard_retries_total")
	if in, ok := g.Inner.(obs.Instrumentable); ok {
		in.SetObs(sink)
	}
}

func (g *Guarded) maxRetries() int {
	if g.MaxRetries <= 0 {
		return 2
	}
	return g.MaxRetries
}

// Decide sanitizes the observation, handles actuation retry, and routes
// the repaired telemetry to the wrapped controller.
func (g *Guarded) Decide(ob control.Observation) hw.Config {
	raw := ob

	latencyBad := math.IsNaN(ob.P95) || math.IsInf(ob.P95, 0) || ob.P95 < 0
	if latencyBad {
		if g.haveGood {
			ob.P95 = g.lastGood.P95
		} else {
			// No history: assume the target is exactly met, which makes
			// slack 0 — out of band on the cautious side.
			ob.P95 = ob.Target
		}
		g.Substitutions++
		g.substCtr.Inc()
	}

	qpsBad := math.IsNaN(ob.QPS) || math.IsInf(ob.QPS, 0) || ob.QPS < 0
	if qpsBad {
		if g.haveGood {
			ob.QPS = g.lastGood.QPS
		} else {
			ob.QPS = 0
		}
		g.Substitutions++
		g.substCtr.Inc()
	}

	powerBad := math.IsNaN(float64(ob.Power)) || math.IsInf(float64(ob.Power), 0) ||
		ob.Power <= 0 || (g.FloorW > 0 && ob.Power < g.FloorW)
	if powerBad {
		if g.haveGood {
			ob.Power = g.lastGood.Power
		} else {
			ob.Power = g.FloorW
		}
		g.Substitutions++
		g.substCtr.Inc()
	}

	// Actuation audit: if the last decision never landed, re-issue it a
	// bounded number of times before replanning from reality.
	if g.hasPending {
		switch {
		case ob.Config == g.pending:
			g.hasPending, g.retries = false, 0
		case g.retries < g.maxRetries():
			g.retries++
			g.Retries++
			g.retryCtr.Inc()
			return g.pending
		default:
			g.hasPending, g.retries = false, 0
		}
	}

	if latencyBad && powerBad {
		// Both control signals are garbage: hold last-known-good.
		g.Holds++
		g.holdCtr.Inc()
		if g.obs.Active() {
			g.obs.Emit(obs.Event{T: ob.Time, Type: obs.EventGuardHold, Reason: "blind_telemetry"})
		}
		return ob.Config
	}

	out := g.clamp(g.Inner.Decide(ob), ob.Config)
	if out != ob.Config {
		g.pending, g.hasPending, g.retries = out, true, 0
	}
	if !latencyBad && !qpsBad && !powerBad {
		g.lastGood, g.haveGood = raw, true
	}
	return out
}

// clamp snaps cfg onto the spec grid and falls back to the in-force
// configuration when the result is invalid or starves the LS service.
func (g *Guarded) clamp(cfg, fallback hw.Config) hw.Config {
	cfg.LS.Freq = g.Spec.ClampFreq(cfg.LS.Freq)
	cfg.BE.Freq = g.Spec.ClampFreq(cfg.BE.Freq)
	if cfg.LS.Cores < 1 || cfg.Validate(g.Spec) != nil {
		return fallback
	}
	return cfg
}
