package core

import (
	"reflect"
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// countingOracle wraps gridOracle with query counters, so tests can
// prove a memoized answer touched no model at all.
type countingOracle struct {
	gridOracle
	calls int
}

func (c *countingOracle) QoSOK(a hw.Alloc, qps float64) bool {
	c.calls++
	return c.gridOracle.QoSOK(a, qps)
}

func (c *countingOracle) Throughput(a hw.Alloc) float64 {
	c.calls++
	return c.gridOracle.Throughput(a)
}

func (c *countingOracle) PowerW(cfg hw.Config, qps float64) power.Watts {
	c.calls++
	return c.gridOracle.PowerW(cfg, qps)
}

func TestSearchMemoHitAndInvalidation(t *testing.T) {
	spec := hw.DefaultSpec()
	pred := &countingOracle{gridOracle: gridOracle{spec}}
	s := &Searcher{Spec: spec, Pred: pred, Budget: 160}
	const qps = 30000.0

	cfg1, ok1 := s.BestConfig(qps)
	missCalls := pred.calls
	if missCalls == 0 {
		t.Fatal("first search made no predictor queries")
	}

	cfg2, ok2 := s.BestConfig(qps)
	if pred.calls != missCalls {
		t.Fatalf("memo hit queried the predictor: %d -> %d calls", missCalls, pred.calls)
	}
	if cfg2 != cfg1 || ok2 != ok1 {
		t.Fatalf("memoized answer diverged: (%v,%v) vs (%v,%v)", cfg2, ok2, cfg1, ok1)
	}

	// A budget change is a different key: the stale answer must not be
	// served even without explicit invalidation.
	s.Budget = 120
	if _, _ = s.BestConfig(qps); pred.calls == missCalls {
		t.Fatal("budget change served a stale memoized answer")
	}
	s.Budget = 160
	before := pred.calls
	if _, _ = s.BestConfig(qps); pred.calls != before {
		t.Fatal("restored budget should hit the original memo entry")
	}

	// Explicit invalidation (the in-place model refit contract).
	s.InvalidateMemo()
	if _, _ = s.BestConfig(qps); pred.calls == before {
		t.Fatal("InvalidateMemo did not force a re-search")
	}

	// Swapping the predictor value re-keys without any explicit call.
	other := &countingOracle{gridOracle: gridOracle{spec}}
	s.Pred = other
	if _, _ = s.BestConfig(qps); other.calls == 0 {
		t.Fatal("new predictor never queried after swap")
	}
}

// TestSearchMemoBounded pins the overflow reset.
func TestSearchMemoBounded(t *testing.T) {
	spec := hw.DefaultSpec()
	s := &Searcher{Spec: spec, Pred: gridOracle{spec}, Budget: 160}
	s.memo = make(map[searchKey]searchVal)
	for i := 0; i < searchMemoMax; i++ {
		s.memo[searchKey{qps: uint64(i)}] = searchVal{}
	}
	s.BestConfig(30000)
	if len(s.memo) > 1 {
		t.Fatalf("memo not reset at cap: %d entries", len(s.memo))
	}
}

// TestCandidatesIntoReuse pins that buffer reuse returns the same
// candidates as a fresh enumeration.
func TestCandidatesIntoReuse(t *testing.T) {
	spec := hw.DefaultSpec()
	s := &Searcher{Spec: spec, Pred: gridOracle{spec}, Budget: 160}
	var buf []Candidate
	for _, qps := range []float64{5000, 20000, 35000, 52000} {
		buf = s.CandidatesInto(qps, buf[:0])
		want := s.Candidates(qps)
		if len(buf) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(buf, want) {
			t.Fatalf("qps %v: reused buffer diverged\nreuse: %+v\nfresh: %+v", qps, buf, want)
		}
	}
}

func TestSturgeonSetBudgetPropagates(t *testing.T) {
	spec := hw.DefaultSpec()
	s := New(spec, nil, 160, Options{})
	s.searched = true
	s.SetBudget(120)
	if s.Budget != 120 || s.searcher.Budget != 120 {
		t.Fatalf("budget not propagated: controller %v searcher %v", s.Budget, s.searcher.Budget)
	}
	if s.balancer.Budget != s.searcher.guardedBudget() {
		t.Fatalf("balancer budget %v != guarded %v", s.balancer.Budget, s.searcher.guardedBudget())
	}
	if s.searched {
		t.Fatal("SetBudget must force a fresh search")
	}
}

func BenchmarkSearcherBestConfig(b *testing.B) {
	spec := hw.DefaultSpec()
	s := &Searcher{Spec: spec, Pred: gridOracle{spec}, Budget: 160}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh load level every iteration: measures the full search,
		// not the memo.
		s.BestConfig(10000 + float64(i%40000))
	}
}

func BenchmarkSearcherBestConfigMemoHit(b *testing.B) {
	spec := hw.DefaultSpec()
	s := &Searcher{Spec: spec, Pred: gridOracle{spec}, Budget: 160}
	s.BestConfig(30000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.BestConfig(30000)
	}
}
