package core

import (
	"math"
	"math/rand"
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/power"
	"sturgeon/internal/workload"
)

// dirtyStream generates adversarial observation telemetry: NaN/zero QPS,
// power spikes and dropouts, frozen or missing p95 — the observation-side
// fault model of the chaos battery.
func dirtyStream(rng *rand.Rand, n int, spec hw.Spec, start hw.Config) []control.Observation {
	obs := make([]control.Observation, n)
	cfg := start
	frozenP95 := 0.004
	for i := range obs {
		o := control.Observation{
			Time:   float64(i + 1),
			QPS:    rng.Float64() * 60000,
			P95:    0.001 + rng.Float64()*0.01,
			Target: 0.005,
			Power:  power.Watts(60 + rng.Float64()*60),
			Budget: 100,
			Config: cfg,
		}
		switch rng.Intn(8) {
		case 0:
			o.QPS = math.NaN()
		case 1:
			o.QPS = 0
		case 2:
			o.P95 = math.NaN()
		case 3:
			o.P95 = frozenP95 // frozen exporter
		case 4:
			o.Power = 0 // dropped RAPL read
		case 5:
			o.Power = power.Watts(rng.Float64() * 10000) // absurd spike
		case 6:
			o.Power = power.Watts(math.Inf(1))
		}
		obs[i] = o
	}
	return obs
}

// TestGuardedControllerSurvivesDirtyTelemetry is the controller-side
// chaos property: against arbitrary fault-injected observation streams
// the guarded Sturgeon controller must never emit a configuration
// outside hw.Spec bounds and never drop the LS service to zero cores.
func TestGuardedControllerSurvivesDirtyTelemetry(t *testing.T) {
	spec := hw.DefaultSpec()
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 1237))
		pred := &chaosPredictor{seed: int64(trial)}
		inner := &Sturgeon{
			Spec:   spec,
			Pred:   &models.Predictor{LS: workload.Memcached()},
			Budget: 100,
			Opt:    Options{}.withDefaults(),
		}
		inner.searcher = Searcher{Spec: spec, Pred: pred, Budget: 100}
		inner.balancer = Balancer{Spec: spec, Pred: pred, Budget: inner.searcher.guardedBudget()}
		g := Guard(inner, spec)

		cfg := hw.Config{
			LS: hw.Alloc{Cores: 10, Freq: 2.0, LLCWays: 10},
			BE: hw.Alloc{Cores: 10, Freq: 1.8, LLCWays: 10},
		}
		for i, o := range dirtyStream(rng, 300, spec, cfg) {
			o.Config = cfg
			next := g.Decide(o)
			if err := next.Validate(spec); err != nil {
				t.Fatalf("trial %d step %d: invalid config %v: %v", trial, i, next, err)
			}
			if next.LS.Cores < 1 {
				t.Fatalf("trial %d step %d: LS starved to zero cores: %v", trial, i, next)
			}
			cfg = next // assume actuation succeeds
		}
	}
}

func TestGuardHoldsWhenBlind(t *testing.T) {
	spec := hw.DefaultSpec()
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.6, LLCWays: 12},
	}
	// Inner always demands SoloLS; the guard must refuse to follow it
	// while both control signals are garbage.
	g := Guard(control.Static{Cfg: hw.SoloLS(spec)}, spec)
	blind := control.Observation{
		Time: 1, QPS: 1000, P95: math.NaN(), Target: 0.005,
		Power: 0, Budget: 100, Config: cfg,
	}
	if got := g.Decide(blind); got != cfg {
		t.Fatalf("blind interval reconfigured: %v", got)
	}
	if g.Holds != 1 {
		t.Fatalf("Holds = %d, want 1", g.Holds)
	}
}

func TestGuardBoundedActuationRetry(t *testing.T) {
	spec := hw.DefaultSpec()
	cur := hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.6, LLCWays: 12},
	}
	want := hw.Config{
		LS: hw.Alloc{Cores: 10, Freq: 2.2, LLCWays: 10},
		BE: hw.Alloc{Cores: 10, Freq: 1.8, LLCWays: 10},
	}
	g := Guard(control.Static{Cfg: want}, spec)
	g.MaxRetries = 2
	obs := control.Observation{
		Time: 1, QPS: 1000, P95: 0.004, Target: 0.005,
		Power: 80, Budget: 100, Config: cur,
	}
	if got := g.Decide(obs); got != want {
		t.Fatalf("first decision %v, want %v", got, want)
	}
	// The write keeps failing: obs.Config stays at cur. The guard
	// re-issues exactly MaxRetries times, then accepts reality.
	for i := 0; i < g.MaxRetries; i++ {
		if got := g.Decide(obs); got != want {
			t.Fatalf("retry %d: got %v, want re-issued %v", i, got, want)
		}
	}
	if g.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", g.Retries)
	}
	// Retries exhausted: the guard replans from the in-force config (the
	// static inner still answers `want`, which restarts a fresh pending
	// cycle — what matters is the retry counter is bounded per decision).
	_ = g.Decide(obs)
	if g.Retries != 2 {
		t.Fatalf("retry budget not bounded: %d", g.Retries)
	}
}

func TestGuardActuationSuccessClearsPending(t *testing.T) {
	spec := hw.DefaultSpec()
	cur := hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.6, LLCWays: 12},
	}
	want := hw.Config{
		LS: hw.Alloc{Cores: 10, Freq: 2.2, LLCWays: 10},
		BE: hw.Alloc{Cores: 10, Freq: 1.8, LLCWays: 10},
	}
	g := Guard(control.Static{Cfg: want}, spec)
	obs := control.Observation{
		Time: 1, QPS: 1000, P95: 0.004, Target: 0.005,
		Power: 80, Budget: 100, Config: cur,
	}
	_ = g.Decide(obs)
	obs.Config = want // the write landed
	if got := g.Decide(obs); got != want {
		t.Fatalf("steady state moved: %v", got)
	}
	if g.Retries != 0 {
		t.Fatalf("spurious retries: %d", g.Retries)
	}
}

func TestGuardPowerFloorSubstitution(t *testing.T) {
	spec := hw.DefaultSpec()
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 8},
		BE: hw.Alloc{Cores: 12, Freq: 1.6, LLCWays: 12},
	}
	// recorder captures what the inner controller is shown.
	var seen []power.Watts
	rec := recorderCtrl{seen: &seen}
	g := Guard(rec, spec)

	good := control.Observation{
		Time: 1, QPS: 1000, P95: 0.004, Target: 0.005,
		Power: 85, Budget: 100, Config: cfg,
	}
	_ = g.Decide(good)
	bad := good
	bad.Time = 2
	bad.Power = 3 // far below any powered-on server's floor
	_ = g.Decide(bad)
	if len(seen) != 2 {
		t.Fatalf("inner saw %d observations", len(seen))
	}
	if seen[1] != 85 {
		t.Fatalf("impossible reading passed through: inner saw %v, want last-good 85", seen[1])
	}
	if g.Substitutions == 0 {
		t.Fatal("substitution not counted")
	}
}

type recorderCtrl struct{ seen *[]power.Watts }

func (recorderCtrl) Name() string { return "recorder" }
func (r recorderCtrl) Decide(o control.Observation) hw.Config {
	*r.seen = append(*r.seen, o.Power)
	return o.Config
}
