// Package core implements the paper's primary contribution: the Sturgeon
// runtime. It contains the §V-B binary-search configuration finder that
// locates the feasible configuration maximizing best-effort throughput
// under QoS and power constraints, the §VI preference-aware resource
// balancer (Algorithm 2) that absorbs predictor-invisible interference,
// and the Algorithm 1 top-level controller tying them together on a 1 s
// decision interval.
package core

import (
	"math"
	"reflect"

	"sturgeon/internal/hw"
	"sturgeon/internal/pool"
	"sturgeon/internal/power"
)

// Predictor is the prediction surface the configuration search and the
// balancer consume: QoS feasibility of an LS allocation, BE throughput of
// an allocation, and total node power of a configuration. The production
// implementation is models.Predictor; tests and offline analyses can
// substitute a ground-truth oracle.
type Predictor interface {
	QoSOK(a hw.Alloc, qps float64) bool
	Throughput(a hw.Alloc) float64
	PowerW(cfg hw.Config, qps float64) power.Watts
}

// BatchPredictor is the optional batched fast path of a Predictor:
// ThroughputBatch scores a whole candidate frontier in one call,
// appending one value per allocation to dst. Results must equal
// point-wise Throughput bit for bit; models.Predictor implements it on
// top of mlkit's batched regressors.
type BatchPredictor interface {
	Predictor
	ThroughputBatch(allocs []hw.Alloc, dst []float64) []float64
}

// Searcher finds the feasible configuration with maximum predicted BE
// throughput (§V-B). Instead of scanning the O(N⁴) configuration space it
// exploits performance monotonicity: binary-search the just-enough LS
// resources, then sweep LS core counts upward — trading BE cores for BE
// frequency headroom — and keep the candidate the predictor scores best.
type Searcher struct {
	Spec   hw.Spec
	Pred   Predictor
	Budget power.Watts

	// HeadroomWays and HeadroomFreq grant the LS service one extra grid
	// step beyond the classifier's just-enough answer (defaults 1). The
	// feasibility boundary is where a learned classifier is least
	// reliable, and the queueing cliff behind it is steep; one step of
	// headroom keeps the operating point off the cliff. Negative values
	// disable the headroom (for ablation).
	HeadroomWays int
	HeadroomFreq int
	// PowerGuardFrac shrinks the budget used during the BE-frequency
	// search (default 0.03), mirroring the paper's conservative
	// peak-power modelling: predicted power must stay a guard band below
	// the cap so that model error cannot tip the node over it.
	PowerGuardFrac float64
	// Parallelism fans the per-core-count candidate evaluations of the
	// §V-B sweep across a worker pool (the per-c1 rows only read the
	// predictor, so they are independent). ≤ 1 — the default — keeps the
	// serial sweep with its early exit; > 1 evaluates every row
	// speculatively and merges in c1 order, reproducing the serial
	// result bit-for-bit at the cost of the rows past the cutoff. The
	// Predictor must be safe for concurrent reads (models.Predictor is).
	// The default stays serial because controllers usually run inside
	// the cluster pool's fan-out, where nesting would oversubscribe.
	Parallelism int

	// Search memoization (BestConfig): the answer is a pure function of
	// (load, guarded budget, predictor), so repeated loads — diurnal
	// staircases revisit the same treads all day — are served from a
	// bounded map without touching the models. The predictor is part of
	// the key, so swapping in a retrained model invalidates naturally;
	// refitting a model in place must call InvalidateMemo.
	memo map[searchKey]searchVal

	// Caller-owned scratch reused across BestConfig calls (the searcher
	// is per-controller and stepped serially, like the node it serves).
	candScratch []Candidate
	beAllocs    []hw.Alloc
	beScores    []float64
}

// searchKey fingerprints one BestConfig question exactly: the load and
// guarded budget by their float bits, the predictor by identity. A
// distinct load level is a distinct bucket — exactness is what keeps the
// memoized answer bit-identical to a fresh search.
type searchKey struct {
	pred   Predictor
	qps    uint64
	budget uint64
}

type searchVal struct {
	cfg hw.Config
	ok  bool
}

// searchMemoMax bounds the memo; the map resets when full (a fleet
// scenario revisits far fewer distinct load levels).
const searchMemoMax = 4096

// InvalidateMemo drops every memoized search answer. Call it after
// refitting a model the searcher's predictor serves in place; replacing
// the Pred value itself needs no invalidation (it participates in the
// memo key).
func (s *Searcher) InvalidateMemo() {
	clear(s.memo)
}

func (s *Searcher) headroomWays() int {
	if s.HeadroomWays == 0 {
		return 1
	}
	if s.HeadroomWays < 0 {
		return 0
	}
	return s.HeadroomWays
}

func (s *Searcher) headroomFreq() int {
	if s.HeadroomFreq == 0 {
		return 1
	}
	if s.HeadroomFreq < 0 {
		return 0
	}
	return s.HeadroomFreq
}

func (s *Searcher) guardedBudget() power.Watts {
	g := s.PowerGuardFrac
	if g <= 0 {
		g = 0.03
	}
	return s.Budget * power.Watts(1-g)
}

// Candidate is one just-enough configuration considered by the search.
type Candidate struct {
	Config hw.Config
	// Throughput is the predicted BE progress under Config.
	Throughput float64
}

// BestConfig returns the highest-throughput feasible configuration for
// the given load, and false when no co-location is feasible (the LS
// service then receives every resource). Answers are memoized per
// (load, guarded budget, predictor); see InvalidateMemo.
func (s *Searcher) BestConfig(qps float64) (hw.Config, bool) {
	key, memoOK := s.memoKey(qps)
	if memoOK {
		if v, hit := s.memo[key]; hit {
			return v.cfg, v.ok
		}
	}
	s.candScratch = s.CandidatesInto(qps, s.candScratch[:0])
	cands := s.candScratch
	v := searchVal{cfg: hw.SoloLS(s.Spec)}
	if len(cands) > 0 {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.Throughput > best.Throughput {
				best = c
			}
		}
		v = searchVal{cfg: best.Config, ok: true}
	}
	if memoOK {
		if s.memo == nil {
			s.memo = make(map[searchKey]searchVal)
		} else if len(s.memo) >= searchMemoMax {
			clear(s.memo)
		}
		s.memo[key] = v
	}
	return v.cfg, v.ok
}

// memoKey builds the memo key; memoization is skipped for predictors
// whose dynamic type is not comparable (they cannot be map keys).
func (s *Searcher) memoKey(qps float64) (searchKey, bool) {
	if s.Pred == nil || !reflect.TypeOf(s.Pred).Comparable() {
		return searchKey{}, false
	}
	return searchKey{
		pred:   s.Pred,
		qps:    math.Float64bits(qps),
		budget: math.Float64bits(float64(s.guardedBudget())),
	}, true
}

// candidateRow is the outcome of enumerating one LS core count: its
// frontier entries plus whether the sweep may stop once any candidate
// exists (every BE frequency already at maximum).
type candidateRow struct {
	cands []Candidate
	stop  bool
}

// candidatesAt enumerates the §V-B frontier at a fixed LS core count,
// appending candidates — throughput still unscored — to dst. The
// early-stop verdict depends only on the BE frequency levels, so
// deferring the throughput scores to one batched evaluation changes
// neither the candidate set nor the cutoff. It only reads s and the
// predictor, so rows for different core counts can be evaluated
// concurrently.
func (s *Searcher) candidatesAt(qps float64, c1, maxLvl int, dst []Candidate) ([]Candidate, bool) {
	stop := true
	for _, ls := range s.justEnough(qps, c1) {
		f2lvl, ok := s.maxBEFreqLevel(ls, qps)
		if !ok {
			// Even the lowest BE frequency overloads the budget with
			// this LS allocation.
			continue
		}
		cfg := hw.Complement(s.Spec, ls, s.Spec.FreqAtLevel(f2lvl))
		dst = append(dst, Candidate{Config: cfg})
		if f2lvl < maxLvl {
			stop = false
		}
	}
	return dst, stop
}

// Candidates enumerates the just-enough candidates of the §V-B sweep in
// increasing LS-core order. It stops once the BE application reaches
// maximum frequency — granting the LS service further cores past that
// point can only shrink the BE allocation without any frequency gain.
// With Parallelism > 1 the per-core-count rows are evaluated on a worker
// pool and merged in c1 order, so the cutoff — and the returned slice —
// are identical to the serial sweep's.
func (s *Searcher) Candidates(qps float64) []Candidate {
	return s.CandidatesInto(qps, nil)
}

// CandidatesInto is Candidates appending into a caller-owned slice
// (pass dst[:0] to reuse its storage): the frontier is enumerated
// first, then every candidate's BE throughput is scored in one batched
// predictor call.
func (s *Searcher) CandidatesInto(qps float64, dst []Candidate) []Candidate {
	spec := s.Spec
	maxLvl := spec.NumFreqLevels() - 1

	c1min := s.minCores(qps)
	if c1min < 0 {
		return dst
	}
	out := dst
	if s.Parallelism > 1 {
		rows := pool.Map(s.Parallelism, spec.Cores-c1min, func(j int) candidateRow {
			cands, stop := s.candidatesAt(qps, c1min+j, maxLvl, nil)
			return candidateRow{cands: cands, stop: stop}
		})
		for _, row := range rows {
			out = append(out, row.cands...)
			if len(out) > 0 && row.stop {
				break
			}
		}
		return s.scoreFrontier(out)
	}
	for c1 := c1min; c1 < spec.Cores; c1++ {
		var stop bool
		out, stop = s.candidatesAt(qps, c1, maxLvl, out)
		if len(out) > 0 && stop {
			break
		}
	}
	return s.scoreFrontier(out)
}

// scoreFrontier fills in the Throughput of every enumerated candidate
// with one batched evaluation, reusing the searcher's scratch buffers.
func (s *Searcher) scoreFrontier(cands []Candidate) []Candidate {
	if len(cands) == 0 {
		return cands
	}
	s.beAllocs = s.beAllocs[:0]
	for i := range cands {
		s.beAllocs = append(s.beAllocs, cands[i].Config.BE)
	}
	if b, ok := s.Pred.(BatchPredictor); ok {
		s.beScores = b.ThroughputBatch(s.beAllocs, s.beScores[:0])
	} else {
		s.beScores = s.beScores[:0]
		for _, a := range s.beAllocs {
			s.beScores = append(s.beScores, s.Pred.Throughput(a))
		}
	}
	for i := range cands {
		cands[i].Throughput = s.beScores[i]
	}
	return cands
}

// justEnough returns up to two just-enough LS allocations at a fixed core
// count, exploring both corners of the frequency/ways trade-off frontier:
//
//   - ways-lean: minimum ways at maximum frequency, then minimum frequency
//     at those ways — leaves the most LLC to the BE application;
//   - power-lean: minimum frequency with generous ways, then minimum ways
//     at that frequency — LLC ways cost almost no power, so a slower,
//     cache-rich LS allocation frees the most power budget for BE
//     frequency.
//
// Which corner wins depends on the BE application's cache and frequency
// preferences; both become candidates and the predictor arbitrates.
func (s *Searcher) justEnough(qps float64, c1 int) []hw.Alloc {
	spec := s.Spec
	maxLvl := spec.NumFreqLevels() - 1
	var out []hw.Alloc

	// Ways-lean corner.
	if l1 := s.minWays(qps, c1, maxLvl); l1 >= 0 {
		l1 = min(l1+s.headroomWays(), spec.LLCWays-1)
		if f1 := s.minFreqLevel(qps, c1, l1); f1 >= 0 {
			f1 = min(f1+s.headroomFreq(), maxLvl)
			out = append(out, hw.Alloc{Cores: c1, Freq: spec.FreqAtLevel(f1), LLCWays: l1})
		}
	}
	// Power-lean corner.
	if f1 := s.minFreqLevel(qps, c1, spec.LLCWays-1); f1 >= 0 {
		f1 = min(f1+s.headroomFreq(), maxLvl)
		if l1 := s.minWays(qps, c1, f1); l1 >= 0 {
			l1 = min(l1+s.headroomWays(), spec.LLCWays-1)
			alt := hw.Alloc{Cores: c1, Freq: spec.FreqAtLevel(f1), LLCWays: l1}
			if len(out) == 0 || out[0] != alt {
				out = append(out, alt)
			}
		}
	}
	return out
}

// minCores binary-searches the minimum LS core count that meets QoS with
// maximum frequency and all LLC ways; -1 when none does.
func (s *Searcher) minCores(qps float64) int {
	spec := s.Spec
	ok := func(c int) bool {
		return s.Pred.QoSOK(hw.Alloc{Cores: c, Freq: spec.FreqMax, LLCWays: spec.LLCWays}, qps)
	}
	// Keep at least one core for the BE application.
	if !ok(spec.Cores - 1) {
		return -1
	}
	lo, hi := 1, spec.Cores-1 // invariant: ok(hi)
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// minWays binary-searches the minimum LLC ways meeting QoS at c1 cores
// and the given frequency level; -1 when even all-but-one way fails.
func (s *Searcher) minWays(qps float64, c1, flvl int) int {
	spec := s.Spec
	f := spec.FreqAtLevel(flvl)
	ok := func(l int) bool {
		return s.Pred.QoSOK(hw.Alloc{Cores: c1, Freq: f, LLCWays: l}, qps)
	}
	if !ok(spec.LLCWays - 1) {
		return -1
	}
	lo, hi := 1, spec.LLCWays-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// minFreqLevel binary-searches the minimum DVFS level meeting QoS at the
// given cores and ways; -1 when even the maximum level fails.
func (s *Searcher) minFreqLevel(qps float64, c1, l1 int) int {
	spec := s.Spec
	ok := func(lvl int) bool {
		return s.Pred.QoSOK(hw.Alloc{Cores: c1, Freq: spec.FreqAtLevel(lvl), LLCWays: l1}, qps)
	}
	maxLvl := spec.NumFreqLevels() - 1
	if !ok(maxLvl) {
		return -1
	}
	lo, hi := 0, maxLvl
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// maxBEFreqLevel binary-searches the highest BE DVFS level that keeps the
// predicted node power within budget for the complement of ls.
func (s *Searcher) maxBEFreqLevel(ls hw.Alloc, qps float64) (int, bool) {
	spec := s.Spec
	budget := s.guardedBudget()
	fits := func(lvl int) bool {
		cfg := hw.Complement(spec, ls, spec.FreqAtLevel(lvl))
		return s.Pred.PowerW(cfg, qps) <= budget
	}
	if !fits(0) {
		return 0, false
	}
	lo, hi := 0, spec.NumFreqLevels()-1 // invariant: fits(lo)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, true
}

// ExhaustiveBest scans the entire configuration space — the O(N⁴)
// baseline of §VII-E, kept for the overhead comparison and as a test
// oracle for the guided search.
func (s *Searcher) ExhaustiveBest(qps float64) (hw.Config, bool) {
	best := hw.SoloLS(s.Spec)
	bestT := -1.0
	hw.EnumerateConfigs(s.Spec, func(cfg hw.Config) bool {
		if !s.Pred.QoSOK(cfg.LS, qps) {
			return true
		}
		if s.Pred.PowerW(cfg, qps) > s.Budget {
			return true
		}
		if t := s.Pred.Throughput(cfg.BE); t > bestT {
			bestT = t
			best = cfg
		}
		return true
	})
	return best, bestT >= 0
}
