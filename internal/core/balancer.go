package core

import (
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// harvestTarget names the three resources of Fig. 8 the balancer can
// harvest from the BE application.
type harvestTarget int

const (
	harvestCores harvestTarget = iota
	harvestCache
	harvestPower  // shift DVFS headroom: BE frequency down, LS frequency up
	harvestParked // park BE cores entirely (power-shed escalation)
)

func (h harvestTarget) String() string {
	switch h {
	case harvestCores:
		return "cores"
	case harvestCache:
		return "cache"
	case harvestParked:
		return "parked"
	default:
		return "power"
	}
}

// Balancer implements Algorithm 2: the preference-aware feedback loop
// that harvests just-enough resources from the BE application when the LS
// service suffers predictor-invisible interference, choosing whichever
// resource the predictor says costs the least BE throughput, with
// binary-halving granularity and a revert path for over-harvest.
type Balancer struct {
	Spec   hw.Spec
	Pred   Predictor
	Budget power.Watts
	// FixedOrder disables preference-awareness: harvests always take
	// cores first, then cache, then power — the ablation of DESIGN.md §5.
	FixedOrder bool

	active bool
	// Per-resource granularity, halved on over-harvest (Alg. 2 line 14).
	gCores, gWays, gFreq int
	// shedStreak escalates consecutive power sheds geometrically.
	shedStreak int
	// Last harvest applied, for the revert path.
	lastTarget harvestTarget
	lastAmount int
	harvested  bool
}

// Active reports whether a balancing episode is in progress.
func (b *Balancer) Active() bool { return b.active }

// Harvested reports whether the episode has an un-reverted harvest.
func (b *Balancer) Harvested() bool { return b.harvested }

// Reset ends the balancing episode (called when the controller installs a
// fresh predictor configuration).
func (b *Balancer) Reset() {
	b.active = false
	b.harvested = false
	b.shedStreak = 0
}

// begin initializes granularities to half of what the BE side owns
// (Alg. 2 lines 1–2).
func (b *Balancer) begin(cfg hw.Config) {
	b.active = true
	b.harvested = false
	b.gCores = max(1, cfg.BE.Cores/2)
	b.gWays = max(1, cfg.BE.LLCWays/2)
	span := b.Spec.LevelOfFreq(cfg.BE.Freq) // levels above the floor
	b.gFreq = max(1, span/2)
}

// ShedPower responds to a *measured* power overload: the predictor is
// blind to whatever is drawing the excess (interference traffic, LS
// utilization inflation), so the balancer goes straight to the one
// actuator guaranteed to reduce power — the BE cores' frequency (Fig. 8's
// power arrow, pointing down only).
func (b *Balancer) ShedPower(cfg hw.Config) hw.Config {
	if !b.active {
		b.begin(cfg)
	}
	// Escalate geometrically across consecutive shedding intervals: a
	// breaker rides through one or two hot intervals, so the response
	// must clear the excess before tolerance runs out rather than
	// converge at a fixed granularity.
	if b.shedStreak < 4 {
		b.shedStreak++
	}
	amount := max(2, b.gFreq<<b.shedStreak) // eager: first shed already doubles
	beLvl := b.Spec.LevelOfFreq(cfg.BE.Freq)
	throttle := min(amount, beLvl)
	park := 0
	if throttle < amount && cfg.BE.Cores > 1 {
		// Frequency alone cannot absorb the escalation: park BE cores
		// outright (they leave both partitions, drawing nothing).
		park = min(amount-throttle, cfg.BE.Cores-1)
	}
	next := cfg
	if throttle > 0 {
		next, _ = shiftBEFreq(b.Spec, next, -throttle)
	}
	if park > 0 {
		next.BE.Cores -= park
	}
	if next == cfg {
		return cfg
	}

	if park > 0 {
		b.lastTarget, b.lastAmount, b.harvested = harvestParked, park, true
	} else {
		b.lastTarget, b.lastAmount, b.harvested = harvestPower, -throttle, true
	}
	return next
}

// Harvest performs one Alg. 2 iteration for a QoS-threatened interval:
// predict the throughput loss of harvesting each resource type by its
// granularity, apply the cheapest power-feasible one, and remember it for
// a potential revert. It returns the configuration to apply.
//
// nearCap marks that the *measured* node power sits close to the budget;
// the predictor cannot see what is drawing the excess, so in that state
// only options whose predicted power does not exceed the current
// configuration's are admissible. deep marks an outright QoS violation
// (latency far beyond the target) rather than a thin slack.
func (b *Balancer) Harvest(cfg hw.Config, qps float64, nearCap, deep bool) hw.Config {
	if !b.active {
		b.begin(cfg)
	}
	cur := b.Pred.Throughput(cfg.BE)
	curPower := b.Pred.PowerW(cfg, qps)

	type option struct {
		target harvestTarget
		amount int
		cfg    hw.Config
		loss   float64
	}
	var opts []option
	if next, amt := b.harvestCores(cfg, b.gCores); amt > 0 {
		opts = append(opts, option{harvestCores, amt, next, cur - b.Pred.Throughput(next.BE)})
	}
	// A deep violation is a capacity deficit; cache ways only relieve
	// memory-side inflation and would waste the recovery interval.
	if next, amt := b.harvestCache(cfg, b.gWays); amt > 0 && !deep {
		opts = append(opts, option{harvestCache, amt, next, cur - b.Pred.Throughput(next.BE)})
	}
	if next, amt := b.harvestPower(cfg, b.gFreq); amt > 0 {
		opts = append(opts, option{harvestPower, amt, next, cur - b.Pred.Throughput(next.BE)})
	}

	bestIdx := -1
	for i, o := range opts {
		// Harvesting may itself overload the budget (Alg. 2 line 8): the
		// LS side gains resources and power.
		pw := b.Pred.PowerW(o.cfg, qps)
		if pw > b.Budget {
			continue
		}
		if nearCap && pw > curPower {
			continue
		}
		if b.FixedOrder {
			// First admissible option in cores→cache→power order.
			if bestIdx < 0 {
				bestIdx = i
			}
			continue
		}
		if bestIdx < 0 || o.loss < opts[bestIdx].loss {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		// Nothing harvestable without overload: fall back to pulling BE
		// frequency down alone (always reduces power). The returned delta
		// is negative (levels removed); a negative lastAmount marks the
		// pure-throttle case for Revert.
		if next, amt := b.throttleBE(cfg, b.gFreq); amt < 0 {
			b.lastTarget, b.lastAmount, b.harvested = harvestPower, amt, true
			return next
		}
		return cfg
	}
	chosen := opts[bestIdx]
	b.lastTarget = chosen.target
	b.lastAmount = chosen.amount
	b.harvested = true
	return chosen.cfg
}

// Revert hands half of the last harvest back to the BE application after
// the latency turned out "suddenly very low" (Alg. 2 lines 11–14), and
// halves the granularity of that resource.
func (b *Balancer) Revert(cfg hw.Config, qps float64) hw.Config {
	if !b.harvested || b.lastAmount == 0 {
		return cfg
	}
	half := max(1, abs(b.lastAmount)/2)
	var next hw.Config
	switch b.lastTarget {
	case harvestCores:
		next, _ = moveCores(b.Spec, cfg, -half)
		b.gCores = max(1, b.gCores/2)
	case harvestCache:
		next, _ = moveWays(b.Spec, cfg, -half)
		b.gWays = max(1, b.gWays/2)
	case harvestParked:
		next = cfg
		next.BE.Cores += half
		b.gCores = max(1, b.gCores/2)
	default:
		if b.lastAmount < 0 { // plain BE throttle: raise BE freq back
			next, _ = shiftBEFreq(b.Spec, cfg, half)
		} else {
			next, _ = shiftFreqPair(b.Spec, cfg, -half)
		}
		b.gFreq = max(1, b.gFreq/2)
	}
	if next.Validate(b.Spec) != nil {
		return cfg
	}
	// Reverting must not reintroduce a power overload (Alg. 2 line 13).
	if b.Pred.PowerW(next, qps) > b.Budget {
		return cfg
	}
	b.harvested = false
	return next
}

// harvestCores moves up to n cores from BE to LS.
func (b *Balancer) harvestCores(cfg hw.Config, n int) (hw.Config, int) {
	return moveCores(b.Spec, cfg, min(n, cfg.BE.Cores-1))
}

// harvestCache moves up to n ways from BE to LS.
func (b *Balancer) harvestCache(cfg hw.Config, n int) (hw.Config, int) {
	return moveWays(b.Spec, cfg, min(n, cfg.BE.LLCWays-1))
}

// harvestPower lowers BE frequency by n levels and raises LS frequency by
// the same amount (Fig. 8's third arrow).
func (b *Balancer) harvestPower(cfg hw.Config, n int) (hw.Config, int) {
	return shiftFreqPair(b.Spec, cfg, n)
}

// throttleBE lowers only the BE frequency (a pure power reduction).
func (b *Balancer) throttleBE(cfg hw.Config, n int) (hw.Config, int) {
	return shiftBEFreq(b.Spec, cfg, -n)
}

// moveCores transfers n cores BE→LS (negative: LS→BE).
func moveCores(spec hw.Spec, cfg hw.Config, n int) (hw.Config, int) {
	if n > 0 {
		n = min(n, cfg.BE.Cores-1)
	} else {
		n = -min(-n, cfg.LS.Cores-1)
	}
	if n == 0 {
		return cfg, 0
	}
	cfg.LS.Cores += n
	cfg.BE.Cores -= n
	if cfg.Validate(spec) != nil {
		return cfg, 0
	}
	return cfg, n
}

// moveWays transfers n LLC ways BE→LS (negative: LS→BE).
func moveWays(spec hw.Spec, cfg hw.Config, n int) (hw.Config, int) {
	if n > 0 {
		n = min(n, cfg.BE.LLCWays-1)
	} else {
		n = -min(-n, cfg.LS.LLCWays-1)
	}
	if n == 0 {
		return cfg, 0
	}
	cfg.LS.LLCWays += n
	cfg.BE.LLCWays -= n
	if cfg.Validate(spec) != nil {
		return cfg, 0
	}
	return cfg, n
}

// shiftFreqPair lowers BE frequency by n levels and raises LS by n
// (negative n reverses the shift). The realizable amount is bounded by
// both grids.
func shiftFreqPair(spec hw.Spec, cfg hw.Config, n int) (hw.Config, int) {
	lsLvl := spec.LevelOfFreq(cfg.LS.Freq)
	beLvl := spec.LevelOfFreq(cfg.BE.Freq)
	maxLvl := spec.NumFreqLevels() - 1
	if n > 0 {
		n = min(n, min(beLvl, maxLvl-lsLvl))
	} else {
		n = -min(-n, min(lsLvl, maxLvl-beLvl))
	}
	if n == 0 {
		return cfg, 0
	}
	cfg.LS.Freq = spec.FreqAtLevel(lsLvl + n)
	cfg.BE.Freq = spec.FreqAtLevel(beLvl - n)
	return cfg, n
}

// shiftBEFreq moves only the BE frequency by n levels (negative lowers).
func shiftBEFreq(spec hw.Spec, cfg hw.Config, n int) (hw.Config, int) {
	beLvl := spec.LevelOfFreq(cfg.BE.Freq)
	maxLvl := spec.NumFreqLevels() - 1
	to := beLvl + n
	if to < 0 {
		to = 0
	}
	if to > maxLvl {
		to = maxLvl
	}
	if to == beLvl {
		return cfg, 0
	}
	cfg.BE.Freq = spec.FreqAtLevel(to)
	return cfg, to - beLvl
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
