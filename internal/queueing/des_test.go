package queueing

import (
	"math"
	"math/rand"
	"testing"
)

func TestDESBasicStats(t *testing.T) {
	d := &DES{Servers: 4, SvcMean: 0.002, SvcCV: 0.5, Rng: rand.New(rand.NewSource(7))}
	lat := d.Run(1000, 2, 20) // ρ = 0.5
	if lat.N() < 15000 {
		t.Fatalf("only %d completions, want ≈20000", lat.N())
	}
	if m := lat.Mean(); m < 0.002 || m > 0.004 {
		t.Errorf("mean sojourn %v implausible for ρ=0.5", m)
	}
	p50, p95, p99 := lat.Quantile(0.5), lat.Quantile(0.95), lat.Quantile(0.99)
	if !(p50 < p95 && p95 < p99) {
		t.Errorf("quantiles not ordered: %v %v %v", p50, p95, p99)
	}
}

func TestDESFractionWithinConsistentWithQuantile(t *testing.T) {
	d := &DES{Servers: 4, SvcMean: 0.002, SvcCV: 0.5, Rng: rand.New(rand.NewSource(3))}
	lat := d.Run(1200, 2, 20)
	p95 := lat.Quantile(0.95)
	frac := lat.FractionWithin(p95)
	if math.Abs(frac-0.95) > 0.01 {
		t.Errorf("FractionWithin(p95) = %v, want ≈0.95", frac)
	}
}

func TestDESEmptyCases(t *testing.T) {
	d := &DES{Servers: 0, SvcMean: 0.002, SvcCV: 0.5}
	if lat := d.Run(100, 0, 1); lat.N() != 0 {
		t.Error("zero-server run produced completions")
	}
	d2 := &DES{Servers: 2, SvcMean: 0.002, SvcCV: 0.5}
	if lat := d2.Run(0, 0, 1); lat.N() != 0 {
		t.Error("zero-rate run produced completions")
	}
	var empty Latencies
	if !math.IsNaN(empty.Quantile(0.5)) || !math.IsNaN(empty.Mean()) {
		t.Error("empty latencies should yield NaN stats")
	}
	if empty.FractionWithin(1) != 0 {
		t.Error("empty latencies FractionWithin should be 0")
	}
}

// TestAnalyticMatchesDES is the cross-validation called out in DESIGN.md:
// the analytic M/G/c approximation must track the discrete-event ground
// truth across utilizations and service CVs.
func TestAnalyticMatchesDES(t *testing.T) {
	cases := []struct {
		name    string
		lambda  float64
		servers int
		mean    float64
		cv      float64
		tol     float64 // relative tolerance on p95
	}{
		{"low-util", 800, 8, 0.002, 0.5, 0.10},
		{"mid-util", 2400, 8, 0.002, 0.5, 0.12},
		{"high-util", 3400, 8, 0.002, 0.5, 0.25},
		{"high-cv", 2000, 8, 0.002, 1.2, 0.25},
		{"low-cv", 2400, 8, 0.002, 0.1, 0.15},
		{"many-servers", 8000, 20, 0.002, 0.6, 0.15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := &DES{Servers: tc.servers, SvcMean: tc.mean, SvcCV: tc.cv,
				Rng: rand.New(rand.NewSource(11))}
			lat := d.Run(tc.lambda, 5, 60)
			a := Analytic{Lambda: tc.lambda, Servers: tc.servers,
				SvcMean: tc.mean, SvcCV: tc.cv}
			dp95, ap95 := lat.Quantile(0.95), a.SojournQuantile(0.95)
			if rel := math.Abs(dp95-ap95) / dp95; rel > tc.tol {
				t.Errorf("p95 mismatch: DES %v vs analytic %v (rel %.2f, tol %.2f)",
					dp95, ap95, rel, tc.tol)
			}
			// QoS-rate agreement at the analytic p95 point.
			frac := lat.FractionWithin(ap95)
			if math.Abs(frac-0.95) > 0.04 {
				t.Errorf("DES FractionWithin(analytic p95) = %v, want ≈0.95", frac)
			}
		})
	}
}

func TestDESSaturatedGrowsUnbounded(t *testing.T) {
	d := &DES{Servers: 2, SvcMean: 0.002, SvcCV: 0.5, Rng: rand.New(rand.NewSource(5))}
	short := d.Run(2000, 0, 2).Quantile(0.95) // ρ = 2
	d2 := &DES{Servers: 2, SvcMean: 0.002, SvcCV: 0.5, Rng: rand.New(rand.NewSource(5))}
	long := d2.Run(2000, 0, 8).Quantile(0.95)
	if long <= short {
		t.Errorf("overloaded queue tail did not grow with time: %v <= %v", long, short)
	}
}
