package queueing

import "math"

// Analytic is a G/G/c queue approximation producing the sojourn-time
// (wait + service) distribution. The waiting time is modelled as a point
// mass at zero with probability 1−Pw (Erlang C) and an exponential tail
// with rate θ = 2(cμ−λ)/(CVa²+CVs²) — the Allen–Cunneen correction that
// keeps the mean wait exact for M/M/c and accounts for both service
// variability and arrival burstiness. The sojourn CDF is the exact
// convolution of that wait law with the lognormal service distribution,
// evaluated by quantile-grid quadrature.
type Analytic struct {
	// Lambda is the arrival rate (queries/s).
	Lambda float64
	// Servers is the number of cores serving queries.
	Servers int
	// SvcMean is the mean service time in seconds.
	SvcMean float64
	// SvcCV is the service-time coefficient of variation.
	SvcCV float64
	// ArrivalCV is the coefficient of variation of the arrival process
	// (1 or 0 = Poisson). Datacenter services see bursty traffic —
	// batched RPC fan-outs, TCP coalescing — with CVa well above 1,
	// which is what makes their tails rise long before saturation.
	ArrivalCV float64
	// IntervalS is the measurement interval used for the saturated-queue
	// transient model; zero means 1 s (the paper's sampling interval).
	IntervalS float64
}

// variability returns CVa² + CVs².
func (a Analytic) variability() float64 {
	ca := a.ArrivalCV
	if ca <= 0 {
		ca = 1
	}
	return ca*ca + a.SvcCV*a.SvcCV
}

// quadPoints is the number of service-quantile quadrature points used for
// the sojourn-CDF convolution.
const quadPoints = 96

// quadZ caches the standard-normal quantiles of the bin midpoints: the
// lognormal service quantile of bin i is exp(mu + sigma·quadZ[i]), so a
// CDF evaluation costs one exp per bin instead of a full inverse-normal.
var quadZ = func() [quadPoints]float64 {
	var z [quadPoints]float64
	for i := range z {
		z[i] = stdNormalQuantile((float64(i) + 0.5) / quadPoints)
	}
	return z
}()

// Rho returns the offered utilization λ·E[S]/c.
func (a Analytic) Rho() float64 {
	if a.Servers <= 0 {
		return math.Inf(1)
	}
	return a.Lambda * a.SvcMean / float64(a.Servers)
}

// Stable reports whether the queue has a steady state.
func (a Analytic) Stable() bool { return a.Rho() < 1 && a.Servers > 0 }

// ErlangC returns the probability an arriving query must wait.
func (a Analytic) ErlangC() float64 {
	if !a.Stable() {
		return 1
	}
	offered := a.Lambda * a.SvcMean // a = λ/μ
	// Erlang-B recursion, then convert to Erlang C.
	b := 1.0
	for k := 1; k <= a.Servers; k++ {
		b = offered * b / (float64(k) + offered*b)
	}
	rho := a.Rho()
	return b / (1 - rho*(1-b))
}

// waitTailRate returns θ of the exponential wait tail.
func (a Analytic) waitTailRate() float64 {
	cmu := float64(a.Servers) / a.SvcMean
	return 2 * (cmu - a.Lambda) / a.variability()
}

// MeanWait returns the Allen–Cunneen mean waiting time.
func (a Analytic) MeanWait() float64 {
	if !a.Stable() {
		return math.Inf(1)
	}
	return a.ErlangC() / a.waitTailRate()
}

// waitCDF returns P(W ≤ t).
func (a Analytic) waitCDF(t, pw, theta float64) float64 {
	if t < 0 {
		return 0
	}
	return 1 - pw*math.Exp(-theta*t)
}

// SojournCDF returns P(T ≤ t) for the sojourn time T = W + S:
// F_T(t) = F_S(t) − Pw·∫₀ᵗ f_S(s)·e^{−θ(t−s)} ds. Substituting
// u = F_S(s) turns the integral into ∫₀^{F_S(t)} e^{−θ(t−Q_S(u))} du.
// The probability axis is split into quadPoints equal bins with
// precomputed service quantiles at their midpoints; the bin straddled
// by F_S(t) contributes its fractional mass, keeping the CDF
// continuous and invertible in t. The evaluation lives on Evaluator
// (eval.go) so repeated queries share the t-independent setup.
func (a Analytic) SojournCDF(t float64) float64 {
	var ev Evaluator
	ev.Init(a)
	return ev.SojournCDF(t)
}

// saturatedFractionWithin models an overloaded interval transient: with
// λ ≥ cμ over an interval starting near-empty, the backlog grows linearly,
// so a query arriving at offset τ waits ≈ (λ−cμ)τ/(cμ) service positions.
// The fraction finishing within t shrinks as the interval progresses.
func (a Analytic) saturatedFractionWithin(t float64) float64 {
	interval := a.IntervalS
	if interval <= 0 {
		interval = 1
	}
	cmu := float64(a.Servers) / a.SvcMean
	excess := a.Lambda - cmu
	if excess <= 0 {
		excess = 1e-9
	}
	// Latest arrival offset that still meets t (minus one mean service).
	budget := t - a.SvcMean
	if budget <= 0 {
		return 0
	}
	tauMax := budget * cmu / excess
	frac := tauMax / interval
	if frac > 1 {
		frac = 1
	}
	return frac
}

// FractionWithin returns the fraction of queries whose sojourn time is at
// most t — the paper's "QoS guarantee rate" contribution of one interval.
func (a Analytic) FractionWithin(t float64) float64 {
	return a.SojournCDF(t)
}

// SojournQuantile returns the p-quantile of the sojourn time by bisection
// on the CDF. It returns +Inf for an unstable queue whose transient model
// cannot reach p within the interval.
func (a Analytic) SojournQuantile(p float64) float64 {
	var ev Evaluator
	ev.Init(a)
	return ev.SojournQuantile(p)
}
