package queueing

import (
	"math"
	"testing"
)

func TestRhoAndStability(t *testing.T) {
	q := Analytic{Lambda: 1000, Servers: 4, SvcMean: 0.002, SvcCV: 0.5}
	if got := q.Rho(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Rho = %v, want 0.5", got)
	}
	if !q.Stable() {
		t.Error("queue at ρ=0.5 reported unstable")
	}
	q.Lambda = 2001
	if q.Stable() {
		t.Error("queue at ρ>1 reported stable")
	}
	q.Servers = 0
	if q.Stable() {
		t.Error("queue with no servers reported stable")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// M/M/c textbook values: c=2, a=1 (ρ=0.5) → C = 1/3.
	q := Analytic{Lambda: 1, Servers: 2, SvcMean: 1, SvcCV: 1}
	if got := q.ErlangC(); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("ErlangC(c=2, a=1) = %v, want 1/3", got)
	}
	// c=1: C = ρ.
	q1 := Analytic{Lambda: 0.7, Servers: 1, SvcMean: 1, SvcCV: 1}
	if got := q1.ErlangC(); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("ErlangC(c=1, ρ=0.7) = %v, want 0.7", got)
	}
}

func TestMeanWaitMatchesMMcFormula(t *testing.T) {
	// For M/M/1: Wq = ρ/(μ−λ).
	q := Analytic{Lambda: 0.5, Servers: 1, SvcMean: 1, SvcCV: 1}
	want := 0.5 / (1 - 0.5)
	if got := q.MeanWait(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanWait M/M/1 = %v, want %v", got, want)
	}
	// Deterministic service halves the wait (Allen–Cunneen (1+CV²)/2).
	qd := Analytic{Lambda: 0.5, Servers: 1, SvcMean: 1, SvcCV: 0}
	if got := qd.MeanWait(); math.Abs(got-want/2) > 1e-6 {
		t.Errorf("MeanWait M/D/1 = %v, want %v", got, want/2)
	}
}

func TestSojournCDFMonotoneAndBounded(t *testing.T) {
	q := Analytic{Lambda: 3000, Servers: 8, SvcMean: 0.002, SvcCV: 0.6}
	prev := -1.0
	for _, tt := range []float64{0, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.05, 0.2} {
		c := q.SojournCDF(tt)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v: %v < %v", tt, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %v: %v", tt, c)
		}
		prev = c
	}
	if got := q.SojournCDF(10); got < 0.999 {
		t.Errorf("CDF(10s) = %v, want ≈1", got)
	}
}

func TestSojournQuantileInvertsCDF(t *testing.T) {
	q := Analytic{Lambda: 5000, Servers: 6, SvcMean: 0.0008, SvcCV: 0.5}
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		x := q.SojournQuantile(p)
		if got := q.SojournCDF(x); math.Abs(got-p) > 1e-4 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestSojournQuantileGrowsWithLoad(t *testing.T) {
	base := Analytic{Servers: 8, SvcMean: 0.002, SvcCV: 0.6}
	prev := 0.0
	for _, lambda := range []float64{500, 1500, 2500, 3500, 3900} {
		q := base
		q.Lambda = lambda
		p95 := q.SojournQuantile(0.95)
		if p95 <= prev {
			t.Fatalf("p95 not increasing with load at λ=%v: %v <= %v", lambda, p95, prev)
		}
		prev = p95
	}
}

func TestSojournQuantileImprovesWithServersAndSpeed(t *testing.T) {
	q := Analytic{Lambda: 3000, Servers: 8, SvcMean: 0.002, SvcCV: 0.6}
	p95 := q.SojournQuantile(0.95)
	more := q
	more.Servers = 12
	if got := more.SojournQuantile(0.95); got >= p95 {
		t.Errorf("more servers did not reduce p95: %v >= %v", got, p95)
	}
	faster := q
	faster.SvcMean = 0.001
	if got := faster.SojournQuantile(0.95); got >= p95 {
		t.Errorf("faster service did not reduce p95: %v >= %v", got, p95)
	}
}

func TestSaturatedQueueBehaviour(t *testing.T) {
	q := Analytic{Lambda: 10000, Servers: 4, SvcMean: 0.002, SvcCV: 0.5, IntervalS: 1}
	// ρ = 5: heavily overloaded.
	frac := q.FractionWithin(0.010)
	if frac <= 0 || frac >= 0.5 {
		t.Errorf("overloaded FractionWithin(10ms) = %v, want small positive", frac)
	}
	// More headroom → larger fraction within.
	if q.FractionWithin(0.050) <= frac {
		t.Error("larger target did not admit more queries")
	}
	p95 := q.SojournQuantile(0.95)
	if p95 < 0.1 {
		t.Errorf("overloaded p95 = %v, want large", p95)
	}
	// Deeper overload → worse tail.
	q2 := q
	q2.Lambda = 20000
	if q2.SojournQuantile(0.95) <= p95 {
		t.Error("doubling overload did not raise p95")
	}
}

func TestZeroServerQueue(t *testing.T) {
	q := Analytic{Lambda: 100, Servers: 0, SvcMean: 0.001, SvcCV: 0.5}
	if !math.IsInf(q.SojournQuantile(0.95), 1) {
		t.Error("zero-server p95 should be +Inf")
	}
	if q.FractionWithin(1) != 0 {
		t.Error("zero-server queue should serve nothing")
	}
}
