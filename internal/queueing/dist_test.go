package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogNormalMeanMatchesParameter(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{0.001, 0.3}, {0.004, 0.8}, {1, 0.1}, {2.5, 1.5},
	} {
		l := NewLogNormal(tc.mean, tc.cv)
		if got := l.Mean(); math.Abs(got-tc.mean)/tc.mean > 1e-9 {
			t.Errorf("mean(%v,%v) = %v", tc.mean, tc.cv, got)
		}
	}
}

func TestLogNormalCDFQuantileRoundTrip(t *testing.T) {
	l := NewLogNormal(0.002, 0.6)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		x := l.Quantile(p)
		if got := l.CDF(x); math.Abs(got-p) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestLogNormalCDFBounds(t *testing.T) {
	l := NewLogNormal(1, 0.5)
	if l.CDF(0) != 0 || l.CDF(-1) != 0 {
		t.Error("CDF of non-positive x must be 0")
	}
	if got := l.CDF(1e12); got < 1-1e-9 {
		t.Errorf("CDF(huge) = %v, want ~1", got)
	}
}

func TestLogNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewLogNormal(0.005, 0.5)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := l.Sample(rng.NormFloat64)
		if v <= 0 {
			t.Fatal("non-positive lognormal sample")
		}
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-0.005)/0.005 > 0.02 {
		t.Errorf("sample mean %v, want ≈0.005", mean)
	}
	if math.Abs(sd/mean-0.5) > 0.03 {
		t.Errorf("sample CV %v, want ≈0.5", sd/mean)
	}
}

func TestStdNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9772498680518208, 2},
		{0.0227501319481792, -2},
		{0.95, 1.6448536269514722},
		{0.99, 2.3263478740408408},
	}
	for _, c := range cases {
		if got := stdNormalQuantile(c.p); math.Abs(got-c.z) > 1e-8 {
			t.Errorf("quantile(%v) = %v, want %v", c.p, got, c.z)
		}
	}
	if !math.IsInf(stdNormalQuantile(0), -1) || !math.IsInf(stdNormalQuantile(1), 1) {
		t.Error("endpoint quantiles should be infinite")
	}
}

func TestStdNormalQuantileRoundTripProperty(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-6 || p > 1-1e-6 {
			return true
		}
		z := stdNormalQuantile(p)
		return math.Abs(stdNormalCDF(z)-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
