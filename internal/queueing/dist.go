// Package queueing provides the latency substrate for simulated
// latency-sensitive services: a fast analytic M/G/c tail-latency
// approximation used by the node simulator's ground-truth physics, and a
// discrete-event M/G/c simulator used to validate the analytic model.
//
// Queries arrive Poisson at rate λ and are served by c identical cores;
// service times are lognormal with a configurable mean (set by the
// application's instruction count and effective CPI at the current
// <cores, frequency, ways> allocation) and coefficient of variation.
package queueing

import "math"

// LogNormal is a lognormal distribution parameterized by its mean and
// coefficient of variation (sd/mean), the natural way service-time
// distributions are reported for datacenter services.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal builds the distribution with the given mean and CV.
// A zero or negative CV degenerates to a (nearly) deterministic time.
func NewLogNormal(mean, cv float64) LogNormal {
	if mean <= 0 {
		mean = 1e-12
	}
	if cv < 1e-6 {
		cv = 1e-6
	}
	s2 := math.Log(1 + cv*cv)
	return LogNormal{
		Mu:    math.Log(mean) - s2/2,
		Sigma: math.Sqrt(s2),
	}
}

// Mean returns E[X].
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// CDF returns P(X ≤ x).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return stdNormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile returns the p-quantile.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*stdNormalQuantile(p))
}

// Sample draws one variate given a standard-normal source.
func (l LogNormal) Sample(normal func() float64) float64 {
	return math.Exp(l.Mu + l.Sigma*normal())
}

func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// stdNormalQuantile computes Φ⁻¹(p) with Acklam's rational approximation
// refined by one Halley step; absolute error well below 1e-9.
func stdNormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the true CDF.
	e := stdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
