package queueing

import (
	"math/rand"
	"testing"
)

func BenchmarkAnalyticSojournP95(b *testing.B) {
	q := Analytic{Lambda: 20000, Servers: 8, SvcMean: 0.0003, SvcCV: 0.7, ArrivalCV: 2.8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.SojournQuantile(0.95)
	}
}

func BenchmarkAnalyticFractionWithin(b *testing.B) {
	q := Analytic{Lambda: 20000, Servers: 8, SvcMean: 0.0003, SvcCV: 0.7, ArrivalCV: 2.8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.FractionWithin(0.010)
	}
}

func BenchmarkDESOneSecond(b *testing.B) {
	d := &DES{Servers: 8, SvcMean: 0.0003, SvcCV: 0.7, Rng: rand.New(rand.NewSource(1))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Run(20000, 0, 1)
	}
}
