package queueing

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
)

// DES is a discrete-event M/G/c queueing simulator with lognormal service
// times. It is the reference implementation the analytic model is
// validated against, and can serve as a drop-in (slower, noisier) latency
// engine for the node simulator.
type DES struct {
	Servers int
	SvcMean float64
	SvcCV   float64
	// BatchMean enables bursty (batch-Poisson) arrivals: batches arrive
	// Poisson at rate lambda/BatchMean with geometrically distributed
	// sizes of that mean, giving an arrival index of dispersion of
	// 2·BatchMean−1 (so analytic ArrivalCV ≈ √(2·BatchMean−1)).
	// Values ≤ 1 mean plain Poisson arrivals.
	BatchMean float64
	Rng       *rand.Rand
}

// Latencies holds per-query sojourn times from one simulated stretch.
type Latencies struct {
	sorted []float64
}

// N returns the number of completed queries.
func (l Latencies) N() int { return len(l.sorted) }

// Quantile returns the p-quantile of the observed sojourn times.
func (l Latencies) Quantile(p float64) float64 {
	if len(l.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return l.sorted[0]
	}
	if p >= 1 {
		return l.sorted[len(l.sorted)-1]
	}
	idx := p * float64(len(l.sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(l.sorted) {
		return l.sorted[lo]
	}
	return l.sorted[lo]*(1-frac) + l.sorted[lo+1]*frac
}

// FractionWithin returns the fraction of queries with sojourn ≤ t.
func (l Latencies) FractionWithin(t float64) float64 {
	if len(l.sorted) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(l.sorted, math.Nextafter(t, math.Inf(1)))
	return float64(n) / float64(len(l.sorted))
}

// Mean returns the average sojourn time.
func (l Latencies) Mean() float64 {
	if len(l.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range l.sorted {
		sum += v
	}
	return sum / float64(len(l.sorted))
}

type departHeap []float64

func (h departHeap) Len() int            { return len(h) }
func (h departHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h departHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *departHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *departHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Run simulates Poisson arrivals at rate lambda for the given duration
// (seconds) after a warmup stretch whose completions are discarded.
// Dispatch is FCFS: each arrival is served by whichever server frees
// earliest, so the simulation tracks one "next free" time per server.
// Queries queue without shedding, as the paper's services do.
func (d *DES) Run(lambda, warmup, duration float64) Latencies {
	if d.Servers <= 0 || lambda <= 0 {
		return Latencies{}
	}
	svc := NewLogNormal(d.SvcMean, d.SvcCV)
	rng := d.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	// avail holds each server's next-free time.
	avail := make(departHeap, d.Servers)
	heap.Init(&avail)

	batch := d.BatchMean
	if batch < 1 {
		batch = 1
	}
	var out []float64
	end := warmup + duration
	t := 0.0
	for {
		t += rng.ExpFloat64() * batch / lambda
		if t > end {
			break
		}
		// Geometric batch size with the configured mean.
		n := 1
		for batch > 1 && rng.Float64() < 1-1/batch {
			n++
		}
		for i := 0; i < n; i++ {
			start := heap.Pop(&avail).(float64)
			if start < t {
				start = t
			}
			depart := start + svc.Sample(rng.NormFloat64)
			heap.Push(&avail, depart)
			if t >= warmup {
				out = append(out, depart-t)
			}
		}
	}
	sort.Float64s(out)
	return Latencies{sorted: out}
}
