package queueing

import (
	"math"
	"sync"
)

// This file is the hot path of the analytic engine. A node step asks two
// questions of the same queue — SojournQuantile(pct) and
// FractionWithin(budget) — and the quantile alone costs ~50 CDF
// evaluations (bracket doubling plus 48 bisection steps), each of which
// the naive implementation pays twice per quadrature bin: one exp for the
// service quantile s_i and one for the wait-tail factor e^{-θ(t-s_i)}.
// The Evaluator hoists everything that does not depend on t — Erlang-C,
// the tail rate θ, the lognormal parameters and the whole s_i table — and
// answers the bisection's comparisons with rigorous cheap bounds, falling
// back to the exact summation only when a comparison is genuinely close.
//
// Bit-exactness contract: every value the Evaluator returns is
// bit-identical to what the original Analytic methods computed. Hoisting
// is safe because the hoisted expressions are unchanged (same operations,
// same order); the comparison bounds are safe because a bisection step
// needs only the comparison *outcome* SojournCDF(t) < p, not the CDF's
// bits, and the bounds are padded far beyond the true floating-point
// error so an undecided comparison always falls back to the exact sum.

// expZero is a conservative threshold below which math.Exp returns a
// value so small (< 2^-1075, half the smallest subnormal) that adding it
// to any quadrature sum cannot change the final CDF bits: either the
// term is exactly zero, or it is absorbed by rounding in the summation
// and the subsequent ft − pw·integral subtraction (ulp(ft) ≥ ~1e-18
// whenever the loop runs at all). Skipping such terms is therefore
// bit-identical to summing them.
const expZero = -746.0

// Evaluator answers repeated sojourn-CDF queries against one fixed
// Analytic queue without recomputing the t-independent parts. The zero
// value is not ready; call Init (or let Cache.Solve do it).
type Evaluator struct {
	a      Analytic
	stable bool
	pw     float64 // Erlang-C wait probability
	theta  float64 // exponential wait-tail rate
	svc    LogNormal

	// sTab[i] is the service quantile at bin midpoint i, exactly
	// math.Exp(svc.Mu + svc.Sigma*quadZ[i]) — the same expression the
	// original CDF loop evaluated per call. Points at own or at a table
	// shared through a Cache.
	sTab *[quadPoints]float64
	own  [quadPoints]float64

	// prefixE[k] = Σ_{i<k} e^{θ·s_i}. Because θ is fixed for the
	// evaluator's lifetime, e^{-θ(t-s_i)} factors as e^{-θt}·e^{θ·s_i},
	// so the whole quadrature sum for any t is approximated by one exp
	// and a prefix-sum lookup. The factorization is NOT bit-identical to
	// the direct sum (the large arguments θt and θ·s_i round differently
	// than the small argument θ(t-s_i)), so it is used only inside
	// rigorously padded bounds — never for a returned value.
	prefixE [quadPoints + 1]float64
	// fastOK gates the bound path: false when the prefix table
	// overflowed or the s table is not ascending.
	fastOK bool
}

// Init prepares the evaluator for the given queue parameters. It may be
// called repeatedly to reuse the (large) struct across steps.
func (ev *Evaluator) Init(a Analytic) { ev.init(a, nil) }

func (ev *Evaluator) init(a Analytic, c *Cache) {
	ev.a = a
	ev.stable = a.Stable()
	if !ev.stable {
		return
	}
	ev.pw = a.ErlangC()
	ev.theta = a.waitTailRate()
	ev.svc = NewLogNormal(a.SvcMean, a.SvcCV)
	if c != nil {
		ev.sTab = c.sTab(ev.svc)
	} else {
		fillSTab(&ev.own, ev.svc)
		ev.sTab = &ev.own
	}
	ev.fastOK = true
	ev.prefixE[0] = 0
	for i, s := range ev.sTab {
		e := math.Exp(ev.theta * s)
		ev.prefixE[i+1] = ev.prefixE[i] + e
		if i > 0 && ev.sTab[i] < ev.sTab[i-1] {
			ev.fastOK = false
		}
	}
	if last := ev.prefixE[quadPoints]; math.IsInf(last, 0) || math.IsNaN(last) {
		ev.fastOK = false
	}
}

func fillSTab(tab *[quadPoints]float64, svc LogNormal) {
	for i := range tab {
		tab[i] = math.Exp(svc.Mu + svc.Sigma*quadZ[i])
	}
}

// SojournCDF returns P(T ≤ t), bit-identical to Analytic.SojournCDF.
func (ev *Evaluator) SojournCDF(t float64) float64 {
	a := ev.a
	if t <= 0 || a.Servers <= 0 {
		return 0
	}
	if !ev.stable {
		return a.saturatedFractionWithin(t)
	}
	ft := ev.svc.CDF(t)
	if ft <= 0 {
		return 0
	}
	return ev.sojournCDFStable(t, ft, -1)
}

// sojournCDFStable finishes the stable-queue CDF for already-computed
// ft = F_S(t). fracPart ≥ 0 is the fractional bin's frac·e^{-θ(t-s_u)}
// if the caller already evaluated it (bit-identical expression); pass a
// negative value to compute it here.
func (ev *Evaluator) sojournCDFStable(t, ft, fracPart float64) float64 {
	theta := ev.theta
	const n = quadPoints
	sum := 0.0
	full := int(ft * n)
	if full > n {
		full = n
	}
	for i := 0; i < full; i++ {
		s := ev.sTab[i]
		if s > t {
			s = t
		}
		if arg := -theta * (t - s); arg > expZero {
			sum += math.Exp(arg)
		}
	}
	integral := sum / n
	if frac := ft - float64(full)/n; frac > 0 && full < n {
		if fracPart < 0 {
			u := (float64(full)/n + ft) / 2
			s := ev.svc.Quantile(u)
			if s > t {
				s = t
			}
			fracPart = frac * math.Exp(-theta*(t-s))
		}
		integral += fracPart
	}
	v := ft - ev.pw*integral
	if v < 0 {
		return 0
	}
	return v
}

// FractionWithin returns SojournCDF(t), mirroring Analytic.FractionWithin.
func (ev *Evaluator) FractionWithin(t float64) float64 { return ev.SojournCDF(t) }

// Bound pads. The true discrepancy between the factored prefix-sum
// approximation and the exact ascending summation is bounded by the
// argument-rounding of the large exponents (≈ eps·θ·(t+s) ≲ 2e-13
// relative given the e^{-θt} ≥ 1e-290 guard keeps θt moderate) plus
// ~n·eps summation error; padP carries a >10× margin over that. pad
// covers the handful of roundings in the bound algebra itself. tiny
// absorbs every absolute (subnormal-scale) loss.
const (
	boundPadP = 3e-12
	boundPad  = 1e-12
	boundTiny = 1e-300
)

// cdfLess reports whether SojournCDF(t) < p with the exact same outcome
// the full evaluation would produce. The bisection driving
// SojournQuantile needs only comparison outcomes, so most calls are
// answered by rigorous two-sided bounds costing O(log n): one exp for
// e^{-θt}, a prefix-sum lookup for the quadrature mass, and (when the
// verdict is close) one exact fractional-bin term. Only a comparison the
// padded bounds cannot decide falls back to the exact summation.
func (ev *Evaluator) cdfLess(t, p float64) bool {
	a := ev.a
	if t <= 0 || a.Servers <= 0 {
		return 0 < p
	}
	if !ev.stable {
		return a.saturatedFractionWithin(t) < p
	}
	if p <= 0 {
		// The CDF (clamped at zero) can never be below a non-positive p.
		return false
	}
	theta, svc := ev.theta, ev.svc
	ft := svc.CDF(t)
	if ft <= 0 {
		return 0 < p
	}
	if ft < p {
		// v = fl(ft − pw·integral) ≤ ft exactly: subtracting a
		// non-negative value under round-to-nearest cannot round above
		// the representable minuend.
		return true
	}
	const n = quadPoints
	eNegT := 0.0
	if ev.fastOK {
		eNegT = math.Exp(-theta * t)
	}
	if eNegT >= 1e-290 {
		full := int(ft * n)
		if full > n {
			full = n
		}
		// Terms split at the clamp boundary: bins with s_i > t contribute
		// exactly e^0 = 1 each; the rest factor through the prefix table.
		m := ev.searchClamp(t, full)
		clamped := float64(full - m)
		base := eNegT * ev.prefixE[m]
		sumLo := base*(1-boundPadP) + clamped
		sumHi := base*(1+boundPadP) + clamped + boundTiny

		frac := ft - float64(full)/n
		hasFrac := frac > 0 && full < n
		// Stage 1 brackets the fractional-bin term by neighbouring table
		// quantiles; stage 2 computes it exactly (still cheap: one
		// inverse-normal and one exp) if the verdict is close.
		fracPart := -1.0
		fracLo, fracHi := 0.0, 0.0
		if hasFrac {
			lo := 0.0
			if full >= 1 {
				lo = ev.sTab[full-1]
			}
			hi := math.Inf(1)
			if full+1 < n {
				hi = ev.sTab[full+1]
			}
			fracLo, fracHi = ev.fracBounds(t, frac, lo, hi)
		}
		for stage := 0; stage < 2; stage++ {
			iLo := (sumLo/n + fracLo) * (1 - boundPad)
			iHi := (sumHi/n+fracHi)*(1+boundPad) + boundTiny
			vHi := ft - ev.pw*iLo + ft*boundPad + boundTiny
			vLo := ft - ev.pw*iHi - ft*boundPad - boundTiny
			// NaN/Inf artifacts fail both comparisons and fall through
			// to the exact path — never a wrong verdict.
			if vHi < p {
				return true
			}
			if vLo >= p {
				return false
			}
			if stage == 1 || !hasFrac {
				break
			}
			u := (float64(full)/n + ft) / 2
			s := svc.Quantile(u)
			if s > t {
				s = t
			}
			fracPart = frac * math.Exp(-theta*(t-s))
			fracLo, fracHi = fracPart*(1-boundPad), fracPart*(1+boundPad)+boundTiny
		}
		return ev.sojournCDFStable(t, ft, fracPart) < p
	}
	return ev.sojournCDFStable(t, ft, -1) < p
}

// searchClamp returns the count of table entries among the first full
// bins with s_i ≤ t (the rest are clamped to t by the quadrature loop).
func (ev *Evaluator) searchClamp(t float64, full int) int {
	lo, hi := 0, full
	for lo < hi {
		mid := (lo + hi) / 2
		if ev.sTab[mid] > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// fracBounds brackets frac·e^{-θ(t-s_u)} given s_u ∈ [sLo, sHi] (up to
// table rounding, which the pads absorb).
func (ev *Evaluator) fracBounds(t, frac, sLo, sHi float64) (lo, hi float64) {
	if sLo > t {
		sLo = t
	}
	if sHi > t {
		sHi = t
	}
	lo = frac * math.Exp(-ev.theta*(t-sLo)) * (1 - boundPadP)
	hi = frac*math.Exp(-ev.theta*(t-sHi))*(1+boundPadP) + boundTiny
	return lo, hi
}

// SojournQuantile returns the p-quantile of the sojourn time,
// bit-identical to Analytic.SojournQuantile.
func (ev *Evaluator) SojournQuantile(p float64) float64 {
	a := ev.a
	if a.Servers <= 0 {
		return math.Inf(1)
	}
	if !ev.stable {
		interval := a.IntervalS
		if interval <= 0 {
			interval = 1
		}
		cmu := float64(a.Servers) / a.SvcMean
		excess := a.Lambda - cmu
		if excess <= 0 {
			excess = 1e-9
		}
		return a.SvcMean + p*interval*excess/cmu
	}
	// ev.pw/ev.theta are the very values MeanWait divides, so the
	// bracket start is bit-identical to the original.
	lo, hi := 0.0, a.SvcMean*4+(ev.pw/ev.theta)*4+1e-6
	for ev.cdfLess(hi, p) {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if ev.cdfLess(mid, p) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// latKey identifies one latency solve: the full queue parameter set plus
// the quantile and QoS budget asked of it. Exact float64 equality only —
// a hit can never change bits, because the cached values are outputs of
// the same pure function of the key.
type latKey struct {
	a           Analytic
	pct, budget float64
}

type latVal struct{ p95, frac float64 }

// Cache memoizes latency solves across nodes and steps. Fleet
// simulations ask the same question many times over: under round-robin
// dispatch every node sees the same arrival rate, and diurnal traces
// revisit load levels, so one solve serves a whole fleet interval. The
// cache also shares the per-service s_i quadrature tables, which depend
// only on the service-time distribution, across every miss.
//
// Safe under concurrent use. Entry count is bounded; on overflow the
// solve map is reset rather than evicted piecemeal, which keeps behavior
// deterministic regardless of insertion order.
type Cache struct {
	mu    sync.Mutex
	sols  map[latKey]latVal
	stabs map[LogNormal]*[quadPoints]float64
}

// cacheMaxEntries bounds the solve map (~6 MiB at the cap) so unbounded
// load mixes (e.g. least-loaded dispatch with noisy feedback) cannot grow
// memory without limit over very long runs.
const cacheMaxEntries = 1 << 16

// NewCache returns an empty latency-solve cache.
func NewCache() *Cache {
	return &Cache{
		sols:  make(map[latKey]latVal),
		stabs: make(map[LogNormal]*[quadPoints]float64),
	}
}

func (c *Cache) sTab(svc LogNormal) *[quadPoints]float64 {
	c.mu.Lock()
	tab, ok := c.stabs[svc]
	if !ok {
		tab = new([quadPoints]float64)
		fillSTab(tab, svc)
		if len(c.stabs) >= 1024 {
			c.stabs = make(map[LogNormal]*[quadPoints]float64)
		}
		c.stabs[svc] = tab
	}
	c.mu.Unlock()
	return tab
}

// Solve returns SojournQuantile(pct) and, when budget > 0,
// FractionWithin(budget) for the queue, consulting the cache first. ev
// is caller-owned scratch (reused across calls to stay allocation-free);
// a nil receiver computes directly. Results are bit-identical to calling
// the Analytic methods.
func (c *Cache) Solve(a Analytic, pct, budget float64, ev *Evaluator) (p95, frac float64) {
	if budget < 0 {
		// frac is unused by callers without a positive budget; normalize
		// so backlog-inflated keys dedupe.
		budget = 0
	}
	if c == nil {
		ev.init(a, nil)
		p95 = ev.SojournQuantile(pct)
		if budget > 0 {
			frac = ev.SojournCDF(budget)
		}
		return p95, frac
	}
	k := latKey{a: a, pct: pct, budget: budget}
	c.mu.Lock()
	v, ok := c.sols[k]
	c.mu.Unlock()
	if ok {
		return v.p95, v.frac
	}
	ev.init(a, c)
	p95 = ev.SojournQuantile(pct)
	if budget > 0 {
		frac = ev.SojournCDF(budget)
	}
	c.mu.Lock()
	if len(c.sols) >= cacheMaxEntries {
		c.sols = make(map[latKey]latVal)
	}
	c.sols[k] = latVal{p95: p95, frac: frac}
	c.mu.Unlock()
	return p95, frac
}
