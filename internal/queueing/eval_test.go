package queueing

import (
	"math"
	"testing"
)

// referenceSojournCDF is the pre-Evaluator implementation, kept verbatim
// as the bit-exactness oracle: the optimized path must reproduce every
// bit it produces, because fleet summaries hash values derived from it.
func referenceSojournCDF(a Analytic, t float64) float64 {
	if t <= 0 {
		return 0
	}
	if a.Servers <= 0 {
		return 0
	}
	if !a.Stable() {
		return a.saturatedFractionWithin(t)
	}
	pw := a.ErlangC()
	theta := a.waitTailRate()
	svc := NewLogNormal(a.SvcMean, a.SvcCV)
	ft := svc.CDF(t)
	if ft <= 0 {
		return 0
	}
	const n = quadPoints
	sum := 0.0
	full := int(ft * n)
	if full > n {
		full = n
	}
	for i := 0; i < full; i++ {
		s := math.Exp(svc.Mu + svc.Sigma*quadZ[i])
		if s > t {
			s = t
		}
		sum += math.Exp(-theta * (t - s))
	}
	integral := sum / n
	if frac := ft - float64(full)/n; frac > 0 && full < n {
		u := (float64(full)/n + ft) / 2
		s := svc.Quantile(u)
		if s > t {
			s = t
		}
		integral += frac * math.Exp(-theta*(t-s))
	}
	v := ft - pw*integral
	if v < 0 {
		return 0
	}
	return v
}

func referenceSojournQuantile(a Analytic, p float64) float64 {
	if a.Servers <= 0 {
		return math.Inf(1)
	}
	if !a.Stable() {
		interval := a.IntervalS
		if interval <= 0 {
			interval = 1
		}
		cmu := float64(a.Servers) / a.SvcMean
		excess := a.Lambda - cmu
		if excess <= 0 {
			excess = 1e-9
		}
		return a.SvcMean + p*interval*excess/cmu
	}
	lo, hi := 0.0, a.SvcMean*4+a.MeanWait()*4+1e-6
	for referenceSojournCDF(a, hi) < p {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if referenceSojournCDF(a, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// evalGrid spans light load through deep saturation, Poisson through
// heavily bursty arrivals, and near-deterministic through heavy-tailed
// service — the regimes node physics actually visits.
func evalGrid() []Analytic {
	var out []Analytic
	for _, servers := range []int{1, 4, 8, 12} {
		for _, svcMean := range []float64{0.0001, 0.0003, 0.002} {
			for _, util := range []float64{0.05, 0.5, 0.85, 0.97, 0.999, 1.05, 1.4} {
				lambda := util * float64(servers) / svcMean
				for _, cv := range []float64{0.3, 0.7, 1.5} {
					for _, acv := range []float64{0, 1, 2.8} {
						out = append(out, Analytic{
							Lambda: lambda, Servers: servers,
							SvcMean: svcMean, SvcCV: cv,
							ArrivalCV: acv, IntervalS: 1,
						})
					}
				}
			}
		}
	}
	out = append(out, Analytic{Lambda: 10, Servers: 0, SvcMean: 0.001, SvcCV: 0.5})
	return out
}

func TestEvaluatorCDFBitIdentical(t *testing.T) {
	for _, a := range evalGrid() {
		var ev Evaluator
		ev.Init(a)
		for _, x := range []float64{
			-1, 0, 1e-6, 5e-5, 1e-4, 3e-4, 1e-3, 4e-3, 0.01, 0.05, 0.3, 2, 50, 1e4,
		} {
			got := ev.SojournCDF(x)
			want := referenceSojournCDF(a, x)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("SojournCDF(%v) on %+v: got %x want %x",
					x, a, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestEvaluatorQuantileBitIdentical(t *testing.T) {
	for _, a := range evalGrid() {
		var ev Evaluator
		ev.Init(a)
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
			got := ev.SojournQuantile(p)
			want := referenceSojournQuantile(a, p)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("SojournQuantile(%v) on %+v: got %v (%x) want %v (%x)",
					p, a, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestEvaluatorReuse pins that Init fully resets the evaluator: answers
// after re-initialization match a fresh evaluator bit for bit.
func TestEvaluatorReuse(t *testing.T) {
	grid := evalGrid()
	var reused Evaluator
	for _, a := range grid {
		reused.Init(a)
		var fresh Evaluator
		fresh.Init(a)
		for _, p := range []float64{0.9, 0.95} {
			if g, w := reused.SojournQuantile(p), fresh.SojournQuantile(p); math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("reused evaluator diverged on %+v p=%v: %v vs %v", a, p, g, w)
			}
		}
		if g, w := reused.FractionWithin(0.01), fresh.FractionWithin(0.01); math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("reused evaluator FractionWithin diverged on %+v: %v vs %v", a, g, w)
		}
	}
}

func TestCacheSolveMatchesDirect(t *testing.T) {
	c := NewCache()
	var ev Evaluator
	for _, a := range evalGrid() {
		for _, budget := range []float64{-0.001, 0, 0.01} {
			wantP95 := referenceSojournQuantile(a, 0.95)
			wantFrac := 0.0
			if budget > 0 {
				wantFrac = referenceSojournCDF(a, budget)
			}
			for pass := 0; pass < 2; pass++ { // miss then hit
				p95, frac := c.Solve(a, 0.95, budget, &ev)
				if math.Float64bits(p95) != math.Float64bits(wantP95) ||
					math.Float64bits(frac) != math.Float64bits(wantFrac) {
					t.Fatalf("Solve pass %d on %+v budget %v: got (%v,%v) want (%v,%v)",
						pass, a, budget, p95, frac, wantP95, wantFrac)
				}
			}
			// Nil cache computes directly.
			p95, frac := (*Cache)(nil).Solve(a, 0.95, budget, &ev)
			if math.Float64bits(p95) != math.Float64bits(wantP95) ||
				math.Float64bits(frac) != math.Float64bits(wantFrac) {
				t.Fatalf("nil-cache Solve on %+v budget %v: got (%v,%v) want (%v,%v)",
					a, budget, p95, frac, wantP95, wantFrac)
			}
		}
	}
}

// TestCacheBounded pins the overflow behavior: the solve map resets at
// the cap instead of growing without limit, and served values stay
// correct either way.
func TestCacheBounded(t *testing.T) {
	c := NewCache()
	a := Analytic{Lambda: 20000, Servers: 8, SvcMean: 0.0003, SvcCV: 0.7, ArrivalCV: 2.8, IntervalS: 1}
	var ev Evaluator
	c.sols = make(map[latKey]latVal)
	for i := 0; i < cacheMaxEntries; i++ {
		c.sols[latKey{a: a, pct: float64(i)}] = latVal{}
	}
	p95, _ := c.Solve(a, 0.95, 0.01, &ev)
	if len(c.sols) > 1 {
		t.Fatalf("cache not reset at cap: %d entries", len(c.sols))
	}
	if want := referenceSojournQuantile(a, 0.95); math.Float64bits(p95) != math.Float64bits(want) {
		t.Fatalf("post-reset solve wrong: got %v want %v", p95, want)
	}
}

func BenchmarkEvaluatorSolve(b *testing.B) {
	a := Analytic{Lambda: 20000, Servers: 8, SvcMean: 0.0003, SvcCV: 0.7, ArrivalCV: 2.8, IntervalS: 1}
	var ev Evaluator
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Init(a)
		ev.SojournQuantile(0.95)
		ev.SojournCDF(0.010)
	}
}

func BenchmarkCacheSolveHit(b *testing.B) {
	a := Analytic{Lambda: 20000, Servers: 8, SvcMean: 0.0003, SvcCV: 0.7, ArrivalCV: 2.8, IntervalS: 1}
	c := NewCache()
	var ev Evaluator
	c.Solve(a, 0.95, 0.010, &ev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Solve(a, 0.95, 0.010, &ev)
	}
}

// BenchmarkReferenceSolve measures the pre-Evaluator cost of the same
// two questions a node step asks, for speedup bookkeeping.
func BenchmarkReferenceSolve(b *testing.B) {
	a := Analytic{Lambda: 20000, Servers: 8, SvcMean: 0.0003, SvcCV: 0.7, ArrivalCV: 2.8, IntervalS: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		referenceSojournQuantile(a, 0.95)
		referenceSojournCDF(a, 0.010)
	}
}
