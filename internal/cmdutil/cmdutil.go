// Package cmdutil is the flag surface the sturgeon binaries share:
// every command (cmd/bench, cmd/repro, cmd/sturgeond) takes -seed,
// -json and -version with one spelling and one meaning, registered
// through here instead of hand-rolled per binary.
package cmdutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// version marks source builds; release builds stamp it via
// -ldflags "-X sturgeon/internal/cmdutil.version=v1.2.3".
var version = "dev"

// Common carries the parsed shared flags.
type Common struct {
	// Seed is the deterministic base seed (-seed).
	Seed int64
	// JSON requests machine-readable output instead of text tables
	// (-json).
	JSON bool

	showVersion bool
}

// Register installs the shared flags on the default flag set. Binaries
// register their own flags around it, then call Parse.
func Register(defaultSeed int64) *Common {
	c := &Common{}
	flag.Int64Var(&c.Seed, "seed", defaultSeed, "deterministic base seed")
	flag.BoolVar(&c.JSON, "json", false, "emit machine-readable JSON instead of text output")
	flag.BoolVar(&c.showVersion, "version", false, "print version and exit")
	return c
}

// Parse parses the command line and handles -version (print and exit 0).
func (c *Common) Parse() {
	flag.Parse()
	if c.showVersion {
		fmt.Printf("%s %s %s %s/%s\n", filepath.Base(os.Args[0]), version,
			runtime.Version(), runtime.GOOS, runtime.GOARCH)
		os.Exit(0)
	}
}
