package cmdutil

import (
	"flag"
	"os"
	"testing"
)

// withFreshFlags swaps in an empty default flag set and scripted args,
// restoring both afterwards — Register installs onto flag.CommandLine.
func withFreshFlags(t *testing.T, args []string, fn func()) {
	t.Helper()
	oldFS, oldArgs := flag.CommandLine, os.Args
	defer func() { flag.CommandLine, os.Args = oldFS, oldArgs }()
	flag.CommandLine = flag.NewFlagSet(args[0], flag.ContinueOnError)
	os.Args = args
	fn()
}

func TestCommonFlagDefaults(t *testing.T) {
	withFreshFlags(t, []string{"bin"}, func() {
		c := Register(42)
		c.Parse()
		if c.Seed != 42 {
			t.Errorf("default seed %d, want 42", c.Seed)
		}
		if c.JSON {
			t.Error("JSON defaulted on")
		}
	})
}

func TestCommonFlagParsing(t *testing.T) {
	withFreshFlags(t, []string{"bin", "-seed", "7", "-json"}, func() {
		c := Register(42)
		c.Parse()
		if c.Seed != 7 {
			t.Errorf("seed %d, want 7", c.Seed)
		}
		if !c.JSON {
			t.Error("-json not parsed")
		}
	})
}

func TestCommonComposesWithLocalFlags(t *testing.T) {
	withFreshFlags(t, []string{"bin", "-extra", "x", "-seed", "9"}, func() {
		extra := flag.String("extra", "", "binary-specific flag")
		c := Register(1)
		c.Parse()
		if *extra != "x" || c.Seed != 9 {
			t.Errorf("extra %q seed %d, want x and 9", *extra, c.Seed)
		}
	})
}
