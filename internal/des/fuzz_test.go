package des

import "testing"

// FuzzEventOrdering decodes arbitrary bytes into a schedule/pop
// operation sequence and checks the queue against the sort-based
// reference model from des_test.go: stable (Step, Node, Kind) pop
// order, exact-match coalescing, and no lost or duplicated wake-ups.
// Each byte encodes one operation: the low bit selects schedule vs
// pop, the remaining bits parameterize it, so the fuzzer mutates whole
// operation sequences byte-by-byte.
func FuzzEventOrdering(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x02, 0x04, 0x01})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x00, 0x00, 0x01, 0x81})
	f.Add([]byte{0x10, 0x10, 0x10, 0x11}) // duplicate schedules, then a pop
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096] // keep fuzz iterations fast
		}
		q := NewQueue()
		ref := newRef()
		scheduled, popped := 0, 0
		for _, b := range ops {
			if b&1 == 0 {
				e := Event{
					Step: int(b>>1) & 0x0f,
					Node: int(b>>5)&0x07 - 1, // -1 == Global
					Kind: Kind(int(b>>2) % numKinds),
				}
				gotNew, wantNew := q.Schedule(e), ref.schedule(e)
				if gotNew != wantNew {
					t.Fatalf("Schedule(%+v) new=%v, reference says %v", e, gotNew, wantNew)
				}
				if gotNew {
					scheduled++
				}
			} else {
				step := int(b >> 1)
				got := q.PopThrough(step, nil)
				want := ref.popThrough(step)
				if len(got) != len(want) {
					t.Fatalf("PopThrough(%d) returned %d events, want %d", step, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("PopThrough(%d)[%d] = %+v, want %+v", step, i, got[i], want[i])
					}
					if got[i].Step > step {
						t.Fatalf("popped future event %+v at step %d", got[i], step)
					}
					if i > 0 && !got[i-1].Less(got[i]) {
						t.Fatalf("pop order violated: %+v before %+v", got[i-1], got[i])
					}
				}
				popped += len(got)
			}
		}
		popped += len(q.PopThrough(1<<30, nil))
		if popped != scheduled {
			t.Fatalf("scheduled %d unique events but popped %d (lost or duplicated wake-ups)", scheduled, popped)
		}
		if q.Len() != 0 {
			t.Fatalf("queue not empty after drain: %d left", q.Len())
		}
	})
}
