package des

import (
	"math/rand"
	"sort"
	"testing"
)

// refModel is the trivially correct reference: a deduplicating set
// popped by sorting. The queue must agree with it on every operation
// sequence.
type refModel struct {
	set map[Event]struct{}
}

func newRef() *refModel { return &refModel{set: make(map[Event]struct{})} }

func (r *refModel) schedule(e Event) bool {
	if _, dup := r.set[e]; dup {
		return false
	}
	r.set[e] = struct{}{}
	return true
}

func (r *refModel) popThrough(step int) []Event {
	var out []Event
	for e := range r.set {
		if e.Step <= step {
			out = append(out, e)
		}
	}
	for _, e := range out {
		delete(r.set, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func randomEvent(rng *rand.Rand) Event {
	node := rng.Intn(6) - 1 // includes Global
	return Event{Step: rng.Intn(20), Node: node, Kind: Kind(rng.Intn(numKinds))}
}

// TestQueueStableOrderProperty drives seeded-random schedule/pop
// sequences against the reference model: the pop order must be the
// stable (Step, Node, Kind) total order, with no event lost,
// duplicated, or popped early.
func TestQueueStableOrderProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := NewQueue()
		ref := newRef()
		scheduled, popped := 0, 0
		for op := 0; op < 400; op++ {
			if rng.Float64() < 0.7 {
				e := randomEvent(rng)
				gotNew, wantNew := q.Schedule(e), ref.schedule(e)
				if gotNew != wantNew {
					t.Fatalf("seed %d: Schedule(%+v) new=%v, reference says %v", seed, e, gotNew, wantNew)
				}
				if gotNew {
					scheduled++
				}
			} else {
				step := rng.Intn(20)
				got := q.PopThrough(step, nil)
				want := ref.popThrough(step)
				if len(got) != len(want) {
					t.Fatalf("seed %d: PopThrough(%d) returned %d events, want %d\n got=%v\nwant=%v",
						seed, step, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d: PopThrough(%d)[%d] = %+v, want %+v", seed, step, i, got[i], want[i])
					}
					if got[i].Step > step {
						t.Fatalf("seed %d: popped future event %+v at step %d", seed, got[i], step)
					}
				}
				popped += len(got)
			}
		}
		// Drain: everything scheduled pops exactly once.
		rest := q.PopThrough(1<<30, nil)
		popped += len(rest)
		if popped != scheduled {
			t.Fatalf("seed %d: scheduled %d unique events but popped %d (lost or duplicated wake-ups)",
				seed, scheduled, popped)
		}
		if q.Popped() != popped {
			t.Fatalf("seed %d: Popped() = %d, want %d", seed, q.Popped(), popped)
		}
		if q.Len() != 0 {
			t.Fatalf("seed %d: queue not empty after drain: %d left", seed, q.Len())
		}
	}
}

// TestQueueCoalescesDuplicates pins the no-duplicated-wake-ups half of
// the contract directly: scheduling the same event many times fires it
// once.
func TestQueueCoalescesDuplicates(t *testing.T) {
	q := NewQueue()
	e := Event{Step: 3, Node: 1, Kind: KindFault}
	if !q.Schedule(e) {
		t.Fatal("first Schedule reported duplicate")
	}
	for i := 0; i < 5; i++ {
		if q.Schedule(e) {
			t.Fatal("duplicate Schedule reported new")
		}
	}
	if got := q.PopThrough(10, nil); len(got) != 1 || got[0] != e {
		t.Fatalf("PopThrough = %v, want exactly [%+v]", got, e)
	}
	// Re-scheduling after the pop is a fresh wake-up again.
	if !q.Schedule(e) {
		t.Fatal("re-Schedule after pop reported duplicate")
	}
}

// TestQueueOrderWithinStep pins the intra-step order: global events
// first, then nodes ascending, kinds ascending within a node.
func TestQueueOrderWithinStep(t *testing.T) {
	q := NewQueue()
	evs := []Event{
		{Step: 5, Node: 2, Kind: KindSettle},
		{Step: 5, Node: Global, Kind: KindEpoch},
		{Step: 5, Node: 0, Kind: KindHealth},
		{Step: 5, Node: 0, Kind: KindFault},
		{Step: 5, Node: Global, Kind: KindTrace},
		{Step: 4, Node: 9, Kind: KindSettle},
	}
	for _, e := range evs {
		q.Schedule(e)
	}
	got := q.PopThrough(5, nil)
	want := []Event{
		{Step: 4, Node: 9, Kind: KindSettle},
		{Step: 5, Node: Global, Kind: KindTrace},
		{Step: 5, Node: Global, Kind: KindEpoch},
		{Step: 5, Node: 0, Kind: KindFault},
		{Step: 5, Node: 0, Kind: KindHealth},
		{Step: 5, Node: 2, Kind: KindSettle},
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pop[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestQueuePopThroughLeavesFuture verifies PopThrough never pops past
// its bound and NextStep tracks the earliest survivor.
func TestQueuePopThroughLeavesFuture(t *testing.T) {
	q := NewQueue()
	q.Schedule(Event{Step: 1, Node: 0, Kind: KindSettle})
	q.Schedule(Event{Step: 7, Node: 0, Kind: KindFault})
	if got := q.PopThrough(3, nil); len(got) != 1 || got[0].Step != 1 {
		t.Fatalf("PopThrough(3) = %v, want the step-1 event only", got)
	}
	step, ok := q.NextStep()
	if !ok || step != 7 {
		t.Fatalf("NextStep = %d,%v, want 7,true", step, ok)
	}
}
