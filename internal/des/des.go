// Package des provides the deterministic discrete-event core behind the
// cluster simulator's event-driven stepping engine (cluster.EngineEvent).
// It is deliberately small: a stable-ordered wake-up queue over integer
// simulation steps. The engine's correctness argument (DESIGN.md §13)
// rests on two properties this package pins with property and fuzz
// tests:
//
//   - Stable total order. Events pop in (Step, Node, Kind) order no
//     matter the insertion order, so two runs that schedule the same
//     event set — in whatever order their control flow happens to
//     discover it — process wake-ups identically.
//   - No lost or duplicated wake-ups. Scheduling an event that is
//     already pending coalesces into one wake-up; every scheduled event
//     is popped exactly once.
//
// Wake-ups are conservative: an extra event costs one unnecessary
// per-second evaluation, while a missing event silently skips work a
// per-second engine would have done. The queue therefore never drops
// events on its own — deduplication is exact-match only.
package des

import "container/heap"

// Kind discriminates why a wake-up was scheduled. Within one (Step,
// Node) the kinds process in declaration order; the engine treats them
// uniformly (any event forces the node — or with Node == Global, the
// whole fleet — to be evaluated at Step), so the kind mainly serves
// observability and the equivalence battery's broken-scheduler stubs.
type Kind uint8

const (
	// KindSettle re-steps a node that is not yet at a fixed point.
	KindSettle Kind = iota
	// KindFault wakes a node at a fault-plan activity edge.
	KindFault
	// KindHealth wakes a node at a scheduled failure-detector
	// transition (eviction or backoff re-admission).
	KindHealth
	// KindTrace is a global workload inflection: the offered-load trace
	// may change value at this step.
	KindTrace
	// KindEpoch is a global coordinator epoch boundary.
	KindEpoch
	// KindPlacement is a global placement-planner epoch boundary: the
	// migration planner may move BE jobs between nodes at this step.
	KindPlacement
	// KindLease wakes a node whose cap lease is in degraded-mode ratchet:
	// the node's effective cap moves every simulated second while it
	// descends toward its lease floor, so a quiescent node must still be
	// re-evaluated each second until the ratchet lands.
	KindLease

	numKinds = 7
)

var kindNames = [numKinds]string{"settle", "fault", "health", "trace", "epoch", "placement", "lease"}

// String names the kind for logs and test failures.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Global is the Node value of fleet-wide events (trace inflections,
// coordinator epochs). It sorts before every real node index, so global
// events of a step pop first.
const Global = -1

// Event is one scheduled wake-up: at simulation step Step, node Node
// (or the whole fleet, when Node == Global) must be evaluated for
// reason Kind.
type Event struct {
	Step int
	Node int
	Kind Kind
}

// Less is the queue's stable total order: by step, then node index
// (Global first), then kind.
func (e Event) Less(o Event) bool {
	if e.Step != o.Step {
		return e.Step < o.Step
	}
	if e.Node != o.Node {
		return e.Node < o.Node
	}
	return e.Kind < o.Kind
}

// Queue is a deterministic wake-up queue. The zero value is not ready;
// use NewQueue. Not safe for concurrent use — the engine schedules and
// pops only from its serial section.
type Queue struct {
	h       eventHeap
	pending map[Event]struct{}
	popped  int
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{pending: make(map[Event]struct{})}
}

// Schedule adds a wake-up. Scheduling an event that is already pending
// coalesces (the wake-up fires once); Schedule reports whether the
// event was newly added.
func (q *Queue) Schedule(e Event) bool {
	if _, dup := q.pending[e]; dup {
		return false
	}
	q.pending[e] = struct{}{}
	heap.Push(&q.h, e)
	return true
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Popped returns the number of events popped so far (the engine's
// wake-up counter).
func (q *Queue) Popped() int { return q.popped }

// NextStep returns the step of the earliest pending event, and whether
// any event is pending.
func (q *Queue) NextStep() (int, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].Step, true
}

// PopThrough removes and returns, in stable order, every pending event
// with Step <= step. The returned slice is appended to buf (pass nil or
// a reused scratch slice).
func (q *Queue) PopThrough(step int, buf []Event) []Event {
	for len(q.h) > 0 && q.h[0].Step <= step {
		e := heap.Pop(&q.h).(Event)
		delete(q.pending, e)
		q.popped++
		buf = append(buf, e)
	}
	return buf
}

// eventHeap is a min-heap on Event.Less.
type eventHeap []Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].Less(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
