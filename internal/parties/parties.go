// Package parties implements the enhanced PARTIES baseline the paper
// compares against (§VII-A). PARTIES (Chen, Delimitrou, Martínez —
// ASPLOS'19) is a feedback controller: each interval it adjusts one type
// of resource by one unit in the direction the latency slack indicates
// and watches the next interval's latency as feedback, rotating to
// another resource type when the adjustment did not help.
//
// The original controller is power-unaware; following the paper's
// enhancement, when an adjustment overloads the power budget the
// controller reverts it and tries another resource type. Because that
// revert-and-retry needs several feedback iterations, transient overloads
// still slip through — exactly the behaviour §VII-B reports (7 of 18
// pairs overload before convergence).
package parties

import (
	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// resType is one adjustable resource dimension.
type resType int

const (
	resCores resType = iota
	resCache
	resFreq // shift frequency between the co-runners
	numRes
)

func (r resType) String() string {
	switch r {
	case resCores:
		return "cores"
	case resCache:
		return "cache"
	default:
		return "freq"
	}
}

// Controller is the enhanced-PARTIES policy.
type Controller struct {
	Spec   hw.Spec
	Budget power.Watts
	// Alpha and Beta are the slack bounds (defaults 0.10/0.20, matching
	// the Sturgeon configuration so the comparison is fair).
	Alpha, Beta float64

	cur      resType
	lastP95  float64
	lastMove struct {
		res    resType
		amount int // +1 = toward LS, −1 = toward BE
		valid  bool
	}
	initialized bool
	// cooldown blocks downsizing for a few intervals after a violation so
	// the controller does not immediately re-enter the configuration it
	// just escaped (PARTIES waits for the system to stabilize between
	// adjustments).
	cooldown int
}

// New builds the baseline controller.
func New(spec hw.Spec, budget power.Watts) *Controller {
	return &Controller{Spec: spec, Budget: budget, Alpha: 0.10, Beta: 0.20}
}

// Name identifies the policy.
func (c *Controller) Name() string { return "parties" }

// Decide performs one feedback step.
func (c *Controller) Decide(obs control.Observation) hw.Config {
	cfg := obs.Config
	slack := obs.Slack()

	// Power enhancement: an overload reverts the move that (presumably)
	// caused it and rotates to another resource; with nothing to revert
	// it throttles the BE frequency one step.
	if obs.Overloaded() {
		if c.lastMove.valid {
			next, ok := apply(c.Spec, cfg, c.lastMove.res, -c.lastMove.amount)
			c.lastMove.valid = false
			c.rotate()
			if ok {
				c.lastP95 = obs.P95
				return next
			}
		}
		if next, ok := shiftBE(c.Spec, cfg, -1); ok {
			c.lastP95 = obs.P95
			return next
		}
		// BE already at the frequency floor: PARTIES has no further power
		// actuator (the paper's point — its feedback loop can be cornered
		// above the budget). Fall through to the latency logic so QoS at
		// least keeps being defended.
	}

	defer func() { c.lastP95 = obs.P95; c.initialized = true }()

	switch {
	case slack < c.Alpha:
		// Upsizing: if the previous upsize of this resource type did not
		// shorten the latency, rotate to another type (the PARTIES
		// feedback rule). An outright violation (negative slack) ramps
		// several units at once — the FSM's fast lane.
		c.cooldown = 8
		if c.initialized && c.lastMove.valid && c.lastMove.amount > 0 && obs.P95 >= c.lastP95 {
			// The previous upsize of this resource did not shorten the
			// latency: give it back and rotate to another type — the
			// PARTIES FSM's "adjust, observe, revert if unhelpful" rule.
			if reverted, ok := apply(c.Spec, cfg, c.lastMove.res, -1); ok {
				cfg = reverted
			}
			c.rotate()
		}
		units := 1
		if slack < 0 {
			units = 1 + min(3, int(-slack*2))
		}
		next := cfg
		applied := 0
		for i := 0; i < units; i++ {
			n, ok := apply(c.Spec, next, c.cur, +1)
			if !ok {
				c.rotate()
				n, ok = apply(c.Spec, next, c.cur, +1)
				if !ok {
					c.rotate()
					n, ok = apply(c.Spec, next, c.cur, +1)
				}
			}
			if !ok {
				break
			}
			next = n
			applied++
		}
		if applied == 0 {
			return cfg
		}
		c.lastMove.res, c.lastMove.amount, c.lastMove.valid = c.cur, +1, true
		return next

	case slack > c.Beta && c.cooldown > 0:
		c.cooldown--
		c.lastMove.valid = false
		return cfg

	case slack > c.Beta:
		// Downsizing: release one unit of the current resource to the BE
		// application. If the release turns out excessive the next
		// interval's slack < Alpha branch will take it back.
		next, ok := apply(c.Spec, cfg, c.cur, -1)
		if !ok {
			c.rotate()
			next, _ = apply(c.Spec, cfg, c.cur, -1)
		}
		c.lastMove.res, c.lastMove.amount, c.lastMove.valid = c.cur, -1, true
		// Spread releases across resource types so the BE application
		// receives cores, cache and frequency alike.
		c.rotate()
		return next

	default:
		c.lastMove.valid = false
		return cfg
	}
}

func (c *Controller) rotate() { c.cur = (c.cur + 1) % numRes }

// apply moves one unit of a resource toward the LS service (dir = +1) or
// toward the BE application (dir = −1). It reports false when the move is
// not realizable.
func apply(spec hw.Spec, cfg hw.Config, r resType, dir int) (hw.Config, bool) {
	switch r {
	case resCores:
		if dir > 0 && cfg.BE.Cores <= 1 {
			return cfg, false
		}
		if dir < 0 && cfg.LS.Cores <= 1 {
			return cfg, false
		}
		cfg.LS.Cores += dir
		cfg.BE.Cores -= dir
	case resCache:
		if dir > 0 && cfg.BE.LLCWays <= 1 {
			return cfg, false
		}
		if dir < 0 && cfg.LS.LLCWays <= 1 {
			return cfg, false
		}
		cfg.LS.LLCWays += dir
		cfg.BE.LLCWays -= dir
	default:
		lsLvl := spec.LevelOfFreq(cfg.LS.Freq)
		beLvl := spec.LevelOfFreq(cfg.BE.Freq)
		maxLvl := spec.NumFreqLevels() - 1
		if dir > 0 && (lsLvl >= maxLvl || beLvl <= 0) {
			return cfg, false
		}
		if dir < 0 && (lsLvl <= 0 || beLvl >= maxLvl) {
			return cfg, false
		}
		cfg.LS.Freq = spec.FreqAtLevel(lsLvl + dir)
		cfg.BE.Freq = spec.FreqAtLevel(beLvl - dir)
	}
	if cfg.Validate(spec) != nil {
		return cfg, false
	}
	return cfg, true
}

// shiftBE moves the BE frequency by n levels.
func shiftBE(spec hw.Spec, cfg hw.Config, n int) (hw.Config, bool) {
	lvl := spec.LevelOfFreq(cfg.BE.Freq) + n
	if lvl < 0 {
		lvl = 0
	}
	if max := spec.NumFreqLevels() - 1; lvl > max {
		lvl = max
	}
	if spec.FreqAtLevel(lvl) == cfg.BE.Freq {
		return cfg, false
	}
	cfg.BE.Freq = spec.FreqAtLevel(lvl)
	return cfg, true
}
