package parties

import (
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

func TestUpsizeOnLowSlack(t *testing.T) {
	spec := hw.DefaultSpec()
	c := New(spec, 120)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}
	obs := control.Observation{
		P95: 0.0098, Target: 0.010, // slack < 0.1
		Power: 90, Budget: 120, Config: cfg, QPS: 1000,
	}
	next := c.Decide(obs)
	if next == cfg {
		t.Fatal("PARTIES held despite low slack")
	}
	// One unit of one resource moved toward LS.
	dc := next.LS.Cores - cfg.LS.Cores
	dw := next.LS.LLCWays - cfg.LS.LLCWays
	df := spec.LevelOfFreq(next.LS.Freq) - spec.LevelOfFreq(cfg.LS.Freq)
	if dc+dw+df != 1 {
		t.Errorf("expected a single-unit upsize, got %v -> %v", cfg, next)
	}
}

func TestDownsizeOnHighSlack(t *testing.T) {
	spec := hw.DefaultSpec()
	c := New(spec, 120)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}
	obs := control.Observation{
		P95: 0.001, Target: 0.010, // slack = 0.9 > β
		Power: 90, Budget: 120, Config: cfg, QPS: 1000,
	}
	next := c.Decide(obs)
	if next == cfg {
		t.Fatal("PARTIES held despite high slack")
	}
	gained := (cfg.LS.Cores - next.LS.Cores) + (cfg.LS.LLCWays - next.LS.LLCWays) +
		(spec.LevelOfFreq(cfg.LS.Freq) - spec.LevelOfFreq(next.LS.Freq))
	if gained != 1 {
		t.Errorf("expected a single-unit downsize, got %v -> %v", cfg, next)
	}
}

func TestHoldInBand(t *testing.T) {
	spec := hw.DefaultSpec()
	c := New(spec, 120)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}
	obs := control.Observation{
		P95: 0.0085, Target: 0.010, // slack 0.15 ∈ [α, β]
		Power: 90, Budget: 120, Config: cfg, QPS: 1000,
	}
	if next := c.Decide(obs); next != cfg {
		t.Errorf("PARTIES moved in band: %v", next)
	}
}

func TestPowerEnhancementRevertsOnOverload(t *testing.T) {
	spec := hw.DefaultSpec()
	c := New(spec, 100)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}
	// First a downsize (high slack) so there is a last move to revert.
	obs := control.Observation{
		P95: 0.001, Target: 0.010, Power: 90, Budget: 100, Config: cfg, QPS: 1000,
	}
	after := c.Decide(obs)
	// Now an overload: the controller must not keep the move.
	obs2 := control.Observation{
		P95: 0.001, Target: 0.010, Power: 110, Budget: 100, Config: after, QPS: 1000,
	}
	reverted := c.Decide(obs2)
	if reverted == after {
		t.Error("PARTIES did not react to overload")
	}
}

func TestOverloadWithNothingToRevertThrottlesBE(t *testing.T) {
	spec := hw.DefaultSpec()
	c := New(spec, 100)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.8, LLCWays: 12},
	}
	obs := control.Observation{
		P95: 0.0085, Target: 0.010, Power: 110, Budget: 100, Config: cfg, QPS: 1000,
	}
	next := c.Decide(obs)
	if next.BE.Freq >= cfg.BE.Freq {
		t.Errorf("expected BE throttle, got %v -> %v", cfg, next)
	}
}

func TestPartiesEndToEndKeepsQoS(t *testing.T) {
	ls, be := workload.Memcached(), workload.Raytrace()
	node := sim.NewNode(ls, be, 31)
	budget := sim.LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls)
	ctrl := New(node.Spec, budget)
	if err := node.Apply(hw.SoloLS(node.Spec)); err != nil {
		t.Fatal(err)
	}
	r := sim.Runner{
		Node: node, Ctrl: ctrl, Budget: budget,
		Trace: workload.Triangle(0.2, 0.8, 400), DurationS: 400,
	}
	res := r.Run()
	if res.QoSRate < 0.90 {
		t.Errorf("PARTIES QoS rate %v collapsed", res.QoSRate)
	}
	if res.NormBEThroughput <= 0.05 {
		t.Errorf("PARTIES starved the BE application: %v", res.NormBEThroughput)
	}
}

func TestRotationCoversAllResources(t *testing.T) {
	c := &Controller{}
	seen := map[resType]bool{}
	for i := 0; i < 4; i++ {
		seen[c.cur] = true
		c.rotate()
	}
	if len(seen) != int(numRes) {
		t.Errorf("rotation covered %d of %d resources", len(seen), numRes)
	}
}
