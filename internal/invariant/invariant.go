// Package invariant is the partition-safety checker for the fleet
// control plane. Sturgeon's one unforgivable failure is budget
// over-subscription while the control plane misbehaves, so the cluster
// engines wire a Checker into their serial merge and feed it every
// simulated second — mid-partition, mid-ratchet, mid-recovery — plus
// the coordinator's ground-truth status at every reachable epoch
// boundary. The checker is strictly read-only: it never perturbs the
// run (violations are reported out of band, not through Result), so an
// instrumented run stays byte-identical to an unchecked one.
//
// Invariants asserted:
//
//   - No node above its lease: a node's effective cap never exceeds
//     the cap of the last grant it accepted.
//   - Degraded deadline: a degraded node is at (or under) its lease
//     floor by the lease expiry.
//   - Budget with bounded slack: Σ(node effective caps) ≤ budget +
//     Σ(per-node in-flight slack), where a node's slack is the watts it
//     verifiably holds above the coordinator's current book — grants
//     the coordinator has already reclaimed or re-arbitrated but the
//     node has not heard about yet. The slack term is itself bounded by
//     the lease checks above, and drains to zero by each lease expiry.
//   - Conservation at the coordinator: Σ(server-side caps) + pool ≤
//     budget at every observed status.
//   - Monotone epochs: the coordinator's epoch and every node's
//     last-reported epoch never move backwards.
package invariant

import (
	"fmt"
	"math"

	"sturgeon/internal/coordinator"
)

// NodeView is one node's state as the cluster runtime sees it at a
// simulated second.
type NodeView struct {
	// ID is the node id as the coordinator knows it ("node-003").
	ID string
	// EffCapW is the cap actually in force on the node this second.
	EffCapW float64
	// LeaseCapW is the cap of the last grant the node accepted (0
	// before any grant: the boot-time static cap governs and only the
	// budget-sum check applies).
	LeaseCapW float64
	// FloorW is the lease floor; Degraded whether the node is in
	// autonomous degraded mode; ExpiresAtS the lease deadline in
	// simulated seconds.
	FloorW     float64
	Degraded   bool
	ExpiresAtS float64
}

// Checker accumulates invariant checks over one run. The zero value is
// not ready; use New. Not safe for concurrent use — both engines call
// it from their serial merge only.
type Checker struct {
	budgetW float64
	tolW    float64
	maxKeep int

	coordCapW  map[string]float64
	haveStatus bool
	lastEpoch  int
	nodeEpochs map[string]int

	checks      int
	violations  []string
	dropped     int
	maxSumCapsW float64
	maxExcessW  float64
}

// New builds a checker for the given fleet budget. keep bounds the
// retained violation strings (<=0 defaults to 16; further violations
// are counted, not stored).
func New(budgetW float64, keep int) *Checker {
	if keep <= 0 {
		keep = 16
	}
	return &Checker{
		budgetW:    budgetW,
		tolW:       1e-6 * math.Max(1, budgetW),
		maxKeep:    keep,
		coordCapW:  map[string]float64{},
		nodeEpochs: map[string]int{},
	}
}

func (k *Checker) violate(format string, args ...any) {
	if len(k.violations) < k.maxKeep {
		k.violations = append(k.violations, fmt.Sprintf(format, args...))
		return
	}
	k.dropped++
}

// CheckSecond asserts the per-second invariants over the fleet view at
// simulated second t.
func (k *Checker) CheckSecond(t float64, nodes []NodeView) {
	k.checks++
	sum, slack := 0.0, 0.0
	for _, n := range nodes {
		sum += n.EffCapW
		if n.LeaseCapW > 0 {
			if n.EffCapW > n.LeaseCapW+k.tolW {
				k.violate("t=%.0f %s: effective cap %.3f W above lease %.3f W",
					t, n.ID, n.EffCapW, n.LeaseCapW)
			}
			if n.Degraded && t >= n.ExpiresAtS {
				floor := math.Min(n.LeaseCapW, n.FloorW)
				if n.EffCapW > floor+k.tolW {
					k.violate("t=%.0f %s: degraded cap %.3f W above floor %.3f W past expiry %.0f",
						t, n.ID, n.EffCapW, floor, n.ExpiresAtS)
				}
			}
		}
		if k.haveStatus {
			if coordW, ok := k.coordCapW[n.ID]; ok {
				// Watts the node holds above the coordinator's current
				// book are in flight: already reclaimed or re-arbitrated
				// server-side, not yet heard node-side. The lease checks
				// bound them; they drain by the lease expiry.
				if d := n.EffCapW - coordW; d > 0 {
					slack += d
				}
			}
		}
	}
	if sum > k.maxSumCapsW {
		k.maxSumCapsW = sum
	}
	if ex := sum - k.budgetW; ex > k.maxExcessW {
		k.maxExcessW = ex
	}
	if sum > k.budgetW+slack+k.tolW {
		k.violate("t=%.0f: Σ effective caps %.3f W exceeds budget %.3f W + in-flight slack %.3f W",
			t, sum, k.budgetW, slack)
	}
}

// ObserveStatus asserts the coordinator-side invariants against a
// ground-truth status fetch at simulated second t and records the
// server-side caps the budget check's slack term is measured against.
func (k *Checker) ObserveStatus(t float64, st *coordinator.FleetStatus) {
	if st == nil {
		return
	}
	k.checks++
	if err := st.Validate(); err != nil {
		k.violate("t=%.0f: coordinator status invalid: %v", t, err)
		return
	}
	if st.Epoch < k.lastEpoch {
		k.violate("t=%.0f: coordinator epoch moved backwards: %d after %d", t, st.Epoch, k.lastEpoch)
	}
	k.lastEpoch = st.Epoch
	sum := st.PoolW
	for _, n := range st.Nodes {
		sum += n.CapW
		if last, ok := k.nodeEpochs[n.NodeID]; ok && n.LastEpoch < last {
			k.violate("t=%.0f %s: node epoch moved backwards: %d after %d", t, n.NodeID, n.LastEpoch, last)
		}
		k.nodeEpochs[n.NodeID] = n.LastEpoch
		k.coordCapW[n.NodeID] = n.CapW
	}
	if len(st.Nodes) > 0 && sum > k.budgetW+k.tolW {
		k.violate("t=%.0f: coordinator caps+pool %.3f W exceed budget %.3f W", t, sum, k.budgetW)
	}
	k.haveStatus = true
}

// Checks returns how many check calls ran (seconds + status fetches).
func (k *Checker) Checks() int { return k.checks }

// Violations returns the retained violation strings (nil when every
// invariant held).
func (k *Checker) Violations() []string { return k.violations }

// DroppedViolations counts violations past the retention bound.
func (k *Checker) DroppedViolations() int { return k.dropped }

// MaxSumCapsW returns the largest Σ(node effective caps) observed, and
// MaxExcessW the largest strict overshoot above the budget (≤ 0 means
// the fleet never exceeded the budget even transiently).
func (k *Checker) MaxSumCapsW() float64 { return k.maxSumCapsW }
func (k *Checker) MaxExcessW() float64  { return k.maxExcessW }
