package hw

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConfigString(t *testing.T) {
	c := Config{
		LS: Alloc{Cores: 8, Freq: 1.2, LLCWays: 7},
		BE: Alloc{Cores: 12, Freq: 2.2, LLCWays: 13},
	}
	want := "<8C, 1.2F, 7L; 12C, 2.2F, 13L>"
	if got := c.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	s := DefaultSpec()
	ok := Config{
		LS: Alloc{Cores: 4, Freq: 1.6, LLCWays: 6},
		BE: Alloc{Cores: 16, Freq: 1.8, LLCWays: 14},
	}
	if err := ok.Validate(s); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}

	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			"core oversubscription",
			Config{LS: Alloc{12, 1.6, 6}, BE: Alloc{12, 1.8, 14}},
			"cores",
		},
		{
			"way oversubscription",
			Config{LS: Alloc{4, 1.6, 12}, BE: Alloc{16, 1.8, 12}},
			"ways",
		},
		{
			"frequency out of range",
			Config{LS: Alloc{4, 3.6, 6}, BE: Alloc{16, 1.8, 14}},
			"frequency",
		},
		{
			"negative cores",
			Config{LS: Alloc{-1, 1.6, 6}, BE: Alloc{16, 1.8, 14}},
			"cores",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate(s)
			if err == nil {
				t.Fatalf("Validate accepted %v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSoloConfigs(t *testing.T) {
	s := DefaultSpec()
	ls := SoloLS(s)
	if err := ls.Validate(s); err != nil {
		t.Errorf("SoloLS invalid: %v", err)
	}
	if ls.LS.Cores != s.Cores || ls.LS.LLCWays != s.LLCWays || ls.LS.Freq != s.FreqMax {
		t.Errorf("SoloLS = %v, want all resources at max frequency", ls)
	}
	be := SoloBE(s)
	if err := be.Validate(s); err != nil {
		t.Errorf("SoloBE invalid: %v", err)
	}
	if be.BE.Cores != s.Cores || be.BE.LLCWays != s.LLCWays {
		t.Errorf("SoloBE = %v, want all resources on the BE side", be)
	}
}

func TestComplement(t *testing.T) {
	s := DefaultSpec()
	cfg := Complement(s, Alloc{Cores: 4, Freq: 1.6, LLCWays: 6}, 1.8)
	if cfg.BE.Cores != 16 || cfg.BE.LLCWays != 14 || cfg.BE.Freq != 1.8 {
		t.Errorf("Complement = %v, want <16C, 1.8F, 14L> on BE side", cfg)
	}
	if err := cfg.Validate(s); err != nil {
		t.Errorf("Complement produced invalid config: %v", err)
	}
}

func TestEnumerateConfigsAllValidAndExhaustive(t *testing.T) {
	s := Spec{Cores: 4, FreqMin: 1.0, FreqMax: 1.2, FreqStep: 0.1, LLCWays: 3, LLCSizeMB: 6}
	n := 0
	EnumerateConfigs(s, func(c Config) bool {
		n++
		if err := c.Validate(s); err != nil {
			t.Fatalf("enumerated invalid config %v: %v", c, err)
		}
		if c.LS.Cores+c.BE.Cores != s.Cores {
			t.Fatalf("config %v does not partition all cores", c)
		}
		if c.LS.LLCWays+c.BE.LLCWays != s.LLCWays {
			t.Fatalf("config %v does not partition all ways", c)
		}
		return true
	})
	// (Cores-1) C1 choices × (Ways-1) L1 choices × freqs².
	want := 3 * 2 * 3 * 3
	if n != want {
		t.Errorf("enumerated %d configs, want %d", n, want)
	}
}

func TestEnumerateConfigsEarlyStop(t *testing.T) {
	s := DefaultSpec()
	n := 0
	EnumerateConfigs(s, func(Config) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d configs, want 10", n)
	}
}

func TestComplementAlwaysPartitions(t *testing.T) {
	s := DefaultSpec()
	f := func(c, l, flvl uint8) bool {
		ls := Alloc{
			Cores:   int(c)%s.Cores + 0,
			Freq:    s.FreqAtLevel(int(flvl)),
			LLCWays: int(l) % s.LLCWays,
		}
		cfg := Complement(s, ls, s.FreqMax)
		return cfg.LS.Cores+cfg.BE.Cores == s.Cores &&
			cfg.LS.LLCWays+cfg.BE.LLCWays == s.LLCWays
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
