package hw

import "testing"

// FuzzConfigValidate throws arbitrary allocations at Validate and the
// frequency grid: no panics, and accepted configurations must partition
// within capacity.
func FuzzConfigValidate(f *testing.F) {
	f.Add(4, 16, 6, 14, 1.6, 1.8)
	f.Add(0, 0, 0, 0, 0.0, 0.0)
	f.Add(-3, 25, -1, 40, 9.9, -2.0)
	f.Fuzz(func(t *testing.T, c1, c2, l1, l2 int, f1, f2 float64) {
		s := DefaultSpec()
		cfg := Config{
			LS: Alloc{Cores: c1, Freq: GHz(f1), LLCWays: l1},
			BE: Alloc{Cores: c2, Freq: GHz(f2), LLCWays: l2},
		}
		err := cfg.Validate(s)
		if err == nil {
			if c1+c2 > s.Cores || l1+l2 > s.LLCWays || c1 < 0 || l1 < 0 {
				t.Fatalf("invalid config accepted: %v", cfg)
			}
		}
		// Grid operations must not panic on any input.
		_ = s.ClampFreq(GHz(f1))
		_ = s.LevelOfFreq(GHz(f2))
	})
}
