package hw_test

import (
	"fmt"

	"sturgeon/internal/hw"
)

// Configurations use the paper's <C1,F1,L1; C2,F2,L2> notation: the LS
// service's cores/frequency/LLC-ways, then the BE application's.
func ExampleConfig() {
	spec := hw.DefaultSpec()
	cfg := hw.Complement(spec, hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6}, 1.8)
	fmt.Println(cfg)
	fmt.Println("valid:", cfg.Validate(spec) == nil)
	// Output:
	// <4C, 1.6F, 6L; 16C, 1.8F, 14L>
	// valid: true
}

// The DVFS grid snaps arbitrary frequencies onto the platform's levels.
func ExampleSpec_ClampFreq() {
	spec := hw.DefaultSpec()
	fmt.Println(spec.ClampFreq(1.73))
	fmt.Println(spec.ClampFreq(9.9))
	// Output:
	// 1.7
	// 2.2
}
