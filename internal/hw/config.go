package hw

import (
	"fmt"
)

// Alloc is the resource share handed to one application: a number of
// dedicated logical cores running at a common frequency, plus a number of
// exclusively assigned LLC ways. It corresponds to one half of the paper's
// <C, F, L> notation.
type Alloc struct {
	Cores   int
	Freq    GHz
	LLCWays int
}

// String renders the allocation in the paper's "<8C, 1.2F, 7L>" style.
func (a Alloc) String() string {
	return fmt.Sprintf("<%dC, %.1fF, %dL>", a.Cores, float64(a.Freq), a.LLCWays)
}

// Validate reports whether the allocation fits within the spec on its own.
func (a Alloc) Validate(s Spec) error {
	switch {
	case a.Cores < 0 || a.Cores > s.Cores:
		return fmt.Errorf("hw: allocation of %d cores outside [0, %d]", a.Cores, s.Cores)
	case a.LLCWays < 0 || a.LLCWays > s.LLCWays:
		return fmt.Errorf("hw: allocation of %d LLC ways outside [0, %d]", a.LLCWays, s.LLCWays)
	case a.Cores > 0 && (a.Freq < s.FreqMin || a.Freq > s.FreqMax):
		return fmt.Errorf("hw: frequency %.2f GHz outside [%.2f, %.2f]", float64(a.Freq), float64(s.FreqMin), float64(s.FreqMax))
	}
	return nil
}

// Config is a complete co-location configuration
// <C1, F1, L1; C2, F2, L2>: the LS service's allocation followed by the BE
// application's allocation. Both allocations are exclusive partitions of
// the server (paper §III-C).
type Config struct {
	LS Alloc
	BE Alloc
}

// String renders the configuration in the paper's notation.
func (c Config) String() string {
	return fmt.Sprintf("<%dC, %.1fF, %dL; %dC, %.1fF, %dL>",
		c.LS.Cores, float64(c.LS.Freq), c.LS.LLCWays,
		c.BE.Cores, float64(c.BE.Freq), c.BE.LLCWays)
}

// Validate reports whether the two allocations individually fit the spec
// and jointly do not oversubscribe cores or LLC ways.
func (c Config) Validate(s Spec) error {
	if err := c.LS.Validate(s); err != nil {
		return fmt.Errorf("LS %v: %w", c.LS, err)
	}
	if err := c.BE.Validate(s); err != nil {
		return fmt.Errorf("BE %v: %w", c.BE, err)
	}
	if total := c.LS.Cores + c.BE.Cores; total > s.Cores {
		return fmt.Errorf("hw: config %v allocates %d cores, spec has %d", c, total, s.Cores)
	}
	if total := c.LS.LLCWays + c.BE.LLCWays; total > s.LLCWays {
		return fmt.Errorf("hw: config %v allocates %d LLC ways, spec has %d", c, total, s.LLCWays)
	}
	return nil
}

// SoloLS returns the configuration that hands every resource to the LS
// service at maximum frequency — the paper's initialization (Alg. 1 line 1).
func SoloLS(s Spec) Config {
	return Config{
		LS: Alloc{Cores: s.Cores, Freq: s.FreqMax, LLCWays: s.LLCWays},
		BE: Alloc{Cores: 0, Freq: s.FreqMin, LLCWays: 0},
	}
}

// SoloBE returns the configuration that hands every resource to the BE
// application at maximum frequency (used for solo-run normalization).
func SoloBE(s Spec) Config {
	return Config{
		LS: Alloc{Cores: 0, Freq: s.FreqMin, LLCWays: 0},
		BE: Alloc{Cores: s.Cores, Freq: s.FreqMax, LLCWays: s.LLCWays},
	}
}

// Complement fills the BE allocation with every core and LLC way the LS
// allocation leaves free, at frequency f.
func Complement(s Spec, ls Alloc, f GHz) Config {
	return Config{
		LS: ls,
		BE: Alloc{Cores: s.Cores - ls.Cores, Freq: f, LLCWays: s.LLCWays - ls.LLCWays},
	}
}

// EnumerateConfigs calls fn for every configuration in the exhaustive
// search space of §V-B: all LS core counts 1..Cores-1 and LLC ways
// 1..LLCWays-1 (the BE side takes the complement), and all frequency
// levels for both sides. fn returning false stops the enumeration.
//
// The visit count matches Spec.ConfigSpace up to the boundary exclusions
// that keep both applications runnable.
func EnumerateConfigs(s Spec, fn func(Config) bool) {
	freqs := s.FreqLevels()
	for c1 := 1; c1 < s.Cores; c1++ {
		for l1 := 1; l1 < s.LLCWays; l1++ {
			for _, f1 := range freqs {
				for _, f2 := range freqs {
					cfg := Config{
						LS: Alloc{Cores: c1, Freq: f1, LLCWays: l1},
						BE: Alloc{Cores: s.Cores - c1, Freq: f2, LLCWays: s.LLCWays - l1},
					}
					if !fn(cfg) {
						return
					}
				}
			}
		}
	}
}
