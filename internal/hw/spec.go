// Package hw describes the hardware geometry that Sturgeon manages: the
// partitionable resources of a single power-constrained server — physical
// cores, per-allocation core frequency (DVFS) and last-level-cache ways.
//
// The package is deliberately free of behaviour: it defines the resource
// vocabulary (Spec, Alloc, Config) shared by the simulator substrate, the
// predictor and the controllers, together with validation and enumeration
// helpers. All quantities mirror Table II of the paper: an Intel Xeon
// E5-2630 v4 with 20 logical cores, DVFS steps between 1.2 and 2.2 GHz and
// a 20-way 25 MB L3 cache.
package hw

import (
	"fmt"
	"math"
)

// GHz is a core frequency in gigahertz.
type GHz float64

// Spec describes the partitionable geometry of one server.
//
// The zero value is not useful; construct with DefaultSpec or fill every
// field and call Validate.
type Spec struct {
	// Cores is the number of logical cores available for partitioning.
	Cores int
	// FreqMin and FreqMax bound the DVFS range, inclusive.
	FreqMin, FreqMax GHz
	// FreqStep is the DVFS step granularity.
	FreqStep GHz
	// LLCWays is the number of last-level-cache ways (Intel CAT granularity).
	LLCWays int
	// LLCSizeMB is the total last-level-cache capacity in megabytes.
	LLCSizeMB float64
}

// DefaultSpec returns the experimental platform of the paper (Table II):
// 20 logical cores, 1.2–2.2 GHz in 10 steps, 20 LLC ways of a 25 MB L3.
func DefaultSpec() Spec {
	return Spec{
		Cores:     20,
		FreqMin:   1.2,
		FreqMax:   2.2,
		FreqStep:  0.1,
		LLCWays:   20,
		LLCSizeMB: 25,
	}
}

// Validate reports whether the specification is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.Cores <= 0:
		return fmt.Errorf("hw: spec has %d cores, need at least 1", s.Cores)
	case s.LLCWays <= 0:
		return fmt.Errorf("hw: spec has %d LLC ways, need at least 1", s.LLCWays)
	case s.LLCSizeMB <= 0:
		return fmt.Errorf("hw: spec has %.2f MB LLC, need a positive size", s.LLCSizeMB)
	case s.FreqMin <= 0 || s.FreqMax < s.FreqMin:
		return fmt.Errorf("hw: spec frequency range [%.2f, %.2f] GHz is invalid", s.FreqMin, s.FreqMax)
	case s.FreqStep <= 0:
		return fmt.Errorf("hw: spec frequency step %.2f GHz must be positive", s.FreqStep)
	}
	return nil
}

// FreqLevels returns every DVFS operating point from FreqMin to FreqMax
// inclusive, lowest first.
func (s Spec) FreqLevels() []GHz {
	n := s.NumFreqLevels()
	levels := make([]GHz, 0, n)
	for i := 0; i < n; i++ {
		levels = append(levels, s.FreqAtLevel(i))
	}
	return levels
}

// NumFreqLevels returns the number of DVFS operating points.
func (s Spec) NumFreqLevels() int {
	return int(math.Round(float64((s.FreqMax-s.FreqMin)/s.FreqStep))) + 1
}

// FreqAtLevel returns the frequency of DVFS level i (0 = FreqMin). Levels
// outside the range are clamped.
func (s Spec) FreqAtLevel(i int) GHz {
	if i < 0 {
		i = 0
	}
	if max := s.NumFreqLevels() - 1; i > max {
		i = max
	}
	// Round to the step grid to avoid accumulating float error.
	f := float64(s.FreqMin) + float64(i)*float64(s.FreqStep)
	return GHz(math.Round(f*1000) / 1000)
}

// LevelOfFreq returns the DVFS level whose frequency is nearest to f,
// clamped to the valid range.
func (s Spec) LevelOfFreq(f GHz) int {
	if f <= s.FreqMin {
		return 0
	}
	if f >= s.FreqMax {
		return s.NumFreqLevels() - 1
	}
	return int(math.Round(float64((f - s.FreqMin) / s.FreqStep)))
}

// ClampFreq snaps f onto the spec's DVFS grid.
func (s Spec) ClampFreq(f GHz) GHz {
	return s.FreqAtLevel(s.LevelOfFreq(f))
}

// WaySizeMB returns the capacity of a single LLC way in megabytes.
func (s Spec) WaySizeMB() float64 {
	return s.LLCSizeMB / float64(s.LLCWays)
}

// ConfigSpace returns the size of the exhaustive co-location configuration
// space N_C × N_F × N_L × N_F searched in §V-B of the paper (40 000 on the
// default spec).
func (s Spec) ConfigSpace() int {
	return s.Cores * s.NumFreqLevels() * s.LLCWays * s.NumFreqLevels()
}
