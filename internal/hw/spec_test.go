package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultSpecValid(t *testing.T) {
	s := DefaultSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("DefaultSpec invalid: %v", err)
	}
	if s.Cores != 20 || s.LLCWays != 20 {
		t.Errorf("DefaultSpec geometry = %d cores, %d ways; want 20, 20", s.Cores, s.LLCWays)
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	base := DefaultSpec()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero cores", func(s *Spec) { s.Cores = 0 }},
		{"negative cores", func(s *Spec) { s.Cores = -4 }},
		{"zero ways", func(s *Spec) { s.LLCWays = 0 }},
		{"zero cache", func(s *Spec) { s.LLCSizeMB = 0 }},
		{"inverted freq range", func(s *Spec) { s.FreqMin, s.FreqMax = 2.2, 1.2 }},
		{"zero freq", func(s *Spec) { s.FreqMin = 0 }},
		{"zero step", func(s *Spec) { s.FreqStep = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", s)
			}
		})
	}
}

func TestFreqLevelsCountAndEndpoints(t *testing.T) {
	s := DefaultSpec()
	levels := s.FreqLevels()
	// 1.2 .. 2.2 in 0.1 steps = 11 points; the paper speaks of "10-level
	// frequencies", counting steps rather than points.
	if len(levels) != 11 {
		t.Fatalf("got %d levels, want 11", len(levels))
	}
	if levels[0] != s.FreqMin || levels[len(levels)-1] != s.FreqMax {
		t.Errorf("endpoints = %v, %v; want %v, %v", levels[0], levels[len(levels)-1], s.FreqMin, s.FreqMax)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Errorf("levels not strictly increasing at %d: %v", i, levels)
		}
	}
}

func TestFreqLevelRoundTrip(t *testing.T) {
	s := DefaultSpec()
	for i := 0; i < s.NumFreqLevels(); i++ {
		f := s.FreqAtLevel(i)
		if got := s.LevelOfFreq(f); got != i {
			t.Errorf("LevelOfFreq(FreqAtLevel(%d)=%v) = %d", i, f, got)
		}
	}
}

func TestFreqClamping(t *testing.T) {
	s := DefaultSpec()
	if got := s.FreqAtLevel(-3); got != s.FreqMin {
		t.Errorf("FreqAtLevel(-3) = %v, want min %v", got, s.FreqMin)
	}
	if got := s.FreqAtLevel(99); got != s.FreqMax {
		t.Errorf("FreqAtLevel(99) = %v, want max %v", got, s.FreqMax)
	}
	if got := s.ClampFreq(0.3); got != s.FreqMin {
		t.Errorf("ClampFreq(0.3) = %v, want %v", got, s.FreqMin)
	}
	if got := s.ClampFreq(9.9); got != s.FreqMax {
		t.Errorf("ClampFreq(9.9) = %v, want %v", got, s.FreqMax)
	}
}

func TestClampFreqSnapsToGrid(t *testing.T) {
	s := DefaultSpec()
	got := s.ClampFreq(1.745)
	if math.Abs(float64(got)-1.7) > 1e-9 {
		t.Errorf("ClampFreq(1.745) = %v, want 1.7", got)
	}
	got = s.ClampFreq(1.76)
	if math.Abs(float64(got)-1.8) > 1e-9 {
		t.Errorf("ClampFreq(1.76) = %v, want 1.8", got)
	}
}

func TestConfigSpaceMatchesPaper(t *testing.T) {
	// §V-B: "20 × 10 × 20 × 10 = 40000". The paper counts 10 frequency
	// levels where the grid has 11 points; our count is exact.
	s := DefaultSpec()
	want := 20 * 11 * 20 * 11
	if got := s.ConfigSpace(); got != want {
		t.Errorf("ConfigSpace = %d, want %d", got, want)
	}
}

func TestWaySize(t *testing.T) {
	s := DefaultSpec()
	if got := s.WaySizeMB(); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("WaySizeMB = %v, want 1.25", got)
	}
}

func TestClampFreqPropertyOnGrid(t *testing.T) {
	s := DefaultSpec()
	f := func(raw float64) bool {
		g := s.ClampFreq(GHz(math.Abs(math.Mod(raw, 5))))
		if g < s.FreqMin || g > s.FreqMax {
			return false
		}
		// Must lie on the grid.
		lvl := s.LevelOfFreq(g)
		return s.FreqAtLevel(lvl) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
