package mlkit

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// batchModels trains one regressor of every family on the same
// predictor-shaped synthetic data: the five technique regressors plus
// the ensemble models, so the batch/point equivalence property covers
// both the fast paths and the point-API fallback.
func batchModels(tb testing.TB) map[string]Regressor {
	rng := rand.New(rand.NewSource(7))
	const n, d = 400, 4
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()*10 - 5
		}
		X[i] = row
		y[i] = 3*row[0] - 0.5*row[1]*row[2] + math.Sin(row[3]) + rng.NormFloat64()*0.1
	}
	models := map[string]Regressor{
		"lasso":  &Lasso{Lambda: 0.01, Iters: 200},
		"forest": &ForestRegressor{Trees: 12, MaxDepth: 8, Seed: 3},
		"gbm":    &GBMRegressor{Trees: 30, Depth: 4},
	}
	for _, t := range AllTechniques() {
		models[string(t)] = t.NewRegressor(11)
	}
	for name, m := range models {
		if err := m.Fit(X, y); err != nil {
			tb.Fatalf("fit %s: %v", name, err)
		}
	}
	return models
}

func batchQueries(rng *rand.Rand, n int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.Float64()*14 - 7 // includes out-of-hull points
		}
		X[i] = row
	}
	return X
}

// TestPredictBatchEquivalence is the property the batched fast path
// must uphold for every technique: PredictBatch ≡ point-wise Predict,
// bit for bit, including dst reuse across calls.
func TestPredictBatchEquivalence(t *testing.T) {
	queries := batchQueries(rand.New(rand.NewSource(99)), 256)
	var dst []float64
	for name, m := range batchModels(t) {
		dst = PredictBatch(m, queries, dst[:0])
		if len(dst) != len(queries) {
			t.Fatalf("%s: %d results for %d queries", name, len(dst), len(queries))
		}
		for i, x := range queries {
			want := m.Predict(x)
			if math.Float64bits(dst[i]) != math.Float64bits(want) &&
				!(math.IsNaN(dst[i]) && math.IsNaN(want)) {
				t.Fatalf("%s row %d: batch %v (%x) point %v (%x)",
					name, i, dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want))
			}
		}
	}
}

// TestPredictBatchUntrained pins the degenerate-model behavior the
// point API has: untrained lasso/forest answer 0, not a panic.
func TestPredictBatchUntrained(t *testing.T) {
	queries := batchQueries(rand.New(rand.NewSource(1)), 3)
	for name, m := range map[string]Regressor{"lasso": &Lasso{}, "forest": &ForestRegressor{}} {
		out := PredictBatch(m, queries, nil)
		for i, v := range out {
			if want := m.Predict(queries[i]); math.Float64bits(v) != math.Float64bits(want) {
				t.Fatalf("untrained %s row %d: batch %v point %v", name, i, v, want)
			}
		}
	}
}

var (
	fuzzModelsOnce sync.Once
	fuzzModels     map[string]Regressor
)

// FuzzPredictBatch feeds adversarial feature vectors (extreme values,
// NaN, Inf) through every model and checks the batch path never
// diverges from the point path.
func FuzzPredictBatch(f *testing.F) {
	f.Add(0.0, 1.0, -2.5, 3e8)
	f.Add(math.Inf(1), math.Inf(-1), math.NaN(), -0.0)
	f.Add(1e-300, -1e300, 0.5, 42.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		fuzzModelsOnce.Do(func() { fuzzModels = batchModels(t) })
		// Rows stay schema-width: the point API (KNN distance loop)
		// requires it, and the batch path inherits that contract.
		X := [][]float64{{a, b, c, d}, {d, c, b, a}, {c, a, d, b}}
		for name, m := range fuzzModels {
			out := PredictBatch(m, X, nil)
			for i, x := range X {
				want := m.Predict(x)
				if math.Float64bits(out[i]) != math.Float64bits(want) &&
					!(math.IsNaN(out[i]) && math.IsNaN(want)) {
					t.Fatalf("%s row %d: batch %v point %v", name, i, out[i], want)
				}
			}
		}
	})
}

func BenchmarkPredictBatch(b *testing.B) {
	m := &TreeRegressor{MaxDepth: 14, MinLeaf: 2}
	rng := rand.New(rand.NewSource(7))
	const n, d = 400, 4
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()*10 - 5
		}
		X[i] = row
		y[i] = 3*row[0] - 0.5*row[1] + row[2]*row[3]
	}
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	queries := batchQueries(rng, 64)
	var dst []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = PredictBatch(m, queries, dst[:0])
	}
}
