package mlkit

import (
	"math"
	"sort"
)

// treeNode is one CART node; leaves carry a value.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64 // leaf: mean target (regression) or P(1) (classification)
	leaf      bool
}

func (n *treeNode) eval(x []float64) float64 {
	for !n.leaf {
		if n.feature < len(x) && x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// treeParams bounds the recursive builder.
type treeParams struct {
	maxDepth    int
	minLeaf     int
	minImproved float64
}

// buildTree grows a CART tree minimizing weighted impurity. For
// regression the impurity is variance; classification passes y ∈ {0,1}
// through the same machinery (variance of a Bernoulli = Gini/2, so the
// split ordering is identical to Gini).
func buildTree(X [][]float64, y []float64, idx []int, depth int, p treeParams) *treeNode {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	node := &treeNode{leaf: true, value: mean}
	if depth >= p.maxDepth || len(idx) < 2*p.minLeaf {
		return node
	}
	imp := impurity(y, idx, mean)
	if imp <= 1e-12 {
		return node
	}

	bestGain := p.minImproved
	bestFeat, bestThresh := -1, 0.0
	d := len(X[0])
	order := make([]int, len(idx))
	for f := 0; f < d; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		// Prefix sums over the sorted order for O(1) split evaluation.
		var sumL, sqL float64
		var sumT, sqT float64
		for _, i := range order {
			sumT += y[i]
			sqT += y[i] * y[i]
		}
		n := float64(len(order))
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			sumL += y[i]
			sqL += y[i] * y[i]
			// Can't split between equal feature values.
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < p.minLeaf || int(nr) < p.minLeaf {
				continue
			}
			varL := sqL - sumL*sumL/nl
			sumR := sumT - sumL
			varR := (sqT - sqL) - sumR*sumR/nr
			gain := imp - (varL + varR)
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return node
	}
	node.leaf = false
	node.feature = bestFeat
	node.threshold = bestThresh
	node.left = buildTree(X, y, li, depth+1, p)
	node.right = buildTree(X, y, ri, depth+1, p)
	return node
}

// impurity returns the total squared deviation (n·variance).
func impurity(y []float64, idx []int, mean float64) float64 {
	s := 0.0
	for _, i := range idx {
		d := y[i] - mean
		s += d * d
	}
	return s
}

// TreeRegressor is a CART regression tree.
type TreeRegressor struct {
	// MaxDepth bounds tree depth (default 12); MinLeaf the minimum leaf
	// size (default 2).
	MaxDepth int
	MinLeaf  int

	root *treeNode
}

// Fit grows the tree.
func (m *TreeRegressor) Fit(X [][]float64, y []float64) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	p := treeParams{maxDepth: m.MaxDepth, minLeaf: m.MinLeaf, minImproved: 1e-12}
	if p.maxDepth <= 0 {
		p.maxDepth = 12
	}
	if p.minLeaf <= 0 {
		p.minLeaf = 2
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	m.root = buildTree(X, y, idx, 0, p)
	return nil
}

// Predict walks the tree.
func (m *TreeRegressor) Predict(x []float64) float64 {
	if m.root == nil {
		return math.NaN()
	}
	return m.root.eval(x)
}

// TreeClassifier is a CART binary classifier (Gini splits) — the paper's
// best technique for the LS performance (QoS-feasibility) model.
type TreeClassifier struct {
	// MaxDepth bounds tree depth (default 12); MinLeaf the minimum leaf
	// size (default 2).
	MaxDepth int
	MinLeaf  int

	root *treeNode
}

// Fit grows the tree on binary labels.
func (m *TreeClassifier) Fit(X [][]float64, y []int) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	if err := checkBinary(y); err != nil {
		return err
	}
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	p := treeParams{maxDepth: m.MaxDepth, minLeaf: m.MinLeaf, minImproved: 1e-12}
	if p.maxDepth <= 0 {
		p.maxDepth = 12
	}
	if p.minLeaf <= 0 {
		p.minLeaf = 2
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	m.root = buildTree(X, yf, idx, 0, p)
	return nil
}

// PredictProb returns the leaf's positive-class fraction.
func (m *TreeClassifier) PredictProb(x []float64) float64 {
	if m.root == nil {
		return 0.5
	}
	return m.root.eval(x)
}

// PredictClass thresholds the leaf probability at 0.5.
func (m *TreeClassifier) PredictClass(x []float64) int {
	if m.PredictProb(x) >= 0.5 {
		return 1
	}
	return 0
}
