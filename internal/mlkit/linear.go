package mlkit

import (
	"math"
)

// LinearRegression is ordinary least squares with optional ridge damping
// (Ridge > 0 stabilizes nearly collinear sweeps), solved by the normal
// equations with Gaussian elimination.
type LinearRegression struct {
	// Ridge is the L2 regularization strength (0 = pure OLS).
	Ridge float64

	coef      []float64 // per-feature weights
	intercept float64
}

// Fit solves (XᵀX + λI)β = Xᵀy with an intercept column.
func (m *LinearRegression) Fit(X [][]float64, y []float64) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	d := len(X[0]) + 1 // + intercept
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	// Accumulate the augmented normal equations; feature d-1 is the
	// constant 1.
	row := make([]float64, d)
	for s, xs := range X {
		copy(row, xs)
		row[d-1] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][d] += row[i] * y[s]
		}
	}
	for i := 0; i < d-1; i++ { // do not damp the intercept
		a[i][i] += m.Ridge
	}
	beta, ok := solveLinear(a)
	if !ok {
		// Singular system: retry with a small ridge.
		for i := 0; i < d-1; i++ {
			a[i][i] += 1e-8
		}
		beta, ok = solveLinear(a)
		if !ok {
			return ErrNoData
		}
	}
	m.coef = beta[:d-1]
	m.intercept = beta[d-1]
	return nil
}

// Predict returns β·x + intercept.
func (m *LinearRegression) Predict(x []float64) float64 {
	v := m.intercept
	for j, c := range m.coef {
		if j < len(x) {
			v += c * x[j]
		}
	}
	return v
}

// Coefficients returns the fitted weights (without intercept).
func (m *LinearRegression) Coefficients() []float64 {
	return append([]float64(nil), m.coef...)
}

// Intercept returns the fitted intercept.
func (m *LinearRegression) Intercept() float64 { return m.intercept }

// solveLinear solves the augmented system a (n×(n+1)) in place by Gaussian
// elimination with partial pivoting. It reports false when singular.
func solveLinear(a [][]float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[p] = a[p], a[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i][n] / a[i][i]
	}
	return out, true
}

// LogisticRegression is a binary classifier trained by full-batch
// gradient descent on standardized features.
type LogisticRegression struct {
	// LR is the learning rate (default 0.5); Iters the descent steps
	// (default 400); L2 the regularization strength.
	LR    float64
	Iters int
	L2    float64

	scaler    *Scaler
	coef      []float64
	intercept float64
}

// Fit trains the classifier.
func (m *LogisticRegression) Fit(X [][]float64, y []int) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	if err := checkBinary(y); err != nil {
		return err
	}
	lr := m.LR
	if lr <= 0 {
		lr = 0.5
	}
	iters := m.Iters
	if iters <= 0 {
		iters = 400
	}
	m.scaler = FitScaler(X)
	xs := m.scaler.TransformAll(X)
	d := len(xs[0])
	m.coef = make([]float64, d)
	m.intercept = 0
	n := float64(len(xs))
	grad := make([]float64, d)
	for it := 0; it < iters; it++ {
		for j := range grad {
			grad[j] = 0
		}
		g0 := 0.0
		for i, x := range xs {
			p := sigmoid(m.rawScore(x))
			e := p - float64(y[i])
			for j, v := range x {
				grad[j] += e * v
			}
			g0 += e
		}
		for j := range m.coef {
			m.coef[j] -= lr * (grad[j]/n + m.L2*m.coef[j])
		}
		m.intercept -= lr * g0 / n
	}
	return nil
}

func (m *LogisticRegression) rawScore(scaled []float64) float64 {
	v := m.intercept
	for j, c := range m.coef {
		if j < len(scaled) {
			v += c * scaled[j]
		}
	}
	return v
}

// PredictProb returns P(class = 1).
func (m *LogisticRegression) PredictProb(x []float64) float64 {
	if m.scaler == nil {
		return 0.5
	}
	return sigmoid(m.rawScore(m.scaler.Transform(x)))
}

// PredictClass returns the maximum-probability label.
func (m *LogisticRegression) PredictClass(x []float64) int {
	if m.PredictProb(x) >= 0.5 {
		return 1
	}
	return 0
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
