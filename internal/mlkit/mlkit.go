// Package mlkit is a self-contained, dependency-free machine-learning kit
// implementing every modelling technique the paper evaluates for its
// performance and power predictors (§V-C, Figs. 6–7): decision trees
// (CART), k-nearest neighbours, support-vector machines, multi-layer
// perceptrons, and logistic/linear regression — plus Lasso regression for
// the feature selection of §V-A.
//
// Regressors predict a real value (BE throughput, power); classifiers
// answer the binary question the LS performance model needs ("does this
// configuration meet the QoS target?"). All models are deterministic
// given their seed and train in well under a second on the few thousand
// samples a profiling sweep produces, matching the paper's ~0.04 ms
// inference budget.
package mlkit

import (
	"errors"
	"fmt"
)

// Regressor is a trainable real-valued predictor.
type Regressor interface {
	// Fit trains on a design matrix X (rows = samples) and targets y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the prediction for one feature vector.
	Predict(x []float64) float64
}

// Classifier is a trainable binary predictor with labels 0 and 1.
type Classifier interface {
	// Fit trains on X and binary labels y (each 0 or 1).
	Fit(X [][]float64, y []int) error
	// PredictClass returns the predicted label, 0 or 1.
	PredictClass(x []float64) int
}

// ErrNoData is returned by Fit when the training set is empty or ragged.
var ErrNoData = errors.New("mlkit: empty or malformed training set")

// checkMatrix validates a design matrix against a label count.
func checkMatrix(X [][]float64, n int) error {
	if len(X) == 0 || len(X) != n {
		return ErrNoData
	}
	w := len(X[0])
	if w == 0 {
		return ErrNoData
	}
	for _, row := range X {
		if len(row) != w {
			return ErrNoData
		}
	}
	return nil
}

// checkBinary validates 0/1 labels.
func checkBinary(y []int) error {
	for _, v := range y {
		if v != 0 && v != 1 {
			return fmt.Errorf("mlkit: label %d is not binary", v)
		}
	}
	return nil
}

// Scaler standardizes features to zero mean and unit variance; constant
// features are left centred with unit divisor.
type Scaler struct {
	Mean []float64
	SD   []float64
}

// FitScaler computes column statistics.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), SD: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.SD[j] += dv * dv
		}
	}
	for j := range s.SD {
		s.SD[j] = sqrt(s.SD[j] / n)
		if s.SD[j] < 1e-12 {
			s.SD[j] = 1
		}
	}
	return s
}

// Transform standardizes one vector (allocating a copy).
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		if j < len(s.Mean) {
			out[j] = (v - s.Mean[j]) / s.SD[j]
		} else {
			out[j] = v
		}
	}
	return out
}

// TransformAll standardizes a matrix.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}
