package mlkit

import "fmt"

// Technique names one of the modelling families the paper compares in
// §V-C. For LR the classifier side is logistic regression and the
// regressor side linear regression, exactly as the paper's Fig. 6 caption
// notes.
type Technique string

// The five techniques of Figs. 6–7.
const (
	DT  Technique = "DT"
	KNN Technique = "KNN"
	SV  Technique = "SV"
	MLP Technique = "MLP"
	LR  Technique = "LR"
)

// AllTechniques returns the techniques in the paper's figure order.
func AllTechniques() []Technique {
	return []Technique{DT, KNN, SV, MLP, LR}
}

// NewRegressor constructs a fresh regressor of the technique with
// Sturgeon's default hyperparameters.
func (t Technique) NewRegressor(seed int64) Regressor {
	switch t {
	case DT:
		return &TreeRegressor{MaxDepth: 14, MinLeaf: 2}
	case KNN:
		return &KNNRegressor{K: 5}
	case SV:
		return &SVR{Epochs: 80, Seed: seed}
	case MLP:
		return &MLPRegressor{Hidden: 24, Epochs: 250, Seed: seed}
	case LR:
		return &LinearRegression{Ridge: 1e-6}
	default:
		panic(fmt.Sprintf("mlkit: unknown technique %q", string(t)))
	}
}

// NewClassifier constructs a fresh binary classifier of the technique.
func (t Technique) NewClassifier(seed int64) Classifier {
	switch t {
	case DT:
		return &TreeClassifier{MaxDepth: 10, MinLeaf: 8}
	case KNN:
		return &KNNClassifier{K: 5}
	case SV:
		return &SVMClassifier{Epochs: 60, Seed: seed}
	case MLP:
		return &MLPClassifier{Hidden: 24, Epochs: 250, Seed: seed}
	case LR:
		return &LogisticRegression{}
	default:
		panic(fmt.Sprintf("mlkit: unknown technique %q", string(t)))
	}
}
