package mlkit

import "testing"

func TestGBMGeneralizes(t *testing.T) {
	X, y := synthReg(1500, 91)
	r2, err := EvaluateRegressor(&GBMRegressor{}, X[:1200], y[:1200], X[1200:], y[1200:])
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.95 {
		t.Errorf("GBM test R2 = %v, want ≥0.95", r2)
	}
}

func TestGBMBeatsSingleShallowTree(t *testing.T) {
	X, y := synthReg(900, 93)
	shallow, err := EvaluateRegressor(&TreeRegressor{MaxDepth: 3}, X[:700], y[:700], X[700:], y[700:])
	if err != nil {
		t.Fatal(err)
	}
	gbm, err := EvaluateRegressor(&GBMRegressor{Depth: 3}, X[:700], y[:700], X[700:], y[700:])
	if err != nil {
		t.Fatal(err)
	}
	if gbm <= shallow {
		t.Errorf("boosting did not beat its weak learner: %v <= %v", gbm, shallow)
	}
}

func TestGBMRejectsBadInput(t *testing.T) {
	var m GBMRegressor
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestGBMMoreRoundsMonotoneTrainFit(t *testing.T) {
	X, y := synthReg(500, 97)
	fit := func(rounds int) float64 {
		m := &GBMRegressor{Trees: rounds}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		pred := make([]float64, len(y))
		for i, x := range X {
			pred[i] = m.Predict(x)
		}
		return R2(y, pred)
	}
	if fit(80) <= fit(5) {
		t.Error("more boosting rounds did not improve the training fit")
	}
}
