package mlkit

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"sturgeon/internal/jsonio"
)

// Model persistence: §V-A trains the models offline on dedicated-cluster
// telemetry and §V-C stores every trained model on the server so the most
// suitable one can be deployed. Save/Load (de)serialize any of the kit's
// models through exported snapshot structs and encoding/gob, wrapped in
// a schema-validated JSON envelope (internal/jsonio) whose type tag lets
// a reader restore the right implementation.

// snapshot types — the exported wire form of each model's fitted state.

type scalerSnap struct {
	Mean, SD []float64
}

func snapScaler(s *Scaler) *scalerSnap {
	if s == nil {
		return nil
	}
	return &scalerSnap{Mean: s.Mean, SD: s.SD}
}

func (s *scalerSnap) restore() *Scaler {
	if s == nil {
		return nil
	}
	return &Scaler{Mean: s.Mean, SD: s.SD}
}

// treeSnap flattens a CART tree into parallel arrays (children by index,
// -1 for leaves).
type treeSnap struct {
	Feature     []int
	Threshold   []float64
	Left, Right []int
	Value       []float64
	Leaf        []bool
}

func snapTree(root *treeNode) treeSnap {
	var s treeSnap
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		idx := len(s.Feature)
		s.Feature = append(s.Feature, n.feature)
		s.Threshold = append(s.Threshold, n.threshold)
		s.Left = append(s.Left, -1)
		s.Right = append(s.Right, -1)
		s.Value = append(s.Value, n.value)
		s.Leaf = append(s.Leaf, n.leaf)
		if !n.leaf {
			s.Left[idx] = walk(n.left)
			s.Right[idx] = walk(n.right)
		}
		return idx
	}
	if root != nil {
		walk(root)
	}
	return s
}

func (s treeSnap) restore() (*treeNode, error) {
	if len(s.Feature) == 0 {
		return nil, nil
	}
	nodes := make([]treeNode, len(s.Feature))
	for i := range nodes {
		nodes[i] = treeNode{
			feature:   s.Feature[i],
			threshold: s.Threshold[i],
			value:     s.Value[i],
			leaf:      s.Leaf[i],
		}
	}
	for i := range nodes {
		if nodes[i].leaf {
			continue
		}
		l, r := s.Left[i], s.Right[i]
		if l < 0 || l >= len(nodes) || r < 0 || r >= len(nodes) {
			return nil, fmt.Errorf("mlkit: corrupt tree snapshot at node %d", i)
		}
		nodes[i].left = &nodes[l]
		nodes[i].right = &nodes[r]
	}
	return &nodes[0], nil
}

type knnSnap struct {
	K      int
	Scaler *scalerSnap
	XS     [][]float64
	YF     []float64 // regressor targets
	YI     []int     // classifier labels
}

type mlpSnap struct {
	Hidden     int
	Scaler     *scalerSnap
	YMean, YSD float64
	W1         [][]float64
	B1         []float64
	W2         []float64
	B2         float64
}

func snapMLP(n *mlpNet) mlpSnap {
	return mlpSnap{
		Hidden: n.hidden, Scaler: snapScaler(n.scaler),
		YMean: n.yMean, YSD: n.ySD,
		W1: n.w1, B1: n.b1, W2: n.w2, B2: n.b2,
	}
}

func (s mlpSnap) restore() mlpNet {
	return mlpNet{
		hidden: s.Hidden, scaler: s.Scaler.restore(),
		yMean: s.YMean, ySD: s.YSD,
		w1: s.W1, b1: s.B1, w2: s.W2, b2: s.B2,
	}
}

type linearSnap struct {
	Coef      []float64
	Intercept float64
	Scaler    *scalerSnap
	YMean     float64
	YSD       float64
}

type forestSnap struct {
	Trees []treeSnap
	Masks [][]int
}

// EnvelopeSchema tags the model envelope documents on disk.
const EnvelopeSchema = "sturgeon/mlkit-model/v1"

// envelope tags the gob payload with the concrete model kind. The JSON
// form base64-encodes Blob, so the stored document is diffable metadata
// around an opaque snapshot.
type envelope struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	Blob   []byte `json:"blob"`
}

// Validate implements jsonio.Validator.
func (e *envelope) Validate() error {
	switch {
	case e.Schema != EnvelopeSchema:
		return fmt.Errorf("mlkit: envelope schema %q, want %q", e.Schema, EnvelopeSchema)
	case e.Kind == "":
		return fmt.Errorf("mlkit: envelope without model kind")
	case len(e.Blob) == 0:
		return fmt.Errorf("mlkit: envelope %q with empty payload", e.Kind)
	}
	return nil
}

func encodePayload(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePayload(blob []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(blob)).Decode(v)
}

// Save serializes a fitted model (any Regressor or Classifier from this
// package) to w.
func Save(w io.Writer, model interface{}) error {
	env := envelope{Schema: EnvelopeSchema}
	var payload interface{}
	switch m := model.(type) {
	case *TreeRegressor:
		env.Kind = "tree-reg"
		payload = snapTree(m.root)
	case *TreeClassifier:
		env.Kind = "tree-clf"
		payload = snapTree(m.root)
	case *KNNRegressor:
		env.Kind = "knn-reg"
		payload = knnSnap{K: m.base.k, Scaler: snapScaler(m.base.scaler), XS: m.base.xs, YF: m.y}
	case *KNNClassifier:
		env.Kind = "knn-clf"
		payload = knnSnap{K: m.base.k, Scaler: snapScaler(m.base.scaler), XS: m.base.xs, YI: m.y}
	case *MLPRegressor:
		env.Kind = "mlp-reg"
		payload = snapMLP(&m.net)
	case *MLPClassifier:
		env.Kind = "mlp-clf"
		payload = snapMLP(&m.net)
	case *LinearRegression:
		env.Kind = "linear"
		payload = linearSnap{Coef: m.coef, Intercept: m.intercept}
	case *LogisticRegression:
		env.Kind = "logistic"
		payload = linearSnap{Coef: m.coef, Intercept: m.intercept, Scaler: snapScaler(m.scaler)}
	case *SVMClassifier:
		env.Kind = "svm-clf"
		payload = linearSnap{Coef: m.w, Intercept: m.b, Scaler: snapScaler(m.scaler)}
	case *SVR:
		env.Kind = "svr"
		payload = linearSnap{Coef: m.w, Intercept: m.b, Scaler: snapScaler(m.scaler), YMean: m.yMean, YSD: m.ySD}
	case *Lasso:
		env.Kind = "lasso"
		payload = linearSnap{Coef: m.coef, Intercept: m.intercept, Scaler: snapScaler(m.scaler), YMean: m.yMean}
	case *ForestRegressor:
		fs := forestSnap{Masks: m.masks}
		for _, t := range m.trees {
			fs.Trees = append(fs.Trees, snapTree(t.root))
		}
		env.Kind = "forest-reg"
		payload = fs
	case *ForestClassifier:
		fs := forestSnap{Masks: m.reg.masks}
		for _, t := range m.reg.trees {
			fs.Trees = append(fs.Trees, snapTree(t.root))
		}
		env.Kind = "forest-clf"
		payload = fs
	default:
		return fmt.Errorf("mlkit: cannot save model of type %T", model)
	}
	blob, err := encodePayload(payload)
	if err != nil {
		return err
	}
	env.Blob = blob
	return jsonio.Encode(w, &env)
}

// Load deserializes a model previously written by Save, returning the
// concrete model as interface{} (assert to Regressor or Classifier).
func Load(r io.Reader) (interface{}, error) {
	var env envelope
	if err := jsonio.Decode(r, &env); err != nil {
		return nil, err
	}
	switch env.Kind {
	case "tree-reg", "tree-clf":
		var s treeSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		root, err := s.restore()
		if err != nil {
			return nil, err
		}
		if env.Kind == "tree-reg" {
			return &TreeRegressor{root: root}, nil
		}
		return &TreeClassifier{root: root}, nil
	case "knn-reg":
		var s knnSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &KNNRegressor{K: s.K, base: knnBase{k: s.K, scaler: s.Scaler.restore(), xs: s.XS}, y: s.YF}, nil
	case "knn-clf":
		var s knnSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &KNNClassifier{K: s.K, base: knnBase{k: s.K, scaler: s.Scaler.restore(), xs: s.XS}, y: s.YI}, nil
	case "mlp-reg":
		var s mlpSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &MLPRegressor{net: s.restore()}, nil
	case "mlp-clf":
		var s mlpSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &MLPClassifier{net: s.restore()}, nil
	case "linear":
		var s linearSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &LinearRegression{coef: s.Coef, intercept: s.Intercept}, nil
	case "logistic":
		var s linearSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &LogisticRegression{coef: s.Coef, intercept: s.Intercept, scaler: s.Scaler.restore()}, nil
	case "svm-clf":
		var s linearSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &SVMClassifier{w: s.Coef, b: s.Intercept, scaler: s.Scaler.restore()}, nil
	case "svr":
		var s linearSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &SVR{w: s.Coef, b: s.Intercept, scaler: s.Scaler.restore(), yMean: s.YMean, ySD: s.YSD}, nil
	case "lasso":
		var s linearSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		return &Lasso{coef: s.Coef, intercept: s.Intercept, scaler: s.Scaler.restore(), yMean: s.YMean}, nil
	case "forest-reg", "forest-clf":
		var s forestSnap
		if err := decodePayload(env.Blob, &s); err != nil {
			return nil, err
		}
		var trees []*TreeRegressor
		for _, ts := range s.Trees {
			root, err := ts.restore()
			if err != nil {
				return nil, err
			}
			trees = append(trees, &TreeRegressor{root: root})
		}
		fr := ForestRegressor{trees: trees, masks: s.Masks}
		if env.Kind == "forest-reg" {
			return &fr, nil
		}
		return &ForestClassifier{reg: fr}, nil
	default:
		return nil, fmt.Errorf("mlkit: unknown model kind %q", env.Kind)
	}
}

// LoadRegressor loads and type-asserts a Regressor.
func LoadRegressor(r io.Reader) (Regressor, error) {
	m, err := Load(r)
	if err != nil {
		return nil, err
	}
	reg, ok := m.(Regressor)
	if !ok {
		return nil, fmt.Errorf("mlkit: stored model %T is not a regressor", m)
	}
	return reg, nil
}

// LoadClassifier loads and type-asserts a Classifier.
func LoadClassifier(r io.Reader) (Classifier, error) {
	m, err := Load(r)
	if err != nil {
		return nil, err
	}
	clf, ok := m.(Classifier)
	if !ok {
		return nil, fmt.Errorf("mlkit: stored model %T is not a classifier", m)
	}
	return clf, nil
}
