package mlkit

import "testing"

func benchData(n int) ([][]float64, []float64) {
	return synthReg(n, 99)
}

func BenchmarkKNNPredict(b *testing.B) {
	X, y := benchData(1500)
	m := &KNNRegressor{K: 5}
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

func BenchmarkTreePredict(b *testing.B) {
	X, y := benchData(1500)
	m := &TreeRegressor{}
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

func BenchmarkMLPPredict(b *testing.B) {
	X, y := benchData(1500)
	m := &MLPRegressor{Epochs: 30, Seed: 1}
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

func BenchmarkTreeFit(b *testing.B) {
	X, y := benchData(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := &TreeRegressor{}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPFit(b *testing.B) {
	X, y := benchData(600)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := &MLPRegressor{Epochs: 50, Seed: 1}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLassoFit(b *testing.B) {
	X, y := benchData(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := &Lasso{Lambda: 0.01}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
