package mlkit

// GBMRegressor is gradient-boosted regression trees with squared-error
// loss: each shallow tree fits the residual of the ensemble so far,
// scaled by a learning rate. Like the random forest it sits outside the
// paper's five techniques, rounding the kit out toward what a production
// model-selection pass would actually sweep.
type GBMRegressor struct {
	// Trees is the boosting rounds (default 80); Depth each tree's limit
	// (default 3); LearningRate the shrinkage (default 0.1); MinLeaf the
	// minimum leaf size (default 4).
	Trees        int
	Depth        int
	LearningRate float64
	MinLeaf      int

	base  float64
	trees []*TreeRegressor
	lr    float64
}

// Fit runs the boosting rounds.
func (m *GBMRegressor) Fit(X [][]float64, y []float64) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	rounds := m.Trees
	if rounds <= 0 {
		rounds = 80
	}
	depth := m.Depth
	if depth <= 0 {
		depth = 3
	}
	m.lr = m.LearningRate
	if m.lr <= 0 {
		m.lr = 0.1
	}
	minLeaf := m.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 4
	}

	// Initialize with the mean.
	m.base = 0
	for _, v := range y {
		m.base += v
	}
	m.base /= float64(len(y))

	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = m.base
	}
	m.trees = m.trees[:0]
	for r := 0; r < rounds; r++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		t := &TreeRegressor{MaxDepth: depth, MinLeaf: minLeaf}
		if err := t.Fit(X, resid); err != nil {
			return err
		}
		m.trees = append(m.trees, t)
		for i, x := range X {
			pred[i] += m.lr * t.Predict(x)
		}
	}
	return nil
}

// Predict sums the shrunken ensemble.
func (m *GBMRegressor) Predict(x []float64) float64 {
	v := m.base
	for _, t := range m.trees {
		v += m.lr * t.Predict(x)
	}
	return v
}
