package mlkit

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestSaveLoadRegressorsRoundTrip(t *testing.T) {
	X, y := synthReg(600, 81)
	regs := map[string]Regressor{
		"tree":   &TreeRegressor{},
		"knn":    &KNNRegressor{K: 5},
		"mlp":    &MLPRegressor{Epochs: 40, Seed: 1},
		"linear": &LinearRegression{},
		"svr":    &SVR{Seed: 1},
		"lasso":  &Lasso{Lambda: 0.01},
		"forest": &ForestRegressor{Seed: 1, Trees: 10},
	}
	for name, m := range regs {
		name, m := name, m
		t.Run(name, func(t *testing.T) {
			if err := m.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Save(&buf, m); err != nil {
				t.Fatal(err)
			}
			back, err := LoadRegressor(&buf)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				a, b := m.Predict(X[i]), back.Predict(X[i])
				if a != b {
					t.Fatalf("prediction drift after reload: %v vs %v", a, b)
				}
			}
		})
	}
}

func TestSaveLoadClassifiersRoundTrip(t *testing.T) {
	X, y := synthClf(600, 83)
	clfs := map[string]Classifier{
		"tree":     &TreeClassifier{},
		"knn":      &KNNClassifier{K: 5},
		"mlp":      &MLPClassifier{Epochs: 40, Seed: 1},
		"logistic": &LogisticRegression{},
		"svm":      &SVMClassifier{Seed: 1},
		"forest":   &ForestClassifier{Seed: 1, Trees: 10},
	}
	for name, m := range clfs {
		name, m := name, m
		t.Run(name, func(t *testing.T) {
			if err := m.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Save(&buf, m); err != nil {
				t.Fatal(err)
			}
			back, err := LoadClassifier(&buf)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				if m.PredictClass(X[i]) != back.PredictClass(X[i]) {
					t.Fatalf("class drift after reload at sample %d", i)
				}
			}
		})
	}
}

func TestLoadKindMismatch(t *testing.T) {
	X, y := synthReg(100, 87)
	m := &TreeRegressor{}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClassifier(&buf); err == nil {
		t.Error("regressor loaded as classifier")
	}
}

func TestSaveUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, struct{}{}); err == nil {
		t.Error("unknown model type accepted")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestLoadUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	// Hand-roll an envelope with a bogus kind.
	env := envelope{Kind: "quantum-annealer", Blob: []byte{1}}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("unknown kind accepted")
	}
}
