package mlkit

import (
	"sort"
)

// knnBase stores the standardized training set shared by the KNN
// regressor and classifier.
type knnBase struct {
	k      int
	scaler *Scaler
	xs     [][]float64
}

func (b *knnBase) fit(X [][]float64, n int) error {
	if err := checkMatrix(X, n); err != nil {
		return err
	}
	b.scaler = FitScaler(X)
	b.xs = b.scaler.TransformAll(X)
	if b.k <= 0 {
		b.k = 5
	}
	if b.k > len(b.xs) {
		b.k = len(b.xs)
	}
	return nil
}

// neighbors returns the indices of the k nearest training samples.
func (b *knnBase) neighbors(x []float64) []int {
	q := b.scaler.Transform(x)
	type ds struct {
		d   float64
		idx int
	}
	all := make([]ds, len(b.xs))
	for i, row := range b.xs {
		d := 0.0
		for j := range row {
			dv := row[j] - q[j]
			d += dv * dv
		}
		all[i] = ds{d, i}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].idx < all[j].idx
	})
	out := make([]int, b.k)
	for i := 0; i < b.k; i++ {
		out[i] = all[i].idx
	}
	return out
}

// KNNRegressor predicts the mean target of the K nearest neighbours in
// standardized feature space — the technique the paper found best for BE
// performance and for both power models (Figs. 6–7).
type KNNRegressor struct {
	// K is the neighbourhood size (default 5).
	K int

	base knnBase
	y    []float64
}

// Fit stores the training set.
func (m *KNNRegressor) Fit(X [][]float64, y []float64) error {
	m.base.k = m.K
	if err := m.base.fit(X, len(y)); err != nil {
		return err
	}
	m.y = append([]float64(nil), y...)
	return nil
}

// Predict averages the K nearest targets.
func (m *KNNRegressor) Predict(x []float64) float64 {
	if len(m.y) == 0 {
		return 0
	}
	sum := 0.0
	nb := m.base.neighbors(x)
	for _, i := range nb {
		sum += m.y[i]
	}
	return sum / float64(len(nb))
}

// KNNClassifier predicts the majority label of the K nearest neighbours.
type KNNClassifier struct {
	// K is the neighbourhood size (default 5).
	K int

	base knnBase
	y    []int
}

// Fit stores the training set.
func (m *KNNClassifier) Fit(X [][]float64, y []int) error {
	if err := checkBinary(y); err != nil {
		return err
	}
	m.base.k = m.K
	if err := m.base.fit(X, len(y)); err != nil {
		return err
	}
	m.y = append([]int(nil), y...)
	return nil
}

// PredictClass returns the majority vote (ties go to 1).
func (m *KNNClassifier) PredictClass(x []float64) int {
	if len(m.y) == 0 {
		return 0
	}
	ones := 0
	nb := m.base.neighbors(x)
	for _, i := range nb {
		ones += m.y[i]
	}
	if 2*ones >= len(nb) {
		return 1
	}
	return 0
}
