package mlkit

import (
	"math/rand"
)

// ForestRegressor is a bagged ensemble of CART trees (a random forest
// with per-tree bootstrap sampling and random feature subsetting). It is
// not one of the paper's five §V-C techniques — it is provided as the
// natural upgrade path for deployments that want DT-family robustness
// with lower variance, and is exercised by the extended ablations.
type ForestRegressor struct {
	// Trees is the ensemble size (default 30); MaxDepth and MinLeaf bound
	// each tree (defaults 12/2); FeatureFrac is the fraction of features
	// each tree sees (default 1 — pure bagging; the predictor feature
	// spaces are low-dimensional and every column is informative, so
	// random subspacing mostly discards signal); Seed drives the
	// bootstrap.
	Trees       int
	MaxDepth    int
	MinLeaf     int
	FeatureFrac float64
	Seed        int64

	trees []*TreeRegressor
	masks [][]int // feature indices per tree
}

// Fit grows the ensemble on bootstrap resamples.
func (m *ForestRegressor) Fit(X [][]float64, y []float64) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	nTrees := m.Trees
	if nTrees <= 0 {
		nTrees = 30
	}
	frac := m.FeatureFrac
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	d := len(X[0])
	nFeat := int(float64(d)*frac + 0.5)
	if nFeat < 1 {
		nFeat = 1
	}
	rng := rand.New(rand.NewSource(m.Seed + 1))
	n := len(X)

	m.trees = m.trees[:0]
	m.masks = m.masks[:0]
	for t := 0; t < nTrees; t++ {
		// Bootstrap rows.
		bx := make([][]float64, n)
		by := make([]float64, n)
		// Random feature subset (projection keeps Predict simple).
		mask := rng.Perm(d)[:nFeat]
		for i := 0; i < n; i++ {
			src := rng.Intn(n)
			row := make([]float64, nFeat)
			for j, f := range mask {
				row[j] = X[src][f]
			}
			bx[i] = row
			by[i] = y[src]
		}
		tree := &TreeRegressor{MaxDepth: m.MaxDepth, MinLeaf: m.MinLeaf}
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		m.trees = append(m.trees, tree)
		m.masks = append(m.masks, mask)
	}
	return nil
}

// Predict averages the ensemble.
func (m *ForestRegressor) Predict(x []float64) float64 {
	if len(m.trees) == 0 {
		return 0
	}
	sum := 0.0
	proj := make([]float64, 0, len(x))
	for t, tree := range m.trees {
		proj = proj[:0]
		for _, f := range m.masks[t] {
			if f < len(x) {
				proj = append(proj, x[f])
			} else {
				proj = append(proj, 0)
			}
		}
		sum += tree.Predict(proj)
	}
	return sum / float64(len(m.trees))
}

// ForestClassifier is the bagged binary classifier counterpart.
type ForestClassifier struct {
	// See ForestRegressor for the hyperparameters.
	Trees       int
	MaxDepth    int
	MinLeaf     int
	FeatureFrac float64
	Seed        int64

	reg ForestRegressor
}

// Fit grows the ensemble on 0/1 labels.
func (m *ForestClassifier) Fit(X [][]float64, y []int) error {
	if err := checkBinary(y); err != nil {
		return err
	}
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	m.reg = ForestRegressor{
		Trees: m.Trees, MaxDepth: m.MaxDepth, MinLeaf: m.MinLeaf,
		FeatureFrac: m.FeatureFrac, Seed: m.Seed,
	}
	return m.reg.Fit(X, yf)
}

// PredictProb returns the ensemble's positive-class vote fraction.
func (m *ForestClassifier) PredictProb(x []float64) float64 {
	return m.reg.Predict(x)
}

// PredictClass thresholds the vote at 0.5.
func (m *ForestClassifier) PredictClass(x []float64) int {
	if m.PredictProb(x) >= 0.5 {
		return 1
	}
	return 0
}
