package mlkit

import (
	"math"
	"math/rand"
)

// mlpNet is a one-hidden-layer perceptron with tanh activation, trained
// by mini-batch SGD with momentum. The output is linear; the classifier
// wrapper applies a sigmoid.
type mlpNet struct {
	hidden int
	lr     float64
	epochs int
	batch  int
	seed   int64
	l2     float64

	scaler     *Scaler
	yMean, ySD float64

	w1 [][]float64 // hidden × in
	b1 []float64
	w2 []float64 // hidden
	b2 float64
}

func (n *mlpNet) defaults() {
	if n.hidden <= 0 {
		n.hidden = 16
	}
	if n.lr <= 0 {
		n.lr = 0.02
	}
	if n.epochs <= 0 {
		n.epochs = 200
	}
	if n.batch <= 0 {
		n.batch = 16
	}
}

// fit trains on standardized features and (for regression) standardized
// targets; classify switches the loss to cross-entropy through a sigmoid.
func (n *mlpNet) fit(X [][]float64, y []float64, classify bool) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	n.defaults()
	n.scaler = FitScaler(X)
	xs := n.scaler.TransformAll(X)
	in := len(xs[0])
	m := len(xs)

	ys := make([]float64, m)
	if classify {
		copy(ys, y)
		n.yMean, n.ySD = 0, 1
	} else {
		n.yMean, n.ySD = 0, 0
		for _, v := range y {
			n.yMean += v
		}
		n.yMean /= float64(m)
		for _, v := range y {
			d := v - n.yMean
			n.ySD += d * d
		}
		n.ySD = math.Sqrt(n.ySD / float64(m))
		if n.ySD < 1e-12 {
			n.ySD = 1
		}
		for i, v := range y {
			ys[i] = (v - n.yMean) / n.ySD
		}
	}

	rng := rand.New(rand.NewSource(n.seed + 1))
	n.w1 = make([][]float64, n.hidden)
	n.b1 = make([]float64, n.hidden)
	n.w2 = make([]float64, n.hidden)
	scale := math.Sqrt(2 / float64(in))
	for h := range n.w1 {
		n.w1[h] = make([]float64, in)
		for j := range n.w1[h] {
			n.w1[h][j] = rng.NormFloat64() * scale
		}
		n.w2[h] = rng.NormFloat64() * math.Sqrt(1/float64(n.hidden))
	}
	n.b2 = 0

	// Momentum buffers.
	v1 := make([][]float64, n.hidden)
	for h := range v1 {
		v1[h] = make([]float64, in)
	}
	vb1 := make([]float64, n.hidden)
	v2 := make([]float64, n.hidden)
	vb2 := 0.0
	const mom = 0.9

	hid := make([]float64, n.hidden)
	for e := 0; e < n.epochs; e++ {
		perm := rng.Perm(m)
		for start := 0; start < m; start += n.batch {
			end := start + n.batch
			if end > m {
				end = m
			}
			bs := float64(end - start)
			// Accumulate gradients over the batch.
			g1 := make([][]float64, n.hidden)
			for h := range g1 {
				g1[h] = make([]float64, in)
			}
			gb1 := make([]float64, n.hidden)
			g2 := make([]float64, n.hidden)
			gb2 := 0.0
			for _, i := range perm[start:end] {
				x := xs[i]
				// Forward.
				for h := 0; h < n.hidden; h++ {
					z := n.b1[h]
					for j, xv := range x {
						z += n.w1[h][j] * xv
					}
					hid[h] = math.Tanh(z)
				}
				out := n.b2
				for h, hv := range hid {
					out += n.w2[h] * hv
				}
				var dOut float64
				if classify {
					dOut = sigmoid(out) - ys[i] // dCE/dz
				} else {
					dOut = out - ys[i] // dMSE/2
				}
				// Backward.
				gb2 += dOut
				for h, hv := range hid {
					g2[h] += dOut * hv
					dh := dOut * n.w2[h] * (1 - hv*hv)
					gb1[h] += dh
					for j, xv := range x {
						g1[h][j] += dh * xv
					}
				}
			}
			// Momentum update.
			for h := 0; h < n.hidden; h++ {
				v2[h] = mom*v2[h] - n.lr*(g2[h]/bs+n.l2*n.w2[h])
				n.w2[h] += v2[h]
				vb1[h] = mom*vb1[h] - n.lr*gb1[h]/bs
				n.b1[h] += vb1[h]
				for j := range n.w1[h] {
					v1[h][j] = mom*v1[h][j] - n.lr*(g1[h][j]/bs+n.l2*n.w1[h][j])
					n.w1[h][j] += v1[h][j]
				}
			}
			vb2 = mom*vb2 - n.lr*gb2/bs
			n.b2 += vb2
		}
	}
	return nil
}

// raw evaluates the pre-output activation on an unscaled input.
func (n *mlpNet) raw(x []float64) float64 {
	if n.scaler == nil {
		return 0
	}
	xs := n.scaler.Transform(x)
	out := n.b2
	for h := 0; h < n.hidden; h++ {
		z := n.b1[h]
		for j, xv := range xs {
			z += n.w1[h][j] * xv
		}
		out += n.w2[h] * math.Tanh(z)
	}
	return out
}

// MLPRegressor is a one-hidden-layer neural network regressor.
type MLPRegressor struct {
	// Hidden is the hidden width (default 16); LR the learning rate
	// (default 0.02); Epochs the training passes (default 200); Seed the
	// initialization seed; L2 the weight decay.
	Hidden int
	LR     float64
	Epochs int
	Seed   int64
	L2     float64

	net mlpNet
}

// Fit trains the network.
func (m *MLPRegressor) Fit(X [][]float64, y []float64) error {
	m.net = mlpNet{hidden: m.Hidden, lr: m.LR, epochs: m.Epochs, seed: m.Seed, l2: m.L2}
	return m.net.fit(X, y, false)
}

// Predict evaluates the network in original target units.
func (m *MLPRegressor) Predict(x []float64) float64 {
	return m.net.raw(x)*m.net.ySD + m.net.yMean
}

// MLPClassifier is a one-hidden-layer neural network binary classifier.
type MLPClassifier struct {
	// See MLPRegressor for the meaning of the hyperparameters.
	Hidden int
	LR     float64
	Epochs int
	Seed   int64
	L2     float64

	net mlpNet
}

// Fit trains with sigmoid cross-entropy.
func (m *MLPClassifier) Fit(X [][]float64, y []int) error {
	if err := checkBinary(y); err != nil {
		return err
	}
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	m.net = mlpNet{hidden: m.Hidden, lr: m.LR, epochs: m.Epochs, seed: m.Seed, l2: m.L2}
	return m.net.fit(X, yf, true)
}

// PredictProb returns P(class = 1).
func (m *MLPClassifier) PredictProb(x []float64) float64 {
	return sigmoid(m.net.raw(x))
}

// PredictClass thresholds at 0.5.
func (m *MLPClassifier) PredictClass(x []float64) int {
	if m.PredictProb(x) >= 0.5 {
		return 1
	}
	return 0
}
