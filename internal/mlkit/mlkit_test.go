package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthReg builds a noisy nonlinear regression problem resembling the
// predictor's feature space (4 features on different scales).
func synthReg(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		qps := rng.Float64() * 60000
		cores := float64(1 + rng.Intn(20))
		freq := 1.2 + 0.1*float64(rng.Intn(11))
		ways := float64(1 + rng.Intn(20))
		X[i] = []float64{qps, cores, freq, ways}
		y[i] = cores*freq*3 + 20*math.Log1p(ways) - qps/10000 + rng.NormFloat64()*0.8
	}
	return X, y
}

// synthClf builds a separable-with-noise classification problem.
func synthClf(n int, seed int64) ([][]float64, []int) {
	X, raw := synthReg(n, seed)
	y := make([]int, n)
	for i, v := range raw {
		if v > 40 {
			y[i] = 1
		}
	}
	return X, y
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	s := FitScaler(X)
	xs := s.TransformAll(X)
	for j := 0; j < 2; j++ {
		var mean, sd float64
		for _, r := range xs {
			mean += r[j]
		}
		mean /= 3
		for _, r := range xs {
			sd += (r[j] - mean) * (r[j] - mean)
		}
		if math.Abs(mean) > 1e-12 || math.Abs(sd/3-1) > 1e-9 {
			t.Errorf("column %d not standardized: mean %v var %v", j, mean, sd/3)
		}
	}
	// Constant column survives.
	c := FitScaler([][]float64{{5}, {5}, {5}})
	if got := c.Transform([]float64{5})[0]; got != 0 {
		t.Errorf("constant column transform = %v, want 0", got)
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Errorf("perfect R2 = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); math.Abs(got) > 1e-12 {
		t.Errorf("mean-predictor R2 = %v, want 0", got)
	}
	if got := R2(y, []float64{10, 10, 10, 10}); got >= 0 {
		t.Errorf("bad model R2 = %v, want negative", got)
	}
	if !math.IsNaN(R2(nil, nil)) {
		t.Error("empty R2 should be NaN")
	}
	if got := R2([]float64{3, 3}, []float64{3, 3}); got != 1 {
		t.Errorf("constant-target exact prediction R2 = %v, want 1", got)
	}
}

func TestMSEAndMAE(t *testing.T) {
	yt := []float64{1, 2}
	yp := []float64{2, 4}
	if got := MSE(yt, yp); got != 2.5 {
		t.Errorf("MSE = %v, want 2.5", got)
	}
	if got := MAE(yt, yp); got != 1.5 {
		t.Errorf("MAE = %v, want 1.5", got)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1, 1}, []int{1, 0, 0, 1}); got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	if !math.IsNaN(Accuracy(nil, nil)) {
		t.Error("empty Accuracy should be NaN")
	}
}

func TestKFold(t *testing.T) {
	folds := KFold(10, 3)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f[0])+len(f[1]) != 10 {
			t.Errorf("fold sizes %d+%d != 10", len(f[0]), len(f[1]))
		}
		for _, i := range f[1] {
			seen[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d appeared in %d test folds", i, seen[i])
		}
	}
}

func TestLinearRegressionExactRecovery(t *testing.T) {
	// y = 2a − 3b + 7 exactly.
	X := [][]float64{{1, 1}, {2, 1}, {3, 5}, {4, 2}, {0, 7}, {6, 3}}
	y := make([]float64, len(X))
	for i, r := range X {
		y[i] = 2*r[0] - 3*r[1] + 7
	}
	var m LinearRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	co := m.Coefficients()
	if math.Abs(co[0]-2) > 1e-8 || math.Abs(co[1]+3) > 1e-8 || math.Abs(m.Intercept()-7) > 1e-8 {
		t.Errorf("recovered %v + %v, want [2 -3] + 7", co, m.Intercept())
	}
	if got := m.Predict([]float64{10, 10}); math.Abs(got-(20-30+7)) > 1e-8 {
		t.Errorf("Predict = %v", got)
	}
}

func TestLinearRegressionSingularFallback(t *testing.T) {
	// Duplicate column: XᵀX is singular; ridge fallback must cope.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	var m LinearRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{5, 5}); math.Abs(got-10) > 1e-3 {
		t.Errorf("Predict on collinear fit = %v, want ≈10", got)
	}
}

func TestLogisticRegressionSeparable(t *testing.T) {
	X, y := synthClf(600, 3)
	var m LogisticRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]int, len(y))
	for i, x := range X {
		pred[i] = m.PredictClass(x)
	}
	if acc := Accuracy(y, pred); acc < 0.9 {
		t.Errorf("train accuracy = %v, want ≥0.9", acc)
	}
	p := m.PredictProb(X[0])
	if p < 0 || p > 1 {
		t.Errorf("probability %v outside [0,1]", p)
	}
}

func TestLassoShrinksIrrelevantFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		relevant := rng.NormFloat64()
		noise1 := rng.NormFloat64()
		noise2 := rng.NormFloat64()
		X[i] = []float64{relevant, noise1, noise2}
		y[i] = 5*relevant + rng.NormFloat64()*0.1
	}
	m := Lasso{Lambda: 0.1}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	co := m.Coefficients()
	if math.Abs(co[0]) < 1 {
		t.Errorf("relevant coefficient %v shrunk too far", co[0])
	}
	if math.Abs(co[1]) > 0.1 || math.Abs(co[2]) > 0.1 {
		t.Errorf("noise coefficients %v not shrunk", co[1:])
	}
	sel, err := SelectFeatures(X, y, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0] != 0 {
		t.Errorf("SelectFeatures = %v, want [0]", sel)
	}
}

func TestLassoPredictsReasonably(t *testing.T) {
	X, y := synthReg(500, 7)
	m := Lasso{Lambda: 0.005}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(y))
	for i, x := range X {
		pred[i] = m.Predict(x)
	}
	if r2 := R2(y, pred); r2 < 0.85 {
		t.Errorf("Lasso train R2 = %v", r2)
	}
}

func TestKNNRegressorInterpolates(t *testing.T) {
	X, y := synthReg(1200, 11)
	trainX, trainY := X[:1000], y[:1000]
	testX, testY := X[1000:], y[1000:]
	r2, err := EvaluateRegressor(&KNNRegressor{K: 5}, trainX, trainY, testX, testY)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9 {
		t.Errorf("KNN test R2 = %v, want ≥0.9", r2)
	}
}

func TestKNNClassifier(t *testing.T) {
	X, y := synthClf(1200, 13)
	acc, err := EvaluateClassifier(&KNNClassifier{K: 5}, X[:1000], y[:1000], X[1000:], y[1000:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("KNN accuracy = %v, want ≥0.9", acc)
	}
}

func TestKNNExactNeighborRecall(t *testing.T) {
	X := [][]float64{{0}, {1}, {10}}
	y := []float64{5, 7, 100}
	var m KNNRegressor
	m.K = 2
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.4}); got != 6 {
		t.Errorf("mean of two nearest = %v, want 6", got)
	}
}

func TestTreeRegressorFitsSteps(t *testing.T) {
	// A step function is trees' home turf.
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := float64(i) / 10
		X = append(X, []float64{v})
		if v < 10 {
			y = append(y, 1)
		} else {
			y = append(y, 9)
		}
	}
	var m TreeRegressor
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{3}); got != 1 {
		t.Errorf("left leaf = %v, want 1", got)
	}
	if got := m.Predict([]float64{15}); got != 9 {
		t.Errorf("right leaf = %v, want 9", got)
	}
}

func TestTreeRegressorGeneralizes(t *testing.T) {
	X, y := synthReg(1500, 17)
	r2, err := EvaluateRegressor(&TreeRegressor{}, X[:1200], y[:1200], X[1200:], y[1200:])
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.85 {
		t.Errorf("tree test R2 = %v, want ≥0.85", r2)
	}
}

func TestTreeClassifier(t *testing.T) {
	X, y := synthClf(1500, 19)
	acc, err := EvaluateClassifier(&TreeClassifier{}, X[:1200], y[:1200], X[1200:], y[1200:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.92 {
		t.Errorf("tree accuracy = %v, want ≥0.92", acc)
	}
}

func TestTreeDepthLimit(t *testing.T) {
	X, y := synthReg(400, 23)
	shallow := &TreeRegressor{MaxDepth: 1}
	if err := shallow.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// A depth-1 tree has at most two distinct outputs.
	vals := map[float64]bool{}
	for _, x := range X {
		vals[shallow.Predict(x)] = true
	}
	if len(vals) > 2 {
		t.Errorf("depth-1 tree produced %d distinct outputs", len(vals))
	}
}

func TestSVMClassifierSeparable(t *testing.T) {
	X, y := synthClf(1200, 29)
	acc, err := EvaluateClassifier(&SVMClassifier{Seed: 1}, X[:1000], y[:1000], X[1000:], y[1000:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.88 {
		t.Errorf("SVM accuracy = %v, want ≥0.88", acc)
	}
}

func TestSVRFitsLinearTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var X [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		X = append(X, []float64{a, b})
		y = append(y, 3*a-2*b+1+rng.NormFloat64()*0.2)
	}
	r2, err := EvaluateRegressor(&SVR{Seed: 2}, X[:500], y[:500], X[500:], y[500:])
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.95 {
		t.Errorf("SVR test R2 = %v, want ≥0.95", r2)
	}
}

func TestMLPRegressorNonlinear(t *testing.T) {
	X, y := synthReg(1500, 37)
	r2, err := EvaluateRegressor(&MLPRegressor{Seed: 3}, X[:1200], y[:1200], X[1200:], y[1200:])
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9 {
		t.Errorf("MLP test R2 = %v, want ≥0.9", r2)
	}
}

func TestMLPClassifier(t *testing.T) {
	X, y := synthClf(1500, 41)
	acc, err := EvaluateClassifier(&MLPClassifier{Seed: 4}, X[:1200], y[:1200], X[1200:], y[1200:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("MLP accuracy = %v, want ≥0.9", acc)
	}
}

func TestMLPDeterministicGivenSeed(t *testing.T) {
	X, y := synthReg(300, 43)
	a := &MLPRegressor{Seed: 9, Epochs: 50}
	b := &MLPRegressor{Seed: 9, Epochs: 50}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestAllTechniquesTrainOnPredictorShapedData(t *testing.T) {
	Xr, yr := synthReg(900, 47)
	Xc, yc := synthClf(900, 53)
	for _, tech := range AllTechniques() {
		tech := tech
		t.Run(string(tech), func(t *testing.T) {
			r2, err := EvaluateRegressor(tech.NewRegressor(1), Xr[:700], yr[:700], Xr[700:], yr[700:])
			if err != nil {
				t.Fatalf("regressor: %v", err)
			}
			if r2 < 0.5 {
				t.Errorf("regressor R2 = %v, want ≥0.5", r2)
			}
			acc, err := EvaluateClassifier(tech.NewClassifier(1), Xc[:700], yc[:700], Xc[700:], yc[700:])
			if err != nil {
				t.Fatalf("classifier: %v", err)
			}
			if acc < 0.8 {
				t.Errorf("classifier accuracy = %v, want ≥0.8", acc)
			}
		})
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	regs := []Regressor{
		&LinearRegression{}, &Lasso{}, &KNNRegressor{}, &TreeRegressor{}, &SVR{}, &MLPRegressor{Epochs: 1},
	}
	for _, m := range regs {
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%T accepted empty training set", m)
		}
		if err := m.Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
			t.Errorf("%T accepted ragged matrix", m)
		}
	}
	clfs := []Classifier{
		&LogisticRegression{}, &KNNClassifier{}, &TreeClassifier{}, &SVMClassifier{}, &MLPClassifier{Epochs: 1},
	}
	for _, m := range clfs {
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%T accepted empty training set", m)
		}
		if err := m.Fit([][]float64{{1}, {2}}, []int{0, 3}); err == nil {
			t.Errorf("%T accepted non-binary labels", m)
		}
	}
}

func TestUnknownTechniquePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown technique did not panic")
		}
	}()
	Technique("XGB").NewRegressor(0)
}

func TestSolveLinearProperty(t *testing.T) {
	// Random well-conditioned diagonal-dominant systems round-trip.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range a {
			a[i] = make([]float64, n+1)
			for j := 0; j < n; j++ {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) * 3 // dominance
			for j := 0; j < n; j++ {
				a[i][n] += a[i][j] * x[j]
			}
		}
		got, ok := solveLinear(a)
		if !ok {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
