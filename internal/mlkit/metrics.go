package mlkit

import "math"

func sqrt(x float64) float64 { return math.Sqrt(x) }

// R2 returns the coefficient of determination of predictions against
// ground truth — the accuracy metric of the paper's Figs. 6–7. A perfect
// model scores 1; predicting the mean scores 0; worse models go negative.
func R2(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 || len(yTrue) != len(yPred) {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range yTrue {
		mean += v
	}
	mean /= float64(len(yTrue))
	var ssRes, ssTot float64
	for i, v := range yTrue {
		d := v - yPred[i]
		ssRes += d * d
		m := v - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// MSE returns the mean squared error.
func MSE(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 || len(yTrue) != len(yPred) {
		return math.NaN()
	}
	var s float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		s += d * d
	}
	return s / float64(len(yTrue))
}

// MAE returns the mean absolute error.
func MAE(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 || len(yTrue) != len(yPred) {
		return math.NaN()
	}
	var s float64
	for i := range yTrue {
		s += math.Abs(yTrue[i] - yPred[i])
	}
	return s / float64(len(yTrue))
}

// Accuracy returns the fraction of matching labels.
func Accuracy(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 || len(yTrue) != len(yPred) {
		return math.NaN()
	}
	hits := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(yTrue))
}

// EvaluateRegressor fits a fresh regressor on the training split and
// returns its R² on the test split.
func EvaluateRegressor(m Regressor, trainX [][]float64, trainY []float64, testX [][]float64, testY []float64) (float64, error) {
	if err := m.Fit(trainX, trainY); err != nil {
		return math.NaN(), err
	}
	pred := make([]float64, len(testX))
	for i, x := range testX {
		pred[i] = m.Predict(x)
	}
	return R2(testY, pred), nil
}

// EvaluateClassifier fits a fresh classifier and returns its accuracy on
// the test split.
func EvaluateClassifier(m Classifier, trainX [][]float64, trainY []int, testX [][]float64, testY []int) (float64, error) {
	if err := m.Fit(trainX, trainY); err != nil {
		return math.NaN(), err
	}
	pred := make([]int, len(testX))
	for i, x := range testX {
		pred[i] = m.PredictClass(x)
	}
	return Accuracy(testY, pred), nil
}

// KFold yields k (train, test) index partitions of n samples in order.
// The last folds absorb the remainder.
func KFold(n, k int) [][2][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	folds := make([][2][]int, 0, k)
	size := n / k
	extra := n % k
	start := 0
	for f := 0; f < k; f++ {
		sz := size
		if f < extra {
			sz++
		}
		var test, train []int
		for i := 0; i < n; i++ {
			if i >= start && i < start+sz {
				test = append(test, i)
			} else {
				train = append(train, i)
			}
		}
		folds = append(folds, [2][]int{train, test})
		start += sz
	}
	return folds
}
