package mlkit

import (
	"math/rand"
)

// SVMClassifier is a linear support-vector machine trained with the
// Pegasos stochastic sub-gradient algorithm on standardized features.
type SVMClassifier struct {
	// Lambda is the regularization strength (default 1e-3); Epochs the
	// number of passes over the data (default 40); Seed the shuffling
	// seed.
	Lambda float64
	Epochs int
	Seed   int64

	scaler *Scaler
	w      []float64
	b      float64
}

// Fit trains the hinge-loss separator; labels are 0/1.
func (m *SVMClassifier) Fit(X [][]float64, y []int) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	if err := checkBinary(y); err != nil {
		return err
	}
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 40
	}
	m.scaler = FitScaler(X)
	xs := m.scaler.TransformAll(X)
	n := len(xs)
	d := len(xs[0])
	m.w = make([]float64, d)
	m.b = 0

	rng := rand.New(rand.NewSource(m.Seed + 1))
	t := 0
	for e := 0; e < epochs; e++ {
		for _, i := range rng.Perm(n) {
			t++
			eta := 1 / (lambda * float64(t))
			yi := float64(2*y[i] - 1) // ±1
			margin := yi * (dot(m.w, xs[i]) + m.b)
			for j := range m.w {
				m.w[j] *= 1 - eta*lambda
			}
			if margin < 1 {
				for j := range m.w {
					m.w[j] += eta * yi * xs[i][j]
				}
				m.b += eta * yi
			}
		}
	}
	return nil
}

// Decision returns the signed margin.
func (m *SVMClassifier) Decision(x []float64) float64 {
	if m.scaler == nil {
		return 0
	}
	return dot(m.w, m.scaler.Transform(x)) + m.b
}

// PredictClass returns 1 for a non-negative margin.
func (m *SVMClassifier) PredictClass(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return 0
}

// SVR is linear ε-insensitive support-vector regression trained by
// stochastic sub-gradient descent on standardized features and targets.
type SVR struct {
	// Lambda regularizes (default 1e-4); Epsilon is the insensitive tube
	// half-width in standardized target units (default 0.05); Epochs the
	// passes (default 60); Seed the shuffling seed.
	Lambda  float64
	Epsilon float64
	Epochs  int
	Seed    int64

	scaler     *Scaler
	yMean, ySD float64
	w          []float64
	b          float64
}

// Fit trains the regressor.
func (m *SVR) Fit(X [][]float64, y []float64) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 1e-4
	}
	eps := m.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	m.scaler = FitScaler(X)
	xs := m.scaler.TransformAll(X)
	n := len(xs)
	d := len(xs[0])

	// Standardize targets so Epsilon has scale-free meaning.
	m.yMean, m.ySD = 0, 0
	for _, v := range y {
		m.yMean += v
	}
	m.yMean /= float64(n)
	for _, v := range y {
		dv := v - m.yMean
		m.ySD += dv * dv
	}
	m.ySD = sqrt(m.ySD / float64(n))
	if m.ySD < 1e-12 {
		m.ySD = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - m.yMean) / m.ySD
	}

	m.w = make([]float64, d)
	m.b = 0
	rng := rand.New(rand.NewSource(m.Seed + 1))
	// Polyak averaging over the second half of training smooths the
	// sub-gradient oscillation around the optimum.
	avgW := make([]float64, d)
	avgB := 0.0
	avgN := 0
	halfway := epochs / 2
	t := 0
	for e := 0; e < epochs; e++ {
		for _, i := range rng.Perm(n) {
			t++
			eta := 1 / (lambda * float64(t))
			if eta > 1 {
				eta = 1
			}
			pred := dot(m.w, xs[i]) + m.b
			err := pred - ys[i]
			for j := range m.w {
				m.w[j] *= 1 - eta*lambda
			}
			switch {
			case err > eps:
				for j := range m.w {
					m.w[j] -= eta * xs[i][j]
				}
				m.b -= eta
			case err < -eps:
				for j := range m.w {
					m.w[j] += eta * xs[i][j]
				}
				m.b += eta
			}
			if e >= halfway {
				for j := range m.w {
					avgW[j] += m.w[j]
				}
				avgB += m.b
				avgN++
			}
		}
	}
	if avgN > 0 {
		for j := range avgW {
			m.w[j] = avgW[j] / float64(avgN)
		}
		m.b = avgB / float64(avgN)
	}
	return nil
}

// Predict evaluates the fitted tube centre in original target units.
func (m *SVR) Predict(x []float64) float64 {
	if m.scaler == nil {
		return 0
	}
	return (dot(m.w, m.scaler.Transform(x))+m.b)*m.ySD + m.yMean
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		if i < len(b) {
			s += a[i] * b[i]
		}
	}
	return s
}
