package mlkit

// BatchRegressor is the optional batched fast path of a Regressor:
// PredictBatch evaluates a whole design matrix in one call, writing
// into a caller-owned destination so hot loops can amortize per-call
// overhead and reuse scratch across rows. Implementations must return
// exactly the values point-wise Predict would, bit for bit.
type BatchRegressor interface {
	Regressor
	// PredictBatch appends one prediction per row of X to dst and
	// returns the extended slice (pass dst[:0] to reuse its storage).
	PredictBatch(X [][]float64, dst []float64) []float64
}

// PredictBatch evaluates m on every row of X, using the model's batched
// fast path when it has one and falling back to point-wise Predict
// otherwise. Results are appended to dst.
func PredictBatch(m Regressor, X [][]float64, dst []float64) []float64 {
	if b, ok := m.(BatchRegressor); ok {
		return b.PredictBatch(X, dst)
	}
	for _, x := range X {
		dst = append(dst, m.Predict(x))
	}
	return dst
}

// TransformInto standardizes one vector into a caller-owned buffer,
// the allocation-free counterpart of Transform.
func (s *Scaler) TransformInto(x, dst []float64) []float64 {
	dst = dst[:0]
	for j, v := range x {
		if j < len(s.Mean) {
			dst = append(dst, (v-s.Mean[j])/s.SD[j])
		} else {
			dst = append(dst, v)
		}
	}
	return dst
}

// PredictBatch implements BatchRegressor.
func (m *LinearRegression) PredictBatch(X [][]float64, dst []float64) []float64 {
	for _, x := range X {
		v := m.intercept
		for j, c := range m.coef {
			if j < len(x) {
				v += c * x[j]
			}
		}
		dst = append(dst, v)
	}
	return dst
}

// PredictBatch implements BatchRegressor, reusing one standardization
// buffer across the whole batch.
func (m *Lasso) PredictBatch(X [][]float64, dst []float64) []float64 {
	if m.scaler == nil {
		for range X {
			dst = append(dst, 0)
		}
		return dst
	}
	var xs []float64
	for _, x := range X {
		xs = m.scaler.TransformInto(x, xs)
		v := m.intercept
		for j, c := range m.coef {
			if j < len(xs) {
				v += c * xs[j]
			}
		}
		dst = append(dst, v)
	}
	return dst
}

// PredictBatch implements BatchRegressor.
func (m *TreeRegressor) PredictBatch(X [][]float64, dst []float64) []float64 {
	for _, x := range X {
		dst = append(dst, m.Predict(x))
	}
	return dst
}

// PredictBatch implements BatchRegressor, reusing one feature-mask
// projection buffer across the whole batch.
func (m *ForestRegressor) PredictBatch(X [][]float64, dst []float64) []float64 {
	if len(m.trees) == 0 {
		for range X {
			dst = append(dst, 0)
		}
		return dst
	}
	var proj []float64
	for _, x := range X {
		sum := 0.0
		for t, tree := range m.trees {
			proj = proj[:0]
			for _, f := range m.masks[t] {
				if f < len(x) {
					proj = append(proj, x[f])
				} else {
					proj = append(proj, 0)
				}
			}
			sum += tree.Predict(proj)
		}
		dst = append(dst, sum/float64(len(m.trees)))
	}
	return dst
}

// PredictBatch implements BatchRegressor.
func (m *GBMRegressor) PredictBatch(X [][]float64, dst []float64) []float64 {
	for _, x := range X {
		v := m.base
		for _, t := range m.trees {
			v += m.lr * t.Predict(x)
		}
		dst = append(dst, v)
	}
	return dst
}
