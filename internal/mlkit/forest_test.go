package mlkit

import "testing"

func TestForestRegressorGeneralizes(t *testing.T) {
	X, y := synthReg(1500, 61)
	r2, err := EvaluateRegressor(&ForestRegressor{Seed: 1}, X[:1200], y[:1200], X[1200:], y[1200:])
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9 {
		t.Errorf("forest test R2 = %v, want ≥0.9", r2)
	}
}

func TestForestBeatsSingleTreeVariance(t *testing.T) {
	// On a small noisy sample the bagged ensemble should generalize at
	// least as well as a single deep tree.
	X, y := synthReg(420, 67)
	single, err := EvaluateRegressor(&TreeRegressor{}, X[:300], y[:300], X[300:], y[300:])
	if err != nil {
		t.Fatal(err)
	}
	forest, err := EvaluateRegressor(&ForestRegressor{Seed: 2}, X[:300], y[:300], X[300:], y[300:])
	if err != nil {
		t.Fatal(err)
	}
	if forest < single-0.02 {
		t.Errorf("forest R2 %v materially below single tree %v", forest, single)
	}
}

func TestForestClassifier(t *testing.T) {
	X, y := synthClf(1500, 71)
	acc, err := EvaluateClassifier(&ForestClassifier{Seed: 3}, X[:1200], y[:1200], X[1200:], y[1200:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.92 {
		t.Errorf("forest accuracy = %v, want ≥0.92", acc)
	}
	// Probabilities stay in [0,1].
	m := &ForestClassifier{Seed: 3, Trees: 10}
	if err := m.Fit(X[:200], y[:200]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := m.PredictProb(X[i])
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	X, y := synthReg(300, 73)
	a := &ForestRegressor{Seed: 5, Trees: 10}
	b := &ForestRegressor{Seed: 5, Trees: 10}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestForestRejectsBadInput(t *testing.T) {
	var m ForestRegressor
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if m.Predict([]float64{1}) != 0 {
		t.Error("unfitted forest should predict 0")
	}
	var c ForestClassifier
	if err := c.Fit([][]float64{{1}}, []int{2}); err == nil {
		t.Error("non-binary labels accepted")
	}
}
