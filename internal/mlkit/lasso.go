package mlkit

import (
	"math"
	"sort"
)

// Lasso is L1-regularized linear regression solved by cyclic coordinate
// descent on standardized features. The paper uses it once, offline, to
// select the four model features with the highest explanatory power
// (§V-A); SelectFeatures packages that use case.
type Lasso struct {
	// Lambda is the L1 strength (default 0.01 — in standardized units).
	Lambda float64
	// Iters is the number of full coordinate sweeps (default 200).
	Iters int
	// Tol stops early when no coefficient moves more than this (default
	// 1e-7).
	Tol float64

	scaler    *Scaler
	yMean     float64
	coef      []float64 // in standardized space
	intercept float64
}

// Fit runs coordinate descent.
func (m *Lasso) Fit(X [][]float64, y []float64) error {
	if err := checkMatrix(X, len(y)); err != nil {
		return err
	}
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 0.01
	}
	iters := m.Iters
	if iters <= 0 {
		iters = 200
	}
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-7
	}

	m.scaler = FitScaler(X)
	xs := m.scaler.TransformAll(X)
	n := len(xs)
	d := len(xs[0])

	m.yMean = 0
	for _, v := range y {
		m.yMean += v
	}
	m.yMean /= float64(n)
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - m.yMean
	}

	m.coef = make([]float64, d)
	resid := append([]float64(nil), yc...) // y − Xβ
	// Column squared norms (≈ n after standardization; compute exactly).
	colSq := make([]float64, d)
	for _, row := range xs {
		for j, v := range row {
			colSq[j] += v * v
		}
	}
	for it := 0; it < iters; it++ {
		maxMove := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = x_j · (resid + x_j β_j)
			rho := 0.0
			for i := range xs {
				rho += xs[i][j] * (resid[i] + xs[i][j]*m.coef[j])
			}
			newB := softThreshold(rho, lambda*float64(n)) / colSq[j]
			if delta := newB - m.coef[j]; delta != 0 {
				for i := range xs {
					resid[i] -= xs[i][j] * delta
				}
				if ad := math.Abs(delta); ad > maxMove {
					maxMove = ad
				}
				m.coef[j] = newB
			}
		}
		if maxMove < tol {
			break
		}
	}
	m.intercept = m.yMean
	return nil
}

func softThreshold(z, g float64) float64 {
	switch {
	case z > g:
		return z - g
	case z < -g:
		return z + g
	default:
		return 0
	}
}

// Predict evaluates the fitted model.
func (m *Lasso) Predict(x []float64) float64 {
	if m.scaler == nil {
		return 0
	}
	xs := m.scaler.Transform(x)
	v := m.intercept
	for j, c := range m.coef {
		if j < len(xs) {
			v += c * xs[j]
		}
	}
	return v
}

// Coefficients returns the standardized-space weights; magnitude ranks
// feature importance.
func (m *Lasso) Coefficients() []float64 {
	return append([]float64(nil), m.coef...)
}

// SelectFeatures fits a Lasso and returns the indices of the k features
// with the largest absolute standardized coefficients, in descending
// importance — the paper's §V-A feature-selection step.
func SelectFeatures(X [][]float64, y []float64, lambda float64, k int) ([]int, error) {
	m := &Lasso{Lambda: lambda}
	if err := m.Fit(X, y); err != nil {
		return nil, err
	}
	type fc struct {
		idx int
		mag float64
	}
	var all []fc
	for j, c := range m.coef {
		all = append(all, fc{j, math.Abs(c)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].mag != all[j].mag {
			return all[i].mag > all[j].mag
		}
		return all[i].idx < all[j].idx
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, 0, k)
	for _, f := range all[:k] {
		out = append(out, f.idx)
	}
	return out, nil
}
