package experiments

import (
	"fmt"

	"sturgeon/internal/models"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// ModelScoreRow is one application-model's quality across techniques.
type ModelScoreRow struct {
	Model  string // e.g. "memcached (LS perf, accuracy)"
	Scores []models.Score
}

func scoreTable(title string, rows []ModelScoreRow) *trace.Table {
	tbl := trace.NewTable(title, "model", "DT", "KNN", "SV", "MLP", "LR", "best")
	for _, r := range rows {
		cells := []interface{}{r.Model}
		for _, s := range r.Scores {
			cells = append(cells, s.Value)
		}
		best := models.Best(r.Scores)
		cells = append(cells, fmt.Sprintf("%s", best.Technique))
		tbl.Addf(cells...)
	}
	return tbl
}

// Fig6PerformanceModels reproduces Fig. 6: the quality of every §V-C
// technique on the performance models — classification accuracy for the
// LS feasibility models, R² for the BE throughput regressions.
func Fig6PerformanceModels(env *Env) ([]ModelScoreRow, *trace.Table) {
	var rows []ModelScoreRow
	for _, ls := range workload.LSServices() {
		d := env.LSData(ls)
		scores, err := models.CompareClassification(d.Perf, env.Cfg.Seed)
		if err != nil {
			panic(err)
		}
		rows = append(rows, ModelScoreRow{Model: ls.Name + " (LS perf, accuracy)", Scores: scores})
	}
	for _, be := range workload.BEApps() {
		d := env.BEData(be)
		scores, err := models.CompareRegression(d.Thpt, env.Cfg.Seed)
		if err != nil {
			panic(err)
		}
		rows = append(rows, ModelScoreRow{Model: be.Name + " (BE perf, R²)", Scores: scores})
	}
	return rows, scoreTable("Fig. 6 — performance-model quality per technique", rows)
}

// Fig7PowerModels reproduces Fig. 7: R² of every technique on the power
// models of all nine applications.
func Fig7PowerModels(env *Env) ([]ModelScoreRow, *trace.Table) {
	var rows []ModelScoreRow
	for _, ls := range workload.LSServices() {
		d := env.LSData(ls)
		scores, err := models.CompareRegression(d.Power, env.Cfg.Seed)
		if err != nil {
			panic(err)
		}
		rows = append(rows, ModelScoreRow{Model: ls.Name + " (LS power, R²)", Scores: scores})
	}
	for _, be := range workload.BEApps() {
		d := env.BEData(be)
		scores, err := models.CompareRegression(d.Power, env.Cfg.Seed)
		if err != nil {
			panic(err)
		}
		rows = append(rows, ModelScoreRow{Model: be.Name + " (BE power, R²)", Scores: scores})
	}
	return rows, scoreTable("Fig. 7 — power-model quality per technique (R²)", rows)
}
