package experiments

import "sturgeon/internal/trace"

// Table1 reproduces the paper's qualitative system comparison (Table I).
// It is static by nature; the row for Sturgeon is what this repository
// implements, and the PARTIES/Heracles rows match the baselines in
// internal/parties and internal/heracles.
func Table1() *trace.Table {
	t := trace.NewTable("Table I — comparing Sturgeon with prior related work",
		"system", "online res. mgmt", "co-locate LS+BE", "power constraint", "res. preference")
	t.Add("Bubble", "", "yes", "", "")
	t.Add("PARTIES", "yes", "yes", "", "LS")
	t.Add("Dirigent", "yes", "yes", "", "LS")
	t.Add("PowerChief", "yes", "", "yes", "")
	t.Add("Rubik", "yes", "yes", "", "")
	t.Add("Heracles", "yes", "yes", "partial", "")
	t.Add("Sturgeon", "yes", "yes", "yes", "LS+BE")
	return t
}
