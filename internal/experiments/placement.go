package experiments

import (
	"fmt"

	"sturgeon/internal/cluster"
	"sturgeon/internal/placement"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// PlacementShowdown quantifies the fleet placement and migration engine
// (internal/placement, DESIGN.md §15) on the pinned flash-crowd
// scenario: the same 12-node fleet with heterogeneous static caps and
// the same eight BE jobs run three ways — a seeded random pairing, the
// preference-aware solver steered by the closed-form Physics pair
// model, and the same solver steered by predictors trained on profiling
// sweeps (the paper's model path). Starved nodes shed BE frequency
// first, so random pairing strands frequency-hungry applications where
// the watts are not; both placed rows must show strictly higher fleet
// BE throughput at equal-or-better QoS, with the migration planner
// paying warm-up penalties for every mid-run move the rotating hot spot
// forces. Quick mode skips the trained row — sweeping and fitting six
// pair models is the expensive half — and keeps the physics-steered
// comparison.
func PlacementShowdown(env *Env) *trace.Table {
	tbl := trace.NewTable(
		fmt.Sprintf("Fleet placement vs random pairing (12 nodes, seed %d)", env.Cfg.Seed),
		"pairing", "qos_rate", "be_ups", "mean_power_w", "work_per_kj",
		"moves", "warmup_lost_ups")
	rows := []struct {
		name            string
		placed, trained bool
	}{
		{"random", false, false},
		{"placed-physics", true, false},
		{"placed-trained", true, true},
	}
	for _, row := range rows {
		if row.trained && env.Cfg.Quick {
			continue
		}
		o := cluster.DefaultPlacementFleet(env.Cfg.Seed)
		o.Placed = row.placed
		if row.trained {
			o.Models = func(ls, be workload.Profile) placement.PairModel {
				return env.Predictor(ls, be)
			}
		}
		c, err := cluster.BuildPlacementFleet(o)
		if err != nil {
			panic(fmt.Sprintf("experiments: placement fleet: %v", err))
		}
		c.Parallelism = env.Cfg.Parallelism
		if row.name == "placed-physics" {
			// Only the placed-physics arm is instrumented: a shared sink
			// fed by all three arms would interleave their journals and let
			// each run's timeline overwrite the last (TSeries restarts when
			// simulated time rewinds), so the exported decision trail
			// describes exactly one attributable run — the arm cmd/obsreport
			// analyzes in EXPERIMENTS.md's placement recipe.
			c.SetObs(env.Cfg.Obs)
		}
		res := c.Run(o.Trace(), o.DurationS)
		tbl.Addf(row.name, res.QoSRate, res.MeanBEThroughputUPS,
			res.MeanPowerW, res.WorkPerKJ,
			float64(res.Place.Moves), res.Place.WarmupLostUPS)
	}
	return tbl
}
