package experiments

import (
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// EnergyEfficiency quantifies §II-C's motivation — improving the energy
// efficiency of power-capped datacenters — by accounting each
// controller's best-effort work and served queries per kilojoule over the
// standard fluctuating run on a pair subset.
func EnergyEfficiency(env *Env, withHeracles bool) *trace.Table {
	ctrls := []string{"sturgeon", "parties"}
	if withHeracles {
		ctrls = append(ctrls, "heracles")
	}
	tbl := trace.NewTable("Energy efficiency over the fluctuating run",
		"pair", "controller", "energy_kj", "be_units_per_kj", "ls_kqueries_per_kj")
	pairs := []struct{ LS, BE workload.Profile }{
		{workload.Memcached(), workload.Raytrace()},
		{workload.Xapian(), workload.Ferret()},
		{workload.ImgDNN(), workload.Swaptions()},
	}
	for _, pair := range pairs {
		for _, c := range ctrls {
			res := env.RunPair(c, pair.LS, pair.BE)
			var energyJ, beUnits, okQueries float64
			for _, st := range res.Intervals {
				energyJ += float64(st.TruePower) // 1 s intervals
				beUnits += st.BEThroughputUPS
				okQueries += st.QPS * st.QoSFrac
			}
			kj := energyJ / 1e3
			tbl.Addf(pair.LS.Name+"+"+pair.BE.Name, c,
				kj, beUnits/kj, okQueries/1e3/kj)
		}
	}
	return tbl
}
