package experiments

import (
	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// Fig3Row compares two feasible configurations of one pair at one load.
type Fig3Row struct {
	LS, BE   string
	LoadFrac float64
	// CoreRich is the feasible candidate granting the BE side the most
	// cores; FreqRich the one granting the highest frequency.
	CoreRich, FreqRich hw.Config
	// ThptCores and ThptFreq are true normalized BE throughputs.
	ThptCores, ThptFreq float64
	// Winner is "cores" or "freq".
	Winner string
}

// Fig3PaperPairs evaluates the paper's literal Fig. 3 configuration
// pairs on the physics: at 20 % load <4C,1.6F,6L; 16C,1.8F,14L> versus
// <8C,1.2F,7L; 12C,2.2F,13L>, and at 35 % load <12C,1.3F,12L; 8C,2.2F,8L>
// versus <8C,2.0F,10L; 12C,1.4F,10L>. The paper's shape: more cores win
// for every application at 20 %; higher frequency wins at 35 % for every
// application except ferret.
func Fig3PaperPairs(env *Env) ([]Fig3Row, *trace.Table) {
	tbl := trace.NewTable("Fig. 3 (paper's configuration pairs) — normalized BE throughput",
		"pair", "load", "core-rich config", "thpt", "freq-rich config", "thpt", "winner")
	ls := workload.Memcached()
	type pairCfg struct {
		load               float64
		coreRich, freqRich hw.Config
	}
	cases := []pairCfg{
		{0.20,
			hw.Config{LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6}, BE: hw.Alloc{Cores: 16, Freq: 1.8, LLCWays: 14}},
			hw.Config{LS: hw.Alloc{Cores: 8, Freq: 1.2, LLCWays: 7}, BE: hw.Alloc{Cores: 12, Freq: 2.2, LLCWays: 13}}},
		{0.35,
			hw.Config{LS: hw.Alloc{Cores: 8, Freq: 2.0, LLCWays: 10}, BE: hw.Alloc{Cores: 12, Freq: 1.4, LLCWays: 10}},
			hw.Config{LS: hw.Alloc{Cores: 12, Freq: 1.3, LLCWays: 12}, BE: hw.Alloc{Cores: 8, Freq: 2.2, LLCWays: 8}}},
	}
	var rows []Fig3Row
	for _, be := range workload.BEApps() {
		solo := sim.SoloBEThroughput(env.Spec, sim.QuietNode(ls, be, 1).Bus, be)
		for _, pc := range cases {
			measure := func(cfg hw.Config) float64 {
				node := sim.QuietNode(ls, be, env.Cfg.Seed)
				if err := node.Apply(cfg); err != nil {
					return 0
				}
				return node.Step(1, pc.load*ls.PeakQPS).BEThroughputUPS / solo
			}
			r := Fig3Row{
				LS: ls.Name, BE: be.Name, LoadFrac: pc.load,
				CoreRich: pc.coreRich, FreqRich: pc.freqRich,
				ThptCores: measure(pc.coreRich), ThptFreq: measure(pc.freqRich),
			}
			if r.ThptCores >= r.ThptFreq {
				r.Winner = "cores"
			} else {
				r.Winner = "freq"
			}
			rows = append(rows, r)
			tbl.Addf(ls.Name+"+"+be.Name, r.LoadFrac,
				r.CoreRich.String(), r.ThptCores,
				r.FreqRich.String(), r.ThptFreq, r.Winner)
		}
	}
	return rows, tbl
}

// Fig3FeasibleConfigs reproduces Fig. 3: for memcached co-located with
// each BE application at 20 % and 35 % load, take the feasible-candidate
// frontier from Sturgeon's own search, pick the core-richest and
// frequency-richest BE options, and measure their true throughput. The
// paper's shape: at 20 % more cores win for every application, at 35 %
// higher frequency wins for all but ferret.
func Fig3FeasibleConfigs(env *Env) ([]Fig3Row, *trace.Table) {
	tbl := trace.NewTable("Fig. 3 — BE throughput under two feasible configurations (normalized to solo run)",
		"pair", "load", "core-rich config", "thpt", "freq-rich config", "thpt", "winner")
	ls := workload.Memcached()
	budget := env.Budget(ls)

	var rows []Fig3Row
	for _, be := range workload.BEApps() {
		// Fig. 3 is the paper's *motivation* measurement, taken on the
		// real machine before any predictor exists — so the candidate
		// frontier here is computed against ground-truth physics.
		s := &core.Searcher{
			Spec: env.Spec, Pred: newPhysOracle(env.Spec, ls, be, env.Cfg.Seed),
			Budget:       budget,
			HeadroomWays: -1, HeadroomFreq: -1, PowerGuardFrac: 0.001,
		}
		solo := sim.SoloBEThroughput(env.Spec, sim.QuietNode(ls, be, 1).Bus, be)
		for _, load := range []float64{0.20, 0.35} {
			cands := s.Candidates(load * ls.PeakQPS)
			if len(cands) < 2 {
				continue
			}
			// The paper's two options: the candidate granting the BE
			// application the most cores (the just-enough-LS corner) and
			// the one granting the highest BE frequency (the end of the
			// sweep).
			coreRich := cands[0].Config
			freqRich := cands[len(cands)-1].Config
			for _, c := range cands {
				if c.Config.BE.Cores > coreRich.BE.Cores ||
					(c.Config.BE.Cores == coreRich.BE.Cores && c.Config.BE.LLCWays > coreRich.BE.LLCWays) {
					coreRich = c.Config
				}
				if c.Config.BE.Freq > freqRich.BE.Freq ||
					(c.Config.BE.Freq == freqRich.BE.Freq && c.Config.BE.Cores > freqRich.BE.Cores) {
					freqRich = c.Config
				}
			}
			measure := func(cfg hw.Config) float64 {
				node := sim.QuietNode(ls, be, env.Cfg.Seed)
				if err := node.Apply(cfg); err != nil {
					return 0
				}
				return node.Step(1, load*ls.PeakQPS).BEThroughputUPS / solo
			}
			r := Fig3Row{
				LS: ls.Name, BE: be.Name, LoadFrac: load,
				CoreRich: coreRich, FreqRich: freqRich,
				ThptCores: measure(coreRich), ThptFreq: measure(freqRich),
			}
			if r.ThptCores >= r.ThptFreq {
				r.Winner = "cores"
			} else {
				r.Winner = "freq"
			}
			rows = append(rows, r)
			tbl.Addf(ls.Name+"+"+be.Name, r.LoadFrac,
				r.CoreRich.String(), r.ThptCores,
				r.FreqRich.String(), r.ThptFreq, r.Winner)
		}
	}
	return rows, tbl
}
