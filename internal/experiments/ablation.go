package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/multi"
	"sturgeon/internal/power"
	"sturgeon/internal/queueing"
	"sturgeon/internal/sim"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// AblationQueueEngines cross-validates the analytic G/G/c tail model the
// node simulator uses against the discrete-event reference across
// utilizations and burstiness levels (DESIGN.md §5.1).
func AblationQueueEngines(env *Env) *trace.Table {
	tbl := trace.NewTable("Ablation — analytic vs discrete-event queueing p95",
		"servers", "rho", "batch_mean", "analytic_p95_ms", "des_p95_ms", "rel_err")
	rng := rand.New(rand.NewSource(env.Cfg.Seed))
	cases := []struct {
		servers int
		rho     float64
		batch   float64
	}{
		{8, 0.3, 1}, {8, 0.6, 1}, {8, 0.85, 1},
		{8, 0.6, 4}, {8, 0.85, 4},
		{16, 0.7, 2}, {4, 0.5, 6},
	}
	const svcMean, svcCV = 0.002, 0.6
	for _, c := range cases {
		lambda := c.rho * float64(c.servers) / svcMean
		arrivalCV := 1.0
		if c.batch > 1 {
			arrivalCV = math.Sqrt(2*c.batch - 1)
		}
		a := queueing.Analytic{
			Lambda: lambda, Servers: c.servers,
			SvcMean: svcMean, SvcCV: svcCV, ArrivalCV: arrivalCV,
		}
		d := &queueing.DES{
			Servers: c.servers, SvcMean: svcMean, SvcCV: svcCV,
			BatchMean: c.batch, Rng: rng,
		}
		lat := d.Run(lambda, 5, 80)
		ap := a.SojournQuantile(0.95)
		dp := lat.Quantile(0.95)
		rel := 0.0
		if dp > 0 {
			rel = (ap - dp) / dp
		}
		tbl.Addf(c.servers, c.rho, c.batch, ap*1e3, dp*1e3, fmt.Sprintf("%+.1f%%", rel*100))
	}
	return tbl
}

// AblationEndToEndEngines runs the same Sturgeon evaluation with the
// node's latency physics driven by the analytic model and by the
// discrete-event simulator — the end-to-end counterpart of
// AblationQueueEngines (DESIGN.md §5.1).
func AblationEndToEndEngines(env *Env) *trace.Table {
	tbl := trace.NewTable("Ablation — analytic vs DES latency engine, end to end (memcached+raytrace)",
		"engine", "qos_rate", "norm_be_thpt", "breaker_trips")
	ls, be := workload.Memcached(), workload.Raytrace()
	budget := env.Budget(ls)
	dur := env.Cfg.DurationS
	if dur > 300 {
		dur = 300 // the DES engine is ~30x slower per interval
	}
	for _, useDES := range []bool{false, true} {
		node := sim.NewNode(ls, be, pairSeed(env.Cfg.Seed, ls.Name, be.Name))
		node.UseDES = useDES
		ctrl := core.New(env.Spec, env.Predictor(ls, be), budget, core.Options{})
		if err := node.Apply(hw.SoloLS(env.Spec)); err != nil {
			panic(err)
		}
		r := sim.Runner{Node: node, Ctrl: ctrl, Budget: budget,
			Trace: workload.Triangle(0.2, 0.8, float64(dur)), DurationS: dur}
		res := r.Run()
		label := "analytic"
		if useDES {
			label = "discrete-event"
		}
		tbl.Addf(label, res.QoSRate, res.NormBEThroughput, res.BreakerTrips)
	}
	return tbl
}

// MultiAppShowdown exercises the §V-B multi-application extension: two
// LS services (memcached + xapian) share a node with two BE applications
// (raytrace + swaptions) under the multi-way controller, compared with a
// static half-and-half partition.
func MultiAppShowdown(env *Env) *trace.Table {
	tbl := trace.NewTable("Extension — multi-application co-location (memcached+xapian with rt+sp)",
		"policy", "joint_qos", "be_units_per_s", "overload_frac")
	apps := multi.Apps{workload.Memcached(), workload.Xapian(),
		workload.Raytrace(), workload.Swaptions()}
	opts := env.collectOpts()
	lsm := map[int]*models.LSModels{}
	bem := map[int]*models.BEModels{}
	for _, i := range apps.LSIndices() {
		m, err := models.FitLS(apps[i], env.LSData(apps[i]), opts.Seed)
		if err != nil {
			panic(err)
		}
		lsm[i] = m
	}
	for _, j := range apps.BEIndices() {
		m, err := models.FitBE(apps[j], env.BEData(apps[j]), opts.Seed)
		if err != nil {
			panic(err)
		}
		bem[j] = m
	}
	budget := env.Budget(apps[0]) * 1.1
	searcher := &multi.Searcher{Spec: env.Spec, Apps: apps, LS: lsm, BE: bem,
		Budget: budget, IdleW: power.DefaultParams().IdleW}

	dur := env.Cfg.DurationS
	tr0 := workload.Triangle(0.2, 0.6, float64(dur))
	tr1 := workload.Diurnal(0.2, 0.5, float64(dur))

	run := func(decide func(st multi.IntervalStats, qps []float64) multi.Partition, init multi.Partition, label string) {
		node := multi.NewNode(apps, pairSeed(env.Cfg.Seed, "multi", label))
		if err := node.Apply(init); err != nil {
			panic(err)
		}
		b := power.NewBudget(budget)
		var okQ, totQ, beWork float64
		for i := 0; i < dur; i++ {
			t := float64(i + 1)
			qps := []float64{tr0(t) * apps[0].PeakQPS, tr1(t) * apps[1].PeakQPS}
			st := node.Step(t, qps)
			b.Observe(st.TruePower)
			for _, li := range apps.LSIndices() {
				okQ += st.Apps[li].QPS * st.Apps[li].QoSFrac
				totQ += st.Apps[li].QPS
			}
			for _, j := range apps.BEIndices() {
				beWork += st.Apps[j].ThroughputUPS
			}
			if decide != nil {
				if err := node.Apply(decide(st, qps)); err != nil {
					panic(err)
				}
			}
		}
		tbl.Addf(label, okQ/totQ, beWork/float64(dur), b.OverloadFraction())
	}

	// Multi-Sturgeon.
	ctrl := multi.NewController(env.Spec, apps, searcher, budget)
	init := make(multi.Partition, len(apps))
	for i := range init {
		init[i].Freq = env.Spec.FreqMin
	}
	init[0] = hw.Alloc{Cores: env.Spec.Cores, Freq: env.Spec.FreqMax, LLCWays: env.Spec.LLCWays}
	run(ctrl.Decide, init, "multi-sturgeon")

	// Static half-and-half: each service gets a fixed quarter of the
	// machine at a middling frequency, BE apps the rest at the floor.
	static := multi.Partition{
		{Cores: 6, Freq: 2.0, LLCWays: 6},
		{Cores: 6, Freq: 2.0, LLCWays: 6},
		{Cores: 4, Freq: 1.2, LLCWays: 4},
		{Cores: 4, Freq: 1.2, LLCWays: 4},
	}
	run(nil, static, "static-quarters")
	return tbl
}

// AblationHarvestPolicy compares the preference-aware balancer with a
// fixed-order (cores-first) harvester on the cache-sensitive
// memcached+raytrace pair (DESIGN.md §5.4).
func AblationHarvestPolicy(env *Env) *trace.Table {
	tbl := trace.NewTable("Ablation — preference-aware vs fixed-order harvesting",
		"policy", "qos_rate", "norm_be_thpt")
	ls, be := workload.Memcached(), workload.Raytrace()
	budget := env.Budget(ls)
	run := func(fixed bool) sim.Result {
		node := sim.NewNode(ls, be, pairSeed(env.Cfg.Seed, ls.Name, be.Name))
		ctrl := core.New(env.Spec, env.Predictor(ls, be), budget,
			core.Options{FixedHarvestOrder: fixed})
		if err := node.Apply(hw.SoloLS(env.Spec)); err != nil {
			panic(err)
		}
		r := sim.Runner{Node: node, Ctrl: ctrl, Budget: budget,
			Trace:     workload.Triangle(0.2, 0.8, float64(env.Cfg.DurationS)),
			DurationS: env.Cfg.DurationS}
		return r.Run()
	}
	pref := run(false)
	fixed := run(true)
	tbl.Addf("preference-aware", pref.QoSRate, pref.NormBEThroughput)
	tbl.Addf("cores-first", fixed.QoSRate, fixed.NormBEThroughput)
	return tbl
}

// AblationPeakVsMeanPower trains one predictor on the paper's
// conservative peak-power labels and one on mean-power labels, then
// compares overload exposure under Sturgeon (DESIGN.md §5.2).
func AblationPeakVsMeanPower(env *Env) *trace.Table {
	tbl := trace.NewTable("Ablation — peak vs mean power-model labels (memcached+swaptions)",
		"labels", "qos_rate", "norm_be_thpt", "overload_frac", "breaker_trips")
	ls, be := workload.Memcached(), workload.Swaptions()
	budget := env.Budget(ls)
	for _, mean := range []bool{false, true} {
		opts := env.collectOpts()
		opts.MeanPowerLabels = mean
		pred, err := models.Train(ls, be, models.TrainOptions{Collect: opts})
		if err != nil {
			panic(err)
		}
		node := sim.NewNode(ls, be, pairSeed(env.Cfg.Seed, ls.Name, be.Name))
		ctrl := core.New(env.Spec, pred, budget, core.Options{})
		if err := node.Apply(hw.SoloLS(env.Spec)); err != nil {
			panic(err)
		}
		r := sim.Runner{Node: node, Ctrl: ctrl, Budget: budget,
			Trace:     workload.Triangle(0.2, 0.8, float64(env.Cfg.DurationS)),
			DurationS: env.Cfg.DurationS}
		res := r.Run()
		label := "peak (paper)"
		if mean {
			label = "mean"
		}
		tbl.Addf(label, res.QoSRate, res.NormBEThroughput, res.OverloadFrac, res.BreakerTrips)
	}
	return tbl
}

// AblationSlackBounds sweeps the Algorithm 1 α/β thresholds on one pair
// (DESIGN.md §5.5).
func AblationSlackBounds(env *Env) *trace.Table {
	tbl := trace.NewTable("Ablation — slack bound sensitivity (memcached+swaptions)",
		"alpha", "beta", "qos_rate", "norm_be_thpt", "overload_frac")
	ls, be := workload.Memcached(), workload.Swaptions()
	budget := env.Budget(ls)
	for _, ab := range [][2]float64{{0.05, 0.15}, {0.10, 0.20}, {0.20, 0.40}} {
		node := sim.NewNode(ls, be, pairSeed(env.Cfg.Seed, ls.Name, be.Name))
		ctrl := core.New(env.Spec, env.Predictor(ls, be), budget,
			core.Options{Alpha: ab[0], Beta: ab[1]})
		if err := node.Apply(hw.SoloLS(env.Spec)); err != nil {
			panic(err)
		}
		r := sim.Runner{Node: node, Ctrl: ctrl, Budget: budget,
			Trace:     workload.Triangle(0.2, 0.8, float64(env.Cfg.DurationS)),
			DurationS: env.Cfg.DurationS}
		res := r.Run()
		tbl.Addf(ab[0], ab[1], res.QoSRate, res.NormBEThroughput, res.OverloadFrac)
	}
	return tbl
}

// AblationSearchHeadroom compares the default one-step search headroom
// with headroom disabled (DESIGN.md §5.3): without it, the binary search
// parks the LS service exactly on the learned feasibility boundary.
func AblationSearchHeadroom(env *Env) *trace.Table {
	tbl := trace.NewTable("Ablation — search grid headroom (memcached+raytrace)",
		"headroom", "qos_rate", "norm_be_thpt")
	ls, be := workload.Memcached(), workload.Raytrace()
	budget := env.Budget(ls)
	for _, h := range []int{0, -1} { // 0 = default (+1 step), -1 = disabled
		node := sim.NewNode(ls, be, pairSeed(env.Cfg.Seed, ls.Name, be.Name))
		ctrl := core.New(env.Spec, env.Predictor(ls, be), budget,
			core.Options{SearchHeadroom: h})
		if err := node.Apply(hw.SoloLS(env.Spec)); err != nil {
			panic(err)
		}
		r := sim.Runner{Node: node, Ctrl: ctrl, Budget: budget,
			Trace:     workload.Triangle(0.2, 0.8, float64(env.Cfg.DurationS)),
			DurationS: env.Cfg.DurationS}
		res := r.Run()
		label := "+1 step (default)"
		if h < 0 {
			label = "disabled"
		}
		tbl.Addf(label, res.QoSRate, res.NormBEThroughput)
	}
	return tbl
}
