package experiments

import (
	"sturgeon/internal/control"
	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// raplWrapped is the firmware-capping baseline: an inner controller runs
// power-UNAWARE (it is shown an infinite budget, like the prior work of
// §II-B), and the RAPL package limit indiscriminately throttles every
// core whenever the measured draw exceeds the cap.
type raplWrapped struct {
	inner control.Controller
	cap   *sim.RAPLCap
}

func (w *raplWrapped) Name() string { return "rapl-capped" }

func (w *raplWrapped) Decide(obs control.Observation) hw.Config {
	// The software layer is blind to power.
	blind := obs
	blind.Budget = 1e9
	cfg := w.inner.Decide(blind)
	w.cap.Observe(float64(obs.Power))
	return w.cap.Apply(cfg)
}

// RAPLBaseline contrasts Sturgeon with the firmware answer to the same
// problem: let a power-unaware resource manager allocate for maximum
// throughput and have the RAPL package limit enforce the cap. The
// expected shape (argued by the paper's introduction): the cap holds,
// but because firmware cannot tell latency-critical cores from
// best-effort ones, the LS service pays with its tail.
func RAPLBaseline(env *Env) *trace.Table {
	tbl := trace.NewTable("Extension — Sturgeon vs power-unaware manager under a RAPL package cap",
		"pair", "controller", "qos_rate", "norm_be_thpt", "overload_frac", "breaker_trips")
	pairs := []struct{ LS, BE workload.Profile }{
		{workload.Memcached(), workload.Swaptions()},
		{workload.Xapian(), workload.Raytrace()},
	}
	for _, pair := range pairs {
		budget := env.Budget(pair.LS)
		for _, kind := range []string{"sturgeon", "rapl"} {
			node := sim.NewNode(pair.LS, pair.BE, pairSeed(env.Cfg.Seed, pair.LS.Name, pair.BE.Name))
			var ctrl control.Controller
			if kind == "sturgeon" {
				ctrl = core.New(env.Spec, env.Predictor(pair.LS, pair.BE), budget, core.Options{})
			} else {
				inner := core.New(env.Spec, env.Predictor(pair.LS, pair.BE), 1e9, core.Options{})
				ctrl = &raplWrapped{
					inner: inner,
					cap:   &sim.RAPLCap{Spec: env.Spec, Limit: float64(budget)},
				}
			}
			if err := node.Apply(hw.SoloLS(env.Spec)); err != nil {
				panic(err)
			}
			r := sim.Runner{Node: node, Ctrl: ctrl, Budget: budget,
				Trace:     workload.Triangle(0.2, 0.8, float64(env.Cfg.DurationS)),
				DurationS: env.Cfg.DurationS}
			res := r.Run()
			tbl.Addf(pair.LS.Name+"+"+pair.BE.Name, ctrl.Name(),
				res.QoSRate, res.NormBEThroughput, res.OverloadFrac, res.BreakerTrips)
		}
	}
	return tbl
}
