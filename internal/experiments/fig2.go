package experiments

import (
	"fmt"

	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/trace"
)

// Fig2Row is one pair's power-overload measurement.
type Fig2Row struct {
	LS, BE    string
	BudgetW   float64
	PowerW    float64
	Ratio     float64 // power / budget
	Overloads bool
}

// Fig2PowerOverload reproduces Fig. 2: QoS-aware but power-unaware
// co-location at 20 % load — just-enough resources to the LS service,
// the full remainder to the BE application at maximum frequency — and
// reports each pair's power normalized to the LS-peak budget. The paper
// measures overloads of 2.04 %–12.57 % across all 18 pairs.
func Fig2PowerOverload(env *Env) ([]Fig2Row, *trace.Table) {
	tbl := trace.NewTable("Fig. 2 — co-location power normalized to the power budget (20% load)",
		"pair", "budget_w", "power_w", "power/budget", "overload")
	var rows []Fig2Row
	for _, pair := range Pairs() {
		ls, be := pair.LS, pair.BE
		node := sim.QuietNode(ls, be, env.Cfg.Seed)
		budget := env.Budget(ls)
		cfg := hw.Complement(env.Spec, JustEnough(ls.Name), env.Spec.FreqMax)
		if err := node.Apply(cfg); err != nil {
			panic(err)
		}
		st := node.Step(1, 0.2*ls.PeakQPS)
		r := Fig2Row{
			LS: ls.Name, BE: be.Name,
			BudgetW: float64(budget),
			PowerW:  float64(st.TruePower),
			Ratio:   float64(st.TruePower / budget),
		}
		r.Overloads = r.Ratio > 1
		rows = append(rows, r)
		tbl.Addf(ls.Name+"+"+be.Name, r.BudgetW, r.PowerW, r.Ratio, fmt.Sprintf("%v", r.Overloads))
	}
	return rows, tbl
}
