package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Shared quick-mode environment: sweeps are the expensive part.
var (
	envOnce sync.Once
	testEnv *Env
)

func quickEnv() *Env {
	envOnce.Do(func() {
		testEnv = NewEnv(Config{Quick: true, PairLimit: 2})
	})
	return testEnv
}

func TestFig2ShapeAllPairsOverload(t *testing.T) {
	rows, tbl := Fig2PowerOverload(quickEnv())
	if len(rows) != 18 {
		t.Fatalf("got %d pairs, want 18", len(rows))
	}
	for _, r := range rows {
		if !r.Overloads {
			t.Errorf("%s+%s does not overload (ratio %.3f)", r.LS, r.BE, r.Ratio)
		}
		if r.Ratio > 1.2 {
			t.Errorf("%s+%s overload %.3f outside the paper's corridor", r.LS, r.BE, r.Ratio)
		}
	}
	if !strings.Contains(tbl.String(), "memcached+bs") {
		t.Error("table missing pair rows")
	}
}

func TestFig3PaperPairsShape(t *testing.T) {
	rows, _ := Fig3PaperPairs(quickEnv())
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	coresAt20, freqAt35, feAt35Cores := 0, 0, false
	for _, r := range rows {
		if r.LoadFrac == 0.20 && r.Winner == "cores" {
			coresAt20++
		}
		if r.LoadFrac == 0.35 {
			if r.Winner == "freq" {
				freqAt35++
			}
			if r.BE == "fe" && r.Winner == "cores" {
				feAt35Cores = true
			}
		}
	}
	// Paper: 6/6 cores at 20 %; ≥4/6 freq at 35 %; ferret prefers cores.
	if coresAt20 < 5 {
		t.Errorf("cores won only %d/6 at 20%% load", coresAt20)
	}
	if freqAt35 < 4 {
		t.Errorf("freq won only %d/6 at 35%% load", freqAt35)
	}
	if !feAt35Cores {
		t.Error("ferret did not prefer cores at 35% load")
	}
}

func TestFig3FrontierProducesComparisons(t *testing.T) {
	rows, _ := Fig3FeasibleConfigs(quickEnv())
	if len(rows) < 10 {
		t.Fatalf("only %d frontier comparisons", len(rows))
	}
	for _, r := range rows {
		if r.ThptCores <= 0 || r.ThptFreq <= 0 {
			t.Errorf("%s at %.0f%%: degenerate throughputs %v/%v", r.BE, r.LoadFrac*100, r.ThptCores, r.ThptFreq)
		}
		if r.ThptCores > 1.01 || r.ThptFreq > 1.01 {
			t.Errorf("%s: normalized throughput above solo", r.BE)
		}
	}
}

func TestFig67Shapes(t *testing.T) {
	e := quickEnv()
	perf, _ := Fig6PerformanceModels(e)
	if len(perf) != 9 {
		t.Fatalf("Fig6 rows = %d, want 9", len(perf))
	}
	for _, r := range perf {
		if len(r.Scores) != 5 {
			t.Fatalf("%s has %d scores", r.Model, len(r.Scores))
		}
		// Some technique must model every application well.
		best := 0.0
		for _, s := range r.Scores {
			if s.Value > best {
				best = s.Value
			}
		}
		if best < 0.9 {
			t.Errorf("%s best score %.3f < 0.9", r.Model, best)
		}
	}
	pow, _ := Fig7PowerModels(e)
	if len(pow) != 9 {
		t.Fatalf("Fig7 rows = %d, want 9", len(pow))
	}
	for _, r := range pow {
		best := 0.0
		for _, s := range r.Scores {
			if s.Value > best {
				best = s.Value
			}
		}
		if best < 0.9 {
			t.Errorf("%s best power R² %.3f < 0.9", r.Model, best)
		}
	}
}

func TestFig9And10QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation runs are slow")
	}
	rows, qos, thpt, sum := Fig9And10(quickEnv(), false)
	// PairLimit 2 × 3 controllers.
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	agg := map[string][]EvalRow{}
	for _, r := range rows {
		agg[r.Controller] = append(agg[r.Controller], r)
		if r.QoSRate < 0.85 || r.QoSRate > 1 {
			t.Errorf("%s %s+%s: implausible QoS %.3f", r.Controller, r.LS, r.BE, r.QoSRate)
		}
		if r.NormBE <= 0 || r.NormBE >= 1 {
			t.Errorf("%s %s+%s: implausible throughput %.3f", r.Controller, r.LS, r.BE, r.NormBE)
		}
	}
	// Sturgeon must never trip the breaker; its throughput must beat
	// PARTIES on these memcached pairs.
	var stThpt, paThpt float64
	for i := range agg["sturgeon"] {
		if agg["sturgeon"][i].Trips != 0 {
			t.Errorf("sturgeon tripped the breaker on %s+%s", agg["sturgeon"][i].LS, agg["sturgeon"][i].BE)
		}
		stThpt += agg["sturgeon"][i].NormBE
		paThpt += agg["parties"][i].NormBE
	}
	if stThpt <= paThpt {
		t.Errorf("sturgeon throughput %.3f not above parties %.3f", stThpt, paThpt)
	}
	for _, tb := range []string{qos.String(), thpt.String(), sum.String()} {
		if !strings.Contains(tb, "sturgeon") {
			t.Error("table missing controller column")
		}
	}
}

func TestFig11TraceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation runs are slow")
	}
	res := Fig11Trace(quickEnv())
	if len(res.Sturgeon.Series) < 5 || len(res.Parties.Series) < 5 {
		t.Fatal("missing trace series")
	}
	base := res.Sturgeon.Series[0]
	if len(base.T) < 60 {
		t.Errorf("trace too short: %d points", len(base.T))
	}
	var sb strings.Builder
	if err := res.Sturgeon.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ls_cores") {
		t.Error("TSV missing columns")
	}
}

func TestTable1(t *testing.T) {
	s := Table1().String()
	for _, sys := range []string{"Bubble", "PARTIES", "Dirigent", "PowerChief", "Rubik", "Sturgeon"} {
		if !strings.Contains(s, sys) {
			t.Errorf("Table I missing %s", sys)
		}
	}
}

func TestOverheadOrdersOfMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement is slow")
	}
	res, _ := Overhead(quickEnv())
	if res.GuidedSearchMS <= 0 || res.ExhaustiveSearchMS <= 0 {
		t.Fatal("degenerate timings")
	}
	// The paper's point: the guided search is orders of magnitude
	// cheaper than the exhaustive scan.
	if res.SpeedupX < 10 {
		t.Errorf("guided search only %.1fx faster than exhaustive", res.SpeedupX)
	}
	if res.GuidedQueries <= 0 || res.ExhaustiveQueries < 10000 {
		t.Errorf("query accounting off: guided %d, exhaustive %d", res.GuidedQueries, res.ExhaustiveQueries)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	e := quickEnv()
	for name, tbl := range map[string]string{
		"queue":    AblationQueueEngines(e).String(),
		"slack":    AblationSlackBounds(e).String(),
		"headroom": AblationSearchHeadroom(e).String(),
	} {
		if len(tbl) == 0 {
			t.Errorf("ablation %s produced no output", name)
		}
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments are slow")
	}
	e := quickEnv()
	if tbl := AblationEndToEndEngines(e); len(tbl.Rows) != 2 {
		t.Errorf("engine ablation rows = %d", len(tbl.Rows))
	}
	if tbl := RAPLBaseline(e); len(tbl.Rows) != 4 {
		t.Errorf("RAPL baseline rows = %d", len(tbl.Rows))
	}
	if tbl := EnergyEfficiency(e, false); len(tbl.Rows) != 6 {
		t.Errorf("energy rows = %d", len(tbl.Rows))
	}
	if tbl := MultiAppShowdown(e); len(tbl.Rows) != 2 {
		t.Errorf("multi showdown rows = %d", len(tbl.Rows))
	}
	if tbl := AblationPeakVsMeanPower(e); len(tbl.Rows) != 2 {
		t.Errorf("peak-vs-mean rows = %d", len(tbl.Rows))
	}
	if tbl := AblationHarvestPolicy(e); len(tbl.Rows) != 2 {
		t.Errorf("harvest policy rows = %d", len(tbl.Rows))
	}
}

func TestFleet10kScaleQuickShape(t *testing.T) {
	rows, tbl := Fleet10kScale(quickEnv())
	if len(rows) != 2 {
		t.Fatalf("quick mode ran %d sizes, want 2", len(rows))
	}
	for _, r := range rows {
		if r.QoSRate < 0.99 {
			t.Errorf("%d nodes: qos %.4f below the quiet-fleet floor", r.Nodes, r.QoSRate)
		}
		if r.ActiveSeconds <= 0 || r.ActiveSeconds >= r.DurationS/100 {
			t.Errorf("%d nodes: %d active seconds of %d — skipping not engaging", r.Nodes, r.ActiveSeconds, r.DurationS)
		}
		if r.MeanPowerW <= 0 || r.BEThroughput <= 0 {
			t.Errorf("%d nodes: non-physical power %.1f / throughput %.1f", r.Nodes, r.MeanPowerW, r.BEThroughput)
		}
	}
	if !strings.Contains(tbl.String(), "86400") {
		t.Error("table missing the day horizon")
	}
}

// TestPlacementShowdownQuickShape runs the placement extension in quick
// mode (random vs physics-steered placement; the trained row is skipped)
// and checks the acceptance direction: placement must beat random
// pairing on fleet BE throughput without giving up QoS.
func TestPlacementShowdownQuickShape(t *testing.T) {
	tbl := PlacementShowdown(quickEnv())
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick mode ran %d pairings, want 2 (random, placed-physics)", len(tbl.Rows))
	}
	cell := func(row int, col string) float64 {
		for i, h := range tbl.Headers {
			if h == col {
				v, err := strconv.ParseFloat(tbl.Rows[row][i], 64)
				if err != nil {
					t.Fatalf("row %d %s: %v", row, col, err)
				}
				return v
			}
		}
		t.Fatalf("no column %q", col)
		return 0
	}
	if tbl.Rows[0][0] != "random" || tbl.Rows[1][0] != "placed-physics" {
		t.Fatalf("unexpected pairing rows: %v vs %v", tbl.Rows[0][0], tbl.Rows[1][0])
	}
	if be0, be1 := cell(0, "be_ups"), cell(1, "be_ups"); be1 <= be0 {
		t.Errorf("placement does not beat random pairing: %.2f vs %.2f UPS", be1, be0)
	}
	// QoS must be preserved to within contention noise: the quick env's
	// seed is arbitrary (the strict gate runs on the pinned bench pair),
	// and BE co-location shifts LS tail latency by fractions of a percent
	// either way across seeds.
	if q0, q1 := cell(0, "qos_rate"), cell(1, "qos_rate"); q1 < q0-0.005 {
		t.Errorf("placement sacrifices QoS: %.6f vs %.6f", q1, q0)
	}
	if moves := cell(1, "moves"); moves <= 0 {
		t.Error("the placed row migrated nothing — the planner never fired")
	}
}
