package experiments

import (
	"time"

	"sturgeon/internal/cluster"
	"sturgeon/internal/trace"
)

// Fleet10kRow is one fleet-scale measurement of the discrete-event
// engine on the pinned diurnal day (cluster.DefaultFleet10k, scaled in
// node count only — horizon, staircase and cap stay the day's).
type Fleet10kRow struct {
	Nodes         int
	WallSeconds   float64
	ActiveSeconds int
	DurationS     int
	QoSRate       float64
	BEThroughput  float64
	MeanPowerW    float64
}

// Fleet10kScale sweeps the pinned datacenter-day scenario across fleet
// sizes on the event engine, reporting wall-clock cost next to the
// engine's work metric (active vs simulated seconds). The headline row
// is the full 10 000-node day — over an hour of per-second stepping —
// finishing in seconds; Quick mode stops at 1 000 nodes so smoke tests
// stay fast. Seeded and serial: the tables are byte-identical across
// runs modulo the wall-clock column.
func Fleet10kScale(env *Env) ([]Fleet10kRow, *trace.Table) {
	tbl := trace.NewTable("Fleet10k — event-engine datacenter day vs fleet size",
		"nodes", "sim_s", "active_s", "wall_s", "qos", "be_ups", "power_w")
	sizes := []int{100, 1_000, 10_000}
	if env.Cfg.Quick {
		sizes = []int{100, 1_000}
	}
	var rows []Fleet10kRow
	for _, n := range sizes {
		o := cluster.DefaultFleet10k()
		o.Nodes = n
		c, err := cluster.BuildFleet10k(o)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res := c.Run(o.Trace(), o.DurationS)
		r := Fleet10kRow{
			Nodes:         n,
			WallSeconds:   time.Since(start).Seconds(),
			ActiveSeconds: c.EventActiveSeconds(),
			DurationS:     o.DurationS,
			QoSRate:       res.QoSRate,
			BEThroughput:  res.MeanBEThroughputUPS,
			MeanPowerW:    res.MeanPowerW,
		}
		rows = append(rows, r)
		tbl.Addf(r.Nodes, r.DurationS, r.ActiveSeconds, r.WallSeconds, r.QoSRate,
			r.BEThroughput, r.MeanPowerW)
	}
	return rows, tbl
}
