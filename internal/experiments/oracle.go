package experiments

import (
	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// physOracle implements core.Predictor with ground-truth physics instead
// of learned models. It powers offline analyses (the Fig. 3 motivation
// figure enumerates *actually* feasible configurations, like the paper's
// hardware measurements) and serves as the test oracle for the guided
// search.
type physOracle struct {
	spec hw.Spec
	ls   workload.Profile
	be   workload.Profile
	seed int64
}

func newPhysOracle(spec hw.Spec, ls, be workload.Profile, seed int64) *physOracle {
	return &physOracle{spec: spec, ls: ls, be: be, seed: seed}
}

// QoSOK measures the true tail latency of the LS allocation running with
// the complement granted to the BE application.
func (o *physOracle) QoSOK(a hw.Alloc, qps float64) bool {
	if a.Cores <= 0 {
		return qps <= 0
	}
	node := sim.QuietNode(o.ls, o.be, o.seed)
	cfg := hw.Complement(o.spec, a, o.spec.FreqMin)
	if err := node.Apply(cfg); err != nil {
		return false
	}
	st := node.Step(1, qps)
	return st.TrueP95 <= o.ls.QoSTargetS
}

// Throughput is the BE application's uncontended rate under the
// allocation.
func (o *physOracle) Throughput(a hw.Alloc) float64 {
	return o.be.BERate(a, 1).ThroughputUPS
}

// PowerW measures the true co-located node power.
func (o *physOracle) PowerW(cfg hw.Config, qps float64) power.Watts {
	node := sim.QuietNode(o.ls, o.be, o.seed)
	if err := node.Apply(cfg); err != nil {
		return power.Watts(1e9)
	}
	return node.Step(1, qps).TruePower
}
