package experiments

import (
	"fmt"

	"sturgeon/internal/cluster"
	"sturgeon/internal/trace"
)

// CoordinatedFleet quantifies the fleet power-budget coordinator
// (internal/coordinator, DESIGN.md §10) on the pinned diurnal scenario:
// the same 8-node fleet, workload and total watt budget run three ways —
// a static even split, coordinated cap arbitration, and coordination
// under the control-plane chaos plan (dropped reports plus coordinator
// outages). The scenario's rotating skew means an even split strands
// watts on cold nodes while hot nodes throttle their best-effort tier;
// arbitration moves the stranded watts, so the coordinated rows must
// show strictly higher fleet BE throughput at equal-or-better QoS.
func CoordinatedFleet(env *Env) *trace.Table {
	tbl := trace.NewTable(
		fmt.Sprintf("Fleet cap arbitration vs even split (8 nodes, seed %d)", env.Cfg.Seed),
		"caps", "qos_rate", "be_ups", "mean_power_w", "work_per_kj",
		"moved_w", "fallbacks")
	rows := []struct {
		name         string
		coord, chaos bool
	}{
		{"even-split", false, false},
		{"coordinated", true, false},
		{"coordinated+chaos", true, true},
	}
	for _, row := range rows {
		o := cluster.DefaultCoordFleet(env.Cfg.Seed)
		o.Coordinated = row.coord
		o.Chaos = row.chaos
		c, err := cluster.BuildCoordFleet(o)
		if err != nil {
			panic(fmt.Sprintf("experiments: coordinated fleet: %v", err))
		}
		c.Parallelism = env.Cfg.Parallelism
		c.SetObs(env.Cfg.Obs)
		res := c.Run(o.Trace(), o.DurationS)
		tbl.Addf(row.name, res.QoSRate, res.MeanBEThroughputUPS,
			res.MeanPowerW, res.WorkPerKJ,
			res.Coord.MovedW, float64(res.Coord.Fallbacks))
	}
	return tbl
}
