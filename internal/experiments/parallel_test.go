package experiments

import (
	"reflect"
	"testing"
)

// TestFig9And10ParallelMatchesSerial reruns the quick evaluation matrix
// serially and on a 4-worker pool (trained predictors are shared via the
// Env cache, so only the simulation runs repeat) and requires identical
// rows and rendered tables — the per-pair fan-out must be invisible in
// the output.
func TestFig9And10ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation runs are slow")
	}
	env := quickEnv()
	defer func(p int) { env.Cfg.Parallelism = p }(env.Cfg.Parallelism)

	env.Cfg.Parallelism = 1
	serialRows, serialQoS, serialThpt, serialSum := Fig9And10(env, false)
	env.Cfg.Parallelism = 4
	pooledRows, pooledQoS, pooledThpt, pooledSum := Fig9And10(env, false)

	if !reflect.DeepEqual(serialRows, pooledRows) {
		t.Fatalf("rows diverged between serial and pooled evaluation:\nserial: %+v\npooled: %+v",
			serialRows, pooledRows)
	}
	for _, pair := range [][2]string{
		{serialQoS.String(), pooledQoS.String()},
		{serialThpt.String(), pooledThpt.String()},
		{serialSum.String(), pooledSum.String()},
	} {
		if pair[0] != pair[1] {
			t.Fatalf("table diverged between serial and pooled evaluation:\n--- serial ---\n%s--- pooled ---\n%s",
				pair[0], pair[1])
		}
	}
}
