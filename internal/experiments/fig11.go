package experiments

import (
	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// Fig11Result carries the trace comparison of one pair under two
// controllers.
type Fig11Result struct {
	Sturgeon, Parties *trace.SeriesSet
	Summary           *trace.Table
}

// Fig11Trace reproduces Fig. 11: memcached co-located with raytrace while
// the load ramps from 20 % to 50 % of peak; per-second BE throughput,
// core allocations and frequencies under Sturgeon and PARTIES. The
// paper's shape: Sturgeon settles on fewer, slower LS cores with
// just-enough ways and hands raytrace the cores it prefers, converging
// faster and yielding higher BE throughput at most points of the ramp.
func Fig11Trace(env *Env) Fig11Result {
	ls, be := workload.Memcached(), workload.Raytrace()
	duration := env.Cfg.DurationS / 2
	if duration < 60 {
		duration = 60
	}
	budget := env.Budget(ls)
	solo := sim.SoloBEThroughput(env.Spec, sim.QuietNode(ls, be, 1).Bus, be)

	run := func(name string) (*trace.SeriesSet, float64) {
		node := sim.NewNode(ls, be, pairSeed(env.Cfg.Seed, ls.Name, be.Name))
		ctrl := env.NewController(name, ls, be)
		if err := node.Apply(hw.SoloLS(env.Spec)); err != nil {
			panic(err)
		}
		r := sim.Runner{
			Node: node, Ctrl: ctrl, Budget: budget,
			Trace:     workload.Ramp(0.2, 0.5, float64(duration)),
			DurationS: duration,
		}
		res := r.Run()
		ss := &trace.SeriesSet{Title: "Fig. 11 (" + name + ")"}
		thpt := ss.Add("norm_be_thpt")
		lsCores := ss.Add("ls_cores")
		beCores := ss.Add("be_cores")
		lsFreq := ss.Add("ls_freq")
		beFreq := ss.Add("be_freq")
		lsWays := ss.Add("ls_ways")
		for _, st := range res.Intervals {
			thpt.Append(st.Time, st.BEThroughputUPS/solo)
			lsCores.Append(st.Time, float64(st.Config.LS.Cores))
			beCores.Append(st.Time, float64(st.Config.BE.Cores))
			lsFreq.Append(st.Time, float64(st.Config.LS.Freq))
			beFreq.Append(st.Time, float64(st.Config.BE.Freq))
			lsWays.Append(st.Time, float64(st.Config.LS.LLCWays))
		}
		return ss, res.NormBEThroughput
	}

	st, stThpt := run("sturgeon")
	pa, paThpt := run("parties")
	sum := trace.NewTable("Fig. 11 summary — memcached+raytrace, 20%→50% ramp",
		"controller", "mean_norm_be_thpt")
	sum.Addf("sturgeon", stThpt)
	sum.Addf("parties", paThpt)
	return Fig11Result{Sturgeon: st, Parties: pa, Summary: sum}
}
