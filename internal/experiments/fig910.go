package experiments

import (
	"fmt"
	"hash/fnv"

	"sturgeon/internal/control"
	"sturgeon/internal/core"
	"sturgeon/internal/heracles"
	"sturgeon/internal/hw"
	"sturgeon/internal/parties"
	"sturgeon/internal/pool"
	"sturgeon/internal/sim"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// Controllers evaluated in Figs. 9/10. Heracles is our extra baseline and
// can be appended via WithHeracles.
var evalControllers = []string{"sturgeon", "sturgeon-nob", "parties"}

// EvalRow is one (pair, controller) evaluation outcome.
type EvalRow struct {
	LS, BE     string
	Controller string
	QoSRate    float64
	NormBE     float64
	Overload   float64
	Trips      int
}

// pairSeed derives a stable per-pair seed.
func pairSeed(base int64, ls, be string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s+%s", ls, be)
	return base + int64(h.Sum64()%100000)
}

// NewController builds a fresh controller by name for a pair.
func (e *Env) NewController(name string, ls, be workload.Profile) control.Controller {
	budget := e.Budget(ls)
	switch name {
	case "sturgeon":
		return core.New(e.Spec, e.Predictor(ls, be), budget, core.Options{})
	case "sturgeon-nob":
		return core.New(e.Spec, e.Predictor(ls, be), budget, core.Options{DisableBalancer: true})
	case "parties":
		return parties.New(e.Spec, budget)
	case "heracles":
		return heracles.New(e.Spec, budget)
	default:
		panic("experiments: unknown controller " + name)
	}
}

// RunPair executes the paper's fluctuating-load evaluation (§VII-A: load
// 20 % → 80 % → 20 % of peak) for one pair under one controller.
func (e *Env) RunPair(name string, ls, be workload.Profile) sim.Result {
	// Same seed across controllers: each policy faces the identical
	// interference and noise sequence, so comparisons are paired.
	node := sim.NewNode(ls, be, pairSeed(e.Cfg.Seed, ls.Name, be.Name))
	budget := e.Budget(ls)
	ctrl := e.NewController(name, ls, be)
	if err := node.Apply(hw.SoloLS(e.Spec)); err != nil {
		panic(err)
	}
	r := sim.Runner{
		Node: node, Ctrl: ctrl, Budget: budget,
		Trace:     workload.Triangle(0.2, 0.8, float64(e.Cfg.DurationS)),
		DurationS: e.Cfg.DurationS,
	}
	return r.Run()
}

// Fig9And10 reproduces the main evaluation: QoS guarantee rate (Fig. 9)
// and normalized BE throughput (Fig. 10) of every pair under Sturgeon,
// Sturgeon-NoB and enhanced PARTIES. The paper's shape: every controller
// except NoB keeps the 95 %-ile within target; Sturgeon beats PARTIES'
// throughput by ≈25 % on average while NoB sits slightly above Sturgeon.
func Fig9And10(env *Env, withHeracles bool) ([]EvalRow, *trace.Table, *trace.Table, *trace.Table) {
	ctrls := evalControllers
	if withHeracles {
		ctrls = append(append([]string{}, ctrls...), "heracles")
	}
	qosTbl := trace.NewTable("Fig. 9 — QoS guarantee rate", append([]string{"pair"}, ctrls...)...)
	thptTbl := trace.NewTable("Fig. 10 — normalized BE throughput", append([]string{"pair"}, ctrls...)...)

	var rows []EvalRow
	sums := map[string]*struct {
		qos, thpt, over float64
		trips, n        int
	}{}
	for _, c := range ctrls {
		sums[c] = &struct {
			qos, thpt, over float64
			trips, n        int
		}{}
	}

	pairs := Pairs()
	if n := env.Cfg.PairLimit; n > 0 && n < len(pairs) {
		pairs = pairs[:n]
	}
	// Fan the independent (pair, controller) runs across the pool; the
	// table/summary merge below stays serial in figure order, so the
	// output is identical at any worker count.
	results := pool.Map(env.Cfg.Parallelism, len(pairs)*len(ctrls), func(k int) sim.Result {
		pair := pairs[k/len(ctrls)]
		return env.RunPair(ctrls[k%len(ctrls)], pair.LS, pair.BE)
	})
	for pi, pair := range pairs {
		qosCells := []interface{}{pair.LS.Name + "+" + pair.BE.Name}
		thptCells := []interface{}{pair.LS.Name + "+" + pair.BE.Name}
		for ci, c := range ctrls {
			res := results[pi*len(ctrls)+ci]
			row := EvalRow{
				LS: pair.LS.Name, BE: pair.BE.Name, Controller: c,
				QoSRate: res.QoSRate, NormBE: res.NormBEThroughput,
				Overload: res.OverloadFrac, Trips: res.BreakerTrips,
			}
			rows = append(rows, row)
			qosCells = append(qosCells, row.QoSRate)
			thptCells = append(thptCells, row.NormBE)
			s := sums[c]
			s.qos += row.QoSRate
			s.thpt += row.NormBE
			s.over += row.Overload
			s.trips += row.Trips
			s.n++
		}
		qosTbl.Addf(qosCells...)
		thptTbl.Addf(thptCells...)
	}

	sum := trace.NewTable(fmt.Sprintf("Summary (mean over %d pairs)", len(pairs)),
		"controller", "qos_rate", "norm_thpt", "thpt_vs_parties", "overload_frac", "breaker_trips")
	parts := sums["parties"]
	for _, c := range ctrls {
		s := sums[c]
		n := float64(s.n)
		vsParties := 0.0
		if parts != nil && parts.thpt > 0 {
			vsParties = (s.thpt/parts.thpt - 1) * 100
		}
		sum.Addf(c, s.qos/n, s.thpt/n, fmt.Sprintf("%+.2f%%", vsParties), s.over/n, s.trips)
	}
	return rows, qosTbl, thptTbl, sum
}
