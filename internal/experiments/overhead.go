package experiments

import (
	"fmt"
	"time"

	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/trace"
	"sturgeon/internal/workload"
)

// OverheadResult quantifies §VII-E: per-model inference latency, the
// guided §V-B search versus the exhaustive O(N⁴) scan, and the balancer's
// per-decision cost.
type OverheadResult struct {
	ModelInferenceUS   float64
	GuidedSearchMS     float64
	GuidedQueries      int64
	ExhaustiveSearchMS float64
	ExhaustiveQueries  int64
	BalancerUS         float64
	SpeedupX           float64
}

// Overhead measures the §VII-E costs on the memcached+raytrace pair at
// 30 % load. The paper reports ≈0.04 ms per model inference, ≤120 ms for
// the guided search, ≈6.4 s for exhaustive search and ≈0.48 ms per
// balancer decision; the shape to preserve is the orders-of-magnitude gap
// between guided and exhaustive.
func Overhead(env *Env) (OverheadResult, *trace.Table) {
	ls, be := workload.Memcached(), workload.Raytrace()
	pred := env.Predictor(ls, be)
	budget := env.Budget(ls)
	s := &core.Searcher{Spec: env.Spec, Pred: pred, Budget: budget}
	qps := 0.3 * ls.PeakQPS

	// Model inference latency.
	alloc := hw.Alloc{Cores: 8, Freq: 1.8, LLCWays: 8}
	const nInf = 2000
	t0 := time.Now()
	for i := 0; i < nInf; i++ {
		pred.QoSOK(alloc, qps)
		pred.Throughput(alloc)
		pred.PowerW(hw.Config{LS: alloc, BE: alloc}, qps)
	}
	perModel := time.Since(t0).Seconds() * 1e6 / (nInf * 5) // ≈5 model calls per loop

	// Guided search.
	q0 := pred.Queries()
	t0 = time.Now()
	const nSearch = 5
	for i := 0; i < nSearch; i++ {
		s.BestConfig(qps)
	}
	guidedMS := time.Since(t0).Seconds() * 1e3 / nSearch
	guidedQ := (pred.Queries() - q0) / nSearch

	// Exhaustive search.
	q0 = pred.Queries()
	t0 = time.Now()
	s.ExhaustiveBest(qps)
	exhaustMS := time.Since(t0).Seconds() * 1e3
	exhaustQ := pred.Queries() - q0

	// Balancer decision.
	b := &core.Balancer{Spec: env.Spec, Pred: pred, Budget: budget}
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 6, Freq: 1.8, LLCWays: 8},
		BE: hw.Alloc{Cores: 14, Freq: 1.6, LLCWays: 12},
	}
	const nBal = 500
	t0 = time.Now()
	for i := 0; i < nBal; i++ {
		b.Reset()
		b.Harvest(cfg, qps, false, false)
	}
	balUS := time.Since(t0).Seconds() * 1e6 / nBal

	res := OverheadResult{
		ModelInferenceUS:   perModel,
		GuidedSearchMS:     guidedMS,
		GuidedQueries:      guidedQ,
		ExhaustiveSearchMS: exhaustMS,
		ExhaustiveQueries:  exhaustQ,
		BalancerUS:         balUS,
		SpeedupX:           exhaustMS / guidedMS,
	}
	tbl := trace.NewTable("§VII-E — controller overheads (memcached+raytrace, 30% load)",
		"metric", "value")
	tbl.Add("model inference", fmt.Sprintf("%.1f µs", res.ModelInferenceUS))
	tbl.Add("guided search", fmt.Sprintf("%.2f ms (%d model queries)", res.GuidedSearchMS, res.GuidedQueries))
	tbl.Add("exhaustive search", fmt.Sprintf("%.0f ms (%d model queries)", res.ExhaustiveSearchMS, res.ExhaustiveQueries))
	tbl.Add("guided speedup", fmt.Sprintf("%.0fx", res.SpeedupX))
	tbl.Add("balancer decision", fmt.Sprintf("%.1f µs", res.BalancerUS))
	return res, tbl
}
