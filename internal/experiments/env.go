// Package experiments regenerates every table and figure of the paper's
// evaluation (§III and §VII) on the simulated substrate, plus the
// ablation studies DESIGN.md calls out. Each experiment returns a
// trace.Table (or series set) carrying the same rows/series the paper
// reports, so cmd/repro and the benchmark harness print comparable
// output.
package experiments

import (
	"fmt"
	"sync"

	"sturgeon/internal/cache"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/obs"
	"sturgeon/internal/power"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// Config scales the experiment suite.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// Samples is the per-application profiling sweep size (default 1500).
	Samples int
	// DurationS is the Fig. 9/10 run length (default 800 — the paper's
	// 20 % → 80 % → 20 % fluctuation at 1 s intervals).
	DurationS int
	// PairLimit caps how many of the 18 co-location pairs the Fig. 9/10
	// evaluation runs (0 = all) — benchmarks use a subset.
	PairLimit int
	// Parallelism fans the independent per-(pair, controller) evaluation
	// runs across a worker pool: 0 (default) uses GOMAXPROCS, 1 runs
	// serially. Results are merged in figure order, and each run derives
	// its seed from the pair alone, so the tables are identical at any
	// worker count. Model training stays serialized behind the Env cache
	// lock either way.
	Parallelism int
	// Quick shrinks everything for smoke tests and benchmarks.
	Quick bool
	// Obs, when non-nil, receives the decision trail of the experiments
	// that support it (currently the coordinated-fleet scenario): metrics
	// land in Obs.Metrics and journal events drain onto Obs.Journal in
	// deterministic order. Experiments that fan out whole runs in
	// parallel ignore it — interleaving journals across concurrent
	// fleets would break the byte-identical dump guarantee.
	Obs *obs.Sink
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Samples == 0 {
		c.Samples = 1500
	}
	if c.DurationS == 0 {
		c.DurationS = 800
	}
	if c.Quick {
		c.Samples = 600
		c.DurationS = 240
	}
	return c
}

// Env caches the expensive shared state — per-application profiling
// sweeps, fitted predictors, power budgets — across experiments.
type Env struct {
	Cfg  Config
	Spec hw.Spec

	mu      sync.Mutex
	lsData  map[string]models.LSDatasets
	beData  map[string]models.BEDatasets
	preds   map[string]*models.Predictor
	budgets map[string]power.Watts
}

// NewEnv builds an experiment environment.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:     cfg.withDefaults(),
		Spec:    hw.DefaultSpec(),
		lsData:  map[string]models.LSDatasets{},
		beData:  map[string]models.BEDatasets{},
		preds:   map[string]*models.Predictor{},
		budgets: map[string]power.Watts{},
	}
}

func (e *Env) collectOpts() models.CollectOptions {
	return models.CollectOptions{Samples: e.Cfg.Samples, IntervalsPerSample: 2, Seed: e.Cfg.Seed}
}

// LSData returns (collecting once) the LS profiling sweep.
func (e *Env) LSData(ls workload.Profile) models.LSDatasets {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.lsData[ls.Name]; ok {
		return d
	}
	d := models.SweepLS(ls, e.collectOpts())
	e.lsData[ls.Name] = d
	return d
}

// BEData returns (collecting once) the BE profiling sweep.
func (e *Env) BEData(be workload.Profile) models.BEDatasets {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.beData[be.Name]; ok {
		return d
	}
	d := models.SweepBE(be, e.collectOpts())
	e.beData[be.Name] = d
	return d
}

// Predictor returns (training once) the predictor of a pair.
func (e *Env) Predictor(ls, be workload.Profile) *models.Predictor {
	key := ls.Name + "+" + be.Name
	lds := e.LSData(ls)
	bds := e.BEData(be)
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.preds[key]; ok {
		return p
	}
	p, err := models.TrainFromDatasets(ls, be, lds, bds,
		models.TrainOptions{Collect: e.collectOpts()})
	if err != nil {
		panic(fmt.Sprintf("experiments: training %s: %v", key, err))
	}
	e.preds[key] = p
	return p
}

// Budget returns (computing once) the LS service's power budget.
func (e *Env) Budget(ls workload.Profile) power.Watts {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := e.budgets[ls.Name]; ok {
		return b
	}
	b := sim.LSPeakPower(e.Spec, power.DefaultParams(), cache.DefaultBus(), ls)
	e.budgets[ls.Name] = b
	return b
}

// JustEnough returns the §III-B narrative just-enough LS allocations at
// 20 % load used by the Fig. 2 motivation experiment.
func JustEnough(name string) hw.Alloc {
	switch name {
	case "memcached":
		return hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6}
	default: // xapian, img-dnn
		return hw.Alloc{Cores: 4, Freq: 1.8, LLCWays: 5}
	}
}

// Pairs enumerates the paper's 18 co-location pairs in figure order.
func Pairs() []struct{ LS, BE workload.Profile } {
	var out []struct{ LS, BE workload.Profile }
	for _, ls := range workload.LSServices() {
		for _, be := range workload.BEApps() {
			out = append(out, struct{ LS, BE workload.Profile }{ls, be})
		}
	}
	return out
}
