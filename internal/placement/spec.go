package placement

import (
	"fmt"

	"sturgeon/internal/jsonio"
)

// PlanSchema identifies the placement-plan interchange document.
const PlanSchema = "sturgeon/placement/v1"

// maxPlanDim bounds decoded fleet dimensions so a hostile document
// cannot make Apply allocate unbounded scratch.
const maxPlanDim = 1 << 20

// PlanMove is one migration in a serialized plan.
type PlanMove struct {
	Job    int    `json:"job"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	Reason string `json:"reason,omitempty"`
	Epoch  int    `json:"epoch,omitempty"`
}

// PlanDoc is the serialized form of an initial assignment plus the
// migration history applied on top of it — what `sturgeond` peers and
// offline tooling exchange. Decode with DecodePlan; the document
// validates end to end, including replaying the moves, before any
// consumer sees it.
type PlanDoc struct {
	Schema     string     `json:"schema"`
	Jobs       int        `json:"jobs"`
	Nodes      int        `json:"nodes"`
	Assignment []int      `json:"assignment"`
	Moves      []PlanMove `json:"moves,omitempty"`
}

// Validate implements jsonio.Validator: schema, dimension bounds, an
// initial assignment that is a partial injection of jobs into nodes,
// and a move log that replays cleanly (sources host the moved job,
// destinations are free, indices in range).
func (d *PlanDoc) Validate() error {
	if d.Schema != PlanSchema {
		return fmt.Errorf("placement: plan schema %q, want %q", d.Schema, PlanSchema)
	}
	if d.Jobs < 0 || d.Jobs > maxPlanDim {
		return fmt.Errorf("placement: plan jobs %d outside [0, %d]", d.Jobs, maxPlanDim)
	}
	if d.Nodes < 0 || d.Nodes > maxPlanDim {
		return fmt.Errorf("placement: plan nodes %d outside [0, %d]", d.Nodes, maxPlanDim)
	}
	if len(d.Assignment) != d.Jobs {
		return fmt.Errorf("placement: plan assignment has %d entries, want %d", len(d.Assignment), d.Jobs)
	}
	_, err := d.Apply()
	return err
}

// Apply replays the move log over the initial assignment and returns
// the final node-per-job mapping, verifying conservation at every
// step: each job is placed on at most one node, no node ever hosts two
// jobs, every move's source actually hosts the moved job and its
// destination is free.
func (d *PlanDoc) Apply() ([]int, error) {
	nodeOf := make([]int, d.Jobs)
	host := make([]int, d.Nodes)
	for i := range host {
		host[i] = -1
	}
	for j, n := range d.Assignment {
		if n < -1 || n >= d.Nodes {
			return nil, fmt.Errorf("placement: job %d assigned to node %d outside [-1, %d)", j, n, d.Nodes)
		}
		nodeOf[j] = n
		if n >= 0 {
			if other := host[n]; other >= 0 {
				return nil, fmt.Errorf("placement: node %d assigned both job %d and job %d", n, other, j)
			}
			host[n] = j
		}
	}
	for i, m := range d.Moves {
		if m.Job < 0 || m.Job >= d.Jobs {
			return nil, fmt.Errorf("placement: move %d: job %d outside [0, %d)", i, m.Job, d.Jobs)
		}
		if m.From < 0 || m.From >= d.Nodes || m.To < 0 || m.To >= d.Nodes {
			return nil, fmt.Errorf("placement: move %d: nodes %d→%d outside [0, %d)", i, m.From, m.To, d.Nodes)
		}
		if m.From == m.To {
			return nil, fmt.Errorf("placement: move %d: job %d moves to its own node %d", i, m.Job, m.To)
		}
		if nodeOf[m.Job] != m.From {
			return nil, fmt.Errorf("placement: move %d: job %d is on node %d, not %d", i, m.Job, nodeOf[m.Job], m.From)
		}
		if other := host[m.To]; other >= 0 {
			return nil, fmt.Errorf("placement: move %d: destination node %d already hosts job %d", i, m.To, other)
		}
		host[m.From] = -1
		host[m.To] = m.Job
		nodeOf[m.Job] = m.To
	}
	return nodeOf, nil
}

// DecodePlan parses and fully validates a placement plan document.
func DecodePlan(data []byte) (*PlanDoc, error) {
	var d PlanDoc
	if err := jsonio.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// EncodePlan serializes a validated plan document.
func EncodePlan(d *PlanDoc) ([]byte, error) { return jsonio.Marshal(d) }
