package placement

import (
	"reflect"
	"testing"
)

// FuzzPlanDecode drives hostile bytes through the plan decoder: it must
// never panic, and any document it accepts must validate, replay with
// full conservation, and round-trip through encode/decode unchanged.
func FuzzPlanDecode(f *testing.F) {
	good, err := EncodePlan(&PlanDoc{
		Schema:     PlanSchema,
		Jobs:       2,
		Nodes:      3,
		Assignment: []int{0, 2},
		Moves:      []PlanMove{{Job: 0, From: 0, To: 1, Reason: ReasonStarved}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"schema":"sturgeon/placement/v1","jobs":0,"nodes":0,"assignment":[]}`))
	f.Add([]byte(`{"schema":"sturgeon/placement/v1","jobs":1,"nodes":1,"assignment":[0],"moves":[{"job":0,"from":0,"to":0}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"schema":"sturgeon/placement/v1","jobs":2,"nodes":1,"assignment":[0,0]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodePlan(data)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid document: %v\n%s", verr, data)
		}
		final, aerr := d.Apply()
		if aerr != nil {
			t.Fatalf("validated document failed to replay: %v", aerr)
		}
		// Conservation: each node hosts at most one job, every
		// placement in range.
		used := make(map[int]bool)
		for j, n := range final {
			if n == -1 {
				continue
			}
			if n < 0 || n >= d.Nodes {
				t.Fatalf("job %d landed outside the fleet: %d", j, n)
			}
			if used[n] {
				t.Fatalf("node %d hosts two jobs", n)
			}
			used[n] = true
		}
		enc, eerr := EncodePlan(d)
		if eerr != nil {
			t.Fatalf("re-encode: %v", eerr)
		}
		back, derr := DecodePlan(enc)
		if derr != nil {
			t.Fatalf("re-decode: %v", derr)
		}
		if !reflect.DeepEqual(back, d) {
			t.Fatalf("round trip changed the document:\n%+v\n%+v", d, back)
		}
	})
}
