package placement

import (
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/workload"
)

// BenchmarkScorerBest measures one memoized scorer query — the unit of
// work the planner issues per (job, node) pair every epoch.
func BenchmarkScorerBest(b *testing.B) {
	sc := NewScorer(hw.DefaultSpec())
	m := NewPhysics(workload.Memcached(), workload.Blackscholes())
	qps := 0.45 * workload.Memcached().PeakQPS
	sc.Best(m, qps, 104) // warm the memo: steady-state epochs hit it
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Best(m, qps, 104)
	}
}

// BenchmarkScorerSweep measures a cold full-grid sweep (11×11 DVFS
// pairs through the physics model).
func BenchmarkScorerSweep(b *testing.B) {
	sc := NewScorer(hw.DefaultSpec())
	m := NewPhysics(workload.Memcached(), workload.Blackscholes())
	qps := 0.45 * workload.Memcached().PeakQPS
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.InvalidateMemo()
		sc.Best(m, qps, 104)
	}
}

// BenchmarkSolve measures the assignment solver on the pinned
// fleet-shaped matrix (6 jobs × 8 nodes).
func BenchmarkSolve(b *testing.B) {
	qps := 0.45 * workload.Memcached().PeakQPS
	scores, _ := scoreMatrix(b, benchBEs, benchCaps, qps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(scores, int64(i), 4)
	}
}

// BenchmarkPlan measures one steady-state planner epoch (warm scorer
// memo, nothing to move).
func BenchmarkPlan(b *testing.B) {
	p, snaps := plannerFixture(b, PlannerOptions{})
	snaps[0].PowerW = 60 // nobody starved: the common quiet epoch
	p.Plan(0, snaps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Plan(i+1, snaps)
	}
}
