package placement

import (
	"math/rand"
	"sort"
)

// Assignment is a solver result: node index per job (-1 = unplaced,
// only possible when jobs outnumber feasible nodes) plus the predicted
// fleet BE throughput of the placement.
type Assignment struct {
	NodeOf []int
	// TotalUPS is Σ scores[j][NodeOf[j]] over placed jobs.
	TotalUPS float64
}

// Infeasible marks a (job, node) cell the solver must never choose.
const Infeasible = -1.0

// Solve assigns each job to at most one node maximizing the summed
// score. scores[j][n] is the predicted BE throughput of job j on node
// n, or Infeasible (negative) when the pairing is not allowed. Every
// row must have the same width (the node count).
//
// The algorithm is a greedy seed — jobs in descending order of their
// best achievable score each take their best free node — followed by
// passes of bounded local search (pairwise swaps and relocations to
// free nodes) until a pass finds no improvement or the pass budget is
// exhausted. Exact score ties are broken by a seeded jitter far below
// any real score difference, so the result is a deterministic function
// of (scores, seed) — independent of map order, stepping parallelism,
// or call history.
func Solve(scores [][]float64, seed int64, passes int) Assignment {
	jobs := len(scores)
	nodes := 0
	if jobs > 0 {
		nodes = len(scores[0])
	}
	out := Assignment{NodeOf: make([]int, jobs)}
	for j := range out.NodeOf {
		out.NodeOf[j] = -1
	}
	if jobs == 0 || nodes == 0 {
		return out
	}

	// Seeded tie-break jitter: relative perturbation ~1e-12, below any
	// meaningful score difference but enough to order exact ties
	// deterministically per seed.
	rng := rand.New(rand.NewSource(seed))
	jit := make([][]float64, jobs)
	maxScore := 0.0
	for _, row := range scores {
		for _, v := range row {
			if v > maxScore {
				maxScore = v
			}
		}
	}
	eps := maxScore * 1e-12
	for j := range jit {
		jit[j] = make([]float64, nodes)
		for n := range jit[j] {
			jit[j][n] = rng.Float64() * eps
		}
	}
	at := func(j, n int) float64 {
		if scores[j][n] < 0 {
			return Infeasible
		}
		return scores[j][n] + jit[j][n]
	}

	// Greedy seed: jobs in descending order of best achievable score.
	order := make([]int, jobs)
	for j := range order {
		order[j] = j
	}
	best := make([]float64, jobs)
	for j := range best {
		b := Infeasible
		for n := 0; n < nodes; n++ {
			if v := at(j, n); v > b {
				b = v
			}
		}
		best[j] = b
	}
	sort.SliceStable(order, func(a, b int) bool { return best[order[a]] > best[order[b]] })

	taken := make([]bool, nodes)
	for _, j := range order {
		pick, pickV := -1, Infeasible
		for n := 0; n < nodes; n++ {
			if taken[n] {
				continue
			}
			if v := at(j, n); v >= 0 && v > pickV {
				pick, pickV = n, v
			}
		}
		if pick >= 0 {
			out.NodeOf[j] = pick
			taken[pick] = true
		}
	}

	// Bounded local search: relocations to free nodes, then pairwise
	// swaps, repeated until a full pass improves nothing.
	if passes <= 0 {
		passes = 4
	}
	for pass := 0; pass < passes; pass++ {
		improved := false
		for j := 0; j < jobs; j++ {
			cur := out.NodeOf[j]
			curV := Infeasible
			if cur >= 0 {
				curV = at(j, cur)
			}
			for n := 0; n < nodes; n++ {
				if taken[n] {
					continue
				}
				if v := at(j, n); v >= 0 && v > curV {
					if cur >= 0 {
						taken[cur] = false
					}
					out.NodeOf[j], taken[n] = n, true
					cur, curV = n, v
					improved = true
				}
			}
		}
		for a := 0; a < jobs; a++ {
			na := out.NodeOf[a]
			if na < 0 {
				continue
			}
			for b := a + 1; b < jobs; b++ {
				nb := out.NodeOf[b]
				if nb < 0 {
					continue
				}
				va, vb := at(a, na), at(b, nb)
				sa, sb := at(a, nb), at(b, na)
				if sa < 0 || sb < 0 {
					continue
				}
				if sa+sb > va+vb {
					out.NodeOf[a], out.NodeOf[b] = nb, na
					na = nb
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	for j, n := range out.NodeOf {
		if n >= 0 {
			out.TotalUPS += scores[j][n]
		}
	}
	return out
}
