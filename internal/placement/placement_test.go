package placement

import (
	"math/rand"
	"reflect"
	"testing"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
	"sturgeon/internal/queueing"
	"sturgeon/internal/workload"
)

func physicsFor(t testing.TB, be workload.Profile) *Physics {
	t.Helper()
	m := NewPhysics(workload.Memcached(), be)
	return m
}

func TestPhysicsScorer(t *testing.T) {
	sc := NewScorer(hw.DefaultSpec())
	bs := physicsFor(t, workload.Blackscholes())
	qps := 0.5 * workload.Memcached().PeakQPS

	rich := sc.Best(bs, qps, 115)
	starved := sc.Best(bs, qps, 88)
	if !rich.Feasible || !starved.Feasible {
		t.Fatalf("expected both caps feasible: rich=%+v starved=%+v", rich, starved)
	}
	if rich.UPS <= starved.UPS {
		t.Fatalf("more power must buy more BE throughput: rich %.0f <= starved %.0f", rich.UPS, starved.UPS)
	}
	if rich.Config.BE.Cores == 0 {
		t.Fatalf("rich cap found no BE allocation: %+v", rich)
	}
	if err := rich.Config.Validate(sc.Spec); err != nil {
		t.Fatalf("best config invalid: %v", err)
	}
	if got := sc.Best(bs, qps, 115); got != rich {
		t.Fatalf("memoized verdict differs: %+v vs %+v", got, rich)
	}

	// A cap below the LS service's own draw is infeasible outright.
	if v := sc.Best(bs, qps, 10); v.Feasible || v.UPS != 0 {
		t.Fatalf("10 W should be infeasible, got %+v", v)
	}
}

func TestPhysicsQoSMonotone(t *testing.T) {
	m := physicsFor(t, workload.Blackscholes())
	ls := workload.Memcached()
	a := hw.Alloc{Cores: 12, Freq: 2.2, LLCWays: 12}
	if !m.QoSOK(a, 0.3*ls.PeakQPS) {
		t.Fatalf("12 fast cores must hold QoS at 30%% peak")
	}
	if m.QoSOK(hw.Alloc{Cores: 2, Freq: 1.2, LLCWays: 2}, ls.PeakQPS) {
		t.Fatalf("2 slow cores cannot hold QoS at peak")
	}
	if m.Throughput(hw.Alloc{}) != 0 {
		t.Fatalf("empty BE allocation must earn nothing")
	}
}

// scoreMatrix builds a jobs×nodes matrix from Physics models over a
// heterogeneous cap vector, the shape the fleet builder feeds Solve.
func scoreMatrix(t testing.TB, bes []workload.Profile, caps []power.Watts, qps float64) ([][]float64, []*Physics) {
	t.Helper()
	sc := NewScorer(hw.DefaultSpec())
	shared := queueing.NewCache()
	ms := make([]*Physics, len(bes))
	scores := make([][]float64, len(bes))
	for j, be := range bes {
		ms[j] = physicsFor(t, be)
		ms[j].Latency = shared
		scores[j] = make([]float64, len(caps))
		for n, cap := range caps {
			v := sc.Best(ms[j], qps, cap)
			if !v.Feasible {
				scores[j][n] = Infeasible
				continue
			}
			scores[j][n] = v.UPS
		}
	}
	return scores, ms
}

var benchBEs = []workload.Profile{
	workload.Blackscholes(), workload.Swaptions(), workload.Facesim(),
	workload.Ferret(), workload.Raytrace(), workload.Fluidanimate(),
}

var benchCaps = []power.Watts{112, 88, 112, 88, 104, 90, 112, 86}

func TestSolveBeatsRandom(t *testing.T) {
	qps := 0.45 * workload.Memcached().PeakQPS
	scores, _ := scoreMatrix(t, benchBEs, benchCaps, qps)
	got := Solve(scores, 1, 4)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(benchCaps))
		total := 0.0
		for j := range benchBEs {
			if s := scores[j][perm[j]]; s > 0 {
				total += s
			}
		}
		if total > got.TotalUPS {
			t.Fatalf("random permutation %d scores %.0f > solver %.0f", trial, total, got.TotalUPS)
		}
	}
	if got.TotalUPS <= 0 {
		t.Fatalf("solver found nothing: %+v", got)
	}
}

func TestSolveDeterministicAndConserving(t *testing.T) {
	qps := 0.45 * workload.Memcached().PeakQPS
	scores, _ := scoreMatrix(t, benchBEs, benchCaps, qps)
	base := Solve(scores, 42, 4)
	for i := 0; i < 3; i++ {
		if again := Solve(scores, 42, 4); !reflect.DeepEqual(again, base) {
			t.Fatalf("rerun %d differs: %+v vs %+v", i, again, base)
		}
	}
	// Different tie-break seeds still yield valid, conserving plans.
	for _, seed := range []int64{1, 2, 99} {
		a := Solve(scores, seed, 4)
		used := make(map[int]bool)
		for j, n := range a.NodeOf {
			if n < 0 {
				continue
			}
			if used[n] {
				t.Fatalf("seed %d: node %d hosts two jobs", seed, n)
			}
			used[n] = true
			if scores[j][n] < 0 {
				t.Fatalf("seed %d: job %d on infeasible node %d", seed, j, n)
			}
		}
	}
}

func TestSolveConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		jobs, nodes := 1+rng.Intn(8), 1+rng.Intn(10)
		scores := make([][]float64, jobs)
		for j := range scores {
			scores[j] = make([]float64, nodes)
			for n := range scores[j] {
				if rng.Float64() < 0.25 {
					scores[j][n] = Infeasible
				} else {
					scores[j][n] = rng.Float64() * 1e6
				}
			}
		}
		a := Solve(scores, int64(trial), 4)
		used := make(map[int]bool)
		placed := 0
		for j, n := range a.NodeOf {
			if n < 0 {
				continue
			}
			placed++
			if n >= nodes || used[n] {
				t.Fatalf("trial %d: invalid or reused node %d", trial, n)
			}
			used[n] = true
			if scores[j][n] < 0 {
				t.Fatalf("trial %d: job %d placed on infeasible node", trial, j)
			}
		}
		// Every unplaced job must genuinely have no feasible free node.
		for j, n := range a.NodeOf {
			if n >= 0 {
				continue
			}
			for f := 0; f < nodes; f++ {
				if !used[f] && scores[j][f] >= 0 {
					t.Fatalf("trial %d: job %d unplaced but node %d is free and feasible", trial, j, f)
				}
			}
		}
		_ = placed
	}
}

func plannerFixture(t testing.TB, opt PlannerOptions) (*Planner, []NodeSnap) {
	t.Helper()
	sc := NewScorer(hw.DefaultSpec())
	shared := queueing.NewCache()
	jobs := make([]Job, 2)
	for j, be := range []workload.Profile{workload.Blackscholes(), workload.Swaptions()} {
		m := physicsFor(t, be)
		m.Latency = shared
		jobs[j] = Job{ID: be.Name, Model: m}
	}
	qps := 0.45 * workload.Memcached().PeakQPS
	snaps := []NodeSnap{
		{QPS: qps, CapW: 88, PowerW: 87.5, Healthy: true, Job: 0}, // starved host
		{QPS: qps, CapW: 112, PowerW: 95, Healthy: true, Job: -1}, // rich free node
		{QPS: qps, CapW: 104, PowerW: 98, Healthy: true, Job: 1},  // comfortable host
		{QPS: qps, CapW: 90, PowerW: 70, Healthy: true, Job: -1},  // poor free node
	}
	return NewPlanner(jobs, sc, opt), snaps
}

func TestPlannerEvictsStarvedAndNeverFlaps(t *testing.T) {
	p, snaps := plannerFixture(t, PlannerOptions{WarmupS: 10})
	moves := p.Plan(1, snaps)
	if len(moves) != 1 {
		t.Fatalf("want exactly the starved eviction, got %+v", moves)
	}
	m := moves[0]
	if m.Job != 0 || m.From != 0 || m.To != 1 || m.Reason != ReasonStarved {
		t.Fatalf("unexpected move %+v", m)
	}
	if m.GainUPS <= 0 {
		t.Fatalf("eviction must predict a gain, got %+v", m)
	}

	// Apply the move; the fleet is now stable: no snap is starved, no
	// trough declared — the planner must stay quiet forever after.
	snaps[0].Job, snaps[0].PowerW = -1, 60
	snaps[1].Job = m.Job
	for epoch := 2; epoch < 40; epoch++ {
		if extra := p.Plan(epoch, snaps); len(extra) != 0 {
			t.Fatalf("epoch %d: planner flapped: %+v", epoch, extra)
		}
	}
}

func TestPlannerCooldownAndWarmup(t *testing.T) {
	p, snaps := plannerFixture(t, PlannerOptions{WarmupS: 10, CooldownEpochs: 5})
	if moves := p.Plan(1, snaps); len(moves) != 1 {
		t.Fatalf("setup move missing: %+v", moves)
	}
	// Same starved picture again immediately: job 0 is cooling down.
	if moves := p.Plan(2, snaps); len(moves) != 0 {
		t.Fatalf("cooldown violated: %+v", moves)
	}
	// A warming destination is not a free node and a warming host
	// cannot be evicted.
	p2, snaps2 := plannerFixture(t, PlannerOptions{WarmupS: 10})
	snaps2[1].Warm = 5
	snaps2[3].CapW = 88 // make the remaining free node useless vs staying
	snaps2[3].PowerW = 87
	snaps2[3].Job = -1
	if moves := p2.Plan(1, snaps2); len(moves) != 0 {
		t.Fatalf("moved onto warming or worse node: %+v", moves)
	}
}

func TestPlannerHysteresisBlocksMarginalMoves(t *testing.T) {
	// Destination equals the source cap: zero gain, hysteresis holds.
	p, snaps := plannerFixture(t, PlannerOptions{Hysteresis: 0.10})
	snaps[1].CapW = snaps[0].CapW
	if moves := p.Plan(1, snaps); len(moves) != 0 {
		t.Fatalf("hysteresis failed to block a zero-gain move: %+v", moves)
	}
}

func TestPlannerConsolidatesInTrough(t *testing.T) {
	p, snaps := plannerFixture(t, PlannerOptions{TroughQPS: 1e9, WarmupS: 10})
	// Nobody is starved…
	snaps[0].PowerW = 70
	// …but the fleet is in a trough (threshold absurdly high), so the
	// planner may still consolidate job 0 onto the rich node.
	moves := p.Plan(1, snaps)
	if len(moves) != 1 || moves[0].Reason != ReasonConsolidate {
		t.Fatalf("want one consolidation move, got %+v", moves)
	}
}

func TestPlanDocRoundTripAndValidation(t *testing.T) {
	d := &PlanDoc{
		Schema:     PlanSchema,
		Jobs:       3,
		Nodes:      4,
		Assignment: []int{2, 0, -1},
		Moves: []PlanMove{
			{Job: 0, From: 2, To: 1, Reason: ReasonStarved, Epoch: 4},
			{Job: 2, From: -1, To: 3},
		},
	}
	// Move 1 is invalid: job 2 was never placed.
	if err := d.Validate(); err == nil {
		t.Fatalf("expected replay failure for unplaced job move")
	}
	d.Moves = d.Moves[:1]
	data, err := EncodePlan(d)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodePlan(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	final, err := back.Apply()
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if want := []int{1, 0, -1}; !reflect.DeepEqual(final, want) {
		t.Fatalf("final assignment %v, want %v", final, want)
	}

	bad := []PlanDoc{
		{Schema: "nope", Jobs: 0, Nodes: 0, Assignment: []int{}},
		{Schema: PlanSchema, Jobs: 2, Nodes: 1, Assignment: []int{0, 0}},
		{Schema: PlanSchema, Jobs: 1, Nodes: 1, Assignment: []int{5}},
		{Schema: PlanSchema, Jobs: 1, Nodes: 2, Assignment: []int{0},
			Moves: []PlanMove{{Job: 0, From: 0, To: 0}}},
		{Schema: PlanSchema, Jobs: -1, Nodes: 0, Assignment: nil},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Fatalf("bad doc %d validated", i)
		}
	}
}
