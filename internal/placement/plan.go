package placement

import (
	"sort"

	"sturgeon/internal/power"
)

// Job is one BE application managed by the planner, with the pair
// model predicting its behaviour next to the fleet's LS service.
type Job struct {
	ID    string
	Model PairModel
}

// NodeSnap is the planner's per-node view at an epoch boundary,
// assembled by the cluster from the last merged interval.
type NodeSnap struct {
	// QPS is the LS load the node served in the last interval.
	QPS float64
	// CapW is the node's current power cap (coordinator grant or static
	// budget) and PowerW its measured draw.
	CapW   power.Watts
	PowerW power.Watts
	// Healthy is false for crashed or evicted nodes.
	Healthy bool
	// Job is the index of the BE job hosted here, -1 when idle.
	Job int
	// Warm counts remaining warm-up seconds from a previous migration;
	// a warming node neither earns nor gives up its job.
	Warm int
}

// Move is one planned migration.
type Move struct {
	Job  int
	From int
	To   int
	// Reason is "starved" (evicted off a power-starved or unhealthy
	// node) or "consolidate" (packed onto a better node in a trough).
	Reason string
	// GainUPS is the predicted steady-state throughput gain.
	GainUPS float64
}

// Reasons emitted by the planner.
const (
	ReasonStarved     = "starved"
	ReasonConsolidate = "consolidate"
)

// PlannerOptions tune migration aggressiveness and stability.
type PlannerOptions struct {
	// StarveFrac: a node drawing at least this fraction of its cap is
	// power-starved — its governor is shedding BE frequency and the job
	// would earn more elsewhere. Default 0.95.
	StarveFrac float64
	// TroughQPS: when the fleet-mean per-node load drops to or below
	// this, the planner may also consolidate jobs onto strictly better
	// nodes even without starvation. 0 disables consolidation.
	TroughQPS float64
	// Hysteresis: a destination must beat the current node's predicted
	// throughput by this fraction before a move is considered. Default
	// 0.10.
	Hysteresis float64
	// WarmupS is the per-move cost: seconds after arrival during which
	// the migrated BE earns nothing. AmortizeS is the horizon over
	// which the gain must repay that cost: a move needs
	// gain × AmortizeS > current × WarmupS. Defaults 30 and 300.
	WarmupS   int
	AmortizeS int
	// CooldownEpochs: a job that just moved may not move again for this
	// many epochs. Default 3.
	CooldownEpochs int
	// MaxMovesPerEpoch bounds churn. Default 2.
	MaxMovesPerEpoch int
}

// withDefaults fills zero fields.
func (o PlannerOptions) withDefaults() PlannerOptions {
	if o.StarveFrac == 0 {
		o.StarveFrac = 0.95
	}
	if o.Hysteresis == 0 {
		o.Hysteresis = 0.10
	}
	if o.WarmupS == 0 {
		o.WarmupS = 30
	}
	if o.AmortizeS == 0 {
		o.AmortizeS = 300
	}
	if o.CooldownEpochs == 0 {
		o.CooldownEpochs = 3
	}
	if o.MaxMovesPerEpoch == 0 {
		o.MaxMovesPerEpoch = 2
	}
	return o
}

// Planner plans migrations at epoch boundaries. It is deterministic:
// Plan is a pure function of (epoch, snaps) and the planner's own move
// history, and it is only ever called from the cluster's serial merge
// section.
type Planner struct {
	Jobs   []Job
	Scorer *Scorer
	Opt    PlannerOptions

	lastMove []int
}

// NewPlanner builds a planner for the jobs over the scorer.
func NewPlanner(jobs []Job, sc *Scorer, opt PlannerOptions) *Planner {
	p := &Planner{Jobs: jobs, Scorer: sc, Opt: opt.withDefaults()}
	p.lastMove = make([]int, len(jobs))
	for j := range p.lastMove {
		p.lastMove[j] = -1 << 30
	}
	return p
}

// Plan returns the migrations to apply at this epoch, at most
// MaxMovesPerEpoch, each conserving jobs by construction: a move's
// source hosts exactly the moved job and its destination is a distinct
// idle healthy node no other move targets.
func (p *Planner) Plan(epoch int, snaps []NodeSnap) []Move {
	opt := p.Opt
	var freeNodes []int
	trough := false
	if opt.TroughQPS > 0 {
		total, active := 0.0, 0
		for _, s := range snaps {
			if s.Healthy {
				total += s.QPS
				active++
			}
		}
		trough = active > 0 && total/float64(active) <= opt.TroughQPS
	}
	for i, s := range snaps {
		if s.Healthy && s.Job < 0 && s.Warm == 0 {
			freeNodes = append(freeNodes, i)
		}
	}
	if len(freeNodes) == 0 {
		return nil
	}

	var cands []Move
	for i, s := range snaps {
		j := s.Job
		if j < 0 || j >= len(p.Jobs) || s.Warm > 0 {
			continue
		}
		starved := !s.Healthy || s.PowerW >= power.Watts(opt.StarveFrac)*s.CapW
		if !starved && !trough {
			continue
		}
		if epoch-p.lastMove[j] <= opt.CooldownEpochs {
			continue
		}
		cur := 0.0
		if s.Healthy {
			cur = p.Scorer.Best(p.Jobs[j].Model, s.QPS, s.CapW).UPS
		}
		bestTo, bestUPS := -1, 0.0
		for _, f := range freeNodes {
			ups := p.Scorer.Best(p.Jobs[j].Model, snaps[f].QPS, snaps[f].CapW).UPS
			if ups > bestUPS {
				bestTo, bestUPS = f, ups
			}
		}
		if bestTo < 0 {
			continue
		}
		gain := bestUPS - cur
		if s.Healthy {
			// Hysteresis: the destination must clearly beat staying put,
			// and the gain must repay the warm-up cost over the
			// amortization horizon.
			if bestUPS <= cur*(1+opt.Hysteresis) {
				continue
			}
			if gain*float64(opt.AmortizeS) <= cur*float64(opt.WarmupS) {
				continue
			}
		} else if bestUPS <= 0 {
			continue
		}
		reason := ReasonConsolidate
		if starved {
			reason = ReasonStarved
		}
		cands = append(cands, Move{Job: j, From: i, To: bestTo, Reason: reason, GainUPS: gain})
	}
	if len(cands) == 0 {
		return nil
	}

	// Largest gains first; job index breaks exact ties.
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].GainUPS != cands[b].GainUPS {
			return cands[a].GainUPS > cands[b].GainUPS
		}
		return cands[a].Job < cands[b].Job
	})
	var out []Move
	usedTo := make(map[int]bool)
	for _, m := range cands {
		if len(out) >= opt.MaxMovesPerEpoch {
			break
		}
		if usedTo[m.To] {
			// Its best destination was claimed by a larger gain; wait for
			// the next epoch rather than settling for a worse node.
			continue
		}
		usedTo[m.To] = true
		p.lastMove[m.Job] = epoch
		out = append(out, m)
	}
	return out
}
