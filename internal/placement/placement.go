// Package placement is the fleet-level placement and migration engine
// that sits above the per-node governor and the fleet coordinator.
// Sturgeon decides each node's resource split; this package decides
// *which* BE application lands next to which LS service on which node,
// and when a running BE should move.
//
// It has three parts:
//
//   - A pair Scorer that predicts, from a per-pair model (the trained
//     models in internal/models or the deterministic Physics model
//     below), the best achievable BE throughput on a node at
//     QoS-feasible allocations under that node's granted power cap.
//   - A deterministic assignment Solver (greedy seed + bounded
//     local-search swaps and relocations, seeded stable tie-breaking)
//     that turns a job×node score matrix into an initial fleet
//     placement beating random pairing.
//   - A migration Planner invoked at epoch boundaries that evicts BE
//     work off power-starved or unhealthy nodes and consolidates BEs
//     onto fewer nodes during demand troughs, kept stable by an
//     explicit per-move cost model (warm-up intervals during which the
//     migrated BE earns nothing) plus hysteresis and cooldown
//     thresholds so it never flaps.
//
// Everything here is deterministic: the only randomness is a seeded
// tie-break jitter far below any real score difference, so repeated
// runs — and runs at any stepping parallelism — produce byte-identical
// plans. See DESIGN.md §15.
package placement

import (
	"math"

	"sturgeon/internal/cache"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/power"
	"sturgeon/internal/queueing"
	"sturgeon/internal/workload"
)

// PairModel predicts the behaviour of one LS/BE pair. The method set is
// exactly the prediction surface of *models.Predictor, so a trained
// per-pair model satisfies it verbatim; Bundle adapts the split
// LSModels/BEModels form and Physics provides a closed-form analytic
// model that needs no training. Implementations must be comparable (the
// Scorer memoizes on the model identity) and safe for serial reuse.
type PairModel interface {
	// QoSOK reports whether the LS allocation meets the tail-latency
	// target at the given load.
	QoSOK(a hw.Alloc, qps float64) bool
	// Throughput predicts BE progress in units/s on the BE allocation.
	Throughput(a hw.Alloc) float64
	// PowerW predicts whole-node power for the configuration at load.
	PowerW(cfg hw.Config, qps float64) power.Watts
}

// Bundle adapts the split per-application model form
// (models.LSModels + models.BEModels) to the PairModel surface: node
// power composes as the LS node baseline plus the BE increment.
type Bundle struct {
	LS *models.LSModels
	BE *models.BEModels
}

// QoSOK implements PairModel.
func (b Bundle) QoSOK(a hw.Alloc, qps float64) bool { return b.LS.QoSOK(a, qps) }

// Throughput implements PairModel.
func (b Bundle) Throughput(a hw.Alloc) float64 { return b.BE.Throughput(a) }

// PowerW implements PairModel.
func (b Bundle) PowerW(cfg hw.Config, qps float64) power.Watts {
	return b.LS.NodePowerW(cfg.LS, qps) + b.BE.PowerIncW(cfg.BE)
}

// Physics is a deterministic analytic pair model built directly from
// the workload profiles and platform physics — the same equations
// sim.Node integrates, evaluated at steady state without noise or
// interference. It exists so placement decisions can be made (and
// benchmarked, and golden-tested) without training MLPs first; trained
// predictors slot into the same Scorer through the PairModel interface.
//
// Physics is not safe for concurrent use (it reuses an internal
// queueing evaluator); the solver and planner only ever call it from
// the serial merge section, which is also what keeps plans identical
// at any stepping parallelism.
type Physics struct {
	LS    workload.Profile
	BE    workload.Profile
	Spec  hw.Spec
	Power power.Params
	Bus   cache.MemBus
	// Pct is the tracked tail percentile (default 0.95) and Margin the
	// headroom factor on the QoS target (default 0.9): the model calls
	// an allocation feasible only when the predicted tail sits inside
	// Margin × target, absorbing its own approximation error.
	Pct    float64
	Margin float64
	// Latency memoizes analytic solves; share one cache across the
	// fleet's Physics models. Nil disables memoization.
	Latency *queueing.Cache

	ev queueing.Evaluator
}

// NewPhysics builds a Physics model for the pair on the default
// platform with a private latency cache.
func NewPhysics(ls, be workload.Profile) *Physics {
	return &Physics{
		LS:      ls,
		BE:      be,
		Spec:    hw.DefaultSpec(),
		Power:   power.DefaultParams(),
		Bus:     cache.DefaultBus(),
		Pct:     0.95,
		Margin:  0.9,
		Latency: queueing.NewCache(),
	}
}

// lsSteady evaluates the LS side alone at the allocation and load,
// with the short contention fixed point the simulator uses.
func (m *Physics) lsSteady(a hw.Alloc, qps float64) workload.LSState {
	contention := 1.0
	var ls workload.LSState
	for i := 0; i < 3; i++ {
		ls = m.LS.LSRate(a, qps, contention)
		contention = m.Bus.Contention(ls.BandwidthGBs)
	}
	return ls
}

// QoSOK implements PairModel: the analytic tail latency at the
// allocation must sit within Margin × target.
func (m *Physics) QoSOK(a hw.Alloc, qps float64) bool {
	if a.Cores <= 0 {
		return qps <= 0
	}
	ls := m.lsSteady(a, qps)
	if ls.Rho >= 1 {
		return false
	}
	q := queueing.Analytic{
		Lambda:    qps,
		Servers:   a.Cores,
		SvcMean:   ls.SvcMean,
		SvcCV:     m.LS.SvcCV,
		ArrivalCV: m.LS.ArrivalCV,
		IntervalS: 1,
	}
	target := m.LS.QoSTargetS * m.Margin
	p95, _ := m.Latency.Solve(q, m.Pct, target, &m.ev)
	return !math.IsInf(p95, 1) && p95 <= target
}

// Throughput implements PairModel: BE units/s at the allocation, with
// the BE application's own bandwidth feeding the contention loop.
func (m *Physics) Throughput(a hw.Alloc) float64 {
	contention := 1.0
	var be workload.BEState
	for i := 0; i < 3; i++ {
		be = m.BE.BERate(a, contention)
		contention = m.Bus.Contention(be.BandwidthGBs)
	}
	return be.ThroughputUPS
}

// PowerW implements PairModel: whole-node draw for the co-located
// configuration at load, with the coupled contention fixed point.
func (m *Physics) PowerW(cfg hw.Config, qps float64) power.Watts {
	contention := 1.0
	var ls workload.LSState
	var be workload.BEState
	for i := 0; i < 3; i++ {
		ls = m.LS.LSRate(cfg.LS, qps, contention)
		be = m.BE.BERate(cfg.BE, contention)
		contention = m.Bus.Contention(ls.BandwidthGBs + be.BandwidthGBs)
	}
	beUtil := 0.0
	if cfg.BE.Cores > 0 {
		beUtil = 1.0
	}
	loads := []power.CoreLoad{
		{Cores: cfg.LS.Cores, Freq: cfg.LS.Freq, Util: math.Min(ls.Rho, 1), Activity: m.LS.Activity},
		{Cores: cfg.BE.Cores, Freq: cfg.BE.Freq, Util: beUtil, Activity: m.BE.Activity},
	}
	activeWays := cfg.LS.LLCWays + cfg.BE.LLCWays
	dram := m.Bus.Achieved(ls.BandwidthGBs + be.BandwidthGBs)
	return m.Power.Total(loads, activeWays, m.Spec.LLCWays, dram)
}
