package placement

import (
	"math"

	"sturgeon/internal/hw"
	"sturgeon/internal/power"
)

// Score is the Scorer's verdict for one (pair model, load, cap) query.
type Score struct {
	// UPS is the best predicted BE throughput over QoS-feasible,
	// cap-respecting configurations (0 when none exists but the LS side
	// alone still fits).
	UPS float64
	// Config is the configuration achieving UPS. When no BE frequency
	// fits, Config carries the cheapest QoS-feasible LS allocation with
	// an empty BE side.
	Config hw.Config
	// Feasible reports whether any QoS-feasible LS allocation fits
	// under the cap at all; an infeasible node cannot even host the LS
	// service and scores negative in the solver.
	Feasible bool
}

// Scorer answers "what is the best BE throughput this pair can earn on
// a node granted this power cap at this load?" by sweeping the DVFS
// grid over a fixed core/way split. The split mirrors what the runtime
// governor can actually actuate — the governor adjusts frequencies
// only, so the scorer holds cores and ways at the boot split and
// enumerates LS×BE frequency pairs, keeping the prediction surface
// aligned with the machine the plan runs on (see DESIGN.md §15).
//
// Queries are memoized on (model, load bits, cap bits): the planner
// re-scores every node each epoch, but distinct (load, cap) points are
// few on a quantized trace. Not safe for concurrent use.
type Scorer struct {
	// Spec is the node geometry; LS and BE give the core/way template
	// (frequencies in the templates are ignored).
	Spec hw.Spec
	LS   hw.Alloc
	BE   hw.Alloc

	memo map[scoreKey]Score
}

type scoreKey struct {
	m    PairModel
	qps  uint64
	capW uint64
}

// NewScorer builds a scorer over the default LS-heavy boot split used
// by the fleet scenarios: 12 cores / 12 ways for the LS service, 8
// cores / 8 ways for the BE application.
func NewScorer(spec hw.Spec) *Scorer {
	return &Scorer{
		Spec: spec,
		LS:   hw.Alloc{Cores: 12, LLCWays: 12},
		BE:   hw.Alloc{Cores: 8, LLCWays: 8},
	}
}

// Best returns the scorer's verdict for pairing model m on a node with
// power cap capW at sustained load qps. The sweep is exact over the
// frequency grid: for every QoS-feasible LS frequency it takes the
// highest BE frequency whose predicted node power fits the cap, and
// returns the configuration maximizing predicted BE throughput (ties
// resolve to the lowest frequencies, making the result deterministic).
func (s *Scorer) Best(m PairModel, qps float64, capW power.Watts) Score {
	key := scoreKey{m: m, qps: math.Float64bits(qps), capW: math.Float64bits(float64(capW))}
	if sc, ok := s.memo[key]; ok {
		return sc
	}
	sc := s.sweep(m, qps, capW)
	if s.memo == nil {
		s.memo = make(map[scoreKey]Score)
	}
	s.memo[key] = sc
	return sc
}

func (s *Scorer) sweep(m PairModel, qps float64, capW power.Watts) Score {
	var out Score
	levels := s.Spec.FreqLevels()
	for _, lsF := range levels {
		lsAlloc := hw.Alloc{Cores: s.LS.Cores, Freq: lsF, LLCWays: s.LS.LLCWays}
		if !m.QoSOK(lsAlloc, qps) {
			continue
		}
		// LS alone must fit before any BE frequency is considered.
		bare := hw.Config{LS: lsAlloc}
		if m.PowerW(bare, qps) > capW {
			continue
		}
		if !out.Feasible {
			out.Feasible = true
			out.Config = bare
		}
		for _, beF := range levels {
			cfg := hw.Config{
				LS: lsAlloc,
				BE: hw.Alloc{Cores: s.BE.Cores, Freq: beF, LLCWays: s.BE.LLCWays},
			}
			if m.PowerW(cfg, qps) > capW {
				break // power is monotone in BE frequency
			}
			if ups := m.Throughput(cfg.BE); ups > out.UPS {
				out.UPS = ups
				out.Config = cfg
			}
		}
	}
	return out
}

// InvalidateMemo drops every memoized verdict — call after mutating a
// model in place.
func (s *Scorer) InvalidateMemo() { s.memo = nil }
