package pool

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// step mimics a deterministic per-index computation whose result depends
// only on the index, never on scheduling.
func step(i int) int { return i*i + 7 }

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	cases := []struct {
		name        string
		parallelism int
		n           int
	}{
		{"serial", 1, 100},
		{"negative-means-gomaxprocs", -1, 100},
		{"zero-means-gomaxprocs", 0, 100},
		{"two-workers", 2, 100},
		{"more-workers-than-tasks", 64, 5},
		{"single-task", 8, 1},
		{"empty", 8, 0},
		{"wide", 8, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := make([]int, tc.n)
			var calls atomic.Int64
			ForEach(tc.parallelism, tc.n, func(i int) {
				calls.Add(1)
				out[i] = step(i)
			})
			if got := int(calls.Load()); got != tc.n {
				t.Fatalf("fn invoked %d times, want %d", got, tc.n)
			}
			for i, v := range out {
				if v != step(i) {
					t.Fatalf("slot %d holds %d, want %d — index mixup", i, v, step(i))
				}
			}
		})
	}
}

// TestMapPreservesOrder forces late indices to finish first; the output
// must still be in index order.
func TestMapPreservesOrder(t *testing.T) {
	const n = 16
	got := Map(8, n, func(i int) int {
		time.Sleep(time.Duration(n-i) * time.Millisecond)
		return step(i)
	})
	want := make([]int, n)
	for i := range want {
		want[i] = step(i)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Map returned %v, want %v", got, want)
	}
}

// TestParallelismOneEquivalence runs the same task set serially and at
// several worker counts; every configuration must produce identical
// results.
func TestParallelismOneEquivalence(t *testing.T) {
	const n = 257
	serial := Map(1, n, step)
	for _, p := range []int{2, 3, 8, n + 1} {
		if got := Map(p, n, step); !reflect.DeepEqual(got, serial) {
			t.Fatalf("parallelism=%d diverged from serial", p)
		}
	}
}

// TestPanicPropagatesLowestIndex checks that the propagated panic is the
// lowest-index one regardless of worker count, and that every healthy
// task still ran.
func TestPanicPropagatesLowestIndex(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		out := make([]int, 10)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("parallelism=%d: expected a panic", p)
				}
				pp, ok := r.(Panic)
				if !ok {
					t.Fatalf("parallelism=%d: recovered %T, want pool.Panic", p, r)
				}
				if pp.Index != 3 || pp.Value != "boom-3" {
					t.Fatalf("parallelism=%d: propagated %+v, want index 3 / boom-3", p, pp)
				}
				if pp.Error() == "" {
					t.Fatalf("Panic.Error must render")
				}
			}()
			ForEach(p, len(out), func(i int) {
				if i == 3 || i == 7 {
					panic("boom-" + string(rune('0'+i)))
				}
				out[i] = step(i)
			})
		}()
		for i, v := range out {
			if i == 3 || i == 7 {
				continue
			}
			if v != step(i) {
				t.Fatalf("parallelism=%d: healthy task %d skipped after panic", p, i)
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	maxp := runtime.GOMAXPROCS(0)
	if maxp > 1 {
		if got := Workers(maxp); got != maxp {
			t.Fatalf("Workers(%d) = %d", maxp, got)
		}
	}
	if got := Workers(0); got != maxp {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != maxp {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	// CPU-bound pool: requests beyond the runtime's parallel capacity
	// are clamped, never amplified.
	if got := Workers(maxp * 16); got != maxp {
		t.Fatalf("Workers(%d) = %d, want clamp to GOMAXPROCS %d", maxp*16, got, maxp)
	}
}

// TestForEachActuallyRunsConcurrently guards against a regression that
// silently serializes the pool: with w mutually waiting tasks and w
// workers, completion requires genuine concurrency.
func TestForEachActuallyRunsConcurrently(t *testing.T) {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		t.Skip("needs GOMAXPROCS >= 2")
	}
	var entered atomic.Int64
	done := make(chan struct{})
	go func() {
		ForEach(w, w, func(i int) {
			entered.Add(1)
			for int(entered.Load()) < w {
				time.Sleep(time.Millisecond)
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool serialized: tasks never overlapped")
	}
}
