// Package pool is the deterministic fork-join worker pool behind the
// simulator's parallel hot paths (cluster stepping, the §V-B candidate
// sweep, the Fig. 9/10 per-pair evaluations and the benchmark harness).
//
// The pool deliberately has no ordering freedom a caller can observe:
// tasks are identified by index, results are written into index-i slots
// by the caller's closure, and every aggregation the callers perform
// happens serially after ForEach returns, in index order. Parallelism
// therefore changes wall-clock time and nothing else — a seeded run
// produces byte-identical output at any worker count, which is what the
// golden fixtures and the replay-determinism CI gate rely on.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to an effective worker count:
// p <= 0 means GOMAXPROCS (the pool's "enabled by default" setting), and
// any request is clamped to GOMAXPROCS — the pool exists for the
// simulator's CPU-bound hot paths, where workers beyond the runtime's
// parallel capacity cannot raise throughput but do add scheduling churn
// (measurably so: see BENCH_fleet.json's parallelism sweep).
func Workers(p int) int {
	if maxp := runtime.GOMAXPROCS(0); p <= 0 || p > maxp {
		return maxp
	}
	return p
}

// Panic wraps a panic raised by a pooled task. ForEach attempts every
// task regardless of earlier failures and then re-raises the panic of
// the lowest-index failing task, so the propagated value is a pure
// function of the task set — not of goroutine scheduling.
type Panic struct {
	// Index is the task whose panic is being propagated.
	Index int
	// Value is the original panic value.
	Value any
}

// Error implements error so a recovered pool.Panic prints usefully.
func (p Panic) Error() string {
	return fmt.Sprintf("pool: task %d panicked: %v", p.Index, p.Value)
}

// ForEach invokes fn(i) for every i in [0, n) using at most
// Workers(parallelism) concurrent goroutines. fn must confine its writes
// to per-index state (slot i of a results slice, node i of a fleet);
// shared reductions belong in the caller's serial merge loop.
//
// With one effective worker the loop runs inline on the calling
// goroutine — no goroutines, no channels — so parallelism=1 is the
// plain serial program. In both modes every task is attempted and a
// panicking task does not prevent later tasks from running; after all
// tasks finish, the panic of the lowest-index failing task (if any) is
// re-raised wrapped in Panic. Serial and parallel execution are thus
// observationally equivalent, including under failure.
func ForEach(parallelism, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := min(Workers(parallelism), n)
	var panics []*Panic // allocated on first panic only
	var mu sync.Mutex
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				panics = append(panics, &Panic{Index: i, Value: r})
				mu.Unlock()
			}
		}()
		fn(i)
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.Index < first.Index {
				first = p
			}
		}
		panic(*first)
	}
}

// Map runs fn over [0, n) with at most Workers(parallelism) workers and
// returns the results in index order.
func Map[T any](parallelism, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(parallelism, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
