// Package trace provides the experiment-output primitives: aligned text
// tables for figure/table reproduction, CSV/TSV emission for plotting,
// and named time series for trace figures like the paper's Fig. 11.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rows-and-headers result container.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; cells beyond the header count are kept as-is.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted cells: each argument is rendered with
// %v unless it is a float64, which is rendered with 4 significant
// decimals.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, c := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			line.WriteString(c)
			line.WriteString(strings.Repeat(" ", max(0, pad)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the table as one JSON document ({title, headers,
// rows}) — the machine-readable form behind the binaries' -json flag.
func (t *Table) WriteJSON(w io.Writer) error {
	doc := struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.Rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Series is one named time series.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Append adds one point.
func (s *Series) Append(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// SeriesSet renders multiple series sharing a time base as TSV.
type SeriesSet struct {
	Title  string
	Series []*Series
}

// Add registers a series and returns it for appending.
func (ss *SeriesSet) Add(name string) *Series {
	s := &Series{Name: name}
	ss.Series = append(ss.Series, s)
	return s
}

// WriteTSV emits time in the first column and one column per series.
// Series are assumed to share the first series' time base; shorter series
// pad with empty cells.
func (ss *SeriesSet) WriteTSV(w io.Writer) error {
	if len(ss.Series) == 0 {
		return nil
	}
	head := []string{"t"}
	for _, s := range ss.Series {
		head = append(head, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, "\t")); err != nil {
		return err
	}
	base := ss.Series[0]
	for i := range base.T {
		cells := []string{fmt.Sprintf("%g", base.T[i])}
		for _, s := range ss.Series {
			if i < len(s.V) {
				cells = append(cells, fmt.Sprintf("%g", s.V[i]))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// sparkRunes are the eight block heights of a terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip, resampled to
// width columns (width ≤ 0 keeps one column per point). Useful for
// eyeballing a Fig.-11-style series straight in the terminal.
func Sparkline(v []float64, width int) string {
	if len(v) == 0 {
		return ""
	}
	if width <= 0 || width > len(v) {
		width = len(v)
	}
	// Resample by bucket means.
	buckets := make([]float64, width)
	counts := make([]int, width)
	for i, x := range v {
		b := i * width / len(v)
		buckets[b] += x
		counts[b]++
	}
	lo, hi := buckets[0]/float64(counts[0]), buckets[0]/float64(counts[0])
	for b := range buckets {
		buckets[b] /= float64(max(1, counts[b]))
		if buckets[b] < lo {
			lo = buckets[b]
		}
		if buckets[b] > hi {
			hi = buckets[b]
		}
	}
	span := hi - lo
	out := make([]rune, width)
	for b, x := range buckets {
		idx := 0
		if span > 0 {
			idx = int((x - lo) / span * float64(len(sparkRunes)-1))
		}
		out[b] = sparkRunes[idx]
	}
	return string(out)
}

// Spark renders a series' values (see Sparkline).
func (s *Series) Spark(width int) string {
	return Sparkline(s.V, width)
}
