package trace_test

import (
	"fmt"

	"sturgeon/internal/trace"
)

// Tables render the paper's rows as aligned text (and CSV via WriteCSV).
func ExampleTable() {
	t := trace.NewTable("Fig. X", "pair", "qos")
	t.Addf("memcached+rt", 0.9856)
	fmt.Print(t)
	// Output:
	// Fig. X
	// pair          qos
	// ------------  ------
	// memcached+rt  0.9856
}

// Sparklines give a terminal view of a Fig.-11-style series.
func ExampleSparkline() {
	fmt.Println(trace.Sparkline([]float64{1, 2, 3, 5, 8, 5, 3, 2}, 0))
	// Output:
	// ▁▂▃▅█▅▃▂
}
