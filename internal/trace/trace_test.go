package trace

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sturgeon/internal/jsonio"
)

func TestTableStringAlignment(t *testing.T) {
	tbl := NewTable("Title", "name", "value")
	tbl.Add("a", "1")
	tbl.Add("longer-name", "2.5")
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("first line %q", lines[0])
	}
	// Header, separator and both rows share the first column width.
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header misaligned: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing separator: %q", lines[2])
	}
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5", len(lines))
	}
}

func TestTableAddf(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.Addf("x", 0.123456, 42)
	row := tbl.Rows[0]
	if row[0] != "x" || row[1] != "0.1235" || row[2] != "42" {
		t.Errorf("Addf row = %v", row)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.Add("1", "x,y") // comma must be quoted
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestTableWriteJSON(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.Add("1", "2")
	var sb strings.Builder
	if err := tbl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc.Title != "t" || len(doc.Headers) != 2 || len(doc.Rows) != 1 || doc.Rows[0][1] != "2" {
		t.Errorf("round trip mangled the table: %+v", doc)
	}
}

// TestTableWriteJSONRoundTripJSONIO pushes WriteJSON's output through the
// shared jsonio decode path the binaries' -json consumers use: headers and
// rows must survive untouched, and trailing garbage after the document
// must be rejected rather than silently ignored.
func TestTableWriteJSONRoundTripJSONIO(t *testing.T) {
	tbl := NewTable("exp:coord", "node", "cap_w", "slack")
	tbl.Addf("node-000", 98.0, 0.1234567)
	tbl.Add("node-001", "104.5", "0.2000")
	var sb strings.Builder
	if err := tbl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := jsonio.Decode(strings.NewReader(sb.String()), &doc); err != nil {
		t.Fatalf("jsonio rejected WriteJSON output: %v", err)
	}
	if doc.Title != tbl.Title {
		t.Errorf("title %q, want %q", doc.Title, tbl.Title)
	}
	if !reflect.DeepEqual(doc.Headers, tbl.Headers) {
		t.Errorf("headers %v, want %v", doc.Headers, tbl.Headers)
	}
	if !reflect.DeepEqual(doc.Rows, tbl.Rows) {
		t.Errorf("rows %v, want %v", doc.Rows, tbl.Rows)
	}
	// A second document after the first is trailing data, not a feature.
	if err := jsonio.Decode(strings.NewReader(sb.String()+`{"title":"x"}`), &doc); err == nil {
		t.Error("jsonio accepted trailing data after the table document")
	}
}

func TestSeriesSetTSV(t *testing.T) {
	ss := &SeriesSet{}
	a := ss.Add("alpha")
	b := ss.Add("beta")
	a.Append(1, 10)
	a.Append(2, 20)
	b.Append(1, 0.5) // shorter series pads
	var sb strings.Builder
	if err := ss.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != "t\talpha\tbeta" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "1\t10\t0.5" {
		t.Errorf("row 1 %q", lines[1])
	}
	if lines[2] != "2\t20\t" {
		t.Errorf("row 2 %q (short series should pad)", lines[2])
	}
}

func TestSeriesSetEmpty(t *testing.T) {
	ss := &SeriesSet{}
	var sb strings.Builder
	if err := ss.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty set produced %q", sb.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", s)
	}
	// Constant series renders the lowest block everywhere.
	c := Sparkline([]float64{5, 5, 5, 5}, 4)
	if c != "▁▁▁▁" {
		t.Errorf("constant sparkline = %q", c)
	}
	// Resampling halves the width.
	r := Sparkline([]float64{0, 0, 7, 7}, 2)
	if len([]rune(r)) != 2 {
		t.Errorf("resampled width = %d", len([]rune(r)))
	}
	ser := &Series{V: []float64{1, 9, 1, 9}}
	if len([]rune(ser.Spark(4))) != 4 {
		t.Error("Series.Spark width mismatch")
	}
}
