// Package actuator implements the paper's Table III control surface on
// real Linux interfaces: cpuset cgroups for core partitioning, resctrl
// (Intel CAT) for LLC way partitioning, cpufreq for per-core DVFS and the
// powercap (Intel RAPL) sysfs for energy readings.
//
// Every path root is configurable, so the package is fully exercised by
// the test suite against a fake sysfs tree; on a real machine the zero
// Paths value targets the kernel's standard mount points. The simulator
// in internal/sim implements the same Apply(hw.Config) contract, which is
// what lets the controllers run unchanged on either substrate.
package actuator

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sturgeon/internal/hw"
)

// Paths locates the kernel control filesystems. Zero values select the
// standard mount points.
type Paths struct {
	// CpusetRoot is the cpuset cgroup controller root
	// (default /sys/fs/cgroup/cpuset).
	CpusetRoot string
	// ResctrlRoot is the resctrl filesystem root (default /sys/fs/resctrl).
	ResctrlRoot string
	// CPUFreqRoot is the cpufreq sysfs root
	// (default /sys/devices/system/cpu).
	CPUFreqRoot string
	// RAPLEnergyFile is the package energy counter
	// (default /sys/class/powercap/intel-rapl/intel-rapl:0/energy_uj).
	RAPLEnergyFile string
}

func (p Paths) withDefaults() Paths {
	if p.CpusetRoot == "" {
		p.CpusetRoot = "/sys/fs/cgroup/cpuset"
	}
	if p.ResctrlRoot == "" {
		p.ResctrlRoot = "/sys/fs/resctrl"
	}
	if p.CPUFreqRoot == "" {
		p.CPUFreqRoot = "/sys/devices/system/cpu"
	}
	if p.RAPLEnergyFile == "" {
		p.RAPLEnergyFile = "/sys/class/powercap/intel-rapl/intel-rapl:0/energy_uj"
	}
	return p
}

// Linux applies co-location configurations through the kernel interfaces.
type Linux struct {
	Spec  hw.Spec
	Paths Paths
	// LSGroup and BEGroup name the cgroup/resctrl groups (defaults "ls"
	// and "be").
	LSGroup, BEGroup string
}

// New builds an actuator for the given platform geometry.
func New(spec hw.Spec, paths Paths) *Linux {
	return &Linux{Spec: spec, Paths: paths.withDefaults(), LSGroup: "ls", BEGroup: "be"}
}

// plan computes the concrete core lists and way masks of a configuration:
// the LS service receives the low core IDs and the low LLC ways, the BE
// application the next block of each. Parked cores (allocated to neither)
// stay out of both cpusets.
type plan struct {
	lsCores, beCores []int
	lsMask, beMask   uint64
	lsFreq, beFreq   hw.GHz
}

func (l *Linux) plan(cfg hw.Config) (plan, error) {
	if err := cfg.Validate(l.Spec); err != nil {
		return plan{}, fmt.Errorf("actuator: %w", err)
	}
	var p plan
	for c := 0; c < cfg.LS.Cores; c++ {
		p.lsCores = append(p.lsCores, c)
	}
	for c := cfg.LS.Cores; c < cfg.LS.Cores+cfg.BE.Cores; c++ {
		p.beCores = append(p.beCores, c)
	}
	p.lsMask = wayMask(0, cfg.LS.LLCWays)
	p.beMask = wayMask(cfg.LS.LLCWays, cfg.BE.LLCWays)
	p.lsFreq, p.beFreq = cfg.LS.Freq, cfg.BE.Freq
	return p, nil
}

// wayMask returns a contiguous CAT capacity bitmask of n ways starting at
// the given way index.
func wayMask(start, n int) uint64 {
	if n <= 0 {
		return 0
	}
	return ((uint64(1) << n) - 1) << start
}

// coreList renders a cpuset.cpus value ("0-3" style ranges).
func coreList(cores []int) string {
	if len(cores) == 0 {
		return ""
	}
	var parts []string
	start, prev := cores[0], cores[0]
	flush := func() {
		if start == prev {
			parts = append(parts, strconv.Itoa(start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, c := range cores[1:] {
		if c == prev+1 {
			prev = c
			continue
		}
		flush()
		start, prev = c, c
	}
	flush()
	return strings.Join(parts, ",")
}

// Apply writes the configuration to the kernel interfaces: cpuset.cpus
// for both groups, resctrl schemata masks, and per-core scaling_max_freq.
func (l *Linux) Apply(cfg hw.Config) error {
	p, err := l.plan(cfg)
	if err != nil {
		return err
	}
	// Core partitioning (Linux cpuset cgroups).
	if err := l.writeCpuset(l.LSGroup, p.lsCores); err != nil {
		return err
	}
	if err := l.writeCpuset(l.BEGroup, p.beCores); err != nil {
		return err
	}
	// LLC partitioning (Intel CAT via resctrl).
	if err := l.writeSchemata(l.LSGroup, p.lsMask); err != nil {
		return err
	}
	if err := l.writeSchemata(l.BEGroup, p.beMask); err != nil {
		return err
	}
	// Per-core DVFS (the ACPI cpufreq driver).
	for _, c := range p.lsCores {
		if err := l.writeMaxFreq(c, p.lsFreq); err != nil {
			return err
		}
	}
	for _, c := range p.beCores {
		if err := l.writeMaxFreq(c, p.beFreq); err != nil {
			return err
		}
	}
	return nil
}

func (l *Linux) writeCpuset(group string, cores []int) error {
	path := filepath.Join(l.Paths.CpusetRoot, group, "cpuset.cpus")
	if err := writeFile(path, coreList(cores)); err != nil {
		return fmt.Errorf("actuator: cpuset %s: %w", group, err)
	}
	return nil
}

func (l *Linux) writeSchemata(group string, mask uint64) error {
	path := filepath.Join(l.Paths.ResctrlRoot, group, "schemata")
	val := fmt.Sprintf("L3:0=%x", mask)
	if err := writeFile(path, val); err != nil {
		return fmt.Errorf("actuator: resctrl %s: %w", group, err)
	}
	return nil
}

func (l *Linux) writeMaxFreq(core int, f hw.GHz) error {
	khz := strconv.Itoa(int(float64(f) * 1e6))
	path := filepath.Join(l.Paths.CPUFreqRoot,
		fmt.Sprintf("cpu%d", core), "cpufreq", "scaling_max_freq")
	if err := writeFile(path, khz); err != nil {
		return fmt.Errorf("actuator: cpufreq cpu%d: %w", core, err)
	}
	return nil
}

// ReadEnergyUJ reads the RAPL package energy counter in microjoules.
// Sampling it at the control interval and dividing the delta by the
// elapsed time yields average power, exactly like the simulator's meter.
func (l *Linux) ReadEnergyUJ() (uint64, error) {
	b, err := os.ReadFile(l.Paths.RAPLEnergyFile)
	if err != nil {
		return 0, fmt.Errorf("actuator: rapl: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("actuator: rapl parse: %w", err)
	}
	return v, nil
}

// PowerSampler converts successive RAPL energy readings into watts,
// handling the 32-bit wraparound of the kernel counter.
type PowerSampler struct {
	l        *Linux
	lastUJ   uint64
	haveLast bool
	// WrapUJ is the counter modulus (default 2^32 µJ, the common RAPL
	// max_energy_range_uj).
	WrapUJ uint64
}

// NewPowerSampler wraps the actuator's energy counter.
func NewPowerSampler(l *Linux) *PowerSampler {
	return &PowerSampler{l: l, WrapUJ: 1 << 32}
}

// Sample returns the average power in watts since the previous call,
// given the elapsed seconds. The first call primes the counter and
// returns 0.
func (s *PowerSampler) Sample(elapsedS float64) (float64, error) {
	cur, err := s.l.ReadEnergyUJ()
	if err != nil {
		return 0, err
	}
	if !s.haveLast {
		s.lastUJ, s.haveLast = cur, true
		return 0, nil
	}
	delta := cur - s.lastUJ
	if cur < s.lastUJ { // counter wrapped
		delta = cur + (s.WrapUJ - s.lastUJ)
	}
	s.lastUJ = cur
	if elapsedS <= 0 {
		return 0, fmt.Errorf("actuator: non-positive elapsed time")
	}
	return float64(delta) / 1e6 / elapsedS, nil
}

func writeFile(path, val string) error {
	if _, err := os.Stat(path); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(val+"\n"), 0o644)
}
