package actuator

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sturgeon/internal/hw"
)

// fakeSysfs builds a fake kernel control tree for the default spec.
func fakeSysfs(t *testing.T) (Paths, *Linux) {
	t.Helper()
	root := t.TempDir()
	p := Paths{
		CpusetRoot:     filepath.Join(root, "cpuset"),
		ResctrlRoot:    filepath.Join(root, "resctrl"),
		CPUFreqRoot:    filepath.Join(root, "cpu"),
		RAPLEnergyFile: filepath.Join(root, "rapl", "energy_uj"),
	}
	for _, g := range []string{"ls", "be"} {
		mustMkfile(t, filepath.Join(p.CpusetRoot, g, "cpuset.cpus"), "")
		mustMkfile(t, filepath.Join(p.ResctrlRoot, g, "schemata"), "")
	}
	spec := hw.DefaultSpec()
	for c := 0; c < spec.Cores; c++ {
		mustMkfile(t, filepath.Join(p.CPUFreqRoot,
			"cpu"+strconv.Itoa(c), "cpufreq", "scaling_max_freq"), "2200000")
	}
	mustMkfile(t, p.RAPLEnergyFile, "1000000")
	return p, New(spec, p)
}

func mustMkfile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(b))
}

func TestApplyWritesAllInterfaces(t *testing.T) {
	p, act := fakeSysfs(t)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6},
		BE: hw.Alloc{Cores: 16, Freq: 1.8, LLCWays: 14},
	}
	if err := act.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if got := read(t, filepath.Join(p.CpusetRoot, "ls", "cpuset.cpus")); got != "0-3" {
		t.Errorf("LS cpuset = %q, want 0-3", got)
	}
	if got := read(t, filepath.Join(p.CpusetRoot, "be", "cpuset.cpus")); got != "4-19" {
		t.Errorf("BE cpuset = %q, want 4-19", got)
	}
	// 6 low ways = 0x3f; next 14 ways = 0xfffc0.
	if got := read(t, filepath.Join(p.ResctrlRoot, "ls", "schemata")); got != "L3:0=3f" {
		t.Errorf("LS schemata = %q", got)
	}
	if got := read(t, filepath.Join(p.ResctrlRoot, "be", "schemata")); got != "L3:0=fffc0" {
		t.Errorf("BE schemata = %q", got)
	}
	// Spot-check the frequency writes on one core of each group.
	if got := read(t, filepath.Join(p.CPUFreqRoot, "cpu0", "cpufreq", "scaling_max_freq")); got != "1600000" {
		t.Errorf("LS core freq = %q kHz", got)
	}
	if got := read(t, filepath.Join(p.CPUFreqRoot, "cpu19", "cpufreq", "scaling_max_freq")); got != "1800000" {
		t.Errorf("BE core freq = %q kHz", got)
	}
}

func TestApplyParkedCoresStayOut(t *testing.T) {
	p, act := fakeSysfs(t)
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6},
		BE: hw.Alloc{Cores: 10, Freq: 1.2, LLCWays: 14}, // 6 cores parked
	}
	if err := act.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if got := read(t, filepath.Join(p.CpusetRoot, "be", "cpuset.cpus")); got != "4-13" {
		t.Errorf("BE cpuset = %q, want 4-13 (cores 14-19 parked)", got)
	}
}

func TestApplyRejectsInvalidConfig(t *testing.T) {
	_, act := fakeSysfs(t)
	bad := hw.Config{
		LS: hw.Alloc{Cores: 15, Freq: 1.6, LLCWays: 6},
		BE: hw.Alloc{Cores: 15, Freq: 1.8, LLCWays: 14},
	}
	if err := act.Apply(bad); err == nil {
		t.Error("oversubscribed config accepted")
	}
}

func TestApplyMissingFilesError(t *testing.T) {
	spec := hw.DefaultSpec()
	act := New(spec, Paths{
		CpusetRoot:  "/nonexistent/cpuset",
		ResctrlRoot: "/nonexistent/resctrl",
		CPUFreqRoot: "/nonexistent/cpu",
	})
	cfg := hw.Config{
		LS: hw.Alloc{Cores: 4, Freq: 1.6, LLCWays: 6},
		BE: hw.Alloc{Cores: 16, Freq: 1.8, LLCWays: 14},
	}
	if err := act.Apply(cfg); err == nil {
		t.Error("missing control files not reported")
	}
}

func TestCoreList(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 2, 3, 7}, "0,2-3,7"},
		{[]int{5, 6, 8, 9, 10}, "5-6,8-10"},
	}
	for _, c := range cases {
		if got := coreList(c.in); got != c.want {
			t.Errorf("coreList(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWayMask(t *testing.T) {
	if got := wayMask(0, 6); got != 0x3f {
		t.Errorf("wayMask(0,6) = %x", got)
	}
	if got := wayMask(6, 14); got != 0xfffc0 {
		t.Errorf("wayMask(6,14) = %x", got)
	}
	if got := wayMask(3, 0); got != 0 {
		t.Errorf("wayMask(3,0) = %x", got)
	}
}

func TestPowerSampler(t *testing.T) {
	p, act := fakeSysfs(t)
	s := NewPowerSampler(act)
	// First call primes.
	if w, err := s.Sample(1); err != nil || w != 0 {
		t.Fatalf("prime sample = %v, %v", w, err)
	}
	// 50 J over 1 s = 50 W.
	mustWrite(t, p.RAPLEnergyFile, "51000000")
	w, err := s.Sample(1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 50 {
		t.Errorf("power = %v, want 50", w)
	}
	// Wraparound: counter resets past 2^32 µJ.
	mustWrite(t, p.RAPLEnergyFile, "1000000")
	w, err = s.Sample(1)
	if err != nil {
		t.Fatal(err)
	}
	wantUJ := float64(1000000) + float64(uint64(1)<<32-51000000)
	if diff := w - wantUJ/1e6; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("wrapped power = %v, want %v", w, wantUJ/1e6)
	}
	// Bad elapsed time.
	if _, err := s.Sample(0); err == nil {
		t.Error("zero elapsed accepted")
	}
}

func TestReadEnergyErrors(t *testing.T) {
	act := New(hw.DefaultSpec(), Paths{RAPLEnergyFile: "/nonexistent/energy_uj"})
	if _, err := act.ReadEnergyUJ(); err == nil {
		t.Error("missing energy file not reported")
	}
	root := t.TempDir()
	bad := filepath.Join(root, "energy_uj")
	if err := os.WriteFile(bad, []byte("not-a-number"), 0o644); err != nil {
		t.Fatal(err)
	}
	act2 := New(hw.DefaultSpec(), Paths{RAPLEnergyFile: bad})
	if _, err := act2.ReadEnergyUJ(); err == nil {
		t.Error("garbage energy file not reported")
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
