package cluster

// HealthOptions tune the dispatcher's failure detector. The detector
// watches per-node telemetry only — a crashed node is one whose measured
// power reads 0 W (no powered-on server draws nothing) — mirroring how a
// real dispatcher infers death from missed heartbeats rather than being
// told.
type HealthOptions struct {
	// MissThreshold is the number of consecutive dead-telemetry
	// intervals before a node is evicted from rotation (default 2, so a
	// crash is detected and its load redistributed within 3 intervals).
	MissThreshold int
	// ReadmitAfter is the number of consecutive alive-telemetry
	// intervals a recovered node must show before re-admission
	// (default 3).
	ReadmitAfter int
	// BackoffMax caps the re-admission backoff multiplier: each repeated
	// eviction doubles the required healthy streak up to
	// ReadmitAfter×BackoffMax (default 4), so a flapping node is probed
	// progressively less eagerly.
	BackoffMax int
}

func (h HealthOptions) withDefaults() HealthOptions {
	if h.MissThreshold <= 0 {
		h.MissThreshold = 2
	}
	if h.ReadmitAfter <= 0 {
		h.ReadmitAfter = 3
	}
	if h.BackoffMax <= 0 {
		h.BackoffMax = 4
	}
	return h
}

// HealthStats summarizes failure-detector activity over a run.
type HealthStats struct {
	// Evictions counts nodes removed from rotation; Readmissions counts
	// returns to rotation.
	Evictions, Readmissions int
	// UnhealthyNodeIntervals is the total node·intervals spent out of
	// rotation.
	UnhealthyNodeIntervals int
}

// nodeHealth is the per-node failure-detector state.
type nodeHealth struct {
	missed   int // consecutive dead-telemetry intervals
	alive    int // consecutive alive-telemetry intervals while evicted
	evicted  bool
	required int // healthy streak required for re-admission (backs off)
}

// observe feeds one interval's liveness signal and returns the node's
// new in-rotation status. stats is updated in place.
func (h *nodeHealth) observe(dead bool, opt HealthOptions, stats *HealthStats) (healthy bool) {
	if dead {
		h.missed++
		h.alive = 0
		if !h.evicted && h.missed >= opt.MissThreshold {
			h.evicted = true
			stats.Evictions++
			// Double the readmission bar on every eviction, capped.
			if h.required == 0 {
				h.required = opt.ReadmitAfter
			} else if h.required < opt.ReadmitAfter*opt.BackoffMax {
				h.required *= 2
			}
		}
		return !h.evicted
	}
	h.missed = 0
	if h.evicted {
		h.alive++
		if h.alive >= h.required {
			h.evicted = false
			h.alive = 0
			stats.Readmissions++
		}
	}
	return !h.evicted
}

// observeN advances the detector by k consecutive intervals of a
// constant liveness signal in closed form — exactly equivalent to k
// sequential observe calls (pinned by TestObserveNMatchesRepeated). A
// constant signal flips the in-rotation status at most once (eviction
// under a dead run, re-admission under an alive run), which is what
// makes the doubling-backoff timers engine-independent: the event
// engine schedules a wake-up at the flip interval (stepsUntilFlip) and
// catches the counters up over the skipped stretch with one observeN.
func (h *nodeHealth) observeN(dead bool, k int, opt HealthOptions, stats *HealthStats) (healthy bool) {
	if k <= 0 {
		return !h.evicted
	}
	if dead {
		h.alive = 0
		if !h.evicted && h.missed+k >= opt.MissThreshold {
			h.evicted = true
			stats.Evictions++
			if h.required == 0 {
				h.required = opt.ReadmitAfter
			} else if h.required < opt.ReadmitAfter*opt.BackoffMax {
				h.required *= 2
			}
		}
		h.missed += k
		return !h.evicted
	}
	h.missed = 0
	if h.evicted {
		if h.alive+k >= h.required {
			// Re-admitted partway through the run; the remaining alive
			// intervals observe an in-rotation node and change nothing.
			h.evicted = false
			h.alive = 0
			stats.Readmissions++
		} else {
			h.alive += k
		}
	}
	return !h.evicted
}

// stepsUntilFlip returns how many further intervals of the same
// liveness signal it takes to flip the node's in-rotation status
// (eviction of a dying node, re-admission of a recovered one), or -1
// when a constant signal can never flip it. The event engine schedules
// a KindHealth wake-up that many steps ahead; if the signal changes
// before then the stale wake-up merely forces one conservative
// re-evaluation.
func (h *nodeHealth) stepsUntilFlip(dead bool, opt HealthOptions) int {
	if dead {
		if h.evicted {
			return -1
		}
		return opt.MissThreshold - h.missed
	}
	if !h.evicted {
		return -1
	}
	req := h.required
	if req == 0 {
		req = opt.ReadmitAfter
	}
	return req - h.alive
}
