package cluster

import (
	"sturgeon/internal/cache"
	"sturgeon/internal/control"
	"sturgeon/internal/des"
	"sturgeon/internal/hw"
	"sturgeon/internal/pool"
	"sturgeon/internal/power"
	"sturgeon/internal/workload"
)

// SteadyShares marks a DispatchPolicy whose Shares is a stateless pure
// function of the nodes' Healthy flags: calling it once or once per
// second returns the same weights, and skipping calls loses no internal
// state. Only such policies allow the event engine to replicate fully
// quiescent seconds without consulting the dispatcher; stateful
// policies (Skewed's phase counter, LeastLoaded's EWMA) force every
// second to be evaluated so their state advances exactly as under
// per-second stepping.
type SteadyShares interface {
	DispatchPolicy
	// SharesSteady is a marker; implementations must satisfy the purity
	// contract above.
	SharesSteady()
}

// SharesSteady marks RoundRobin: its weights depend only on the
// Healthy flags and it keeps no state.
func (RoundRobin) SharesSteady() {}

// nodeClass is the physics-parameter fingerprint behind cross-node
// memoization: two deterministic nodes of the same class given
// bit-equal (config, load, cap, controller key) run bit-identical
// intervals, so one representative step serves the whole class.
type nodeClass struct {
	Spec          hw.Spec
	Power         power.Params
	Bus           cache.MemBus
	LS, BE        workload.Profile
	QoSPercentile float64
}

// memoKey identifies one group of interchangeable node-steps within a
// single simulated second.
type memoKey struct {
	class int
	cfg   hw.Config
	q     float64
	cap   power.Watts
	ctrl  any
}

// nodeRuntime is the event engine's per-node bookkeeping.
type nodeRuntime struct {
	// det and steadyCtrl are fixed for the run: whether the node's
	// physics is replayable (sim.Node.Deterministic) and the controller's
	// Steady opt-in (nil when it keeps hidden state).
	det        bool
	steadyCtrl control.Steady
	// memoable additionally requires an uninstrumented run (per-node
	// gauges must track per-node Decide calls) and a fault-free node.
	memoable bool
	class    int

	// steady marks a proven fixed point: the last real step held its
	// config, finished with no backlog on a deterministic node, and
	// nothing external (fault, cap change) has intervened. A steady node
	// re-dispatched the same load replays lastOut bit-for-bit.
	steady     bool
	lastQ      float64
	lastCap    power.Watts
	lastOut    stepOutcome
	lastDead   bool
	preBacklog float64
}

// runEvent is the discrete-event engine (DESIGN.md §13). It maintains a
// stable-ordered wake-up queue over (step, node, kind); a second with no
// due events and every node steady is replicated from the previous
// interval in O(1), and within active seconds steady nodes replay their
// last outcome while identical nodes share one representative step.
// Every skip is conservative — taken only when the per-second engine's
// behavior is provably bit-identical — so seeded runs match runStep
// byte-for-byte in Summary and journal at any Parallelism.
func (c *Cluster) runEvent(tr workload.Trace, durationS int) Result {
	c.evActive = 0
	n := len(c.Nodes)
	opt := c.Health.withDefaults()
	states := make([]NodeState, n)
	health := make([]nodeHealth, n)
	for i := range states {
		states[i].Healthy = true
	}
	outs := make([]stepOutcome, n)
	rt := make([]nodeRuntime, n)
	shareBuf := make([]float64, n)
	fastShares, hasFast := c.Policy.(sharesInto)

	classes := make(map[nodeClass]int)
	for i, node := range c.Nodes {
		rt[i].det = node.Deterministic()
		if s, ok := c.Ctrls[i].(control.Steady); ok {
			if _, kok := s.SteadyKey(); kok {
				rt[i].steadyCtrl = s
			}
		}
		inj := c.injector(i)
		// Placement runs disable cross-node memoization outright: a
		// migration rewrites a node's BEProfile mid-run, which is part of
		// the class fingerprint computed here once.
		rt[i].memoable = c.obs == nil && !c.testDisableMemo && c.Place == nil && rt[i].det &&
			rt[i].steadyCtrl != nil && (inj == nil || inj.Plan.Empty())
		if rt[i].memoable {
			k := nodeClass{Spec: node.Spec, Power: node.PowerParams, Bus: node.Bus,
				LS: node.LSProfile, BE: node.BEProfile, QoSPercentile: node.QoSPercentile}
			id, ok := classes[k]
			if !ok {
				id = len(classes)
				classes[k] = id
			}
			rt[i].class = id
		}
	}

	// Replication additionally needs the dispatcher to be skippable and
	// the trace's inflections declared; otherwise every second must be
	// evaluated (per-node replay and memoization still apply).
	_, policySteady := c.Policy.(SteadyShares)
	everySecond := !policySteady || c.TraceBreaks == nil

	q := des.NewQueue()
	if !c.testDropTraceWakes {
		for _, b := range c.TraceBreaks {
			if b >= 0 && b < durationS {
				q.Schedule(des.Event{Step: b, Node: des.Global, Kind: des.KindTrace})
			}
		}
	}
	scheduleEpoch := func(after int) {
		if c.Coord == nil || c.testDropEpochWakes {
			return
		}
		epochS := c.Coord.epochS()
		if b := ((after+1)/epochS+1)*epochS - 1; b < durationS {
			q.Schedule(des.Event{Step: b, Node: des.Global, Kind: des.KindEpoch})
		}
	}
	scheduleEpoch(-1)
	// Placement epochs are global wake-ups of their own kind: a planned
	// migration must be able to break quiescence even when every node
	// sits at a fixed point and the trace is flat.
	schedulePlace := func(after int) {
		if c.Place == nil || c.Place.Planner == nil || c.testDropPlaceWakes {
			return
		}
		epochS := c.Place.epochS()
		if b := ((after+1)/epochS+1)*epochS - 1; b < durationS {
			q.Schedule(des.Event{Step: b, Node: des.Global, Kind: des.KindPlacement})
		}
	}
	schedulePlace(-1)
	if !c.testDropFaultWakes {
		for i := 0; i < n; i++ {
			if inj := c.injector(i); inj != nil {
				if na := inj.Plan.NextActive(0); na >= 0 && na < durationS {
					q.Schedule(des.Event{Step: na, Node: i, Kind: des.KindFault})
				}
			}
		}
	}

	var res Result
	res.Intervals = make([]IntervalReport, 0, durationS)
	var wOK, wQ, sumBE, sumPW float64
	var lastRep IntervalReport
	var lastOkQ, lastTotal float64
	unhealthyNow := 0
	lastActive := -1
	var evs []des.Event
	var tasks []int
	groups := make(map[memoKey][]int)
	var groupOrder []memoKey

	for step := 0; step < durationS; {
		evs = q.PopThrough(step, evs[:0])
		if step > 0 && len(evs) == 0 && !everySecond {
			// Quiescent stretch: no wake-ups due, every node at a fixed
			// point, dispatcher stateless, trace flat until its next
			// declared break. Replicate the previous interval through the
			// next event. The accumulators use one addition per second —
			// never k·x — so the floating-point op sequence matches
			// runStep's exactly.
			end := durationS
			if next, ok := q.NextStep(); ok && next < end {
				end = next
			}
			for ; step < end; step++ {
				rep := lastRep
				rep.Time = float64(step + 1)
				wOK += lastOkQ
				wQ += lastTotal
				sumBE += rep.BEThroughputUPS
				sumPW += rep.PowerW
				res.Health.UnhealthyNodeIntervals += unhealthyNow
				res.Intervals = append(res.Intervals, rep)
				// The timeline sees every simulated second even across a
				// replicated stretch: caps and placement counters are frozen
				// while the fleet is quiescent, so the fed values match the
				// per-second engine's bit for bit.
				c.recordInterval(rep, &res)
			}
			continue
		}

		// Active second.
		c.evActive++
		t := float64(step + 1)
		total := tr(t) * c.LS.PeakQPS * float64(n)

		// Catch the failure detector up over the replicated gap: the
		// liveness signal was constant (each node replayed its last
		// interval) and flips were precluded by KindHealth wake-ups, so a
		// closed-form advance is exact.
		if gap := step - lastActive - 1; gap > 0 {
			for i := range health {
				health[i].observeN(rt[i].lastDead, gap, opt, &res.Health)
			}
		}
		lastActive = step

		shares := shareBuf
		if hasFast {
			fastShares.SharesInto(states, shareBuf)
		} else {
			shares = c.Policy.Shares(states)
		}
		var norm float64
		for _, s := range shares {
			norm += s
		}
		share := func(i int) float64 {
			if norm > 0 {
				return total * shares[i] / norm
			}
			return 0
		}

		// Classify: replay steady nodes, group interchangeable ones
		// behind a representative, step the rest. Groups are built in
		// node-index order so representative choice is deterministic.
		tasks = tasks[:0]
		groupOrder = groupOrder[:0]
		for i := 0; i < n; i++ {
			qi := share(i)
			inj := c.injector(i)
			if rt[i].steady && qi == rt[i].lastQ && c.caps[i] == rt[i].lastCap &&
				(inj == nil || inj.Flags(step) == 0) {
				outs[i] = rt[i].lastOut
				outs[i].st.Time = t
				continue
			}
			rt[i].lastQ = qi
			rt[i].lastCap = c.caps[i]
			if rt[i].memoable && c.Nodes[i].Backlog() == 0 {
				key, _ := rt[i].steadyCtrl.SteadyKey()
				mk := memoKey{class: rt[i].class, cfg: c.Nodes[i].Config(), q: qi,
					cap: c.caps[i], ctrl: key}
				members, seen := groups[mk]
				groups[mk] = append(members, i)
				if !seen {
					groupOrder = append(groupOrder, mk)
					tasks = append(tasks, i)
				}
				continue
			}
			tasks = append(tasks, i)
		}

		pool.ForEach(c.Parallelism, len(tasks), func(k int) {
			i := tasks[k]
			rt[i].preBacklog = c.Nodes[i].Backlog()
			outs[i] = c.stepNode(i, step, t, share(i))
		})

		// Fan each representative's outcome out to its group. Identical
		// inputs through identical pure code paths give bit-identical
		// outputs, so copying is exact; the members' configs advance via
		// the same Apply the representative's actuation took. A step that
		// left backlog is not a fixed point — the members' own queues must
		// carry it — so that (rare, overloaded) group falls back to
		// stepping every member individually.
		for _, mk := range groupOrder {
			members := groups[mk]
			delete(groups, mk)
			repIdx := members[0]
			rest := members[1:]
			if c.Nodes[repIdx].Backlog() != 0 {
				pool.ForEach(c.Parallelism, len(rest), func(k int) {
					i := rest[k]
					rt[i].preBacklog = c.Nodes[i].Backlog()
					outs[i] = c.stepNode(i, step, t, share(i))
				})
				continue
			}
			o := outs[repIdx]
			cfgAfter := c.Nodes[repIdx].Config()
			for _, i := range rest {
				rt[i].preBacklog = 0
				outs[i] = o
				if !o.held {
					_ = c.Nodes[i].Apply(cfgAfter)
				}
			}
		}

		flipsBefore := res.Health.Evictions + res.Health.Readmissions
		rep, okQ := c.mergeSecond(step, t, total, outs, states, health, opt, &res)
		wOK += okQ
		wQ += total
		sumBE += rep.BEThroughputUPS
		sumPW += rep.PowerW
		res.Intervals = append(res.Intervals, rep)
		lastRep, lastOkQ, lastTotal = rep, okQ, total

		// Probe steadiness and schedule wake-ups. A node is at a fixed
		// point only when everything a re-step could observe is provably
		// unchanged: it is up, its controller held a deterministic node's
		// config, no fault flag fired, no backlog existed on either side
		// of the step, and its cap survived the coordination epoch.
		unhealthyNow = 0
		for i := 0; i < n; i++ {
			o := &outs[i]
			dead := o.crashed || o.st.Power <= 0
			// A cap moved by the lease ratchet is not a settle trigger: the
			// descent is driven by its own wake-up kind below, so a
			// degraded node still counts as settled and the lease category
			// stays load-bearing (droppable by testDropLeaseWakes alone).
			// The steady-replay gate above still compares caps, so a
			// forgiven node re-steps — never replays — under its new cap.
			ratcheted := c.ratcheted != nil && c.ratcheted[i]
			steady := !o.crashed && o.held && rt[i].det && rt[i].steadyCtrl != nil &&
				o.st.Faults == 0 && rt[i].preBacklog == 0 && c.Nodes[i].Backlog() == 0 &&
				(c.caps[i] == rt[i].lastCap || ratcheted) && !c.placeTouched(i, step)
			rt[i].steady = steady
			rt[i].lastOut = *o
			rt[i].lastDead = dead
			if !states[i].Healthy {
				unhealthyNow++
			}
			if !steady && step+1 < durationS {
				q.Schedule(des.Event{Step: step + 1, Node: i, Kind: des.KindSettle})
			}
			// Lease wake-ups keep a degraded node's descent on schedule
			// through quiescent stretches: one wake per second while the
			// cap just moved (the second after it must observe the new cap)
			// or while the tracker still has watts to shed.
			if !c.testDropLeaseWakes && step+1 < durationS &&
				(ratcheted || (c.leases != nil && c.leases[i].Ratcheting(t+1))) {
				q.Schedule(des.Event{Step: step + 1, Node: i, Kind: des.KindLease})
			}
			if inj := c.injector(i); inj != nil && !c.testDropFaultWakes {
				if na := inj.Plan.NextActive(step + 1); na >= 0 && na < durationS {
					q.Schedule(des.Event{Step: na, Node: i, Kind: des.KindFault})
				}
			}
			if !c.testDropHealthWakes {
				if f := health[i].stepsUntilFlip(dead, opt); f > 0 && step+f < durationS {
					q.Schedule(des.Event{Step: step + f, Node: i, Kind: des.KindHealth})
				}
			}
		}
		// A rotation change (eviction or readmission) re-weights Shares
		// from the next second on even though every node's physics is at a
		// fixed point, so it must break quiescence itself. Evictions are
		// covered anyway (a dead node is never steady), but a readmission
		// flips a *steady* node's Healthy bit — the one state change the
		// per-node probes cannot see.
		if res.Health.Evictions+res.Health.Readmissions != flipsBefore && step+1 < durationS {
			q.Schedule(des.Event{Step: step + 1, Node: des.Global, Kind: des.KindSettle})
		}
		scheduleEpoch(step)
		schedulePlace(step)
		step++
	}
	c.finish(&res, wOK, wQ, sumBE, sumPW, durationS)
	return res
}
