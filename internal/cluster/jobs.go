package cluster

import (
	"fmt"
	"sort"
)

// Job is one finite best-effort batch job: an amount of work in BE units
// (the same units the workload throughput model produces) submitted at a
// given time.
type Job struct {
	ID       int
	SubmitS  float64
	WorkUPS  float64 // total units of work
	StartS   float64 // first interval with progress (-1 until scheduled)
	FinishS  float64 // completion time (-1 until done)
	Progress float64
}

// Done reports completion.
func (j *Job) Done() bool { return j.FinishS >= 0 }

// JobQueue turns the fleet's fluctuating best-effort capacity into batch
// job completions: each interval the nodes' BE throughput is applied to
// the head of a FIFO queue of finite jobs, producing per-job waiting and
// turnaround times — the metric a batch scheduler on top of Sturgeon
// fleets would report.
type JobQueue struct {
	jobs    []*Job
	pending []*Job
	running *Job
	nextID  int
}

// Submit enqueues a job of the given size at time t.
func (q *JobQueue) Submit(t, workUnits float64) *Job {
	q.nextID++
	j := &Job{ID: q.nextID, SubmitS: t, WorkUPS: workUnits, StartS: -1, FinishS: -1}
	q.jobs = append(q.jobs, j)
	q.pending = append(q.pending, j)
	return j
}

// Advance applies one interval's best-effort capacity (units) at time t.
// Leftover capacity flows into subsequent jobs within the same interval.
func (q *JobQueue) Advance(t, units float64) {
	for units > 0 {
		if q.running == nil {
			if len(q.pending) == 0 {
				return
			}
			q.running = q.pending[0]
			q.pending = q.pending[1:]
			q.running.StartS = t
		}
		need := q.running.WorkUPS - q.running.Progress
		if units < need {
			q.running.Progress += units
			return
		}
		units -= need
		q.running.Progress = q.running.WorkUPS
		q.running.FinishS = t
		q.running = nil
	}
}

// Jobs returns all submitted jobs in submission order.
func (q *JobQueue) Jobs() []*Job { return q.jobs }

// Stats summarizes the completed jobs.
type JobStats struct {
	Submitted, Completed int
	// MeanWaitS is submission→start; MeanTurnaroundS submission→finish;
	// P95TurnaroundS the turnaround tail.
	MeanWaitS       float64
	MeanTurnaroundS float64
	P95TurnaroundS  float64
}

// Stats computes the summary.
func (q *JobQueue) Stats() JobStats {
	st := JobStats{Submitted: len(q.jobs)}
	var turns []float64
	for _, j := range q.jobs {
		if !j.Done() {
			continue
		}
		st.Completed++
		st.MeanWaitS += j.StartS - j.SubmitS
		turn := j.FinishS - j.SubmitS
		st.MeanTurnaroundS += turn
		turns = append(turns, turn)
	}
	if st.Completed > 0 {
		st.MeanWaitS /= float64(st.Completed)
		st.MeanTurnaroundS /= float64(st.Completed)
		sort.Float64s(turns)
		st.P95TurnaroundS = turns[int(0.95*float64(len(turns)-1))]
	}
	return st
}

// String renders the summary.
func (s JobStats) String() string {
	return fmt.Sprintf("jobs %d/%d done, wait %.1fs, turnaround mean %.1fs p95 %.1fs",
		s.Completed, s.Submitted, s.MeanWaitS, s.MeanTurnaroundS, s.P95TurnaroundS)
}
