package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
)

// traceTimelineDump runs the coordinated golden scenario on the given
// engine and returns the run summary plus the canonical JSON encodings
// of the trace and timeline — the byte strings the determinism
// criteria are stated over.
func traceTimelineDump(t *testing.T, engine Engine, parallelism int) (string, []byte, []byte) {
	t.Helper()
	sink := obs.NewSeeded(20260806, 0)
	c, tr, duration := coordGoldenScenarioCluster(t, parallelism, sink)
	c.Engine = engine
	res := c.Run(tr, duration)
	traceDoc := sink.Trace.Doc()
	if err := traceDoc.Validate(); err != nil {
		t.Fatalf("trace doc invalid: %v", err)
	}
	traceData, err := jsonio.Marshal(traceDoc)
	if err != nil {
		t.Fatal(err)
	}
	tlDoc := sink.Timeline.Doc()
	if err := tlDoc.Validate(); err != nil {
		t.Fatalf("timeline doc invalid: %v", err)
	}
	tlData, err := jsonio.Marshal(tlDoc)
	if err != nil {
		t.Fatal(err)
	}
	return res.Summary(), traceData, tlData
}

// TestObsTraceTimelineByteIdenticalAcrossEngines is the tracing
// determinism criterion: span and timeline dumps must be byte-identical
// across both engines and stepping parallelism 1/2/4/8. Spans ride the
// same staging-ring/serial-drain discipline as the journal, the
// timeline is fed once per simulated second from the serial merge (and
// the event engine's replication loop), and span ids are derived — not
// random — so every byte is a pure function of the seeded decision
// sequence.
func TestObsTraceTimelineByteIdenticalAcrossEngines(t *testing.T) {
	refSum, refTrace, refTl := traceTimelineDump(t, EngineStep, 1)
	if len(refTrace) == 0 || len(refTl) == 0 {
		t.Fatal("empty trace/timeline dump")
	}
	for _, engine := range []Engine{EngineStep, EngineEvent} {
		for _, par := range []int{1, 2, 4, 8} {
			if engine == EngineStep && par == 1 {
				continue
			}
			sum, trace, tl := traceTimelineDump(t, engine, par)
			if sum != refSum {
				t.Fatalf("summary diverges at engine %v parallelism %d with tracing enabled", engine, par)
			}
			if !bytes.Equal(trace, refTrace) {
				t.Fatalf("trace dump diverges at engine %v parallelism %d (len %d vs %d)",
					engine, par, len(trace), len(refTrace))
			}
			if !bytes.Equal(tl, refTl) {
				t.Fatalf("timeline dump diverges at engine %v parallelism %d (len %d vs %d)",
					engine, par, len(tl), len(refTl))
			}
		}
	}
}

// TestObsTraceThreadsCapChain pins the causal-threading contract on the
// coordinated scenario: every cap_grant span is a child of a
// coord_epoch root in the same trace, and at least one governor_adjust
// chains under a cap_grant — the coordinator grant → governor cap →
// actuation chain the trace layer exists to expose.
func TestObsTraceThreadsCapChain(t *testing.T) {
	sink := obs.NewSeeded(20260806, 0)
	c, tr, duration := coordGoldenScenarioCluster(t, 1, sink)
	_ = c.Run(tr, duration)
	spans := sink.Trace.Since(0)
	if len(spans) == 0 {
		t.Fatal("coordinated run traced no spans")
	}
	byID := make(map[string]obs.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	var grants, chainedAdjusts, searches int
	for _, sp := range spans {
		switch sp.Kind {
		case obs.SpanCapGrant:
			grants++
			parent, ok := byID[sp.Parent]
			if !ok {
				t.Fatalf("cap_grant span %s has dangling parent %s", sp.ID, sp.Parent)
			}
			if parent.Kind != obs.SpanCoordEpoch {
				t.Fatalf("cap_grant span %s parented by %q, want coord_epoch", sp.ID, parent.Kind)
			}
			if parent.Trace != sp.Trace {
				t.Fatalf("cap_grant span %s in trace %s, parent in %s", sp.ID, sp.Trace, parent.Trace)
			}
		case obs.SpanGovernorAdjust:
			if sp.Parent != "" {
				if parent, ok := byID[sp.Parent]; ok && parent.Kind == obs.SpanCapGrant {
					chainedAdjusts++
					if sp.Start < parent.Start {
						t.Fatalf("governor_adjust at t=%v precedes its grant at t=%v", sp.Start, parent.Start)
					}
				}
			}
		case obs.SpanSearch:
			searches++
		}
	}
	if grants == 0 {
		t.Fatal("coordinated run traced no cap_grant spans")
	}
	if chainedAdjusts == 0 {
		t.Fatal("no governor_adjust span chained under a cap_grant — causal threading broken")
	}
	if sink.Metrics.Counter("fleet_cap_grants_total").Value() != int64(grants) {
		t.Errorf("cap_grant spans %d != fleet_cap_grants_total %d",
			grants, sink.Metrics.Counter("fleet_cap_grants_total").Value())
	}
	_ = searches
}

// TestObsTraceMigrationChain pins placement threading on a shortened
// flash-crowd fleet: every migration span is a child of its epoch's
// placement_solve root, and the timeline's migration series ends on the
// run's cumulative move count.
func TestObsTraceMigrationChain(t *testing.T) {
	o := DefaultPlacementFleet(20260808)
	o.Placed = true
	o.DurationS = 240
	c, err := BuildPlacementFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = 1
	sink := obs.NewSeeded(o.Seed, 0)
	c.SetObs(sink)
	res := c.Run(o.Trace(), o.DurationS)
	if res.Place.Moves == 0 {
		t.Skip("shortened placement run applied no moves; chain untestable")
	}
	spans := sink.Trace.Since(0)
	byID := make(map[string]obs.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	migrations := 0
	for _, sp := range spans {
		if sp.Kind != obs.SpanMigration {
			continue
		}
		migrations++
		parent, ok := byID[sp.Parent]
		if !ok || parent.Kind != obs.SpanPlacementSolve {
			t.Fatalf("migration span %s not parented by a placement_solve (parent %q)", sp.ID, sp.Parent)
		}
	}
	if migrations != res.Place.Moves {
		t.Errorf("migration spans %d, run applied %d moves", migrations, res.Place.Moves)
	}
	doc := sink.Timeline.Doc()
	if err := doc.Validate(); err != nil {
		t.Fatalf("timeline doc invalid: %v", err)
	}
	for _, s := range doc.Series {
		if s.Name != "fleet_migrations" {
			continue
		}
		if n := len(s.Raw); n == 0 || s.Raw[n-1].V != float64(res.Place.Moves) {
			t.Errorf("fleet_migrations series ends on %v, want %d", s.Raw[len(s.Raw)-1].V, res.Place.Moves)
		}
		return
	}
	t.Error("timeline missing fleet_migrations series")
}

// TestObsSpanIDsDeterministic pins the id-derivation contract: same
// seed, same decision sequence — identical ids; a different run seed
// relabels every id without touching the span structure.
func TestObsSpanIDsDeterministic(t *testing.T) {
	dump := func(seed int64) []obs.Span {
		tr := obs.NewTracer(seed, 0)
		root := tr.Append(obs.Span{Kind: obs.SpanCoordEpoch, Start: 5, End: 5, Epoch: 1}, obs.SpanRef{})
		tr.Append(obs.Span{Kind: obs.SpanCapGrant, Node: "node-001", Start: 5, End: 5, Value: 90}, root)
		tr.Append(obs.Span{Kind: obs.SpanCapGrant, Node: "node-001", Start: 5, End: 5, Value: 96}, root)
		return tr.Since(0)
	}
	a, b, c := dump(7), dump(7), dump(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed span %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].ID == c[i].ID {
			t.Errorf("span %d id unchanged across seeds", i)
		}
	}
	if a[1].ID == a[2].ID {
		t.Error("repeated (kind,node,start) site not disambiguated by ordinal")
	}
	if a[1].Parent != a[0].ID || a[1].Trace != a[0].Trace {
		t.Error("child span not linked into parent's trace")
	}
	if fmt.Sprintf("%d", len(a)) != "3" {
		t.Fatalf("expected 3 spans, got %d", len(a))
	}
}
