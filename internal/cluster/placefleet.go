package cluster

import (
	"fmt"
	"math/rand"

	"sturgeon/internal/control"
	"sturgeon/internal/hw"
	"sturgeon/internal/placement"
	"sturgeon/internal/power"
	"sturgeon/internal/queueing"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// PlacementFleetOptions pins the placement-pair scenario: the workload
// where preference-aware pairing beats random pairing at equal QoS.
// The fleet's static caps are heterogeneous — rich, mid and starved
// nodes in a fixed rotation — and the BE mix spans the preference
// spectrum: compute-bound applications whose throughput is linear in
// frequency (exactly what a starved node's governor sheds first) next
// to memory-bound ones that barely notice a lower clock. Random
// pairing strands frequency-hungry jobs on starved nodes; the
// placement solver puts them where the watts are, and the migration
// planner keeps it that way when flash crowds shift the power picture
// mid-run. bench, experiments and the golden battery all build the
// scenario through here.
type PlacementFleetOptions struct {
	// Nodes is the fleet size; caps rotate Rich → Starved → Mid →
	// Starved across it (see CapW).
	Nodes                          int
	RichCapW, MidCapW, StarvedCapW float64
	// EpochS is the migration-planning period in intervals; WarmupS the
	// per-move warm-up penalty (the migrated BE earns nothing that
	// long on its new node).
	EpochS  int
	WarmupS int
	// DurationS is the horizon; Burst the flash-crowd load (compiled
	// once, shared between Trace and TraceBreaks).
	DurationS int
	Burst     workload.BurstSpec
	// SkewAmp and SkewPeriodS shape the rotating dispatch skew: the
	// fleet's hot spot moves around the ring, so which nodes are
	// power-starved changes over the run — the pressure that makes the
	// migration planner earn its keep.
	SkewAmp     float64
	SkewPeriodS float64
	// Seed drives node physics, the random-pairing baseline and the
	// solver's tie-breaks.
	Seed int64
	// Placed runs the placement engine (solver seed + migration
	// planner); false runs the random-pairing baseline on the same
	// fleet with the same jobs and no planner.
	Placed bool
	// Models optionally overrides the per-job pair model (trained
	// predictors via experiments); nil uses the analytic Physics model.
	Models func(ls, be workload.Profile) placement.PairModel
	// ForceAssign, when non-nil in the Placed arm, overrides the
	// solver's initial job→node assignment. Tests use it to hand the
	// migration planner a deliberately bad placement and watch it
	// recover.
	ForceAssign []int
}

// DefaultPlacementFleet is the pinned comparison point: 12 nodes with
// caps rotating 112/86/104/88 W, eight BE jobs (four frequency-hungry,
// four memory-bound) and a 600 s flash-crowd day — base load 30–45 %
// of peak with three heavy-tailed surges.
func DefaultPlacementFleet(seed int64) PlacementFleetOptions {
	return PlacementFleetOptions{
		Nodes:       12,
		RichCapW:    112,
		MidCapW:     104,
		StarvedCapW: 87,
		EpochS:      30,
		WarmupS:     45,
		DurationS:   600,
		Burst: workload.BurstSpec{
			BaseLo: 0.30, BaseHi: 0.45,
			PeriodS:    600,
			BaseTreadS: 60,
			Bursts:     3,
			AmpMin:     0.25, AmpMax: 0.85,
			Alpha: 1.4,
			RampS: 10, HoldS: 40, DecayS: 40,
			Seed: seed + 11,
		},
		SkewAmp:     0.35,
		SkewPeriodS: 600,
		Seed:        seed,
	}
}

// CapW returns node i's static power cap: a fixed rotation mixing rich
// and starved nodes so pairing genuinely matters.
func (o PlacementFleetOptions) CapW(i int) float64 {
	switch i % 4 {
	case 0:
		return o.RichCapW
	case 2:
		return o.MidCapW
	default:
		return o.StarvedCapW
	}
}

// Jobs returns the scenario's BE mix: compute-bound, frequency-scaling
// applications (blackscholes, swaptions) alongside memory-bound ones,
// eight jobs for a twelve-node fleet so migrations have room to land.
func (o PlacementFleetOptions) Jobs() []PlacedJob {
	bes := []workload.Profile{
		workload.Blackscholes(), workload.Swaptions(),
		workload.Blackscholes(), workload.Swaptions(),
		workload.Facesim(), workload.Fluidanimate(),
		workload.Ferret(), workload.Raytrace(),
	}
	jobs := make([]PlacedJob, len(bes))
	for j, be := range bes {
		jobs[j] = PlacedJob{ID: fmt.Sprintf("%s-%d", be.Name, j), BE: be}
	}
	return jobs
}

// Flash compiles the scenario's flash-crowd trace.
func (o PlacementFleetOptions) Flash() workload.FlashCrowd {
	return o.Burst.Build(o.DurationS)
}

// Trace returns the compiled load trace.
func (o PlacementFleetOptions) Trace() workload.Trace {
	return o.Flash().Trace()
}

// placementSplit is the boot configuration of every node: an LS-heavy
// split whose BE partition stays reserved even on idle nodes, so a
// migrated job can land without touching the LS side. It must match
// the scorer template in placement.NewScorer.
var placementSplit = hw.Config{
	LS: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
	BE: hw.Alloc{Cores: 8, Freq: 1.2, LLCWays: 8},
}

// BuildPlacementFleet materializes the scenario: a memcached fleet of
// quiet governor-managed nodes with heterogeneous static caps, the BE
// jobs assigned either by the placement solver (Placed) or by a seeded
// shuffle, and — in the Placed arm — the migration planner wired in.
// Run it with c.Run(o.Trace(), o.DurationS); the cluster's TraceBreaks
// are pre-set from the compiled flash-crowd trace.
func BuildPlacementFleet(o PlacementFleetOptions) (*Cluster, error) {
	jobs := o.Jobs()
	if o.Nodes < len(jobs) {
		return nil, fmt.Errorf("cluster: placement fleet needs at least %d nodes, got %d", len(jobs), o.Nodes)
	}
	if o.DurationS <= 0 || o.EpochS <= 0 {
		return nil, fmt.Errorf("cluster: placement fleet needs positive duration and epoch")
	}
	ls := workload.Memcached()
	meanCap := 0.0
	for i := 0; i < o.Nodes; i++ {
		meanCap += o.CapW(i)
	}
	meanCap /= float64(o.Nodes)
	var policy DispatchPolicy = RoundRobin{}
	if o.SkewAmp > 0 {
		policy = &Skewed{Amp: o.SkewAmp, PeriodS: o.SkewPeriodS}
	}
	c, err := New(o.Nodes, ls, jobs[0].BE, power.Watts(meanCap),
		policy, o.Seed, func(i int) control.Controller {
			return control.NewGovernor(hw.DefaultSpec(), power.Watts(o.CapW(i)))
		})
	if err != nil {
		return nil, err
	}
	for i := range c.caps {
		c.caps[i] = power.Watts(o.CapW(i))
	}

	// Pair models and the score matrix. QuietNode physics make the run
	// deterministic; the Physics model predicts the same equations in
	// closed form, so solver and simulator agree on preferences.
	scorer := placement.NewScorer(hw.DefaultSpec())
	shared := queueing.NewCache()
	pjobs := make([]placement.Job, len(jobs))
	for j := range jobs {
		var m placement.PairModel
		if o.Models != nil {
			m = o.Models(ls, jobs[j].BE)
		} else {
			ph := placement.NewPhysics(ls, jobs[j].BE)
			ph.Latency = shared
			m = ph
		}
		pjobs[j] = placement.Job{ID: jobs[j].ID, Model: m}
	}

	var nodeOf []int
	switch {
	case o.Placed && o.ForceAssign != nil:
		nodeOf = o.ForceAssign
	case o.Placed:
		// Score at the solve-time load: the base level the trace opens
		// on, spread evenly by the round-robin dispatcher.
		qps0 := o.Trace()(1) * ls.PeakQPS
		scores := make([][]float64, len(jobs))
		for j := range jobs {
			scores[j] = make([]float64, o.Nodes)
			for i := 0; i < o.Nodes; i++ {
				v := scorer.Best(pjobs[j].Model, qps0, power.Watts(o.CapW(i)))
				if !v.Feasible {
					scores[j][i] = placement.Infeasible
					continue
				}
				scores[j][i] = v.UPS
			}
		}
		nodeOf = placement.Solve(scores, o.Seed, 4).NodeOf
	default:
		perm := rand.New(rand.NewSource(o.Seed + 7)).Perm(o.Nodes)
		nodeOf = make([]int, len(jobs))
		for j := range nodeOf {
			nodeOf[j] = perm[j]
		}
	}

	// Boot configuration: every node reserves the BE partition; hosted
	// nodes take their job's profile at the frequency floor, idle nodes
	// run the partition empty.
	hostOf := make([]int, o.Nodes)
	for i := range hostOf {
		hostOf[i] = -1
	}
	for j, i := range nodeOf {
		if i >= 0 {
			hostOf[i] = j
		}
	}
	for i, node := range c.Nodes {
		quiet := QuietNodeLike(node)
		cfg := placementSplit
		if j := hostOf[i]; j >= 0 {
			quiet.BEProfile = jobs[j].BE
		} else {
			cfg.BE = hw.Alloc{}
		}
		if err := quiet.Apply(cfg); err != nil {
			return nil, err
		}
	}

	if o.Placed {
		pl := &Placement{
			Planner: placement.NewPlanner(pjobs, scorer, placement.PlannerOptions{
				WarmupS:   o.WarmupS,
				TroughQPS: 0.32 * ls.PeakQPS,
			}),
			EpochS:  o.EpochS,
			WarmupS: o.WarmupS,
			BEAlloc: placementSplit.BE,
			Jobs:    jobs,
		}
		if err := pl.SetAssignment(nodeOf, o.Nodes); err != nil {
			return nil, err
		}
		c.Place = pl
	}
	c.TraceBreaks = o.Flash().BreakSteps(o.DurationS)
	return c, nil
}

// QuietNodeLike strips a node's noise sources in place (meter noise,
// latency noise, interference), making it deterministic — the fleet
// builders use it instead of reconstructing nodes so the shared latency
// cache and seeds wired by New survive.
func QuietNodeLike(n *sim.Node) *sim.Node {
	n.Meter = power.NewMeter(0, nil)
	n.Interf = sim.None()
	n.P95NoiseSD = 0
	return n
}
