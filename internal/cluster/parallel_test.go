package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// TestParallelSteppingMatchesSerialGolden is the determinism half of the
// worker-pool contract: the golden chaos scenario stepped serially and at
// several worker counts (including ≥ 4, beyond this fleet's node count)
// must produce byte-identical summaries, all equal to the checked-in
// serial fixture. It runs under -race in CI, so it also proves the
// fan-out shares no mutable state between node tasks.
func TestParallelSteppingMatchesSerialGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "fleet_summary.golden"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		got := goldenScenarioAt(t, par).Summary()
		if got != string(want) {
			t.Errorf("parallelism=%d diverged from the serial golden fixture.\n--- got ---\n%s--- want ---\n%s",
				par, got, want)
		}
	}
}

// TestParallelSteppingLargeFleet cross-checks a 16-node fleet with the
// adaptive least-loaded dispatcher and per-node chaos plans — the
// dispatcher couples every node's share to every other node's previous
// interval, which is exactly the state the pool must not let tasks read
// mid-update. Serial and parallelism=8 runs must agree byte-for-byte.
func TestParallelSteppingLargeFleet(t *testing.T) {
	const duration = 60
	run := func(parallelism int) string {
		ls, be := workload.Memcached(), workload.Raytrace()
		probe := sim.QuietNode(ls, be, 1)
		budget := sim.LSPeakPower(probe.Spec, probe.PowerParams, probe.Bus, ls)
		split := hw.Config{
			LS: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
			BE: hw.Alloc{Cores: 8, Freq: 1.6, LLCWays: 8},
		}
		c, err := New(16, ls, be, budget, &LeastLoaded{}, 7, func(int) control.Controller {
			return control.Static{Cfg: split}
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Parallelism = parallelism
		c.InjectFaults(faults.DefaultSpec(), duration)
		return c.Run(workload.Triangle(0.2, 0.7, duration), duration).Summary()
	}
	serial := run(1)
	if pooled := run(8); pooled != serial {
		t.Fatalf("16-node fleet diverged between parallelism 1 and 8.\n--- serial ---\n%s--- pooled ---\n%s",
			serial, pooled)
	}
}
