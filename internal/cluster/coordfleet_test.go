package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/coordinator"
	"sturgeon/internal/hw"
	"sturgeon/internal/obs"
	"sturgeon/internal/power"
	"sturgeon/internal/workload"
)

// fakeTransport hands out scripted grants (or a scripted failure) and
// records every report it sees, isolating the cluster-side grant loop
// from real arbitration.
type fakeTransport struct {
	grants  map[string]float64 // node ID -> cap to grant; missing = echo report cap
	err     error
	reports []coordinator.NodeReport
}

func (f *fakeTransport) Report(_ context.Context, r coordinator.NodeReport) (coordinator.Grant, error) {
	f.reports = append(f.reports, r)
	if f.err != nil {
		return coordinator.Grant{}, f.err
	}
	cap := r.CapW
	if w, ok := f.grants[r.NodeID]; ok {
		cap = w
	}
	return coordinator.Grant{Schema: coordinator.Schema, NodeID: r.NodeID, Epoch: r.Epoch, CapW: cap}, nil
}

func (f *fakeTransport) Status(context.Context) (*coordinator.FleetStatus, error) {
	return nil, fmt.Errorf("fake transport has no status")
}

// capRecorder is a pass-through controller that records SetBudget calls.
type capRecorder struct {
	budgets []power.Watts
}

func (c *capRecorder) Decide(ob control.Observation) hw.Config { return ob.Config }
func (c *capRecorder) Name() string                            { return "cap-recorder" }
func (c *capRecorder) SetBudget(w power.Watts)                 { c.budgets = append(c.budgets, w) }

func coordTestFleet(t *testing.T, tr coordinator.Transport) (*Cluster, []*capRecorder) {
	t.Helper()
	ls, be := workload.Memcached(), workload.Raytrace()
	recs := make([]*capRecorder, 2)
	c, err := New(2, ls, be, 100, RoundRobin{}, 7, func(i int) control.Controller {
		recs[i] = &capRecorder{}
		return recs[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = 1
	c.Coord = &Coordination{Transport: tr, EpochS: 5}
	return c, recs
}

func TestCoordinationAppliesGrantsAndPropagatesBudget(t *testing.T) {
	ft := &fakeTransport{grants: map[string]float64{"node-000": 110, "node-001": 86}}
	c, recs := coordTestFleet(t, ft)
	res := c.Run(workload.Constant(0.3), 10)

	caps := c.Caps()
	if caps[0] != 110 || caps[1] != 86 {
		t.Fatalf("granted caps not applied: %v", caps)
	}
	if !res.Coordinated || res.Coord.Epochs != 2 {
		t.Fatalf("expected 2 coordination epochs, got %+v", res.Coord)
	}
	// Epoch 1 moves both nodes off the 100 W budget; epoch 2 re-grants the
	// same caps, so nothing more moves.
	if res.Coord.MovedW != 10+14 {
		t.Fatalf("moved_w %.1f, want 24", res.Coord.MovedW)
	}
	if len(recs[0].budgets) != 1 || recs[0].budgets[0] != 110 {
		t.Fatalf("node 0 SetBudget calls %v, want one call with 110", recs[0].budgets)
	}
	if len(recs[1].budgets) != 1 || recs[1].budgets[0] != 86 {
		t.Fatalf("node 1 SetBudget calls %v, want one call with 86", recs[1].budgets)
	}
	// Reports carry the cap in force at submission time: 100 W at epoch 1,
	// the granted caps at epoch 2.
	if len(ft.reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(ft.reports))
	}
	if ft.reports[0].CapW != 100 || ft.reports[2].CapW != 110 {
		t.Fatalf("report caps %v %v, want 100 then 110", ft.reports[0].CapW, ft.reports[2].CapW)
	}
}

func TestCoordinationFallsBackOnTransportError(t *testing.T) {
	ft := &fakeTransport{err: fmt.Errorf("coordinator unreachable")}
	c, recs := coordTestFleet(t, ft)
	res := c.Run(workload.Constant(0.3), 10)

	for i, w := range c.Caps() {
		if w != 100 {
			t.Errorf("node %d cap moved to %.1f on a failing transport", i, float64(w))
		}
	}
	if res.Coord.Fallbacks != 4 {
		t.Errorf("fallbacks %d, want 4 (2 nodes x 2 epochs)", res.Coord.Fallbacks)
	}
	if res.Coord.MovedW != 0 {
		t.Errorf("moved_w %.1f on a failing transport", res.Coord.MovedW)
	}
	if len(recs[0].budgets) != 0 {
		t.Errorf("SetBudget called despite no grants: %v", recs[0].budgets)
	}
}

// TestCoordinationChaosAccounting cross-checks the run's drop/outage
// tallies against an independently rebuilt copy of the same chaos plan —
// the counters must be a pure function of (spec, seed, horizon).
func TestCoordinationChaosAccounting(t *testing.T) {
	o := DefaultCoordFleet(11)
	o.Coordinated = true
	o.Chaos = true
	c, err := BuildCoordFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = 1
	res := c.Run(o.Trace(), o.DurationS)

	epochs := o.DurationS / o.EpochS
	plan := coordinator.NewChaos(coordinator.DefaultChaosSpec(), o.Seed+1, epochs, o.Nodes)
	wantOutages, wantDrops := 0, 0
	for e := 1; e <= epochs; e++ {
		if plan.Outage(e) {
			wantOutages++
			continue // drops inside an outage window are not separately counted
		}
		for n := 0; n < o.Nodes; n++ {
			if plan.Dropped(e, n) {
				wantDrops++
			}
		}
	}
	if res.Coord.Epochs != epochs {
		t.Errorf("epochs %d, want %d", res.Coord.Epochs, epochs)
	}
	if res.Coord.OutageEpochs != wantOutages {
		t.Errorf("outage epochs %d, want %d", res.Coord.OutageEpochs, wantOutages)
	}
	if res.Coord.DroppedReports != wantDrops {
		t.Errorf("dropped reports %d, want %d", res.Coord.DroppedReports, wantDrops)
	}
	if res.Coord.Fallbacks < wantDrops+wantOutages*o.Nodes {
		t.Errorf("fallbacks %d below the chaos floor %d",
			res.Coord.Fallbacks, wantDrops+wantOutages*o.Nodes)
	}
}

// coordGoldenScenario is the pinned coordinated diurnal fleet (chaos
// included) whose summary lives in testdata/coord_summary.golden.
func coordGoldenScenario(t *testing.T, parallelism int) Result {
	t.Helper()
	return coordGoldenScenarioObs(t, parallelism, nil)
}

// coordGoldenScenarioObs additionally attaches a decision-trail sink
// (nil = uninstrumented) for the observability battery.
func coordGoldenScenarioObs(t *testing.T, parallelism int, sink *obs.Sink) Result {
	t.Helper()
	c, tr, duration := coordGoldenScenarioCluster(t, parallelism, sink)
	return c.Run(tr, duration)
}

// coordGoldenScenarioCluster builds the pinned coordinated fleet
// without running it (for the cross-engine equivalence battery).
func coordGoldenScenarioCluster(t *testing.T, parallelism int, sink *obs.Sink) (*Cluster, workload.Trace, int) {
	t.Helper()
	o := DefaultCoordFleet(20260806)
	o.Coordinated = true
	o.Chaos = true
	c, err := BuildCoordFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = parallelism
	c.SetObs(sink)
	return c, o.Trace(), o.DurationS
}

func TestGoldenCoordSummary(t *testing.T) {
	got := coordGoldenScenario(t, 1).Summary()
	path := filepath.Join("testdata", "coord_summary.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("coordinated fleet summary drifted from golden fixture.\n--- got ---\n%s--- want ---\n%s"+
			"(if the change is intentional, regenerate with `go test ./internal/cluster -run Golden -update`)",
			got, want)
	}
}

// TestCoordParallelismByteIdentical pins the acceptance criterion that a
// seeded coordinated run is byte-identical at any node-stepping fan-out:
// grants are exchanged in the serial merge, so worker count must change
// wall-clock time only.
func TestCoordParallelismByteIdentical(t *testing.T) {
	ref := coordGoldenScenario(t, 1).Summary()
	for _, par := range []int{2, 4, 8} {
		if got := coordGoldenScenario(t, par).Summary(); got != ref {
			t.Fatalf("coordinated summary diverges at parallelism %d.\n--- par=1 ---\n%s--- par=%d ---\n%s",
				par, ref, par, got)
		}
	}
}
