package cluster

import (
	"sync"
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/core"
	"sturgeon/internal/hw"
	"sturgeon/internal/models"
	"sturgeon/internal/power"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

var (
	predOnce sync.Once
	pred     *models.Predictor
	budget   power.Watts
)

func fixtures(t *testing.T) (*models.Predictor, power.Watts) {
	t.Helper()
	predOnce.Do(func() {
		ls, be := workload.Memcached(), workload.Raytrace()
		var err error
		pred, err = models.Train(ls, be, models.TrainOptions{
			Collect: models.CollectOptions{Samples: 900, IntervalsPerSample: 2, Seed: 3},
		})
		if err != nil {
			panic(err)
		}
		n := sim.QuietNode(ls, be, 1)
		budget = sim.LSPeakPower(n.Spec, n.PowerParams, n.Bus, ls)
	})
	return pred, budget
}

func sturgeonCluster(t *testing.T, n int, policy DispatchPolicy) *Cluster {
	t.Helper()
	p, b := fixtures(t)
	ls, be := workload.Memcached(), workload.Raytrace()
	c, err := New(n, ls, be, b, policy, 5, func(int) control.Controller {
		return core.New(hw.DefaultSpec(), p, b, core.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPolicies(t *testing.T) {
	nodes := []NodeState{
		{Healthy: true, Last: sim.IntervalStats{P95: 0.002}},
		{Healthy: true, Last: sim.IntervalStats{P95: 0.008}},
		{Healthy: false, Last: sim.IntervalStats{P95: 0.001}},
	}
	rr := RoundRobin{}.Shares(nodes)
	if rr[0] != rr[1] || rr[2] != 0 {
		t.Errorf("round-robin shares %v", rr)
	}
	ll := (&LeastLoaded{}).Shares(nodes)
	if ll[0] <= ll[1] {
		t.Errorf("least-loaded did not favour the faster node: %v", ll)
	}
	if ll[2] != 0 {
		t.Error("unhealthy node received load")
	}
	// Fresh nodes (no history) still get traffic.
	fresh := (&LeastLoaded{}).Shares([]NodeState{{Healthy: true}})
	if fresh[0] <= 0 {
		t.Error("fresh node received no load")
	}
}

func TestNewValidations(t *testing.T) {
	_, b := fixtures(t)
	_, err := New(0, workload.Memcached(), workload.Raytrace(), b, RoundRobin{}, 1,
		func(int) control.Controller { return control.Static{} })
	if err == nil {
		t.Error("zero-node cluster accepted")
	}
}

func TestClusterRunFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run is slow")
	}
	c := sturgeonCluster(t, 4, RoundRobin{})
	res := c.Run(workload.Triangle(0.2, 0.6, 120), 120)
	if len(res.Intervals) != 120 {
		t.Fatalf("intervals = %d", len(res.Intervals))
	}
	if res.QoSRate < 0.9 {
		t.Errorf("fleet QoS %.4f collapsed", res.QoSRate)
	}
	if res.MeanBEThroughputUPS <= 0 {
		t.Error("no fleet best-effort work")
	}
	if res.MeanPowerW <= 0 || res.WorkPerKJ <= 0 {
		t.Errorf("degenerate energy accounting: %+v", res)
	}
	// 4 nodes drawing under ~budget each.
	if res.MeanPowerW > 4*float64(budget)*1.05 {
		t.Errorf("fleet power %.1f implausible", res.MeanPowerW)
	}
}

func TestLeastLoadedBeatsOrMatchesRoundRobinQoS(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run is slow")
	}
	rr := sturgeonCluster(t, 3, RoundRobin{}).Run(workload.Constant(0.5), 100)
	ll := sturgeonCluster(t, 3, &LeastLoaded{}).Run(workload.Constant(0.5), 100)
	// Load-aware dispatch shifts traffic away from interference-struck
	// nodes; it must not be materially worse.
	if ll.QoSRate < rr.QoSRate-0.03 {
		t.Errorf("least-loaded %.4f materially below round-robin %.4f", ll.QoSRate, rr.QoSRate)
	}
}
