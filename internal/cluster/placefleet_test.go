package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"sturgeon/internal/obs"
	"sturgeon/internal/workload"
)

// placeScenarioCluster builds one arm of the pinned placement-pair
// scenario without running it, so the batteries below can select the
// engine and parallelism before Run.
func placeScenarioCluster(t *testing.T, placed bool, parallelism int, sink *obs.Sink) (*Cluster, workload.Trace, int) {
	t.Helper()
	o := DefaultPlacementFleet(20260806)
	o.Placed = placed
	c, err := BuildPlacementFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = parallelism
	c.SetObs(sink)
	return c, o.Trace(), o.DurationS
}

// placeScenario runs one arm end to end.
func placeScenario(t *testing.T, placed bool, parallelism int) Result {
	t.Helper()
	c, tr, d := placeScenarioCluster(t, placed, parallelism, nil)
	return c.Run(tr, d)
}

// TestGoldenPlacementSummary pins the placed arm of the scenario to a
// checked-in fixture: any drift in the pair scorer, the solver, the
// migration planner or the warm-up accounting shifts the summary and
// fails the diff (`go test ./internal/cluster -run Golden -update` to
// regenerate intentionally).
func TestGoldenPlacementSummary(t *testing.T) {
	got := placeScenario(t, true, 1).Summary()
	path := filepath.Join("testdata", "placement_summary.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("placement summary drifted from golden fixture.\n--- got ---\n%s--- want ---\n%s"+
			"(if the change is intentional, regenerate with `go test ./internal/cluster -run Golden -update`)",
			got, want)
	}
}

// TestPlacementBeatsRandomPairing is the scenario's reason to exist:
// on the same fleet, same jobs, same flash-crowd day, the placement
// engine must beat the seeded random pairing on fleet BE throughput
// without giving up QoS — and the migration planner must actually have
// fired (the rotating hot spot forces moves mid-run).
func TestPlacementBeatsRandomPairing(t *testing.T) {
	random := placeScenario(t, false, 1)
	placed := placeScenario(t, true, 1)
	if placed.MeanBEThroughputUPS <= random.MeanBEThroughputUPS {
		t.Errorf("placement does not beat random pairing on BE throughput: %.2f vs %.2f UPS",
			placed.MeanBEThroughputUPS, random.MeanBEThroughputUPS)
	}
	if placed.QoSRate < random.QoSRate {
		t.Errorf("placement sacrifices QoS: %.6f vs random %.6f", placed.QoSRate, random.QoSRate)
	}
	if random.Placed || random.Place.Plans != 0 {
		t.Errorf("random arm ran the placement engine: %+v", random.Place)
	}
	o := DefaultPlacementFleet(20260806)
	if wantPlans := o.DurationS / o.EpochS; placed.Place.Plans != wantPlans {
		t.Errorf("placed arm ran %d planner epochs, want %d", placed.Place.Plans, wantPlans)
	}
	if placed.Place.Moves == 0 {
		t.Error("the pinned scenario produced no migrations — the planner never fired")
	}
	if placed.Place.Moves != placed.Place.StarvedMoves+placed.Place.ConsolidateMoves {
		t.Errorf("move reasons do not add up: %+v", placed.Place)
	}
	if placed.Place.Moves > 0 && placed.Place.WarmupLostUPS <= 0 {
		t.Error("migrations happened but no warm-up penalty was charged")
	}
}

// TestPlacementParallelismByteIdentical pins the acceptance criterion
// that both arms are byte-identical at any node-stepping fan-out: the
// planner runs in the serial merge, so worker count must change
// wall-clock time only.
func TestPlacementParallelismByteIdentical(t *testing.T) {
	for _, placed := range []bool{false, true} {
		ref := placeScenario(t, placed, 1).Summary()
		for _, par := range []int{2, 4, 8} {
			if got := placeScenario(t, placed, par).Summary(); got != ref {
				t.Fatalf("placed=%v summary diverges at parallelism %d.\n--- par=1 ---\n%s--- par=%d ---\n%s",
					placed, par, ref, par, got)
			}
		}
	}
}

// TestPlacementEngineEquivalence pins the cross-engine half: the
// discrete-event engine must reproduce per-second stepping byte for byte
// on both arms, migrations included.
func TestPlacementEngineEquivalence(t *testing.T) {
	run := func(placed bool, eng Engine) string {
		c, tr, d := placeScenarioCluster(t, placed, 1, nil)
		c.Engine = eng
		return c.Run(tr, d).Summary()
	}
	for _, placed := range []bool{false, true} {
		step := run(placed, EngineStep)
		event := run(placed, EngineEvent)
		if step != event {
			t.Fatalf("placed=%v engines diverge.\n--- step ---\n%s--- event ---\n%s", placed, step, event)
		}
	}
}

// badAssignment strands the frequency-hungry jobs (0–3) on
// power-starved nodes and the memory-bound ones (4–7) on rich and mid
// nodes — the exact inversion of the preference-aware answer.
func badAssignment(o PlacementFleetOptions) []int {
	nodeOf := make([]int, len(o.Jobs()))
	starved, rich := 0, 0
	for i := 0; i < o.Nodes; i++ {
		switch i % 4 {
		case 1, 3:
			if starved < 4 {
				nodeOf[starved] = i
				starved++
			}
		default:
			if rich < 4 {
				nodeOf[4+rich] = i
				rich++
			}
		}
	}
	return nodeOf
}

// TestPlacementMigrationRecovery hands the planner the inverted
// assignment and requires it to climb out: moves must fire, every move
// must conserve jobs (the live host table stays a partial injection
// throughout — enforced by applyMove, witnessed here via the journal),
// and the recovered fleet must land within reach of the solver-seeded
// arm rather than the random baseline.
func TestPlacementMigrationRecovery(t *testing.T) {
	o := DefaultPlacementFleet(20260806)
	o.Placed = true
	o.ForceAssign = badAssignment(o)
	sink := obs.New(0)
	c, err := BuildPlacementFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = 1
	c.SetObs(sink)
	res := c.Run(o.Trace(), o.DurationS)

	if res.Place.Moves == 0 {
		t.Fatal("planner never moved a job off the inverted assignment")
	}
	// Conservation after the whole run: every job hosted exactly once.
	hostOf := c.Place.HostOf()
	seen := make(map[int]int)
	for node, j := range hostOf {
		if j < 0 {
			continue
		}
		if prev, dup := seen[j]; dup {
			t.Fatalf("job %d hosted by nodes %d and %d", j, prev, node)
		}
		seen[j] = node
	}
	if len(seen) != len(o.Jobs()) {
		t.Fatalf("%d of %d jobs survive in the host table", len(seen), len(o.Jobs()))
	}
	// The journal's migration trail must match the counters and replay
	// to the same final host table.
	migrations := 0
	for _, ev := range sink.Journal.Since(0) {
		if ev.Type == obs.EventMigration {
			migrations++
		}
	}
	if migrations != res.Place.Moves {
		t.Errorf("journal records %d migrations, counters %d", migrations, res.Place.Moves)
	}
	// Recovery quality: the planner can't fully undo a warm-up-taxed bad
	// start, but it must beat leaving the inversion in place.
	stuck := o
	stuck.ForceAssign = badAssignment(o)
	cs, err := BuildPlacementFleet(stuck)
	if err != nil {
		t.Fatal(err)
	}
	cs.Parallelism = 1
	cs.Place.Planner = nil // same inverted start, no migrations
	frozen := cs.Run(o.Trace(), o.DurationS)
	if res.MeanBEThroughputUPS <= frozen.MeanBEThroughputUPS {
		t.Errorf("migrations did not pay: recovered %.2f UPS vs frozen inversion %.2f",
			res.MeanBEThroughputUPS, frozen.MeanBEThroughputUPS)
	}
}

// TestQuiescencePlacementWake proves KindPlacement is load-bearing in
// the event engine. The variant fleet runs round-robin dispatch on a
// flat trace — so after the governors settle, the whole fleet is
// quiescent and replicable — with the inverted assignment, so the first
// planning epoch fires a migration deep inside the quiescent stretch.
// The real event engine must match per-second stepping byte for byte;
// an engine with placement wake-ups suppressed must visibly diverge
// (the plan epochs and the move simply never happen inside a skip).
func TestQuiescencePlacementWake(t *testing.T) {
	const durationS = 200
	build := func(t *testing.T) *Cluster {
		o := DefaultPlacementFleet(20260806)
		o.SkewAmp = 0 // RoundRobin: steady shares, replication allowed
		o.DurationS = durationS
		o.Burst.Bursts = 0 // flat day: breaks only at t=0
		o.Burst.BaseLo, o.Burst.BaseHi = 0.35, 0.35
		o.Placed = true
		o.ForceAssign = badAssignment(o)
		c, err := BuildPlacementFleet(o)
		if err != nil {
			t.Fatal(err)
		}
		c.Parallelism = 1
		return c
	}
	o := DefaultPlacementFleet(20260806)
	o.DurationS = durationS
	o.Burst.Bursts = 0
	o.Burst.BaseLo, o.Burst.BaseHi = 0.35, 0.35
	tr := o.Trace()
	run := func(eng Engine, stub func(*Cluster)) (Result, string) {
		c := build(t)
		c.Engine = eng
		if stub != nil {
			stub(c)
		}
		res := c.Run(tr, durationS)
		return res, res.Summary()
	}
	stepRes, stepSum := run(EngineStep, nil)
	if stepRes.Place.Moves == 0 {
		t.Fatal("flat-day inversion produced no migration — the wake-up scenario is vacuous")
	}
	if _, eventSum := run(EngineEvent, nil); eventSum != stepSum {
		t.Fatalf("real event engine diverges on a migrating fleet.\n--- step ---\n%s--- event ---\n%s",
			stepSum, eventSum)
	}
	if _, brokenSum := run(EngineEvent, func(c *Cluster) { c.testDropPlaceWakes = true }); brokenSum == stepSum {
		t.Fatal("suppressing placement wake-ups changed nothing — the epoch never fell inside a skip")
	}
}
