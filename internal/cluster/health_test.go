package cluster

import (
	"math/rand"
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

// staticFleet builds a cheap deterministic fleet: every node runs the LS
// service on the whole machine under a fixed controller, so the tests
// exercise dispatch, health detection and fault injection without model
// training.
func staticFleet(t *testing.T, n int, seed int64) *Cluster {
	t.Helper()
	ls, be := workload.Memcached(), workload.Raytrace()
	node := sim.QuietNode(ls, be, 1)
	budget := sim.LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls)
	c, err := New(n, ls, be, budget, RoundRobin{}, seed, func(int) control.Controller {
		return control.Static{Cfg: hw.SoloLS(hw.DefaultSpec())}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDispatcherEvictsCrashedNode is the fleet-robustness acceptance
// test: under a node-crash fault plan the dispatcher must mark the node
// unhealthy within 3 intervals, redistribute its share, and lose far
// less QoS than the crashed node's capacity share would naively imply.
func TestDispatcherEvictsCrashedNode(t *testing.T) {
	const (
		nodes      = 4
		duration   = 160
		crashStart = 30
		crashEnd   = 90
	)
	clean := staticFleet(t, nodes, 5).Run(workload.Constant(0.5), duration)

	c := staticFleet(t, nodes, 5)
	c.SetFaultPlans(faults.Manual(duration,
		faults.Episode{Kind: faults.NodeCrash, Start: crashStart, End: crashEnd},
	))
	res := c.Run(workload.Constant(0.5), duration)

	if res.Health.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Health.Evictions)
	}
	if res.Health.Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1 (node must return after reboot)", res.Health.Readmissions)
	}
	if res.Faults.CrashIntervals != crashEnd-crashStart {
		t.Fatalf("crash intervals = %d, want %d", res.Faults.CrashIntervals, crashEnd-crashStart)
	}

	// Detection within 3 intervals: load keeps landing on the dead node
	// only until eviction, so at most 3 intervals of one node's share is
	// lost — not the whole 60-interval outage.
	perNodeInterval := 0.5 * c.LS.PeakQPS // one node's share of one interval
	if res.LostQueries <= 0 {
		t.Fatal("crash lost no queries — detection happened impossibly early")
	}
	if res.LostQueries > 3*perNodeInterval*1.01 {
		t.Fatalf("lost %.0f queries — more than 3 intervals of the node's share (%.0f); detection too slow",
			res.LostQueries, 3*perNodeInterval)
	}

	// Unhealthy bookkeeping: evicted from ~interval crashStart+2 until a
	// few probation intervals past recovery.
	if res.Health.UnhealthyNodeIntervals < crashEnd-crashStart-5 ||
		res.Health.UnhealthyNodeIntervals > crashEnd-crashStart+10 {
		t.Errorf("unhealthy intervals = %d, want ≈ %d", res.Health.UnhealthyNodeIntervals, crashEnd-crashStart)
	}

	// QoS must degrade far less than the naive capacity-share bound:
	// share (1/4) × outage fraction (60/160) = 9.4 %.
	naive := (1.0 / nodes) * float64(crashEnd-crashStart) / duration
	loss := clean.QoSRate - res.QoSRate
	if loss < 0 {
		t.Fatalf("crash improved QoS? clean %.4f chaos %.4f", clean.QoSRate, res.QoSRate)
	}
	if loss > naive/2 {
		t.Errorf("QoS loss %.4f not materially better than naive %.4f — redistribution ineffective",
			loss, naive)
	}
}

// TestFlappingNodeBacksOff checks the re-admission backoff: a node that
// crashes repeatedly must face a doubling probation.
func TestFlappingNodeBacksOff(t *testing.T) {
	const duration = 120
	c := staticFleet(t, 3, 9)
	c.SetFaultPlans(faults.Manual(duration,
		faults.Episode{Kind: faults.NodeCrash, Start: 10, End: 20},
		faults.Episode{Kind: faults.NodeCrash, Start: 30, End: 40},
		faults.Episode{Kind: faults.NodeCrash, Start: 60, End: 70},
	))
	res := c.Run(workload.Constant(0.4), duration)
	if res.Health.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", res.Health.Evictions)
	}
	if res.Health.Readmissions != 3 {
		t.Fatalf("readmissions = %d, want 3", res.Health.Readmissions)
	}
	// Probation doubles (3, 6, 12): later outages cost more unhealthy
	// intervals than the first even though the crash windows are equal.
	min := (20 - 12) + (40 - 32) + (70 - 62) + 3 + 6 + 12
	if res.Health.UnhealthyNodeIntervals < min-4 {
		t.Errorf("unhealthy intervals %d too low for backed-off probation (want ≈ %d)",
			res.Health.UnhealthyNodeIntervals, min)
	}
}

// TestClusterChaosRunDeterministic is the fleet half of the
// reproducibility acceptance criterion: the same cluster seed and fault
// spec produce byte-identical summaries across independent invocations.
func TestClusterChaosRunDeterministic(t *testing.T) {
	run := func() string {
		c := staticFleet(t, 3, 11)
		c.InjectFaults(faults.DefaultSpec(), 100)
		return c.Run(workload.Triangle(0.2, 0.7, 100), 100).Summary()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("seeded chaos summaries diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestTelemetryFaultsDoNotKillHealthyNodes: meter dropouts alone (power
// reads 0 for a few intervals) may trigger a spurious eviction, but the
// node must be re-admitted and the fleet must keep serving.
func TestTelemetryFaultsDoNotKillHealthyNodes(t *testing.T) {
	const duration = 100
	c := staticFleet(t, 3, 13)
	c.SetFaultPlans(faults.Manual(duration,
		faults.Episode{Kind: faults.PowerDrop, Start: 20, End: 26},
	))
	res := c.Run(workload.Constant(0.4), duration)
	if res.Health.Evictions != res.Health.Readmissions {
		t.Fatalf("spurious eviction never healed: %+v", res.Health)
	}
	if res.LostQueries != 0 {
		t.Fatalf("telemetry-only faults lost %.0f queries", res.LostQueries)
	}
	if res.QoSRate < 0.95 {
		t.Fatalf("fleet QoS %.4f collapsed under a meter dropout", res.QoSRate)
	}
}

// TestObserveNMatchesRepeated is the property the event engine's
// health catch-up rests on: advancing the detector k intervals in
// closed form must leave state, stats and the returned status exactly
// as k sequential observe calls would, over every reachable detector
// state. Reachable states are enumerated by replaying random signal
// prefixes through the sequential path.
func TestObserveNMatchesRepeated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opt := HealthOptions{MissThreshold: 2, ReadmitAfter: 3, BackoffMax: 4}
	for trial := 0; trial < 2000; trial++ {
		var seq, bulk nodeHealth
		var seqStats, bulkStats HealthStats
		// Random prefix drives both detectors into an arbitrary state.
		for i, n := 0, rng.Intn(20); i < n; i++ {
			dead := rng.Intn(2) == 0
			seq.observe(dead, opt, &seqStats)
			bulk.observe(dead, opt, &bulkStats)
		}
		// One constant run, advanced both ways.
		dead := rng.Intn(2) == 0
		k := rng.Intn(12)
		var seqHealthy bool
		for i := 0; i < k; i++ {
			seqHealthy = seq.observe(dead, opt, &seqStats)
		}
		bulkHealthy := bulk.observeN(dead, k, opt, &bulkStats)
		if k > 0 && seqHealthy != bulkHealthy {
			t.Fatalf("trial %d: status %v vs %v (dead=%v k=%d)", trial, seqHealthy, bulkHealthy, dead, k)
		}
		if seq != bulk {
			t.Fatalf("trial %d: state %+v vs %+v (dead=%v k=%d)", trial, seq, bulk, dead, k)
		}
		if seqStats != bulkStats {
			t.Fatalf("trial %d: stats %+v vs %+v (dead=%v k=%d)", trial, seqStats, bulkStats, dead, k)
		}
	}
}

// TestStepsUntilFlip pins the wake-up arithmetic against brute force:
// when a flip is predicted in f intervals, f-1 observes must not flip
// the status and the f-th must; -1 must mean no flip within a long run.
func TestStepsUntilFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opt := HealthOptions{MissThreshold: 3, ReadmitAfter: 2, BackoffMax: 4}
	for trial := 0; trial < 2000; trial++ {
		var h nodeHealth
		var stats HealthStats
		for i, n := 0, rng.Intn(25); i < n; i++ {
			h.observe(rng.Intn(2) == 0, opt, &stats)
		}
		dead := rng.Intn(2) == 0
		f := h.stepsUntilFlip(dead, opt)
		probe := h
		before := !probe.evicted
		if f < 0 {
			for i := 0; i < 50; i++ {
				if got := probe.observe(dead, opt, &stats); got != before {
					t.Fatalf("trial %d: predicted no flip, flipped after %d (dead=%v, %+v)", trial, i+1, dead, h)
				}
			}
			continue
		}
		for i := 0; i < f-1; i++ {
			if got := probe.observe(dead, opt, &stats); got != before {
				t.Fatalf("trial %d: flipped after %d, predicted %d (dead=%v, %+v)", trial, i+1, f, dead, h)
			}
		}
		if got := probe.observe(dead, opt, &stats); got == before {
			t.Fatalf("trial %d: no flip at predicted interval %d (dead=%v, %+v)", trial, f, dead, h)
		}
	}
}
