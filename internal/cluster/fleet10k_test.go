package cluster

import "testing"

func TestDefaultFleet10kShape(t *testing.T) {
	o := DefaultFleet10k()
	if o.Nodes != 10_000 || o.DurationS != 86_400 || o.StepDurS != 3_600 {
		t.Fatalf("pinned scenario drifted: %+v", o)
	}
	if len(o.Levels) != 24 {
		t.Fatalf("want 24 hourly treads, got %d", len(o.Levels))
	}
	for h, l := range o.Levels {
		if l < 0.2 || l > 0.6 {
			t.Fatalf("tread %d level %v outside the diurnal band", h, l)
		}
	}
	c, err := BuildFleet10k(o)
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine != EngineEvent {
		t.Fatal("fleet10k must default to the event engine")
	}
	// Step 0 plus one edge per tread (the last edge, step 86399, is the
	// wrap back to tread 0 inside the horizon).
	if len(c.TraceBreaks) != 25 {
		t.Fatalf("declared %d trace breaks, want 25", len(c.TraceBreaks))
	}
	if _, err := BuildFleet10k(Fleet10kOptions{}); err == nil {
		t.Fatal("zero options must be rejected")
	}
}

// TestFleet10kSmallCrossEngine ground-truths a scaled-down fleet10k
// against per-second stepping: a homogeneous quiet fleet is exactly the
// configuration where all three skip tiers (replication, replay,
// cross-node memoization) engage at once, so byte-equality here is the
// direct check that the 10k scenario's fast path computes the same day
// the slow engine would.
func TestFleet10kSmallCrossEngine(t *testing.T) {
	o := DefaultFleet10k()
	o.Nodes = 32
	o.DurationS = 240
	o.StepDurS = 60
	o.Levels = []float64{0.25, 0.5, 0.4, 0.3}
	run := func(eng Engine, par int) string {
		c, err := BuildFleet10k(o)
		if err != nil {
			t.Fatal(err)
		}
		c.Engine = eng
		c.Parallelism = par
		return c.Run(o.Trace(), o.DurationS).Summary()
	}
	ref := run(EngineStep, 1)
	for _, par := range []int{1, 8} {
		if got := run(EngineEvent, par); got != ref {
			t.Fatalf("event engine diverges at parallelism %d.\n--- step ---\n%s--- event ---\n%s", par, ref, got)
		}
	}
}

// TestFleet10kDayDeterministicAndSkipping runs a 2 000-node full day on
// the event engine at two parallelism levels: byte-identical summaries,
// and only a sliver of the 86 400 seconds actually evaluated — the
// property that makes the 10k-node day finish in seconds.
func TestFleet10kDayDeterministicAndSkipping(t *testing.T) {
	o := DefaultFleet10k()
	o.Nodes = 2_000
	run := func(par int) (string, int) {
		c, err := BuildFleet10k(o)
		if err != nil {
			t.Fatal(err)
		}
		c.Parallelism = par
		res := c.Run(o.Trace(), o.DurationS)
		return res.Summary(), c.EventActiveSeconds()
	}
	sum4, act4 := run(4)
	sum8, act8 := run(8)
	if sum4 != sum8 {
		t.Fatal("fleet10k day is not byte-identical across parallelism levels")
	}
	if act4 != act8 {
		t.Fatalf("active seconds differ across parallelism: %d vs %d", act4, act8)
	}
	if act4 >= o.DurationS/100 {
		t.Fatalf("event engine evaluated %d of %d seconds — the day would not finish in seconds at 10k nodes",
			act4, o.DurationS)
	}
}
