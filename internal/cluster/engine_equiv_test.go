package cluster

import (
	"bytes"
	"testing"

	"sturgeon/internal/coordinator"
	"sturgeon/internal/faults"
	"sturgeon/internal/jsonio"
	"sturgeon/internal/obs"
	"sturgeon/internal/workload"
)

// engineScenario is one pinned fleet the cross-engine battery replays
// under both engines. The build function must return a fresh,
// un-run cluster every call (engines and parallelisms must not share
// rng or coordinator state).
type engineScenario struct {
	name  string
	build func(t *testing.T, parallelism int, sink *obs.Sink) (*Cluster, workload.Trace, int)
}

// quietFleetCluster is the scenario where the event engine's skip tiers
// actually engage: a small homogeneous fleet10k variant (deterministic
// nodes, governors, staircase trace with declared breaks) with two
// scripted crash windows on one node (eviction, doubling backoff,
// readmission — all timer wake-ups), a stale-telemetry window on
// another, and a live in-process coordinator whose epochs puncture the
// quiescent stretches. The pinned chaos/coord scenarios above it use
// noisy nodes, so for them the event engine degenerates to per-second
// evaluation; this one proves equivalence while replication,
// per-node replay and memoization are all firing.
func quietFleetCluster(t *testing.T, parallelism int, sink *obs.Sink) (*Cluster, workload.Trace, int) {
	t.Helper()
	o := DefaultFleet10k()
	o.Nodes = 6
	o.DurationS = 300
	o.StepDurS = 60
	o.Levels = []float64{0.25, 0.5, 0.35, 0.45, 0.3}
	c, err := BuildFleet10k(o)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = parallelism
	c.SetFaultPlans(
		nil,
		faults.Manual(o.DurationS,
			faults.Episode{Kind: faults.NodeCrash, Start: 70, End: 85},
			faults.Episode{Kind: faults.NodeCrash, Start: 150, End: 160},
		),
		faults.Manual(o.DurationS,
			faults.Episode{Kind: faults.LatencyStale, Start: 100, End: 130},
		),
	)
	co, err := coordinator.New(coordinator.Options{
		BudgetW:   o.CapW * float64(o.Nodes),
		MinCapW:   95,
		MaxCapW:   130,
		FleetSize: o.Nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Coord = &Coordination{Transport: &coordinator.Local{C: co}, EpochS: 45}
	c.SetObs(sink)
	return c, o.Trace(), o.DurationS
}

func engineScenarios() []engineScenario {
	return []engineScenario{
		{"chaos-fleet", goldenScenarioCluster},
		{"coord-fleet", coordGoldenScenarioCluster},
		{"coord-crash", crashGoldenScenarioCluster},
		{"quiet-fleet", quietFleetCluster},
	}
}

// runEngineScenario builds the scenario fresh, runs it under the given
// engine, and returns the summary plus (when instrumented) the
// canonical JSON encoding of the obs journal.
func runEngineScenario(t *testing.T, sc engineScenario, eng Engine, parallelism int, withObs bool) (string, []byte) {
	t.Helper()
	var sink *obs.Sink
	if withObs {
		sink = obs.New(0)
	}
	c, tr, duration := sc.build(t, parallelism, sink)
	c.Engine = eng
	res := c.Run(tr, duration)
	var dump []byte
	if withObs {
		doc := sink.Journal.Doc()
		if err := doc.Validate(); err != nil {
			t.Fatalf("journal doc invalid under engine %d: %v", eng, err)
		}
		data, err := jsonio.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		dump = data
	}
	return res.Summary(), dump
}

// TestEngineEquivalenceBattery is the acceptance criterion for the
// event engine: every pinned scenario, under both engines, at
// node-stepping parallelism 1/2/4/8, with the decision trail attached,
// produces a byte-identical summary AND byte-identical journal bytes.
// Run it under -race (the CI des-equivalence job does) to also prove
// the engine's fan-out stays data-race-free.
func TestEngineEquivalenceBattery(t *testing.T) {
	for _, sc := range engineScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			refSum, refDump := runEngineScenario(t, sc, EngineStep, 1, true)
			if len(refDump) == 0 {
				t.Fatal("empty reference journal dump")
			}
			for _, eng := range []Engine{EngineStep, EngineEvent} {
				for _, par := range []int{1, 2, 4, 8} {
					sum, dump := runEngineScenario(t, sc, eng, par, true)
					if sum != refSum {
						t.Fatalf("engine %d parallelism %d: summary diverges.\n--- step/par=1 ---\n%s--- got ---\n%s",
							eng, par, refSum, sum)
					}
					if !bytes.Equal(dump, refDump) {
						t.Fatalf("engine %d parallelism %d: journal diverges (len %d vs %d)",
							eng, par, len(dump), len(refDump))
					}
				}
			}
		})
	}
}

// TestEngineEquivalenceUninstrumented repeats the battery without a
// sink. This is not a weaker copy: cross-node memoization only arms on
// uninstrumented runs (per-node gauges must see per-node Decide calls),
// so this is the only configuration where representative-sharing is
// exercised against per-second ground truth.
func TestEngineEquivalenceUninstrumented(t *testing.T) {
	for _, sc := range engineScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			refSum, _ := runEngineScenario(t, sc, EngineStep, 1, false)
			for _, par := range []int{1, 4, 8} {
				sum, _ := runEngineScenario(t, sc, EngineEvent, par, false)
				if sum != refSum {
					t.Fatalf("event engine parallelism %d (memoized): summary diverges.\n--- step ---\n%s--- event ---\n%s",
						par, refSum, sum)
				}
			}
		})
	}
}

// TestEventEngineActuallySkips guards against the silent failure mode
// where a wake-up leak makes every second active and the equivalence
// battery passes vacuously: on the quiet fleet the event engine must
// evaluate well under half of the horizon (the fleet is at a fixed
// point for most of each staircase tread).
func TestEventEngineActuallySkips(t *testing.T) {
	sc := engineScenario{"quiet-fleet", quietFleetCluster}
	c, tr, duration := sc.build(t, 1, nil)
	c.Engine = EngineEvent
	c.Run(tr, duration)
	if act := c.EventActiveSeconds(); act >= duration/2 {
		t.Fatalf("event engine evaluated %d of %d seconds on the quiet fleet — skipping is not engaging", act, duration)
	} else {
		t.Logf("event engine evaluated %d of %d seconds", act, duration)
	}
}
