package cluster

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sturgeon/internal/control"
	"sturgeon/internal/faults"
	"sturgeon/internal/hw"
	"sturgeon/internal/obs"
	"sturgeon/internal/sim"
	"sturgeon/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenScenario is a small seeded fleet chaos run pinned by a
// checked-in fixture: three statically managed nodes under a triangle
// load with the default fault profile. Any change to the simulator
// physics, the dispatcher, the failure detector or the fault layer
// shifts the summary and fails the diff — semantics can only change
// loudly, together with a regenerated fixture (`go test
// ./internal/cluster -run Golden -update`).
func goldenScenario(t *testing.T) Result {
	t.Helper()
	return goldenScenarioAt(t, 0) // 0 = the default pooled stepping
}

// goldenScenarioAt runs the golden scenario with an explicit node-stepping
// parallelism, so the determinism battery can byte-compare worker counts.
func goldenScenarioAt(t *testing.T, parallelism int) Result {
	t.Helper()
	return goldenScenarioObs(t, parallelism, nil)
}

// goldenScenarioObs additionally attaches a decision-trail sink (nil =
// uninstrumented), so the observability battery can prove the journal
// changes neither the summary nor its parallelism independence.
func goldenScenarioObs(t *testing.T, parallelism int, sink *obs.Sink) Result {
	t.Helper()
	c, tr, duration := goldenScenarioCluster(t, parallelism, sink)
	return c.Run(tr, duration)
}

// goldenScenarioCluster builds the pinned chaos fleet without running
// it, so the cross-engine equivalence battery can select the stepping
// engine before Run.
func goldenScenarioCluster(t *testing.T, parallelism int, sink *obs.Sink) (*Cluster, workload.Trace, int) {
	t.Helper()
	const duration = 80
	ls, be := workload.Memcached(), workload.Raytrace()
	node := sim.QuietNode(ls, be, 1)
	budget := sim.LSPeakPower(node.Spec, node.PowerParams, node.Bus, ls)
	split := hw.Config{
		LS: hw.Alloc{Cores: 12, Freq: 2.0, LLCWays: 12},
		BE: hw.Alloc{Cores: 8, Freq: 1.6, LLCWays: 8},
	}
	c, err := New(3, ls, be, budget, RoundRobin{}, 20260805, func(int) control.Controller {
		return control.Static{Cfg: split}
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = parallelism
	for _, n := range c.Nodes {
		if err := n.Apply(split); err != nil {
			t.Fatal(err)
		}
	}
	// Node 0 gets the seeded default chaos profile; node 1 a scripted
	// crash plus a stale-latency window, so the fixture pins the crash /
	// eviction / lost-query path as well as the telemetry faults.
	c.SetFaultPlans(
		faults.New(faults.DefaultSpec(), 101, duration),
		faults.Manual(duration,
			faults.Episode{Kind: faults.NodeCrash, Start: 20, End: 45},
			faults.Episode{Kind: faults.LatencyStale, Start: 55, End: 65},
		),
	)
	c.SetObs(sink)
	return c, workload.Triangle(0.2, 0.7, duration), duration
}

func TestGoldenFleetSummary(t *testing.T) {
	got := goldenScenario(t).Summary()
	path := filepath.Join("testdata", "fleet_summary.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("fleet summary drifted from golden fixture.\n--- got ---\n%s--- want ---\n%s"+
			"(if the change is intentional, regenerate with `go test ./internal/cluster -run Golden -update`)",
			got, want)
	}
}

// TestGoldenScenarioByteIdentical re-runs the full golden scenario twice
// in-process — fresh cluster, fresh plans — and requires byte-identical
// summaries, the run-to-run half of the reproducibility criterion.
func TestGoldenScenarioByteIdentical(t *testing.T) {
	if goldenScenario(t).Summary() != goldenScenario(t).Summary() {
		t.Fatal("golden scenario is not reproducible within one process")
	}
}
